// Capacity and profiles — planning with the extended metrics.
//
// Two questions a cluster owner actually asks, answered with the library's
// future-work extensions:
//  1. "How far can I scale before memory, not speed, is the wall?"
//     (memory-bounded iso-solving, scal/capacity.hpp)
//  2. "Which node should I buy for MY application?" (multi-parameter
//     marked performance + application profiles, marked/performance.hpp)
#include <iostream>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/marked/performance.hpp"
#include "hetscale/scal/capacity.hpp"
#include "hetscale/support/table.hpp"

int main() {
  using namespace hetscale;

  // ---- 1. The memory wall ----
  std::cout << "Q1: scaling GE at E_s = 0.3 on 128 MB SunBlades only\n";
  Table wall;
  wall.set_header({"SunBlades", "N needed", "N that fits", "verdict"});
  for (int nodes : {4, 16, 32}) {
    scal::ClusterCombination::Config config;
    config.cluster = machine::sunwulf::homogeneous_ensemble(nodes);
    config.with_data = false;
    scal::GeCombination combo("blades", std::move(config));
    const auto bounded = scal::memory_bounded_required_size(
        combo, 0.3, scal::ge_footprint());
    wall.add_row({std::to_string(nodes),
                  bounded.solve.found ? std::to_string(bounded.solve.n)
                                      : "more than fits",
                  std::to_string(bounded.n_limit),
                  bounded.memory_bound ? "MEMORY-BOUND" : "ok"});
  }
  std::cout << wall
            << "=> past ~16 blades the iso-efficiency problem no longer fits"
               " on the root; adding a single large-memory server node is"
               " worth more than more blades.\n\n";

  // ---- 2. Node choice by application profile ----
  std::cout << "Q2: SunBlade vs SunFire V210 for two applications\n";
  const auto blade =
      marked::node_marked_performance(machine::sunwulf::sunblade_spec());
  const auto v210 =
      marked::node_marked_performance(machine::sunwulf::v210_spec());

  marked::ApplicationProfile dense;  // compute-bound (e.g. MM)
  marked::ApplicationProfile stencil;
  stencil.memory_bytes_per_flop = 10.0;  // streaming grid sweeps

  Table choice;
  choice.set_header(
      {"profile", "SunBlade eff. Mflops", "V210 eff. Mflops", "V210 / blade"});
  for (const auto& [label, profile] :
       {std::pair{"dense compute", dense}, std::pair{"stencil", stencil}}) {
    const double b = marked::effective_marked_speed(blade, profile);
    const double v = marked::effective_marked_speed(v210, profile);
    choice.add_row({label, Table::fixed(b / 1e6, 1), Table::fixed(v / 1e6, 1),
                    Table::fixed(v / b, 2)});
  }
  std::cout << choice
            << "=> the V210's advantage is 2x on compute-bound work but "
               "bigger on memory-bound work — a single marked speed would "
               "hide that (the paper's future-work motivation).\n";
  return 0;
}
