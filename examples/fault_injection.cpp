// Fault injection — what does a degradation plan cost, and where does the
// time go? Builds GE on a two-node Sunwulf ensemble, generates a seeded
// fault plan (stragglers + link degradation + message loss + crashes with
// checkpointing), and decomposes the added run time by cause.
//
// Everything is deterministic: re-run with the same seed and every number
// reproduces to the bit, at any --jobs setting (see
// docs/architecture.md, "The fault layer").
#include <iostream>

#include "hetscale/fault/analysis.hpp"
#include "hetscale/fault/plan.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/scal/fault_study.hpp"
#include "hetscale/support/table.hpp"

int main() {
  using namespace hetscale;

  scal::ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(2);
  scal::GeCombination ge("GE-2", std::move(config));
  constexpr std::int64_t kN = 256;

  // A plan that exercises every fault class. Windows are sized to the
  // run: GE-2 at N=256 finishes within a few virtual seconds.
  fault::PlanSpec spec;
  spec.slowdown_probability = 1.0;   // every rank is a straggler ...
  spec.slowdown_factor = 0.6;        // ... computing at 60% when degraded
  spec.slowdown_duty = 0.4;
  spec.slowdown_period_s = 0.5;
  spec.link_duty = 0.25;             // the network loses half its bandwidth
  spec.link_period_s = 0.5;          // for a quarter of every half second
  spec.link_bandwidth_factor = 0.5;
  spec.loss.drop_probability = 0.05; // 5% of transmissions are dropped
  spec.crash_rate_per_s = 0.05;      // rare crashes ...
  spec.restart_delay_s = 0.1;
  spec.checkpoint.interval_s = 0.2;  // ... bounded by cheap checkpoints
  spec.checkpoint.bytes = 8.0 * kN * kN / ge.processor_count();
  spec.horizon_s = 60.0;
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(/*seed=*/7, spec, ge.processor_count());
  std::cout << "plan: " << plan.summary() << "\n\n";

  const scal::FaultDecomposition d = scal::decompose_faults(ge, kN, plan);

  Table table("GE-2 at N=256, healthy vs under the plan");
  table.set_header({"view", "elapsed s", "E_s"});
  table.add_row({"healthy", Table::fixed(d.healthy.seconds, 4),
                 Table::fixed(d.healthy.speed_efficiency, 4)});
  table.add_row({"faulty", Table::fixed(d.faulty.measurement.seconds, 4),
                 Table::fixed(d.faulty.measurement.speed_efficiency, 4)});
  std::cout << table << "\n";

  const fault::RankFaultStats& totals = d.faulty.fault_totals;
  Table ledger("Injected fault time, summed over ranks");
  ledger.set_header({"cause", "seconds", "events"});
  ledger.add_row({"slowdown stretch", Table::fixed(totals.slowdown_s, 4), ""});
  ledger.add_row({"checkpoints", Table::fixed(totals.checkpoint_s, 4),
                  std::to_string(totals.checkpoints)});
  ledger.add_row({"crash rework", Table::fixed(totals.rework_s, 4),
                  std::to_string(totals.crashes)});
  ledger.add_row({"retry waits", Table::fixed(totals.retry_s, 4),
                  std::to_string(totals.retries)});
  std::cout << ledger << "\n";

  std::cout << "fault overhead   " << Table::fixed(d.fault_overhead_s, 4)
            << " s  (attributed " << Table::fixed(d.attributed_s, 4)
            << ", residual " << Table::fixed(d.residual_s, 4) << ")\n"
            << "effective C      "
            << Table::fixed(d.faulty.effective_marked_speed / 1e6, 2)
            << " Mflop/s vs healthy " << Table::fixed(ge.marked_speed() / 1e6, 2)
            << "\n"
            << "degraded E_s     " << Table::fixed(d.faulty.degraded_es, 4)
            << "  (against what the degraded machine offered)\n"
            << "retention        " << Table::fixed(d.efficiency_retention, 4)
            << "  (fraction of healthy E_s kept under the plan)\n";
  return 0;
}
