// Custom algorithm — bringing your own code to the metric.
//
// Two levels of extension are shown:
//   1. Writing a message-passing program directly against vmpi::Comm (a
//      ring-pipelined token reduction), running it on a heterogeneous
//      machine, and reading the timing decomposition.
//   2. Wrapping the built-in Jacobi stencil into a scal::Combination so the
//      whole analysis pipeline (iso-solver, trend line, ψ) applies to it —
//      the generality the paper's conclusion asks for.
#include <iostream>
#include <memory>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace {

using namespace hetscale;
using des::Task;

// ---- Level 1: a hand-written SPMD program ----
// Each rank computes on its share, then a token circulates the ring
// accumulating a sum — a pattern none of the built-in algorithms use.
Task<void> ring_reduce(vmpi::Comm& comm, double flops_per_rank) {
  constexpr int kTag = 42;
  co_await comm.compute(flops_per_rank);
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() - 1 + comm.size()) % comm.size();
  if (comm.size() == 1) co_return;
  if (comm.rank() == 0) {
    co_await comm.send(next, kTag, 8.0, vmpi::Payload(1.0));
    const auto back = co_await comm.recv(prev, kTag);
    std::cout << "  ring token accumulated " << back.value<double>()
              << " over " << comm.size() << " ranks\n";
  } else {
    const auto token = co_await comm.recv(prev, kTag);
    co_await comm.send(next, kTag, 8.0,
                       vmpi::Payload(token.value<double>() + 1.0));
  }
}

}  // namespace

int main() {
  // A deliberately lopsided machine: one V210 (both CPUs) + two SunBlades.
  machine::Cluster cluster;
  cluster.add_node("v210", machine::sunwulf::v210_spec());
  cluster.add_node("blade-1", machine::sunwulf::sunblade_spec());
  cluster.add_node("blade-2", machine::sunwulf::sunblade_spec());

  std::cout << "Level 1: custom SPMD program on " << cluster.summary()
            << "\n";
  auto machine = vmpi::Machine::switched(cluster);
  const auto run = machine.run([](vmpi::Comm& comm) -> Task<void> {
    return ring_reduce(comm, units::mflop(30.0));
  });
  std::cout << "  elapsed " << run.elapsed << " s; critical-path overhead "
            << run.overhead_s() << " s\n\n";

  // ---- Level 2: the Jacobi stencil as a Combination ----
  std::cout << "Level 2: Jacobi 2-D stencil through the metric pipeline\n";
  scal::ClusterCombination::Config small_config;
  small_config.cluster = cluster;
  scal::JacobiCombination small("jacobi-small", std::move(small_config),
                                /*sweeps=*/50);

  machine::Cluster big_cluster = cluster;
  big_cluster.add_node("blade-3", machine::sunwulf::sunblade_spec());
  big_cluster.add_node("blade-4", machine::sunwulf::sunblade_spec());
  big_cluster.add_node("v210-2", machine::sunwulf::v210_spec());
  scal::ClusterCombination::Config big_config;
  big_config.cluster = std::move(big_cluster);
  scal::JacobiCombination big("jacobi-big", std::move(big_config),
                              /*sweeps=*/50);

  constexpr double kTarget = 0.25;
  // Jacobi needs at least one interior grid row per rank, so the search
  // floor depends on the system size.
  scal::IsoSolveOptions small_opts;
  small_opts.n_min = small.processor_count() + 2;
  scal::IsoSolveOptions big_opts;
  big_opts.n_min = big.processor_count() + 2;
  const auto small_point =
      scal::required_problem_size(small, kTarget, small_opts);
  const auto big_point = scal::required_problem_size(big, kTarget, big_opts);
  std::cout << "  E_s = " << kTarget << " needs grid N = " << small_point.n
            << " on the small system, N = " << big_point.n
            << " on the doubled one\n";
  const double psi = scal::isospeed_efficiency_scalability(
      small.marked_speed(), small.work(small_point.n), big.marked_speed(),
      big.work(big_point.n));
  std::cout << "  psi(small -> big) = " << psi
            << "  (nearest-neighbour exchange scales gently: compare GE/MM "
               "in examples/ge_vs_mm)\n";
  return 0;
}
