// Quickstart — the library in ~60 lines.
//
//  1. Describe a heterogeneous cluster (or use the Sunwulf catalog).
//  2. Measure its marked speed (Definitions 1-2).
//  3. Run a real parallel algorithm on the simulated machine and read off
//     its speed-efficiency (Definition 3).
//  4. Scale the system, re-solve the iso-efficiency problem size, and
//     compute the isospeed-efficiency scalability ψ (Definition 4).
#include <iostream>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/metrics.hpp"

int main() {
  using namespace hetscale;

  // 1. A small heterogeneous system: one 2-CPU server + one SunBlade.
  machine::Cluster small;
  small.add_node("server", machine::sunwulf::server_spec(), /*cpus_used=*/2);
  small.add_node("hpc-1", machine::sunwulf::sunblade_spec());

  // 2. Marked speed: benchmarked, then a constant of the study.
  const double c_small = marked::system_marked_speed(small);
  std::cout << "Small system:  " << small.summary() << "\n"
            << "  marked speed C  = " << c_small / 1e6 << " Mflops\n";

  // 3. Parallel Gaussian elimination as an algorithm-system combination.
  scal::ClusterCombination::Config config;
  config.cluster = small;
  config.with_data = true;  // real numerics — the residual is checked below
  scal::GeCombination combo("GE-small", std::move(config));

  const auto& at300 = combo.measure(300);
  std::cout << "  GE at N=300: T = " << at300.seconds
            << " s, E_s = " << at300.speed_efficiency << "\n";

  // 4. Scale up to four nodes and ask: what problem size keeps E_s = 0.3,
  //    and how scalable is the combination?
  scal::ClusterCombination::Config big_config;
  big_config.cluster = machine::sunwulf::ge_ensemble(4);
  scal::GeCombination big("GE-big", std::move(big_config));

  const auto small_point = scal::required_problem_size(combo, 0.3);
  const auto big_point = scal::required_problem_size(big, 0.3);
  std::cout << "Iso-efficiency operating points (E_s = 0.3):\n"
            << "  small: N = " << small_point.n << "\n"
            << "  big:   N = " << big_point.n << "\n";

  const double psi = scal::isospeed_efficiency_scalability(
      combo.marked_speed(), combo.work(small_point.n), big.marked_speed(),
      big.work(big_point.n));
  std::cout << "Isospeed-efficiency scalability psi(small -> big) = " << psi
            << "\n(1.0 would be ideal; the gap is the sequential portion "
               "plus growing communication)\n";
  return 0;
}
