// GE vs MM — quantifying which algorithm-machine combination scales better
// (the paper's §4.4.3 comparison), with the full ladder of Sunwulf systems
// and both per-step and cumulative ψ.
#include <iostream>
#include <memory>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/scal/series.hpp"
#include "hetscale/support/table.hpp"

int main() {
  using namespace hetscale;

  auto build_series = [](bool ge, double target) {
    std::vector<std::unique_ptr<scal::Combination>> owned;
    std::vector<scal::Combination*> ptrs;
    for (int nodes : {2, 4, 8, 16}) {
      scal::ClusterCombination::Config config;
      config.cluster = ge ? machine::sunwulf::ge_ensemble(nodes)
                          : machine::sunwulf::mm_ensemble(nodes);
      const std::string name =
          (ge ? "GE-" : "MM-") + std::to_string(nodes);
      if (ge) {
        owned.push_back(std::make_unique<scal::GeCombination>(
            name, std::move(config)));
      } else {
        owned.push_back(std::make_unique<scal::MmCombination>(
            name, std::move(config)));
      }
      ptrs.push_back(owned.back().get());
    }
    auto report = scal::scalability_series(ptrs, target);
    return std::make_pair(std::move(owned), std::move(report));
  };

  const auto [ge_owned, ge] = build_series(true, 0.3);
  const auto [mm_owned, mm] = build_series(false, 0.2);

  Table table("GE (E_s = 0.3) vs MM (E_s = 0.2) on the Sunwulf ladder");
  table.set_header({"Step", "GE psi", "MM psi", "more scalable"});
  for (std::size_t i = 0; i < ge.steps.size(); ++i) {
    table.add_row({ge.steps[i].from + " -> " + ge.steps[i].to,
                   Table::fixed(ge.steps[i].psi, 3),
                   Table::fixed(mm.steps[i].psi, 3),
                   mm.steps[i].psi > ge.steps[i].psi ? "MM" : "GE"});
  }
  table.add_row({"cumulative", Table::fixed(ge.cumulative_psi(), 4),
                 Table::fixed(mm.cumulative_psi(), 4),
                 mm.cumulative_psi() > ge.cumulative_psi() ? "MM" : "GE"});
  std::cout << table
            << "\nWhy MM wins: it is perfectly parallel (no back "
               "substitution) and communicates O(p) messages once, while GE "
               "broadcasts and synchronizes N times. The metric turns that "
               "intuition into one number per scaling step.\n";
  return 0;
}
