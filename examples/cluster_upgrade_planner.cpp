// Cluster upgrade planner — the paper's Definition 4 lists three ways to
// grow a system: "increasing nodes, increasing the number of processors in
// one or more nodes, or upgrading to more powerful nodes". Given a fixed
// starting system, this example evaluates all three upgrade strategies for
// the GE workload and ranks them by isospeed-efficiency scalability: which
// upgrade lets you keep your efficiency with the *least* problem growth?
#include <iostream>
#include <memory>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/table.hpp"

namespace {

using namespace hetscale;

std::unique_ptr<scal::GeCombination> make_combo(std::string name,
                                                machine::Cluster cluster) {
  scal::ClusterCombination::Config config;
  config.cluster = std::move(cluster);
  config.with_data = false;
  return std::make_unique<scal::GeCombination>(std::move(name),
                                               std::move(config));
}

}  // namespace

int main() {
  constexpr double kTargetEs = 0.3;

  // Baseline: server (2 CPUs) + 3 SunBlades.
  machine::Cluster base;
  base.add_node("server", machine::sunwulf::server_spec(), 2);
  for (int i = 0; i < 3; ++i) {
    base.add_node("blade-" + std::to_string(i),
                  machine::sunwulf::sunblade_spec());
  }
  auto baseline = make_combo("baseline", base);

  // Strategy A: add four more SunBlade nodes.
  machine::Cluster more_nodes = base;
  for (int i = 3; i < 7; ++i) {
    more_nodes.add_node("blade-" + std::to_string(i),
                        machine::sunwulf::sunblade_spec());
  }

  // Strategy B: light up two more CPUs on the server node.
  machine::Cluster more_cpus;
  more_cpus.add_node("server", machine::sunwulf::server_spec(), 4);
  for (int i = 0; i < 3; ++i) {
    more_cpus.add_node("blade-" + std::to_string(i),
                       machine::sunwulf::sunblade_spec());
  }

  // Strategy C: replace the SunBlades with SunFire V210s (1 CPU each).
  machine::Cluster upgraded;
  upgraded.add_node("server", machine::sunwulf::server_spec(), 2);
  for (int i = 0; i < 3; ++i) {
    upgraded.add_node("v210-" + std::to_string(i),
                      machine::sunwulf::v210_spec(), 1);
  }

  const auto base_point = scal::required_problem_size(*baseline, kTargetEs);
  std::cout << "Baseline " << base.summary() << ": C = "
            << baseline->marked_speed() / 1e6 << " Mflops, N("
            << kTargetEs << ") = " << base_point.n << "\n\n";

  Table table("Upgrade strategies ranked by isospeed-efficiency scalability");
  table.set_header({"Strategy", "System", "C (Mflops)", "N for E_s=0.3",
                    "psi(base -> upgraded)"});
  struct Row {
    const char* label;
    machine::Cluster cluster;
  };
  for (auto& [label, cluster] :
       std::vector<Row>{{"A: add 4 SunBlades", more_nodes},
                        {"B: +2 server CPUs", more_cpus},
                        {"C: blades -> V210s", upgraded}}) {
    auto combo = make_combo(label, cluster);
    const auto point = scal::required_problem_size(*combo, kTargetEs);
    const double psi = scal::isospeed_efficiency_scalability(
        baseline->marked_speed(), baseline->work(base_point.n),
        combo->marked_speed(), combo->work(point.n));
    table.add_row({label, cluster.summary(),
                   Table::fixed(combo->marked_speed() / 1e6, 1),
                   std::to_string(point.n), Table::fixed(psi, 3)});
  }
  std::cout << table
            << "\nHigher psi = the upgrade preserves efficiency with less "
               "problem growth. Upgrading node speed (C) typically beats "
               "adding nodes for GE: it adds capability without adding "
               "per-step communication partners.\n";
  return 0;
}
