#include "hetscale/dist/grid.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hetscale/dist/distribution.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::dist {
namespace {

TEST(ProcessGrid, SquarestPicksLargestDivisorBelowSqrt) {
  const std::vector<std::pair<int, std::pair<int, int>>> expect{
      {1, {1, 1}}, {2, {1, 2}},  {4, {2, 2}},  {6, {2, 3}},
      {7, {1, 7}}, {8, {2, 4}},  {12, {3, 4}}, {16, {4, 4}}};
  for (const auto& [p, shape] : expect) {
    const ProcessGrid grid = ProcessGrid::squarest(p);
    EXPECT_EQ(grid.rows(), shape.first) << "p=" << p;
    EXPECT_EQ(grid.cols(), shape.second) << "p=" << p;
    EXPECT_EQ(grid.size(), p);
  }
}

TEST(ProcessGrid, SlotAndRankLookupsAreInverse) {
  const ProcessGrid grid = ProcessGrid::squarest(12);
  std::vector<int> seen(12, 0);
  for (int gr = 0; gr < grid.rows(); ++gr) {
    for (int gc = 0; gc < grid.cols(); ++gc) {
      const int rank = grid.rank_at(gr, gc);
      EXPECT_EQ(grid.row_of(rank), gr);
      EXPECT_EQ(grid.col_of(rank), gc);
      ++seen[static_cast<std::size_t>(rank)];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);  // a permutation of the ranks
}

TEST(ProcessGrid, RowsOnlyIsTheDegenerate1dShape) {
  const ProcessGrid grid = ProcessGrid::rows_only(5);
  EXPECT_EQ(grid.rows(), 5);
  EXPECT_EQ(grid.cols(), 1);
  for (int r = 0; r < 5; ++r) EXPECT_EQ(grid.rank_at(r, 0), r);
  EXPECT_EQ(grid.col_members(0), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ProcessGrid, MembersFollowGridOrder) {
  const ProcessGrid grid = ProcessGrid::squarest(6);  // 2 x 3, row-major
  EXPECT_EQ(grid.row_members(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(grid.row_members(1), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(grid.col_members(1), (std::vector<int>{1, 4}));
}

TEST(ProcessGrid, SpeedBalancedEvensOutRowAggregates) {
  // Two fast and two slow ranks: rank-order placement would put both fast
  // ones in the same grid row; the balanced factory must split them.
  const std::vector<double> speeds{55.0, 55.0, 26.0, 26.0};
  const ProcessGrid grid = ProcessGrid::speed_balanced(speeds);
  ASSERT_EQ(grid.rows(), 2);
  ASSERT_EQ(grid.cols(), 2);
  for (int gr = 0; gr < 2; ++gr) {
    double row_speed = 0.0;
    for (int rank : grid.row_members(gr)) {
      row_speed += speeds[static_cast<std::size_t>(rank)];
    }
    EXPECT_DOUBLE_EQ(row_speed, 81.0) << "grid row " << gr;
  }
}

TEST(ProcessGrid, InvalidInputsRejected) {
  EXPECT_THROW(ProcessGrid::squarest(0), PreconditionError);
  EXPECT_THROW(ProcessGrid::rows_only(-1), PreconditionError);
  EXPECT_THROW(ProcessGrid::speed_balanced(std::vector<double>{1.0, 0.0}),
               PreconditionError);
  const ProcessGrid grid = ProcessGrid::squarest(4);
  EXPECT_THROW(grid.rank_at(2, 0), PreconditionError);
  EXPECT_THROW(grid.row_of(4), PreconditionError);
}

TEST(TileMap, OwnerFollowsBlockCyclicFormula) {
  const TileMap map(ProcessGrid::squarest(4), 100, 100, 16, 16);
  const int r = map.grid().rows();
  const int c = map.grid().cols();
  for (std::int64_t ti = 0; ti < map.tile_row_count(); ++ti) {
    for (std::int64_t tj = 0; tj < map.tile_col_count(); ++tj) {
      EXPECT_EQ(map.owner(ti, tj),
                map.grid().rank_at(static_cast<int>(ti % r),
                                   static_cast<int>(tj % c)));
    }
  }
}

TEST(TileMap, EdgeTilesAreTruncated) {
  const TileMap map(ProcessGrid::squarest(4), 100, 70, 32, 32);
  EXPECT_EQ(map.tile_row_count(), 4);  // ceil(100 / 32)
  EXPECT_EQ(map.tile_col_count(), 3);  // ceil(70 / 32)
  const Tile corner = map.tile(3, 2);
  EXPECT_EQ(corner.row0, 96);
  EXPECT_EQ(corner.col0, 64);
  EXPECT_EQ(corner.rows, 4);
  EXPECT_EQ(corner.cols, 6);
  EXPECT_EQ(corner.elements(), 24);
}

TEST(TileMap, LocalGlobalRoundTripCoversEveryElement) {
  const TileMap map(ProcessGrid::squarest(6), 37, 23, 8, 5);
  for (std::int64_t gi = 0; gi < map.rows(); ++gi) {
    for (std::int64_t gj = 0; gj < map.cols(); ++gj) {
      const TileMap::Local local = map.to_local(gi, gj);
      const auto [back_i, back_j] = map.to_global(local);
      EXPECT_EQ(back_i, gi);
      EXPECT_EQ(back_j, gj);
      EXPECT_EQ(map.owner_of_index(gi, gj),
                map.owner(local.tile_row, local.tile_col));
    }
  }
}

TEST(TileMap, TilesOfPartitionTheTileSpace) {
  const TileMap map(ProcessGrid::squarest(4), 100, 100, 16, 16);
  std::int64_t tiles_seen = 0;
  std::int64_t elements_seen = 0;
  for (int rank = 0; rank < map.grid().size(); ++rank) {
    for (const Tile& t : map.tiles_of(rank)) {
      EXPECT_EQ(t.owner, rank);
      EXPECT_EQ(map.owner(t.tile_row, t.tile_col), rank);
      ++tiles_seen;
      elements_seen += t.elements();
    }
  }
  EXPECT_EQ(tiles_seen, map.tile_row_count() * map.tile_col_count());
  EXPECT_EQ(elements_seen, map.rows() * map.cols());
  const auto counts = map.element_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            map.rows() * map.cols());
}

TEST(TileMap, PanelsWalkOneTileRowOrColumn) {
  const TileMap map(ProcessGrid::squarest(4), 64, 48, 16, 16);
  const auto row = row_panel(map, 1);
  ASSERT_EQ(row.size(), static_cast<std::size_t>(map.tile_col_count()));
  for (std::size_t j = 0; j < row.size(); ++j) {
    EXPECT_EQ(row[j].tile_row, 1);
    EXPECT_EQ(row[j].tile_col, static_cast<std::int64_t>(j));
  }
  const auto col = col_panel(map, 2);
  ASSERT_EQ(col.size(), static_cast<std::size_t>(map.tile_row_count()));
  // 8 bytes per element, truncation included.
  double expect_bytes = 0.0;
  for (const Tile& t : col) {
    expect_bytes += 8.0 * static_cast<double>(t.elements());
  }
  EXPECT_DOUBLE_EQ(panel_bytes(col), expect_bytes);
}

TEST(TileMap, RowsOnlyReproducesCyclicOwners) {
  // The 1D wrapper contract: a p x 1 map in blocks of `b` rows must agree
  // with the classic owner[j] = (j / b) mod p distribution.
  const int p = 3;
  const std::int64_t n = 17;
  const std::int64_t b = 4;
  const TileMap map(ProcessGrid::rows_only(p), n, 1, b, 1);
  const auto owners = cyclic_owners(p, n, b);
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(map.owner_of_index(j, 0), owners[static_cast<std::size_t>(j)]);
    EXPECT_EQ(owners[static_cast<std::size_t>(j)],
              static_cast<int>((j / b) % p));
  }
}

TEST(TileMap, InvalidInputsRejected) {
  EXPECT_THROW(TileMap(ProcessGrid::squarest(4), -1, 8, 4, 4),
               PreconditionError);
  EXPECT_THROW(TileMap(ProcessGrid::squarest(4), 8, 8, 0, 4),
               PreconditionError);
  const TileMap map(ProcessGrid::squarest(4), 8, 8, 4, 4);
  EXPECT_THROW(map.tile(2, 0), PreconditionError);
  EXPECT_THROW(map.owner_of_index(8, 0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::dist
