#include "hetscale/dist/distribution.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hetscale/support/error.hpp"

namespace hetscale::dist {
namespace {

std::int64_t sum(const std::vector<std::int64_t>& xs) {
  return std::accumulate(xs.begin(), xs.end(), std::int64_t{0});
}

TEST(HetBlock, CountsSumToN) {
  const std::vector<double> speeds{1.0, 2.0, 3.0};
  for (std::int64_t n : {0, 1, 5, 6, 7, 100, 101}) {
    EXPECT_EQ(sum(het_block_counts(speeds, n)), n) << "n=" << n;
  }
}

TEST(HetBlock, ExactWhenProportionsAreIntegral) {
  const std::vector<double> speeds{1.0, 2.0, 3.0};
  EXPECT_EQ(het_block_counts(speeds, 6),
            (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(het_block_counts(speeds, 60),
            (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(HetBlock, WithinOneOfIdealShare) {
  const std::vector<double> speeds{26.0, 26.0, 27.5, 55.0};
  const double total = 134.5;
  for (std::int64_t n : {10, 97, 310, 1000}) {
    const auto counts = het_block_counts(speeds, n);
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      const double ideal = n * speeds[i] / total;
      EXPECT_LT(std::abs(static_cast<double>(counts[i]) - ideal), 1.0);
    }
  }
}

TEST(HetBlock, EqualSpeedsGiveBalancedBlocks) {
  const std::vector<double> speeds{1.0, 1.0, 1.0, 1.0};
  const auto counts = het_block_counts(speeds, 10);
  EXPECT_EQ(sum(counts), 10);
  for (auto c : counts) EXPECT_TRUE(c == 2 || c == 3);
}

TEST(HetBlock, MatchesHomogeneousHelper) {
  EXPECT_EQ(block_counts(4, 10),
            het_block_counts(std::vector<double>{2, 2, 2, 2}, 10));
}

TEST(BlockOffsets, PrefixSums) {
  const std::vector<std::int64_t> counts{3, 0, 2};
  EXPECT_EQ(block_offsets(counts), (std::vector<std::int64_t>{0, 3, 3, 5}));
}

TEST(HetCyclic, EveryPrefixIsNearProportional) {
  const std::vector<double> speeds{1.0, 3.0};
  const auto owners = het_cyclic_owners(speeds, 100);
  std::vector<std::int64_t> assigned(2, 0);
  for (std::size_t j = 0; j < owners.size(); ++j) {
    ++assigned[static_cast<std::size_t>(owners[j])];
    // The GE property: after any prefix, shares stay within one item of
    // proportionality, so remaining work stays balanced at every step.
    const double total = static_cast<double>(j + 1);
    EXPECT_LE(std::abs(assigned[0] - total * 0.25), 1.0 + 1e-9);
    EXPECT_LE(std::abs(assigned[1] - total * 0.75), 1.0 + 1e-9);
  }
}

TEST(HetCyclic, TotalsMatchBlockCounts) {
  const std::vector<double> speeds{26.0, 27.5, 55.0};
  const auto owners = het_cyclic_owners(speeds, 311);
  const auto counts = counts_from_owners(owners, speeds.size());
  const auto block = het_block_counts(speeds, 311);
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]),
                static_cast<double>(block[i]), 1.0);
  }
}

TEST(HetCyclic, EqualSpeedsGiveRoundRobin) {
  const std::vector<double> speeds{1.0, 1.0, 1.0};
  const auto owners = het_cyclic_owners(speeds, 9);
  EXPECT_EQ(owners, (std::vector<int>{0, 1, 2, 0, 1, 2, 0, 1, 2}));
}

TEST(HetBlockCyclic, TilesThePattern) {
  const std::vector<double> speeds{1.0, 1.0};
  const auto owners = het_block_cyclic_owners(speeds, 8, 4);
  ASSERT_EQ(owners.size(), 8u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(owners[j], owners[j + 4]);
}

TEST(CyclicOwners, HomogeneousBlockCyclic) {
  EXPECT_EQ(cyclic_owners(2, 8, 2),
            (std::vector<int>{0, 0, 1, 1, 0, 0, 1, 1}));
  EXPECT_EQ(cyclic_owners(3, 5, 1), (std::vector<int>{0, 1, 2, 0, 1}));
}

TEST(Imbalance, PerfectProportionalIsOne) {
  const std::vector<double> speeds{1.0, 2.0, 3.0};
  const std::vector<std::int64_t> counts{10, 20, 30};
  EXPECT_NEAR(imbalance(speeds, counts), 1.0, 1e-12);
}

TEST(Imbalance, EqualSplitOnHeterogeneousSpeedsIsWorse) {
  const std::vector<double> speeds{1.0, 3.0};
  const std::vector<std::int64_t> equal{30, 30};
  const std::vector<std::int64_t> proportional{15, 45};
  EXPECT_GT(imbalance(speeds, equal), imbalance(speeds, proportional));
  // Equal split: slowest does 30 items at speed 1 while ideal is 15 -> 2x.
  EXPECT_NEAR(imbalance(speeds, equal), 2.0, 1e-12);
}

TEST(Imbalance, EmptyAssignmentIsNeutral) {
  const std::vector<double> speeds{1.0, 2.0};
  const std::vector<std::int64_t> counts{0, 0};
  EXPECT_DOUBLE_EQ(imbalance(speeds, counts), 1.0);
}

TEST(HetBlock, SingleProcessorTakesEverything) {
  const std::vector<double> one{26.0};
  for (std::int64_t n : {0, 1, 97}) {
    EXPECT_EQ(het_block_counts(one, n), (std::vector<std::int64_t>{n}));
    EXPECT_NEAR(imbalance(one, het_block_counts(one, n)), 1.0, 1e-12)
        << "n=" << n;
  }
  EXPECT_TRUE(het_cyclic_owners(one, 5) == (std::vector<int>{0, 0, 0, 0, 0}));
}

TEST(HetBlock, ZeroItemsGiveAllZeroCounts) {
  const std::vector<double> speeds{26.0, 27.5, 55.0};
  EXPECT_EQ(het_block_counts(speeds, 0),
            (std::vector<std::int64_t>{0, 0, 0}));
  EXPECT_TRUE(het_cyclic_owners(speeds, 0).empty());
  EXPECT_TRUE(het_block_cyclic_owners(speeds, 0, 4).empty());
  EXPECT_EQ(block_offsets(het_block_counts(speeds, 0)),
            (std::vector<std::int64_t>{0, 0, 0, 0}));
}

TEST(HetBlock, ZeroSpeedProcessorRejected) {
  // A zero speed is a modelling error, not "give it no work": the marked
  // suite can never produce one, so it must fail loudly rather than divide.
  const std::vector<double> with_zero{26.0, 0.0, 55.0};
  EXPECT_THROW(het_block_counts(with_zero, 10), PreconditionError);
  EXPECT_THROW(het_cyclic_owners(with_zero, 10), PreconditionError);
  EXPECT_THROW(imbalance(with_zero, std::vector<std::int64_t>{1, 1, 1}),
               PreconditionError);
}

TEST(HetBlock, CountsSumToNAcrossSpeedVectors) {
  // Property sweep: every helper conserves items for awkward speed ratios
  // (irrational-ish shares, near-ties, one dominant rank) and sizes around
  // the rounding boundaries.
  const std::vector<std::vector<double>> vectors{
      {1.0},
      {1.0, 1.0 + 1e-9},
      {0.1, 0.2, 0.7},
      {26.0, 26.0, 27.5, 55.0},
      {3.14159, 2.71828, 1.41421, 1.61803, 0.57721}};
  for (const auto& speeds : vectors) {
    for (std::int64_t n : {0, 1, 2, 3, 7, 31, 32, 33, 1000}) {
      const auto counts = het_block_counts(speeds, n);
      EXPECT_EQ(sum(counts), n) << "p=" << speeds.size() << " n=" << n;
      const auto owners = het_cyclic_owners(speeds, n);
      EXPECT_EQ(sum(counts_from_owners(owners, speeds.size())), n);
      const auto offsets = block_offsets(counts);
      EXPECT_EQ(offsets.back(), n);
    }
  }
}

TEST(Distribution, InvalidInputsRejected) {
  const std::vector<double> empty;
  EXPECT_THROW(het_block_counts(empty, 10), PreconditionError);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(het_block_counts(negative, 10), PreconditionError);
  const std::vector<double> ok{1.0};
  EXPECT_THROW(het_block_counts(ok, -1), PreconditionError);
  EXPECT_THROW(het_block_cyclic_owners(ok, 10, 0), PreconditionError);
}

TEST(ColumnTiling, AliasesHetBlock) {
  const std::vector<double> speeds{2.0, 3.0};
  EXPECT_EQ(column_tiling_counts(speeds, 10), het_block_counts(speeds, 10));
}

TEST(CountsFromOwners, RejectsOutOfRangeOwner) {
  const std::vector<int> owners{0, 1, 2};
  EXPECT_THROW(counts_from_owners(owners, 2), PreconditionError);
}

}  // namespace
}  // namespace hetscale::dist
