#include <gtest/gtest.h>

#include <vector>

#include "hetscale/kernels/blas1.hpp"
#include "hetscale/kernels/flops.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::kernels {
namespace {

TEST(Blas1, AxpyAccumulates) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Blas1, AxpyLengthMismatchThrows) {
  std::vector<double> x{1, 2};
  std::vector<double> y{1};
  EXPECT_THROW(axpy(1.0, x, y), PreconditionError);
}

TEST(Blas1, DotProduct) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
}

TEST(Blas1, ScaleInPlace) {
  std::vector<double> x{1, -2, 4};
  scale(0.5, x);
  EXPECT_EQ(x, (std::vector<double>{0.5, -1, 2}));
}

TEST(Blas1, EliminateRowZeroesLeadAndUpdatesRhs) {
  // pivot row (normalized, unit lead): [1, 2], rhs 3.
  std::vector<double> pivot{1.0, 2.0};
  std::vector<double> row{4.0, 5.0};
  double rhs = 6.0;
  const double factor = eliminate_row(pivot, 3.0, row, rhs, 0);
  EXPECT_DOUBLE_EQ(factor, 4.0);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  EXPECT_DOUBLE_EQ(row[1], 5.0 - 4.0 * 2.0);
  EXPECT_DOUBLE_EQ(rhs, 6.0 - 4.0 * 3.0);
}

TEST(Blas1, EliminateRowWithZeroFactorIsNoop) {
  std::vector<double> pivot{1.0, 2.0};
  std::vector<double> row{0.0, 7.0};
  double rhs = 1.0;
  eliminate_row(pivot, 3.0, row, rhs, 0);
  EXPECT_DOUBLE_EQ(row[1], 7.0);
  EXPECT_DOUBLE_EQ(rhs, 1.0);
}

TEST(Flops, GeStepAccountingSumsToWorkload) {
  // Σ_i [normalize + (N-1-i) eliminations] + backsub == ge_workload(N),
  // the audit that guarantees the simulator charges the paper's W(N).
  for (std::int64_t n : {1, 2, 3, 5, 17, 64, 200}) {
    double total = ge_backsub_flops(n);
    for (std::int64_t i = 0; i < n; ++i) {
      total += ge_normalize_flops(n, i);
      total += static_cast<double>(n - 1 - i) * ge_eliminate_row_flops(n, i);
    }
    EXPECT_DOUBLE_EQ(total, numeric::ge_workload(static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(Flops, MmRowsSumToWorkload) {
  const std::int64_t n = 50;
  EXPECT_DOUBLE_EQ(mm_rows_flops(n, n),
                   numeric::mm_workload(static_cast<double>(n)));
  // Any split over ranks sums to the same total.
  EXPECT_DOUBLE_EQ(mm_rows_flops(n, 20) + mm_rows_flops(n, 30),
                   mm_rows_flops(n, 50));
}

TEST(Flops, JacobiSweepLinearInRows) {
  EXPECT_DOUBLE_EQ(jacobi_sweep_flops(100, 3) + jacobi_sweep_flops(100, 7),
                   jacobi_sweep_flops(100, 10));
}

}  // namespace
}  // namespace hetscale::kernels
