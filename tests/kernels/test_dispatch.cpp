// Property tests for the kernel dispatch layer: every ISA path must be
// bit-for-bit identical to the scalar reference. These sweeps cover sizes
// 0..129 (every vector-width tail shape), unaligned base offsets, and
// alias-free operands — the exact envelope the bit-identity contract in
// dispatch.hpp promises.
#include "hetscale/kernels/dispatch.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "hetscale/kernels/blas1.hpp"

namespace hetscale::kernels {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Deterministic values with awkward cases salted in: exact zeros of both
/// signs, denormals, and large magnitudes that make rounding differences
/// visible if a path reassociates or contracts.
std::vector<double> test_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 11) {
      case 3:
        out[i] = 0.0;
        break;
      case 5:
        out[i] = -0.0;
        break;
      case 7:
        out[i] = 4.9e-324;  // smallest denormal
        break;
      case 9:
        out[i] = dist(gen) * 1e300;
        break;
      default:
        out[i] = dist(gen);
    }
  }
  return out;
}

class DispatchBitIdentity : public ::testing::Test {
 protected:
  void SetUp() override {
    avx2_ = avx2_ops();
    if (avx2_ == nullptr) {
      GTEST_SKIP() << "no AVX2 on this CPU/build; nothing to compare";
    }
  }
  const KernelOps* avx2_ = nullptr;
};

TEST_F(DispatchBitIdentity, AxpyMatchesScalarForAllTailsAndOffsets) {
  for (std::size_t n = 0; n <= 129; ++n) {
    for (std::size_t offset : {std::size_t{0}, std::size_t{1},
                               std::size_t{3}}) {
      const auto x = test_values(n + offset, 17 * n + offset);
      const auto y0 = test_values(n + offset, 31 * n + offset + 1);
      const double a = -0.7368421052631579;
      auto ys = y0;
      auto yv = y0;
      scalar_ops().axpy(a, x.data() + offset, ys.data() + offset, n);
      avx2_->axpy(a, x.data() + offset, yv.data() + offset, n);
      for (std::size_t i = 0; i < n + offset; ++i) {
        ASSERT_EQ(bits(ys[i]), bits(yv[i]))
            << "n=" << n << " offset=" << offset << " i=" << i;
      }
    }
  }
}

TEST_F(DispatchBitIdentity, Rank1Update4MatchesScalarForAllTails) {
  for (std::size_t n = 0; n <= 129; ++n) {
    for (std::size_t offset : {std::size_t{0}, std::size_t{1},
                               std::size_t{3}}) {
      const auto x = test_values(n + offset, 131 * n + offset);
      const auto factors = test_values(4, n + 2);
      std::vector<std::vector<double>> rs;
      std::vector<std::vector<double>> rv;
      for (std::size_t r = 0; r < 4; ++r) {
        rs.push_back(test_values(n + offset, 7 * n + r));
        rv.push_back(rs.back());
      }
      double* ps[4] = {rs[0].data() + offset, rs[1].data() + offset,
                       rs[2].data() + offset, rs[3].data() + offset};
      double* pv[4] = {rv[0].data() + offset, rv[1].data() + offset,
                       rv[2].data() + offset, rv[3].data() + offset};
      scalar_ops().rank1_update4(x.data() + offset, ps, factors.data(), n);
      avx2_->rank1_update4(x.data() + offset, pv, factors.data(), n);
      for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t i = 0; i < n + offset; ++i) {
          ASSERT_EQ(bits(rs[r][i]), bits(rv[r][i]))
              << "n=" << n << " offset=" << offset << " row=" << r
              << " i=" << i;
        }
      }
    }
  }
}

TEST_F(DispatchBitIdentity, MmTile4MatchesScalarForAllPanelWidths) {
  for (std::size_t nc = 0; nc <= 129; ++nc) {
    for (std::size_t kc : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      const auto panel = test_values(kc * nc, 41 * nc + kc);
      std::vector<std::vector<double>> a;
      std::vector<std::vector<double>> cs;
      std::vector<std::vector<double>> cv;
      for (std::size_t r = 0; r < 4; ++r) {
        a.push_back(test_values(kc, 13 * nc + r));
        cs.push_back(test_values(nc, 19 * nc + r));
        cv.push_back(cs.back());
      }
      const double* ap[4] = {a[0].data(), a[1].data(), a[2].data(),
                             a[3].data()};
      double* ps[4] = {cs[0].data(), cs[1].data(), cs[2].data(),
                       cs[3].data()};
      double* pv[4] = {cv[0].data(), cv[1].data(), cv[2].data(),
                       cv[3].data()};
      scalar_ops().mm_tile4(ap, panel.data(), kc, nc, ps);
      avx2_->mm_tile4(ap, panel.data(), kc, nc, pv);
      for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t j = 0; j < nc; ++j) {
          ASSERT_EQ(bits(cs[r][j]), bits(cv[r][j]))
              << "nc=" << nc << " kc=" << kc << " row=" << r << " j=" << j;
        }
      }
    }
  }
}

// The public blas1 entry points go through the process-wide table; whatever
// it selected must be one of the two known tables and must agree with the
// reported ISA.
TEST(Dispatch, ActiveTableIsConsistent) {
  const KernelOps& active = ops();
  EXPECT_TRUE(active.isa == Isa::kScalar || active.isa == Isa::kAvx2);
  EXPECT_EQ(active.isa, active_isa());
  if (active.isa == Isa::kAvx2) {
    EXPECT_TRUE(cpu_supports_avx2());
  }
  EXPECT_EQ(scalar_ops().isa, Isa::kScalar);
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
}

TEST(Dispatch, Avx2TableImpliesHardwareSupport) {
  // avx2_ops() must never hand out a table the running CPU cannot execute.
  if (avx2_ops() != nullptr) {
    EXPECT_TRUE(cpu_supports_avx2());
  } else {
    EXPECT_FALSE(cpu_supports_avx2());
  }
}

// The span-level public API must hit the dispatched path end to end: a
// non-multiple-of-four row count exercises both the 4-row blocks and the
// axpy tail inside rank1_update.
TEST(Dispatch, PublicRank1UpdateMatchesPerRowAxpy) {
  const std::size_t n = 37;
  const auto x = test_values(n, 1);
  const auto factors = test_values(7, 2);
  std::vector<std::vector<double>> got;
  std::vector<std::vector<double>> want;
  for (std::size_t r = 0; r < 7; ++r) {
    got.push_back(test_values(n, 100 + r));
    want.push_back(got.back());
  }
  std::vector<double*> ptrs;
  for (auto& row : got) ptrs.push_back(row.data());
  rank1_update(x, std::span<double* const>(ptrs.data(), ptrs.size()),
               std::span<const double>(factors.data(), 7));
  for (std::size_t r = 0; r < 7; ++r) {
    axpy(-factors[r], x, want[r]);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(want[r][i]), bits(got[r][i])) << "row=" << r;
    }
  }
}

}  // namespace
}  // namespace hetscale::kernels
