#include "hetscale/support/table.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"

namespace hetscale {
namespace {

TEST(Table, RendersTitleHeaderAndRows) {
  Table t("Table X  Demo");
  t.set_header({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("Table X  Demo"), std::string::npos);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ColumnsAreAligned) {
  Table t;
  t.set_header({"A", "B"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "2"});
  const std::string out = t.str();
  // Both value columns must start at the same offset within their lines.
  const auto line_with = [&](const std::string& needle) {
    const auto pos = out.find(needle);
    const auto start = out.rfind('\n', pos) + 1;
    return pos - start;
  };
  EXPECT_EQ(line_with("1"), line_with("2"));
}

TEST(Table, RowWidthMustMatchHeader) {
  Table t;
  t.set_header({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
}

TEST(Table, NumTrimsTrailingZeros) {
  EXPECT_EQ(Table::num(3.14, 4), "3.14");
  EXPECT_EQ(Table::num(2.0, 4), "2");
  EXPECT_EQ(Table::num(0.5, 2), "0.5");
}

TEST(Table, FixedKeepsExactDecimals) {
  EXPECT_EQ(Table::fixed(0.8766, 3), "0.877");
  EXPECT_EQ(Table::fixed(1.0, 2), "1.00");
}

}  // namespace
}  // namespace hetscale
