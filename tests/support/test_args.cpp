#include "hetscale/support/args.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"

namespace hetscale {
namespace {

TEST(Args, ParsesSeparateAndInlineValues) {
  ArgParser args;
  args.add_flag("name", "a name").add_flag("count", "a count");
  args.parse({"--name", "alpha", "--count=7"});
  EXPECT_EQ(args.get("name"), "alpha");
  EXPECT_EQ(args.get_int("count", 0), 7);
}

TEST(Args, BooleanFlags) {
  ArgParser args;
  args.add_bool("verbose", "talk more");
  args.parse({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  ArgParser bare;
  bare.add_bool("verbose", "talk more");
  bare.parse(std::vector<std::string>{});
  EXPECT_FALSE(bare.has("verbose"));
}

TEST(Args, PositionalArgumentsPreserved) {
  ArgParser args;
  args.add_flag("x", "x");
  args.parse({"solve", "--x", "1", "extra"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"solve", "extra"}));
}

TEST(Args, DefaultsApply) {
  ArgParser args;
  args.add_flag("target", "the target", "0.3");
  args.parse(std::vector<std::string>{});
  EXPECT_EQ(args.get("target"), "0.3");
  EXPECT_DOUBLE_EQ(args.get_double("target", -1), -1);  // not provided
  EXPECT_EQ(args.get_or("target", "zz"), "zz");
}

TEST(Args, UnknownFlagRejected) {
  ArgParser args;
  args.add_flag("known", "known");
  EXPECT_THROW(args.parse({"--unknown", "1"}), PreconditionError);
}

TEST(Args, MissingValueRejected) {
  ArgParser args;
  args.add_flag("name", "a name");
  EXPECT_THROW(args.parse({"--name"}), PreconditionError);
}

TEST(Args, BooleanWithValueRejected) {
  ArgParser args;
  args.add_bool("verbose", "talk more");
  EXPECT_THROW(args.parse({"--verbose=yes"}), PreconditionError);
}

TEST(Args, RequiredFlagMissingThrows) {
  ArgParser args;
  args.add_flag("needed", "no default");
  args.parse(std::vector<std::string>{});
  EXPECT_THROW(args.get("needed"), PreconditionError);
}

TEST(Args, NumericValidation) {
  ArgParser args;
  args.add_flag("x", "x");
  args.parse({"--x", "12abc"});
  EXPECT_THROW(args.get_int("x", 0), PreconditionError);
  EXPECT_THROW(args.get_double("x", 0), PreconditionError);
}

TEST(Args, HelpListsFlags) {
  ArgParser args;
  args.add_flag("target", "the target", "0.3").add_bool("quiet", "hush");
  const auto text = args.help("prog");
  EXPECT_NE(text.find("--target"), std::string::npos);
  EXPECT_NE(text.find("default: 0.3"), std::string::npos);
  EXPECT_NE(text.find("--quiet"), std::string::npos);
}

TEST(Split, SplitsAndTrims) {
  EXPECT_EQ(split("a, b ,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), std::vector<std::string>{});
  EXPECT_EQ(split("one", ','), std::vector<std::string>{"one"});
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace hetscale
