#include "hetscale/support/args.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "hetscale/support/error.hpp"

namespace hetscale {
namespace {

TEST(Args, ParsesSeparateAndInlineValues) {
  ArgParser args;
  args.add_flag("name", "a name").add_flag("count", "a count");
  args.parse({"--name", "alpha", "--count=7"});
  EXPECT_EQ(args.get("name"), "alpha");
  EXPECT_EQ(args.get_int("count", 0), 7);
}

TEST(Args, BooleanFlags) {
  ArgParser args;
  args.add_bool("verbose", "talk more");
  args.parse({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  ArgParser bare;
  bare.add_bool("verbose", "talk more");
  bare.parse(std::vector<std::string>{});
  EXPECT_FALSE(bare.has("verbose"));
}

TEST(Args, PositionalArgumentsPreserved) {
  ArgParser args;
  args.add_flag("x", "x");
  args.parse({"solve", "--x", "1", "extra"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"solve", "extra"}));
}

TEST(Args, DefaultsApply) {
  ArgParser args;
  args.add_flag("target", "the target", "0.3");
  args.parse(std::vector<std::string>{});
  EXPECT_EQ(args.get("target"), "0.3");
  EXPECT_DOUBLE_EQ(args.get_double("target", -1), -1);  // not provided
  EXPECT_EQ(args.get_or("target", "zz"), "zz");
}

TEST(Args, UnknownFlagRejected) {
  ArgParser args;
  args.add_flag("known", "known");
  EXPECT_THROW(args.parse({"--unknown", "1"}), PreconditionError);
}

TEST(Args, MissingValueRejected) {
  ArgParser args;
  args.add_flag("name", "a name");
  EXPECT_THROW(args.parse({"--name"}), PreconditionError);
}

TEST(Args, BooleanWithValueRejected) {
  ArgParser args;
  args.add_bool("verbose", "talk more");
  EXPECT_THROW(args.parse({"--verbose=yes"}), PreconditionError);
}

TEST(Args, RequiredFlagMissingThrows) {
  ArgParser args;
  args.add_flag("needed", "no default");
  args.parse(std::vector<std::string>{});
  EXPECT_THROW(args.get("needed"), PreconditionError);
}

TEST(Args, NumericValidation) {
  ArgParser args;
  args.add_flag("x", "x");
  args.parse({"--x", "12abc"});
  EXPECT_THROW(args.get_int("x", 0), PreconditionError);
  EXPECT_THROW(args.get_double("x", 0), PreconditionError);
}

TEST(Args, HelpListsFlags) {
  ArgParser args;
  args.add_flag("target", "the target", "0.3").add_bool("quiet", "hush");
  const auto text = args.help("prog");
  EXPECT_NE(text.find("--target"), std::string::npos);
  EXPECT_NE(text.find("default: 0.3"), std::string::npos);
  EXPECT_NE(text.find("--quiet"), std::string::npos);
}

TEST(Args, ShortAliasForms) {
  ArgParser args;
  args.add_flag("jobs", "worker threads").add_short('j', "jobs");
  args.parse({"-j", "4"});
  EXPECT_EQ(args.get_int("jobs", 0), 4);

  ArgParser glued;
  glued.add_flag("jobs", "worker threads").add_short('j', "jobs");
  glued.parse({"-j8"});
  EXPECT_EQ(glued.get_int("jobs", 0), 8);

  ArgParser equals;
  equals.add_flag("jobs", "worker threads").add_short('j', "jobs");
  equals.parse({"-j=2"});
  EXPECT_EQ(equals.get_int("jobs", 0), 2);
}

TEST(Args, ShortAliasBooleanAndErrors) {
  ArgParser args;
  args.add_bool("verbose", "talk more").add_short('v', "verbose");
  args.parse({"-v"});
  EXPECT_TRUE(args.has("verbose"));

  ArgParser with_value;
  with_value.add_bool("verbose", "talk more").add_short('v', "verbose");
  EXPECT_THROW(with_value.parse({"-v1"}), PreconditionError);

  ArgParser missing;
  missing.add_flag("jobs", "worker threads").add_short('j', "jobs");
  EXPECT_THROW(missing.parse({"-j"}), PreconditionError);

  ArgParser undeclared;
  EXPECT_THROW(undeclared.add_short('j', "jobs"), PreconditionError);
}

TEST(Args, UndeclaredShortStaysPositional) {
  ArgParser args;
  args.add_flag("x", "x");
  args.parse({"-5", "--x", "1", "-"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"-5", "-"}));
}

TEST(Args, JobsFlagResolution) {
  ArgParser args;
  add_jobs_flag(args);
  args.parse({"-j", "3"});
  EXPECT_EQ(resolve_jobs(args), 3);

  // 0 means "hardware concurrency", the same value normalize_jobs picks.
  ArgParser zero;
  add_jobs_flag(zero);
  zero.parse({"--jobs=0"});
  EXPECT_EQ(resolve_jobs(zero), normalize_jobs(0));
  EXPECT_GE(resolve_jobs(zero), 1);

  ArgParser negative;
  add_jobs_flag(negative);
  negative.parse({"--jobs=-3"});
  EXPECT_THROW(resolve_jobs(negative), PreconditionError);
}

TEST(Args, NormalizeJobsIsTheSingleZeroDefinition) {
  EXPECT_EQ(normalize_jobs(4), 4);
  EXPECT_EQ(normalize_jobs(1), 1);
  EXPECT_GE(normalize_jobs(0), 1);
  EXPECT_THROW(normalize_jobs(-1), PreconditionError);

  // HETSCALE_JOBS=0 routes through the same normalization as --jobs 0.
  ::setenv("HETSCALE_JOBS", "0", 1);
  EXPECT_EQ(default_jobs(), normalize_jobs(0));
  ::unsetenv("HETSCALE_JOBS");
}

TEST(Args, JobsEnvFallback) {
  ArgParser args;
  add_jobs_flag(args);
  args.parse(std::vector<std::string>{});

  ::setenv("HETSCALE_JOBS", "5", 1);
  EXPECT_EQ(default_jobs(), 5);
  EXPECT_EQ(resolve_jobs(args), 5);

  ::setenv("HETSCALE_JOBS", "not-a-number", 1);
  EXPECT_GE(default_jobs(), 1);  // falls back to hardware concurrency

  ::setenv("HETSCALE_JOBS", "-2", 1);
  EXPECT_GE(default_jobs(), 1);

  ::unsetenv("HETSCALE_JOBS");
  EXPECT_GE(default_jobs(), 1);

  // An explicit flag beats the environment.
  ::setenv("HETSCALE_JOBS", "5", 1);
  ArgParser explicit_flag;
  add_jobs_flag(explicit_flag);
  explicit_flag.parse({"--jobs", "2"});
  EXPECT_EQ(resolve_jobs(explicit_flag), 2);
  ::unsetenv("HETSCALE_JOBS");
}

TEST(Args, SeedFlagResolution) {
  ArgParser args;
  add_seed_flag(args);
  args.parse({"--seed", "42"});
  EXPECT_EQ(resolve_seed(args), 42u);

  ArgParser negative;
  add_seed_flag(negative);
  negative.parse({"--seed=-3"});
  EXPECT_THROW(resolve_seed(negative), PreconditionError);

  ArgParser garbled;
  add_seed_flag(garbled);
  garbled.parse({"--seed", "12abc"});
  EXPECT_THROW(resolve_seed(garbled), PreconditionError);
}

TEST(Args, SeedEnvFallback) {
  ArgParser args;
  add_seed_flag(args);
  args.parse(std::vector<std::string>{});

  ::unsetenv("HETSCALE_SEED");
  EXPECT_EQ(default_seed(), 0u);
  EXPECT_EQ(resolve_seed(args), 0u);

  ::setenv("HETSCALE_SEED", "12345", 1);
  EXPECT_EQ(default_seed(), 12345u);
  EXPECT_EQ(resolve_seed(args), 12345u);

  ::setenv("HETSCALE_SEED", "not-a-number", 1);
  EXPECT_EQ(default_seed(), 0u);  // unparsable env falls back to 0

  // An explicit flag beats the environment.
  ::setenv("HETSCALE_SEED", "9", 1);
  ArgParser explicit_flag;
  add_seed_flag(explicit_flag);
  explicit_flag.parse({"--seed", "2"});
  EXPECT_EQ(resolve_seed(explicit_flag), 2u);
  ::unsetenv("HETSCALE_SEED");
}

TEST(Split, SplitsAndTrims) {
  EXPECT_EQ(split("a, b ,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), std::vector<std::string>{});
  EXPECT_EQ(split("one", ','), std::vector<std::string>{"one"});
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace hetscale
