#include "hetscale/support/error.hpp"

#include <gtest/gtest.h>

namespace hetscale {
namespace {

void guarded(int value) {
  HETSCALE_REQUIRE(value >= 0, "value must be non-negative");
}

void checked(bool ok) { HETSCALE_CHECK(ok, "invariant broken"); }

TEST(Error, RequirePassesOnValidInput) {
  EXPECT_NO_THROW(guarded(0));
  EXPECT_NO_THROW(guarded(17));
}

TEST(Error, RequireThrowsPreconditionError) {
  EXPECT_THROW(guarded(-1), PreconditionError);
}

TEST(Error, CheckThrowsModelError) {
  EXPECT_NO_THROW(checked(true));
  EXPECT_THROW(checked(false), ModelError);
}

TEST(Error, MessageCarriesExpressionAndContext) {
  try {
    guarded(-5);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("value >= 0"), std::string::npos);
    EXPECT_NE(what.find("non-negative"), std::string::npos);
  }
}

TEST(Error, HierarchyRootsAtError) {
  EXPECT_THROW(guarded(-1), Error);
  EXPECT_THROW(checked(false), Error);
  EXPECT_THROW(throw NumericError("singular"), Error);
}

}  // namespace
}  // namespace hetscale
