#include "hetscale/support/log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace hetscale {
namespace {

/// Swap std::clog's buffer for the test's lifetime.
class ClogCapture {
 public:
  ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~ClogCapture() { std::clog.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

TEST(Log, LevelThresholdFilters) {
  ClogCapture capture;
  const LogLevel before = log_level();
  set_log_level(LogLevel::kWarn);
  HETSCALE_INFO("hidden");
  HETSCALE_WARN("visible");
  set_log_level(before);
  EXPECT_EQ(capture.str().find("hidden"), std::string::npos);
  EXPECT_NE(capture.str().find("visible"), std::string::npos);
}

TEST(Log, ConcurrentWritersDoNotShearLines) {
  ClogCapture capture;
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        HETSCALE_INFO("thread " << t << " line " << i << " payload "
                                << "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  set_log_level(before);

  // Every emitted line must be whole: correct prefix, correct tail, and
  // exactly kThreads * kLines of them.
  std::istringstream lines(capture.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.rfind("[hetscale INFO] thread ", 0), 0u) << line;
    EXPECT_NE(line.find("payload xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
              std::string::npos)
        << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

}  // namespace
}  // namespace hetscale
