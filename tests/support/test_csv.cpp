#include "hetscale/support/csv.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"

namespace hetscale {
namespace {

TEST(Csv, EmitsHeaderAndRows) {
  CsvWriter csv({"n", "es"});
  csv.add_row({"100", "0.25"});
  csv.add_row({"200", "0.31"});
  EXPECT_EQ(csv.str(), "n,es\n100,0.25\n200,0.31\n");
}

TEST(Csv, RowWidthEnforced) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), PreconditionError);
  EXPECT_THROW(csv.add_row({"1", "2", "3"}), PreconditionError);
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, EscapesCarriageReturns) {
  EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
  EXPECT_EQ(CsvWriter::escape("dos\r\nline"), "\"dos\r\nline\"");
}

TEST(Csv, EscapeEdgeCases) {
  EXPECT_EQ(CsvWriter::escape(""), "");
  EXPECT_EQ(CsvWriter::escape("  spaced  "), "  spaced  ");
  EXPECT_EQ(CsvWriter::escape("\""), "\"\"\"\"");
  EXPECT_EQ(CsvWriter::escape(","), "\",\"");
  // All the special characters at once, quotes doubled exactly once each.
  EXPECT_EQ(CsvWriter::escape("a,\"b\"\r\nc"), "\"a,\"\"b\"\"\r\nc\"");
}

TEST(Csv, RowsWithSpecialFieldsRoundTripThroughEscaping) {
  CsvWriter csv({"name", "note"});
  csv.add_row({"GE, 2 nodes", "says \"ok\""});
  csv.add_row({"line\nbreak", "cr\rhere"});
  EXPECT_EQ(csv.str(),
            "name,note\n"
            "\"GE, 2 nodes\",\"says \"\"ok\"\"\"\n"
            "\"line\nbreak\",\"cr\rhere\"\n");
}

TEST(Csv, EmptyHeaderRejected) {
  EXPECT_THROW(CsvWriter({}), PreconditionError);
}

}  // namespace
}  // namespace hetscale
