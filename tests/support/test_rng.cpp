#include "hetscale/support/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hetscale/support/error.hpp"

namespace hetscale {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 7);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, 7);
    saw_lo |= (x == 0);
    saw_hi |= (x == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), PreconditionError);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // The child stream should not replay the parent's outputs.
  Rng parent_copy(21);
  parent_copy.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(0);
  SplitMix64 b(1);
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace hetscale
