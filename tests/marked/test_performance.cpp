#include "hetscale/marked/performance.hpp"

#include <gtest/gtest.h>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::marked {
namespace {

using machine::sunwulf::sunblade_spec;
using machine::sunwulf::v210_spec;

TEST(MarkedPerformance, ComputeComponentIsClassicMarkedSpeed) {
  const auto performance = node_marked_performance(sunblade_spec());
  EXPECT_DOUBLE_EQ(performance.compute_flops,
                   node_marked_speed(sunblade_spec()));
}

TEST(MarkedPerformance, MemoryProbeRecoversNodeBandwidth) {
  const auto performance = node_marked_performance(sunblade_spec());
  EXPECT_NEAR(performance.memory_Bps, sunblade_spec().memory_bandwidth_Bps,
              1e-3 * performance.memory_Bps);
}

TEST(MarkedPerformance, NetworkProbeRecoversLinkParameters) {
  const net::NetworkParams params;
  const auto performance =
      node_marked_performance(sunblade_spec(), params);
  EXPECT_NEAR(performance.network_Bps, params.remote.bandwidth_Bps,
              1e-6 * params.remote.bandwidth_Bps);
  // Measured latency includes the software per-message overhead.
  EXPECT_NEAR(performance.network_latency_s,
              params.remote.latency_s + params.per_message_overhead_s,
              1e-9);
}

TEST(MarkedPerformance, V210BeatsSunBladeOnEveryAxis) {
  const auto blade = node_marked_performance(sunblade_spec());
  const auto v210 = node_marked_performance(v210_spec());
  EXPECT_GT(v210.compute_flops, blade.compute_flops);
  EXPECT_GT(v210.memory_Bps, blade.memory_Bps);
  // Same NIC: network measures agree.
  EXPECT_NEAR(v210.network_Bps, blade.network_Bps, 1.0);
}

TEST(MarkedPerformance, ComputeBoundProfileDegeneratesToMarkedSpeed) {
  const auto performance = node_marked_performance(sunblade_spec());
  EXPECT_DOUBLE_EQ(
      effective_marked_speed(performance, compute_bound_profile()),
      performance.compute_flops);
}

TEST(MarkedPerformance, MemoryIntensityLowersEffectiveSpeed) {
  const auto performance = node_marked_performance(sunblade_spec());
  ApplicationProfile stream;
  stream.memory_bytes_per_flop = 12.0;  // triad-like
  const double effective = effective_marked_speed(performance, stream);
  EXPECT_LT(effective, performance.compute_flops);
  // Roofline arithmetic: 1/Ceff = 1/Cf + 12/Cm.
  EXPECT_NEAR(1.0 / effective,
              1.0 / performance.compute_flops +
                  12.0 / performance.memory_Bps,
              1e-12);
}

TEST(MarkedPerformance, NetworkIntensityLowersEffectiveSpeedFurther) {
  const auto performance = node_marked_performance(sunblade_spec());
  ApplicationProfile mem_only;
  mem_only.memory_bytes_per_flop = 4.0;
  ApplicationProfile both = mem_only;
  both.network_bytes_per_flop = 0.5;
  EXPECT_LT(effective_marked_speed(performance, both),
            effective_marked_speed(performance, mem_only));
}

TEST(MarkedPerformance, SystemEffectiveSpeedSumsNodes) {
  machine::Cluster cluster;
  cluster.add_node("a", sunblade_spec());
  cluster.add_node("b", sunblade_spec());
  ApplicationProfile profile;
  profile.memory_bytes_per_flop = 2.0;
  const double one = effective_marked_speed(
      node_marked_performance(sunblade_spec()), profile);
  EXPECT_NEAR(system_effective_marked_speed(cluster, profile), 2.0 * one,
              1e-6 * one);
}

TEST(MarkedPerformance, EffectiveSpeedOrderingCanFlipWithProfile) {
  // A node with faster compute but slower memory can lose its advantage on
  // a memory-bound profile — the reason a single marked speed is not
  // always enough (the paper's motivation for this extension).
  MarkedPerformance fast_cpu{.compute_flops = 100e6,
                             .memory_Bps = 200e6,
                             .network_Bps = 1e7,
                             .network_latency_s = 1e-4};
  MarkedPerformance balanced{.compute_flops = 60e6,
                             .memory_Bps = 900e6,
                             .network_Bps = 1e7,
                             .network_latency_s = 1e-4};
  EXPECT_GT(effective_marked_speed(fast_cpu, compute_bound_profile()),
            effective_marked_speed(balanced, compute_bound_profile()));
  ApplicationProfile memory_bound;
  memory_bound.memory_bytes_per_flop = 16.0;
  EXPECT_LT(effective_marked_speed(fast_cpu, memory_bound),
            effective_marked_speed(balanced, memory_bound));
}

TEST(MarkedPerformance, InvalidProfilesRejected) {
  const auto performance = node_marked_performance(sunblade_spec());
  ApplicationProfile bad;
  bad.memory_bytes_per_flop = -1.0;
  EXPECT_THROW(effective_marked_speed(performance, bad), PreconditionError);
}

}  // namespace
}  // namespace hetscale::marked
