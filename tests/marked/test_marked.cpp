#include "hetscale/marked/suite.hpp"

#include <gtest/gtest.h>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"

namespace hetscale::marked {
namespace {

using machine::sunwulf::server_spec;
using machine::sunwulf::sunblade_spec;
using machine::sunwulf::v210_spec;

TEST(Marked, SuiteRunsEveryKernel) {
  const auto results = run_suite(sunblade_spec());
  ASSERT_EQ(results.size(), kKernelNames.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    EXPECT_EQ(results[k].kernel, kKernelNames[k]);
    EXPECT_GT(results[k].seconds, 0.0);
    EXPECT_GT(results[k].rate_flops, 0.0);
  }
}

TEST(Marked, MeasuredRatesReflectPerKernelBias) {
  const auto spec = sunblade_spec();
  const auto results = run_suite(spec);
  for (std::size_t k = 0; k < results.size(); ++k) {
    EXPECT_NEAR(results[k].rate_flops,
                spec.cpu_rate_flops * spec.benchmark_bias[k],
                1e-3 * spec.cpu_rate_flops)
        << results[k].kernel;
  }
}

TEST(Marked, MarkedSpeedIsSustainedAverage) {
  // Biases average to 1 for the Sunwulf specs, so the marked speed lands on
  // the nominal rate — "a (benchmarked) sustained speed of that node".
  EXPECT_NEAR(node_marked_speed(sunblade_spec()),
              sunblade_spec().cpu_rate_flops, 1e-3 * units::mflops(1));
}

TEST(Marked, MarkedSpeedIsDeterministic) {
  EXPECT_DOUBLE_EQ(node_marked_speed(v210_spec()),
                   node_marked_speed(v210_spec()));
}

TEST(Marked, V210OutpacesSunBlade) {
  EXPECT_GT(node_marked_speed(v210_spec()),
            1.5 * node_marked_speed(sunblade_spec()));
}

TEST(Marked, SystemMarkedSpeedSumsUsedProcessors) {
  // The paper's worked example shape: server(1cpu) + blade + 2x V210(1cpu)
  // has C equal to the sum of the four per-CPU marked speeds.
  machine::Cluster cluster;
  cluster.add_node("sunwulf", server_spec(), 1);
  cluster.add_node("hpc-1", sunblade_spec());
  cluster.add_node("hpc-65", v210_spec(), 1);
  cluster.add_node("hpc-66", v210_spec(), 1);
  const double expected =
      node_marked_speed(server_spec()) + node_marked_speed(sunblade_spec()) +
      2.0 * node_marked_speed(v210_spec());
  EXPECT_NEAR(system_marked_speed(cluster), expected, 1.0);
}

TEST(Marked, RankSpeedsFollowProcessorOrder) {
  machine::Cluster cluster;
  cluster.add_node("sunwulf", server_spec(), 2);
  cluster.add_node("hpc-1", sunblade_spec());
  const auto speeds = rank_marked_speeds(cluster);
  ASSERT_EQ(speeds.size(), 3u);
  EXPECT_DOUBLE_EQ(speeds[0], speeds[1]);  // two server CPUs
  EXPECT_NE(speeds[0], speeds[2]);
}

TEST(Marked, ScaleChangesRuntimeNotRate) {
  const auto small = run_suite(sunblade_spec(), 1.0);
  const auto big = run_suite(sunblade_spec(), 2.0);
  for (std::size_t k = 0; k < small.size(); ++k) {
    EXPECT_NEAR(big[k].seconds, 2.0 * small[k].seconds, 1e-9);
    EXPECT_NEAR(big[k].rate_flops, small[k].rate_flops, 1e-3);
  }
}

TEST(Marked, MismatchedBiasVectorRejected) {
  auto spec = sunblade_spec();
  spec.benchmark_bias = {1.0, 1.0};  // suite has 5 kernels
  EXPECT_THROW(run_suite(spec), PreconditionError);
}

TEST(Marked, KernelFlopsScaleValidated) {
  EXPECT_THROW(kernel_flops(0.0), PreconditionError);
  EXPECT_THROW(kernel_flops(-1.0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::marked
