// API-contract checks: every documented precondition of the runtime
// actually fires, with the failure surfacing from Machine::run as a typed
// exception (coroutine exceptions propagate through the scheduler).
#include <gtest/gtest.h>

#include <string>

#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster trio() {
  machine::Cluster cluster;
  for (int i = 0; i < 3; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

template <class Body>
void expect_rejected(Body&& body) {
  auto machine = Machine::switched(trio());
  EXPECT_THROW(
      machine.run([&body](Comm& comm) -> Task<void> {
        if (comm.rank() == 0) co_await body(comm);
      }),
      PreconditionError);
}

TEST(Contracts, SendDestinationOutOfRange) {
  expect_rejected([](Comm& comm) { return comm.send(9, 1, 8.0, {}); });
  expect_rejected([](Comm& comm) { return comm.send(-1, 1, 8.0, {}); });
}

TEST(Contracts, RecvSourceOutOfRange) {
  expect_rejected([](Comm& comm) { return comm.recv(17, 1); });
}

TEST(Contracts, BcastRootOutOfRange) {
  expect_rejected([](Comm& comm) { return comm.bcast(5, 8.0, {}); });
}

TEST(Contracts, GatherRootOutOfRange) {
  expect_rejected([](Comm& comm) { return comm.gather(-2, 8.0, {}); });
}

TEST(Contracts, ScatterNeedsPartPerRank) {
  expect_rejected([](Comm& comm) {
    std::vector<Payload> parts(1);
    std::vector<double> bytes(1, 8.0);
    return comm.scatter(0, bytes, std::move(parts));
  });
}

TEST(Contracts, ComputeRejectsBadEfficiency) {
  expect_rejected(
      [](Comm& comm) { return comm.compute(1e6, /*efficiency=*/0.0); });
}

TEST(Contracts, NegativeBytesRejectedByNetwork) {
  expect_rejected([](Comm& comm) { return comm.send(1, 1, -8.0, {}); });
}

TEST(Contracts, MachineRejectsNullNetwork) {
  EXPECT_THROW(Machine(trio(), nullptr), PreconditionError);
}

TEST(Contracts, MachineRejectsEmptyCluster) {
  EXPECT_THROW(Machine::switched(machine::Cluster{}), PreconditionError);
}

TEST(Contracts, RankAccessorsValidateRange) {
  auto machine = Machine::switched(trio());
  EXPECT_THROW(machine.processor(3), PreconditionError);
  EXPECT_THROW(machine.mailbox(-1), PreconditionError);
  EXPECT_THROW(machine.rank_stats(99), PreconditionError);
}

TEST(Contracts, QuiescenceWithPendingReceiverDiagnosesTheWait) {
  auto machine = Machine::switched(trio());
  try {
    machine.run([](Comm& comm) -> Task<void> {
      // Rank 0 waits on a tag nobody ever sends: mailbox exhaustion.
      if (comm.rank() == 0) co_await comm.recv(1, /*tag=*/7);
    });
    FAIL() << "expected a deadlock diagnosis";
  } catch (const des::DeadlockError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("rank 0 blocked in recv(source=1, tag=7)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("0 pending unmatched message"), std::string::npos)
        << what;
    EXPECT_NE(what.find("matching receive"), std::string::npos) << what;
  }
}

TEST(Contracts, TagMismatchDiagnosisNamesThePendingMessage) {
  auto machine = Machine::switched(trio());
  try {
    machine.run([](Comm& comm) -> Task<void> {
      // Rank 1 posts tag 3; rank 0 waits for tag 7 — the message sits
      // unmatched in the mailbox while the receiver starves.
      if (comm.rank() == 1) co_await comm.send(0, /*tag=*/3, 8.0, {});
      if (comm.rank() == 0) co_await comm.recv(1, /*tag=*/7);
    });
    FAIL() << "expected a deadlock diagnosis";
  } catch (const des::DeadlockError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("rank 0 blocked in recv(source=1, tag=7)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("1 pending unmatched message"), std::string::npos)
        << what;
  }
}

TEST(Contracts, FailureInOneRankSurfacesWithoutHangingOthers) {
  auto machine = Machine::switched(trio());
  EXPECT_THROW(machine.run([](Comm& comm) -> Task<void> {
                 if (comm.rank() == 1) {
                   co_await comm.compute(-1.0);  // violates the contract
                 } else {
                   co_await comm.compute(1e6);  // others complete fine
                 }
               }),
               PreconditionError);
}

}  // namespace
}  // namespace hetscale::vmpi
