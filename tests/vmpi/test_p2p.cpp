#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster test_cluster(int nodes, double mflops = 50.0) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(mflops), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 1e7};
  p.per_message_overhead_s = 1e-5;
  return p;
}

TEST(P2P, PayloadArrivesIntact) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  auto out = std::make_shared<std::vector<double>>();
  machine.run([out](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      const std::vector<double> data{1.0, 2.0, 3.0};
      co_await comm.send(1, 7, 24.0, Payload::copy_of(data));
    } else {
      auto msg = co_await comm.recv(0, 7);
      EXPECT_EQ(msg.source, 0);
      EXPECT_EQ(msg.tag, 7);
      const auto view = msg.payload.doubles();
      out->assign(view.begin(), view.end());
    }
  });
  EXPECT_EQ(*out, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(P2P, RecvBeforeSendBlocksUntilArrival) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  auto recv_time = std::make_shared<double>(0.0);
  machine.run([recv_time](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.compute(50e6);  // 1 s of work before sending
      co_await comm.send(1, 1, 1000.0, {});
    } else {
      auto msg = co_await comm.recv(0, 1);
      *recv_time = comm.now();
      EXPECT_DOUBLE_EQ(msg.arrival, comm.now());
    }
  });
  // overhead 1e-5 + wire 1e-4 + latency 1e-4 after the 1 s compute.
  EXPECT_NEAR(*recv_time, 1.0 + 1e-5 + 1e-4 + 1e-4, 1e-9);
}

TEST(P2P, SendBeforeRecvIsBuffered) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  auto recv_time = std::make_shared<double>(0.0);
  machine.run([recv_time](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(1, 1, 1000.0, {});
    } else {
      co_await comm.compute(100e6);  // receiver busy for 2 s
      co_await comm.recv(0, 1);
      *recv_time = comm.now();
    }
  });
  // Message long arrived; recv returns at the receiver's own time.
  EXPECT_NEAR(*recv_time, 2.0, 1e-9);
}

TEST(P2P, TagsAreMatchedNotJustOrder) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  auto order = std::make_shared<std::vector<int>>();
  machine.run([order](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(1, /*tag=*/10, 8.0, Payload(1));
      co_await comm.send(1, /*tag=*/20, 8.0, Payload(2));
    } else {
      // Receive in reverse tag order.
      auto second = co_await comm.recv(0, 20);
      auto first = co_await comm.recv(0, 10);
      order->push_back(second.value<int>());
      order->push_back(first.value<int>());
    }
  });
  EXPECT_EQ(*order, (std::vector<int>{2, 1}));
}

TEST(P2P, NonOvertakingSameTag) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  auto values = std::make_shared<std::vector<int>>();
  machine.run([values](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      for (int i = 0; i < 5; ++i) co_await comm.send(1, 3, 8.0, Payload(i));
    } else {
      for (int i = 0; i < 5; ++i) {
        auto msg = co_await comm.recv(0, 3);
        values->push_back(msg.value<int>());
      }
    }
  });
  EXPECT_EQ(*values, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(P2P, AnySourceAndAnyTagMatch) {
  auto machine = Machine::shared_bus(test_cluster(3), fast_params());
  auto total = std::make_shared<int>(0);
  machine.run([total](Comm& comm) -> Task<void> {
    if (comm.rank() != 0) {
      co_await comm.send(0, comm.rank() * 100, 8.0, Payload(comm.rank()));
    } else {
      for (int i = 0; i < 2; ++i) {
        auto msg = co_await comm.recv(kAnySource, kAnyTag);
        *total += msg.value<int>();
      }
    }
  });
  EXPECT_EQ(*total, 3);
}

TEST(P2P, MissingSendDeadlocksWithDiagnostic) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  EXPECT_THROW(machine.run([](Comm& comm) -> Task<void> {
                 if (comm.rank() == 1) co_await comm.recv(0, 1);
               }),
               ModelError);
}

TEST(P2P, SendToSelfRejected) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  EXPECT_THROW(machine.run([](Comm& comm) -> Task<void> {
                 if (comm.rank() == 0) co_await comm.send(0, 1, 8.0, {});
               }),
               PreconditionError);
}

TEST(P2P, IntraNodeTransfersAreFast) {
  machine::Cluster cluster;
  cluster.add_node("big",
                   machine::NodeSpec{"Test", 2, units::mflops(50), 1e9, 4e8, {1.0}});
  auto machine = Machine::shared_bus(std::move(cluster), fast_params());
  auto arrival = std::make_shared<double>(0.0);
  machine.run([arrival](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(1, 1, 1e5, {});
    } else {
      auto msg = co_await comm.recv(0, 1);
      *arrival = msg.arrival;
    }
  });
  // Local path: overhead + 5 us + 1e5/400 MBps = 0.25 ms-ish, far below
  // the remote path's 10 ms wire time.
  EXPECT_LT(*arrival, 1e-3);
}

TEST(P2P, MachineIsSingleShot) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  machine.run([](Comm&) -> Task<void> { co_return; });
  EXPECT_THROW(machine.run([](Comm&) -> Task<void> { co_return; }),
               PreconditionError);
}

TEST(P2P, RankStatsCountTraffic) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  const auto result = machine.run([](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(1, 1, 100.0, {});
      co_await comm.send(1, 2, 200.0, {});
    } else {
      co_await comm.recv(0, 1);
      co_await comm.recv(0, 2);
    }
  });
  EXPECT_EQ(result.ranks[0].messages_sent, 2u);
  EXPECT_DOUBLE_EQ(result.ranks[0].bytes_sent, 300.0);
  EXPECT_EQ(result.ranks[1].messages_sent, 0u);
  EXPECT_GT(result.ranks[1].comm_s, 0.0);
  EXPECT_EQ(result.network.messages, 2u);
}

}  // namespace
}  // namespace hetscale::vmpi
