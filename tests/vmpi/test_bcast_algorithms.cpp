#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster test_cluster(int nodes) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

/// Runs one bcast of `bytes` from `root` under the given tuning and checks
/// every rank got the payload; returns completion time (max over ranks).
double run_bcast(int p, int root, double bytes,
                 const CollectiveTuning& tuning) {
  auto machine = Machine::switched(test_cluster(p));
  machine.set_tuning(tuning);
  auto latest = std::make_shared<double>(0.0);
  auto sum = std::make_shared<int>(0);
  machine.run([root, bytes, latest, sum](Comm& comm) -> Task<void> {
    Payload payload;
    if (comm.rank() == root) payload = Payload(777);
    const Payload out = co_await comm.bcast(root, bytes, std::move(payload));
    *sum += out.as<int>();
    *latest = std::max(*latest, comm.now());
  });
  EXPECT_EQ(*sum, 777 * p);
  return *latest;
}

struct BcastCase {
  int p;
  int root;
};

class BcastAlgorithms : public ::testing::TestWithParam<BcastCase> {};
INSTANTIATE_TEST_SUITE_P(
    Shapes, BcastAlgorithms,
    ::testing::Values(BcastCase{2, 0}, BcastCase{3, 2}, BcastCase{7, 0},
                      BcastCase{8, 5}, BcastCase{16, 0}, BcastCase{17, 16}));

TEST_P(BcastAlgorithms, FlatTreeDeliversFromAnyRoot) {
  CollectiveTuning tuning;
  tuning.small_bcast = BcastAlgorithm::kFlatTree;
  run_bcast(GetParam().p, GetParam().root, 1e3, tuning);
}

TEST_P(BcastAlgorithms, BinomialTreeDeliversFromAnyRoot) {
  CollectiveTuning tuning;
  tuning.small_bcast = BcastAlgorithm::kBinomialTree;
  run_bcast(GetParam().p, GetParam().root, 1e3, tuning);
}

TEST_P(BcastAlgorithms, LargeMessagePathDeliversFromAnyRoot) {
  CollectiveTuning tuning;
  tuning.large_bcast_threshold_bytes = 100.0;  // force the vdG path
  run_bcast(GetParam().p, GetParam().root, 1e3, tuning);
}

TEST(BcastAlgorithms, BinomialBeatsFlatAtScaleOnSwitch) {
  CollectiveTuning flat;
  flat.small_bcast = BcastAlgorithm::kFlatTree;
  CollectiveTuning binomial;
  binomial.small_bcast = BcastAlgorithm::kBinomialTree;
  const double t_flat = run_bcast(32, 0, 4e3, flat);
  const double t_binomial = run_bcast(32, 0, 4e3, binomial);
  EXPECT_LT(t_binomial, 0.5 * t_flat);  // log p vs p rounds
}

TEST(BcastAlgorithms, BinomialScalesLogarithmically) {
  CollectiveTuning binomial;
  binomial.small_bcast = BcastAlgorithm::kBinomialTree;
  const double t8 = run_bcast(8, 0, 2e3, binomial);
  const double t64 = run_bcast(64, 0, 2e3, binomial);
  // 3 rounds -> 6 rounds: time should roughly double, nowhere near 8x.
  EXPECT_LT(t64, 3.0 * t8);
  EXPECT_GT(t64, 1.5 * t8);
}

TEST(BcastAlgorithms, VdGBeatsFlatForLargeMessages) {
  // Compare within the paper-era family: flat small-message tree vs the
  // vdG scatter+ring, so the ratio is ~2m/B against (p-1)m/B.
  CollectiveTuning flat_only = CollectiveTuning::legacy_flat();
  flat_only.large_bcast_threshold_bytes = 1e18;  // never switch
  CollectiveTuning with_vdg = CollectiveTuning::legacy_flat();
  const double bytes = 1e6;
  const double t_flat = run_bcast(16, 0, bytes, flat_only);
  const double t_vdg = run_bcast(16, 0, bytes, with_vdg);
  EXPECT_LT(t_vdg, 0.4 * t_flat);  // ~2m/B vs (p-1)m/B
}

TEST(BcastAlgorithms, ThresholdBoundaryIsRespected) {
  // Just below the threshold: flat (root-serialized, slower at p=16);
  // at the threshold: vdG.
  CollectiveTuning tuning;  // default 12288
  const double below = run_bcast(16, 0, 12287.0, tuning);
  const double at = run_bcast(16, 0, 12288.0, tuning);
  EXPECT_LT(at, below);  // larger message, yet faster: algorithm switched
}

TEST(BcastAlgorithms, SingleRankBcastIsFree) {
  CollectiveTuning tuning;
  tuning.large_bcast_threshold_bytes = 100.0;
  EXPECT_DOUBLE_EQ(run_bcast(1, 0, 1e6, tuning), 0.0);
}

}  // namespace
}  // namespace hetscale::vmpi
