#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster test_cluster(int nodes) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 1e7};
  p.per_message_overhead_s = 1e-5;
  return p;
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 5, 9, 17));

TEST_P(CollectiveSizes, BcastDeliversRootPayloadEverywhere) {
  const int p = GetParam();
  auto machine = Machine::shared_bus(test_cluster(p), fast_params());
  auto received = std::make_shared<std::vector<int>>(p, -1);
  machine.run([received](Comm& comm) -> Task<void> {
    Payload payload;
    if (comm.rank() == 0) payload = Payload(1234);
    const Payload out = co_await comm.bcast(0, 8.0, std::move(payload));
    (*received)[static_cast<std::size_t>(comm.rank())] = out.as<int>();
  });
  for (int v : *received) EXPECT_EQ(v, 1234);
}

TEST_P(CollectiveSizes, BarrierSynchronizesEveryone) {
  const int p = GetParam();
  auto machine = Machine::shared_bus(test_cluster(p), fast_params());
  auto after = std::make_shared<std::vector<double>>(p, -1.0);
  auto slowest_arrival = std::make_shared<double>(0.0);
  machine.run([after, slowest_arrival](Comm& comm) -> Task<void> {
    // Rank r arrives at the barrier at a staggered time.
    co_await comm.compute(static_cast<double>(comm.rank()) * 5e6);
    *slowest_arrival = std::max(*slowest_arrival, comm.now());
    co_await comm.barrier();
    (*after)[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  for (double t : *after) {
    EXPECT_GE(t + 1e-12, *slowest_arrival);
  }
}

TEST_P(CollectiveSizes, GatherCollectsEveryRanksContribution) {
  const int p = GetParam();
  auto machine = Machine::shared_bus(test_cluster(p), fast_params());
  auto sum = std::make_shared<int>(0);
  machine.run([sum](Comm& comm) -> Task<void> {
    auto parts =
        co_await comm.gather(0, 8.0, Payload(comm.rank() * comm.rank()));
    if (comm.rank() == 0) {
      for (const auto& part : parts) *sum += part.as<int>();
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
  int expect = 0;
  for (int r = 0; r < p; ++r) expect += r * r;
  EXPECT_EQ(*sum, expect);
}

TEST_P(CollectiveSizes, ScatterDeliversPerRankParts) {
  const int p = GetParam();
  auto machine = Machine::shared_bus(test_cluster(p), fast_params());
  auto got = std::make_shared<std::vector<int>>(p, -1);
  machine.run([got, p](Comm& comm) -> Task<void> {
    std::vector<Payload> parts;
    std::vector<double> bytes;
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        parts.emplace_back(10 * r);
        bytes.push_back(8.0);
      }
    }
    const Payload mine = co_await comm.scatter(0, bytes, std::move(parts));
    (*got)[static_cast<std::size_t>(comm.rank())] = mine.as<int>();
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ((*got)[static_cast<std::size_t>(r)], 10 * r);
}

TEST_P(CollectiveSizes, ReduceSumAddsEverything) {
  const int p = GetParam();
  auto machine = Machine::shared_bus(test_cluster(p), fast_params());
  auto total = std::make_shared<double>(-1.0);
  machine.run([total](Comm& comm) -> Task<void> {
    const double out =
        co_await comm.reduce_sum(0, static_cast<double>(comm.rank() + 1));
    if (comm.rank() == 0) *total = out;
  });
  EXPECT_DOUBLE_EQ(*total, p * (p + 1) / 2.0);
}

TEST_P(CollectiveSizes, AllreduceSumVisibleEverywhere) {
  const int p = GetParam();
  auto machine = Machine::shared_bus(test_cluster(p), fast_params());
  auto values = std::make_shared<std::vector<double>>(p, -1.0);
  machine.run([values](Comm& comm) -> Task<void> {
    const double out = co_await comm.allreduce_sum(1.5);
    (*values)[static_cast<std::size_t>(comm.rank())] = out;
  });
  for (double v : *values) EXPECT_DOUBLE_EQ(v, 1.5 * p);
}

TEST(Collectives, ConsecutiveBcastsDoNotInterleave) {
  auto machine = Machine::shared_bus(test_cluster(4), fast_params());
  auto sums = std::make_shared<std::vector<int>>();
  machine.run([sums](Comm& comm) -> Task<void> {
    for (int round = 0; round < 3; ++round) {
      Payload payload;
      if (comm.rank() == 0) payload = Payload(round * 7);
      const Payload out = co_await comm.bcast(0, 8.0, std::move(payload));
      if (comm.rank() == 3) sums->push_back(out.as<int>());
    }
  });
  EXPECT_EQ(*sums, (std::vector<int>{0, 7, 14}));
}

TEST(Collectives, BcastCostGrowsLinearlyOnSharedBus) {
  // Flat tree over a serialized medium: completion ~ (p-1)(o + L + m/B).
  auto time_for = [&](int p) {
    auto machine = Machine::shared_bus(test_cluster(p), fast_params());
    auto latest = std::make_shared<double>(0.0);
    machine.run([latest](Comm& comm) -> Task<void> {
      Payload payload;
      if (comm.rank() == 0) payload = Payload(1);
      co_await comm.bcast(0, 1e4, std::move(payload));
      *latest = std::max(*latest, comm.now());
    });
    return *latest;
  };
  const double t4 = time_for(4);
  const double t8 = time_for(8);
  const double t16 = time_for(16);
  // (p-1) scaling: (t16 / t8) should be close to 15/7, (t8 / t4) to 7/3.
  EXPECT_NEAR(t8 / t4, 7.0 / 3.0, 0.15);
  EXPECT_NEAR(t16 / t8, 15.0 / 7.0, 0.15);
}

TEST(Collectives, BarrierCostIsAffineInWorldSize) {
  // T_barrier(p) = const + (p-1)·unit on the shared bus (the end latency is
  // pipelined, everything else serializes): differences scale linearly.
  // This is the paper-era flat barrier; pin it — the tree default has a
  // different (logarithmic-depth) law.
  auto time_for = [&](int p) {
    auto machine = Machine::shared_bus(test_cluster(p), fast_params(),
                                       CollectiveTuning::legacy_flat());
    auto latest = std::make_shared<double>(0.0);
    machine.run([latest](Comm& comm) -> Task<void> {
      co_await comm.barrier();
      *latest = std::max(*latest, comm.now());
    });
    return *latest;
  };
  const double t4 = time_for(4);
  const double t8 = time_for(8);
  const double t16 = time_for(16);
  EXPECT_GT(t8, t4);
  EXPECT_GT(t16, t8);
  // (t16 - t8) / (t8 - t4) = (15-7)/(7-3) = 2 for an affine law.
  EXPECT_NEAR((t16 - t8) / (t8 - t4), 2.0, 0.2);
}

}  // namespace
}  // namespace hetscale::vmpi
