// Group (sub-communicator) semantics: member addressing by group index,
// bcast/gather over a rank subset, and concurrent collectives on disjoint
// groups sharing one tag — the exact pattern SUMMA's row/column panel
// exchanges rely on.
#include "hetscale/vmpi/group.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster test_cluster(int nodes) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 1e7};
  p.per_message_overhead_s = 1e-5;
  return p;
}

constexpr int kTag = 7;

TEST(Group, IndexAndWorldRankAgree) {
  auto machine = Machine::shared_bus(test_cluster(4), fast_params());
  machine.run([](Comm& comm) -> Task<void> {
    if (comm.rank() % 2 != 0) co_return;
    Group evens(comm, {0, 2});
    EXPECT_EQ(evens.size(), 2);
    EXPECT_EQ(evens.rank(), comm.rank() / 2);
    EXPECT_EQ(evens.world_rank(0), 0);
    EXPECT_EQ(evens.world_rank(1), 2);
  });
}

TEST(Group, BcastReachesOnlyTheMembers) {
  auto machine = Machine::shared_bus(test_cluster(5), fast_params());
  auto got = std::make_shared<std::vector<int>>(5, -1);
  machine.run([got](Comm& comm) -> Task<void> {
    if (comm.rank() == 2) co_return;  // not a member; must not be touched
    Group group(comm, {0, 1, 3, 4});
    Payload payload;
    if (group.rank() == 1) payload = Payload(4321);
    const Payload out =
        co_await group.bcast(/*root_index=*/1, kTag, 8.0, std::move(payload));
    (*got)[static_cast<std::size_t>(comm.rank())] = out.as<int>();
  });
  EXPECT_EQ(*got, (std::vector<int>{4321, 4321, -1, 4321, 4321}));
}

TEST(Group, GatherOrdersPartsByGroupIndex) {
  auto machine = Machine::shared_bus(test_cluster(4), fast_params());
  auto parts_seen = std::make_shared<std::vector<int>>();
  machine.run([parts_seen](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) co_return;
    // Members deliberately out of world order: group index != world rank.
    Group group(comm, {3, 1, 2});
    auto parts = co_await group.gather(/*root_index=*/0, kTag, 8.0,
                                       Payload(comm.rank() * 10));
    if (group.rank() == 0) {
      for (const auto& part : parts) parts_seen->push_back(part.as<int>());
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
  EXPECT_EQ(*parts_seen, (std::vector<int>{30, 10, 20}));
}

TEST(Group, DisjointGroupsShareOneTagSafely) {
  // Two simultaneous bcasts, one per "grid row", both on kTag. Disjoint
  // membership must keep the matching unambiguous.
  auto machine = Machine::shared_bus(test_cluster(4), fast_params());
  auto got = std::make_shared<std::vector<int>>(4, -1);
  machine.run([got](Comm& comm) -> Task<void> {
    const bool low = comm.rank() < 2;
    Group row(comm, low ? std::vector<int>{0, 1} : std::vector<int>{2, 3});
    Payload payload;
    if (row.rank() == 0) payload = Payload(low ? 100 : 200);
    const Payload out =
        co_await row.bcast(/*root_index=*/0, kTag, 8.0, std::move(payload));
    (*got)[static_cast<std::size_t>(comm.rank())] = out.as<int>();
  });
  EXPECT_EQ(*got, (std::vector<int>{100, 100, 200, 200}));
}

TEST(Group, SingletonCollectivesAreLocal) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  machine.run([](Comm& comm) -> Task<void> {
    Group solo(comm, {comm.rank()});
    const Payload out =
        co_await solo.bcast(0, kTag, 1e9, Payload(comm.rank()));
    EXPECT_EQ(out.as<int>(), comm.rank());
    auto parts = co_await solo.gather(0, kTag, 1e9, Payload(7));
    EXPECT_EQ(parts.size(), 1u);  // ASSERT_* cannot `return` in a coroutine
    if (parts.size() == 1u) EXPECT_EQ(parts[0].as<int>(), 7);
  });
  // Payload-size 1e9 over the slow bus would dominate the clock if a
  // singleton collective actually touched the network.
  EXPECT_LT(machine.scheduler().now(), 1.0);
}

TEST(Group, InvalidMembershipRejected) {
  auto machine = Machine::shared_bus(test_cluster(3), fast_params());
  machine.run([](Comm& comm) -> Task<void> {
    if (comm.rank() != 0) co_return;
    EXPECT_THROW(Group(comm, {1, 2}), PreconditionError);     // caller absent
    EXPECT_THROW(Group(comm, {0, 0, 1}), PreconditionError);  // duplicate
    EXPECT_THROW(Group(comm, {0, 3}), PreconditionError);     // out of range
    co_return;
  });
}

}  // namespace
}  // namespace hetscale::vmpi
