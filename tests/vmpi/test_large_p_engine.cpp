// The large-p engine's contracts: allreduce's on-wire budget under both
// collective families (the flat family really pays reduce + bcast — the
// "double charge" — and the CommMatrix pins exactly what each family
// costs), the binomial broadcast's equivalence to the flat one for every
// root and world size, the mailbox's (source, tag) index semantics, and
// the DES queue / coroutine-frame high-water marks staying linear in p at
// 4096 concurrent rank actors.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hetscale/des/scheduler.hpp"
#include "hetscale/obs/profiler.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"
#include "hetscale/vmpi/message.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster test_cluster(int nodes) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

/// Totals of one phase across the whole CommMatrix.
struct PhaseTotal {
  std::uint64_t messages = 0;
  double bytes = 0.0;
};

PhaseTotal phase_total(const std::vector<obs::CommCell>& cells,
                       obs::CommPhase phase) {
  PhaseTotal total;
  for (const obs::CommCell& cell : cells) {
    if (cell.phase != static_cast<int>(phase)) continue;
    total.messages += cell.messages;
    total.bytes += cell.bytes;
  }
  return total;
}

/// One allreduce_sum of rank+1 over p ranks under `tuning`; checks every
/// rank got p(p+1)/2 and returns the traced CommMatrix cells.
std::vector<obs::CommCell> run_allreduce(int p,
                                         const CollectiveTuning& tuning) {
  auto machine = Machine::switched(test_cluster(p), {}, tuning);
  auto& tracer = machine.enable_tracing();
  auto correct = std::make_shared<int>(0);
  const double expected = p * (p + 1) / 2.0;
  machine.run([correct, expected](Comm& comm) -> Task<void> {
    const double total = co_await comm.allreduce_sum(comm.rank() + 1.0);
    if (total == expected) ++*correct;
  });
  EXPECT_EQ(*correct, p) << "allreduce value wrong on some rank at p=" << p;
  return tracer.comm().cells();
}

// Satellite regression for the allreduce "double charge": the legacy flat
// family implements allreduce as reduce (a flat gather of p scalars to the
// root) followed by a flat bcast — 2(p-1) messages and 16(p-1) bytes on
// the wire, attributed to the gather and bcast phases. Pinning the exact
// budget keeps any future rewrite from silently doubling it again.
TEST(LargePEngine, AllreduceFlatFamilyPaysReducePlusBcast) {
  const int p = 5;
  const auto cells = run_allreduce(p, CollectiveTuning::legacy_flat());
  const PhaseTotal gather = phase_total(cells, obs::CommPhase::kGather);
  const PhaseTotal bcast = phase_total(cells, obs::CommPhase::kBcast);
  const PhaseTotal p2p = phase_total(cells, obs::CommPhase::kP2p);
  EXPECT_EQ(gather.messages, static_cast<std::uint64_t>(p - 1));
  EXPECT_DOUBLE_EQ(gather.bytes, 8.0 * (p - 1));
  EXPECT_EQ(bcast.messages, static_cast<std::uint64_t>(p - 1));
  EXPECT_DOUBLE_EQ(bcast.bytes, 8.0 * (p - 1));
  EXPECT_EQ(p2p.messages, 0u);
  std::uint64_t all = 0;
  for (const obs::CommCell& cell : cells) all += cell.messages;
  EXPECT_EQ(all, static_cast<std::uint64_t>(2 * (p - 1)));
}

// The recursive-doubling family pays one butterfly instead: p a power of
// two costs exactly p*log2(p) messages, and a remainder of rem ranks adds
// one fold-in and one unfold message each — all in the allreduce phase.
TEST(LargePEngine, AllreduceDoublingFamilyMessageBudget) {
  {  // p = 8: pure butterfly, 8 * 3 messages.
    const auto cells = run_allreduce(8, CollectiveTuning::tree());
    const PhaseTotal allreduce =
        phase_total(cells, obs::CommPhase::kAllreduce);
    EXPECT_EQ(allreduce.messages, 24u);
    EXPECT_DOUBLE_EQ(allreduce.bytes, 8.0 * 24);
    std::uint64_t all = 0;
    for (const obs::CommCell& cell : cells) all += cell.messages;
    EXPECT_EQ(all, 24u);
  }
  {  // p = 5: 4 * log2(4) butterfly + 1 fold-in + 1 unfold = 10.
    const auto cells = run_allreduce(5, CollectiveTuning::tree());
    const PhaseTotal allreduce =
        phase_total(cells, obs::CommPhase::kAllreduce);
    EXPECT_EQ(allreduce.messages, 10u);
    EXPECT_DOUBLE_EQ(allreduce.bytes, 8.0 * 10);
  }
}

/// One bcast of `value` from `root` under `tuning`: asserts delivery on
/// every rank, then returns {total messages, total bytes, elapsed}.
struct BcastRun {
  std::uint64_t messages = 0;
  double bytes = 0.0;
  double elapsed = 0.0;
};

BcastRun run_bcast_traced(int p, int root, const CollectiveTuning& tuning) {
  auto machine = Machine::switched(test_cluster(p), {}, tuning);
  auto& tracer = machine.enable_tracing();
  auto delivered = std::make_shared<int>(0);
  const double value = 100.0 + root;
  const auto result =
      machine.run([root, value, delivered](Comm& comm) -> Task<void> {
        Payload payload;
        if (comm.rank() == root) payload = Payload(value);
        const Payload out = co_await comm.bcast(root, 64.0, payload);
        if (out.scalar() == value) ++*delivered;
      });
  EXPECT_EQ(*delivered, p) << "bcast lost the payload at p=" << p
                           << " root=" << root;
  BcastRun run;
  run.messages = tracer.comm().total_messages();
  for (const obs::CommCell& cell : tracer.comm().cells()) {
    run.bytes += cell.bytes;
  }
  run.elapsed = result.elapsed;
  return run;
}

// Satellite property suite: for every world size 1..17 and every root, the
// binomial broadcast delivers the root's payload to all ranks and its
// on-wire budget (p-1 messages of the nominal size) matches the flat
// tree's exactly — the algorithms differ only in *when* messages travel.
TEST(LargePEngine, BcastBinomialMatchesFlatForEveryRootAndWorldSize) {
  for (int p = 1; p <= 17; ++p) {
    for (int root = 0; root < p; ++root) {
      const BcastRun flat =
          run_bcast_traced(p, root, CollectiveTuning::legacy_flat());
      const BcastRun binomial =
          run_bcast_traced(p, root, CollectiveTuning::tree());
      EXPECT_EQ(flat.messages, static_cast<std::uint64_t>(p - 1));
      EXPECT_EQ(binomial.messages, flat.messages)
          << "p=" << p << " root=" << root;
      EXPECT_DOUBLE_EQ(binomial.bytes, flat.bytes)
          << "p=" << p << " root=" << root;
    }
  }
}

// Bit-identical virtual time across repeated runs — the collectives are
// deterministic functions of (p, root, tuning), nothing else.
TEST(LargePEngine, BcastElapsedIsBitIdenticalAcrossRuns) {
  for (const auto& tuning :
       {CollectiveTuning::legacy_flat(), CollectiveTuning::tree()}) {
    const BcastRun first = run_bcast_traced(13, 4, tuning);
    const BcastRun again = run_bcast_traced(13, 4, tuning);
    EXPECT_EQ(first.elapsed, again.elapsed);
    EXPECT_EQ(first.messages, again.messages);
  }
}

Message make_message(int source, int tag, double value) {
  return Message{source, tag, /*bytes=*/8.0, Payload(value), /*arrival=*/0.0};
}

// The (source, tag) index takes messages in post order per key.
TEST(LargePEngine, MailboxIndexedTakeIsFifoPerKey) {
  des::Scheduler scheduler;
  Mailbox box(scheduler);
  box.post(make_message(1, 7, 1.0));
  box.post(make_message(1, 7, 2.0));
  box.post(make_message(2, 7, 3.0));
  EXPECT_EQ(box.pending_count(), 3u);

  auto first = box.take_match(1, 7);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->payload.scalar(), 1.0);
  auto second = box.take_match(1, 7);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->payload.scalar(), 2.0);
  EXPECT_FALSE(box.take_match(1, 7).has_value());

  auto other = box.take_match(2, 7);
  ASSERT_TRUE(other.has_value());
  EXPECT_DOUBLE_EQ(other->payload.scalar(), 3.0);
  EXPECT_EQ(box.pending_count(), 0u);
}

// A wildcard take honours MPI's non-overtaking rule across keys, and the
// indexed path then skips the slot the wildcard consumed.
TEST(LargePEngine, MailboxWildcardAndIndexInterleave) {
  des::Scheduler scheduler;
  Mailbox box(scheduler);
  box.post(make_message(1, 7, 10.0));
  box.post(make_message(1, 8, 20.0));
  box.post(make_message(1, 7, 30.0));

  auto any = box.take_match(kAnySource, kAnyTag);
  ASSERT_TRUE(any.has_value());
  EXPECT_DOUBLE_EQ(any->payload.scalar(), 10.0);  // oldest post overall

  auto indexed = box.take_match(1, 7);  // must skip the consumed slot
  ASSERT_TRUE(indexed.has_value());
  EXPECT_DOUBLE_EQ(indexed->payload.scalar(), 30.0);

  auto by_source = box.take_match(1, kAnyTag);
  ASSERT_TRUE(by_source.has_value());
  EXPECT_DOUBLE_EQ(by_source->payload.scalar(), 20.0);
  EXPECT_FALSE(box.take_match(kAnySource, kAnyTag).has_value());
}

// Tag churn past the index's key cap (fresh tag per step, as pipelined GE
// mints) with a full drain between steps: the index must recycle without
// ever matching a stale slot.
TEST(LargePEngine, MailboxIndexSurvivesKeyChurnAndDrains) {
  des::Scheduler scheduler;
  Mailbox box(scheduler);
  for (int step = 0; step < 200; ++step) {
    box.post(make_message(0, step, step + 0.5));
    box.post(make_message(1, step, step + 0.25));
    EXPECT_FALSE(box.take_match(2, step).has_value());
    auto a = box.take_match(0, step);
    ASSERT_TRUE(a.has_value());
    EXPECT_DOUBLE_EQ(a->payload.scalar(), step + 0.5);
    auto b = box.take_match(1, step);
    ASSERT_TRUE(b.has_value());
    EXPECT_DOUBLE_EQ(b->payload.scalar(), step + 0.25);
    EXPECT_FALSE(box.take_match(0, step).has_value());
    EXPECT_EQ(box.pending_count(), 0u);
  }
}

// 4096 concurrent rank actors: the ladder queue's high-water mark and the
// live coroutine-frame peak must stay linear in p (each rank contributes
// O(1) pending events and a bounded coroutine stack), not p log p or p^2 —
// the memory contract the large-p scenarios rely on.
TEST(LargePEngine, FourKActorsKeepQueueAndFramesLinear) {
  constexpr int kRanks = 4096;
  obs::Profiler profiler;
  obs::ProfilerScope scope(profiler);
  auto machine = Machine::switched(test_cluster(kRanks));
  machine.run([](Comm& comm) -> Task<void> {
    co_await comm.barrier();
    (void)co_await comm.allreduce_sum(1.0);
    co_await comm.barrier();
  });
  ASSERT_EQ(profiler.runs(), 1u);
  const obs::RunProfile run = profiler.sorted_runs().front();
  EXPECT_GT(run.des_queue_depth_max, 0u);
  EXPECT_LE(run.des_queue_depth_max, 4u * kRanks);
  EXPECT_GT(run.frame_live_peak, static_cast<std::size_t>(kRanks));
  EXPECT_LE(run.frame_live_peak, 8u * kRanks);
}

}  // namespace
}  // namespace hetscale::vmpi
