// Zero-overhead guard: with observability disabled (no ambient profiler, no
// tracing, no bound telemetry) the observatory hooks must be inert — no
// recorder exists for them to feed, virtual results are bit-identical to a
// profiled run, and the scheduler's delay fast path never even reaches the
// instrumented ladder queue.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hetscale/des/scheduler.hpp"
#include "hetscale/des/telemetry.hpp"
#include "hetscale/obs/profiler.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster pair_cluster() {
  machine::Cluster cluster;
  for (int i = 0; i < 2; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 1e7};
  p.per_message_overhead_s = 1e-5;
  return p;
}

Machine::Program ping_pong(int rounds) {
  return [rounds](Comm& comm) -> Task<void> {
    for (int i = 0; i < rounds; ++i) {
      if (comm.rank() == 0) {
        co_await comm.send(1, i, 256.0, {});
        co_await comm.recv(1, i);
      } else {
        co_await comm.recv(0, i);
        co_await comm.send(0, i, 256.0, {});
      }
    }
  };
}

TEST(ZeroOverhead, NoRecorderExistsWithoutProfiler) {
  // Outside a ProfilerScope nothing is wired up: every observatory hook
  // sits behind a tracer null check, so there is no per-message work at
  // all — the CommMatrix recorder does not even exist.
  auto machine = Machine::shared_bus(pair_cluster(), fast_params());
  EXPECT_EQ(machine.profiler(), nullptr);
  EXPECT_EQ(machine.tracer(), nullptr);
  machine.run(ping_pong(50));
  EXPECT_EQ(machine.tracer(), nullptr);
}

TEST(ZeroOverhead, VirtualResultsIdenticalWithAndWithoutProfiling) {
  // The hooks only *observe*: enabling the full observatory must not move
  // the virtual clock or the network accounting by a single bit.
  auto plain = Machine::shared_bus(pair_cluster(), fast_params());
  const auto without = plain.run(ping_pong(100));

  obs::Profiler profiler;
  obs::ProfilerScope scope(profiler);
  auto traced = Machine::shared_bus(pair_cluster(), fast_params());
  ASSERT_NE(traced.tracer(), nullptr);
  const auto with = traced.run(ping_pong(100));

  EXPECT_EQ(without.elapsed, with.elapsed);
  EXPECT_EQ(without.network.messages, with.network.messages);
  EXPECT_EQ(without.network.bytes, with.network.bytes);
  ASSERT_EQ(without.ranks.size(), with.ranks.size());
  for (std::size_t r = 0; r < without.ranks.size(); ++r) {
    EXPECT_EQ(without.ranks[r].finish, with.ranks[r].finish);
    EXPECT_EQ(without.ranks[r].comm_s, with.ranks[r].comm_s);
  }
  // And the traced run actually observed the traffic.
  EXPECT_EQ(traced.tracer()->comm().total_messages(),
            without.network.messages);
}

TEST(ZeroOverhead, PureDelayLoopNeverReachesTheLadder) {
  // The delay-event throughput path is the scheduler's front slot; even
  // with telemetry bound, a schedule-one/pop-one workload must record zero
  // ladder traffic — the instrumented queue is simply never involved.
  des::Scheduler scheduler;
  des::QueueTelemetry telemetry;
  scheduler.bind_telemetry(&telemetry);
  auto loop = [](des::Scheduler& s) -> Task<void> {
    for (int i = 0; i < 1000; ++i) co_await s.delay(1e-3);
  };
  scheduler.spawn(loop(scheduler));
  scheduler.run();
  EXPECT_GE(scheduler.events_processed(), 1000u);
  EXPECT_EQ(telemetry.pushes, 0u);
  EXPECT_EQ(telemetry.pops, 0u);
  EXPECT_EQ(telemetry.rebuilds, 0u);
  EXPECT_TRUE(telemetry.occupancy.empty());
}

TEST(ZeroOverhead, UnboundTelemetryStaysUntouchedByOverlapTraffic) {
  // Overlapping actors exercise the ladder; with no telemetry bound (the
  // default) the counters of a free-standing block must stay zero.
  des::QueueTelemetry telemetry;
  des::Scheduler scheduler;
  auto actor = [](des::Scheduler& s, double dt) -> Task<void> {
    for (int i = 0; i < 200; ++i) co_await s.delay(dt);
  };
  scheduler.spawn(actor(scheduler, 1e-3));
  scheduler.spawn(actor(scheduler, 1.7e-3));
  scheduler.run();
  EXPECT_EQ(telemetry.pushes, 0u);
  EXPECT_EQ(telemetry.pops, 0u);
}

TEST(ZeroOverhead, BoundTelemetryCountsExactlyTheOverlapTraffic) {
  auto run_with = [](des::QueueTelemetry* telemetry) {
    des::Scheduler scheduler;
    if (telemetry != nullptr) scheduler.bind_telemetry(telemetry);
    auto actor = [](des::Scheduler& s, double dt) -> Task<void> {
      for (int i = 0; i < 200; ++i) co_await s.delay(dt);
    };
    scheduler.spawn(actor(scheduler, 1e-3));
    scheduler.spawn(actor(scheduler, 1.7e-3));
    scheduler.run();
    return scheduler.events_processed();
  };
  des::QueueTelemetry telemetry;
  const auto events_instrumented = run_with(&telemetry);
  const auto events_plain = run_with(nullptr);
  // Telemetry must not change what runs: same event count either way.
  EXPECT_EQ(events_instrumented, events_plain);
  // Two interleaved actors spill into the ladder; everything pushed must
  // eventually be popped (the run drained).
  EXPECT_GT(telemetry.pushes, 0u);
  EXPECT_EQ(telemetry.pushes, telemetry.pops);
}

}  // namespace
}  // namespace hetscale::vmpi
