// Payload and arena unit tests: tagged-union semantics, refcounted buffer
// sharing, block recycling through the thread-local pool, and the as<T>()
// compatibility contract.
#include "hetscale/vmpi/payload.hpp"

#include <gtest/gtest.h>

#include <any>
#include <string>
#include <utility>
#include <vector>

namespace hetscale::vmpi {
namespace {

TEST(Payload, DefaultIsEmpty) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  // Empty payloads view as zero-length buffers: zero-row blocks are
  // ordinary traffic for ranks that own no rows.
  EXPECT_TRUE(p.doubles().empty());
}

TEST(Payload, ScalarStoredInline) {
  Payload p(2.5);
  EXPECT_TRUE(p.is_scalar());
  EXPECT_DOUBLE_EQ(p.scalar(), 2.5);
  EXPECT_DOUBLE_EQ(p.as<double>(), 2.5);
  Payload copy = p;
  EXPECT_DOUBLE_EQ(copy.scalar(), 2.5);
}

TEST(Payload, BufferRoundTripsValues) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  Payload p = Payload::copy_of(values);
  ASSERT_TRUE(p.is_buffer());
  ASSERT_EQ(p.size(), values.size());
  const auto view = std::as_const(p).doubles();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(view[i], values[i]);
  }
}

TEST(Payload, BufferCopiesShareTheBlock) {
  Payload a = Payload::buffer(8);
  a.doubles()[0] = 1.0;
  Payload b = a;  // refcount bump, same block
  b.doubles()[0] = 42.0;
  EXPECT_DOUBLE_EQ(a.doubles()[0], 42.0)
      << "copies must alias the same pooled block";
  EXPECT_EQ(a.doubles().data(), b.doubles().data());
}

TEST(Payload, MoveTransfersOwnership) {
  Payload a = Payload::copy_of(std::vector<double>{7.0});
  const double* data = a.doubles().data();
  Payload b = std::move(a);
  EXPECT_TRUE(a.empty());
  ASSERT_TRUE(b.is_buffer());
  EXPECT_EQ(b.doubles().data(), data) << "move must not copy the block";
  EXPECT_DOUBLE_EQ(b.doubles()[0], 7.0);
}

TEST(Payload, MoveAssignReleasesPreviousValue) {
  Payload a = Payload::copy_of(std::vector<double>{1.0, 2.0});
  Payload b = Payload::copy_of(std::vector<double>{3.0});
  b = std::move(a);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b.doubles()[1], 2.0);
  EXPECT_TRUE(a.empty());
}

TEST(Payload, BoxedValuesUseAnySemantics) {
  Payload p(std::string("hello"));
  ASSERT_TRUE(p.is_boxed());
  EXPECT_EQ(p.as<std::string>(), "hello");
  EXPECT_THROW(p.as<int>(), std::bad_any_cast);
  Payload copy = p;  // deep copy of the boxed any
  EXPECT_EQ(copy.as<std::string>(), "hello");
}

TEST(Payload, IntBoxesLikeTheOldAnyConvention) {
  Payload p(1234);
  ASSERT_TRUE(p.is_boxed());
  EXPECT_EQ(p.as<int>(), 1234);
}

TEST(Payload, AsDoubleOnNonScalarThrows) {
  Payload p;
  EXPECT_THROW(p.as<double>(), std::bad_any_cast);
}

TEST(Arena, BlocksRecycleThroughTheFreelist) {
  // Warm the size class, note the block's address, release, reacquire:
  // steady-state traffic must reuse the parked slab.
  const double* first;
  {
    Payload p = Payload::buffer(64);
    first = p.doubles().data();
  }
  const std::size_t parked = detail::arena_parked();
  EXPECT_GE(parked, 1u);
  {
    Payload p = Payload::buffer(64);
    EXPECT_EQ(p.doubles().data(), first)
        << "same-size reacquire must reuse the freed block";
    EXPECT_EQ(detail::arena_parked(), parked - 1);
  }
  EXPECT_EQ(detail::arena_parked(), parked);
}

TEST(Arena, SharedBlockFreesOnlyOnLastRelease) {
  const std::size_t baseline = detail::arena_parked();
  Payload a = Payload::buffer(16);
  {
    Payload b = a;
    Payload c = b;
    EXPECT_EQ(detail::arena_parked(), baseline);
  }  // b and c die: block still owned by a
  EXPECT_EQ(detail::arena_parked(), baseline);
  a = Payload();  // last owner: block returns to the pool
  EXPECT_EQ(detail::arena_parked(), baseline + 1);
}

TEST(Arena, CopyOfCountZeroIsAValidBuffer) {
  Payload p = Payload::copy_of({});
  EXPECT_TRUE(p.is_buffer());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.doubles().empty());
}

TEST(Bundle, PartsRoundTrip) {
  Payload bundle = Payload::make_bundle();
  EXPECT_TRUE(bundle.is_bundle());
  bundle.bundle_parts().push_back(BundlePart{3, 24.0, Payload(1.5)});
  const std::vector<double> pair{2.0, 4.0};
  bundle.bundle_parts().push_back(BundlePart{7, 16.0, Payload::copy_of(pair)});
  ASSERT_EQ(bundle.bundle_parts().size(), 2u);
  EXPECT_EQ(bundle.bundle_parts()[0].rank, 3);
  EXPECT_EQ(bundle.bundle_parts()[0].payload.scalar(), 1.5);
  EXPECT_EQ(bundle.bundle_parts()[1].bytes, 16.0);
  EXPECT_EQ(bundle.bundle_parts()[1].payload.doubles()[1], 4.0);
}

TEST(Bundle, CopiesShareTheBlock) {
  Payload a = Payload::make_bundle();
  a.bundle_parts().push_back(BundlePart{0, 8.0, Payload(9.0)});
  Payload b = a;  // refcounted share, not a deep copy
  ASSERT_TRUE(b.is_bundle());
  EXPECT_EQ(&a.bundle_parts(), &b.bundle_parts());
  a = Payload();  // releasing a's reference must not free the block
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.bundle_parts().size(), 1u);  // b keeps the block alive
}

TEST(Bundle, BlocksRecycleThroughThePool) {
  std::size_t live_baseline = 0;
  {
    Payload bundle = Payload::make_bundle();
    bundle.bundle_parts().push_back(BundlePart{0, 8.0, Payload(1.0)});
    live_baseline = detail::bundle_parked();  // this block is checked out
  }
  // The released block parked instead of being freed...
  ASSERT_EQ(detail::bundle_parked(), live_baseline + 1);
  Payload again = Payload::make_bundle();  // ...and the next acquire pops it
  EXPECT_EQ(detail::bundle_parked(), live_baseline);
  EXPECT_TRUE(again.bundle_parts().empty());  // recycled blocks come clean
}

TEST(DetachForTransfer, UniqueOwnerIsUntouched) {
  const std::vector<double> data{1.0, 2.0};
  Payload p = Payload::copy_of(data);
  const double* before = p.doubles().data();
  p.detach_for_transfer();
  EXPECT_EQ(p.doubles().data(), before);  // sole owner: no copy needed
}

TEST(DetachForTransfer, SharedBufferDeepCopies) {
  const std::vector<double> data{1.0, 2.0, 3.0};
  Payload a = Payload::copy_of(data);
  Payload b = a;
  b.detach_for_transfer();
  ASSERT_TRUE(b.is_buffer());
  EXPECT_NE(a.doubles().data(), b.doubles().data());
  EXPECT_EQ(b.doubles()[2], 3.0);
  a.doubles()[2] = -1.0;  // writes through a no longer alias b
  EXPECT_EQ(b.doubles()[2], 3.0);
}

TEST(DetachForTransfer, SharedBundleDeepCopiesRecursively) {
  Payload a = Payload::make_bundle();
  const std::vector<double> five{5.0};
  a.bundle_parts().push_back(BundlePart{0, 8.0, Payload::copy_of(five)});
  Payload b = a;
  b.detach_for_transfer();
  ASSERT_TRUE(b.is_bundle());
  EXPECT_NE(&a.bundle_parts(), &b.bundle_parts());
  // The nested buffer detached too: no block is shared across the copy.
  EXPECT_NE(a.bundle_parts()[0].payload.doubles().data(),
            b.bundle_parts()[0].payload.doubles().data());
  EXPECT_EQ(b.bundle_parts()[0].payload.doubles()[0], 5.0);
}

TEST(DetachForTransfer, ScalarAndEmptyAreNoOps) {
  Payload empty;
  empty.detach_for_transfer();
  EXPECT_TRUE(empty.empty());
  Payload scalar(4.0);
  scalar.detach_for_transfer();
  EXPECT_EQ(scalar.scalar(), 4.0);
}

}  // namespace
}  // namespace hetscale::vmpi
