#include "hetscale/vmpi/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster pair_cluster() {
  machine::Cluster cluster;
  for (int i = 0; i < 2; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

RunResult traced_pingpong(Machine& machine) {
  return machine.run([](Comm& comm) -> Task<void> {
    co_await comm.compute(units::mflop(5.0));
    if (comm.rank() == 0) {
      co_await comm.send(1, 7, 1000.0, {});
      co_await comm.recv(1, 8);
    } else {
      co_await comm.recv(0, 7);
      co_await comm.send(0, 8, 1000.0, {});
    }
  });
}

TEST(Trace, RecordsComputeAndCommIntervals) {
  auto machine = Machine::switched(pair_cluster());
  auto& tracer = machine.enable_tracing();
  traced_pingpong(machine);
  // 2 computes + 2 sends + 2 recvs.
  EXPECT_EQ(tracer.intervals().size(), 6u);
  EXPECT_EQ(tracer.messages().size(), 2u);
  int computes = 0;
  int sends = 0;
  int recvs = 0;
  for (const auto& interval : tracer.intervals()) {
    EXPECT_GE(interval.end, interval.begin);
    switch (interval.kind) {
      case TraceInterval::Kind::kCompute: ++computes; break;
      case TraceInterval::Kind::kSend: ++sends; break;
      case TraceInterval::Kind::kRecv: ++recvs; break;
    }
  }
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(sends, 2);
  EXPECT_EQ(recvs, 2);
}

TEST(Trace, IntervalsAgreeWithRankStats) {
  auto machine = Machine::switched(pair_cluster());
  auto& tracer = machine.enable_tracing();
  const auto result = traced_pingpong(machine);
  double traced_compute[2] = {0, 0};
  double traced_comm[2] = {0, 0};
  for (const auto& interval : tracer.intervals()) {
    const double duration = interval.end - interval.begin;
    if (interval.kind == TraceInterval::Kind::kCompute) {
      traced_compute[interval.rank] += duration;
    } else {
      traced_comm[interval.rank] += duration;
    }
  }
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(traced_compute[r], result.ranks[r].compute_s, 1e-12);
    EXPECT_NEAR(traced_comm[r], result.ranks[r].comm_s, 1e-12);
  }
}

TEST(Trace, MessagesCarryEndpointsAndTimes) {
  auto machine = Machine::switched(pair_cluster());
  auto& tracer = machine.enable_tracing();
  traced_pingpong(machine);
  const auto& first = tracer.messages().front();
  EXPECT_EQ(first.source, 0);
  EXPECT_EQ(first.destination, 1);
  EXPECT_EQ(first.tag, 7);
  EXPECT_DOUBLE_EQ(first.bytes, 1000.0);
  EXPECT_GT(first.arrive, first.depart);
}

TEST(Trace, ChromeJsonHasEventPerIntervalAndFlowPairPerMessage) {
  auto machine = Machine::switched(pair_cluster());
  auto& tracer = machine.enable_tracing();
  traced_pingpong(machine);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.front(), '[');
  auto count = [&](const std::string& needle) {
    std::size_t hits = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
      ++hits;
    }
    return hits;
  };
  EXPECT_EQ(count(R"("ph":"X")"), 6u);
  EXPECT_EQ(count(R"("ph":"s")"), 2u);
  EXPECT_EQ(count(R"("ph":"f")"), 2u);
  EXPECT_EQ(count(R"("name":"compute")"), 2u);
}

TEST(Trace, UtilizationTableFractionsAreSane) {
  auto machine = Machine::switched(pair_cluster());
  auto& tracer = machine.enable_tracing();
  const auto result = traced_pingpong(machine);
  const std::string table = tracer.utilization_table(result.elapsed);
  EXPECT_NE(table.find("rank"), std::string::npos);
  EXPECT_NE(table.find("compute %"), std::string::npos);
}

TEST(Trace, DisabledByDefault) {
  auto machine = Machine::switched(pair_cluster());
  EXPECT_EQ(machine.tracer(), nullptr);
  traced_pingpong(machine);
}

TEST(Trace, CannotEnableAfterRun) {
  auto machine = Machine::switched(pair_cluster());
  traced_pingpong(machine);
  EXPECT_THROW(machine.enable_tracing(), PreconditionError);
}

TEST(Trace, TracingDoesNotPerturbTiming) {
  auto plain = Machine::switched(pair_cluster());
  const auto a = traced_pingpong(plain);
  auto traced = Machine::switched(pair_cluster());
  traced.enable_tracing();
  const auto b = traced_pingpong(traced);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

TEST(Trace, EmptyTraceIsValidJson) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.chrome_trace_json(), "[]\n");
}

TEST(Trace, ZeroLengthIntervalsStayValid) {
  TraceRecorder recorder;
  recorder.record_interval(
      {0, TraceInterval::Kind::kCompute, 1.0, 1.0, -1, 0, 0.0});
  EXPECT_EQ(recorder.intervals().size(), 1u);
  const std::string json = recorder.chrome_trace_json();
  EXPECT_NE(json.find(R"("dur":0)"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
}

TEST(Trace, ChromeJsonEscapesSpanNames) {
  TraceRecorder recorder;
  auto& spans = recorder.spans();
  spans.record(0, spans.intern("weird\"name\\here"), 0.0, 1.0);
  const std::string json = recorder.chrome_trace_json();
  EXPECT_NE(json.find(R"(weird\"name\\here)"), std::string::npos);
  // The raw quote must never appear unescaped inside the name field.
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);
}

TEST(Trace, BarrierSpansNestWaitsBeneathThem) {
  auto machine = Machine::switched(pair_cluster());
  auto& tracer = machine.enable_tracing();
  machine.run([](Comm& comm) -> Task<void> {
    co_await comm.compute(units::mflop(1.0));
    co_await comm.barrier();
  });
  const auto& spans = tracer.spans();
  EXPECT_EQ(spans.open_count(), 0u);  // every barrier span closed
  int barriers = 0;
  int nested = 0;
  for (const auto& span : spans.spans()) {
    if (span.name_id == tracer.barrier_name_id()) {
      ++barriers;
      EXPECT_GE(span.end, span.begin);
      EXPECT_EQ(span.depth, 0);
    } else if (span.depth > 0) {
      ++nested;  // a send/recv wait inside the barrier
    }
  }
  EXPECT_EQ(barriers, 2);  // one per rank
  EXPECT_GT(nested, 0);
}

TEST(Trace, InvalidRecordsRejected) {
  TraceRecorder recorder;
  EXPECT_THROW(recorder.record_interval(
                   {0, TraceInterval::Kind::kCompute, 2.0, 1.0, -1, 0, 0.0}),
               PreconditionError);
  EXPECT_THROW(recorder.record_message({0, 1, 0, 8.0, 2.0, 1.0}),
               PreconditionError);
  EXPECT_THROW(recorder.utilization_table(0.0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::vmpi
