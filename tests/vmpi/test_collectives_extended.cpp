// allgather, alltoall, and reduction operators.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster test_cluster(int nodes) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

class ExtendedCollectives : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(WorldSizes, ExtendedCollectives,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST_P(ExtendedCollectives, AllgatherDeliversEveryPartEverywhere) {
  const int p = GetParam();
  auto machine = Machine::switched(test_cluster(p));
  auto ok = std::make_shared<int>(0);
  machine.run([ok](Comm& comm) -> Task<void> {
    auto parts =
        co_await comm.allgather(8.0, Payload(100 + comm.rank()));
    EXPECT_EQ(parts.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(parts[static_cast<std::size_t>(r)].as<int>(), 100 + r)
          << "at rank " << comm.rank();
    }
    ++*ok;
  });
  EXPECT_EQ(*ok, p);
}

TEST_P(ExtendedCollectives, AlltoallRoutesPersonalizedParts) {
  const int p = GetParam();
  auto machine = Machine::switched(test_cluster(p));
  machine.run([](Comm& comm) -> Task<void> {
    // Rank r sends 1000*r + d to destination d.
    std::vector<Payload> parts;
    std::vector<double> bytes;
    for (int d = 0; d < comm.size(); ++d) {
      parts.emplace_back(1000 * comm.rank() + d);
      bytes.push_back(8.0);
    }
    auto received = co_await comm.alltoall(bytes, std::move(parts));
    for (int s = 0; s < comm.size(); ++s) {
      EXPECT_EQ(received[static_cast<std::size_t>(s)].as<int>(),
                1000 * s + comm.rank());
    }
  });
}

TEST_P(ExtendedCollectives, ReduceOperators) {
  const int p = GetParam();
  auto machine = Machine::switched(test_cluster(p));
  auto results = std::make_shared<std::vector<double>>();
  machine.run([results](Comm& comm) -> Task<void> {
    const double mine = static_cast<double>(comm.rank() + 1);
    const double min = co_await comm.reduce(0, mine, Comm::ReduceOp::kMin);
    const double max = co_await comm.reduce(0, mine, Comm::ReduceOp::kMax);
    const double prod = co_await comm.reduce(0, mine, Comm::ReduceOp::kProd);
    if (comm.rank() == 0) {
      results->push_back(min);
      results->push_back(max);
      results->push_back(prod);
    }
  });
  double factorial = 1.0;
  for (int r = 1; r <= p; ++r) factorial *= r;
  ASSERT_EQ(results->size(), 3u);
  EXPECT_DOUBLE_EQ((*results)[0], 1.0);
  EXPECT_DOUBLE_EQ((*results)[1], static_cast<double>(p));
  EXPECT_DOUBLE_EQ((*results)[2], factorial);
}

TEST_P(ExtendedCollectives, AllreduceMaxEverywhere) {
  const int p = GetParam();
  auto machine = Machine::switched(test_cluster(p));
  auto seen = std::make_shared<std::vector<double>>();
  machine.run([seen](Comm& comm) -> Task<void> {
    const double out = co_await comm.allreduce(
        static_cast<double>(comm.rank()), Comm::ReduceOp::kMax);
    seen->push_back(out);
  });
  for (double v : *seen) EXPECT_DOUBLE_EQ(v, static_cast<double>(p - 1));
}

TEST(ExtendedCollectives, AllgatherBandwidthScalesWithRing) {
  // Ring allgather on a switched fabric: total time ~ (p-1)(o + m/B + L),
  // independent of which rank you ask — and the whole payload set arrives
  // in p-1 rounds, not p(p-1)/2 point-to-point exchanges.
  auto time_for = [&](int p) {
    auto machine = Machine::switched(test_cluster(p));
    auto latest = std::make_shared<double>(0.0);
    machine.run([latest](Comm& comm) -> Task<void> {
      co_await comm.allgather(1e4, Payload(comm.rank()));
      *latest = std::max(*latest, comm.now());
    });
    return *latest;
  };
  const double t4 = time_for(4);
  const double t8 = time_for(8);
  EXPECT_NEAR(t8 / t4, 7.0 / 3.0, 0.3);
}

TEST(ExtendedCollectives, AlltoallValidatesShapes) {
  auto machine = Machine::switched(test_cluster(3));
  EXPECT_THROW(
      machine.run([](Comm& comm) -> Task<void> {
        std::vector<Payload> parts(1);  // wrong: need one per rank
        std::vector<double> bytes(1, 8.0);
        co_await comm.alltoall(bytes, std::move(parts));
      }),
      PreconditionError);
}

}  // namespace
}  // namespace hetscale::vmpi
