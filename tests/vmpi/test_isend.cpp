#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster pair_cluster() {
  machine::Cluster cluster;
  for (int i = 0; i < 2; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

net::NetworkParams slow_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 1e6};  // 1 MB/s: wire time matters
  p.per_message_overhead_s = 1e-5;
  return p;
}

TEST(Isend, DoesNotBlockTheSender) {
  auto machine = Machine::switched(pair_cluster(), slow_params());
  auto sender_time = std::make_shared<double>(-1.0);
  machine.run([sender_time](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      comm.isend(1, 1, 1e6, {});  // 1 s of wire time
      *sender_time = comm.now();  // but we continue immediately
    } else {
      co_await comm.recv(0, 1);
    }
    co_return;
  });
  EXPECT_DOUBLE_EQ(*sender_time, 0.0);
}

TEST(Isend, PayloadStillDelivered) {
  auto machine = Machine::switched(pair_cluster(), slow_params());
  auto got = std::make_shared<int>(0);
  machine.run([got](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      comm.isend(1, 3, 100.0, Payload(1234));
      co_await comm.compute(1e6);
    } else {
      const auto message = co_await comm.recv(0, 3);
      *got = message.value<int>();
    }
  });
  EXPECT_EQ(*got, 1234);
}

TEST(Isend, WaitSendSynchronizesWithLinkDrain) {
  auto machine = Machine::switched(pair_cluster(), slow_params());
  auto waited_until = std::make_shared<double>(0.0);
  machine.run([waited_until](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      const auto request = comm.isend(1, 1, 1e6, {});  // 1 s of wire
      co_await comm.wait_send(request);
      *waited_until = comm.now();
    } else {
      co_await comm.recv(0, 1);
    }
  });
  // overhead 1e-5 + wire 1.0.
  EXPECT_NEAR(*waited_until, 1.0 + 1e-5, 1e-9);
}

TEST(Isend, BackToBackIsendsQueueOnTheLink) {
  auto machine = Machine::switched(pair_cluster(), slow_params());
  auto arrivals = std::make_shared<std::vector<double>>();
  machine.run([arrivals](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      comm.isend(1, 1, 1e6, {});
      comm.isend(1, 2, 1e6, {});  // must serialize behind the first
    } else {
      arrivals->push_back((co_await comm.recv(0, 1)).arrival);
      arrivals->push_back((co_await comm.recv(0, 2)).arrival);
    }
    co_return;
  });
  ASSERT_EQ(arrivals->size(), 2u);
  EXPECT_NEAR((*arrivals)[1] - (*arrivals)[0], 1.0, 1e-6);
}

TEST(Isend, OverlapBeatsBlockingSend) {
  auto run = [&](bool overlap) {
    auto machine = Machine::switched(pair_cluster(), slow_params());
    return machine
        .run([overlap](Comm& comm) -> Task<void> {
          if (comm.rank() == 0) {
            if (overlap) {
              comm.isend(1, 1, 1e6, {});
            } else {
              co_await comm.send(1, 1, 1e6, {});
            }
            co_await comm.compute(50e6);  // 1 s of work
          } else {
            co_await comm.recv(0, 1);
          }
        })
        .elapsed;
  };
  const double blocking = run(false);
  const double overlapped = run(true);
  // Blocking: 1 s wire then 1 s compute; overlapped: max of the two.
  EXPECT_NEAR(blocking, 2.0, 0.01);
  EXPECT_NEAR(overlapped, 1.0, 0.01);
}

TEST(Isend, ContractsEnforced) {
  auto machine = Machine::switched(pair_cluster(), slow_params());
  EXPECT_THROW(machine.run([](Comm& comm) -> Task<void> {
                 if (comm.rank() == 0) comm.isend(0, 1, 8.0, {});
                 co_return;
               }),
               PreconditionError);
}

}  // namespace
}  // namespace hetscale::vmpi
