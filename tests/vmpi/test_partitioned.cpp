// The partitioned simulation core (--sim-threads > 1): bit-identity with
// the sequential scheduler, eligibility fallbacks, and the partitioned
// failure paths.
//
// Every comparison here is exact (EXPECT_EQ on doubles, not EXPECT_NEAR):
// the conservative window protocol's whole contract is that partitioning
// changes host scheduling only, never a single simulated bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hetscale/obs/profiler.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster node_per_rank(int nodes, double mflops = 50.0) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(mflops), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 1e7};
  p.per_message_overhead_s = 1e-5;
  return p;
}

void expect_same_result(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.elapsed, b.elapsed);  // bit-equal, not approximately
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].compute_s, b.ranks[r].compute_s) << "rank " << r;
    EXPECT_EQ(a.ranks[r].comm_s, b.ranks[r].comm_s) << "rank " << r;
    EXPECT_EQ(a.ranks[r].messages_sent, b.ranks[r].messages_sent);
    EXPECT_EQ(a.ranks[r].bytes_sent, b.ranks[r].bytes_sent);
    EXPECT_EQ(a.ranks[r].finish, b.ranks[r].finish) << "rank " << r;
  }
  EXPECT_EQ(a.network.messages, b.network.messages);
  EXPECT_EQ(a.network.bytes, b.network.bytes);
  // The machine-wide wire/contention totals are the one observability-only
  // quantity folded across partitions (partition order) instead of in
  // global temporal order, so they can differ from the sequential sum by
  // float-summation rounding — a few ulps. They feed no simulated
  // behavior, no golden artifact, and no profile (profiled runs never
  // partition). Everything else is exact, including per-link stats: a
  // link belongs to one sending rank, hence one partition, so its
  // accumulation order matches the sequential schedule.
  EXPECT_NEAR(a.network.wire_seconds, b.network.wire_seconds,
              1e-12 * std::abs(a.network.wire_seconds));
  EXPECT_NEAR(a.network.contention_seconds, b.network.contention_seconds,
              1e-12 * std::abs(a.network.contention_seconds) + 1e-300);
  ASSERT_EQ(a.network.links.size(), b.network.links.size());
  auto ita = a.network.links.begin();
  auto itb = b.network.links.begin();
  for (; ita != a.network.links.end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first);
    EXPECT_EQ(ita->second.bytes, itb->second.bytes);
    EXPECT_EQ(ita->second.wire_s, itb->second.wire_s);
    EXPECT_EQ(ita->second.stall_s, itb->second.stall_s);
  }
}

/// A mixed workload touching every delivery path: ring p2p with unequal
/// compute, a broadcast, a reduction, and a gather.
Machine::Program mixed_program() {
  return [](Comm& comm) -> Task<void> {
    const int p = comm.size();
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    for (int round = 0; round < 3; ++round) {
      co_await comm.compute(1e6 * (comm.rank() + 1));
      co_await comm.send(next, 10 + round, 256.0,
                         Payload(static_cast<double>(comm.rank())));
      const auto msg = co_await comm.recv(prev, 10 + round);
      EXPECT_EQ(msg.payload.scalar(), static_cast<double>(prev));
    }
    Payload seed;
    if (comm.rank() == 0) seed = Payload(42.0);
    const auto root_value = co_await comm.bcast(0, 64.0, std::move(seed));
    EXPECT_EQ(root_value.scalar(), 42.0);
    const double sum =
        co_await comm.reduce_sum(0, static_cast<double>(comm.rank()));
    if (comm.rank() == 0) {
      EXPECT_EQ(sum, static_cast<double>(p * (p - 1) / 2));
    }
    const auto parts = co_await comm.gather(
        0, 128.0, Payload(static_cast<double>(comm.rank() * 3)));
    if (comm.rank() == 0) {
      EXPECT_EQ(parts.size(), static_cast<std::size_t>(p));
      for (std::size_t r = 0; r < parts.size(); ++r) {
        EXPECT_EQ(parts[r].scalar(), static_cast<double>(r * 3));
      }
    }
    co_await comm.barrier();
  };
}

RunResult run_mixed(int ranks, int sim_threads) {
  auto machine = Machine::switched(node_per_rank(ranks), fast_params());
  machine.set_sim_threads(sim_threads);
  return machine.run(mixed_program());
}

TEST(Partitioned, MixedWorkloadBitIdenticalAcrossSimThreads) {
  const RunResult sequential = run_mixed(8, 1);
  expect_same_result(sequential, run_mixed(8, 2));
  expect_same_result(sequential, run_mixed(8, 3));  // uneven partitions
  expect_same_result(sequential, run_mixed(8, 8));
}

TEST(Partitioned, ThreadCountBeyondWorldSizeClamps) {
  const RunResult sequential = run_mixed(4, 1);
  expect_same_result(sequential, run_mixed(4, 64));
}

TEST(Partitioned, EventsProcessedSumsThePartitionSchedulers) {
  auto machine = Machine::switched(node_per_rank(8), fast_params());
  machine.set_sim_threads(4);
  (void)machine.run(mixed_program());
  // The sequential scheduler saw nothing; the partitions did all the work.
  EXPECT_EQ(machine.scheduler().events_processed(), 0u);
  EXPECT_GT(machine.events_processed(), 0u);
}

TEST(Partitioned, TreeCollectivesBitIdenticalAtScale) {
  const auto run_tree = [](int sim_threads) {
    auto machine = Machine::switched(node_per_rank(32), fast_params(),
                                     CollectiveTuning::tree());
    machine.set_sim_threads(sim_threads);
    return machine.run([](Comm& comm) -> Task<void> {
      for (int round = 0; round < 2; ++round) {
        Payload seed;
        if (comm.rank() == 0) seed = Payload(1.5);
        (void)co_await comm.bcast(0, 64.0, std::move(seed));
        (void)co_await comm.reduce_sum(0, 1.0);
        (void)co_await comm.gather(0, 32.0, Payload(2.0));
        co_await comm.barrier();
      }
    });
  };
  const RunResult sequential = run_tree(1);
  expect_same_result(sequential, run_tree(8));
}

TEST(Partitioned, WildcardRecvRejected) {
  auto machine = Machine::switched(node_per_rank(2), fast_params());
  machine.set_sim_threads(2);
  try {
    machine.run([](Comm& comm) -> Task<void> {
      if (comm.rank() == 0) {
        co_await comm.send(1, 5, 64.0, {});
      } else {
        (void)co_await comm.recv(kAnySource, 5);
      }
    });
    FAIL() << "wildcard recv should be rejected when partitioned";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("wildcard"), std::string::npos);
  }
}

TEST(Partitioned, SpecificSourceRecvStillWorks) {
  // The same exchange with the source named is fine under partitioning.
  auto machine = Machine::switched(node_per_rank(2), fast_params());
  machine.set_sim_threads(2);
  auto value = std::make_shared<double>(0.0);
  machine.run([value](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(1, 5, 64.0, Payload(7.0));
    } else {
      const auto msg = co_await comm.recv(0, 5);
      *value = msg.payload.scalar();
    }
  });
  EXPECT_EQ(*value, 7.0);
}

TEST(Partitioned, DeadlockDiagnosisNamesTheBlockedRank) {
  auto machine = Machine::switched(node_per_rank(4), fast_params());
  machine.set_sim_threads(2);
  try {
    machine.run([](Comm& comm) -> Task<void> {
      if (comm.rank() == 3) {
        (void)co_await comm.recv(0, 99);  // nobody sends tag 99
      }
      co_return;
    });
    FAIL() << "expected a deadlock";
  } catch (const des::DeadlockError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("matching receive"), std::string::npos) << what;
  }
}

TEST(Partitioned, SharedBusFallsBackToSequential) {
  // A shared bus has no per-link latency floor (lookahead 0), so the
  // machine must quietly run the classic sequential schedule — and match
  // a sim-threads=1 shared-bus run exactly.
  const auto run_bus = [](int sim_threads) {
    auto machine = Machine::shared_bus(node_per_rank(4), fast_params());
    machine.set_sim_threads(sim_threads);
    return machine.run(mixed_program());
  };
  const RunResult sequential = run_bus(1);
  expect_same_result(sequential, run_bus(8));
}

TEST(Partitioned, ProfiledRunFallsBackToSequentialAndStillProfiles) {
  obs::Profiler profiler;
  {
    obs::ProfilerScope scope(profiler);
    auto machine = Machine::switched(node_per_rank(4), fast_params());
    machine.set_sim_threads(4);
    (void)machine.run(mixed_program());
  }
  ASSERT_EQ(profiler.runs(), 1u);
  const auto runs = profiler.sorted_runs();
  EXPECT_GT(runs[0].des_events, 0u);
}

TEST(Partitioned, SetSimThreadsValidates) {
  auto machine = Machine::switched(node_per_rank(2), fast_params());
  EXPECT_THROW(machine.set_sim_threads(0), Error);
  machine.set_sim_threads(2);
  (void)machine.run([](Comm&) -> Task<void> { co_return; });
  EXPECT_THROW(machine.set_sim_threads(4), Error);
}

}  // namespace
}  // namespace hetscale::vmpi
