#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 1e7};
  p.per_message_overhead_s = 1e-5;
  return p;
}

machine::Cluster hetero_pair() {
  machine::Cluster cluster;
  cluster.add_node("fast",
                   machine::NodeSpec{"Fast", 1, units::mflops(100), 1e9, 4e8, {1.0}});
  cluster.add_node("slow",
                   machine::NodeSpec{"Slow", 1, units::mflops(25), 1e9, 4e8, {1.0}});
  return cluster;
}

TEST(Timing, ComputeDurationIsFlopsOverRate) {
  auto machine = Machine::shared_bus(hetero_pair(), fast_params());
  auto times = std::make_shared<std::vector<double>>(2, 0.0);
  machine.run([times](Comm& comm) -> Task<void> {
    co_await comm.compute(units::mflop(50.0));
    (*times)[static_cast<std::size_t>(comm.rank())] = comm.now();
  });
  EXPECT_NEAR((*times)[0], 0.5, 1e-12);  // 50 Mflop / 100 Mflops
  EXPECT_NEAR((*times)[1], 2.0, 1e-12);  // 50 Mflop / 25 Mflops
}

TEST(Timing, EfficiencyScalesComputeRate) {
  auto machine = Machine::shared_bus(hetero_pair(), fast_params());
  auto t = std::make_shared<double>(0.0);
  machine.run([t](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.compute(units::mflop(50.0), /*efficiency=*/0.5);
      *t = comm.now();
    }
  });
  EXPECT_NEAR(*t, 1.0, 1e-12);
}

TEST(Timing, RateFlopsReflectsProcessor) {
  auto machine = Machine::shared_bus(hetero_pair(), fast_params());
  machine.run([](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(comm.rate_flops(), units::mflops(100));
    } else {
      EXPECT_DOUBLE_EQ(comm.rate_flops(), units::mflops(25));
    }
    co_return;
  });
}

TEST(Timing, ElapsedIsMaxOverRanks) {
  auto machine = Machine::shared_bus(hetero_pair(), fast_params());
  const auto result = machine.run([](Comm& comm) -> Task<void> {
    co_await comm.compute(units::mflop(100.0));
  });
  EXPECT_NEAR(result.elapsed, 4.0, 1e-12);  // slow node: 100/25
  EXPECT_NEAR(result.ranks[0].finish, 1.0, 1e-12);
  EXPECT_NEAR(result.ranks[1].finish, 4.0, 1e-12);
}

TEST(Timing, ComputeStatsAccumulate) {
  auto machine = Machine::shared_bus(hetero_pair(), fast_params());
  const auto result = machine.run([](Comm& comm) -> Task<void> {
    co_await comm.compute(units::mflop(10.0));
    co_await comm.compute(units::mflop(15.0));
  });
  EXPECT_NEAR(result.ranks[0].compute_s, 0.25, 1e-12);
  EXPECT_NEAR(result.ranks[1].compute_s, 1.0, 1e-12);
}

TEST(Timing, OverheadIsElapsedMinusCriticalCompute) {
  auto machine = Machine::shared_bus(hetero_pair(), fast_params());
  const auto result = machine.run([](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(1, 1, 1e5, {});  // 10 ms wire
    } else {
      co_await comm.recv(0, 1);
      co_await comm.compute(units::mflop(25.0));  // 1 s
    }
  });
  EXPECT_NEAR(result.overhead_s(), result.elapsed - 1.0, 1e-9);
  EXPECT_GT(result.overhead_s(), 0.0);
}

TEST(Timing, DeterministicAcrossRuns) {
  auto run_once = [&] {
    auto machine = Machine::shared_bus(hetero_pair(), fast_params());
    return machine
        .run([](Comm& comm) -> Task<void> {
          for (int i = 0; i < 10; ++i) {
            co_await comm.compute(1e6 * (comm.rank() + 1));
            co_await comm.barrier();
          }
        })
        .elapsed;
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);  // bit-identical, not just close
}

TEST(Timing, NegativeFlopsRejected) {
  auto machine = Machine::shared_bus(hetero_pair(), fast_params());
  EXPECT_THROW(machine.run([](Comm& comm) -> Task<void> {
                 co_await comm.compute(-1.0);
               }),
               PreconditionError);
}

}  // namespace
}  // namespace hetscale::vmpi
