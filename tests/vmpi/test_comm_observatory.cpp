// The communication observatory end to end on real machines: CommMatrix
// cells from p2p and collective traffic, Group lane-phase annotation, and
// the critical-path walk over a traced run.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hetscale/obs/critical_path.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/group.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster test_cluster(int nodes) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(50.0), 1e9, 4e8, {1.0}});
  }
  return cluster;
}

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 1e7};
  p.per_message_overhead_s = 1e-5;
  return p;
}

const obs::CommCell* find_cell(const std::vector<obs::CommCell>& cells,
                               int src, int dst, obs::CommPhase phase) {
  for (const obs::CommCell& cell : cells) {
    if (cell.src == src && cell.dst == dst &&
        cell.phase == static_cast<int>(phase)) {
      return &cell;
    }
  }
  return nullptr;
}

TEST(CommObservatory, PingPongFillsBothDirections) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  auto& tracer = machine.enable_tracing();
  machine.run([](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(1, 5, 1000.0, {});
      co_await comm.recv(1, 6);
    } else {
      co_await comm.recv(0, 5);
      co_await comm.send(0, 6, 2000.0, {});
    }
  });
  const auto cells = tracer.comm().cells();
  const obs::CommCell* fwd = find_cell(cells, 0, 1, obs::CommPhase::kP2p);
  const obs::CommCell* bwd = find_cell(cells, 1, 0, obs::CommPhase::kP2p);
  ASSERT_NE(fwd, nullptr);
  ASSERT_NE(bwd, nullptr);
  EXPECT_EQ(fwd->messages, 1u);
  EXPECT_DOUBLE_EQ(fwd->bytes, 1000.0);
  EXPECT_GT(fwd->wait_s, 0.0);  // rank 1 blocked before the message landed
  EXPECT_EQ(bwd->messages, 1u);
  EXPECT_DOUBLE_EQ(bwd->bytes, 2000.0);
  EXPECT_EQ(tracer.comm().total_messages(), 2u);
}

TEST(CommObservatory, CollectiveTagsMapToTheirPhases) {
  auto machine = Machine::shared_bus(test_cluster(3), fast_params());
  auto& tracer = machine.enable_tracing();
  machine.run([](Comm& comm) -> Task<void> {
    Payload payload;
    if (comm.rank() == 0) payload = Payload(42);
    (void)co_await comm.bcast(0, 64.0, std::move(payload));
    co_await comm.barrier();
    (void)co_await comm.gather(0, 32.0, Payload(comm.rank()));
  });
  const auto cells = tracer.comm().cells();
  EXPECT_NE(find_cell(cells, 0, 1, obs::CommPhase::kBcast), nullptr);
  EXPECT_NE(find_cell(cells, 0, 2, obs::CommPhase::kBcast), nullptr);
  EXPECT_NE(find_cell(cells, 1, 0, obs::CommPhase::kBarrier), nullptr);
  EXPECT_NE(find_cell(cells, 1, 0, obs::CommPhase::kGather), nullptr);
  EXPECT_EQ(find_cell(cells, 0, 1, obs::CommPhase::kP2p), nullptr);
}

TEST(CommObservatory, LargeBcastSplitsIntoScatterAndRing) {
  // The ring allgather leg only exists in the paper-era (legacy) family;
  // the default tuning finishes with a doubling allgather instead.
  auto machine = Machine::shared_bus(test_cluster(4), fast_params(),
                                     CollectiveTuning::legacy_flat());
  auto& tracer = machine.enable_tracing();
  machine.run([](Comm& comm) -> Task<void> {
    Payload payload;
    if (comm.rank() == 0) payload = Payload(1);
    // Comfortably past the 12288-byte van de Geijn threshold.
    (void)co_await comm.bcast(0, 1e5, std::move(payload));
  });
  double scatter_bytes = 0.0;
  double ring_bytes = 0.0;
  for (const obs::CommCell& cell : tracer.comm().cells()) {
    if (cell.phase == static_cast<int>(obs::CommPhase::kBcastScatter)) {
      scatter_bytes += cell.bytes;
    }
    if (cell.phase == static_cast<int>(obs::CommPhase::kBcastRing)) {
      ring_bytes += cell.bytes;
    }
  }
  EXPECT_GT(scatter_bytes, 0.0);
  EXPECT_GT(ring_bytes, 0.0);
}

TEST(CommObservatory, LargeBcastDefaultSplitsIntoScatterAndDoubling) {
  auto machine = Machine::shared_bus(test_cluster(4), fast_params());
  auto& tracer = machine.enable_tracing();
  machine.run([](Comm& comm) -> Task<void> {
    Payload payload;
    if (comm.rank() == 0) payload = Payload(1);
    (void)co_await comm.bcast(0, 1e5, std::move(payload));
  });
  double scatter_bytes = 0.0;
  double doubling_bytes = 0.0;
  double ring_bytes = 0.0;
  for (const obs::CommCell& cell : tracer.comm().cells()) {
    if (cell.phase == static_cast<int>(obs::CommPhase::kBcastScatter)) {
      scatter_bytes += cell.bytes;
    }
    if (cell.phase == static_cast<int>(obs::CommPhase::kBcastDoubling)) {
      doubling_bytes += cell.bytes;
    }
    if (cell.phase == static_cast<int>(obs::CommPhase::kBcastRing)) {
      ring_bytes += cell.bytes;
    }
  }
  EXPECT_GT(scatter_bytes, 0.0);
  EXPECT_GT(doubling_bytes, 0.0);
  EXPECT_DOUBLE_EQ(ring_bytes, 0.0);  // no ring leg in the doubling family
}

TEST(CommObservatory, BarrierRoundsAttributeToBarrierPhaseNotP2p) {
  // Satellite (f): dissemination-round sends must land in the `barrier`
  // CommMatrix phase, never as anonymous p2p traffic.
  CollectiveTuning tuning;
  tuning.barrier = BarrierAlgorithm::kDissemination;
  auto machine = Machine::shared_bus(test_cluster(5), fast_params(), tuning);
  auto& tracer = machine.enable_tracing();
  machine.run([](Comm& comm) -> Task<void> { co_await comm.barrier(); });
  std::uint64_t barrier_msgs = 0;
  std::uint64_t p2p_msgs = 0;
  for (const obs::CommCell& cell : tracer.comm().cells()) {
    if (cell.phase == static_cast<int>(obs::CommPhase::kBarrier)) {
      barrier_msgs += cell.messages;
    }
    if (cell.phase == static_cast<int>(obs::CommPhase::kP2p)) {
      p2p_msgs += cell.messages;
    }
  }
  // Dissemination at p=5: ceil(log2 5) = 3 rounds, one send per rank each.
  EXPECT_EQ(barrier_msgs, 15u);
  EXPECT_EQ(p2p_msgs, 0u);
}

TEST(CommObservatory, GroupCollectivesGetTheirOwnPhase) {
  auto machine = Machine::shared_bus(test_cluster(4), fast_params());
  auto& tracer = machine.enable_tracing();
  machine.run([](Comm& comm) -> Task<void> {
    if (comm.rank() == 3) co_return;
    Group group(comm, {0, 1, 2});
    Payload payload;
    if (group.rank() == 0) payload = Payload(9);
    (void)co_await group.bcast(0, /*tag=*/11, 64.0, std::move(payload));
    (void)co_await group.gather(0, /*tag=*/12, 32.0, Payload(comm.rank()));
  });
  const auto cells = tracer.comm().cells();
  EXPECT_NE(find_cell(cells, 0, 1, obs::CommPhase::kGroupBcast), nullptr);
  EXPECT_NE(find_cell(cells, 0, 2, obs::CommPhase::kGroupBcast), nullptr);
  EXPECT_NE(find_cell(cells, 1, 0, obs::CommPhase::kGroupGather), nullptr);
  // The caller-chosen tags must never leak through as p2p traffic.
  EXPECT_EQ(find_cell(cells, 0, 1, obs::CommPhase::kP2p), nullptr);
  EXPECT_EQ(find_cell(cells, 1, 0, obs::CommPhase::kP2p), nullptr);
}

TEST(CommObservatory, CriticalPathCoversElapsedOnRealRuns) {
  auto machine = Machine::shared_bus(test_cluster(3), fast_params());
  auto& tracer = machine.enable_tracing();
  const auto result = machine.run([](Comm& comm) -> Task<void> {
    co_await comm.compute(units::mflop(10.0 * (comm.rank() + 1)));
    co_await comm.barrier();
    if (comm.rank() == 0) {
      co_await comm.send(2, 1, 5e4, {});
    } else if (comm.rank() == 2) {
      co_await comm.recv(0, 1);
      co_await comm.compute(units::mflop(5.0));
    }
  });
  const obs::CriticalPath path = obs::critical_path(
      tracer.spans(), tracer.path_messages(), result.elapsed);
  EXPECT_GE(path.compute_s, 0.0);
  EXPECT_GE(path.comm_s, 0.0);
  EXPECT_GE(path.wait_s, 0.0);
  EXPECT_GE(path.fault_s, 0.0);
  EXPECT_GT(path.compute_s, 0.0);
  EXPECT_NEAR(path.total_s(), result.elapsed,
              1e-9 * (1.0 + result.elapsed));
}

TEST(CommObservatory, ChromeTraceGainsHeatRows) {
  auto machine = Machine::shared_bus(test_cluster(2), fast_params());
  auto& tracer = machine.enable_tracing();
  machine.run([](Comm& comm) -> Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(1, 4, 512.0, {});
    } else {
      co_await comm.recv(0, 4);
    }
  });
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"comm.bytes\""), std::string::npos);
  EXPECT_NE(json.find("to 1 p2p"), std::string::npos);
}

TEST(CommObservatory, MatrixIsDeterministicAcrossRuns) {
  auto run_once = [] {
    auto machine = Machine::shared_bus(test_cluster(3), fast_params());
    auto& tracer = machine.enable_tracing();
    machine.run([](Comm& comm) -> Task<void> {
      Payload payload;
      if (comm.rank() == 0) payload = Payload(1);
      (void)co_await comm.bcast(0, 256.0, std::move(payload));
      co_await comm.barrier();
    });
    return tracer.comm().cells();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // bit-identical cells, including wait seconds
}

}  // namespace
}  // namespace hetscale::vmpi
