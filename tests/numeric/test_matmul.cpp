#include "hetscale/numeric/matmul.hpp"

#include <gtest/gtest.h>

#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"

namespace hetscale::numeric {
namespace {

TEST(Matmul, KnownProduct) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(3);
  const Matrix a = Matrix::random(5, 5, rng);
  EXPECT_LT(max_abs_diff(multiply(a, Matrix::identity(5)), a), 1e-15);
  EXPECT_LT(max_abs_diff(multiply(Matrix::identity(5), a), a), 1e-15);
}

TEST(Matmul, RectangularShapes) {
  Matrix a(2, 3, {1, 0, 2, 0, 1, 1});
  Matrix b(3, 1, {1, 2, 3});
  const Matrix c = multiply(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 5.0);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(multiply(a, b), PreconditionError);
}

TEST(Matmul, RowSliceMatchesFullProduct) {
  Rng rng(4);
  const Matrix a = Matrix::random(7, 7, rng);
  const Matrix b = Matrix::random(7, 7, rng);
  const Matrix full = multiply(a, b);
  const Matrix slice = multiply_rows(a, b, 2, 5);
  ASSERT_EQ(slice.rows(), 3u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 7; ++c)
      EXPECT_DOUBLE_EQ(slice(r, c), full(r + 2, c));
}

TEST(Matmul, EmptyRowSliceAllowed) {
  Matrix a(3, 3);
  Matrix b(3, 3);
  const Matrix c = multiply_rows(a, b, 1, 1);
  EXPECT_EQ(c.rows(), 0u);
}

TEST(Matmul, RowSliceOutOfRangeThrows) {
  Matrix a(3, 3);
  Matrix b(3, 3);
  EXPECT_THROW(multiply_rows(a, b, 2, 4), PreconditionError);
  EXPECT_THROW(multiply_rows(a, b, 2, 1), PreconditionError);
}

}  // namespace
}  // namespace hetscale::numeric
