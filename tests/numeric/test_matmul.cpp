#include "hetscale/numeric/matmul.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"

namespace hetscale::numeric {
namespace {

/// The classic i-k-j product the blocked multiply_rows_into replaced. Kept
/// here as the normative reference: per output element it accumulates over
/// k ascending, and the blocked kernel must reproduce it bit for bit.
std::vector<double> naive_rows(std::span<const double> a, std::size_t a_cols,
                               std::size_t row_begin, std::size_t row_end,
                               std::span<const double> b,
                               std::size_t b_cols) {
  std::vector<double> out((row_end - row_begin) * b_cols, 0.0);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* arow = a.data() + i * a_cols;
    double* crow = out.data() + (i - row_begin) * b_cols;
    for (std::size_t k = 0; k < a_cols; ++k) {
      const double aik = arow[k];
      const double* brow = b.data() + k * b_cols;
      for (std::size_t j = 0; j < b_cols; ++j) crow[j] += aik * brow[j];
    }
  }
  return out;
}

TEST(Matmul, KnownProduct) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(3);
  const Matrix a = Matrix::random(5, 5, rng);
  EXPECT_LT(max_abs_diff(multiply(a, Matrix::identity(5)), a), 1e-15);
  EXPECT_LT(max_abs_diff(multiply(Matrix::identity(5), a), a), 1e-15);
}

TEST(Matmul, RectangularShapes) {
  Matrix a(2, 3, {1, 0, 2, 0, 1, 1});
  Matrix b(3, 1, {1, 2, 3});
  const Matrix c = multiply(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 5.0);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(multiply(a, b), PreconditionError);
}

TEST(Matmul, RowSliceMatchesFullProduct) {
  Rng rng(4);
  const Matrix a = Matrix::random(7, 7, rng);
  const Matrix b = Matrix::random(7, 7, rng);
  const Matrix full = multiply(a, b);
  const Matrix slice = multiply_rows(a, b, 2, 5);
  ASSERT_EQ(slice.rows(), 3u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 7; ++c)
      EXPECT_DOUBLE_EQ(slice(r, c), full(r + 2, c));
}

TEST(Matmul, EmptyRowSliceAllowed) {
  Matrix a(3, 3);
  Matrix b(3, 3);
  const Matrix c = multiply_rows(a, b, 1, 1);
  EXPECT_EQ(c.rows(), 0u);
}

TEST(Matmul, RowSliceOutOfRangeThrows) {
  Matrix a(3, 3);
  Matrix b(3, 3);
  EXPECT_THROW(multiply_rows(a, b, 2, 4), PreconditionError);
  EXPECT_THROW(multiply_rows(a, b, 2, 1), PreconditionError);
}

// The blocked/panel-packed product must match the naive loop *bitwise* —
// this is what lets the golden artifacts survive the kernel swap. Shapes
// straddle the block sizes (128/256) and every tail class of the 8/4/1-wide
// column loops; rows hit both the 4-row tile and the per-row leftover path.
TEST(Matmul, BlockedProductIsBitIdenticalToNaive) {
  struct Shape {
    std::size_t m, k, n;
  };
  const Shape shapes[] = {{1, 1, 1},    {3, 5, 7},     {4, 8, 8},
                          {5, 129, 9},  {7, 130, 131}, {8, 256, 128},
                          {9, 257, 130}, {2, 300, 140}};
  for (const auto& s : shapes) {
    Rng rng(static_cast<std::uint64_t>(s.m * 1000 + s.k * 10 + s.n));
    const Matrix a = Matrix::random(s.m, s.k, rng);
    const Matrix b = Matrix::random(s.k, s.n, rng);
    std::vector<double> got(s.m * s.n);
    multiply_rows_into(a.data(), s.k, 0, s.m, b.data(), s.n, got);
    const auto want = naive_rows(a.data(), s.k, 0, s.m, b.data(), s.n);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
                std::bit_cast<std::uint64_t>(want[i]))
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " i=" << i;
    }
  }
}

// Zero entries in A must not perturb the result: the old implementation
// skipped them, the blocked one multiplies through, and for finite B both
// produce the same bits (x + (+-0.0 * b) == x, and +0.0 stays +0.0).
TEST(Matmul, ZeroEntriesInAMatchNaiveBitwise) {
  Rng rng(99);
  Matrix a = Matrix::random(6, 140, rng);
  const Matrix b = Matrix::random(140, 133, rng);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); k += 3) a(i, k) = 0.0;
    for (std::size_t k = 1; k < a.cols(); k += 7) a(i, k) = -0.0;
  }
  std::vector<double> got(a.rows() * b.cols());
  multiply_rows_into(a.data(), a.cols(), 0, a.rows(), b.data(), b.cols(),
                     got);
  const auto want =
      naive_rows(a.data(), a.cols(), 0, a.rows(), b.data(), b.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << "i=" << i;
  }
}

// A row slice through the blocked path must equal the same slice of the
// naive full product bitwise — the parallel MM hands out exactly these.
TEST(Matmul, BlockedRowSliceIsBitIdenticalToNaiveSlice) {
  Rng rng(123);
  const Matrix a = Matrix::random(11, 150, rng);
  const Matrix b = Matrix::random(150, 129, rng);
  std::vector<double> got(5 * b.cols());
  multiply_rows_into(a.data(), a.cols(), 3, 8, b.data(), b.cols(), got);
  const auto want = naive_rows(a.data(), a.cols(), 3, 8, b.data(), b.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << "i=" << i;
  }
}

// 64-byte alignment contract of Matrix storage (matrix.hpp).
TEST(Matmul, MatrixStorageIsCacheLineAligned) {
  for (std::size_t n : {1u, 3u, 17u, 64u}) {
    Matrix m(n, n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data().data()) % 64, 0u)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace hetscale::numeric
