#include "hetscale/numeric/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"

namespace hetscale::numeric {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, ConstructFromData) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, ConstructRejectsSizeMismatch) {
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), PreconditionError);
}

TEST(Matrix, IndexOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), PreconditionError);
  EXPECT_THROW(m(0, 2), PreconditionError);
}

TEST(Matrix, RowSpanIsMutableView) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 42.0;
  EXPECT_EQ(m(1, 2), 42.0);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix id = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, RandomIsSeedDeterministic) {
  Rng a(5);
  Rng b(5);
  EXPECT_TRUE(Matrix::random(3, 3, a) == Matrix::random(3, 3, b));
}

TEST(Matrix, DiagonallyDominantByConstruction) {
  Rng rng(6);
  const Matrix m = Matrix::random_diagonally_dominant(8, rng);
  for (std::size_t i = 0; i < 8; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < 8; ++j)
      if (j != i) off += std::abs(m(i, j));
    EXPECT_GT(std::abs(m(i, i)), off);
  }
}

TEST(Matrix, MatVecMatchesHandComputation) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<double> x{1, 1, 1};
  const auto y = mat_vec(m, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, ResidualOfExactSolutionIsZero) {
  Matrix m(2, 2, {2, 0, 0, 4});
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> b{2.0, 8.0};
  EXPECT_DOUBLE_EQ(residual_inf_norm(m, x, b), 0.0);
}

TEST(Matrix, MaxAbsDiffDetectsWorstEntry) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {1, 2.5, 3, 3});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

TEST(Matrix, MaxAbsDiffRejectsShapeMismatch) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(max_abs_diff(a, b), PreconditionError);
}

}  // namespace
}  // namespace hetscale::numeric
