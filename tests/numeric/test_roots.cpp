#include "hetscale/numeric/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hetscale/support/error.hpp"

namespace hetscale::numeric {
namespace {

TEST(Bisect, FindsSqrtTwo) {
  const double root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-8);
}

TEST(Bisect, ExactEndpointRootReturned) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Bisect, UnbracketedThrows) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               NumericError);
}

TEST(Bisect, DecreasingFunctionWorks) {
  const double root =
      bisect([](double x) { return 3.0 - x; }, 0.0, 10.0);
  EXPECT_NEAR(root, 3.0, 1e-8);
}

TEST(FirstAtLeast, FindsThresholdOnStepFunction) {
  auto f = [](std::int64_t n) { return n >= 37 ? 1.0 : 0.0; };
  EXPECT_EQ(first_at_least(f, 0.5, 1, 1000), 37);
}

TEST(FirstAtLeast, LoAlreadySatisfies) {
  auto f = [](std::int64_t n) { return static_cast<double>(n); };
  EXPECT_EQ(first_at_least(f, 1.0, 5, 1000), 5);
}

TEST(FirstAtLeast, UnreachableReturnsMinusOne) {
  auto f = [](std::int64_t) { return 0.0; };
  EXPECT_EQ(first_at_least(f, 1.0, 1, 100), -1);
}

TEST(FirstAtLeast, LogarithmicEvaluationCount) {
  int calls = 0;
  auto f = [&calls](std::int64_t n) {
    ++calls;
    return static_cast<double>(n);
  };
  EXPECT_EQ(first_at_least(f, 700.0, 1, 1 << 20), 700);
  EXPECT_LT(calls, 30);
}

TEST(BracketAndBisect, ExpandsToFindDistantRoot) {
  const double root = bracket_and_bisect(
      [](double x) { return x - 5000.0; }, 1.0, 2.0, 1e6);
  EXPECT_NEAR(root, 5000.0, 1e-6);
}

TEST(BracketAndBisect, FailsBeyondLimit) {
  EXPECT_THROW(bracket_and_bisect([](double x) { return x - 5000.0; }, 1.0,
                                  2.0, 100.0),
               NumericError);
}

}  // namespace
}  // namespace hetscale::numeric
