#include "hetscale/numeric/linsolve.hpp"

#include <gtest/gtest.h>

#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"

namespace hetscale::numeric {
namespace {

TEST(Linsolve, SolvesKnownSystem) {
  //  2x + y = 5
  //   x + 3y = 10  ->  x = 1, y = 3
  Matrix a(2, 2, {2, 1, 1, 3});
  const auto x = solve_dense(a, {5, 10});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linsolve, PartialPivotingHandlesZeroLeadingPivot) {
  Matrix a(2, 2, {0, 1, 1, 0});
  const auto x = solve_dense(a, {2, 3}, Pivoting::kPartial);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Linsolve, NoPivotingThrowsOnZeroPivot) {
  Matrix a(2, 2, {0, 1, 1, 0});
  EXPECT_THROW(solve_dense(a, {2, 3}, Pivoting::kNone), NumericError);
}

TEST(Linsolve, SingularMatrixThrows) {
  Matrix a(2, 2, {1, 2, 2, 4});
  EXPECT_THROW(solve_dense(a, {1, 2}, Pivoting::kPartial), NumericError);
}

class LinsolveRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LinsolveRandom, ResidualIsTinyOnDiagonallyDominantSystems) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  const Matrix a = Matrix::random_diagonally_dominant(n, rng);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = solve_dense(a, b, Pivoting::kNone);
  EXPECT_LT(residual_inf_norm(a, x, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinsolveRandom,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64, 100));

TEST(Linsolve, ForwardEliminationProducesUnitDiagonal) {
  Rng rng(77);
  Matrix a = Matrix::random_diagonally_dominant(6, rng);
  std::vector<double> b(6, 1.0);
  forward_eliminate(a, b, Pivoting::kNone);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(a(i, i), 1.0, 1e-12);
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(a(i, j), 0.0, 1e-9);
    }
  }
}

TEST(Linsolve, BackSubstituteSolvesUpperTriangular) {
  Matrix u(3, 3, {1, 1, 1, 0, 1, 2, 0, 0, 1});
  const auto x = back_substitute(u, std::vector<double>{6, 5, 1});
  EXPECT_NEAR(x[2], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(Workload, GeWorkloadMatchesClosedForm) {
  // W(N) = 2/3 N^3 + 5/2 N^2 - N/6; spot checks at small N computed by hand
  // from the per-step accounting (see linsolve.hpp).
  EXPECT_DOUBLE_EQ(ge_workload(1), 3.0);  // normalize(2) + backsub(1)
  EXPECT_NEAR(ge_workload(2), (2.0 / 3) * 8 + 2.5 * 4 - 2.0 / 6, 1e-12);
}

TEST(Workload, MmWorkloadIsTwoNCubed) {
  EXPECT_DOUBLE_EQ(mm_workload(10), 2000.0);
}

TEST(Workload, GeWorkloadIsMonotone) {
  double prev = 0.0;
  for (double n = 1; n <= 1000; n *= 2) {
    const double w = ge_workload(n);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

}  // namespace
}  // namespace hetscale::numeric
