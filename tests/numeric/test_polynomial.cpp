#include "hetscale/numeric/polynomial.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"

namespace hetscale::numeric {
namespace {

TEST(Polynomial, HornerEvaluation) {
  const Polynomial p({1.0, 2.0, 3.0});  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(1.0), 6.0);
  EXPECT_DOUBLE_EQ(p(2.0), 17.0);
  EXPECT_DOUBLE_EQ(p(-1.0), 2.0);
}

TEST(Polynomial, DegreeIgnoresTrailingZeros) {
  EXPECT_EQ(Polynomial({1, 2, 0, 0}).degree(), 1u);
  EXPECT_EQ(Polynomial({5}).degree(), 0u);
  EXPECT_EQ(Polynomial(std::vector<double>{}).degree(), 0u);
}

TEST(Polynomial, Derivative) {
  const Polynomial p({1.0, 2.0, 3.0});
  const Polynomial d = p.derivative();  // 2 + 6x
  EXPECT_DOUBLE_EQ(d(0.0), 2.0);
  EXPECT_DOUBLE_EQ(d(1.0), 8.0);
  EXPECT_EQ(Polynomial({7.0}).derivative()(3.0), 0.0);
}

TEST(Polyfit, RecoversExactPolynomial) {
  const Polynomial truth({2.0, -1.0, 0.5});
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = -3; x <= 3; x += 0.5) {
    xs.push_back(x);
    ys.push_back(truth(x));
  }
  const Polynomial fit = polyfit(xs, ys, 2);
  for (double x = -3; x <= 3; x += 0.25) {
    EXPECT_NEAR(fit(x), truth(x), 1e-9);
  }
}

TEST(Polyfit, HandlesLargeAbscissaeStably) {
  // Sizes like N in [100, 2000] — the actual trend-line regime.
  const Polynomial truth({0.1, 2e-4, -5e-8});
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 100; x <= 2000; x += 100) {
    xs.push_back(x);
    ys.push_back(truth(x));
  }
  const Polynomial fit = polyfit(xs, ys, 2);
  for (double x : xs) EXPECT_NEAR(fit(x), truth(x), 1e-8);
}

TEST(Polyfit, NeedsEnoughSamples) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1, 2};
  EXPECT_THROW(polyfit(xs, ys, 2), PreconditionError);
}

TEST(Polyfit, DuplicateXsMakeFitSingular) {
  const std::vector<double> xs{1, 1, 1, 1};
  const std::vector<double> ys{1, 2, 3, 4};
  EXPECT_THROW(polyfit(xs, ys, 2), NumericError);
}

TEST(Polyfit, NoisyDataStillCloseInLeastSquares) {
  const Polynomial truth({1.0, 0.5});
  Rng rng(99);
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 0; x < 50; x += 1) {
    xs.push_back(x);
    ys.push_back(truth(x) + rng.normal(0.0, 0.01));
  }
  const Polynomial fit = polyfit(xs, ys, 1);
  EXPECT_NEAR(fit.coefficients()[0], 1.0, 0.05);
  EXPECT_NEAR(fit.coefficients()[1], 0.5, 0.005);
}

TEST(RSquared, PerfectFitIsOne) {
  const Polynomial p({0.0, 1.0});
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(r_squared(p, xs, ys), 1.0);
}

TEST(RSquared, MeanModelIsZero) {
  const Polynomial p({2.0});  // constant = mean of ys
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_NEAR(r_squared(p, xs, ys), 0.0, 1e-12);
}

}  // namespace
}  // namespace hetscale::numeric
