#include "hetscale/numeric/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hetscale/support/error.hpp"

namespace hetscale::numeric {
namespace {

TEST(Stats, MeanOfConstantsIsTheConstant) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
}

TEST(Stats, MeanHandComputed) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW(mean({}), PreconditionError);
}

TEST(Stats, StddevSampleFormula) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138089935299395, 1e-12);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const std::vector<double> xs{5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Stats, RelativeErrorSymmetric) {
  EXPECT_DOUBLE_EQ(relative_error(10.0, 9.0), relative_error(9.0, 10.0));
  EXPECT_DOUBLE_EQ(relative_error(10.0, 9.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geometric_mean(xs), PreconditionError);
}

}  // namespace
}  // namespace hetscale::numeric
