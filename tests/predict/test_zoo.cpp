// The model zoo and its fitter: registry contract, deterministic LM
// convergence, exact parameter recovery on synthetic data, degenerate
// ladders, and the NaN/Inf evaluation guard.
#include "hetscale/predict/zoo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "hetscale/predict/fitter.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::predict {
namespace {

scal::FitPoint point(int p, std::int64_t n, double es,
                     double work = 1.0e8, double het = 0.1) {
  scal::FitPoint fp;
  fp.system = "synthetic";
  fp.p = p;
  fp.n = n;
  fp.work_flops = work;
  fp.speed_efficiency = es;
  fp.seconds = work / (es * 1.0e8);
  fp.marked_speed = 1.0e8;
  fp.root_speed = 1.0e8 / static_cast<double>(p);
  fp.het_score = het;
  return fp;
}

/// Synthesize a dataset straight from the USL law.
scal::FitDataset usl_dataset(double e0, double sigma, double kappa) {
  scal::FitDataset data;
  data.algo = "synthetic";
  for (const int p : {1, 2, 4, 8, 16}) {
    for (const std::int64_t n : {64, 256}) {
      const double pd = static_cast<double>(p);
      const double es =
          e0 / (1.0 + sigma * (pd - 1.0) + kappa * pd * (pd - 1.0));
      data.points.push_back(point(p, n, es));
    }
  }
  return data;
}

TEST(ModelZoo, RegistryHasFourModelsInCanonicalOrder) {
  const auto zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 4u);
  EXPECT_EQ(zoo[0]->name(), "usl");
  EXPECT_EQ(zoo[1]->name(), "granularity");
  EXPECT_EQ(zoo[2]->name(), "bsf");
  EXPECT_EQ(zoo[3]->name(), "heet");
  for (const ScalabilityModel* model : zoo) {
    EXPECT_EQ(find_model(model->name()), model);
    EXPECT_FALSE(model->parameter_names().empty());
  }
  EXPECT_EQ(find_model("no-such-model"), nullptr);
}

TEST(ModelZoo, ZeroOverheadDataRecoversExactUslParameters) {
  // sigma = kappa = 0: E_s is flat at e0. The fit must land on e0 with
  // both overhead coefficients at (or numerically at) zero.
  const auto data = usl_dataset(0.85, 0.0, 0.0);
  const auto fit = fit_scalability_model(*find_model("usl"), data);
  ASSERT_EQ(fit.params.size(), 3u);
  EXPECT_NEAR(fit.params[0], 0.85, 1e-9);
  EXPECT_NEAR(fit.params[1], 0.0, 1e-9);
  EXPECT_NEAR(fit.params[2], 0.0, 1e-9);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
}

TEST(ModelZoo, NoiselessUslDataRecoversContentionAndCoherency) {
  const auto data = usl_dataset(0.9, 0.08, 0.003);
  const auto fit = fit_scalability_model(*find_model("usl"), data);
  EXPECT_NEAR(fit.params[0], 0.9, 1e-4);
  EXPECT_NEAR(fit.params[1], 0.08, 1e-4);
  EXPECT_NEAR(fit.params[2], 0.003, 1e-5);
  EXPECT_LT(fit.rmse, 1e-6);
}

TEST(ModelZoo, SinglePointLadderFitsAndCrossValidatesInSample) {
  scal::FitDataset data;
  data.algo = "synthetic";
  data.points.push_back(point(4, 128, 0.5));
  for (const ScalabilityModel* model : model_zoo()) {
    const auto fit = fit_scalability_model(*model, data);
    EXPECT_EQ(fit.params.size(), model->parameter_names().size());
    for (const double param : fit.params) {
      EXPECT_TRUE(std::isfinite(param)) << model->name();
    }
    // <2 points: LOO degrades to the in-sample error of the full fit.
    const auto cv = leave_one_out_cv(*model, data);
    EXPECT_TRUE(std::isfinite(cv.rmse)) << model->name();
    EXPECT_TRUE(std::isfinite(cv.max_abs_error)) << model->name();
    EXPECT_NEAR(cv.rmse, fit.rmse, 1e-12) << model->name();
  }
}

TEST(ModelZoo, SequentialOnlyLadderStaysFinite) {
  // p = 1 everywhere: every (p-1) term vanishes and several parameters
  // become unidentifiable. The fit must still return finite parameters
  // (the Marquardt ridge keeps the normal equations solvable).
  scal::FitDataset data;
  data.algo = "synthetic";
  for (const std::int64_t n : {32, 64, 128}) {
    data.points.push_back(point(1, n, 0.97));
  }
  for (const ScalabilityModel* model : model_zoo()) {
    const auto fit = fit_scalability_model(*model, data);
    for (const double param : fit.params) {
      EXPECT_TRUE(std::isfinite(param)) << model->name();
    }
    EXPECT_LT(fit.rmse, 1e-6) << model->name();
    const auto cv = leave_one_out_cv(*model, data);
    EXPECT_TRUE(std::isfinite(cv.rmse)) << model->name();
  }
}

TEST(ModelZoo, GuardedPredictMapsNonFiniteToZero) {
  // A zero-work point turns the BSF overhead ratio into 0/0 = NaN.
  const auto fp = point(4, 128, 0.5, /*work=*/0.0);
  const ScalabilityModel* bsf = find_model("bsf");
  const std::vector<double> params{1.0, 0.0, 0.0};
  EXPECT_TRUE(std::isnan(bsf->predict(fp, params)));
  EXPECT_EQ(guarded_predict(*bsf, fp, params), 0.0);

  // Finite predictions pass through untouched.
  const auto ok = point(4, 128, 0.5);
  EXPECT_EQ(guarded_predict(*bsf, ok, params), bsf->predict(ok, params));
}

TEST(ModelZoo, FitRejectsEmptyDataset) {
  const scal::FitDataset empty{"synthetic", {}};
  EXPECT_THROW(fit_scalability_model(*find_model("usl"), empty),
               PreconditionError);
  EXPECT_THROW(leave_one_out_cv(*find_model("usl"), empty),
               PreconditionError);
}

TEST(ModelZoo, CrossValidationIsDeterministic) {
  const auto data = usl_dataset(0.9, 0.1, 0.01);
  for (const ScalabilityModel* model : model_zoo()) {
    const auto a = leave_one_out_cv(*model, data);
    const auto b = leave_one_out_cv(*model, data);
    EXPECT_EQ(a.rmse, b.rmse) << model->name();  // bit-equal, not near
    EXPECT_EQ(a.max_abs_error, b.max_abs_error) << model->name();
  }
}

// ---- the LM solver itself ----------------------------------------------

TEST(Fitter, ConvergesOnKnownRationalCurve) {
  // y = a / (1 + b x) sampled exactly; start far from the solution.
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  const double a_true = 2.5;
  const double b_true = 0.3;
  const LmResiduals residuals = [&](std::span<const double> params,
                                    std::span<double> out) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out[i] = params[0] / (1.0 + params[1] * xs[i]) -
               a_true / (1.0 + b_true * xs[i]);
    }
  };
  const auto result =
      levenberg_marquardt(residuals, xs.size(), {1.0, 1.0});
  EXPECT_NEAR(result.params[0], a_true, 1e-6);
  EXPECT_NEAR(result.params[1], b_true, 1e-6);
  EXPECT_LT(result.rmse, 1e-8);
  EXPECT_GT(result.iterations, 0);
}

TEST(Fitter, DegenerateInputsReturnClampedInitialGuess) {
  const LmResiduals residuals = [](std::span<const double>,
                                   std::span<double> out) {
    for (double& r : out) r = 1.0;
  };
  const LmClamp clamp = [](std::span<double> params) {
    for (double& p : params) p = std::max(p, 0.5);
  };
  // No residuals: nothing to fit.
  const auto empty = levenberg_marquardt(residuals, 0, {0.1, 0.2}, clamp);
  EXPECT_EQ(empty.params, (std::vector<double>{0.5, 0.5}));
  EXPECT_EQ(empty.rmse, 0.0);
  EXPECT_EQ(empty.iterations, 0);
  // No parameters: nothing to move.
  const auto no_params = levenberg_marquardt(residuals, 3, {});
  EXPECT_TRUE(no_params.params.empty());
}

TEST(Fitter, NonFiniteResidualsAreSanitizedNotPropagated) {
  // The residual function returns NaN away from the origin; the solver
  // must treat that region as high-cost and stay finite.
  const LmResiduals residuals = [](std::span<const double> params,
                                   std::span<double> out) {
    out[0] = params[0] > 0.5 ? std::numeric_limits<double>::quiet_NaN()
                             : params[0] - 0.25;
  };
  const auto result = levenberg_marquardt(residuals, 1, {0.0});
  ASSERT_EQ(result.params.size(), 1u);
  EXPECT_TRUE(std::isfinite(result.params[0]));
  EXPECT_TRUE(std::isfinite(result.rmse));
  EXPECT_NEAR(result.params[0], 0.25, 1e-6);
}

TEST(Fitter, FixedBudgetIsHonored) {
  LmOptions options;
  options.max_iterations = 3;
  // A residual the solver can always improve a little keeps it stepping.
  const LmResiduals residuals = [](std::span<const double> params,
                                   std::span<double> out) {
    out[0] = std::exp(params[0]) - 0.5;
  };
  const auto result = levenberg_marquardt(residuals, 1, {5.0}, nullptr,
                                          options);
  EXPECT_LE(result.iterations, 3);
}

}  // namespace
}  // namespace hetscale::predict
