#include "hetscale/predict/probe.hpp"

#include <gtest/gtest.h>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::predict {
namespace {

ProbeConfig default_probe() {
  ProbeConfig config;
  config.node = machine::sunwulf::sunblade_spec();
  return config;
}

TEST(Probe, SendTimeMatchesNetworkClosedForm) {
  const auto config = default_probe();
  const double bytes = 5e4;
  const double measured = measure_send_time(config, bytes);
  // Shared bus, idle medium: overhead + wire + latency.
  const double expected = config.params.per_message_overhead_s +
                          bytes / config.params.remote.bandwidth_Bps +
                          config.params.remote.latency_s;
  EXPECT_NEAR(measured, expected, 1e-12);
}

TEST(Probe, SendTimeIsAffineInBytes) {
  const auto config = default_probe();
  const double t1 = measure_send_time(config, 1e3);
  const double t2 = measure_send_time(config, 2e3);
  const double t3 = measure_send_time(config, 3e3);
  EXPECT_NEAR(t3 - t2, t2 - t1, 1e-12);
}

TEST(Probe, BcastTimeLinearInRanks) {
  const auto config = default_probe();
  const double t5 = measure_bcast_time(config, 5, 1e4);
  const double t9 = measure_bcast_time(config, 9, 1e4);
  // Flat tree over a shared bus: ~(p-1) scaling.
  EXPECT_NEAR(t9 / t5, 8.0 / 4.0, 0.1);
}

TEST(Probe, BarrierTimeAffineInRanks) {
  const auto config = default_probe();
  const double t3 = measure_barrier_time(config, 3);
  const double t6 = measure_barrier_time(config, 6);
  const double t12 = measure_barrier_time(config, 12);
  EXPECT_GT(t6, t3);
  // Affine law: (t12 - t6)/(t6 - t3) = (11-5)/(5-2) = 2.
  EXPECT_NEAR((t12 - t6) / (t6 - t3), 2.0, 0.25);
}

TEST(Probe, FittedModelReproducesProbes) {
  const auto config = default_probe();
  const auto comm = probe_comm_model(config);
  // The fit is exact at the probe sizes by construction; third sizes
  // (below / above the long-message threshold respectively) confirm
  // linearity of the underlying machine.
  EXPECT_NEAR(comm.t_send(5e4), measure_send_time(config, 5e4), 1e-9);
  EXPECT_NEAR(comm.t_bcast(config.collective_ranks, 4e3),
              measure_bcast_time(config, config.collective_ranks, 4e3),
              1e-6);
  // The long-message law's per-byte slope carries a (p-1)/p factor the
  // affine model folds into β, so cross-(p, m) reproduction is approximate.
  const double measured_large =
      measure_bcast_time(config, config.collective_ranks, 5e5);
  EXPECT_NEAR(comm.t_bcast_large(config.collective_ranks, 5e5),
              measured_large, 0.10 * measured_large);
  EXPECT_NEAR(comm.t_barrier(config.collective_ranks),
              measure_barrier_time(config, config.collective_ranks), 1e-9);
}

TEST(Probe, ModelExtrapolatesAcrossRankCounts) {
  const auto config = default_probe();
  const auto comm = probe_comm_model(config);
  const double measured = measure_bcast_time(config, 17, 1e4);
  EXPECT_NEAR(comm.t_bcast(17, 1e4), measured, 0.12 * measured);
}

TEST(Probe, PositiveParameters) {
  const auto comm = probe_comm_model(default_probe());
  EXPECT_GT(comm.send_alpha_s, 0.0);
  EXPECT_GT(comm.send_beta_s_per_byte, 0.0);
  EXPECT_GT(comm.bcast_const_s, 0.0);
  EXPECT_GT(comm.bcast_alpha_s, 0.0);
  EXPECT_GT(comm.bcast_beta_s_per_byte, 0.0);
  EXPECT_GT(comm.barrier_const_s, 0.0);
  EXPECT_GT(comm.barrier_unit_s, 0.0);
}

TEST(Probe, SystemModelForClusterSumsMarkedSpeeds) {
  const auto comm = probe_comm_model(default_probe());
  const auto cluster = machine::sunwulf::ge_ensemble(4);
  const auto system = system_model_for(cluster, comm);
  EXPECT_EQ(system.p, cluster.processor_count());
  EXPECT_GT(system.marked_speed, 0.0);
  EXPECT_GT(system.root_speed, 0.0);
  EXPECT_LT(system.root_speed, system.marked_speed);
}

TEST(Probe, InvalidConfigRejected) {
  auto config = default_probe();
  config.bytes_large = config.bytes_small;
  EXPECT_THROW(probe_comm_model(config), PreconditionError);
  EXPECT_THROW(measure_bcast_time(default_probe(), 1, 8.0),
               PreconditionError);
}

}  // namespace
}  // namespace hetscale::predict
