#include "hetscale/predict/models.hpp"

#include <gtest/gtest.h>

#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"

namespace hetscale::predict {
namespace {

CommModel sample_comm() {
  CommModel comm;
  comm.send_alpha_s = 1.2e-4;
  comm.send_beta_s_per_byte = 8e-8;  // ~12.5 MB/s
  comm.bcast_const_s = 1e-4;
  comm.bcast_alpha_s = 3e-5;
  comm.bcast_beta_s_per_byte = 8e-8;
  comm.bcast_large_const_s = 2e-4;
  comm.bcast_large_alpha_s = 1.4e-4;   // ~2(o + L) per extra rank
  comm.bcast_large_beta_s_per_byte = 1.6e-7;  // ~2/B
  comm.barrier_const_s = 2.2e-4;
  comm.barrier_unit_s = 2.4e-5;
  return comm;
}

SystemModel sample_system(int p) {
  SystemModel system;
  system.p = p;
  system.marked_speed = p * units::mflops(27.5);
  system.root_speed = units::mflops(26.0);
  system.comm = sample_comm();
  return system;
}

TEST(CommModel, AffineForms) {
  const auto comm = sample_comm();
  EXPECT_DOUBLE_EQ(comm.t_send(0.0), comm.send_alpha_s);
  EXPECT_DOUBLE_EQ(comm.t_send(1e6), comm.send_alpha_s + 8e-2);
  EXPECT_DOUBLE_EQ(comm.t_bcast(5, 100.0),
                   comm.bcast_const_s + 4.0 * (comm.bcast_alpha_s + 8e-6));
  EXPECT_DOUBLE_EQ(comm.t_barrier(9),
                   comm.barrier_const_s + 8.0 * comm.barrier_unit_s);
  // Degenerate single-process system: collectives are free.
  EXPECT_DOUBLE_EQ(comm.t_bcast(1, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(comm.t_barrier(1), 0.0);
}

TEST(GeModel, WorkMatchesLibraryPolynomial) {
  GeOverheadModel model;
  EXPECT_DOUBLE_EQ(model.work(200), numeric::ge_workload(200.0));
  EXPECT_DOUBLE_EQ(model.sequential_flops(200), 200.0 * 200.0);
}

TEST(GeModel, OverheadGrowsWithNAndP) {
  GeOverheadModel model;
  const auto s4 = sample_system(4);
  const auto s8 = sample_system(8);
  EXPECT_GT(model.overhead(200, s4), model.overhead(100, s4));
  EXPECT_GT(model.overhead(200, s8), model.overhead(200, s4));
}

TEST(GeModel, SequentialTimeUsesRootSpeed) {
  GeOverheadModel model;
  const auto system = sample_system(4);
  EXPECT_DOUBLE_EQ(model.sequential_time(100, system),
                   1e4 / units::mflops(26.0));
}

TEST(MmModel, PerfectlyParallel) {
  MmOverheadModel model;
  EXPECT_DOUBLE_EQ(model.sequential_flops(500), 0.0);
  EXPECT_DOUBLE_EQ(model.work(10), 2000.0);
}

TEST(MmModel, UsesShortBcastLawBelowThreshold) {
  // 8N² below the threshold must use the flat law; the long law's affine
  // extrapolation is never consulted there (it can go negative at small
  // p·m, which used to crash Corollary 2 at p = 2).
  MmOverheadModel model;
  auto system = sample_system(2);
  system.comm.bcast_large_const_s = -1.0;  // poison the long law
  const double small_n = 30.0;  // 8*900 = 7.2 KB < 12288
  EXPECT_GT(model.overhead(small_n, system), 0.0);
}

TEST(MmModel, OverheadNeverNegative) {
  MmOverheadModel model;
  auto system = sample_system(2);
  system.comm.bcast_large_const_s = -10.0;
  system.comm.bcast_large_alpha_s = 0.0;
  system.comm.bcast_large_beta_s_per_byte = 0.0;
  for (double n : {50.0, 100.0, 400.0}) {
    EXPECT_GE(model.overhead(n, system), 0.0) << n;
  }
}

TEST(GeModel, ThresholdSplitsPivotBroadcastLaws) {
  // Above N = threshold/8 some steps use the long law: raising the long
  // law's cost must raise the overhead only for such N.
  GeOverheadModel model;
  auto cheap = sample_system(4);
  auto dear = sample_system(4);
  dear.comm.bcast_large_alpha_s *= 10.0;
  const double below = 1000.0;  // all rows < 12288 bytes
  const double above = 4000.0;  // rows up to 32 KB
  EXPECT_DOUBLE_EQ(model.overhead(below, cheap),
                   model.overhead(below, dear));
  EXPECT_LT(model.overhead(above, cheap), model.overhead(above, dear));
}

TEST(Predicted, TimeDecomposesConsistently) {
  GeOverheadModel model;
  const auto system = sample_system(4);
  const double n = 300;
  const double t = predicted_time(model, system, n);
  const double parts = (model.work(n) - model.sequential_flops(n)) /
                           system.marked_speed +
                       model.sequential_time(n, system) +
                       model.overhead(n, system);
  EXPECT_DOUBLE_EQ(t, parts);
}

TEST(Predicted, EfficiencyIncreasesWithN) {
  GeOverheadModel model;
  const auto system = sample_system(4);
  double prev = 0.0;
  for (double n : {50.0, 100.0, 200.0, 400.0, 800.0}) {
    const double es = predicted_speed_efficiency(model, system, n);
    EXPECT_GT(es, prev);
    prev = es;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(Predicted, RequiredSizeHitsTheTarget) {
  GeOverheadModel model;
  const auto system = sample_system(4);
  const auto n = predicted_required_size(model, system, 0.3);
  EXPECT_GT(n, 0);
  // ceil() rounding: at n the target is met, just below it is not.
  EXPECT_GE(predicted_speed_efficiency(model, system,
                                       static_cast<double>(n)) +
                1e-9,
            0.3);
  EXPECT_LT(predicted_speed_efficiency(model, system,
                                       static_cast<double>(n) - 2.0),
            0.3);
}

TEST(Predicted, RequiredSizeGrowsWithSystem) {
  GeOverheadModel model;
  const auto n4 = predicted_required_size(model, sample_system(4), 0.3);
  const auto n8 = predicted_required_size(model, sample_system(8), 0.3);
  EXPECT_GT(n8, n4);
}

TEST(Predicted, ScalabilityBetweenZeroAndOne) {
  GeOverheadModel model;
  const double psi =
      predicted_scalability(model, sample_system(3), sample_system(5), 0.3);
  EXPECT_GT(psi, 0.0);
  EXPECT_LT(psi, 1.0);
}

TEST(Predicted, IdenticalSystemsScalePerfectly) {
  GeOverheadModel model;
  const double psi =
      predicted_scalability(model, sample_system(4), sample_system(4), 0.3);
  EXPECT_DOUBLE_EQ(psi, 1.0);
}

TEST(Predicted, MmMoreScalableThanGe) {
  // The paper's §4.4.3 comparison, in the analytic model.
  GeOverheadModel ge;
  MmOverheadModel mm;
  const auto from = sample_system(3);
  const auto to = sample_system(9);
  EXPECT_GT(predicted_scalability(mm, from, to, 0.3),
            predicted_scalability(ge, from, to, 0.3));
}

TEST(Predicted, InvalidTargetRejected) {
  GeOverheadModel model;
  EXPECT_THROW(predicted_required_size(model, sample_system(4), 0.0),
               PreconditionError);
  EXPECT_THROW(predicted_required_size(model, sample_system(4), 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace hetscale::predict
