#include "hetscale/predict/theory.hpp"

#include <gtest/gtest.h>

#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::predict {
namespace {

TEST(Theory, Theorem1BasicRatio) {
  EXPECT_DOUBLE_EQ(theorem1_scalability(1.0, 3.0, 2.0, 6.0), 0.5);
}

TEST(Theory, Corollary1ConstantOverheadPerfectlyParallelGivesOne) {
  // α = 0 (t0 = t0' = 0) and To = To' -> ψ = 1.
  EXPECT_DOUBLE_EQ(theorem1_scalability(0.0, 2.5, 0.0, 2.5), 1.0);
}

TEST(Theory, Corollary2IsTheorem1WithZeroSequentialTime) {
  EXPECT_DOUBLE_EQ(corollary2_scalability(2.0, 5.0),
                   theorem1_scalability(0.0, 2.0, 0.0, 5.0));
  EXPECT_DOUBLE_EQ(corollary2_scalability(2.0, 5.0), 0.4);
}

TEST(Theory, GrowingOverheadMeansPsiBelowOne) {
  EXPECT_LT(theorem1_scalability(0.1, 1.0, 0.2, 2.0), 1.0);
}

TEST(Theory, ScaledWorkIsConsistentWithPsiDefinition) {
  // ψ from Theorem 1 must equal ψ = C·W / (C'·W') ... i.e. the W' implied
  // by the theorem plugged into the definition recovers the same ψ.
  const double w = 1e9;
  const double c = 1e8;
  const double c2 = 3e8;
  const double t0 = 0.5;
  const double to = 1.5;
  const double t02 = 0.8;
  const double to2 = 2.2;
  const double w2 = theorem1_scaled_work(w, c, t0, to, c2, t02, to2);
  EXPECT_NEAR(scal::isospeed_efficiency_scalability(c, w, c2, w2),
              theorem1_scalability(t0, to, t02, to2), 1e-12);
}

TEST(Theory, ScaledWorkIdealCase) {
  // Same t0 + To on both systems: W' = W·C'/C (the ideal).
  EXPECT_DOUBLE_EQ(theorem1_scaled_work(1e9, 1e8, 0.0, 1.0, 2e8, 0.0, 1.0),
                   2e9);
}

TEST(Theory, InvalidInputsRejected) {
  EXPECT_THROW(theorem1_scalability(-1.0, 1.0, 1.0, 1.0), PreconditionError);
  EXPECT_THROW(theorem1_scalability(0.0, 1.0, 0.0, 0.0), PreconditionError);
  EXPECT_THROW(theorem1_scaled_work(0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace hetscale::predict
