#include "hetscale/algos/mm.hpp"

#include <gtest/gtest.h>

#include <string>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matmul.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::algos {
namespace {

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 12.5e6};
  p.per_message_overhead_s = 2e-5;
  return p;
}

MmResult run_mm(machine::Cluster cluster, const MmOptions& options) {
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  return run_parallel_mm(machine, options);
}

machine::Cluster mixed_cluster(int nodes) {
  return machine::sunwulf::mm_ensemble(nodes);
}

class MmSizes : public ::testing::TestWithParam<std::int64_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, MmSizes, ::testing::Values(1, 2, 3, 5, 16, 40));

TEST_P(MmSizes, ProductMatchesSequentialReference) {
  MmOptions options;
  options.n = GetParam();
  const auto result = run_mm(mixed_cluster(4), options);
  const auto reference = numeric::multiply(result.a, result.b);
  EXPECT_LT(numeric::max_abs_diff(result.c, reference), 1e-10)
      << "n=" << options.n;
}

TEST_P(MmSizes, ChargedFlopsEqualTwoNCubed) {
  MmOptions options;
  options.n = GetParam();
  options.with_data = false;
  const auto result = run_mm(mixed_cluster(4), options);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
  EXPECT_DOUBLE_EQ(result.work_flops,
                   numeric::mm_workload(static_cast<double>(options.n)));
}

TEST(Mm, TimingInvariantUnderWithData) {
  MmOptions with;
  with.n = 24;
  with.with_data = true;
  MmOptions without = with;
  without.with_data = false;
  const auto a = run_mm(mixed_cluster(4), with);
  const auto b = run_mm(mixed_cluster(4), without);
  EXPECT_EQ(a.run.elapsed, b.run.elapsed);
}

TEST(Mm, HeterogeneousDistributionBeatsHomogeneousOnMixedNodes) {
  // The whole point of distributing by marked speed: on a heterogeneous
  // ensemble, proportional blocks finish sooner than equal blocks.
  MmOptions het;
  het.n = 400;
  het.with_data = false;
  het.distribution = MmDistribution::kHeterogeneousBlock;
  MmOptions hom = het;
  hom.distribution = MmDistribution::kHomogeneousBlock;
  const auto het_run = run_mm(mixed_cluster(8), het);
  const auto hom_run = run_mm(mixed_cluster(8), hom);
  EXPECT_LT(het_run.run.elapsed, hom_run.run.elapsed);
}

TEST(Mm, DistributionsAgreeOnHomogeneousCluster) {
  MmOptions het;
  het.n = 60;
  het.with_data = false;
  het.distribution = MmDistribution::kHeterogeneousBlock;
  MmOptions hom = het;
  hom.distribution = MmDistribution::kHomogeneousBlock;
  const auto cluster = [] { return machine::sunwulf::homogeneous_ensemble(4); };
  EXPECT_EQ(run_mm(cluster(), het).run.elapsed,
            run_mm(cluster(), hom).run.elapsed);
}

TEST(Mm, SingleRankHasNoTraffic) {
  machine::Cluster cluster;
  cluster.add_node("solo", machine::sunwulf::sunblade_spec());
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  MmOptions options;
  options.n = 16;
  const auto result = run_parallel_mm(machine, options);
  EXPECT_EQ(result.run.network.messages, 0u);
  const auto reference = numeric::multiply(result.a, result.b);
  EXPECT_LT(numeric::max_abs_diff(result.c, reference), 1e-12);
}

TEST(Mm, NoCommunicationDuringComputePhase) {
  // All traffic is distribution + collection: bytes on the network equal
  // A-out + B-bcast + C-back exactly.
  MmOptions options;
  options.n = 32;
  options.with_data = false;
  const int nodes = 4;
  auto cluster = mixed_cluster(nodes);
  const int p = cluster.processor_count();
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  const auto result = run_parallel_mm(machine, options);
  const double n2 = 32.0 * 32.0 * 8.0;
  const double meta = 16.0 * (p - 1);
  // A rows to p-1 remotes (~n2 total less root's share), B to all p-1,
  // C back the same as A.
  const double expected_max = meta + 2.0 * n2 + (p - 1) * n2;
  EXPECT_LE(result.run.network.bytes, expected_max + 1.0);
  EXPECT_GT(result.run.network.bytes, (p - 1) * n2);
}

TEST(Mm, InvalidSizeRejected) {
  MmOptions options;
  options.n = 0;
  EXPECT_THROW(run_mm(mixed_cluster(2), options), PreconditionError);
}

}  // namespace
}  // namespace hetscale::algos
