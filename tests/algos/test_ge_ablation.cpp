// Ablation hooks of the GE algorithm: per-step barrier on/off and
// heterogeneous vs homogeneous cyclic distribution.
#include <gtest/gtest.h>

#include <string>

#include "hetscale/algos/ge.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/matrix.hpp"

namespace hetscale::algos {
namespace {

machine::Cluster hetero_cluster(int blades) {
  machine::Cluster cluster;
  cluster.add_node("server", machine::sunwulf::server_spec(), 2);
  for (int i = 0; i < blades; ++i) {
    cluster.add_node("hpc-" + std::to_string(i),
                     machine::sunwulf::sunblade_spec());
  }
  return cluster;
}

GeResult run_ge(machine::Cluster cluster, const GeOptions& options) {
  auto machine = vmpi::Machine::switched(std::move(cluster));
  return run_parallel_ge(machine, options);
}

TEST(GeAblation, BarrierFreeVariantStillSolvesCorrectly) {
  // The broadcast ordering alone carries the data dependence: removing the
  // paper's per-step barrier must not change the numerics one bit.
  GeOptions with;
  with.n = 40;
  with.barrier_each_step = true;
  GeOptions without = with;
  without.barrier_each_step = false;
  const auto a = run_ge(hetero_cluster(3), with);
  const auto b = run_ge(hetero_cluster(3), without);
  EXPECT_LT(b.residual, 1e-8);
  EXPECT_EQ(a.solution, b.solution);  // bit-identical
}

TEST(GeAblation, BarrierFreeVariantIsFaster) {
  GeOptions with;
  with.n = 200;
  with.with_data = false;
  GeOptions without = with;
  without.barrier_each_step = false;
  const auto a = run_ge(hetero_cluster(3), with);
  const auto b = run_ge(hetero_cluster(3), without);
  EXPECT_LT(b.run.elapsed, a.run.elapsed);
  // The saving is roughly N barriers' worth, not a rounding error.
  EXPECT_GT(a.run.elapsed - b.run.elapsed, 0.05 * a.run.elapsed);
}

TEST(GeAblation, HomogeneousDistributionSolvesButSlower) {
  GeOptions het;
  het.n = 240;
  het.with_data = false;
  het.distribution = GeDistribution::kHeterogeneousCyclic;
  GeOptions hom = het;
  hom.distribution = GeDistribution::kHomogeneousCyclic;
  // A strongly lopsided system: one V210 + three SunBlades.
  machine::Cluster cluster;
  cluster.add_node("v210", machine::sunwulf::v210_spec(), 2);
  for (int i = 0; i < 3; ++i) {
    cluster.add_node("hpc-" + std::to_string(i),
                     machine::sunwulf::sunblade_spec());
  }
  const auto het_run = run_ge(cluster, het);
  const auto hom_run = run_ge(cluster, hom);
  EXPECT_LT(het_run.run.elapsed, hom_run.run.elapsed);
}

TEST(GeAblation, HomogeneousDistributionStillCorrect) {
  GeOptions options;
  options.n = 30;
  options.distribution = GeDistribution::kHomogeneousCyclic;
  const auto result = run_ge(hetero_cluster(2), options);
  EXPECT_LT(result.residual, 1e-9);
}

TEST(GeAblation, DistributionsChargeIdenticalWork) {
  for (auto distribution : {GeDistribution::kHeterogeneousCyclic,
                            GeDistribution::kHomogeneousCyclic}) {
    GeOptions options;
    options.n = 64;
    options.with_data = false;
    options.distribution = distribution;
    const auto result = run_ge(hetero_cluster(3), options);
    EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
  }
}

}  // namespace
}  // namespace hetscale::algos
