#include "hetscale/algos/ge.hpp"

#include <gtest/gtest.h>

#include <string>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"

namespace hetscale::algos {
namespace {

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 12.5e6};
  p.per_message_overhead_s = 2e-5;
  return p;
}

machine::Cluster hetero_cluster(int blades) {
  machine::Cluster cluster;
  cluster.add_node("server", machine::sunwulf::server_spec(), 2);
  for (int i = 0; i < blades; ++i) {
    cluster.add_node("hpc-" + std::to_string(i),
                     machine::sunwulf::sunblade_spec());
  }
  return cluster;
}

GeResult run_ge(machine::Cluster cluster, const GeOptions& options) {
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  return run_parallel_ge(machine, options);
}

class GeSizes : public ::testing::TestWithParam<std::int64_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, GeSizes, ::testing::Values(1, 2, 3, 7, 24, 60));

TEST_P(GeSizes, SolvesTheSystemOnHeterogeneousCluster) {
  GeOptions options;
  options.n = GetParam();
  options.with_data = true;
  const auto result = run_ge(hetero_cluster(3), options);
  ASSERT_EQ(result.solution.size(), static_cast<std::size_t>(options.n));
  EXPECT_LT(result.residual, 1e-8) << "n=" << options.n;
}

TEST_P(GeSizes, ChargedFlopsEqualWorkloadPolynomial) {
  GeOptions options;
  options.n = GetParam();
  options.with_data = false;
  const auto result = run_ge(hetero_cluster(3), options);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops)
      << "n=" << options.n;
  EXPECT_DOUBLE_EQ(result.work_flops,
                   numeric::ge_workload(static_cast<double>(options.n)));
}

TEST(Ge, MatchesSequentialSolver) {
  GeOptions options;
  options.n = 40;
  options.seed = 7;
  const auto parallel = run_ge(hetero_cluster(2), options);

  // Rebuild the same system and solve sequentially.
  Rng rng(options.seed);
  const auto a = numeric::Matrix::random_diagonally_dominant(40, rng);
  std::vector<double> b(40);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = numeric::solve_dense(a, b, numeric::Pivoting::kNone);
  EXPECT_LT(numeric::max_abs_diff(parallel.solution, x), 1e-8);
}

TEST(Ge, TimingInvariantUnderWithData) {
  // The central decoupling property: real arithmetic on/off must not change
  // virtual time by a single bit.
  GeOptions with;
  with.n = 30;
  with.with_data = true;
  GeOptions without = with;
  without.with_data = false;
  const auto a = run_ge(hetero_cluster(3), with);
  const auto b = run_ge(hetero_cluster(3), without);
  EXPECT_EQ(a.run.elapsed, b.run.elapsed);
  for (std::size_t r = 0; r < a.run.ranks.size(); ++r) {
    EXPECT_EQ(a.run.ranks[r].compute_s, b.run.ranks[r].compute_s);
    EXPECT_EQ(a.run.ranks[r].bytes_sent, b.run.ranks[r].bytes_sent);
  }
}

TEST(Ge, DeterministicElapsed) {
  GeOptions options;
  options.n = 25;
  options.with_data = false;
  const auto a = run_ge(hetero_cluster(2), options);
  const auto b = run_ge(hetero_cluster(2), options);
  EXPECT_EQ(a.run.elapsed, b.run.elapsed);
}

TEST(Ge, SingleRankDegeneratesToSequential) {
  machine::Cluster cluster;
  cluster.add_node("solo", machine::sunwulf::sunblade_spec());
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  GeOptions options;
  options.n = 20;
  const auto result = run_parallel_ge(machine, options);
  EXPECT_LT(result.residual, 1e-9);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
  // No remote messages at all on one rank.
  EXPECT_EQ(result.run.network.messages, 0u);
}

TEST(Ge, MoreNodesFinishFasterAtLargeN) {
  // At small N the extra per-step collective cost of a bigger ensemble
  // outweighs its compute advantage; at large N compute dominates. Check
  // both sides of the crossover.
  GeOptions options;
  options.n = 1500;
  options.with_data = false;
  const auto small = run_ge(hetero_cluster(1), options);
  const auto big = run_ge(hetero_cluster(7), options);
  EXPECT_LT(big.run.elapsed, small.run.elapsed);

  GeOptions tiny = options;
  tiny.n = 60;
  const auto small_tiny = run_ge(hetero_cluster(1), tiny);
  const auto big_tiny = run_ge(hetero_cluster(7), tiny);
  EXPECT_GT(big_tiny.run.elapsed, small_tiny.run.elapsed);
}

TEST(Ge, ExplicitSpeedsDriveDistribution) {
  GeOptions options;
  options.n = 30;
  options.with_data = false;
  options.speeds = {units::mflops(26), units::mflops(26), units::mflops(27.5),
                    units::mflops(27.5), units::mflops(27.5)};
  const auto result = run_ge(hetero_cluster(3), options);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
}

TEST(Ge, SpeedCountMismatchRejected) {
  GeOptions options;
  options.n = 10;
  options.speeds = {1.0, 2.0};  // cluster has 5 ranks
  EXPECT_THROW(run_ge(hetero_cluster(3), options), PreconditionError);
}

TEST(Ge, InvalidSizeRejected) {
  GeOptions options;
  options.n = 0;
  EXPECT_THROW(run_ge(hetero_cluster(2), options), PreconditionError);
}

}  // namespace
}  // namespace hetscale::algos
