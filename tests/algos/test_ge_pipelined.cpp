// The pipelined (lookahead-1) GE variant: identical numerics, overlapped
// pivot distribution.
#include <gtest/gtest.h>

#include <string>

#include "hetscale/algos/ge.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matrix.hpp"

namespace hetscale::algos {
namespace {

machine::Cluster hetero_cluster(int blades) {
  machine::Cluster cluster;
  cluster.add_node("server", machine::sunwulf::server_spec(), 2);
  for (int i = 0; i < blades; ++i) {
    cluster.add_node("hpc-" + std::to_string(i),
                     machine::sunwulf::sunblade_spec());
  }
  return cluster;
}

GeResult run_ge(machine::Cluster cluster, const GeOptions& options) {
  auto machine = vmpi::Machine::switched(std::move(cluster));
  return run_parallel_ge(machine, options);
}

class PipelinedSizes : public ::testing::TestWithParam<std::int64_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, PipelinedSizes,
                         ::testing::Values(1, 2, 3, 9, 40, 70));

TEST_P(PipelinedSizes, SolutionBitIdenticalToPaperVariant) {
  GeOptions paper;
  paper.n = GetParam();
  paper.pipelined = false;
  GeOptions pipelined = paper;
  pipelined.pipelined = true;
  const auto a = run_ge(hetero_cluster(3), paper);
  const auto b = run_ge(hetero_cluster(3), pipelined);
  EXPECT_EQ(a.solution, b.solution);  // same arithmetic, different schedule
  EXPECT_LT(b.residual, 1e-8);
}

TEST_P(PipelinedSizes, ChargesExactlyTheWorkload) {
  GeOptions options;
  options.n = GetParam();
  options.pipelined = true;
  options.with_data = false;
  const auto result = run_ge(hetero_cluster(3), options);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
}

TEST(GePipelined, FasterThanPaperVariant) {
  GeOptions paper;
  paper.n = 300;
  paper.with_data = false;
  GeOptions pipelined = paper;
  pipelined.pipelined = true;
  const auto t_paper = run_ge(hetero_cluster(5), paper).run.elapsed;
  const auto t_pipe = run_ge(hetero_cluster(5), pipelined).run.elapsed;
  EXPECT_LT(t_pipe, t_paper);
  // The win is substantial, not epsilon: no barrier + overlapped pivots.
  EXPECT_LT(t_pipe, 0.8 * t_paper);
}

TEST(GePipelined, TimingInvariantUnderWithData) {
  GeOptions with;
  with.n = 40;
  with.pipelined = true;
  GeOptions without = with;
  without.with_data = false;
  EXPECT_EQ(run_ge(hetero_cluster(3), with).run.elapsed,
            run_ge(hetero_cluster(3), without).run.elapsed);
}

TEST(GePipelined, SingleRankStillWorks) {
  machine::Cluster solo;
  solo.add_node("solo", machine::sunwulf::sunblade_spec());
  auto machine = vmpi::Machine::switched(std::move(solo));
  GeOptions options;
  options.n = 25;
  options.pipelined = true;
  const auto result = run_parallel_ge(machine, options);
  EXPECT_LT(result.residual, 1e-9);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
}

}  // namespace
}  // namespace hetscale::algos
