// Every algorithm, partitioned: each workload must produce bit-identical
// results — virtual time, charged flops, and the real data it computed —
// whether the machine simulates sequentially or across partition threads.
//
// This is also the suite that puts every algorithm's shared-state
// discipline under TSan in CI: rank coroutines run on partition threads
// here, so any cross-rank write that is not a message, a root-only
// section, or a per-rank slot (see src/algos/src/charge_ledger.hpp) is a
// reported race.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hetscale/algos/ge.hpp"
#include "hetscale/algos/ge_pivot.hpp"
#include "hetscale/algos/jacobi.hpp"
#include "hetscale/algos/mm.hpp"
#include "hetscale/algos/sort.hpp"
#include "hetscale/algos/spmv.hpp"
#include "hetscale/algos/summa.hpp"
#include "hetscale/machine/cluster.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::algos {
namespace {

constexpr int kRanks = 4;
constexpr int kThreads = 4;

/// Explicit unequal marked speeds: drives the heterogeneous distributions
/// without running the marked benchmark suite on the synthetic nodes.
std::vector<double> test_speeds() { return {30.0, 40.0, 50.0, 40.0}; }

/// One rank per node, unequal speeds, switched network: the eligible
/// partitioned configuration with a heterogeneous distribution. Machines
/// are single-shot and non-movable, so each run builds one in place and
/// hands it straight to the algorithm.
machine::Cluster test_cluster() {
  machine::Cluster cluster;
  for (int i = 0; i < kRanks; ++i) {
    cluster.add_node(
        "n" + std::to_string(i),
        machine::NodeSpec{"Test", 1, units::mflops(40.0 + 10.0 * (i % 3)),
                          1e9, 4e8, {1.0}});
  }
  return cluster;
}

net::NetworkParams test_params() {
  net::NetworkParams params;
  params.remote = {1e-4, 1e7};
  params.per_message_overhead_s = 1e-5;
  return params;
}

/// Run `algo(machine)` on a fresh machine at the given thread count.
template <typename Algo>
auto run_at(int sim_threads, Algo&& algo) {
  auto machine = vmpi::Machine::switched(test_cluster(), test_params());
  machine.set_sim_threads(sim_threads);
  return algo(machine);
}

TEST(PartitionedAlgos, GePaperBitIdentical) {
  GeOptions options;
  options.speeds = test_speeds();
  options.n = 48;
  const auto seq = run_at(
      1, [&](vmpi::Machine& m) { return run_parallel_ge(m, options); });
  const auto par = run_at(
      kThreads, [&](vmpi::Machine& m) { return run_parallel_ge(m, options); });
  EXPECT_EQ(seq.run.elapsed, par.run.elapsed);
  EXPECT_EQ(seq.charged_flops, par.charged_flops);
  EXPECT_EQ(seq.solution, par.solution);
  EXPECT_EQ(seq.residual, par.residual);
}

TEST(PartitionedAlgos, GePipelinedBitIdentical) {
  GeOptions options;
  options.speeds = test_speeds();
  options.n = 48;
  options.pipelined = true;
  options.barrier_each_step = false;
  const auto seq = run_at(
      1, [&](vmpi::Machine& m) { return run_parallel_ge(m, options); });
  const auto par = run_at(
      kThreads, [&](vmpi::Machine& m) { return run_parallel_ge(m, options); });
  EXPECT_EQ(seq.run.elapsed, par.run.elapsed);
  EXPECT_EQ(seq.charged_flops, par.charged_flops);
  EXPECT_EQ(seq.solution, par.solution);
}

TEST(PartitionedAlgos, MmBitIdentical) {
  MmOptions options;
  options.speeds = test_speeds();
  options.n = 40;
  const auto seq = run_at(
      1, [&](vmpi::Machine& m) { return run_parallel_mm(m, options); });
  const auto par = run_at(
      kThreads, [&](vmpi::Machine& m) { return run_parallel_mm(m, options); });
  EXPECT_EQ(seq.run.elapsed, par.run.elapsed);
  EXPECT_EQ(seq.charged_flops, par.charged_flops);
  EXPECT_TRUE(seq.c == par.c);
}

TEST(PartitionedAlgos, JacobiBitIdentical) {
  JacobiOptions options;
  options.speeds = test_speeds();
  options.n = 24;
  options.sweeps = 3;
  const auto seq = run_at(
      1, [&](vmpi::Machine& m) { return run_parallel_jacobi(m, options); });
  const auto par = run_at(
      kThreads, [&](vmpi::Machine& m) { return run_parallel_jacobi(m, options); });
  EXPECT_EQ(seq.run.elapsed, par.run.elapsed);
  EXPECT_EQ(seq.charged_flops, par.charged_flops);
  EXPECT_EQ(seq.grid, par.grid);
}

TEST(PartitionedAlgos, SortBitIdentical) {
  SortOptions options;
  options.speeds = test_speeds();
  options.n = 512;
  const auto seq = run_at(
      1, [&](vmpi::Machine& m) { return run_parallel_sort(m, options); });
  const auto par = run_at(
      kThreads, [&](vmpi::Machine& m) { return run_parallel_sort(m, options); });
  EXPECT_EQ(seq.run.elapsed, par.run.elapsed);
  EXPECT_EQ(seq.charged_flops, par.charged_flops);
  EXPECT_EQ(seq.sorted, par.sorted);
  EXPECT_EQ(seq.bucket_counts, par.bucket_counts);
}

TEST(PartitionedAlgos, SpmvBitIdentical) {
  SpmvOptions options;
  options.speeds = test_speeds();
  options.n = 96;
  options.sweeps = 2;
  const auto seq = run_at(
      1, [&](vmpi::Machine& m) { return run_parallel_spmv(m, options); });
  const auto par = run_at(
      kThreads, [&](vmpi::Machine& m) { return run_parallel_spmv(m, options); });
  EXPECT_EQ(seq.run.elapsed, par.run.elapsed);
  EXPECT_EQ(seq.charged_flops, par.charged_flops);
  EXPECT_EQ(seq.y, par.y);
}

TEST(PartitionedAlgos, SummaBitIdentical) {
  SummaOptions options;
  options.speeds = test_speeds();
  options.n = 32;
  options.tile = 8;
  const auto seq = run_at(
      1, [&](vmpi::Machine& m) { return run_parallel_summa(m, options); });
  const auto par = run_at(
      kThreads, [&](vmpi::Machine& m) { return run_parallel_summa(m, options); });
  EXPECT_EQ(seq.run.elapsed, par.run.elapsed);
  EXPECT_EQ(seq.charged_flops, par.charged_flops);
  EXPECT_TRUE(seq.c == par.c);
}

TEST(PartitionedAlgos, GePivotBitIdentical) {
  GePivotOptions options;
  options.speeds = test_speeds();
  options.n = 40;
  options.panel = 8;
  const auto seq = run_at(
      1, [&](vmpi::Machine& m) { return run_parallel_ge_pivot(m, options); });
  const auto par = run_at(
      kThreads, [&](vmpi::Machine& m) { return run_parallel_ge_pivot(m, options); });
  EXPECT_EQ(seq.run.elapsed, par.run.elapsed);
  EXPECT_EQ(seq.charged_flops, par.charged_flops);
  EXPECT_EQ(seq.row_swaps, par.row_swaps);
  EXPECT_EQ(seq.solution, par.solution);
}

}  // namespace
}  // namespace hetscale::algos
