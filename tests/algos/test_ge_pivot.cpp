#include "hetscale/algos/ge_pivot.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"

namespace hetscale::algos {
namespace {

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 12.5e6};
  p.per_message_overhead_s = 2e-5;
  return p;
}

GePivotResult run_pivot(machine::Cluster cluster,
                        const GePivotOptions& options) {
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  return run_parallel_ge_pivot(machine, options);
}

machine::Cluster mixed_cluster(int nodes) {
  return machine::sunwulf::ge_ensemble(nodes);
}

/// The sequential pivoted reference on the same system ge_pivot generates.
std::vector<double> reference_solution(std::uint64_t seed, std::int64_t n) {
  Rng rng(seed);
  auto a = numeric::Matrix::random_diagonally_dominant(
      static_cast<std::size_t>(n), rng);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  return numeric::solve_dense(a, b, numeric::Pivoting::kPartial);
}

class GePivotSizes : public ::testing::TestWithParam<std::int64_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, GePivotSizes,
                         ::testing::Values(1, 2, 3, 5, 16, 40, 97));

TEST_P(GePivotSizes, SolutionIsBitIdenticalToPivotedReference) {
  GePivotOptions options;
  options.n = GetParam();
  options.panel = 8;
  const auto result = run_pivot(mixed_cluster(4), options);
  EXPECT_EQ(result.solution, reference_solution(options.seed, options.n))
      << "n=" << options.n;
  EXPECT_LT(result.residual, 1e-9);
}

TEST(GePivot, PanelWidthDoesNotChangeTheSolution) {
  // The deferred trailing updates replay the unblocked per-element order, so
  // any panel width gives the same doubles.
  GePivotOptions narrow;
  narrow.n = 48;
  narrow.panel = 1;
  GePivotOptions wide = narrow;
  wide.panel = 32;
  const auto a = run_pivot(mixed_cluster(4), narrow);
  const auto b = run_pivot(mixed_cluster(4), wide);
  EXPECT_EQ(a.solution, b.solution);
}

TEST(GePivot, SolvesSystemsThatDefeatPivotFreeGe) {
  // a(0,0) == 0: pivot-free GE dies at step 0; the pivot search swaps row 1
  // up and solves it. x = (3, 2) for [[0,1],[1,0]] x = (2, 3).
  GePivotOptions options;
  options.n = 2;
  options.system_a = numeric::Matrix(2, 2);
  options.system_a(0, 1) = 1.0;
  options.system_a(1, 0) = 1.0;
  options.system_b = {2.0, 3.0};
  const auto result = run_pivot(mixed_cluster(2), options);
  ASSERT_EQ(result.solution.size(), 2u);
  EXPECT_DOUBLE_EQ(result.solution[0], 3.0);
  EXPECT_DOUBLE_EQ(result.solution[1], 2.0);
  EXPECT_GE(result.row_swaps, 1);
}

TEST(GePivot, SwapsMatchTheReferencePermutation) {
  // On a general (not diagonally dominant) random system some pivots must
  // move; the parallel run still matches the sequential reference bitwise.
  GePivotOptions options;
  options.n = 24;
  options.panel = 8;
  Rng rng(7);
  options.system_a = numeric::Matrix::random(24, 24, rng);
  options.system_b.resize(24);
  for (auto& v : options.system_b) v = rng.uniform(-1.0, 1.0);
  const auto result = run_pivot(mixed_cluster(4), options);
  EXPECT_GT(result.row_swaps, 0);
  EXPECT_EQ(result.solution,
            numeric::solve_dense(options.system_a, options.system_b,
                                 numeric::Pivoting::kPartial));
}

TEST(GePivot, SingularSystemRejected) {
  GePivotOptions options;
  options.n = 3;
  options.system_a = numeric::Matrix(3, 3);  // all zeros
  options.system_b = {1.0, 1.0, 1.0};
  EXPECT_THROW(run_pivot(mixed_cluster(2), options), ModelError);
}

TEST(GePivot, TimingOnlyRunsAreDeterministic) {
  GePivotOptions options;
  options.n = 64;
  options.panel = 16;
  options.with_data = false;
  const auto a = run_pivot(mixed_cluster(4), options);
  const auto b = run_pivot(mixed_cluster(4), options);
  EXPECT_EQ(a.run.elapsed, b.run.elapsed);
  EXPECT_EQ(a.charged_flops, b.charged_flops);
  EXPECT_GT(a.charged_flops, a.work_flops);  // pivoting overhead is charged
}

TEST(GePivot, HomogeneousDistributionOptionRuns) {
  GePivotOptions options;
  options.n = 32;
  options.panel = 8;
  options.distribution = GeDistribution::kHomogeneousCyclic;
  const auto result = run_pivot(mixed_cluster(4), options);
  EXPECT_EQ(result.solution, reference_solution(options.seed, options.n));
}

TEST(GePivot, InvalidOptionsRejected) {
  GePivotOptions bad_n;
  bad_n.n = 0;
  EXPECT_THROW(run_pivot(mixed_cluster(2), bad_n), PreconditionError);
  GePivotOptions bad_panel;
  bad_panel.n = 8;
  bad_panel.panel = 0;
  EXPECT_THROW(run_pivot(mixed_cluster(2), bad_panel), PreconditionError);
}

}  // namespace
}  // namespace hetscale::algos
