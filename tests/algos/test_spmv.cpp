#include "hetscale/algos/spmv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"

namespace hetscale::algos {
namespace {

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 12.5e6};
  p.per_message_overhead_s = 2e-5;
  return p;
}

SpmvResult run_spmv(machine::Cluster cluster, const SpmvOptions& options) {
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  return run_parallel_spmv(machine, options);
}

machine::Cluster mixed_cluster(int nodes) {
  return machine::sunwulf::mm_ensemble(nodes);
}

/// The sequential reference: the same matrix, the same initial x, the same
/// per-row ascending-column accumulation, sweep by sweep.
std::vector<double> reference_sweeps(const SpmvOptions& options) {
  const auto csr = make_synthetic_csr(options.n, options.seed);
  Rng rng(options.seed);
  std::vector<double> x(static_cast<std::size_t>(options.n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> y(x.size());
  for (std::int64_t s = 0; s < options.sweeps; ++s) {
    spmv_rows(csr, 0, options.n, x, y);
    x = y;
  }
  return x;
}

class SpmvSizes : public ::testing::TestWithParam<std::int64_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, SpmvSizes,
                         ::testing::Values(1, 2, 3, 5, 16, 40, 97));

TEST_P(SpmvSizes, ResultIsBitIdenticalToSequentialReference) {
  SpmvOptions options;
  options.n = GetParam();
  const auto result = run_spmv(mixed_cluster(4), options);
  EXPECT_EQ(result.y, reference_sweeps(options)) << "n=" << options.n;
}

TEST_P(SpmvSizes, ChargedFlopsEqualWork) {
  SpmvOptions options;
  options.n = GetParam();
  options.with_data = false;
  const auto result = run_spmv(mixed_cluster(4), options);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
  EXPECT_DOUBLE_EQ(result.work_flops,
                   static_cast<double>(options.sweeps) * 2.0 *
                       static_cast<double>(result.nnz));
}

TEST(Spmv, MatchesDenseReference) {
  // One sweep against a dense GEMV of the densified matrix. The dense
  // product sums extra exact zeros, so this is a near (not bitwise) check;
  // the bitwise contract is against the CSR reference above.
  SpmvOptions options;
  options.n = 40;
  options.sweeps = 1;
  const auto csr = make_synthetic_csr(options.n, options.seed);
  numeric::Matrix dense(40, 40);
  for (std::int64_t i = 0; i < 40; ++i) {
    for (auto k = csr.row_ptr[static_cast<std::size_t>(i)];
         k < csr.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      dense(static_cast<std::size_t>(i),
            static_cast<std::size_t>(csr.cols[static_cast<std::size_t>(k)])) =
          csr.vals[static_cast<std::size_t>(k)];
    }
  }
  Rng rng(options.seed);
  std::vector<double> x(40);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto result = run_spmv(mixed_cluster(4), options);
  ASSERT_EQ(result.y.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    double want = 0.0;
    for (std::size_t j = 0; j < 40; ++j) want += dense(i, j) * x[j];
    EXPECT_NEAR(result.y[i], want, 1e-12) << "row " << i;
  }
}

TEST(Spmv, HetSplitBeatsHomogeneousOnMixedSpeeds) {
  // The acceptance property: on a heterogeneous ensemble the speed-aware
  // row split is strictly better on both nnz-weighted imbalance and
  // simulated time than equal rows per rank. Enough sweeps amortize the
  // one-time CSR distribution (which favors whichever split keeps more
  // rows at the root).
  SpmvOptions het;
  het.n = 512;
  het.sweeps = 32;
  het.with_data = false;
  SpmvOptions hom = het;
  hom.distribution = SpmvDistribution::kHomogeneousBlock;
  const auto a = run_spmv(mixed_cluster(4), het);
  const auto b = run_spmv(mixed_cluster(4), hom);
  EXPECT_LT(a.work_imbalance, b.work_imbalance);
  EXPECT_LT(a.run.elapsed, b.run.elapsed);
}

TEST(Spmv, TimingInvariantUnderWithData) {
  SpmvOptions with;
  with.n = 64;
  with.with_data = true;
  SpmvOptions without = with;
  without.with_data = false;
  const auto a = run_spmv(mixed_cluster(4), with);
  const auto b = run_spmv(mixed_cluster(4), without);
  EXPECT_EQ(a.run.elapsed, b.run.elapsed);
}

TEST(Spmv, SingleRankHasNoTraffic) {
  machine::Cluster cluster;
  cluster.add_node("solo", machine::sunwulf::sunblade_spec());
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  SpmvOptions options;
  options.n = 32;
  const auto result = run_parallel_spmv(machine, options);
  EXPECT_EQ(result.run.network.messages, 0u);
  EXPECT_EQ(result.y, reference_sweeps(options));
}

TEST(Spmv, MoreRanksThanRowsStillBitIdentical) {
  SpmvOptions options;
  options.n = 3;  // 4 ranks, at least one empty block
  const auto result = run_spmv(mixed_cluster(4), options);
  EXPECT_EQ(result.y, reference_sweeps(options));
}

TEST(Spmv, InvalidOptionsRejected) {
  SpmvOptions bad_n;
  bad_n.n = 0;
  EXPECT_THROW(run_spmv(mixed_cluster(2), bad_n), PreconditionError);
  SpmvOptions bad_sweeps;
  bad_sweeps.n = 8;
  bad_sweeps.sweeps = 0;
  EXPECT_THROW(run_spmv(mixed_cluster(2), bad_sweeps), PreconditionError);
}

TEST(SyntheticCsr, StructureIsWellFormedAndDeterministic) {
  const auto m = make_synthetic_csr(200, 45);
  ASSERT_EQ(m.row_ptr.size(), 201u);
  EXPECT_EQ(m.row_ptr.front(), 0);
  EXPECT_EQ(m.row_ptr.back(), m.nnz());
  for (std::int64_t i = 0; i < 200; ++i) {
    const auto k0 = static_cast<std::size_t>(
        m.row_ptr[static_cast<std::size_t>(i)]);
    const auto k1 = static_cast<std::size_t>(
        m.row_ptr[static_cast<std::size_t>(i) + 1]);
    const auto width = static_cast<std::int64_t>(k1 - k0);
    EXPECT_GE(width, 4) << "row " << i;
    EXPECT_LE(width, 16) << "row " << i;
    bool has_diagonal = false;
    for (std::size_t k = k0; k < k1; ++k) {
      if (k > k0) {
        EXPECT_LT(m.cols[k - 1], m.cols[k]) << "row " << i;
      }
      EXPECT_GE(m.cols[k], 0);
      EXPECT_LT(m.cols[k], 200);
      if (m.cols[k] == i) has_diagonal = true;
    }
    EXPECT_TRUE(has_diagonal) << "row " << i;
  }
  // Rows have *varying* nonzero counts — the imbalance the workload exists
  // to exercise — and the generator is a pure function of (n, seed).
  std::int64_t min_width = 17, max_width = 0;
  for (std::int64_t i = 0; i < 200; ++i) {
    const auto width = m.row_ptr[static_cast<std::size_t>(i) + 1] -
                       m.row_ptr[static_cast<std::size_t>(i)];
    min_width = std::min(min_width, width);
    max_width = std::max(max_width, width);
  }
  EXPECT_LT(min_width, max_width);
  const auto again = make_synthetic_csr(200, 45);
  EXPECT_EQ(m.cols, again.cols);
  EXPECT_EQ(m.vals, again.vals);
  EXPECT_NE(make_synthetic_csr(200, 46).cols, m.cols);
}

}  // namespace
}  // namespace hetscale::algos
