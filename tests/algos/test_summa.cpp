#include "hetscale/algos/summa.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hetscale/algos/mm.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matmul.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::algos {
namespace {

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 12.5e6};
  p.per_message_overhead_s = 2e-5;
  return p;
}

SummaResult run_summa(machine::Cluster cluster, const SummaOptions& options) {
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  return run_parallel_summa(machine, options);
}

machine::Cluster mixed_cluster(int nodes) {
  return machine::sunwulf::mm_ensemble(nodes);
}

bool bitwise_equal(const numeric::Matrix& x, const numeric::Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  return std::memcmp(x.data().data(), y.data().data(),
                     x.data().size() * sizeof(double)) == 0;
}

class SummaSizes : public ::testing::TestWithParam<std::int64_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, SummaSizes,
                         ::testing::Values(1, 2, 3, 5, 16, 40, 97));

TEST_P(SummaSizes, ProductIsBitIdenticalToSequentialReference) {
  SummaOptions options;
  options.n = GetParam();
  options.tile = 16;  // force ragged edge tiles and multi-step panels
  const auto result = run_summa(mixed_cluster(4), options);
  const auto reference = numeric::multiply(result.a, result.b);
  EXPECT_TRUE(bitwise_equal(result.c, reference)) << "n=" << options.n;
}

TEST_P(SummaSizes, ChargedFlopsEqualTwoNCubed) {
  SummaOptions options;
  options.n = GetParam();
  options.with_data = false;
  const auto result = run_summa(mixed_cluster(4), options);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
  EXPECT_DOUBLE_EQ(result.work_flops,
                   numeric::mm_workload(static_cast<double>(options.n)));
}

TEST(Summa, MatchesRowMmBitwise) {
  // Same default seed, so both algorithms multiply the same A and B; the
  // per-element k order is globally ascending in both, so the products are
  // the same doubles — the 2D refactor cannot drift the artifacts.
  SummaOptions summa;
  summa.n = 48;
  summa.tile = 8;
  MmOptions mm;
  mm.n = 48;
  const auto summa_result = run_summa(mixed_cluster(4), summa);
  auto machine = vmpi::Machine::shared_bus(mixed_cluster(4), fast_params());
  const auto mm_result = run_parallel_mm(machine, mm);
  EXPECT_TRUE(bitwise_equal(summa_result.c, mm_result.c));
}

TEST(Summa, TimingInvariantUnderWithData) {
  SummaOptions with;
  with.n = 24;
  with.tile = 8;
  with.with_data = true;
  SummaOptions without = with;
  without.with_data = false;
  const auto a = run_summa(mixed_cluster(4), with);
  const auto b = run_summa(mixed_cluster(4), without);
  EXPECT_EQ(a.run.elapsed, b.run.elapsed);
}

TEST(Summa, UsesTwoDimensionalGridWhenRanksAllow) {
  SummaOptions options;
  options.n = 32;
  options.with_data = false;
  const auto result = run_summa(mixed_cluster(8), options);
  // mm_ensemble(8) has 8 processors -> the squarest factorization is 2x4.
  EXPECT_EQ(result.grid_rows, 2);
  EXPECT_EQ(result.grid_cols, 4);
}

TEST(Summa, SingleRankHasNoTraffic) {
  machine::Cluster cluster;
  cluster.add_node("solo", machine::sunwulf::sunblade_spec());
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  SummaOptions options;
  options.n = 16;
  options.tile = 4;
  const auto result = run_parallel_summa(machine, options);
  EXPECT_EQ(result.run.network.messages, 0u);
  const auto reference = numeric::multiply(result.a, result.b);
  EXPECT_TRUE(bitwise_equal(result.c, reference));
}

TEST(Summa, InvalidOptionsRejected) {
  SummaOptions bad_n;
  bad_n.n = 0;
  EXPECT_THROW(run_summa(mixed_cluster(2), bad_n), PreconditionError);
  SummaOptions bad_tile;
  bad_tile.n = 8;
  bad_tile.tile = 0;
  EXPECT_THROW(run_summa(mixed_cluster(2), bad_tile), PreconditionError);
}

TEST(SummaTileProduct, AccumulatesKAscending) {
  // 5x3 times 3x4 against a plain triple loop, with a non-zero C to check
  // accumulation rather than overwrite.
  const std::int64_t m = 5, kc = 3, nc = 4;
  std::vector<double> a(static_cast<std::size_t>(m * kc));
  std::vector<double> b(static_cast<std::size_t>(kc * nc));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.25 * (double)(i + 1);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.5 - 0.125 * (double)i;
  std::vector<double> c(static_cast<std::size_t>(m * nc), 1.0);
  std::vector<double> want = c;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t k = 0; k < kc; ++k) {
      for (std::int64_t j = 0; j < nc; ++j) {
        want[static_cast<std::size_t>(i * nc + j)] +=
            a[static_cast<std::size_t>(i * kc + k)] *
            b[static_cast<std::size_t>(k * nc + j)];
      }
    }
  }
  summa_tile_product(a.data(), m, kc, b.data(), nc, c.data());
  EXPECT_EQ(c, want);
}

}  // namespace
}  // namespace hetscale::algos
