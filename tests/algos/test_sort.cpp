#include "hetscale/algos/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"

namespace hetscale::algos {
namespace {

SortResult run_sort(machine::Cluster cluster, const SortOptions& options) {
  auto machine = vmpi::Machine::switched(std::move(cluster));
  return run_parallel_sort(machine, options);
}

class SortSizes : public ::testing::TestWithParam<std::int64_t> {};
INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(64, 100, 500, 1000, 4096));

TEST_P(SortSizes, ProducesGloballySortedOutput) {
  SortOptions options;
  options.n = GetParam();
  const auto result = run_sort(machine::sunwulf::mm_ensemble(4), options);
  ASSERT_EQ(result.sorted.size(), static_cast<std::size_t>(options.n));
  EXPECT_TRUE(std::is_sorted(result.sorted.begin(), result.sorted.end()));
}

TEST_P(SortSizes, OutputIsAPermutationOfTheInput) {
  SortOptions options;
  options.n = GetParam();
  options.seed = 99;
  const auto result = run_sort(machine::sunwulf::mm_ensemble(4), options);
  // Rebuild the same input and compare sorted copies elementwise.
  Rng rng(options.seed);
  std::vector<double> expected(static_cast<std::size_t>(options.n));
  for (auto& key : expected) key = rng.uniform(0.0, 1.0);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result.sorted, expected);
}

TEST_P(SortSizes, ChargedFlopsEqualWorkload) {
  SortOptions options;
  options.n = GetParam();
  const auto result = run_sort(machine::sunwulf::mm_ensemble(4), options);
  EXPECT_NEAR(result.charged_flops, result.work_flops,
              1e-9 * result.work_flops);
}

TEST(Sort, SpeedProportionalSplittersBalanceByMarkedSpeed) {
  SortOptions options;
  options.n = 100000;
  options.splitters = SortSplitters::kSpeedProportional;
  const auto cluster = machine::sunwulf::mm_ensemble(4);
  const auto result = run_sort(cluster, options);
  // Bucket shares should track marked-speed shares (V210 ranks get ~2x a
  // SunBlade's keys); regular sampling is approximate, allow 25%.
  const auto speeds = marked::rank_marked_speeds(cluster);
  const double total_speed = std::accumulate(speeds.begin(), speeds.end(), 0.0);
  for (std::size_t r = 0; r < speeds.size(); ++r) {
    const double ideal =
        static_cast<double>(options.n) * speeds[r] / total_speed;
    EXPECT_NEAR(static_cast<double>(result.bucket_counts[r]), ideal,
                0.25 * ideal)
        << "rank " << r;
  }
}

TEST(Sort, UniformSplittersGiveEqualBuckets) {
  SortOptions options;
  options.n = 100000;
  options.splitters = SortSplitters::kUniform;
  const auto result = run_sort(machine::sunwulf::mm_ensemble(4), options);
  for (auto count : result.bucket_counts) {
    EXPECT_NEAR(static_cast<double>(count), options.n / 4.0,
                0.2 * options.n / 4.0);
  }
}

TEST(Sort, SpeedAwareSplittersWinWhereComputeDominates) {
  // The splitter policy balances *compute*; on a fast fabric (where the
  // exchange is cheap) the speed-aware buckets finish sooner. On the slow
  // 2005 Ethernet the runs are communication-bound and the policies tie —
  // which is itself an observation the metric pipeline surfaces.
  auto fast_machine = [] {
    net::NetworkParams params;
    params.remote = {1e-5, 1e9};  // ~GbE-class fabric
    params.per_message_overhead_s = 1e-5;
    return vmpi::Machine::switched(machine::sunwulf::mm_ensemble(8), params);
  };
  SortOptions aware;
  aware.n = 200000;
  aware.splitters = SortSplitters::kSpeedProportional;
  SortOptions uniform = aware;
  uniform.splitters = SortSplitters::kUniform;
  auto m1 = fast_machine();
  auto m2 = fast_machine();
  const auto t_aware = run_parallel_sort(m1, aware).run.elapsed;
  const auto t_uniform = run_parallel_sort(m2, uniform).run.elapsed;
  EXPECT_LT(t_aware, t_uniform);
}

TEST(Sort, SingleRankDegeneratesToLocalSort) {
  machine::Cluster solo;
  solo.add_node("solo", machine::sunwulf::sunblade_spec());
  auto machine = vmpi::Machine::switched(std::move(solo));
  SortOptions options;
  options.n = 128;
  const auto result = run_parallel_sort(machine, options);
  EXPECT_TRUE(std::is_sorted(result.sorted.begin(), result.sorted.end()));
  EXPECT_EQ(result.run.network.messages, 0u);
}

TEST(Sort, DeterministicAcrossRuns) {
  SortOptions options;
  options.n = 2000;
  const auto a = run_sort(machine::sunwulf::mm_ensemble(4), options);
  const auto b = run_sort(machine::sunwulf::mm_ensemble(4), options);
  EXPECT_EQ(a.run.elapsed, b.run.elapsed);
  EXPECT_EQ(a.sorted, b.sorted);
}

TEST(Sort, WorkloadFormula) {
  EXPECT_DOUBLE_EQ(sort_workload(1024), 6.0 * 1024 * 10.0);
  EXPECT_THROW(sort_workload(1), PreconditionError);
}

TEST(Sort, TooFewKeysRejected) {
  SortOptions options;
  options.n = 8;  // < p^2 for p = 4
  EXPECT_THROW(run_sort(machine::sunwulf::mm_ensemble(4), options),
               PreconditionError);
}

}  // namespace
}  // namespace hetscale::algos
