#include "hetscale/algos/jacobi.hpp"

#include <gtest/gtest.h>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::algos {
namespace {

net::NetworkParams fast_params() {
  net::NetworkParams p;
  p.remote = {1e-4, 12.5e6};
  p.per_message_overhead_s = 2e-5;
  return p;
}

JacobiResult run_jacobi(machine::Cluster cluster,
                        const JacobiOptions& options) {
  auto machine = vmpi::Machine::shared_bus(std::move(cluster), fast_params());
  return run_parallel_jacobi(machine, options);
}

struct Case {
  std::int64_t n;
  std::int64_t sweeps;
  int nodes;
};

class JacobiCases : public ::testing::TestWithParam<Case> {};
INSTANTIATE_TEST_SUITE_P(Grid, JacobiCases,
                         ::testing::Values(Case{5, 1, 2}, Case{8, 3, 2},
                                           Case{16, 5, 4}, Case{24, 2, 8},
                                           Case{33, 4, 4}));

TEST_P(JacobiCases, MatchesSequentialReference) {
  const auto param = GetParam();
  JacobiOptions options;
  options.n = param.n;
  options.sweeps = param.sweeps;
  const auto result =
      run_jacobi(machine::sunwulf::mm_ensemble(param.nodes), options);
  const auto reference =
      jacobi_reference(param.n, param.sweeps, options.seed);
  ASSERT_EQ(result.grid.size(), reference.size());
  EXPECT_LT(numeric::max_abs_diff(result.grid, reference), 1e-12);
}

TEST_P(JacobiCases, ChargedFlopsEqualWorkload) {
  const auto param = GetParam();
  JacobiOptions options;
  options.n = param.n;
  options.sweeps = param.sweeps;
  options.with_data = false;
  const auto result =
      run_jacobi(machine::sunwulf::mm_ensemble(param.nodes), options);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
}

TEST(Jacobi, TimingInvariantUnderWithData) {
  JacobiOptions with;
  with.n = 20;
  with.sweeps = 4;
  with.with_data = true;
  JacobiOptions without = with;
  without.with_data = false;
  const auto a = run_jacobi(machine::sunwulf::mm_ensemble(4), with);
  const auto b = run_jacobi(machine::sunwulf::mm_ensemble(4), without);
  EXPECT_EQ(a.run.elapsed, b.run.elapsed);
}

TEST(Jacobi, SweepsScaleWorkLinearly) {
  EXPECT_DOUBLE_EQ(jacobi_workload(50, 10), 10.0 * jacobi_workload(50, 1));
}

TEST(Jacobi, TooManyRanksRejected) {
  JacobiOptions options;
  options.n = 4;  // 2 interior rows, but mm_ensemble(4) has 4 ranks
  EXPECT_THROW(run_jacobi(machine::sunwulf::mm_ensemble(4), options),
               PreconditionError);
}

TEST(Jacobi, InvalidParamsRejected) {
  JacobiOptions options;
  options.n = 2;
  EXPECT_THROW(run_jacobi(machine::sunwulf::mm_ensemble(2), options),
               PreconditionError);
  options.n = 10;
  options.sweeps = 0;
  EXPECT_THROW(run_jacobi(machine::sunwulf::mm_ensemble(2), options),
               PreconditionError);
}

TEST(Jacobi, BoundaryStaysFixed) {
  JacobiOptions options;
  options.n = 10;
  options.sweeps = 3;
  const auto result = run_jacobi(machine::sunwulf::mm_ensemble(2), options);
  const auto initial = jacobi_reference(10, 1, options.seed);  // any sweep
  // Compare boundaries against a fresh initial grid (same seed): row 0,
  // row n-1, and the first/last column never change.
  const auto w = static_cast<std::size_t>(10);
  JacobiOptions probe = options;
  probe.sweeps = 1;
  const auto one = run_jacobi(machine::sunwulf::mm_ensemble(2), probe);
  for (std::size_t c = 0; c < w; ++c) {
    EXPECT_EQ(result.grid[c], one.grid[c]);
    EXPECT_EQ(result.grid[(w - 1) * w + c], one.grid[(w - 1) * w + c]);
  }
  for (std::size_t r = 0; r < w; ++r) {
    EXPECT_EQ(result.grid[r * w], one.grid[r * w]);
    EXPECT_EQ(result.grid[r * w + w - 1], one.grid[r * w + w - 1]);
  }
  (void)initial;
}

}  // namespace
}  // namespace hetscale::algos
