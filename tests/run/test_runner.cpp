#include "hetscale/run/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hetscale/scal/combination.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scenarios/paper.hpp"

namespace hetscale::run {
namespace {

TEST(Runner, MapReturnsResultsInRequestOrder) {
  Runner runner(4);
  EXPECT_EQ(runner.jobs(), 4);
  const auto out = runner.map(
      64, [](std::size_t i) { return static_cast<std::int64_t>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::int64_t>(i * i));
  }
}

TEST(Runner, SingleJobRunsInlineOnTheCaller) {
  Runner runner(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  runner.run_indexed(8, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
    EXPECT_FALSE(Runner::on_worker_thread());
  });
  for (const auto id : seen) EXPECT_EQ(id, caller);
}

TEST(Runner, EmptyAndSingletonBatches) {
  Runner runner(4);
  int calls = 0;
  runner.run_indexed(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  runner.run_indexed(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Runner, TasksRunOnWorkerLanes) {
  Runner runner(4);
  std::atomic<int> on_worker{0};
  runner.run_indexed(16, [&](std::size_t) {
    if (Runner::on_worker_thread()) on_worker.fetch_add(1);
  });
  // Every lane (pool workers and the participating caller) counts as a
  // worker while draining.
  EXPECT_EQ(on_worker.load(), 16);
  EXPECT_FALSE(Runner::on_worker_thread());
}

TEST(Runner, ExceptionFromBatchPropagates) {
  Runner runner(4);
  EXPECT_THROW(runner.run_indexed(
                   32,
                   [](std::size_t i) {
                     if (i >= 3) throw std::runtime_error("task failed");
                   }),
               std::runtime_error);
  // The pool survives a failed batch.
  const auto out =
      runner.map(8, [](std::size_t i) { return static_cast<int>(i) + 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 36);
}

TEST(Runner, SequentialExceptionReportsFirstIndex) {
  Runner runner(1);
  try {
    runner.run_indexed(8, [](std::size_t i) {
      if (i >= 2) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 2");
  }
}

TEST(Runner, NestedBatchesRunInlineWithoutDeadlock) {
  Runner runner(4);
  const auto out = runner.map(8, [&](std::size_t i) {
    const auto inner = runner.map(4, [&](std::size_t j) {
      EXPECT_TRUE(Runner::on_worker_thread());
      return static_cast<int>(i * 10 + j);
    });
    return std::accumulate(inner.begin(), inner.end(), 0);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(40 * i + 6));
  }
}

TEST(Runner, ManyBatchesBackToBack) {
  Runner runner(3);
  std::int64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    const auto out = runner.map(
        16, [&](std::size_t i) { return static_cast<std::int64_t>(i) + 1; });
    total += std::accumulate(out.begin(), out.end(), std::int64_t{0});
  }
  EXPECT_EQ(total, 200 * 136);
}

// Forced-steal scenario, deterministic in every interleaving: with jobs=2
// and count=8 the worker's lane holds {1, 3, 5, 7} and pops 7 first (LIFO).
// Task 7 refuses to finish until 1, 3, and 5 have run — and the only lane
// that can still reach them while the worker is pinned is the caller,
// stealing FIFO from the worker's deque. So the batch cannot complete with
// fewer than three steals, whichever thread gets scheduled when.
TEST(Runner, ForcedStealsPreserveOrderedMerge) {
  Runner runner(2);
  std::atomic<int> odd_done{0};
  const auto out = runner.map(8, [&](std::size_t i) {
    if (i == 1 || i == 3 || i == 5) odd_done.fetch_add(1);
    if (i == 7) {
      while (odd_done.load() < 3) std::this_thread::yield();
    }
    return static_cast<std::int64_t>(i * i);
  });
  EXPECT_GE(runner.last_batch_steals(), 3u);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::int64_t>(i * i));
  }
}

// Same construction, but the guaranteed-stolen task (3 — the worker is
// pinned on 7 while 3 is pending, so only a caller-side steal can run it)
// throws: the failure must cross lanes and rethrow on the caller.
TEST(Runner, ExceptionFromStolenTaskPropagates) {
  Runner runner(2);
  std::atomic<int> odd_done{0};
  std::atomic<bool> threw{false};
  try {
    runner.run_indexed(8, [&](std::size_t i) {
      if (i == 1 || i == 5) odd_done.fetch_add(1);
      if (i == 3) {
        threw.store(true);
        throw std::runtime_error("stolen task 3");
      }
      if (i == 7) {
        // Also unblock on failure: once the batch has failed, the
        // remaining odd tasks are skipped and would never arrive.
        while (odd_done.load() < 2 && !threw.load()) {
          std::this_thread::yield();
        }
      }
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "stolen task 3");
  }
  // The pool survives the failed batch.
  const auto out =
      runner.map(8, [](std::size_t i) { return static_cast<int>(i) + 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 36);
}

// The engine's core guarantee: a parallel sweep of real simulations equals
// the sequential sweep exactly, field by field.
TEST(Runner, ParallelSimulationSweepMatchesSequentialExactly) {
  const std::vector<std::int64_t> sizes{50, 100, 150, 200, 250};

  auto sequential_combo = scenarios::make_ge(2);
  Runner sequential(1);
  const auto expected = sequential_combo->measure_many(sizes, sequential);

  auto parallel_combo = scenarios::make_ge(2);
  Runner parallel(8);
  const auto got = parallel_combo->measure_many(sizes, parallel);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].n, expected[i].n);
    EXPECT_EQ(got[i].seconds, expected[i].seconds);
    EXPECT_EQ(got[i].work_flops, expected[i].work_flops);
    EXPECT_EQ(got[i].speed_flops, expected[i].speed_flops);
    EXPECT_EQ(got[i].speed_efficiency, expected[i].speed_efficiency);
  }
}

// Regression: the iso-solver's parallel refinement must land on the same N
// as sequential bisection even where E_s(N) has small non-monotone wiggles
// (speculative bisection replays the exact sequential trajectory).
TEST(Runner, IsoSolveIsWorkerCountInvariant) {
  auto baseline_combo = scenarios::make_ge(2);
  const auto baseline = scal::required_problem_size(
      *baseline_combo, scenarios::kGeTargetEs, {});

  for (int jobs : {1, 2, 8}) {
    auto combo = scenarios::make_ge(2);
    Runner runner(jobs);
    scal::IsoSolveOptions options;
    options.runner = &runner;
    const auto got =
        scal::required_problem_size(*combo, scenarios::kGeTargetEs, options);
    EXPECT_EQ(got.found, baseline.found) << "jobs=" << jobs;
    EXPECT_EQ(got.n, baseline.n) << "jobs=" << jobs;
    EXPECT_EQ(got.achieved_es, baseline.achieved_es) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace hetscale::run
