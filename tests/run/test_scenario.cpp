#include "hetscale/run/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "hetscale/run/result.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/scenarios/paper.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::run {
namespace {

std::string json_of(const Value& value) {
  std::ostringstream os;
  value.write_json(os);
  return os.str();
}

TEST(Value, RendersEveryKind) {
  EXPECT_EQ(Value().kind(), Value::Kind::kNull);
  EXPECT_EQ(Value().text(), "");
  EXPECT_EQ(json_of(Value()), "null");

  EXPECT_EQ(json_of(Value(true)), "true");
  EXPECT_EQ(json_of(Value(false)), "false");
  EXPECT_EQ(Value(true).text(), "true");

  EXPECT_EQ(json_of(Value(42)), "42");
  EXPECT_EQ(json_of(Value(std::int64_t{-7})), "-7");

  EXPECT_EQ(Value::fixed(1.25, 2).text(), "1.25");
  EXPECT_EQ(json_of(Value::fixed(1.25, 2)), "1.25");
  EXPECT_EQ(Value::fixed(0.30000000001, 4).text(), "0.3000");

  EXPECT_EQ(json_of(Value("plain")), "\"plain\"");
}

TEST(Value, NonFiniteRealsBecomeNull) {
  EXPECT_EQ(json_of(Value::fixed(std::nan(""), 2)), "null");
  EXPECT_EQ(json_of(Value::real(INFINITY)), "null");
}

TEST(Value, JsonStringsAreEscaped) {
  std::ostringstream os;
  write_json_string(os, "a\"b\\c\nd\te\r\x01");
  EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"");
}

RunResult sample_result() {
  RunResult result;
  result.scenario = "demo";
  result.title = "Demo";
  result.columns = {"name", "value"};
  result.add_row({Value("plain"), Value(1)});
  result.add_row({Value("comma, quote\" and\nnewline"), Value::fixed(2.5, 1)});
  result.add_scalar("total", Value(3));
  result.text = "legacy text\n";
  return result;
}

TEST(RunResult, CsvEscapesSpecialFields) {
  EXPECT_EQ(sample_result().to_csv(),
            "name,value\n"
            "plain,1\n"
            "\"comma, quote\"\" and\nnewline\",2.5\n");
}

TEST(RunResult, JsonCarriesSchemaRowsAndScalars) {
  const std::string json = sample_result().to_json();
  EXPECT_NE(json.find("\"schema\": \"hetscale.run.result/v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"demo\""), std::string::npos);
  EXPECT_NE(json.find("[\"plain\", 1]"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 3"), std::string::npos);
}

TEST(RunResult, AddRowChecksWidth) {
  RunResult result;
  result.columns = {"a", "b"};
  EXPECT_THROW(result.add_row({Value(1)}), hetscale::Error);
}

TEST(ScenarioRegistry, RegisterFindAndReject) {
  register_scenario({"test_scenario_registry_demo", "a demo",
                     [](const RunContext&) { return RunResult{}; }});
  EXPECT_NE(find_scenario("test_scenario_registry_demo"), nullptr);
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);

  EXPECT_THROW(register_scenario({"test_scenario_registry_demo", "again",
                                  [](const RunContext&) {
                                    return RunResult{};
                                  }}),
               hetscale::Error);
  EXPECT_THROW(register_scenario(
                   {"", "", [](const RunContext&) { return RunResult{}; }}),
               hetscale::Error);
  EXPECT_THROW(register_scenario({"test_scenario_no_run", "no fn", nullptr}),
               hetscale::Error);
}

TEST(ScenarioRegistry, PaperCatalogueRegistersIdempotently) {
  scenarios::register_paper_scenarios();
  scenarios::register_paper_scenarios();
  for (const char* name :
       {"table1_marked_speed", "table2_ge_two_nodes",
        "table3_ge_required_rank", "table4_ge_scalability",
        "table5_mm_scalability", "table6_ge_predicted_rank",
        "table7_ge_predicted_scalability", "fig1_ge_speed_efficiency",
        "fig2_mm_speed_efficiency"}) {
    EXPECT_NE(find_scenario(name), nullptr) << name;
  }
}

TEST(ScenarioRegistry, ParseFormat) {
  EXPECT_EQ(parse_format("text"), OutputFormat::kText);
  EXPECT_EQ(parse_format("csv"), OutputFormat::kCsv);
  EXPECT_EQ(parse_format("json"), OutputFormat::kJson);
  EXPECT_THROW(parse_format("yaml"), hetscale::Error);
}

TEST(ScenarioRegistry, RenderSelectsTheRendering) {
  const RunResult result = sample_result();
  std::string storage;
  EXPECT_EQ(render(result, OutputFormat::kText, storage), "legacy text\n");
  EXPECT_EQ(render(result, OutputFormat::kCsv, storage), result.to_csv());
  EXPECT_EQ(render(result, OutputFormat::kJson, storage), result.to_json());
}

// Non-finite reals must degrade to JSON null through the *full* scenario
// path — registry lookup, run, render — not just in Value::write_json.
TEST(ScenarioRegistry, NonFiniteScalarsRenderAsNullThroughTheRegistry) {
  register_scenario(
      {"test_scenario_degenerate_values", "NaN/Inf handling",
       [](const RunContext&) {
         RunResult result;
         result.scenario = "test_scenario_degenerate_values";
         result.columns = {"metric", "value"};
         result.add_row({Value("ratio"), Value::real(std::nan(""))});
         result.add_scalar("nan_scalar", Value::real(std::nan("")));
         result.add_scalar("pos_overflow", Value::real(INFINITY));
         result.add_scalar("neg_overflow", Value::real(-INFINITY));
         return result;
       }});
  const Scenario* scenario = find_scenario("test_scenario_degenerate_values");
  ASSERT_NE(scenario, nullptr);
  Runner runner(1);
  const RunResult result = scenario->run({runner, OutputFormat::kJson});
  std::string storage;
  const std::string json = render(result, OutputFormat::kJson, storage);
  EXPECT_NE(json.find("[\"ratio\", null]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nan_scalar\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pos_overflow\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"neg_overflow\": null"), std::string::npos) << json;
  // Nothing a strict JSON parser would reject leaked through.
  EXPECT_EQ(json.find("nan("), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

// The PR's regression gate: a real scenario, run through the registry,
// emits byte-identical documents at jobs=1 and jobs=8 in every format.
TEST(ScenarioRegistry, ScenarioOutputIsWorkerCountInvariant) {
  scenarios::register_paper_scenarios();
  const Scenario* scenario = find_scenario("table2_ge_two_nodes");
  ASSERT_NE(scenario, nullptr);

  Runner sequential(1);
  const RunResult a = scenario->run({sequential, OutputFormat::kText});
  Runner parallel(8);
  const RunResult b = scenario->run({parallel, OutputFormat::kText});

  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_json(), b.to_json());
}

}  // namespace
}  // namespace hetscale::run
