#include "hetscale/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "hetscale/obs/report.hpp"

namespace hetscale::obs {
namespace {

RunProfile sample_run(double elapsed) {
  RunProfile run;
  run.elapsed_s = elapsed;
  run.budget.elapsed_s = elapsed;
  run.budget.compute_s = 0.5 * elapsed;
  run.budget.comm_s = 0.25 * elapsed;
  run.budget.sequential_s = 0.25 * elapsed;
  run.compute_s = elapsed;
  run.comm_s = 0.5 * elapsed;
  run.messages = 4;
  run.bytes = 1024.0;
  run.links.push_back(LinkProfile{0, 512.0, 0.1, 0.0});
  return run;
}

TEST(Profiler, AmbientScopeInstallsAndRestores) {
  EXPECT_EQ(current(), nullptr);
  {
    Profiler outer;
    ProfilerScope outer_scope(outer);
    EXPECT_EQ(current(), &outer);
    {
      Profiler inner;
      ProfilerScope inner_scope(inner);
      EXPECT_EQ(current(), &inner);
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(Profiler, ReportIsInvariantToRunInsertionOrder) {
  auto render = [](const std::vector<double>& elapsed_order) {
    Profiler profiler;
    for (double elapsed : elapsed_order) {
      profiler.add_run(sample_run(elapsed));
    }
    std::ostringstream os;
    profiler.report().to_json(os);
    return os.str();
  };
  // The Runner may finish runs in any order; exports must not care.
  EXPECT_EQ(render({3.0, 1.0, 2.0}), render({1.0, 2.0, 3.0}));
  EXPECT_EQ(render({2.0, 3.0, 1.0}), render({1.0, 2.0, 3.0}));
}

TEST(Profiler, WallStatsStayOutOfDeterministicExports) {
  Profiler profiler;
  profiler.add_run(sample_run(1.0));
  profiler.record_batch(/*jobs=*/8, /*tasks=*/3, /*wall_s=*/0.125,
                        /*worker_busy_s=*/0.5);
  EXPECT_FALSE(profiler.wall().empty());
  EXPECT_EQ(profiler.wall().jobs, 8);

  std::ostringstream without;
  profiler.report().to_json(without);
  EXPECT_EQ(without.str().find("wall"), std::string::npos);

  ReportOptions options;
  options.include_wall = true;
  std::ostringstream with;
  profiler.report(options).to_json(with);
  EXPECT_NE(with.str().find("\"wall\""), std::string::npos);

  // Prometheus never exposes wall data, asked or not.
  std::ostringstream prom;
  profiler.report(options).to_prometheus(prom);
  EXPECT_EQ(prom.str().find("wall"), std::string::npos);
}

TEST(Profiler, ReportFoldsBudgetAndTraffic) {
  Profiler profiler;
  profiler.add_run(sample_run(1.0));
  profiler.add_run(sample_run(3.0));
  const Report report = profiler.report();
  EXPECT_EQ(report.runs(), 2u);
  EXPECT_DOUBLE_EQ(report.elapsed_s(), 4.0);
  EXPECT_DOUBLE_EQ(report.budget().compute_s, 2.0);
  const Counter* messages =
      report.metrics().find_counter("hetscale_vmpi_messages_total");
  ASSERT_NE(messages, nullptr);
  EXPECT_DOUBLE_EQ(messages->value, 8.0);
  const Counter* link_bytes = report.metrics().find_counter(
      "hetscale_net_link_bytes_total", {{"node", "0"}});
  ASSERT_NE(link_bytes, nullptr);
  EXPECT_DOUBLE_EQ(link_bytes->value, 1024.0);
}

TEST(Profiler, FaultMetricsAppearOnlyWhenCharged) {
  Profiler profiler;
  profiler.add_run(sample_run(1.0));
  EXPECT_EQ(profiler.report().metrics().find_counter(
                "hetscale_fault_seconds_total", {{"cause", "rework"}}),
            nullptr);

  RunProfile faulted = sample_run(1.0);
  faulted.fault.rework_s = 0.25;
  faulted.fault.crashes = 1;
  profiler.add_run(faulted);
  const Report report = profiler.report();
  const Counter* rework = report.metrics().find_counter(
      "hetscale_fault_seconds_total", {{"cause", "rework"}});
  ASSERT_NE(rework, nullptr);
  EXPECT_DOUBLE_EQ(rework->value, 0.25);
}

}  // namespace
}  // namespace hetscale::obs
