// Synthetic span DAGs for the critical-path walker. Every test checks the
// telescoping invariant (category totals sum to elapsed) alongside the
// specific attribution it stages.
#include "hetscale/obs/critical_path.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hetscale/obs/span.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::obs {
namespace {

void expect_telescoping(const CriticalPath& path) {
  EXPECT_GE(path.compute_s, 0.0);
  EXPECT_GE(path.comm_s, 0.0);
  EXPECT_GE(path.wait_s, 0.0);
  EXPECT_GE(path.fault_s, 0.0);
  EXPECT_NEAR(path.total_s(), path.elapsed_s, 1e-9 * (1.0 + path.elapsed_s));
  // Segments must partition [0, elapsed] in order, with no gaps.
  double cursor = 0.0;
  for (const PathSegment& segment : path.segments) {
    EXPECT_DOUBLE_EQ(segment.begin, cursor);
    EXPECT_GT(segment.end, segment.begin);
    cursor = segment.end;
  }
  if (!path.segments.empty()) {
    EXPECT_NEAR(cursor, path.elapsed_s, 1e-12 * (1.0 + path.elapsed_s));
  }
}

TEST(CriticalPath, EmptyStoreIsAllWait) {
  SpanStore store;
  const CriticalPath path = critical_path(store, {}, 3.0);
  EXPECT_DOUBLE_EQ(path.wait_s, 3.0);
  EXPECT_DOUBLE_EQ(path.compute_s, 0.0);
  expect_telescoping(path);
}

TEST(CriticalPath, ZeroElapsedIsEmpty) {
  SpanStore store;
  const CriticalPath path = critical_path(store, {}, 0.0);
  EXPECT_TRUE(path.segments.empty());
  EXPECT_DOUBLE_EQ(path.total_s(), 0.0);
}

TEST(CriticalPath, SingleComputeLane) {
  SpanStore store;
  const int compute = store.intern("compute");
  store.record(0, compute, 0.0, 2.0);
  const CriticalPath path = critical_path(store, {}, 2.0);
  EXPECT_DOUBLE_EQ(path.compute_s, 2.0);
  EXPECT_DOUBLE_EQ(path.wait_s, 0.0);
  ASSERT_EQ(path.segments.size(), 1u);
  EXPECT_EQ(path.segments[0].lane, 0);
  EXPECT_EQ(path.segments[0].kind,
            static_cast<int>(PathSegmentKind::kCompute));
  expect_telescoping(path);
}

TEST(CriticalPath, GapAfterComputeIsWait) {
  SpanStore store;
  const int compute = store.intern("compute");
  store.record(0, compute, 0.0, 1.0);
  const CriticalPath path = critical_path(store, {}, 1.5);
  EXPECT_DOUBLE_EQ(path.compute_s, 1.0);
  EXPECT_DOUBLE_EQ(path.wait_s, 0.5);
  expect_telescoping(path);
}

TEST(CriticalPath, RecvHopsToTheSendingLane) {
  // Rank 1: compute [0, 0.2], recv.wait [0.2, 1.0], compute [1.0, 1.4].
  // Rank 0: compute [0, 0.9], message departs 0.9, arrives 1.0.
  // The path must run 1.4 <- 1.0 (compute on 1), hop the wire back to 0.9
  // as comm, then cover [0, 0.9] with rank 0's compute.
  SpanStore store;
  const int compute = store.intern("compute");
  const int recv = store.intern("recv.wait");
  store.record(1, compute, 0.0, 0.2);
  store.record(1, recv, 0.2, 1.0, /*peer=*/0, /*tag=*/7);
  store.record(1, compute, 1.0, 1.4);
  store.record(0, compute, 0.0, 0.9);
  const std::vector<PathMessage> messages = {
      PathMessage{0, 1, 7, 64.0, 0.9, 1.0}};
  const CriticalPath path = critical_path(store, messages, 1.4);
  EXPECT_NEAR(path.compute_s, 0.9 + 0.4, 1e-12);
  EXPECT_NEAR(path.comm_s, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(path.wait_s, 0.0);
  // The comm hop must name the sending rank as peer.
  bool saw_hop = false;
  for (const PathSegment& segment : path.segments) {
    if (segment.kind == static_cast<int>(PathSegmentKind::kComm)) {
      EXPECT_EQ(segment.peer, 0);
      EXPECT_EQ(segment.lane, 1);
      saw_hop = true;
    }
  }
  EXPECT_TRUE(saw_hop);
  expect_telescoping(path);
}

TEST(CriticalPath, EarlyMessageMakesRecvPureWait) {
  // The payload arrived before the receive was posted, so the wire never
  // gated the receiver: blocking is attributed as wait, not comm.
  SpanStore store;
  const int compute = store.intern("compute");
  const int recv = store.intern("recv.wait");
  store.record(1, compute, 0.0, 0.2);
  store.record(1, recv, 0.2, 0.5, /*peer=*/0, /*tag=*/3);
  store.record(1, compute, 0.5, 1.0);
  store.record(0, compute, 0.0, 0.05);
  const std::vector<PathMessage> messages = {
      PathMessage{0, 1, 3, 8.0, 0.05, 0.1}};
  const CriticalPath path = critical_path(store, messages, 1.0);
  EXPECT_DOUBLE_EQ(path.compute_s, 0.7);
  EXPECT_DOUBLE_EQ(path.comm_s, 0.0);
  EXPECT_DOUBLE_EQ(path.wait_s, 0.3);
  expect_telescoping(path);
}

TEST(CriticalPath, FaultSpansAreCharged) {
  SpanStore store;
  const int compute = store.intern("compute");
  const int rework = store.intern("fault.rework");
  store.record(0, compute, 0.0, 1.0);
  store.record(0, rework, 1.0, 1.6);
  store.record(0, compute, 1.6, 2.0);
  const CriticalPath path = critical_path(store, {}, 2.0);
  EXPECT_NEAR(path.compute_s, 1.4, 1e-12);
  EXPECT_NEAR(path.fault_s, 0.6, 1e-12);
  expect_telescoping(path);
}

TEST(CriticalPath, BarrierSpansAreStructural) {
  // A barrier span covers its constituent leaf spans; the walker must see
  // through it to the nested recv.wait rather than double-charge.
  SpanStore store;
  const int barrier = store.intern("barrier");
  const int compute = store.intern("compute");
  store.record(0, barrier, 0.0, 2.0);
  store.record(0, compute, 0.5, 2.0);
  const CriticalPath path = critical_path(store, {}, 2.0);
  EXPECT_DOUBLE_EQ(path.compute_s, 1.5);
  EXPECT_DOUBLE_EQ(path.wait_s, 0.5);
  expect_telescoping(path);
}

TEST(CriticalPath, StartsFromTheLatestFinishingLane) {
  SpanStore store;
  const int compute = store.intern("compute");
  store.record(0, compute, 0.0, 1.0);
  store.record(1, compute, 0.0, 4.0);
  const CriticalPath path = critical_path(store, {}, 4.0);
  ASSERT_FALSE(path.segments.empty());
  EXPECT_EQ(path.segments.back().lane, 1);
  EXPECT_DOUBLE_EQ(path.compute_s, 4.0);
  expect_telescoping(path);
}

TEST(CriticalPath, SendChainTerminates) {
  // Two ranks ping-ponging: the walk alternates lanes and must terminate
  // within its step backstop while still telescoping.
  SpanStore store;
  const int compute = store.intern("compute");
  const int recv = store.intern("recv.wait");
  std::vector<PathMessage> messages;
  double t = 0.0;
  for (int round = 0; round < 8; ++round) {
    const int src = round % 2;
    const int dst = 1 - src;
    store.record(src, compute, t, t + 0.1);
    store.record(dst, recv, t, t + 0.2, /*peer=*/src, /*tag=*/1);
    messages.push_back(PathMessage{src, dst, 1, 8.0, t + 0.1, t + 0.2});
    t += 0.2;
  }
  const CriticalPath path = critical_path(store, messages, t);
  expect_telescoping(path);
  EXPECT_NEAR(path.compute_s, 0.8, 1e-12);
  EXPECT_NEAR(path.comm_s, 0.8, 1e-12);
}

TEST(CriticalPath, NegativeElapsedRejected) {
  SpanStore store;
  EXPECT_THROW(critical_path(store, {}, -1.0), PreconditionError);
}

TEST(CriticalPath, SegmentKindNames) {
  EXPECT_STREQ(path_segment_kind_name(PathSegmentKind::kCompute), "compute");
  EXPECT_STREQ(path_segment_kind_name(PathSegmentKind::kComm), "comm");
  EXPECT_STREQ(path_segment_kind_name(PathSegmentKind::kWait), "wait");
  EXPECT_STREQ(path_segment_kind_name(PathSegmentKind::kFault), "fault");
}

}  // namespace
}  // namespace hetscale::obs
