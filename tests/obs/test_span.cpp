#include "hetscale/obs/span.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"

namespace hetscale::obs {
namespace {

TEST(Span, InternInfersTaxonomyCategories) {
  SpanStore store;
  EXPECT_EQ(store.category(store.intern("compute")), SpanCategory::kCompute);
  EXPECT_EQ(store.category(store.intern("send.wait")), SpanCategory::kComm);
  EXPECT_EQ(store.category(store.intern("recv.wait")), SpanCategory::kComm);
  EXPECT_EQ(store.category(store.intern("barrier")), SpanCategory::kComm);
  EXPECT_EQ(store.category(store.intern("checkpoint")), SpanCategory::kFault);
  EXPECT_EQ(store.category(store.intern("fault.rework")),
            SpanCategory::kFault);
  EXPECT_EQ(store.category(store.intern("mystery")), SpanCategory::kOther);
}

TEST(Span, InternIsIdempotent) {
  SpanStore store;
  const int a = store.intern("compute");
  EXPECT_EQ(store.intern("compute"), a);
  EXPECT_EQ(store.name(a), "compute");
}

TEST(Span, RecordKeepsOrderAndPayload) {
  SpanStore store;
  const int send = store.intern("send.wait");
  store.record(/*lane=*/1, send, 0.5, 2.0, /*peer=*/0, /*tag=*/7,
               /*bytes=*/64.0);
  ASSERT_EQ(store.spans().size(), 1u);
  const Span& span = store.spans().front();
  EXPECT_EQ(span.lane, 1);
  EXPECT_DOUBLE_EQ(span.begin, 0.5);
  EXPECT_DOUBLE_EQ(span.end, 2.0);
  EXPECT_EQ(span.peer, 0);
  EXPECT_EQ(span.tag, 7);
  EXPECT_DOUBLE_EQ(span.bytes, 64.0);
  EXPECT_EQ(span.depth, 0);
}

TEST(Span, RecordRejectsNegativeDuration) {
  SpanStore store;
  const int id = store.intern("compute");
  EXPECT_THROW(store.record(0, id, 2.0, 1.0), PreconditionError);
}

TEST(Span, OpenCloseNestsDepthPerLane) {
  SpanStore store;
  const int barrier = store.intern("barrier");
  const int send = store.intern("send.wait");

  const std::size_t outer = store.open(/*lane=*/0, barrier, 1.0);
  EXPECT_EQ(store.open_count(), 1u);
  store.record(/*lane=*/0, send, 1.0, 2.0);   // nested in the barrier
  store.record(/*lane=*/3, send, 1.0, 2.0);   // other lane: no nesting
  store.close(outer, 3.0);
  EXPECT_EQ(store.open_count(), 0u);

  ASSERT_EQ(store.spans().size(), 3u);
  EXPECT_EQ(store.spans()[1].depth, 1);  // lane 0, inside the barrier
  EXPECT_EQ(store.spans()[2].depth, 0);  // lane 3
  EXPECT_EQ(store.spans()[0].depth, 0);  // the barrier itself
  EXPECT_DOUBLE_EQ(store.spans()[0].end, 3.0);
}

TEST(Span, UnclosedSpanIsMarkedAndCountable) {
  SpanStore store;
  const int barrier = store.intern("barrier");
  store.open(0, barrier, 5.0);
  EXPECT_EQ(store.open_count(), 1u);
  ASSERT_EQ(store.spans().size(), 1u);
  EXPECT_LT(store.spans().front().end, store.spans().front().begin);
}

TEST(Span, CloseIgnoresNoSpanHandle) {
  SpanStore store;
  store.close(kNoSpan, 1.0);  // must be a no-op, not a crash
  EXPECT_TRUE(store.empty());
}

TEST(Span, DoubleCloseThrows) {
  SpanStore store;
  const std::size_t handle = store.open(0, store.intern("barrier"), 0.0);
  store.close(handle, 1.0);
  EXPECT_THROW(store.close(handle, 2.0), PreconditionError);
}

TEST(Span, ScopedSpanUsesBoundClock) {
  SpanStore store;
  double now = 10.0;
  store.bind_clock([&now] { return now; });
  {
    ScopedSpan span(store, /*lane=*/2, store.intern("compute"));
    now = 12.5;
  }
  ASSERT_EQ(store.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(store.spans().front().begin, 10.0);
  EXPECT_DOUBLE_EQ(store.spans().front().end, 12.5);
  EXPECT_EQ(store.open_count(), 0u);
}

}  // namespace
}  // namespace hetscale::obs
