#include "hetscale/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "hetscale/obs/format.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::obs {
namespace {

TEST(Metrics, CounterAccumulatesAndRejectsNegative) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("events_total");
  counter.add(2.0);
  counter.inc();
  EXPECT_DOUBLE_EQ(counter.value, 3.0);
  EXPECT_THROW(counter.add(-1.0), PreconditionError);
}

TEST(Metrics, GaugeSetMaxTracksHighWaterMark) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("queue_depth");
  gauge.set_max(3.0);
  gauge.set_max(1.0);
  EXPECT_DOUBLE_EQ(gauge.value, 3.0);
  gauge.set(0.5);
  EXPECT_DOUBLE_EQ(gauge.value, 0.5);
}

TEST(Metrics, LabelSetsKeyDistinctInstruments) {
  MetricsRegistry registry;
  registry.counter("bytes_total", {{"node", "0"}}).add(10.0);
  registry.counter("bytes_total", {{"node", "1"}}).add(20.0);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_DOUBLE_EQ(registry.find_counter("bytes_total", {{"node", "0"}})->value,
                   10.0);
  EXPECT_DOUBLE_EQ(registry.find_counter("bytes_total", {{"node", "1"}})->value,
                   20.0);
}

TEST(Metrics, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  registry.counter("x_total", {{"a", "1"}, {"b", "2"}}).add(1.0);
  // Same logical instrument, labels listed in the other order.
  registry.counter("x_total", {{"b", "2"}, {"a", "1"}}).add(1.0);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_DOUBLE_EQ(
      registry.find_counter("x_total", {{"b", "2"}, {"a", "1"}})->value, 2.0);
}

TEST(Metrics, DuplicateLabelKeyThrows) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("x_total", {{"a", "1"}, {"a", "2"}}),
               PreconditionError);
}

TEST(Metrics, TypeClashThrows) {
  MetricsRegistry registry;
  registry.counter("mixed");
  EXPECT_THROW(registry.gauge("mixed"), PreconditionError);
  EXPECT_THROW(registry.histogram("mixed", {1.0}), PreconditionError);
}

TEST(Metrics, InvalidNameThrows) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), PreconditionError);
  EXPECT_THROW(registry.counter("9starts_with_digit"), PreconditionError);
  EXPECT_THROW(registry.counter("has space"), PreconditionError);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusive) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 10.0});
  h.observe(1.0);   // le="1" (boundary is inclusive)
  h.observe(1.5);   // le="10"
  h.observe(10.0);  // le="10"
  h.observe(11.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 23.5);
}

TEST(Metrics, HistogramBoundsClashThrows) {
  MetricsRegistry registry;
  registry.histogram("lat", {1.0, 10.0});
  EXPECT_THROW(registry.histogram("lat", {1.0, 5.0}), PreconditionError);
  // Same bounds find the same instrument.
  registry.histogram("lat", {1.0, 10.0}).observe(0.5);
  EXPECT_EQ(registry.find_histogram("lat")->count(), 1u);
}

TEST(Metrics, ExportOrderIsIndependentOfRegistrationOrder) {
  auto render = [](const std::vector<std::string>& order) {
    MetricsRegistry registry;
    for (const auto& node : order) {
      registry.counter("bytes_total", {{"node", node}}).add(1.0);
    }
    registry.gauge("depth").set(2.0);
    std::ostringstream os;
    registry.write_prometheus(os);
    std::ostringstream js;
    registry.write_json(js);
    return os.str() + js.str();
  };
  EXPECT_EQ(render({"2", "0", "1"}), render({"0", "1", "2"}));
}

TEST(Metrics, PrometheusHistogramIsCumulativeWithInf) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat_seconds", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  std::ostringstream os;
  registry.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3"), std::string::npos);
}

TEST(Metrics, PromEscapeIsExpositionFormatCompliant) {
  // The Prometheus text format defines exactly three label-value escapes:
  // backslash, double quote, and newline. Everything else passes through.
  EXPECT_EQ(prom_escape("plain"), "plain");
  EXPECT_EQ(prom_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prom_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(prom_escape("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(prom_escape("tabs\tand {braces}"), "tabs\tand {braces}");
  EXPECT_EQ(prom_escape(""), "");
}

TEST(Metrics, PrometheusLabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("c", {{"path", "a\\b"}, {"quote", "x\"y\nz"}}).inc();
  std::ostringstream os;
  registry.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(text.find("quote=\"x\\\"y\\nz\""), std::string::npos);
  // The exposition document must stay one-record-per-line: the raw newline
  // from the label value may not survive into the output.
  EXPECT_EQ(text.find("y\nz"), std::string::npos);
}

TEST(Metrics, JsonRendersNonFiniteAsNull) {
  MetricsRegistry registry;
  registry.gauge("g").set(std::nan(""));
  std::ostringstream os;
  registry.write_json(os);
  EXPECT_NE(os.str().find("null"), std::string::npos);
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
}

}  // namespace
}  // namespace hetscale::obs
