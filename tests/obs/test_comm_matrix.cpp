#include "hetscale/obs/comm_matrix.hpp"

#include <gtest/gtest.h>

namespace hetscale::obs {
namespace {

TEST(CommMatrix, StartsEmpty) {
  CommMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.cell_count(), 0u);
  EXPECT_EQ(m.total_messages(), 0u);
  EXPECT_DOUBLE_EQ(m.total_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_wait_s(), 0.0);
  EXPECT_TRUE(m.cells().empty());
}

TEST(CommMatrix, SendsAccumulateIntoOneCell) {
  CommMatrix m;
  m.record_send(0, 1, CommPhase::kP2p, 100.0);
  m.record_send(0, 1, CommPhase::kP2p, 150.0);
  ASSERT_EQ(m.cell_count(), 1u);
  const CommCell cell = m.cells().front();
  EXPECT_EQ(cell.src, 0);
  EXPECT_EQ(cell.dst, 1);
  EXPECT_EQ(cell.phase, static_cast<int>(CommPhase::kP2p));
  EXPECT_EQ(cell.messages, 2u);
  EXPECT_DOUBLE_EQ(cell.bytes, 250.0);
  EXPECT_DOUBLE_EQ(cell.wait_s, 0.0);
}

TEST(CommMatrix, PhasesSplitCells) {
  CommMatrix m;
  m.record_send(0, 1, CommPhase::kP2p, 8.0);
  m.record_send(0, 1, CommPhase::kBcast, 8.0);
  EXPECT_EQ(m.cell_count(), 2u);
  EXPECT_EQ(m.total_messages(), 2u);
  EXPECT_DOUBLE_EQ(m.total_bytes(), 16.0);
}

TEST(CommMatrix, WaitChargesWithoutCountingMessages) {
  CommMatrix m;
  m.record_wait(2, 0, CommPhase::kBarrier, 0.25);
  ASSERT_EQ(m.cell_count(), 1u);
  const CommCell cell = m.cells().front();
  EXPECT_EQ(cell.src, 2);
  EXPECT_EQ(cell.dst, 0);
  EXPECT_EQ(cell.messages, 0u);
  EXPECT_DOUBLE_EQ(cell.bytes, 0.0);
  EXPECT_DOUBLE_EQ(cell.wait_s, 0.25);
  EXPECT_DOUBLE_EQ(m.total_wait_s(), 0.25);
}

TEST(CommMatrix, CellsAreCanonicallyOrdered) {
  // Record deliberately out of order; cells() must come back sorted by
  // (src, dst, phase) regardless.
  CommMatrix m;
  m.record_send(1, 0, CommPhase::kP2p, 1.0);
  m.record_send(0, 2, CommPhase::kBcast, 1.0);
  m.record_send(0, 1, CommPhase::kP2p, 1.0);
  m.record_send(0, 1, CommPhase::kBcast, 1.0);
  const auto cells = m.cells();
  ASSERT_EQ(cells.size(), 4u);
  for (std::size_t i = 1; i < cells.size(); ++i) {
    EXPECT_LT(std::tie(cells[i - 1].src, cells[i - 1].dst,
                       cells[i - 1].phase),
              std::tie(cells[i].src, cells[i].dst, cells[i].phase));
  }
}

TEST(CommMatrix, MergeSumsCellwise) {
  CommMatrix a;
  a.record_send(0, 1, CommPhase::kP2p, 10.0);
  a.record_wait(0, 1, CommPhase::kP2p, 0.5);
  CommMatrix b;
  b.record_send(0, 1, CommPhase::kP2p, 30.0);
  b.record_send(1, 0, CommPhase::kGather, 5.0);
  a += b;
  ASSERT_EQ(a.cell_count(), 2u);
  const auto cells = a.cells();
  EXPECT_EQ(cells[0].messages, 2u);
  EXPECT_DOUBLE_EQ(cells[0].bytes, 40.0);
  EXPECT_DOUBLE_EQ(cells[0].wait_s, 0.5);
  EXPECT_EQ(cells[1].src, 1);
  EXPECT_EQ(cells[1].messages, 1u);
}

TEST(CommMatrix, PhaseNamesAreStable) {
  EXPECT_EQ(comm_phase_name(CommPhase::kP2p), "p2p");
  EXPECT_EQ(comm_phase_name(CommPhase::kBcast), "bcast");
  EXPECT_EQ(comm_phase_name(CommPhase::kBcastScatter), "bcast.scatter");
  EXPECT_EQ(comm_phase_name(CommPhase::kBcastRing), "bcast.ring");
  EXPECT_EQ(comm_phase_name(CommPhase::kBarrier), "barrier");
  EXPECT_EQ(comm_phase_name(CommPhase::kGather), "gather");
  EXPECT_EQ(comm_phase_name(CommPhase::kScatter), "scatter");
  EXPECT_EQ(comm_phase_name(CommPhase::kAllgather), "allgather");
  EXPECT_EQ(comm_phase_name(CommPhase::kAlltoall), "alltoall");
  EXPECT_EQ(comm_phase_name(CommPhase::kGroupBcast), "group.bcast");
  EXPECT_EQ(comm_phase_name(CommPhase::kGroupGather), "group.gather");
}

}  // namespace
}  // namespace hetscale::obs
