#include "hetscale/obs/budget.hpp"

#include <gtest/gtest.h>

#include "hetscale/obs/span.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::obs {
namespace {

// All fixtures use dyadic span bounds, so segment sums are exact and the
// partition identity holds bit for bit (EXPECT_EQ, not EXPECT_NEAR).

TEST(Budget, EmptyStoreIsAllResidual) {
  SpanStore store;
  const TimeBudget budget = compute_time_budget(store, 4.0);
  EXPECT_EQ(budget.residual_s, 4.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, TwoLanesComputingIsParallelCompute) {
  SpanStore store;
  const int compute = store.intern("compute");
  store.record(0, compute, 0.0, 2.0);
  store.record(1, compute, 0.0, 2.0);
  const TimeBudget budget = compute_time_budget(store, 2.0);
  EXPECT_EQ(budget.compute_s, 2.0);
  EXPECT_EQ(budget.sequential_s, 0.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, SingleComputingLaneIsSequential) {
  // Lane 0 computes alone over [0, 1), both lanes over [1, 2), idle tail.
  SpanStore store;
  const int compute = store.intern("compute");
  store.record(0, compute, 0.0, 2.0);
  store.record(1, compute, 1.0, 2.0);
  const TimeBudget budget = compute_time_budget(store, 2.5);
  EXPECT_EQ(budget.sequential_s, 1.0);
  EXPECT_EQ(budget.compute_s, 1.0);
  EXPECT_EQ(budget.residual_s, 0.5);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
  EXPECT_EQ(budget.measured_t0(), 1.0);
  EXPECT_EQ(budget.measured_to(), 0.5);
}

TEST(Budget, CommOnlyCountsWhenNobodyComputes) {
  // Lane 0 computes through [0, 2]; lane 1 waits in comm the whole time,
  // then both are in comm over [2, 3].
  SpanStore store;
  const int compute = store.intern("compute");
  const int send = store.intern("send.wait");
  store.record(0, compute, 0.0, 2.0);
  store.record(1, send, 0.0, 3.0);
  store.record(0, send, 2.0, 3.0);
  const TimeBudget budget = compute_time_budget(store, 3.0);
  EXPECT_EQ(budget.sequential_s, 2.0);  // one lane computing dominates
  EXPECT_EQ(budget.comm_s, 1.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, FaultOutranksCommAndYieldsToCompute) {
  SpanStore store;
  const int compute = store.intern("compute");
  const int rework = store.intern("fault.rework");
  const int send = store.intern("send.wait");
  // [0, 1): lane 0 rework + lane 1 comm -> fault (no one computes).
  // [1, 2): lanes 0+1 compute while lane 0 still inside rework: the
  //         lane's own priority is fault, so only lane 1 computes ->
  //         sequential.
  store.record(0, rework, 0.0, 2.0);
  store.record(1, send, 0.0, 1.0);
  store.record(0, compute, 1.0, 2.0);
  store.record(1, compute, 1.0, 2.0);
  const TimeBudget budget = compute_time_budget(store, 2.0);
  EXPECT_EQ(budget.fault_s, 1.0);
  EXPECT_EQ(budget.sequential_s, 1.0);
  EXPECT_EQ(budget.comm_s, 0.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, SpansClampToElapsedAndOpenSpansAreSkipped) {
  SpanStore store;
  const int compute = store.intern("compute");
  const int barrier = store.intern("barrier");
  store.record(0, compute, -1.0, 10.0);  // clipped to [0, 2]
  store.record(1, compute, 0.0, 10.0);   // clipped to [0, 2]
  store.open(0, barrier, 0.0);           // never closed: ignored
  const TimeBudget budget = compute_time_budget(store, 2.0);
  EXPECT_EQ(budget.compute_s, 2.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, OtherCategorySpansAreInvisible) {
  SpanStore store;
  store.record(0, store.intern("mystery"), 0.0, 2.0);
  const TimeBudget budget = compute_time_budget(store, 2.0);
  EXPECT_EQ(budget.residual_s, 2.0);
}

TEST(Budget, FullyOverlappingSpansOnOneLaneCountOnce) {
  // Nested / duplicated compute spans on one lane must not double-charge:
  // the sweep classifies instants by lane state, not by span count.
  SpanStore store;
  const int compute = store.intern("compute");
  store.record(0, compute, 0.0, 2.0);
  store.record(0, compute, 0.0, 2.0);  // exact duplicate
  store.record(0, compute, 0.5, 1.5);  // fully contained
  const TimeBudget budget = compute_time_budget(store, 2.0);
  EXPECT_EQ(budget.sequential_s, 2.0);
  EXPECT_EQ(budget.compute_s, 0.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, FullyOverlappingSpansAcrossLanesAreParallel) {
  SpanStore store;
  const int compute = store.intern("compute");
  store.record(0, compute, 0.5, 1.5);
  store.record(1, compute, 0.5, 1.5);  // identical interval, other lane
  const TimeBudget budget = compute_time_budget(store, 2.0);
  EXPECT_EQ(budget.compute_s, 1.0);
  EXPECT_EQ(budget.residual_s, 1.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, ZeroWidthSpansAtBoundariesContributeNothing) {
  // Zero-width spans sit exactly on segment boundaries (0, an interior
  // breakpoint, and elapsed); none may contribute time or disturb the
  // partition around them.
  SpanStore store;
  const int compute = store.intern("compute");
  const int send = store.intern("send.wait");
  store.record(0, compute, 0.0, 0.0);  // at the run start
  store.record(0, compute, 0.0, 1.0);
  store.record(0, send, 1.0, 1.0);  // at an interior breakpoint
  store.record(1, send, 1.0, 2.0);
  store.record(1, compute, 2.0, 2.0);  // at the run end
  const TimeBudget budget = compute_time_budget(store, 2.0);
  EXPECT_EQ(budget.sequential_s, 1.0);
  EXPECT_EQ(budget.comm_s, 1.0);
  EXPECT_EQ(budget.compute_s, 0.0);
  EXPECT_EQ(budget.residual_s, 0.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, OnlyZeroWidthSpansIsAllResidual) {
  SpanStore store;
  const int compute = store.intern("compute");
  store.record(0, compute, 1.0, 1.0);
  const TimeBudget budget = compute_time_budget(store, 2.0);
  EXPECT_EQ(budget.residual_s, 2.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, SpansPastTheRunEndAreClipped) {
  // A span that begins before but ends after `elapsed` counts only its
  // in-range part; one that begins at or after `elapsed` contributes
  // nothing at all.
  SpanStore store;
  const int compute = store.intern("compute");
  const int send = store.intern("send.wait");
  store.record(0, compute, 1.0, 5.0);  // clipped to [1, 2]
  store.record(1, send, 2.0, 9.0);     // entirely past the end
  const TimeBudget budget = compute_time_budget(store, 2.0);
  EXPECT_EQ(budget.sequential_s, 1.0);
  EXPECT_EQ(budget.comm_s, 0.0);
  EXPECT_EQ(budget.residual_s, 1.0);
  EXPECT_EQ(budget.total(), budget.elapsed_s);
}

TEST(Budget, AccumulationAddsElementwise) {
  TimeBudget a;
  a.compute_s = 1.0;
  a.elapsed_s = 2.0;
  a.residual_s = 1.0;
  TimeBudget b;
  b.comm_s = 0.5;
  b.elapsed_s = 0.5;
  a += b;
  EXPECT_EQ(a.compute_s, 1.0);
  EXPECT_EQ(a.comm_s, 0.5);
  EXPECT_EQ(a.elapsed_s, 2.5);
  EXPECT_EQ(a.total(), a.elapsed_s);
}

TEST(Budget, NegativeElapsedThrows) {
  SpanStore store;
  EXPECT_THROW(compute_time_budget(store, -1.0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::obs
