#include "hetscale/obs/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "hetscale/obs/profiler.hpp"

namespace hetscale::obs {
namespace {

RunProfile make_run(double elapsed, double wait_ab, double bytes_ba) {
  RunProfile run;
  run.elapsed_s = elapsed;
  run.critical_path =
      CriticalPathSummary{0.5 * elapsed, 0.3 * elapsed, 0.2 * elapsed, 0.0};
  run.comm_cells.push_back(CommCell{0, 1, static_cast<int>(CommPhase::kP2p),
                                    3, 24.0, wait_ab});
  run.comm_cells.push_back(CommCell{
      1, 0, static_cast<int>(CommPhase::kBcast), 1, bytes_ba, 0.0});
  run.des_queue.pushes = 10;
  run.des_queue.pops = 10;
  run.des_queue.far_inserts = 2;
  run.des_queue.rebuilds = 1;
  run.des_queue.occupancy.push_back(DesQueueStats::Sample{0.5, 7});
  return run;
}

TEST(Analysis, FoldsRunsIntoTotals) {
  Profiler profiler;
  profiler.add_run(make_run(1.0, 0.25, 100.0));
  profiler.add_run(make_run(2.0, 0.75, 300.0));
  const Analysis analysis(profiler, AnalysisOptions{"test", 10});
  EXPECT_EQ(analysis.runs(), 2u);
  EXPECT_DOUBLE_EQ(analysis.elapsed_s(), 3.0);
  EXPECT_DOUBLE_EQ(analysis.critical_path().compute_s, 1.5);
  EXPECT_DOUBLE_EQ(analysis.critical_path().total_s(), 3.0);
  // Cells with one key merge; distinct keys stay separate.
  ASSERT_EQ(analysis.comm_cells().size(), 2u);
  EXPECT_EQ(analysis.comm_cells()[0].messages, 6u);
  EXPECT_DOUBLE_EQ(analysis.comm_cells()[0].wait_s, 1.0);
  EXPECT_DOUBLE_EQ(analysis.comm_cells()[1].bytes, 400.0);
  EXPECT_EQ(analysis.des_queue().pushes, 20u);
  EXPECT_EQ(analysis.occupancy_peak(), 7u);
}

TEST(Analysis, HotspotsRankByMetricWithShares) {
  Profiler profiler;
  profiler.add_run(make_run(1.0, 0.75, 1000.0));
  const Analysis analysis(profiler, AnalysisOptions{"test", 10});
  // Wait ranking: the (0, 1, p2p) cell holds all the wait.
  ASSERT_EQ(analysis.top_wait().size(), 2u);
  EXPECT_EQ(analysis.top_wait()[0].cell.src, 0);
  EXPECT_DOUBLE_EQ(analysis.top_wait()[0].share, 1.0);
  EXPECT_DOUBLE_EQ(analysis.top_wait()[1].share, 0.0);
  // Byte ranking: the bcast cell dominates 1000 of 1024 bytes.
  EXPECT_EQ(analysis.top_bytes()[0].cell.src, 1);
  EXPECT_NEAR(analysis.top_bytes()[0].share, 1000.0 / 1024.0, 1e-12);
}

TEST(Analysis, TopTruncatesDeterministically) {
  Profiler profiler;
  RunProfile run;
  run.elapsed_s = 1.0;
  for (int src = 0; src < 4; ++src) {
    run.comm_cells.push_back(CommCell{
        src, (src + 1) % 4, 0, 1, 8.0, /*wait_s=*/0.0});
  }
  profiler.add_run(run);
  const Analysis analysis(profiler, AnalysisOptions{"test", 2});
  // All cells tie at zero wait: the ranking falls back to key order and
  // truncates to --top.
  ASSERT_EQ(analysis.top_wait().size(), 2u);
  EXPECT_EQ(analysis.top_wait()[0].cell.src, 0);
  EXPECT_EQ(analysis.top_wait()[1].cell.src, 1);
  EXPECT_DOUBLE_EQ(analysis.top_wait()[0].share, 0.0);
}

TEST(Analysis, JsonIsIndependentOfRunOrder) {
  Profiler a;
  a.add_run(make_run(1.0, 0.25, 100.0));
  a.add_run(make_run(2.0, 0.75, 300.0));
  Profiler b;
  b.add_run(make_run(2.0, 0.75, 300.0));
  b.add_run(make_run(1.0, 0.25, 100.0));
  std::ostringstream ja;
  std::ostringstream jb;
  Analysis(a, AnalysisOptions{"same", 10}).to_json(ja);
  Analysis(b, AnalysisOptions{"same", 10}).to_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_NE(ja.str().find("\"schema\": \"hetscale.obs.analysis/v1\""),
            std::string::npos);
}

TEST(Analysis, CsvListsMergedCells) {
  Profiler profiler;
  profiler.add_run(make_run(1.0, 0.25, 100.0));
  std::ostringstream csv;
  Analysis(profiler, AnalysisOptions{"test", 10}).to_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("src,dst,phase,messages,bytes,wait_s"),
            std::string::npos);
  EXPECT_NE(text.find("0,1,p2p,3,24,0.25"), std::string::npos);
  EXPECT_NE(text.find("1,0,bcast,1,100,0"), std::string::npos);
}

TEST(Analysis, TextHasPathAndHotspotTables) {
  Profiler profiler;
  profiler.add_run(make_run(1.0, 0.25, 100.0));
  const std::string text =
      Analysis(profiler, AnalysisOptions{"test", 10}).to_text();
  EXPECT_NE(text.find("Critical path"), std::string::npos);
  EXPECT_NE(text.find("Comm hotspots"), std::string::npos);
  EXPECT_NE(text.find("Event queue telemetry"), std::string::npos);
}

TEST(Analysis, EmptyProfilerStaysWellFormed) {
  Profiler profiler;
  const Analysis analysis(profiler, AnalysisOptions{"empty", 5});
  EXPECT_EQ(analysis.runs(), 0u);
  EXPECT_TRUE(analysis.comm_cells().empty());
  std::ostringstream json;
  analysis.to_json(json);
  EXPECT_NE(json.str().find("\"cells\": 0"), std::string::npos);
  EXPECT_NE(json.str().find("\"top_wait\": []"), std::string::npos);
}

}  // namespace
}  // namespace hetscale::obs
