#include "hetscale/machine/parse.hpp"

#include <gtest/gtest.h>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::machine {
namespace {

TEST(ParseCluster, SingleNode) {
  const auto cluster = parse_cluster("sunblade");
  ASSERT_EQ(cluster.node_count(), 1u);
  EXPECT_EQ(cluster.nodes()[0].spec.model, "SunBlade");
  EXPECT_EQ(cluster.processor_count(), 1);
}

TEST(ParseCluster, CountsAndCpus) {
  const auto cluster = parse_cluster("server:2,sunbladex3");
  ASSERT_EQ(cluster.node_count(), 4u);
  EXPECT_EQ(cluster.nodes()[0].spec.model, "SunFire server");
  EXPECT_EQ(cluster.nodes()[0].cpus_used, 2);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(cluster.nodes()[i].spec.model, "SunBlade");
  }
  EXPECT_EQ(cluster.processor_count(), 5);
}

TEST(ParseCluster, CountWithCpuOverride) {
  const auto cluster = parse_cluster("v210x4:1");
  ASSERT_EQ(cluster.node_count(), 4u);
  for (const auto& node : cluster.nodes()) {
    EXPECT_EQ(node.spec.model, "SunFire V210");
    EXPECT_EQ(node.cpus_used, 1);
  }
}

TEST(ParseCluster, DefaultsUseAllCpus) {
  const auto cluster = parse_cluster("v210");
  EXPECT_EQ(cluster.processor_count(), 2);  // V210 has 2 CPUs
}

TEST(ParseCluster, SpacesTolerated) {
  const auto cluster = parse_cluster(" server:1 , sunblade ");
  EXPECT_EQ(cluster.node_count(), 2u);
}

TEST(ParseCluster, MatchesHandBuiltEquivalent) {
  const auto parsed = parse_cluster("server:2,sunbladex3");
  const auto built = sunwulf::ge_ensemble(4);
  EXPECT_EQ(parsed.processor_count(), built.processor_count());
  EXPECT_DOUBLE_EQ(parsed.aggregate_rate_flops(),
                   built.aggregate_rate_flops());
}

TEST(ParseCluster, UniqueNodeNames) {
  const auto cluster = parse_cluster("sunbladex3");
  EXPECT_NE(cluster.nodes()[0].name, cluster.nodes()[1].name);
  EXPECT_NE(cluster.nodes()[1].name, cluster.nodes()[2].name);
}

TEST(ParseCluster, RejectsGarbage) {
  EXPECT_THROW(parse_cluster(""), PreconditionError);
  EXPECT_THROW(parse_cluster("cray"), PreconditionError);
  EXPECT_THROW(parse_cluster("sunblade:0"), PreconditionError);
  EXPECT_THROW(parse_cluster("sunblade:abc"), PreconditionError);
  EXPECT_THROW(parse_cluster("server:5"), PreconditionError);  // only 4 CPUs
}

}  // namespace
}  // namespace hetscale::machine
