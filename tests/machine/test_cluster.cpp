#include "hetscale/machine/cluster.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"

namespace hetscale::machine {
namespace {

NodeSpec fast_spec() {
  return NodeSpec{"Fast", 2, units::mflops(100.0), 1e9, 4e8, {1.0}};
}

NodeSpec slow_spec() {
  return NodeSpec{"Slow", 1, units::mflops(25.0), 1e8, 4e8, {1.0}};
}

TEST(Cluster, ProcessorsEnumerateInNodeThenCpuOrder) {
  Cluster cluster;
  cluster.add_node("a", fast_spec());       // 2 CPUs
  cluster.add_node("b", slow_spec());       // 1 CPU
  const auto procs = cluster.processors();
  ASSERT_EQ(procs.size(), 3u);
  EXPECT_EQ(procs[0].node, 0);
  EXPECT_EQ(procs[0].cpu, 0);
  EXPECT_EQ(procs[1].node, 0);
  EXPECT_EQ(procs[1].cpu, 1);
  EXPECT_EQ(procs[2].node, 1);
  EXPECT_DOUBLE_EQ(procs[0].rate_flops, units::mflops(100.0));
  EXPECT_DOUBLE_EQ(procs[2].rate_flops, units::mflops(25.0));
}

TEST(Cluster, CpusUsedRestrictsParticipation) {
  Cluster cluster;
  cluster.add_node("a", fast_spec(), /*cpus_used=*/1);
  EXPECT_EQ(cluster.processor_count(), 1);
}

TEST(Cluster, CpusUsedBoundsEnforced) {
  Cluster cluster;
  EXPECT_THROW(cluster.add_node("a", fast_spec(), 3), PreconditionError);
  EXPECT_THROW(cluster.add_node("a", fast_spec(), 0), PreconditionError);
}

TEST(Cluster, AggregateRateSumsUsedCpus) {
  Cluster cluster;
  cluster.add_node("a", fast_spec(), 2);
  cluster.add_node("b", slow_spec());
  EXPECT_DOUBLE_EQ(cluster.aggregate_rate_flops(), units::mflops(225.0));
}

TEST(Cluster, MinNodeMemory) {
  Cluster cluster;
  cluster.add_node("a", fast_spec());
  cluster.add_node("b", slow_spec());
  EXPECT_DOUBLE_EQ(cluster.min_node_memory_bytes(), 1e8);
}

TEST(Cluster, MinMemoryOfEmptyClusterThrows) {
  Cluster cluster;
  EXPECT_THROW(cluster.min_node_memory_bytes(), PreconditionError);
}

TEST(Cluster, InvalidSpecsRejected) {
  Cluster cluster;
  NodeSpec bad = fast_spec();
  bad.cpu_rate_flops = 0.0;
  EXPECT_THROW(cluster.add_node("x", bad), PreconditionError);
  bad = fast_spec();
  bad.cpus = 0;
  EXPECT_THROW(cluster.add_node("x", bad), PreconditionError);
}

TEST(Cluster, SummaryGroupsByModelAndCpus) {
  Cluster cluster;
  cluster.add_node("a", fast_spec(), 2);
  cluster.add_node("b", slow_spec());
  cluster.add_node("c", slow_spec());
  const auto text = cluster.summary();
  EXPECT_NE(text.find("1x Fast(2cpu)"), std::string::npos);
  EXPECT_NE(text.find("2x Slow"), std::string::npos);
}

}  // namespace
}  // namespace hetscale::machine
