#include "hetscale/machine/sunwulf.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"

namespace hetscale::machine::sunwulf {
namespace {

TEST(Sunwulf, NodeSpecsMatchTestbedShape) {
  EXPECT_EQ(server_spec().cpus, 4);
  EXPECT_EQ(sunblade_spec().cpus, 1);
  EXPECT_EQ(v210_spec().cpus, 2);
  // V210 (1 GHz) is roughly twice the rate of the 480/500 MHz nodes.
  EXPECT_GT(v210_spec().cpu_rate_flops,
            1.5 * sunblade_spec().cpu_rate_flops);
  // SunBlade memory is the testbed's famous 128 MB.
  EXPECT_DOUBLE_EQ(sunblade_spec().memory_bytes, 128.0 * 1024 * 1024);
}

TEST(Sunwulf, BenchmarkBiasesAverageToOne) {
  for (const auto& spec : {server_spec(), sunblade_spec(), v210_spec()}) {
    double sum = 0.0;
    for (double b : spec.benchmark_bias) sum += b;
    EXPECT_NEAR(sum / static_cast<double>(spec.benchmark_bias.size()), 1.0,
                1e-12)
        << spec.model;
  }
}

class GeEnsemble : public ::testing::TestWithParam<int> {};

TEST_P(GeEnsemble, ServerPlusBladesWithPEqualNodesPlusOne) {
  const int nodes = GetParam();
  const Cluster cluster = ge_ensemble(nodes);
  EXPECT_EQ(cluster.node_count(), static_cast<std::size_t>(nodes));
  // Server contributes 2 CPUs, each SunBlade 1: p = nodes + 1.
  EXPECT_EQ(cluster.processor_count(), nodes + 1);
  EXPECT_EQ(cluster.nodes().front().spec.model, "SunFire server");
  EXPECT_EQ(cluster.nodes().front().cpus_used, 2);
  for (std::size_t i = 1; i < cluster.node_count(); ++i) {
    EXPECT_EQ(cluster.nodes()[i].spec.model, "SunBlade");
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, GeEnsemble,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(Sunwulf, MmEnsembleEightNodesMatchesPaperExample) {
  // "in the case of 8 nodes, the computing system is composed of one server
  //  node, three SunBlade compute nodes and four SunFire V210 compute nodes"
  const Cluster cluster = mm_ensemble(8);
  ASSERT_EQ(cluster.node_count(), 8u);
  int blades = 0;
  int v210s = 0;
  for (const auto& node : cluster.nodes()) {
    if (node.spec.model == "SunBlade") ++blades;
    if (node.spec.model == "SunFire V210") ++v210s;
  }
  EXPECT_EQ(blades, 3);
  EXPECT_EQ(v210s, 4);
  // One CPU per node in the MM ensembles: p == node count.
  EXPECT_EQ(cluster.processor_count(), 8);
}

TEST(Sunwulf, MmEnsembleIsHeterogeneous) {
  const Cluster cluster = mm_ensemble(4);
  const auto procs = cluster.processors();
  double lo = procs.front().rate_flops;
  double hi = lo;
  for (const auto& p : procs) {
    lo = std::min(lo, p.rate_flops);
    hi = std::max(hi, p.rate_flops);
  }
  EXPECT_GT(hi, 1.5 * lo);
}

TEST(Sunwulf, HomogeneousEnsembleAllEqual) {
  const Cluster cluster = homogeneous_ensemble(4);
  const auto procs = cluster.processors();
  ASSERT_EQ(procs.size(), 4u);
  for (const auto& p : procs) {
    EXPECT_DOUBLE_EQ(p.rate_flops, procs.front().rate_flops);
  }
}

TEST(Sunwulf, TooSmallEnsemblesRejected) {
  EXPECT_THROW(ge_ensemble(1), PreconditionError);
  EXPECT_THROW(mm_ensemble(1), PreconditionError);
  EXPECT_THROW(homogeneous_ensemble(0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::machine::sunwulf
