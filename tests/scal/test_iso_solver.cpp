#include "hetscale/scal/iso_solver.hpp"

#include <gtest/gtest.h>

#include "analytic_combination.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {
namespace {

using testing::AnalyticCombination;

class SolverTargets : public ::testing::TestWithParam<double> {};
INSTANTIATE_TEST_SUITE_P(Targets, SolverTargets,
                         ::testing::Values(0.1, 0.25, 0.3, 0.5, 0.75, 0.9));

TEST_P(SolverTargets, DirectSearchFindsExactThreshold) {
  const double target = GetParam();
  AnalyticCombination combo("synthetic", 1e8, /*knee=*/137.0);
  const auto result = required_problem_size(combo, target);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.n, combo.required_size(target));
  EXPECT_GE(result.achieved_es, target);
}

TEST(IsoSolver, DirectSearchUsesLogarithmicallyManyRuns) {
  AnalyticCombination combo("synthetic", 1e8, 1000.0);
  const auto result = required_problem_size(combo, 0.5);
  ASSERT_TRUE(result.found);
  EXPECT_LT(combo.measure_calls(), 40);
}

TEST(IsoSolver, UnreachableTargetReportsNotFound) {
  AnalyticCombination combo("synthetic", 1e8, 1e9);  // needs n ~ 1e9
  IsoSolveOptions options;
  options.n_max = 1 << 16;
  const auto result = required_problem_size(combo, 0.9, options);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.n, -1);
}

TEST(IsoSolver, TrendLineLandsNearTheDirectAnswer) {
  AnalyticCombination combo("synthetic", 1e8, 200.0);
  IsoSolveOptions trend;
  trend.method = IsoSolveOptions::Method::kTrendLine;
  trend.trend_n_lo = 32;
  trend.trend_n_hi = 1024;
  const auto via_trend = required_problem_size(combo, 0.5, trend);
  const auto direct = required_problem_size(combo, 0.5);
  ASSERT_TRUE(via_trend.found);
  ASSERT_TRUE(direct.found);
  // Paper-style: the trend read-off is close, then verified by measuring.
  EXPECT_NEAR(static_cast<double>(via_trend.n),
              static_cast<double>(direct.n), 0.2 * direct.n);
  EXPECT_NEAR(via_trend.achieved_es, 0.5, 0.06);
}

TEST(IsoSolver, TrendLineOnRealGeCombination) {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(2);
  config.with_data = false;
  GeCombination combo("GE-2", std::move(config));

  IsoSolveOptions trend;
  trend.method = IsoSolveOptions::Method::kTrendLine;
  trend.trend_n_lo = 64;
  trend.trend_n_hi = 1024;
  const auto via_trend = required_problem_size(combo, 0.3, trend);
  const auto direct = required_problem_size(combo, 0.3);
  ASSERT_TRUE(via_trend.found);
  ASSERT_TRUE(direct.found);
  EXPECT_NEAR(static_cast<double>(via_trend.n),
              static_cast<double>(direct.n), 0.25 * direct.n);
}

TEST(IsoSolver, WorksOnSortCombination) {
  // A real-data combination with sub-cubic work: the solver must handle
  // its (noisier, slowly rising) efficiency curve and the p^2 size floor.
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::mm_ensemble(4);
  SortCombination combo("sort-4", std::move(config));
  IsoSolveOptions options;
  options.n_min = 16;  // p^2
  const auto result = required_problem_size(combo, 0.2, options);
  ASSERT_TRUE(result.found);
  EXPECT_GE(result.achieved_es, 0.2);
  // Sort's curve is data-dependent (bucket sizes), so only require the
  // solved point to be near the rising edge, not exactly minimal.
  EXPECT_LT(combo.measure(std::max<std::int64_t>(16, result.n / 2))
                .speed_efficiency,
            0.2);
}

TEST(IsoSolver, InvalidArgumentsRejected) {
  AnalyticCombination combo("synthetic", 1e8, 100.0);
  EXPECT_THROW(required_problem_size(combo, 0.0), PreconditionError);
  EXPECT_THROW(required_problem_size(combo, 1.0), PreconditionError);
  IsoSolveOptions bad;
  bad.n_min = 10;
  bad.n_max = 5;
  EXPECT_THROW(required_problem_size(combo, 0.5, bad), PreconditionError);
}

TEST(IsoSolver, TrendNeedsEnoughSamples) {
  AnalyticCombination combo("synthetic", 1e8, 100.0);
  IsoSolveOptions bad;
  bad.method = IsoSolveOptions::Method::kTrendLine;
  bad.trend_samples = 3;
  bad.trend_degree = 3;
  EXPECT_THROW(required_problem_size(combo, 0.5, bad), PreconditionError);
}

}  // namespace
}  // namespace hetscale::scal
