#include "hetscale/scal/combination.hpp"

#include <gtest/gtest.h>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/polynomial.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {
namespace {

ClusterCombination::Config ge2_config() {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(2);
  config.with_data = false;
  return config;
}

TEST(Combination, MarkedSpeedMatchesDefinitionTwo) {
  GeCombination combo("GE-2", ge2_config());
  EXPECT_NEAR(combo.marked_speed(),
              marked::system_marked_speed(combo.cluster()), 1.0);
}

TEST(Combination, WorkPolynomials) {
  GeCombination ge("GE", ge2_config());
  ClusterCombination::Config mm_config;
  mm_config.cluster = machine::sunwulf::mm_ensemble(2);
  MmCombination mm("MM", std::move(mm_config));
  EXPECT_DOUBLE_EQ(ge.work(100), numeric::ge_workload(100.0));
  EXPECT_DOUBLE_EQ(mm.work(100), numeric::mm_workload(100.0));
}

TEST(Combination, MeasurementFieldsAreConsistent) {
  GeCombination combo("GE-2", ge2_config());
  const auto& m = combo.measure(64);
  EXPECT_EQ(m.n, 64);
  EXPECT_DOUBLE_EQ(m.work_flops, combo.work(64));
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_NEAR(m.speed_flops, m.work_flops / m.seconds, 1e-6);
  EXPECT_NEAR(m.speed_efficiency, m.speed_flops / combo.marked_speed(),
              1e-12);
  EXPECT_GE(m.overhead_s, 0.0);
}

TEST(Combination, MeasurementsAreCached) {
  GeCombination combo("GE-2", ge2_config());
  const auto* first = &combo.measure(48);
  const auto* second = &combo.measure(48);
  EXPECT_EQ(first, second);  // same object: no re-simulation
}

TEST(Combination, SpeedEfficiencyIncreasesWithProblemSize) {
  GeCombination combo("GE-2", ge2_config());
  double prev = 0.0;
  for (std::int64_t n : {16, 32, 64, 128, 256}) {
    const double es = combo.measure(n).speed_efficiency;
    EXPECT_GT(es, prev) << "n=" << n;
    prev = es;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(Combination, EfficiencyBoundedByOne) {
  GeCombination combo("GE-2", ge2_config());
  for (std::int64_t n : {100, 500, 1000}) {
    EXPECT_LT(combo.measure(n).speed_efficiency, 1.0);
    EXPECT_GT(combo.measure(n).speed_efficiency, 0.0);
  }
}

TEST(Combination, CurveSamplingPreservesOrder) {
  GeCombination combo("GE-2", ge2_config());
  const std::vector<std::int64_t> sizes{16, 64, 256};
  const auto curve = sample_efficiency_curve(combo, sizes);
  EXPECT_EQ(curve.label, "GE-2");
  ASSERT_EQ(curve.samples.size(), 3u);
  EXPECT_EQ(curve.samples[0].n, 16);
  EXPECT_EQ(curve.samples[2].n, 256);
  EXPECT_EQ(curve.sizes(), (std::vector<double>{16, 64, 256}));
}

TEST(Combination, TrendLineFitsTheCurveWell) {
  GeCombination combo("GE-2", ge2_config());
  const std::vector<std::int64_t> sizes{32, 64, 96, 128, 192, 256, 384, 512};
  const auto curve = sample_efficiency_curve(combo, sizes);
  const auto trend = fit_trend(curve, 3);
  EXPECT_GT(numeric::r_squared(trend, curve.sizes(), curve.efficiencies()),
            0.98);
}

TEST(Combination, SwitchedNetworkIsAtLeastAsFast) {
  auto shared_config = ge2_config();
  auto switched_config = ge2_config();
  switched_config.network = NetworkKind::kSwitched;
  GeCombination on_bus("GE-bus", std::move(shared_config));
  GeCombination on_switch("GE-switch", std::move(switched_config));
  EXPECT_LE(on_switch.measure(128).seconds, on_bus.measure(128).seconds);
}

TEST(Combination, InvalidMeasureSizeRejected) {
  GeCombination combo("GE-2", ge2_config());
  EXPECT_THROW(combo.measure(0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::scal
