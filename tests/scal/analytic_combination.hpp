// A closed-form Combination for exercising the solver and series logic
// without simulation cost: E_s(n) = n / (n + knee), so the required size
// for target e is exactly n* = ceil(knee * e / (1 - e)).
#pragma once

#include <cmath>
#include <string>

#include "hetscale/scal/combination.hpp"

namespace hetscale::scal::testing {

class AnalyticCombination final : public Combination {
 public:
  AnalyticCombination(std::string name, double marked_speed, double knee)
      : name_(std::move(name)), marked_speed_(marked_speed), knee_(knee) {}

  const std::string& name() const override { return name_; }
  double marked_speed() const override { return marked_speed_; }

  double work(std::int64_t n) const override {
    const double dn = static_cast<double>(n);
    return dn * dn * dn;
  }

  const Measurement& measure(std::int64_t n) override {
    ++measure_calls_;
    const double es = efficiency(n);
    last_.n = n;
    last_.work_flops = work(n);
    last_.seconds = last_.work_flops / (marked_speed_ * es);
    last_.speed_flops = last_.work_flops / last_.seconds;
    last_.speed_efficiency = es;
    last_.overhead_s = last_.seconds * (1.0 - es);
    return last_;
  }

  double efficiency(std::int64_t n) const {
    return static_cast<double>(n) / (static_cast<double>(n) + knee_);
  }

  /// Exact smallest integer n with efficiency(n) >= e (epsilon guard so a
  /// mathematically integral threshold does not round up spuriously).
  std::int64_t required_size(double e) const {
    return static_cast<std::int64_t>(
        std::ceil(knee_ * e / (1.0 - e) - 1e-9));
  }

  int measure_calls() const { return measure_calls_; }

 private:
  std::string name_;
  double marked_speed_;
  double knee_;
  Measurement last_;
  int measure_calls_ = 0;
};

}  // namespace hetscale::scal::testing
