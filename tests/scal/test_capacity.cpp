#include "hetscale/scal/capacity.hpp"

#include <gtest/gtest.h>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {
namespace {

TEST(Capacity, FootprintsGrowQuadratically) {
  for (const auto& footprint :
       {ge_footprint(), mm_footprint(), jacobi_footprint()}) {
    const double small = footprint(100, 0, 4);
    const double big = footprint(200, 0, 4);
    EXPECT_GT(big, 3.0 * small);  // ~4x for dense-matrix-dominated roots
    EXPECT_LT(big, 5.0 * small);
  }
}

TEST(Capacity, RootHoldsMoreThanWorkersForGe) {
  const auto footprint = ge_footprint();
  EXPECT_GT(footprint(500, 0, 8), footprint(500, 3, 8));
}

TEST(Capacity, MmWorkersStillHoldFullB) {
  const auto footprint = mm_footprint();
  // Worker footprint is dominated by the replicated B: more than 8N².
  EXPECT_GT(footprint(500, 3, 8), 8.0 * 500.0 * 500.0);
}

TEST(Capacity, MaxFeasibleSizeRespectsSmallestNode) {
  // All-SunBlade (128 MB) vs all-V210 (2 GB): same footprint, very
  // different ceilings.
  const auto blades = machine::sunwulf::homogeneous_ensemble(4);
  machine::Cluster v210s;
  for (int i = 0; i < 4; ++i) {
    v210s.add_node("v" + std::to_string(i), machine::sunwulf::v210_spec(),
                   1);
  }
  const auto footprint = ge_footprint();
  const auto blade_max = max_feasible_size(blades, footprint);
  const auto v210_max = max_feasible_size(v210s, footprint);
  EXPECT_GT(blade_max, 0);
  EXPECT_GT(v210_max, 3 * blade_max);
}

TEST(Capacity, MaxFeasibleSizeIsExactBoundary) {
  const auto cluster = machine::sunwulf::homogeneous_ensemble(4);
  const auto footprint = ge_footprint();
  const auto n_max = max_feasible_size(cluster, footprint);
  const double budget =
      0.8 * machine::sunwulf::sunblade_spec().memory_bytes;
  EXPECT_LE(footprint(n_max, 0, 4), budget);
  EXPECT_GT(footprint(n_max + 1, 0, 4), budget);
}

TEST(Capacity, HonoursCeiling) {
  const auto cluster = machine::sunwulf::ge_ensemble(2);
  EXPECT_EQ(max_feasible_size(cluster, ge_footprint(), 0.8, 100), 100);
}

TEST(Capacity, ZeroWhenNothingFits) {
  machine::Cluster tiny;
  auto spec = machine::sunwulf::sunblade_spec();
  spec.memory_bytes = 16.0;  // 16 bytes of RAM
  tiny.add_node("t", spec);
  EXPECT_EQ(max_feasible_size(tiny, ge_footprint()), 0);
}

TEST(Capacity, MemoryBoundedSolveFindsFeasibleTarget) {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(2);
  config.with_data = false;
  GeCombination combo("GE-2", std::move(config));
  // Root is the 4 GB server: plenty of room for the E_s = 0.3 point.
  const auto result =
      memory_bounded_required_size(combo, 0.3, ge_footprint());
  EXPECT_FALSE(result.memory_bound);
  ASSERT_TRUE(result.solve.found);
  EXPECT_LE(result.solve.n, result.n_limit);
}

TEST(Capacity, AllBladeSystemBecomesMemoryBound) {
  // Sun & Ni's memory-bounded regime: on all-SunBlade systems the root
  // must hold the full matrix in 128 MB, and past some ensemble size the
  // required problem for E_s = 0.3 no longer fits.
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::homogeneous_ensemble(32);
  config.with_data = false;
  GeCombination combo("hom-32", std::move(config));
  const auto result =
      memory_bounded_required_size(combo, 0.3, ge_footprint());
  EXPECT_TRUE(result.memory_bound);
  EXPECT_GT(result.n_limit, 0);
}

TEST(Capacity, InvalidInputsRejected) {
  const auto cluster = machine::sunwulf::ge_ensemble(2);
  EXPECT_THROW(max_feasible_size(cluster, ge_footprint(), 0.0),
               PreconditionError);
  EXPECT_THROW(max_feasible_size(cluster, ge_footprint(), 1.5),
               PreconditionError);
  EXPECT_THROW(max_feasible_size(cluster, nullptr), PreconditionError);
}

}  // namespace
}  // namespace hetscale::scal
