// FitStudy: heterogeneity score properties, gather shape/order, and
// runner-vs-sequential bit-identity of the gathered dataset.
#include "hetscale/scal/fit_study.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/scal/measure_store.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {
namespace {

TEST(HeterogeneityScore, HomogeneousScoresZero) {
  const std::vector<double> same{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(heterogeneity_score(same), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(heterogeneity_score(one), 0.0);
}

TEST(HeterogeneityScore, SpreadRaisesScoreTowardOne) {
  const std::vector<double> mild{2.0, 1.0};
  const std::vector<double> wild{100.0, 1.0, 1.0, 1.0};
  const double h_mild = heterogeneity_score(mild);
  const double h_wild = heterogeneity_score(wild);
  EXPECT_GT(h_mild, 0.0);
  EXPECT_GT(h_wild, h_mild);
  EXPECT_LT(h_wild, 1.0);
  // 1 - (sum)/(p*max) exactly.
  EXPECT_DOUBLE_EQ(h_mild, 1.0 - 3.0 / (2.0 * 2.0));
}

TEST(HeterogeneityScore, DegenerateInputsScoreZero) {
  EXPECT_DOUBLE_EQ(heterogeneity_score({}), 0.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(heterogeneity_score(zeros), 0.0);
}

ClusterCombination::Config ge_config(int nodes) {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(nodes);
  config.with_data = false;
  return config;
}

TEST(FitStudy, GatherIsLadderMajorSizeMinorWithFullRows) {
  GeCombination two("C2", ge_config(2));
  GeCombination four("C4", ge_config(4));
  std::vector<ClusterCombination*> ladder{&two, &four};
  const std::vector<std::int64_t> sizes{32, 64};
  const auto data = gather_fit_points("ge", ladder, sizes);

  EXPECT_EQ(data.algo, "ge");
  ASSERT_EQ(data.points.size(), 4u);
  EXPECT_EQ(data.points[0].system, "C2");
  EXPECT_EQ(data.points[0].n, 32);
  EXPECT_EQ(data.points[1].system, "C2");
  EXPECT_EQ(data.points[1].n, 64);
  EXPECT_EQ(data.points[2].system, "C4");
  EXPECT_EQ(data.points[3].n, 64);
  for (const auto& point : data.points) {
    EXPECT_GT(point.p, 1);
    EXPECT_GT(point.work_flops, 0.0);
    EXPECT_GT(point.seconds, 0.0);
    EXPECT_GT(point.speed_efficiency, 0.0);
    EXPECT_LE(point.speed_efficiency, 1.0);
    EXPECT_GT(point.marked_speed, 0.0);
    EXPECT_GT(point.root_speed, 0.0);
    EXPECT_GE(point.het_score, 0.0);
    EXPECT_LT(point.het_score, 1.0);
  }
  EXPECT_EQ(data.processor_counts(),
            (std::vector<int>{two.processor_count(),
                              four.processor_count()}));
  EXPECT_EQ(data.sizes(), (std::vector<std::int64_t>{32, 64}));
}

TEST(FitStudy, RunnerAndSequentialGatherAreBitIdentical) {
  // Disable the store so the comparison is genuine recomputation.
  auto& store = MeasurementStore::global();
  const bool was_enabled = store.enabled();
  store.set_enabled(false);

  GeCombination a("C2", ge_config(2));
  GeCombination b("C2-again", ge_config(2));
  std::vector<ClusterCombination*> ladder_a{&a};
  std::vector<ClusterCombination*> ladder_b{&b};
  const std::vector<std::int64_t> sizes{24, 48, 96};

  const auto sequential = gather_fit_points("ge", ladder_a, sizes);
  run::Runner runner(4);
  const auto threaded = gather_fit_points("ge", ladder_b, sizes, &runner);
  store.set_enabled(was_enabled);

  ASSERT_EQ(sequential.points.size(), threaded.points.size());
  for (std::size_t i = 0; i < sequential.points.size(); ++i) {
    EXPECT_EQ(sequential.points[i].seconds, threaded.points[i].seconds);
    EXPECT_EQ(sequential.points[i].speed_efficiency,
              threaded.points[i].speed_efficiency);
    EXPECT_EQ(sequential.points[i].work_flops,
              threaded.points[i].work_flops);
  }
}

TEST(FitStudy, RejectsEmptyLadderOrSizes) {
  GeCombination two("C2", ge_config(2));
  std::vector<ClusterCombination*> ladder{&two};
  const std::vector<std::int64_t> sizes{32};
  EXPECT_THROW(gather_fit_points("ge", {}, sizes), PreconditionError);
  EXPECT_THROW(gather_fit_points("ge", ladder, {}), PreconditionError);
}

}  // namespace
}  // namespace hetscale::scal
