#include "hetscale/scal/baselines.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {
namespace {

TEST(Baselines, SpeedupAndEfficiency) {
  EXPECT_DOUBLE_EQ(speedup(10.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(parallel_efficiency(10.0, 2.0, 8), 0.625);
}

TEST(Baselines, EfficiencyOfPerfectScalingIsOne) {
  EXPECT_DOUBLE_EQ(parallel_efficiency(8.0, 1.0, 8), 1.0);
}

TEST(Baselines, IsoefficiencySameRatioFormAsIsospeed) {
  EXPECT_DOUBLE_EQ(isoefficiency_scalability(2, 100.0, 4, 300.0),
                   (4.0 * 100.0) / (2.0 * 300.0));
}

TEST(Baselines, ProductivityAndJwScalability) {
  // Value 2e8 flop/s at $0.02/s vs 4e8 at $0.05/s: productivity drops.
  const double base = productivity(2e8, 0.02);
  const double scaled = productivity(4e8, 0.05);
  EXPECT_DOUBLE_EQ(base, 1e10);
  EXPECT_DOUBLE_EQ(scaled, 8e9);
  EXPECT_DOUBLE_EQ(jw_scalability(base, scaled), 0.8);
}

TEST(Baselines, ClusterCostScalesWithAggregateRate) {
  const auto small = machine::sunwulf::ge_ensemble(2);
  const auto large = machine::sunwulf::ge_ensemble(8);
  const double price = 0.10;  // $ per Mflop/s-hour
  const double cost_small = cluster_cost_per_s(small, price);
  const double cost_large = cluster_cost_per_s(large, price);
  EXPECT_GT(cost_large, cost_small);
  EXPECT_NEAR(cost_small,
              small.aggregate_rate_flops() / 1e6 * price / 3600.0, 1e-12);
}

TEST(Baselines, EquivalentProcessors) {
  const std::vector<double> speeds{26e6, 26e6, 27.5e6, 55e6};
  EXPECT_NEAR(equivalent_processors(speeds, 27.5e6), 134.5 / 27.5, 1e-12);
}

TEST(Baselines, PastorBosqueEfficiencyAtIdealSpeedupIsOne) {
  // t_seq_ref / t_par equal to the equivalent processor count -> E = 1.
  const std::vector<double> speeds{1e8, 1e8};
  const double eq = equivalent_processors(speeds, 1e8);  // 2
  EXPECT_DOUBLE_EQ(pastor_bosque_efficiency(10.0, 10.0 / eq, speeds, 1e8),
                   1.0);
}

TEST(Baselines, PastorBosqueRequiresSequentialTime) {
  const std::vector<double> speeds{1e8};
  EXPECT_THROW(pastor_bosque_efficiency(0.0, 1.0, speeds, 1e8),
               PreconditionError);
}

TEST(Baselines, InvalidInputsRejected) {
  EXPECT_THROW(speedup(0.0, 1.0), PreconditionError);
  EXPECT_THROW(parallel_efficiency(1.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(productivity(1.0, 0.0), PreconditionError);
  EXPECT_THROW(jw_scalability(0.0, 1.0), PreconditionError);
  const std::vector<double> bad{1.0, 0.0};
  EXPECT_THROW(equivalent_processors(bad, 1.0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::scal
