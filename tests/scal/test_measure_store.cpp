// MeasurementStore: fingerprint sharing across display names, disk
// round-trip with exact doubles, version gating, and warm-starting a fit
// study from a persisted cache.
#include "hetscale/scal/measure_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/predict/zoo.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/scal/fit_study.hpp"

namespace hetscale::scal {
namespace {

/// The store under test is process-global; snapshot and restore it around
/// each test so the suite can run in any order within one process.
class MeasureStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MeasurementStore::global().enabled();
    MeasurementStore::global().clear();
    MeasurementStore::global().set_enabled(true);
  }
  void TearDown() override {
    MeasurementStore::global().clear();
    MeasurementStore::global().set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = true;
};

ClusterCombination::Config ge2_config() {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(2);
  config.with_data = false;
  return config;
}

Measurement sample(std::int64_t n) {
  Measurement m;
  m.n = n;
  m.work_flops = 1.0e9 + static_cast<double>(n);
  m.seconds = 0.125 * static_cast<double>(n);
  m.speed_flops = m.work_flops / m.seconds;
  m.speed_efficiency = 0.1234567890123456789;  // exercise %.17g round-trip
  m.overhead_s = 1e-17;
  return m;
}

TEST_F(MeasureStoreTest, PutThenGet) {
  auto& store = MeasurementStore::global();
  store.put("key", 64, sample(64));
  Measurement out;
  ASSERT_TRUE(store.try_get("key", 64, out));
  EXPECT_EQ(out.n, 64);
  EXPECT_DOUBLE_EQ(out.seconds, sample(64).seconds);
  EXPECT_FALSE(store.try_get("key", 65, out));
  EXPECT_FALSE(store.try_get("other", 64, out));
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.misses(), 2u);
}

TEST_F(MeasureStoreTest, SaveLoadRoundTripsBitExactly) {
  auto& store = MeasurementStore::global();
  store.put("ge|timing|switch", 64, sample(64));
  store.put("ge|timing|switch", 128, sample(128));
  store.put("a key with spaces / punctuation|x", 7, sample(7));
  std::ostringstream saved;
  store.save(saved);

  store.clear();
  std::istringstream loaded(saved.str());
  ASSERT_TRUE(store.load(loaded));
  ASSERT_EQ(store.size(), 3u);
  Measurement out;
  ASSERT_TRUE(store.try_get("ge|timing|switch", 128, out));
  const Measurement expected = sample(128);
  // Bit-exact: %.17g round-trips every double.
  EXPECT_EQ(out.work_flops, expected.work_flops);
  EXPECT_EQ(out.seconds, expected.seconds);
  EXPECT_EQ(out.speed_flops, expected.speed_flops);
  EXPECT_EQ(out.speed_efficiency, expected.speed_efficiency);
  EXPECT_EQ(out.overhead_s, expected.overhead_s);
}

TEST_F(MeasureStoreTest, LoadRejectsVersionMismatch) {
  auto& store = MeasurementStore::global();
  std::istringstream wrong_version("hetscale-measure-store v999\nkey\t1\t1\t1\t1\t1\t1\n");
  EXPECT_FALSE(store.load(wrong_version));
  EXPECT_EQ(store.size(), 0u);
  std::istringstream garbage("not a store at all\n");
  EXPECT_FALSE(store.load(garbage));
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(MeasureStoreTest, FingerprintSharesAcrossDisplayNames) {
  // table3 / table4 / table7 all simulate GE on the same ensembles under
  // different scenario names: the fingerprint must make them share.
  GeCombination first("GE required-rank", ge2_config());
  GeCombination second("GE scalability", ge2_config());
  auto& store = MeasurementStore::global();

  const Measurement& a = first.measure(64);
  const std::uint64_t misses_after_first = store.misses();
  const Measurement& b = second.measure(64);
  EXPECT_EQ(store.misses(), misses_after_first)
      << "the second combination must hit the shared store, not recompute";
  EXPECT_GE(store.hits(), 1u);
  // Shared measurements are the same bits, so artifacts cannot change.
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.speed_efficiency, b.speed_efficiency);
}

TEST_F(MeasureStoreTest, FingerprintSeparatesDifferentConfigs) {
  const auto base = ge2_config();
  auto bus = base;
  bus.network = NetworkKind::kSharedBus;
  auto with_data = base;
  with_data.with_data = true;
  const std::string k1 = config_fingerprint("ge", base.cluster, base.network,
                                            base.net_params, base.with_data);
  const std::string k2 = config_fingerprint("ge", bus.cluster, bus.network,
                                            bus.net_params, bus.with_data);
  const std::string k3 =
      config_fingerprint("ge", with_data.cluster, with_data.network,
                         with_data.net_params, with_data.with_data);
  const std::string k4 = config_fingerprint("mm", base.cluster, base.network,
                                            base.net_params, base.with_data);
  auto tweaked = base.net_params;
  tweaked.remote.bandwidth_Bps = std::nextafter(
      tweaked.remote.bandwidth_Bps, 2.0 * tweaked.remote.bandwidth_Bps);
  const std::string k5 = config_fingerprint("ge", base.cluster, base.network,
                                            tweaked, base.with_data);
  EXPECT_NE(k1, k2) << "network kind must split the key";
  EXPECT_NE(k1, k3) << "data mode must split the key";
  EXPECT_NE(k1, k4) << "algorithm must split the key";
  EXPECT_NE(k1, k5) << "a 1-ulp parameter change must split the key";
}

TEST_F(MeasureStoreTest, DisabledStoreDoesNotShare) {
  auto& store = MeasurementStore::global();
  store.set_enabled(false);
  GeCombination first("GE-a", ge2_config());
  GeCombination second("GE-b", ge2_config());
  (void)first.measure(48);
  (void)second.measure(48);
  EXPECT_EQ(store.size(), 0u) << "disabled store must stay empty";
}

TEST_F(MeasureStoreTest, MeasureManyDeduplicatesAndUsesStore) {
  GeCombination first("GE-a", ge2_config());
  GeCombination second("GE-b", ge2_config());
  run::Runner runner(1);
  const std::int64_t sizes[] = {32, 64, 32, 64, 96};
  const auto batch = first.measure_many(sizes, runner);
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch[0].seconds, batch[2].seconds);
  EXPECT_EQ(batch[1].seconds, batch[3].seconds);

  auto& store = MeasurementStore::global();
  const std::uint64_t misses_before = store.misses();
  const auto again = second.measure_many(sizes, runner);
  EXPECT_EQ(store.misses(), misses_before)
      << "every size was stored by the first batch";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].seconds, again[i].seconds);
    EXPECT_EQ(batch[i].speed_efficiency, again[i].speed_efficiency);
  }
}

TEST_F(MeasureStoreTest, PersistedCacheWarmStartsFitStudyByteIdentically) {
  // Cold pass: gather a fit dataset (every point is a store miss), fit a
  // model, and persist the store — the `--measure-cache` save path.
  auto& store = MeasurementStore::global();
  GeCombination cold("C2", ge2_config());
  std::vector<ClusterCombination*> ladder{&cold};
  const std::vector<std::int64_t> sizes{32, 48, 64};
  run::Runner runner(2);
  const auto cold_data = gather_fit_points("ge", ladder, sizes, &runner);
  const auto cold_fit = predict::fit_scalability_model(
      *predict::find_model("usl"), cold_data);
  EXPECT_EQ(store.misses(), sizes.size());
  EXPECT_EQ(store.size(), sizes.size());

  const std::string path =
      ::testing::TempDir() + "/hetscale_measure_cache_test.txt";
  ASSERT_TRUE(store.save_file(path));

  // Warm pass: a fresh process (modeled by clear + load_file) must serve
  // every measurement from the cache — zero new misses — and reproduce
  // the fit output bit for bit.
  store.clear();
  ASSERT_TRUE(store.load_file(path));
  ASSERT_EQ(store.size(), sizes.size());
  const std::uint64_t hits_before = store.hits();
  const std::uint64_t misses_before = store.misses();
  GeCombination warm("C2-warm", ge2_config());
  std::vector<ClusterCombination*> warm_ladder{&warm};
  const auto warm_data = gather_fit_points("ge", warm_ladder, sizes, &runner);
  EXPECT_EQ(store.misses(), misses_before)
      << "a warm-started gather must not recompute anything";
  EXPECT_EQ(store.hits(), hits_before + sizes.size());

  ASSERT_EQ(warm_data.points.size(), cold_data.points.size());
  for (std::size_t i = 0; i < cold_data.points.size(); ++i) {
    EXPECT_EQ(warm_data.points[i].seconds, cold_data.points[i].seconds);
    EXPECT_EQ(warm_data.points[i].speed_efficiency,
              cold_data.points[i].speed_efficiency);
    EXPECT_EQ(warm_data.points[i].work_flops,
              cold_data.points[i].work_flops);
  }
  const auto warm_fit = predict::fit_scalability_model(
      *predict::find_model("usl"), warm_data);
  EXPECT_EQ(warm_fit.params, cold_fit.params);  // bit-equal, not near
  EXPECT_EQ(warm_fit.rmse, cold_fit.rmse);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetscale::scal
