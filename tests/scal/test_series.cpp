#include "hetscale/scal/series.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analytic_combination.hpp"
#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {
namespace {

using testing::AnalyticCombination;

TEST(Series, BuildsOperatingPointsAndSteps) {
  AnalyticCombination a("sys-2", 1e8, 100.0);
  AnalyticCombination b("sys-4", 2e8, 220.0);
  AnalyticCombination c("sys-8", 4e8, 500.0);
  std::vector<Combination*> combos{&a, &b, &c};
  const auto report = scalability_series(combos, 0.5);

  ASSERT_EQ(report.points.size(), 3u);
  ASSERT_EQ(report.steps.size(), 2u);
  EXPECT_EQ(report.points[0].system, "sys-2");
  EXPECT_EQ(report.points[0].n, a.required_size(0.5));
  EXPECT_EQ(report.points[1].n, b.required_size(0.5));
  EXPECT_EQ(report.steps[0].from, "sys-2");
  EXPECT_EQ(report.steps[0].to, "sys-4");
}

TEST(Series, PsiMatchesClosedForm) {
  AnalyticCombination a("sys-2", 1e8, 100.0);
  AnalyticCombination b("sys-4", 2e8, 220.0);
  std::vector<Combination*> combos{&a, &b};
  const auto report = scalability_series(combos, 0.5);
  const double expected = isospeed_efficiency_scalability(
      1e8, a.work(a.required_size(0.5)), 2e8, b.work(b.required_size(0.5)));
  EXPECT_DOUBLE_EQ(report.steps[0].psi, expected);
  // Knee grows faster than C here, so the combination is sub-ideal.
  EXPECT_LT(report.steps[0].psi, 1.0);
  EXPECT_GT(report.steps[0].psi, 0.0);
}

TEST(Series, IdealCombinationScoresPsiOfOne) {
  // Knee scaling exactly with C keeps required n equal and W' ideal? No:
  // psi = 1 requires W' = W·C'/C. With W = n^3 and knee ∝ C, n' doubles
  // when C doubles, so W' = 8W but C'/C = 2 -> psi = 1/4. Construct the
  // true ideal instead: same knee, C ratio folded into work via equal n.
  AnalyticCombination a("base", 1e8, 100.0);
  AnalyticCombination b("same", 1e8, 100.0);  // identical system
  std::vector<Combination*> combos{&a, &b};
  const auto report = scalability_series(combos, 0.4);
  EXPECT_DOUBLE_EQ(report.steps[0].psi, 1.0);
}

TEST(Series, CumulativePsiIsProductOfSteps) {
  AnalyticCombination a("s1", 1e8, 100.0);
  AnalyticCombination b("s2", 2e8, 300.0);
  AnalyticCombination c("s3", 4e8, 900.0);
  std::vector<Combination*> combos{&a, &b, &c};
  const auto report = scalability_series(combos, 0.5);
  EXPECT_NEAR(report.cumulative_psi(),
              report.steps[0].psi * report.steps[1].psi, 1e-12);
  // And the product telescopes to psi(first, last).
  EXPECT_NEAR(report.cumulative_psi(),
              isospeed_efficiency_scalability(
                  1e8, a.work(a.required_size(0.5)), 4e8,
                  c.work(c.required_size(0.5))),
              1e-12);
}

TEST(Series, UnreachableSystemMarkedNotFound) {
  AnalyticCombination a("ok", 1e8, 100.0);
  AnalyticCombination b("hopeless", 2e8, 1e12);
  std::vector<Combination*> combos{&a, &b};
  IsoSolveOptions solve;
  solve.n_max = 1 << 16;
  const auto report = scalability_series(combos, 0.5, solve);
  EXPECT_TRUE(report.points[0].found);
  EXPECT_FALSE(report.points[1].found);
  EXPECT_EQ(report.steps[0].psi, 0.0);  // no step across a missing point
}

TEST(Series, NeedsAtLeastTwoSystems) {
  AnalyticCombination a("solo", 1e8, 100.0);
  std::vector<Combination*> combos{&a};
  EXPECT_THROW(scalability_series(combos, 0.5), PreconditionError);
}

}  // namespace
}  // namespace hetscale::scal
