#include "hetscale/scal/exec_time.hpp"

#include <gtest/gtest.h>

#include "analytic_combination.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {
namespace {

using testing::AnalyticCombination;

TEST(ExecTime, IsoEfficiencyTimeFormula) {
  // W = 1e9 flops at E_s = 0.25 on C = 1e8: T = 1e9/(0.25*1e8) = 40 s.
  EXPECT_DOUBLE_EQ(iso_efficiency_time(1e9, 1e8, 0.25), 40.0);
}

TEST(ExecTime, ScaledTimeRatioInvertsScalabilityRatio) {
  // Ref [8]: the more scalable combination has the smaller scaled time.
  EXPECT_DOUBLE_EQ(scaled_time_ratio(0.5, 0.25), 0.5);
  EXPECT_GT(scaled_time_ratio(0.2, 0.8), 1.0);  // a scales worse -> slower
}

TEST(ExecTime, RatioConsistentWithDefinitions) {
  // Two combinations from the same operating point (W, e, C) scaled to
  // systems of equal C': T' = W'/(eC') and psi = C'W/(CW') give
  // T_a'/T_b' = W_a'/W_b' = psi_b/psi_a.
  const double c = 1e8;
  const double c2 = 3e8;
  const double w = 1e9;
  const double e = 0.3;
  const double wa = 4e9;  // combination a needs more work
  const double wb = 3.2e9;
  const double psi_a = isospeed_efficiency_scalability(c, w, c2, wa);
  const double psi_b = isospeed_efficiency_scalability(c, w, c2, wb);
  const double ta = iso_efficiency_time(wa, c2, e);
  const double tb = iso_efficiency_time(wb, c2, e);
  EXPECT_NEAR(ta / tb, scaled_time_ratio(psi_a, psi_b), 1e-12);
}

TEST(ExecTime, CrossingFoundOnAnalyticPair) {
  // a: fast small system; b: big system with overhead — b wins at large n.
  AnalyticCombination a("small", 1e8, 10.0);   // high efficiency early
  AnalyticCombination b("big", 4e8, 2000.0);   // 4x capability, lazy start
  const auto crossing = find_time_crossing(a, b, 4, 1 << 20);
  ASSERT_TRUE(crossing.exists);
  EXPECT_GT(crossing.n, 4);
  // Just below the crossing a is faster; at it, b is.
  EXPECT_LE(crossing.time_b, crossing.time_a);
  EXPECT_LT(a.measure(crossing.n - 1).seconds,
            b.measure(crossing.n - 1).seconds);
}

TEST(ExecTime, NoCrossingWhenBNeverWins) {
  AnalyticCombination a("fast", 4e8, 10.0);
  AnalyticCombination b("slow", 1e8, 10.0);
  const auto crossing = find_time_crossing(a, b, 4, 4096);
  EXPECT_FALSE(crossing.exists);
  EXPECT_EQ(crossing.n, -1);
}

TEST(ExecTime, ImmediateCrossingAtLowerBound) {
  AnalyticCombination a("slow", 1e8, 10.0);
  AnalyticCombination b("fast", 4e8, 10.0);
  const auto crossing = find_time_crossing(a, b, 4, 4096);
  ASSERT_TRUE(crossing.exists);
  EXPECT_EQ(crossing.n, 4);
}

TEST(ExecTime, GeBigSystemOvertakesSmallOne) {
  // The simulated counterpart of test_ge's crossover: the 8-node system
  // starts slower (per-step collectives) and wins at large N.
  ClusterCombination::Config small_config;
  small_config.cluster = machine::sunwulf::ge_ensemble(2);
  small_config.with_data = false;
  GeCombination small("GE-2", std::move(small_config));
  ClusterCombination::Config big_config;
  big_config.cluster = machine::sunwulf::ge_ensemble(8);
  big_config.with_data = false;
  GeCombination big("GE-8", std::move(big_config));

  const auto crossing = find_time_crossing(small, big, 16, 1 << 14);
  ASSERT_TRUE(crossing.exists);
  EXPECT_GT(crossing.n, 16);      // not instant: overhead matters
  EXPECT_LT(crossing.n, 1 << 14); // but the capability eventually wins
}

TEST(ExecTime, InvalidInputsRejected) {
  EXPECT_THROW(iso_efficiency_time(0.0, 1e8, 0.5), PreconditionError);
  EXPECT_THROW(iso_efficiency_time(1e9, 1e8, 0.0), PreconditionError);
  EXPECT_THROW(iso_efficiency_time(1e9, 1e8, 1.5), PreconditionError);
  EXPECT_THROW(scaled_time_ratio(0.0, 1.0), PreconditionError);
  AnalyticCombination a("a", 1e8, 10.0);
  AnalyticCombination b("b", 1e8, 10.0);
  EXPECT_THROW(find_time_crossing(a, b, 10, 10), PreconditionError);
}

}  // namespace
}  // namespace hetscale::scal
