#include "hetscale/scal/metrics.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"

namespace hetscale::scal {
namespace {

TEST(Metrics, AchievedSpeedIsWorkOverTime) {
  EXPECT_DOUBLE_EQ(achieved_speed(1e9, 2.0), 5e8);
}

TEST(Metrics, SpeedEfficiencyDefinition) {
  // W = 1e9 flops in 2 s on a C = 1e9 flop/s system: S = 5e8, E_s = 0.5.
  EXPECT_DOUBLE_EQ(speed_efficiency(1e9, 2.0, 1e9), 0.5);
}

TEST(Metrics, SpeedEfficiencyIsOneWhenAchievingMarkedSpeed) {
  EXPECT_DOUBLE_EQ(speed_efficiency(3e9, 3.0, 1e9), 1.0);
}

TEST(Metrics, IdealScaledWorkKeepsRatio) {
  // Doubling C doubles the ideal W'.
  EXPECT_DOUBLE_EQ(ideal_scaled_work(1e8, 5e9, 2e8), 1e10);
}

TEST(Metrics, PsiIsOneForIdealScaling) {
  const double w_scaled = ideal_scaled_work(1e8, 5e9, 3e8);
  EXPECT_DOUBLE_EQ(isospeed_efficiency_scalability(1e8, 5e9, 3e8, w_scaled),
                   1.0);
}

TEST(Metrics, PsiBelowOneWhenWorkGrowsSuperlinearly) {
  // W' > ideal -> psi < 1 (the common case, paper §3.3).
  const double ideal = ideal_scaled_work(1e8, 5e9, 2e8);
  EXPECT_LT(isospeed_efficiency_scalability(1e8, 5e9, 2e8, 1.5 * ideal), 1.0);
  EXPECT_NEAR(
      isospeed_efficiency_scalability(1e8, 5e9, 2e8, 1.5 * ideal), 1.0 / 1.5,
      1e-12);
}

TEST(Metrics, PsiHomogeneousReduction) {
  // With C = p * C_i, psi reduces exactly to the Sun–Rover form.
  const double ci = 27.5e6;
  const double p = 4;
  const double p2 = 8;
  const double w = 1e9;
  const double w2 = 2.7e9;
  EXPECT_DOUBLE_EQ(
      isospeed_efficiency_scalability(p * ci, w, p2 * ci, w2),
      isospeed_scalability(p, w, p2, w2));
}

TEST(Metrics, PsiComposesMultiplicatively) {
  // psi(C1,C3) == psi(C1,C2) * psi(C2,C3) at fixed operating points.
  const double c1 = 1e8;
  const double c2 = 2e8;
  const double c3 = 5e8;
  const double w1 = 1e9;
  const double w2 = 3e9;
  const double w3 = 9e9;
  EXPECT_NEAR(isospeed_efficiency_scalability(c1, w1, c3, w3),
              isospeed_efficiency_scalability(c1, w1, c2, w2) *
                  isospeed_efficiency_scalability(c2, w2, c3, w3),
              1e-12);
}

TEST(Metrics, ConditionHolderAcceptsEqualEfficiencies) {
  // E_s = 0.5 on both systems.
  EXPECT_TRUE(isospeed_efficiency_condition_holds(1e9, 2.0, 1e9,  // E_s=0.5
                                                  4e9, 4.0, 2e9,  // E_s=0.5
                                                  0.01));
}

TEST(Metrics, ConditionHolderRejectsDrift) {
  EXPECT_FALSE(isospeed_efficiency_condition_holds(1e9, 2.0, 1e9,  // 0.5
                                                   4e9, 8.0, 2e9,  // 0.25
                                                   0.05));
}

TEST(Metrics, InvalidInputsRejected) {
  EXPECT_THROW(achieved_speed(1e9, 0.0), PreconditionError);
  EXPECT_THROW(speed_efficiency(1e9, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(isospeed_efficiency_scalability(0.0, 1.0, 1.0, 1.0),
               PreconditionError);
  EXPECT_THROW(isospeed_efficiency_scalability(1.0, 0.0, 1.0, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace hetscale::scal
