#include <gtest/gtest.h>

#include "hetscale/net/network.hpp"
#include "hetscale/net/shared_bus.hpp"
#include "hetscale/net/switched.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::net {
namespace {

NetworkParams test_params() {
  NetworkParams p;
  p.remote = {1e-4, 1e7};          // 0.1 ms latency, 10 MB/s
  p.local = {1e-6, 1e9};           // 1 us, 1 GB/s
  p.per_message_overhead_s = 1e-5;
  return p;
}

TEST(SharedBus, SingleTransferTimeIsOverheadPlusWirePlusLatency) {
  SharedBusNetwork bus(test_params());
  const auto r = bus.transfer(0, 1, 1e5, 0.0);
  // 1e-5 overhead + 1e5/1e7 = 0.01 wire + 1e-4 latency
  EXPECT_NEAR(r.arrival, 1e-5 + 0.01 + 1e-4, 1e-12);
  EXPECT_NEAR(r.sender_free, 1e-5 + 0.01, 1e-12);
}

TEST(SharedBus, ConcurrentTransfersSerializeOnTheMedium) {
  SharedBusNetwork bus(test_params());
  const auto first = bus.transfer(0, 1, 1e5, 0.0);
  const auto second = bus.transfer(2, 3, 1e5, 0.0);  // different nodes!
  EXPECT_GT(second.arrival, first.arrival);
  EXPECT_NEAR(second.arrival - first.arrival, 0.01, 1e-12);
}

TEST(SharedBus, LocalTransfersBypassTheMedium) {
  SharedBusNetwork bus(test_params());
  bus.transfer(0, 1, 1e6, 0.0);  // occupy the bus for 0.1 s
  const auto local = bus.transfer(2, 2, 1e3, 0.0);
  EXPECT_LT(local.arrival, 1e-3);  // unaffected by the busy bus
}

TEST(SharedBus, UtilizationReflectsBusyFraction) {
  SharedBusNetwork bus(test_params());
  bus.transfer(0, 1, 1e6, 0.0);  // 0.1 s of wire time
  EXPECT_NEAR(bus.utilization(0.2), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(bus.utilization(0.0), 0.0);
}

TEST(Switched, DistinctSendersDoNotContend) {
  SwitchedNetwork sw(test_params());
  const auto a = sw.transfer(0, 1, 1e5, 0.0);
  const auto b = sw.transfer(2, 3, 1e5, 0.0);
  EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
}

TEST(Switched, SameSenderSerializesOnItsPort) {
  SwitchedNetwork sw(test_params());
  const auto a = sw.transfer(0, 1, 1e5, 0.0);
  const auto b = sw.transfer(0, 2, 1e5, 0.0);
  EXPECT_NEAR(b.arrival - a.arrival, 0.01, 1e-12);
}

TEST(Switched, FasterThanSharedBusForFanOut) {
  const auto params = test_params();
  SharedBusNetwork bus(params);
  SwitchedNetwork sw(params);
  double bus_last = 0.0;
  double sw_last = 0.0;
  for (int s = 0; s < 8; ++s) {
    bus_last = std::max(bus_last, bus.transfer(s, 8, 1e5, 0.0).arrival);
    sw_last = std::max(sw_last, sw.transfer(s, 8, 1e5, 0.0).arrival);
  }
  EXPECT_GT(bus_last, sw_last);
}

TEST(Network, StatsAccumulate) {
  SharedBusNetwork bus(test_params());
  bus.transfer(0, 1, 100.0, 0.0);
  bus.transfer(1, 0, 50.0, 1.0);
  EXPECT_EQ(bus.stats().messages, 2u);
  EXPECT_DOUBLE_EQ(bus.stats().bytes, 150.0);
}

TEST(Network, ZeroByteMessageStillPaysLatencyAndOverhead) {
  SharedBusNetwork bus(test_params());
  const auto r = bus.transfer(0, 1, 0.0, 0.0);
  EXPECT_NEAR(r.arrival, 1e-5 + 1e-4, 1e-12);
}

TEST(Network, InvalidArgumentsRejected) {
  SharedBusNetwork bus(test_params());
  EXPECT_THROW(bus.transfer(0, 1, -1.0, 0.0), PreconditionError);
  EXPECT_THROW(bus.transfer(-1, 1, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(bus.transfer(0, 1, 1.0, -0.5), PreconditionError);
}

TEST(LinkParams, WireTimeIsBytesOverBandwidth) {
  const LinkParams link{1e-4, 12.5e6};
  EXPECT_NEAR(link.wire_time(12.5e6), 1.0, 1e-12);
}

}  // namespace
}  // namespace hetscale::net
