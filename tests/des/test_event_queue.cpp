// Property tests: LadderEventQueue against the reference ordering.
//
// The ladder replaced a std::priority_queue<Event>; its contract is to pop
// in EXACTLY ascending (time, sequence) order under the scheduler's usage
// pattern — pushes never go behind the last popped time. These tests drive
// both implementations side by side through randomized interleavings of
// pushes and pops (including heavy equal-time ties) and require identical
// pop sequences.
#include "hetscale/des/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <queue>
#include <vector>

#include "hetscale/support/rng.hpp"

namespace hetscale::des {
namespace {

struct ReferenceOrder {
  // priority_queue pops the *largest* element: invert event_before.
  bool operator()(const Event& a, const Event& b) const {
    return event_before(b, a);
  }
};

using ReferenceQueue =
    std::priority_queue<Event, std::vector<Event>, ReferenceOrder>;

/// Pop everything from both queues; expect identical (time, sequence).
void expect_same_drain(LadderEventQueue& ladder, ReferenceQueue& reference) {
  while (!reference.empty()) {
    ASSERT_FALSE(ladder.empty());
    const Event expected = reference.top();
    reference.pop();
    const Event got = ladder.pop_min();
    ASSERT_DOUBLE_EQ(got.time, expected.time);
    ASSERT_EQ(got.sequence, expected.sequence);
  }
  EXPECT_TRUE(ladder.empty());
  EXPECT_EQ(ladder.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  LadderEventQueue ladder;
  ReferenceQueue reference;
  std::uint64_t seq = 0;
  for (double t : {5.0, 1.0, 3.0, 2.0, 4.0, 0.5, 2.5}) {
    const Event e{t, seq++, {}};
    ladder.push(e);
    reference.push(e);
  }
  EXPECT_EQ(ladder.size(), 7u);
  expect_same_drain(ladder, reference);
}

TEST(EventQueue, EqualTimesBreakTiesBySequence) {
  LadderEventQueue ladder;
  ReferenceQueue reference;
  // All events at the same instant: pop order must be insertion order.
  for (std::uint64_t s = 0; s < 100; ++s) {
    const Event e{1.0, 99 - s, {}};
    ladder.push(e);
    reference.push(e);
  }
  std::uint64_t expected_seq = 0;
  while (!ladder.empty()) {
    const Event got = ladder.pop_min();
    EXPECT_DOUBLE_EQ(got.time, 1.0);
    EXPECT_EQ(got.sequence, expected_seq++);
    reference.pop();
  }
  EXPECT_EQ(expected_seq, 100u);
}

TEST(EventQueue, RandomInterleavingMatchesReference) {
  // The scheduler's usage pattern: pushes land at or after the current
  // drain time (events are scheduled at now + dt, dt >= 0).
  for (std::uint64_t seed : {1u, 7u, 23u, 99u, 12345u}) {
    LadderEventQueue ladder;
    ReferenceQueue reference;
    Rng rng(seed);
    std::uint64_t seq = 0;
    double now = 0.0;
    for (int step = 0; step < 20000; ++step) {
      const bool push = reference.empty() || rng.uniform(0.0, 1.0) < 0.55;
      if (push) {
        // Mostly short hops; occasional far-future events exercise the far
        // list and epoch rebuilds. ~20% exact ties with the current time.
        double dt = rng.uniform(0.0, 1.0) < 0.2
                        ? 0.0
                        : rng.uniform(0.0, rng.uniform(0.0, 1.0) < 0.1
                                               ? 1e3
                                               : 1.0);
        const Event e{now + dt, seq++, {}};
        ladder.push(e);
        reference.push(e);
      } else {
        const Event expected = reference.top();
        reference.pop();
        const Event got = ladder.pop_min();
        ASSERT_DOUBLE_EQ(got.time, expected.time);
        ASSERT_EQ(got.sequence, expected.sequence);
        now = got.time;
      }
      ASSERT_EQ(ladder.size(), reference.size());
    }
    expect_same_drain(ladder, reference);
  }
}

TEST(EventQueue, BurstsOfTiesAtIrregularTimes) {
  // Collective-heavy simulations resume whole waves of coroutines at one
  // instant; the draining-bucket insert path must keep ties FIFO.
  for (std::uint64_t seed : {3u, 17u}) {
    LadderEventQueue ladder;
    ReferenceQueue reference;
    Rng rng(seed);
    std::uint64_t seq = 0;
    double now = 0.0;
    for (int wave = 0; wave < 500; ++wave) {
      now += rng.uniform(0.0, 0.01);
      const int burst = 1 + static_cast<int>(rng.uniform(0.0, 16.0));
      for (int i = 0; i < burst; ++i) {
        const Event e{now, seq++, {}};
        ladder.push(e);
        reference.push(e);
      }
      // Drain roughly half the backlog between waves.
      for (std::size_t pops = reference.size() / 2; pops > 0; --pops) {
        const Event expected = reference.top();
        reference.pop();
        const Event got = ladder.pop_min();
        ASSERT_DOUBLE_EQ(got.time, expected.time);
        ASSERT_EQ(got.sequence, expected.sequence);
        now = got.time;
      }
    }
    expect_same_drain(ladder, reference);
  }
}

TEST(EventQueue, SparseTimesForceEpochRebuilds) {
  // Times spread over ten orders of magnitude: every drain hits the far
  // list and rebuilds the epoch with a new adaptive width.
  LadderEventQueue ladder;
  ReferenceQueue reference;
  std::uint64_t seq = 0;
  for (int exponent = 9; exponent >= 0; --exponent) {
    for (int k = 0; k < 8; ++k) {
      const Event e{std::pow(10.0, exponent) + k, seq++, {}};
      ladder.push(e);
      reference.push(e);
    }
  }
  expect_same_drain(ladder, reference);
}

TEST(EventQueue, TelemetryCountsPushPopAndRebuilds) {
  LadderEventQueue ladder;
  QueueTelemetry telemetry;
  ladder.bind_telemetry(&telemetry);
  // Enough pending events to exceed the linear-scan threshold, so the
  // first pop builds an epoch (a rebuild) and samples occupancy.
  std::uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    ladder.push(Event{static_cast<double>(i), seq++, {}});
  }
  EXPECT_EQ(telemetry.pushes, 100u);
  EXPECT_EQ(telemetry.far_inserts, 100u);  // empty ladder: all go far
  EXPECT_EQ(telemetry.pops, 0u);
  while (!ladder.empty()) (void)ladder.pop_min();
  EXPECT_EQ(telemetry.pops, 100u);
  EXPECT_GE(telemetry.rebuilds, 1u);
  ASSERT_FALSE(telemetry.occupancy.empty());
  EXPECT_EQ(telemetry.occupancy.size(), telemetry.rebuilds);
  // The first rebuild happened with all 100 events pending.
  EXPECT_EQ(telemetry.occupancy.front().depth, 100u);
  EXPECT_DOUBLE_EQ(telemetry.occupancy.front().time, 0.0);
}

TEST(EventQueue, TelemetryDetachesOnNullBind) {
  LadderEventQueue ladder;
  QueueTelemetry telemetry;
  ladder.bind_telemetry(&telemetry);
  ladder.push(Event{1.0, 0, {}});
  ladder.bind_telemetry(nullptr);
  ladder.push(Event{2.0, 1, {}});
  (void)ladder.pop_min();
  EXPECT_EQ(telemetry.pushes, 1u);
  EXPECT_EQ(telemetry.pops, 0u);
}

TEST(EventQueue, TelemetryOccupancySamplesAreBounded) {
  LadderEventQueue ladder;
  QueueTelemetry telemetry;
  ladder.bind_telemetry(&telemetry);
  std::uint64_t seq = 0;
  double now = 0.0;
  // Thousands of sparse drains force a rebuild per wave; the sample buffer
  // must clamp at kMaxSamples while the rebuild counter keeps counting.
  for (int wave = 0; wave < static_cast<int>(QueueTelemetry::kMaxSamples) + 64;
       ++wave) {
    for (int i = 0; i < 20; ++i) {
      ladder.push(Event{now + 1.0 + 0.01 * i, seq++, {}});
    }
    while (!ladder.empty()) {
      now = ladder.pop_min().time;
    }
  }
  EXPECT_GT(telemetry.rebuilds, QueueTelemetry::kMaxSamples);
  EXPECT_EQ(telemetry.occupancy.size(), QueueTelemetry::kMaxSamples);
}

TEST(EventQueue, ReusableAcrossFullDrains) {
  // The slabs survive a full drain; a reused queue behaves like a fresh one.
  LadderEventQueue ladder;
  for (int round = 0; round < 3; ++round) {
    ReferenceQueue reference;
    std::uint64_t seq = 0;
    Rng rng(static_cast<std::uint64_t>(round) + 1);
    for (int i = 0; i < 1000; ++i) {
      const Event e{rng.uniform(0.0, 100.0), seq++, {}};
      ladder.push(e);
      reference.push(e);
    }
    expect_same_drain(ladder, reference);
  }
}

}  // namespace
}  // namespace hetscale::des
