#include "hetscale/des/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "hetscale/des/scheduler.hpp"

namespace hetscale::des {
namespace {

Task<int> return_forty_two() { co_return 42; }

Task<int> add(int a, int b) { co_return a + b; }

Task<int> nested_sum() {
  const int x = co_await add(1, 2);
  const int y = co_await add(x, 10);
  co_return y;
}

Task<void> throws_logic_error() {
  throw std::logic_error("boom");
  co_return;  // unreachable; makes this a coroutine
}

Task<int> rethrows_from_child() {
  co_await throws_logic_error();
  co_return 1;
}

Task<void> drive(std::vector<int>& out) {
  out.push_back(co_await return_forty_two());
  out.push_back(co_await nested_sum());
}

TEST(Task, ValueFlowsThroughCoAwaitChains) {
  Scheduler sched;
  std::vector<int> out;
  sched.spawn(drive(out));
  sched.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 42);
  EXPECT_EQ(out[1], 13);
}

TEST(Task, LazyUntilAwaited) {
  bool started = false;
  auto lazy = [&]() -> Task<void> {
    started = true;
    co_return;
  };
  Task<void> task = lazy();
  EXPECT_FALSE(started);
  EXPECT_TRUE(task.valid());
  EXPECT_FALSE(task.done());
  Scheduler sched;
  sched.spawn(std::move(task));
  EXPECT_FALSE(started);  // still lazy: starts when the scheduler runs
  sched.run();
  EXPECT_TRUE(started);
}

TEST(Task, ExceptionsPropagateThroughAwait) {
  Scheduler sched;
  sched.spawn([]() -> Task<void> {
    EXPECT_THROW(co_await rethrows_from_child(), std::logic_error);
  }());
  sched.run();
}

TEST(Task, RootExceptionSurfacesFromRun) {
  Scheduler sched;
  sched.spawn(throws_logic_error());
  EXPECT_THROW(sched.run(), std::logic_error);
}

TEST(Task, MoveTransfersOwnership) {
  Task<int> a = return_forty_two();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserting it
  EXPECT_TRUE(b.valid());
}

TEST(Task, DestroyWithoutRunningDoesNotLeakOrCrash) {
  { Task<int> t = return_forty_two(); }  // never awaited
  SUCCEED();
}

}  // namespace
}  // namespace hetscale::des
