#include "hetscale/des/timeline.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"

namespace hetscale::des {
namespace {

TEST(Timeline, IdleResourceStartsImmediately) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.reserve(5.0, 2.0), 7.0);
  EXPECT_DOUBLE_EQ(t.free_at(), 7.0);
}

TEST(Timeline, BusyResourceQueuesFifo) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.reserve(0.0, 3.0), 3.0);
  // Requested at t=1 while busy until 3: starts at 3, ends at 5.
  EXPECT_DOUBLE_EQ(t.reserve(1.0, 2.0), 5.0);
  // Requested at t=10 when already free: starts at 10.
  EXPECT_DOUBLE_EQ(t.reserve(10.0, 1.0), 11.0);
}

TEST(Timeline, ZeroDurationReservationsAllowed) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.reserve(2.0, 0.0), 2.0);
}

TEST(Timeline, ZeroDurationOccupancyBetweenBusyFrames) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.reserve(1.0, 2.0), 3.0);
  // A zero-length frame queued while the line is busy neither blocks the
  // queue nor accrues busy time — it "completes" the instant the line
  // frees.
  EXPECT_DOUBLE_EQ(t.reserve(2.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(t.reserve(3.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 3.0);
  EXPECT_DOUBLE_EQ(t.free_at(), 4.0);
}

TEST(Timeline, ZeroDurationOnIdleLineAdvancesTheClockOnly) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.reserve(5.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(t.free_at(), 5.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 0.0);
  // An earlier-stamped frame after it still queues FIFO behind the marker.
  EXPECT_DOUBLE_EQ(t.reserve(1.0, 2.0), 7.0);
}

TEST(Timeline, BackToBackFramesAtIdenticalTimestamps) {
  Timeline t;
  // Three frames submitted at the same instant serialize in submission
  // order with no gaps — strict FIFO.
  EXPECT_DOUBLE_EQ(t.reserve(5.0, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(t.reserve(5.0, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(t.reserve(5.0, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 3.0);
  EXPECT_DOUBLE_EQ(t.free_at(), 8.0);
}

TEST(Timeline, AccumulatesBusyTime) {
  Timeline t;
  t.reserve(0.0, 3.0);
  t.reserve(0.0, 2.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 5.0);
}

TEST(Timeline, ResetClearsState) {
  Timeline t;
  t.reserve(0.0, 3.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.free_at(), 0.0);
  EXPECT_DOUBLE_EQ(t.busy_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.reserve(1.0, 1.0), 2.0);
}

TEST(Timeline, NegativeInputsRejected) {
  Timeline t;
  EXPECT_THROW(t.reserve(-1.0, 1.0), PreconditionError);
  EXPECT_THROW(t.reserve(1.0, -1.0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::des
