#include "hetscale/des/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hetscale/des/scheduler.hpp"

namespace hetscale::des {
namespace {

TEST(SpinBarrier, RendezvousPublishesPriorWrites) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        // Every participant's increment for this round must be visible.
        if (counter.load(std::memory_order_relaxed) < (round + 1) * kThreads) {
          failed.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(SchedulerWindow, NextEventTimeSeesPendingFront) {
  Scheduler sched;
  EXPECT_TRUE(std::isinf(sched.next_event_time()));
  sched.spawn([](Scheduler& s) -> Task<void> {
    co_await s.delay(2.0);
  }(sched));
  // spawn is lazy: the root's first resumption pends at the current time.
  EXPECT_DOUBLE_EQ(sched.next_event_time(), 0.0);
  sched.run_window(1.0);
  EXPECT_DOUBLE_EQ(sched.next_event_time(), 2.0);  // the delay remains
  sched.run_window(3.0);
  EXPECT_TRUE(std::isinf(sched.next_event_time()));
}

TEST(SchedulerWindow, RunWindowStopsStrictlyBeforeEnd) {
  Scheduler sched;
  std::vector<double> fired;
  auto proc = [](Scheduler& s, std::vector<double>& out,
                 double at) -> Task<void> {
    co_await s.delay(at);
    out.push_back(s.now());
  };
  sched.spawn(proc(sched, fired, 1.0));
  sched.spawn(proc(sched, fired, 2.0));
  sched.spawn(proc(sched, fired, 3.0));
  sched.run_window(2.0);  // half-open: events with time < 2.0
  EXPECT_EQ(fired, (std::vector<double>{1.0}));
  sched.run_window(std::numeric_limits<SimTime>::infinity());
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0}));
  sched.check_roots();  // all roots finished; must not throw
}

TEST(SchedulerWindow, WindowedRunMatchesSequentialRun) {
  auto model = [](Scheduler& s, std::vector<double>& out) {
    auto proc = [](Scheduler& sc, std::vector<double>& o, double step,
                   int hops) -> Task<void> {
      for (int i = 0; i < hops; ++i) {
        co_await sc.delay(step);
        o.push_back(sc.now());
      }
    };
    s.spawn(proc(s, out, 0.75, 5));
    s.spawn(proc(s, out, 1.0, 4));
  };

  Scheduler whole;
  std::vector<double> sequential;
  model(whole, sequential);
  whole.run();

  Scheduler windowed;
  std::vector<double> chunked;
  model(windowed, chunked);
  // Arbitrary uneven windows: chunking must not reorder anything.
  for (double end : {0.5, 1.6, 1.7, 3.0, 10.0}) windowed.run_window(end);
  EXPECT_EQ(sequential, chunked);
  EXPECT_EQ(whole.events_processed(), windowed.events_processed());
  EXPECT_EQ(whole.now(), windowed.now());  // bit-equal
}

TEST(RunConservative, DrivesPartitionsToQuiescence) {
  Scheduler a;
  Scheduler b;
  std::vector<double> seen_a;
  std::vector<double> seen_b;
  auto ticks = [](Scheduler& s, std::vector<double>& out, double step,
                  int hops) -> Task<void> {
    for (int i = 0; i < hops; ++i) {
      co_await s.delay(step);
      out.push_back(s.now());
    }
  };
  PartitionHooks hooks;
  hooks.bootstrap = [&](int partition) {
    if (partition == 0) {
      a.spawn(ticks(a, seen_a, 0.5, 6));
    } else {
      b.spawn(ticks(b, seen_b, 0.7, 4));
    }
  };
  hooks.deliver = [](int) {};
  const auto errors = run_conservative({&a, &b}, 0.25, hooks);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0], nullptr);
  EXPECT_EQ(errors[1], nullptr);
  EXPECT_EQ(seen_a.size(), 6u);
  EXPECT_EQ(seen_b.size(), 4u);
  EXPECT_DOUBLE_EQ(a.now(), 3.0);
  EXPECT_DOUBLE_EQ(b.now(), 2.8);
}

TEST(RunConservative, CrossPartitionHandoffDeliversInWindows) {
  // Partition 0 produces timestamps, partition 1 consumes them one window
  // later through the deliver hook — the vmpi machine's hand-off pattern
  // in miniature.
  Scheduler producer;
  Scheduler consumer;
  constexpr double kLookahead = 0.1;
  std::vector<double> handoff;     // written by partition 0's window
  std::vector<double> delivered;   // observed by partition 1
  PartitionHooks hooks;
  hooks.bootstrap = [&](int partition) {
    if (partition == 0) {
      producer.spawn([](Scheduler& s, std::vector<double>& out) -> Task<void> {
        for (int i = 0; i < 3; ++i) {
          co_await s.delay(1.0);
          out.push_back(s.now());
        }
      }(producer, handoff));
    }
  };
  hooks.deliver = [&](int partition) {
    if (partition != 1) return;
    for (double t : handoff) delivered.push_back(t);
    handoff.clear();
  };
  const auto errors = run_conservative({&producer, &consumer}, kLookahead,
                                       hooks);
  EXPECT_EQ(errors[0], nullptr);
  EXPECT_EQ(errors[1], nullptr);
  EXPECT_EQ(delivered, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(RunConservative, PartitionFailureReachesItsErrorSlot) {
  Scheduler healthy;
  Scheduler faulty;
  PartitionHooks hooks;
  hooks.bootstrap = [&](int partition) {
    if (partition == 0) {
      healthy.spawn([](Scheduler& s) -> Task<void> {
        for (int i = 0; i < 100; ++i) co_await s.delay(1.0);
      }(healthy));
    } else {
      faulty.spawn([](Scheduler& s) -> Task<void> {
        co_await s.delay(5.0);
        throw std::runtime_error("partition blew up");
      }(faulty));
    }
  };
  hooks.deliver = [](int) {};
  const auto errors = run_conservative({&healthy, &faulty}, 0.5, hooks);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0], nullptr);
  ASSERT_NE(errors[1], nullptr);
  EXPECT_THROW(std::rethrow_exception(errors[1]), std::runtime_error);
}

TEST(RunConservative, SuspendedRootReportsDeadlock) {
  // A root that suspends forever (its continuation handle is dropped) can
  // never finish: quiescence must surface DeadlockError for that
  // partition, exactly as the sequential Scheduler::run() would.
  struct Never {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };
  Scheduler stuck;
  Scheduler fine;
  PartitionHooks hooks;
  hooks.bootstrap = [&](int partition) {
    if (partition == 0) {
      stuck.spawn([](Scheduler&) -> Task<void> { co_await Never{}; }(stuck));
    } else {
      fine.spawn([](Scheduler& s) -> Task<void> {
        co_await s.delay(1.0);
      }(fine));
    }
  };
  hooks.deliver = [](int) {};
  const auto errors = run_conservative({&stuck, &fine}, 1.0, hooks);
  ASSERT_NE(errors[0], nullptr);
  EXPECT_THROW(std::rethrow_exception(errors[0]), DeadlockError);
  EXPECT_EQ(errors[1], nullptr);
}

}  // namespace
}  // namespace hetscale::des
