#include "hetscale/des/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hetscale/support/error.hpp"

namespace hetscale::des {
namespace {

TEST(Scheduler, ClockStartsAtZero) {
  Scheduler sched;
  EXPECT_DOUBLE_EQ(sched.now(), 0.0);
}

TEST(Scheduler, DelayAdvancesVirtualTime) {
  Scheduler sched;
  double observed = -1.0;
  sched.spawn([](Scheduler& s, double& out) -> Task<void> {
    co_await s.delay(2.5);
    out = s.now();
  }(sched, observed));
  sched.run();
  EXPECT_DOUBLE_EQ(observed, 2.5);
  EXPECT_DOUBLE_EQ(sched.now(), 2.5);
}

TEST(Scheduler, EventsFireInTimeOrderAcrossProcesses) {
  Scheduler sched;
  std::vector<int> order;
  auto proc = [](Scheduler& s, std::vector<int>& out, double delay,
                 int id) -> Task<void> {
    co_await s.delay(delay);
    out.push_back(id);
  };
  sched.spawn(proc(sched, order, 3.0, 3));
  sched.spawn(proc(sched, order, 1.0, 1));
  sched.spawn(proc(sched, order, 2.0, 2));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, EqualTimesPreserveScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  auto proc = [](Scheduler& s, std::vector<int>& out, int id) -> Task<void> {
    co_await s.delay(1.0);
    out.push_back(id);
  };
  for (int id = 0; id < 8; ++id) sched.spawn(proc(sched, order, id));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Scheduler, ZeroDelayStillYields) {
  Scheduler sched;
  std::vector<int> order;
  sched.spawn([](Scheduler& s, std::vector<int>& out) -> Task<void> {
    out.push_back(1);
    co_await s.delay(0.0);
    out.push_back(3);
  }(sched, order));
  sched.spawn([](Scheduler&, std::vector<int>& out) -> Task<void> {
    out.push_back(2);
    co_return;
  }(sched, order));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, NegativeDelayRejected) {
  Scheduler sched;
  sched.spawn([](Scheduler& s) -> Task<void> {
    EXPECT_THROW(s.delay(-1.0), PreconditionError);
    co_return;
  }(sched));
  sched.run();
}

TEST(Scheduler, ResumeAtPastRejected) {
  Scheduler sched;
  sched.spawn([](Scheduler& s) -> Task<void> {
    co_await s.delay(5.0);
    EXPECT_THROW(s.resume_at(1.0), PreconditionError);
  }(sched));
  sched.run();
}

TEST(Scheduler, CountsProcessedEvents) {
  Scheduler sched;
  sched.spawn([](Scheduler& s) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await s.delay(1.0);
  }(sched));
  sched.run();
  // 1 spawn resumption + 10 delays.
  EXPECT_EQ(sched.events_processed(), 11u);
}

TEST(Scheduler, ManyProcessesManyEvents) {
  Scheduler sched;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    sched.spawn([](Scheduler& s, int id, double& out) -> Task<void> {
      for (int k = 0; k < 50; ++k) co_await s.delay(0.5 + 0.01 * id);
      out = s.now();
    }(sched, i, last));
  }
  sched.run();
  EXPECT_NEAR(last, 50 * (0.5 + 0.01 * 99), 1e-9);
}

TEST(Scheduler, RunWithNoWorkIsNoop) {
  Scheduler sched;
  sched.run();
  EXPECT_DOUBLE_EQ(sched.now(), 0.0);
}

TEST(Scheduler, TracksQueueDepthHighWaterMark) {
  Scheduler sched;
  EXPECT_EQ(sched.max_queue_depth(), 0u);
  // 5 processes pending at once right after the spawns; each then drains
  // one event at a time, so the high-water mark is the spawn burst.
  for (int i = 0; i < 5; ++i) {
    sched.spawn([](Scheduler& s) -> Task<void> {
      co_await s.delay(1.0);
      co_await s.delay(1.0);
    }(sched));
  }
  sched.run();
  EXPECT_EQ(sched.max_queue_depth(), 5u);
}

}  // namespace
}  // namespace hetscale::des
