// Randomized stress of the DES + vmpi stack: many ranks, random
// point-to-point traffic and random collectives, with self-checking
// invariants (token conservation, delivery exactness, virtual-time
// monotonicity). Deterministic per seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hetscale/support/rng.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {
namespace {

using des::Task;

machine::Cluster random_cluster(Rng& rng, int nodes) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    machine::NodeSpec spec;
    spec.model = "S" + std::to_string(i);
    spec.cpus = 1;
    spec.cpu_rate_flops = units::mflops(rng.uniform(5.0, 200.0));
    spec.memory_bytes = 1e9;
    spec.benchmark_bias = {1.0};
    cluster.add_node("s-" + std::to_string(i), spec);
  }
  return cluster;
}

struct StressPlan {
  // exchange[r][k] = amount rank r sends to peer (r + k) mod p in round k.
  std::vector<std::vector<double>> amounts;
  std::vector<double> compute_flops;
  int rounds = 0;
};

StressPlan make_plan(Rng& rng, int p, int rounds) {
  StressPlan plan;
  plan.rounds = rounds;
  plan.amounts.resize(static_cast<std::size_t>(p));
  for (auto& per_round : plan.amounts) {
    for (int k = 0; k < rounds; ++k) {
      per_round.push_back(rng.uniform(1.0, 100.0));
    }
  }
  for (int r = 0; r < p; ++r) {
    plan.compute_flops.push_back(rng.uniform(1e5, 5e6));
  }
  return plan;
}

/// Every rank alternates compute, a shifted exchange of "credits", and an
/// occasional collective; at the end the global credit sum must be exactly
/// preserved and every rank's clock must have advanced monotonically.
Task<void> stress_rank(Comm& comm, const StressPlan& plan,
                       std::vector<double>& credits,
                       std::vector<double>& final_time) {
  constexpr int kTag = 500;
  const int rank = comm.rank();
  const int p = comm.size();
  double credit = 1000.0;
  double last_time = comm.now();

  for (int round = 0; round < plan.rounds; ++round) {
    co_await comm.compute(
        plan.compute_flops[static_cast<std::size_t>(rank)]);
    EXPECT_GE(comm.now(), last_time);
    last_time = comm.now();

    const int dst = (rank + round + 1) % p;
    const int src = (rank - round - 1 + p * plan.rounds) % p;
    if (dst != rank) {
      const double sent =
          plan.amounts[static_cast<std::size_t>(rank)]
                      [static_cast<std::size_t>(round)];
      credit -= sent;
      co_await comm.send(dst, kTag + round, 64.0, Payload(sent));
      const auto message = co_await comm.recv(src, kTag + round);
      credit += message.value<double>();
    }
    if (round % 3 == 2) {
      const double total = co_await comm.allreduce_sum(credit);
      EXPECT_NEAR(total, 1000.0 * p, 1e-6);
    }
  }
  credits[static_cast<std::size_t>(rank)] = credit;
  final_time[static_cast<std::size_t>(rank)] = comm.now();
}

class StressSeeds : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds,
                         ::testing::Values(1, 7, 23, 99, 12345));

TEST_P(StressSeeds, CreditsConservedUnderRandomTraffic) {
  Rng rng(GetParam());
  const int nodes = static_cast<int>(rng.uniform_int(3, 12));
  const int rounds = static_cast<int>(rng.uniform_int(4, 12));
  auto cluster = random_cluster(rng, nodes);
  const auto plan = make_plan(rng, nodes, rounds);

  auto machine = Machine::switched(std::move(cluster));
  auto credits = std::make_shared<std::vector<double>>(nodes, 0.0);
  auto times = std::make_shared<std::vector<double>>(nodes, 0.0);
  machine.run([&plan, credits, times](Comm& comm) -> Task<void> {
    return stress_rank(comm, plan, *credits, *times);
  });

  double total = 0.0;
  for (double credit : *credits) total += credit;
  EXPECT_NEAR(total, 1000.0 * nodes, 1e-6);
  for (double t : *times) EXPECT_GT(t, 0.0);
}

TEST_P(StressSeeds, BitIdenticalReplay) {
  auto run_once = [&] {
    Rng rng(GetParam());
    const int nodes = static_cast<int>(rng.uniform_int(3, 12));
    const int rounds = static_cast<int>(rng.uniform_int(4, 12));
    auto cluster = random_cluster(rng, nodes);
    const auto plan = make_plan(rng, nodes, rounds);
    auto machine = Machine::switched(std::move(cluster));
    auto credits = std::make_shared<std::vector<double>>(nodes, 0.0);
    auto times = std::make_shared<std::vector<double>>(nodes, 0.0);
    machine.run([&plan, credits, times](Comm& comm) -> Task<void> {
      return stress_rank(comm, plan, *credits, *times);
    });
    return std::make_pair(*credits, *times);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);    // exact, not approximate
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace hetscale::vmpi
