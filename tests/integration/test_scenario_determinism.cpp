// Determinism regression suite for the paper artifacts.
//
// Two independent guarantees, pinned here so hot-path work on the event
// queue, the message plane, or the kernels cannot silently change results:
//
//   1. Job invariance — every scenario renders byte-identical output at
//      --jobs 1 and --jobs 4. The measurement store is disabled for the
//      comparison so the second run genuinely recomputes.
//   2. Golden artifacts — the CSV output matches the checked-in golden
//      files (tests/golden/), byte for byte.
//
// Plus the scheduler-level invariants: replaying one simulation yields the
// same events_processed() and the same final now().
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "hetscale/algos/ge.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/support/args.hpp"
#include "hetscale/run/scenario.hpp"
#include "hetscale/scal/combination.hpp"
#include "hetscale/scal/measure_store.hpp"
#include "hetscale/scenarios/dist2d.hpp"
#include "hetscale/scenarios/large_p.hpp"
#include "hetscale/scenarios/paper.hpp"
#include "hetscale/scenarios/zoo.hpp"

namespace hetscale {
namespace {

/// Run the scenarios without the cross-scenario store: job invariance must
/// hold from genuine recomputation, not from shared memoization.
class StoreDisabledScope {
 public:
  StoreDisabledScope() : was_enabled_(scal::MeasurementStore::global().enabled()) {
    scal::MeasurementStore::global().set_enabled(false);
  }
  ~StoreDisabledScope() {
    scal::MeasurementStore::global().set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

std::string render_csv(const std::string& scenario_name, int jobs) {
  scenarios::register_paper_scenarios();
  scenarios::register_dist2d_scenarios();
  scenarios::register_zoo_scenarios();
  scenarios::register_large_p_scenarios();
  const run::Scenario* scenario = run::find_scenario(scenario_name);
  if (scenario == nullptr) ADD_FAILURE() << "unknown scenario " << scenario_name;
  run::Runner runner(jobs);
  const run::RunContext context{runner, run::OutputFormat::kCsv, 0};
  const run::RunResult result = scenario->run(context);
  std::string storage;
  return run::render(result, run::OutputFormat::kCsv, storage);
}

std::string read_golden(const std::string& scenario_name) {
  const std::string path =
      std::string(HETSCALE_TEST_GOLDEN_DIR) + "/" + scenario_name + ".csv";
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    ADD_FAILURE() << "missing golden file " << path;
    return {};
  }
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

/// Pin the process-wide --sim-threads knob for one scope. New machines
/// read global_sim_threads() at construction, so this is all a scenario
/// render needs to run partitioned.
class ScopedSimThreads {
 public:
  explicit ScopedSimThreads(int threads)
      : previous_(global_sim_threads()) {
    set_global_sim_threads(threads);
  }
  ~ScopedSimThreads() { set_global_sim_threads(previous_); }

 private:
  int previous_;
};

class ScenarioDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioDeterminism, JobInvariantAndMatchesGolden) {
  const std::string name = GetParam();
  StoreDisabledScope no_store;
  const std::string jobs1 = render_csv(name, 1);
  const std::string jobs4 = render_csv(name, 4);
  EXPECT_EQ(jobs1, jobs4) << name << ": artifact depends on --jobs";
  EXPECT_EQ(jobs1, read_golden(name)) << name << ": artifact drifted from golden";
}

INSTANTIATE_TEST_SUITE_P(PaperArtifacts, ScenarioDeterminism,
                         ::testing::Values("table1_marked_speed",
                                           "table2_ge_two_nodes",
                                           "table3_ge_required_rank",
                                           "table4_ge_scalability",
                                           "table5_mm_scalability",
                                           "table6_ge_predicted_rank",
                                           "table7_ge_predicted_scalability",
                                           "fig1_ge_speed_efficiency",
                                           "fig2_mm_speed_efficiency",
                                           "summa_mm_scalability",
                                           "ge_pivot_scalability",
                                           "spmv_imbalance",
                                           "model_zoo_ranking",
                                           "large_p_scalability"));

// Sim-thread invariance: the partitioned conservative scheduler
// (--sim-threads > 1) must render every golden artifact byte-identically.
// Scenarios whose machines are ineligible for partitioning (shared bus, no
// lookahead) fall back to the sequential schedule and pass trivially —
// that fallback staying silent and exact is part of the contract too.
class SimThreadInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(SimThreadInvariance, PartitionedRenderMatchesGolden) {
  const std::string name = GetParam();
  StoreDisabledScope no_store;
  const std::string golden = read_golden(name);
  {
    ScopedSimThreads two(2);
    EXPECT_EQ(render_csv(name, 1), golden)
        << name << ": artifact depends on --sim-threads 2";
  }
  {
    ScopedSimThreads eight(8);
    EXPECT_EQ(render_csv(name, 1), golden)
        << name << ": artifact depends on --sim-threads 8";
    // Replication parallelism (--jobs) on top of simulation parallelism:
    // the two knobs must compose without touching the bytes.
    EXPECT_EQ(render_csv(name, 4), golden)
        << name << ": --jobs x --sim-threads interaction leaks into bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(GoldenArtifacts, SimThreadInvariance,
                         ::testing::Values("table1_marked_speed",
                                           "table2_ge_two_nodes",
                                           "table3_ge_required_rank",
                                           "table4_ge_scalability",
                                           "table5_mm_scalability",
                                           "table6_ge_predicted_rank",
                                           "table7_ge_predicted_scalability",
                                           "fig1_ge_speed_efficiency",
                                           "fig2_mm_speed_efficiency",
                                           "summa_mm_scalability",
                                           "ge_pivot_scalability",
                                           "spmv_imbalance",
                                           "model_zoo_ranking",
                                           "large_p_scalability"));

TEST(SchedulerDeterminism, ReplayRepeatsEventCountAndFinalTime) {
  // One GE simulation, replayed on a fresh machine: the event count and the
  // final clock are part of the deterministic contract, not just the
  // elapsed-time artifact.
  const auto run_once = [] {
    auto machine = vmpi::Machine::switched(machine::sunwulf::ge_ensemble(4),
                                           net::NetworkParams{});
    algos::GeOptions options;
    options.n = 96;
    options.with_data = false;
    (void)algos::run_parallel_ge(machine, options);
    return std::pair{machine.scheduler().events_processed(),
                     machine.scheduler().now()};
  };
  const auto [events_a, now_a] = run_once();
  const auto [events_b, now_b] = run_once();
  EXPECT_GT(events_a, 0u);
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(now_a, now_b);  // bit-equal, not approximately
}

}  // namespace
}  // namespace hetscale
