// End-to-end checks of the instrumentation layer against the paper's
// scalability model: the profiled time budget partitions elapsed time, the
// measured t0/To reproduce the analytic predictions, and profiling never
// perturbs or destabilizes the simulated results.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/stats.hpp"
#include "hetscale/obs/profiler.hpp"
#include "hetscale/obs/report.hpp"
#include "hetscale/predict/models.hpp"
#include "hetscale/predict/probe.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/scal/measure_store.hpp"
#include "hetscale/scal/profile.hpp"
#include "hetscale/scenarios/paper.hpp"

namespace hetscale {
namespace {

// Keeps the cross-scenario measurement store out of the picture: these tests
// compare instrumentation captured from *actual* simulation runs, and a store
// hit would legitimately skip the run (and its profile) the second time.
class StoreDisabledScope {
 public:
  StoreDisabledScope()
      : was_enabled_(scal::MeasurementStore::global().enabled()) {
    scal::MeasurementStore::global().set_enabled(false);
  }
  ~StoreDisabledScope() {
    scal::MeasurementStore::global().set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

TEST(ProfileBudget, GePartitionSumsToElapsed) {
  auto combo = scenarios::make_ge(2);
  const auto profiled = scal::profile_run(*combo, 310);
  const obs::TimeBudget& budget = profiled.budget();
  EXPECT_DOUBLE_EQ(budget.total(), budget.elapsed_s);
  EXPECT_DOUBLE_EQ(budget.elapsed_s, profiled.measurement.seconds);
  EXPECT_GT(budget.compute_s, 0.0);
  EXPECT_GT(budget.comm_s, 0.0);
  EXPECT_GT(budget.sequential_s, 0.0);
  EXPECT_EQ(budget.fault_s, 0.0);  // healthy run
}

TEST(ProfileBudget, MeasuredOverheadTracksAnalyticModel) {
  const auto comm = predict::probe_comm_model(
      predict::ProbeConfig{.node = machine::sunwulf::sunblade_spec()});
  predict::GeOverheadModel model;

  for (const int nodes : {2, 4}) {
    auto combo = scenarios::make_ge(nodes);
    const std::int64_t n = nodes == 2 ? 310 : 480;
    const auto profiled = scal::profile_run(*combo, n);
    const obs::TimeBudget& budget = profiled.budget();

    const auto system = predict::system_model_for(
        machine::sunwulf::ge_ensemble(nodes), comm);
    const double t0_model =
        model.sequential_time(static_cast<double>(n), system);
    const double to_model = model.overhead(static_cast<double>(n), system);

    // The sweep can classify the pivot-normalize instants as t0 or To
    // depending on overlap, so compare the total non-parallel time.
    const double measured = budget.measured_t0() + budget.measured_to();
    EXPECT_LT(numeric::relative_error(measured, t0_model + to_model), 0.30)
        << "nodes=" << nodes << " measured=" << measured
        << " model=" << t0_model + to_model;
  }
}

TEST(ProfileBudget, ProfilingDoesNotPerturbMeasurement) {
  auto plain = scenarios::make_ge(2);
  const scal::Measurement& baseline = plain->measure(200);

  auto profiled_combo = scenarios::make_ge(2);
  const auto profiled = scal::profile_run(*profiled_combo, 200);

  // Bitwise equality: instrumentation must not alter simulated timing.
  EXPECT_EQ(profiled.measurement.seconds, baseline.seconds);
  EXPECT_EQ(profiled.measurement.work_flops, baseline.work_flops);
  EXPECT_EQ(profiled.measurement.speed_efficiency,
            baseline.speed_efficiency);
  EXPECT_EQ(profiled.measurement.overhead_s, baseline.overhead_s);
}

TEST(ProfileBudget, ReportJsonIsByteStableAcrossJobs) {
  StoreDisabledScope no_store;
  const std::vector<std::int64_t> sizes{50, 100, 150, 200, 250};
  auto render = [&](int jobs) {
    obs::Profiler profiler;
    {
      obs::ProfilerScope scope(profiler);
      auto combo = scenarios::make_ge(2);
      run::Runner runner(jobs);
      (void)combo->measure_many(sizes, runner);
    }
    obs::ReportOptions options;
    options.subject = "ge";
    std::ostringstream os;
    profiler.report(options).to_json(os);
    return os.str();
  };
  const std::string j1 = render(1);
  const std::string j8 = render(8);
  EXPECT_EQ(j1, j8);
  EXPECT_NE(j1.find("\"schema\": \"hetscale.obs.report/v1\""),
            std::string::npos);
}

TEST(ProfileBudget, ChromeTraceAndUtilizationComeAlong) {
  auto combo = scenarios::make_ge(2);
  const auto profiled = scal::profile_run(*combo, 100);
  EXPECT_NE(profiled.chrome_trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(profiled.utilization.find("rank"), std::string::npos);
  EXPECT_EQ(profiled.profile.messages > 0, true);
  EXPECT_GT(profiled.profile.des_events, 0u);
  EXPECT_GT(profiled.profile.wire_s, 0.0);
}

}  // namespace
}  // namespace hetscale
