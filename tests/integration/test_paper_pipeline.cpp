// End-to-end reproduction of the paper's measurement pipeline at reduced
// scale: Sunwulf ensembles, iso-solve for the target speed-efficiency,
// scalability series, GE-vs-MM comparison.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/series.hpp"

namespace hetscale::scal {
namespace {

std::unique_ptr<GeCombination> ge_combo(int nodes) {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(nodes);
  config.with_data = false;
  return std::make_unique<GeCombination>("GE-" + std::to_string(nodes),
                                         std::move(config));
}

std::unique_ptr<MmCombination> mm_combo(int nodes) {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::mm_ensemble(nodes);
  config.with_data = false;
  return std::make_unique<MmCombination>("MM-" + std::to_string(nodes),
                                         std::move(config));
}

TEST(PaperPipeline, GeRequiredSizeGrowsWithSystem) {
  // Table 3's qualitative content.
  auto g2 = ge_combo(2);
  auto g4 = ge_combo(4);
  auto g8 = ge_combo(8);
  std::vector<Combination*> combos{g2.get(), g4.get(), g8.get()};
  const auto report = scalability_series(combos, 0.3);
  ASSERT_TRUE(report.points[0].found);
  ASSERT_TRUE(report.points[1].found);
  ASSERT_TRUE(report.points[2].found);
  EXPECT_LT(report.points[0].n, report.points[1].n);
  EXPECT_LT(report.points[1].n, report.points[2].n);
  // Marked speed grows along the ladder.
  EXPECT_LT(report.points[0].marked_speed, report.points[1].marked_speed);
}

TEST(PaperPipeline, GeScalabilityBetweenZeroAndOne) {
  // Table 4's qualitative content: ψ < 1 (sequential portion + growing
  // communication), but not collapsing.
  auto g2 = ge_combo(2);
  auto g4 = ge_combo(4);
  std::vector<Combination*> combos{g2.get(), g4.get()};
  const auto report = scalability_series(combos, 0.3);
  ASSERT_EQ(report.steps.size(), 1u);
  EXPECT_GT(report.steps[0].psi, 0.2);
  EXPECT_LT(report.steps[0].psi, 1.0);
}

TEST(PaperPipeline, MmMoreScalableThanGe) {
  // §4.4.3: "the scalability of MM-Sunwulf combination is higher" — GE has
  // a sequential portion and per-step broadcasts/barriers that recur N
  // times. Compared over the 2→4→8 ladder at the paper's targets
  // (GE 0.3, MM 0.2), MM's cumulative ψ must come out ahead, and its later
  // steps individually so.
  auto g2 = ge_combo(2);
  auto g4 = ge_combo(4);
  auto g8 = ge_combo(8);
  std::vector<Combination*> ge{g2.get(), g4.get(), g8.get()};
  const auto ge_report = scalability_series(ge, 0.3);

  auto m2 = mm_combo(2);
  auto m4 = mm_combo(4);
  auto m8 = mm_combo(8);
  std::vector<Combination*> mm{m2.get(), m4.get(), m8.get()};
  const auto mm_report = scalability_series(mm, 0.2);

  for (const auto& point : ge_report.points) ASSERT_TRUE(point.found);
  for (const auto& point : mm_report.points) ASSERT_TRUE(point.found);
  EXPECT_GT(mm_report.cumulative_psi(), ge_report.cumulative_psi());
  EXPECT_GT(mm_report.steps[1].psi, ge_report.steps[1].psi);
}

TEST(PaperPipeline, OperatingPointsSatisfyIsoCondition) {
  // The solved points actually hold E_s ~ target (Definition 4's premise).
  auto g2 = ge_combo(2);
  const auto solved = required_problem_size(*g2, 0.3);
  ASSERT_TRUE(solved.found);
  EXPECT_GE(solved.achieved_es, 0.3);
  // Smallest such N: one size down misses the target.
  EXPECT_LT(g2->measure(solved.n - 1).speed_efficiency, 0.3);
}

TEST(PaperPipeline, Fig1VerificationDotStyleCheck) {
  // Fig. 1's gray-dot check: read N off the trend line, then measure at
  // that N and land near the target efficiency.
  auto g2 = ge_combo(2);
  IsoSolveOptions trend;
  trend.method = IsoSolveOptions::Method::kTrendLine;
  trend.trend_n_lo = 64;
  trend.trend_n_hi = 1024;
  const auto result = required_problem_size(*g2, 0.3, trend);
  ASSERT_TRUE(result.found);
  EXPECT_NEAR(result.achieved_es, 0.3, 0.05);
}

}  // namespace
}  // namespace hetscale::scal
