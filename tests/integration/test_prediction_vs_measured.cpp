// The paper's §4.5 headline: scalability predicted from measured machine
// parameters matches the measured scalability.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/numeric/stats.hpp"
#include "hetscale/predict/models.hpp"
#include "hetscale/predict/probe.hpp"
#include "hetscale/scal/series.hpp"

namespace hetscale {
namespace {

TEST(PredictionVsMeasured, GeRequiredSizeWithinModelError) {
  const auto comm = predict::probe_comm_model(
      predict::ProbeConfig{.node = machine::sunwulf::sunblade_spec()});
  predict::GeOverheadModel model;

  scal::ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(4);
  config.with_data = false;
  scal::GeCombination combo("GE-4", std::move(config));

  const auto measured = scal::required_problem_size(combo, 0.3);
  ASSERT_TRUE(measured.found);

  const auto system = predict::system_model_for(
      machine::sunwulf::ge_ensemble(4), comm);
  const auto predicted = predict::predicted_required_size(model, system, 0.3);

  EXPECT_LT(numeric::relative_error(static_cast<double>(predicted),
                                    static_cast<double>(measured.n)),
            0.30);
}

TEST(PredictionVsMeasured, GeScalabilityCloseToMeasured) {
  const auto comm = predict::probe_comm_model(
      predict::ProbeConfig{.node = machine::sunwulf::sunblade_spec()});
  predict::GeOverheadModel model;

  auto make_combo = [](int nodes) {
    scal::ClusterCombination::Config config;
    config.cluster = machine::sunwulf::ge_ensemble(nodes);
    config.with_data = false;
    return std::make_unique<scal::GeCombination>(
        "GE-" + std::to_string(nodes), std::move(config));
  };
  auto g2 = make_combo(2);
  auto g4 = make_combo(4);
  std::vector<scal::Combination*> combos{g2.get(), g4.get()};
  const auto measured = scal::scalability_series(combos, 0.3);

  const double predicted = predict::predicted_scalability(
      model,
      predict::system_model_for(machine::sunwulf::ge_ensemble(2), comm),
      predict::system_model_for(machine::sunwulf::ge_ensemble(4), comm),
      0.3);

  ASSERT_TRUE(measured.points[1].found);
  EXPECT_LT(numeric::relative_error(predicted, measured.steps[0].psi), 0.25);
}

}  // namespace
}  // namespace hetscale
