// §3.3: "the original homogeneous isospeed scalability metric is a special
// case of isospeed-efficiency scalability". On an all-SunBlade ensemble,
// C = p·C_blade, so ψ computed from marked speeds must equal ψ computed
// from processor counts — exactly, at the same operating points.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/scal/metrics.hpp"
#include "hetscale/scal/series.hpp"

namespace hetscale::scal {
namespace {

std::unique_ptr<GeCombination> homogeneous_ge(int nodes) {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::homogeneous_ensemble(nodes);
  config.with_data = false;
  return std::make_unique<GeCombination>("hom-" + std::to_string(nodes),
                                         std::move(config));
}

TEST(HomogeneousSpecialCase, PsiEqualsIsospeedForm) {
  auto g2 = homogeneous_ge(2);
  auto g4 = homogeneous_ge(4);
  auto g8 = homogeneous_ge(8);
  std::vector<Combination*> combos{g2.get(), g4.get(), g8.get()};
  const auto report = scalability_series(combos, 0.25);

  const int procs[] = {2, 4, 8};
  for (std::size_t i = 0; i + 1 < report.points.size(); ++i) {
    ASSERT_TRUE(report.points[i].found);
    ASSERT_TRUE(report.points[i + 1].found);
    const double via_isospeed = isospeed_scalability(
        procs[i], report.points[i].work, procs[i + 1],
        report.points[i + 1].work);
    EXPECT_NEAR(report.steps[i].psi, via_isospeed, 1e-9 * via_isospeed);
  }
}

TEST(HomogeneousSpecialCase, MarkedSpeedIsProportionalToP) {
  auto g2 = homogeneous_ge(2);
  auto g8 = homogeneous_ge(8);
  EXPECT_NEAR(g8->marked_speed(), 4.0 * g2->marked_speed(),
              1e-6 * g8->marked_speed());
}

}  // namespace
}  // namespace hetscale::scal
