// Property sweeps over randomly generated heterogeneous systems: the core
// invariants must hold for ANY node mix, not just the Sunwulf catalog.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "hetscale/algos/ge.hpp"
#include "hetscale/algos/mm.hpp"
#include "hetscale/algos/sort.hpp"
#include "hetscale/machine/cluster.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matmul.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/rng.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale {
namespace {

/// A random heterogeneous cluster: 2-6 nodes, 1-2 CPUs each, rates in
/// [10, 120] Mflops, flat benchmark bias (marked speed == rate).
machine::Cluster random_cluster(std::uint64_t seed) {
  Rng rng(seed);
  machine::Cluster cluster;
  const int nodes = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < nodes; ++i) {
    machine::NodeSpec spec;
    spec.model = "Rnd" + std::to_string(i);
    spec.cpus = static_cast<int>(rng.uniform_int(1, 2));
    spec.cpu_rate_flops = units::mflops(rng.uniform(10.0, 120.0));
    spec.memory_bytes = 1e9;
    spec.memory_bandwidth_Bps = 4e8;
    spec.benchmark_bias = {1.0, 1.0, 1.0, 1.0, 1.0};
    cluster.add_node("rnd-" + std::to_string(i), spec);
  }
  return cluster;
}

class RandomSystems : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystems,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST_P(RandomSystems, GeSolvesAndChargesExactWorkload) {
  auto machine = vmpi::Machine::switched(random_cluster(GetParam()));
  algos::GeOptions options;
  options.n = 48;
  options.seed = GetParam();
  const auto result = algos::run_parallel_ge(machine, options);
  EXPECT_LT(result.residual, 1e-8);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
}

TEST_P(RandomSystems, MmMultipliesAndChargesExactWorkload) {
  auto machine = vmpi::Machine::switched(random_cluster(GetParam()));
  algos::MmOptions options;
  options.n = 24;
  options.seed = GetParam();
  const auto result = algos::run_parallel_mm(machine, options);
  EXPECT_LT(numeric::max_abs_diff(result.c,
                                  numeric::multiply(result.a, result.b)),
            1e-10);
  EXPECT_DOUBLE_EQ(result.charged_flops, result.work_flops);
}

TEST_P(RandomSystems, SortSortsAndChargesWorkload) {
  auto cluster = random_cluster(GetParam());
  const int p = cluster.processor_count();
  auto machine = vmpi::Machine::switched(std::move(cluster));
  algos::SortOptions options;
  options.n = std::max<std::int64_t>(512, 2 * p * p);
  options.seed = GetParam();
  const auto result = algos::run_parallel_sort(machine, options);
  EXPECT_TRUE(std::is_sorted(result.sorted.begin(), result.sorted.end()));
  EXPECT_EQ(result.sorted.size(), static_cast<std::size_t>(options.n));
  EXPECT_NEAR(result.charged_flops, result.work_flops,
              1e-9 * result.work_flops);
}

TEST_P(RandomSystems, GeTimingInvariantUnderWithData) {
  auto m1 = vmpi::Machine::switched(random_cluster(GetParam()));
  auto m2 = vmpi::Machine::switched(random_cluster(GetParam()));
  algos::GeOptions with;
  with.n = 32;
  algos::GeOptions without = with;
  without.with_data = false;
  EXPECT_EQ(algos::run_parallel_ge(m1, with).run.elapsed,
            algos::run_parallel_ge(m2, without).run.elapsed);
}

TEST_P(RandomSystems, ElapsedEqualsSchedulerDrainTime) {
  auto machine = vmpi::Machine::switched(random_cluster(GetParam()));
  algos::MmOptions options;
  options.n = 20;
  options.with_data = false;
  const auto result = algos::run_parallel_mm(machine, options);
  EXPECT_DOUBLE_EQ(result.run.elapsed, machine.scheduler().now());
}

}  // namespace
}  // namespace hetscale
