// The PR's acceptance gate: a GE or MM run under an *active* FaultPlan is
// bit-identical across repetitions and across Runner jobs counts, and the
// fault scenarios are registered and runnable.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/run/scenario.hpp"
#include "hetscale/scal/combination.hpp"
#include "hetscale/scal/fault_study.hpp"
#include "hetscale/scenarios/fault.hpp"

namespace hetscale::scal {
namespace {

ClusterCombination::Config ge_config() {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(2);
  return config;
}

// An aggressive plan whose windows are short enough that every fault class
// is live inside even a small run: stragglers and link degradation cycling
// every 10 ms, message loss, and seeded crashes with cheap checkpoints.
fault::FaultPlan active_plan(std::uint64_t seed, int ranks) {
  fault::PlanSpec spec;
  spec.slowdown_probability = 1.0;
  spec.slowdown_factor = 0.5;
  spec.slowdown_duty = 0.5;
  spec.slowdown_period_s = 0.01;
  spec.link_duty = 0.5;
  spec.link_period_s = 0.01;
  spec.link_bandwidth_factor = 0.5;
  spec.link_extra_latency_s = 1e-4;
  spec.crash_rate_per_s = 2.0;
  spec.restart_delay_s = 0.005;
  spec.loss.drop_probability = 0.1;
  spec.checkpoint.interval_s = 0.02;
  spec.checkpoint.bytes = 1e4;
  spec.horizon_s = 2.0;
  return fault::FaultPlan::generate(seed, spec, ranks);
}

void expect_identical(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.work_flops, b.work_flops);
  EXPECT_EQ(a.seconds, b.seconds);  // exact: bit-reproducibility is the gate
  EXPECT_EQ(a.speed_flops, b.speed_flops);
  EXPECT_EQ(a.speed_efficiency, b.speed_efficiency);
  EXPECT_EQ(a.overhead_s, b.overhead_s);
}

TEST(FaultDeterminism, RepeatedGeRunsAreBitIdentical) {
  GeCombination first_inner("GE-2", ge_config());
  const fault::FaultPlan plan = active_plan(7, first_inner.processor_count());
  FaultedCombination first(first_inner, plan);
  GeCombination second_inner("GE-2", ge_config());
  FaultedCombination second(second_inner, plan);

  const FaultyMeasurement& a = first.measure_faulty(96);
  const FaultyMeasurement& b = second.measure_faulty(96);
  expect_identical(a.measurement, b.measurement);
  EXPECT_EQ(a.effective_marked_speed, b.effective_marked_speed);
  EXPECT_EQ(a.degraded_es, b.degraded_es);
  EXPECT_EQ(a.fault_totals.total_s(), b.fault_totals.total_s());
  EXPECT_EQ(a.fault_totals.retries, b.fault_totals.retries);
  EXPECT_EQ(a.critical_path_fault_s, b.critical_path_fault_s);

  // The plan is genuinely active: it injected time and slowed the run.
  EXPECT_GT(a.fault_totals.total_s(), 0.0);
  EXPECT_GT(a.measurement.seconds, first_inner.measure(96).seconds);
}

TEST(FaultDeterminism, JobsCountDoesNotChangeFaultyMeasurements) {
  const std::vector<std::int64_t> sizes{32, 48, 64, 96};

  GeCombination sequential_inner("GE-2", ge_config());
  const fault::FaultPlan plan =
      active_plan(7, sequential_inner.processor_count());
  FaultedCombination sequential(sequential_inner, plan);
  run::Runner one(1);
  const auto a = sequential.measure_many(sizes, one);

  GeCombination parallel_inner("GE-2", ge_config());
  FaultedCombination parallel(parallel_inner, plan);
  run::Runner eight(8);
  const auto b = parallel.measure_many(sizes, eight);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i]);
}

TEST(FaultDeterminism, MmDecompositionIsReproducible) {
  ClusterCombination::Config config;
  config.cluster = machine::sunwulf::mm_ensemble(2);
  MmCombination first_inner("MM-2", config);
  const fault::FaultPlan plan = active_plan(3, first_inner.processor_count());
  const FaultDecomposition a = decompose_faults(first_inner, 64, plan);

  MmCombination second_inner("MM-2", config);
  const FaultDecomposition b = decompose_faults(second_inner, 64, plan);

  expect_identical(a.healthy, b.healthy);
  expect_identical(a.faulty.measurement, b.faulty.measurement);
  EXPECT_EQ(a.fault_overhead_s, b.fault_overhead_s);
  EXPECT_EQ(a.attributed_s, b.attributed_s);
  EXPECT_EQ(a.residual_s, b.residual_s);
  EXPECT_EQ(a.efficiency_retention, b.efficiency_retention);

  // The decomposition's books balance and the plan cost something.
  EXPECT_DOUBLE_EQ(a.attributed_s + a.residual_s, a.fault_overhead_s);
  EXPECT_GT(a.fault_overhead_s, 0.0);
  EXPECT_GT(a.efficiency_retention, 0.0);
  EXPECT_LT(a.efficiency_retention, 1.0);
}

TEST(FaultDeterminism, FaultyViewRelatesSanelyToTheHealthyOne) {
  GeCombination inner("GE-2", ge_config());
  const fault::FaultPlan plan = active_plan(7, inner.processor_count());
  FaultedCombination faulted(inner, plan);
  EXPECT_EQ(faulted.marked_speed(), inner.marked_speed());  // C is constant
  EXPECT_EQ(faulted.work(96), inner.work(96));
  const FaultyMeasurement& faulty = faulted.measure_faulty(96);
  // The effective marked speed is what the degraded machine offered — less
  // than C, so the degraded E_s reads higher than the classic one.
  EXPECT_LT(faulty.effective_marked_speed, inner.marked_speed());
  EXPECT_GT(faulty.degraded_es, faulty.measurement.speed_efficiency);
}

TEST(FaultDeterminism, FaultScenariosAreRegistered) {
  scenarios::register_fault_scenarios();
  scenarios::register_fault_scenarios();  // idempotent
  for (const char* name :
       {"fault_ge_degraded_scalability", "fault_mm_crash_restart",
        "fault_ge_loss_retry"}) {
    EXPECT_NE(run::find_scenario(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace hetscale::scal
