// FaultPlan — builders validate their events, generation is a pure function
// of (seed, spec, ranks), and counter-keyed draws make plans for different
// rank counts agree on their common ranks.
#include "hetscale/fault/plan.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"

namespace hetscale::fault {
namespace {

PlanSpec busy_spec() {
  PlanSpec spec;
  spec.slowdown_probability = 0.5;
  spec.slowdown_factor = 0.6;
  spec.slowdown_duty = 0.4;
  spec.slowdown_period_s = 1.0;
  spec.link_duty = 0.25;
  spec.link_period_s = 2.0;
  spec.link_bandwidth_factor = 0.5;
  spec.link_extra_latency_s = 1e-4;
  spec.crash_rate_per_s = 0.2;
  spec.restart_delay_s = 0.5;
  spec.loss.drop_probability = 0.05;
  spec.checkpoint.interval_s = 2.0;
  spec.checkpoint.bytes = 1e6;
  spec.horizon_s = 10.0;
  return spec;
}

void expect_identical(const FaultPlan& a, const FaultPlan& b) {
  ASSERT_EQ(a.slowdowns().size(), b.slowdowns().size());
  for (std::size_t i = 0; i < a.slowdowns().size(); ++i) {
    EXPECT_EQ(a.slowdowns()[i].rank, b.slowdowns()[i].rank);
    EXPECT_EQ(a.slowdowns()[i].start, b.slowdowns()[i].start);
    EXPECT_EQ(a.slowdowns()[i].end, b.slowdowns()[i].end);
    EXPECT_EQ(a.slowdowns()[i].factor, b.slowdowns()[i].factor);
  }
  ASSERT_EQ(a.link_faults().size(), b.link_faults().size());
  for (std::size_t i = 0; i < a.link_faults().size(); ++i) {
    EXPECT_EQ(a.link_faults()[i].start, b.link_faults()[i].start);
    EXPECT_EQ(a.link_faults()[i].end, b.link_faults()[i].end);
  }
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].rank, b.crashes()[i].rank);
    EXPECT_EQ(a.crashes()[i].at, b.crashes()[i].at);
  }
  EXPECT_EQ(a.loss().drop_probability, b.loss().drop_probability);
  EXPECT_EQ(a.checkpoint().interval_s, b.checkpoint().interval_s);
  EXPECT_EQ(a.restart_delay_s(), b.restart_delay_s());
}

TEST(FaultPlan, GenerationIsDeterministic) {
  const FaultPlan a = FaultPlan::generate(7, busy_spec(), 4);
  const FaultPlan b = FaultPlan::generate(7, busy_spec(), 4);
  expect_identical(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSchedules) {
  const FaultPlan a = FaultPlan::generate(7, busy_spec(), 4);
  const FaultPlan b = FaultPlan::generate(8, busy_spec(), 4);
  // Crash schedules are exponential draws off the seed: a collision across
  // every event of two seeds would mean the PRNG is broken.
  ASSERT_FALSE(a.crashes().empty());
  ASSERT_FALSE(b.crashes().empty());
  EXPECT_NE(a.crashes().front().at, b.crashes().front().at);
}

TEST(FaultPlan, CommonRanksShareEventsAcrossRankCounts) {
  // Counter-keyed draws: growing the ensemble appends new ranks' events
  // without perturbing the existing ones.
  const FaultPlan small = FaultPlan::generate(11, busy_spec(), 4);
  const FaultPlan large = FaultPlan::generate(11, busy_spec(), 8);
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(small.crash_times(rank), large.crash_times(rank)) << rank;
  }
  ASSERT_LE(small.slowdowns().size(), large.slowdowns().size());
  for (std::size_t i = 0; i < small.slowdowns().size(); ++i) {
    EXPECT_EQ(small.slowdowns()[i].rank, large.slowdowns()[i].rank);
    EXPECT_EQ(small.slowdowns()[i].start, large.slowdowns()[i].start);
  }
}

TEST(FaultPlan, SlowdownFactorsComposeOverHalfOpenIntervals) {
  FaultPlan plan;
  plan.add_slowdown({0, 1.0, 3.0, 0.5});
  plan.add_slowdown({0, 2.0, 4.0, 0.5});
  plan.add_slowdown({1, 0.0, 10.0, 0.25});
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 1.0), 0.5);   // start inclusive
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 2.5), 0.25);  // overlap multiplies
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 3.0), 0.5);   // end exclusive
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(1, 5.0), 0.25);
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(2, 5.0), 1.0);
}

TEST(FaultPlan, LinkStateComposesActiveWindows) {
  FaultPlan plan;
  plan.add_link_fault({1.0, 3.0, 0.5, 1e-3});
  plan.add_link_fault({2.0, 4.0, 0.5, 1e-3});
  EXPECT_DOUBLE_EQ(plan.link_state(0.0).bandwidth_factor, 1.0);
  EXPECT_DOUBLE_EQ(plan.link_state(2.5).bandwidth_factor, 0.25);
  EXPECT_DOUBLE_EQ(plan.link_state(2.5).extra_latency_s, 2e-3);
  EXPECT_DOUBLE_EQ(plan.link_state(3.0).bandwidth_factor, 0.5);
  EXPECT_DOUBLE_EQ(plan.link_state(4.0).bandwidth_factor, 1.0);
}

TEST(FaultPlan, CrashTimesAreSortedPerRank) {
  FaultPlan plan;
  plan.add_crash({0, 5.0}).add_crash({0, 1.0}).add_crash({1, 3.0});
  EXPECT_EQ(plan.crash_times(0), (std::vector<des::SimTime>{1.0, 5.0}));
  EXPECT_EQ(plan.crash_times(1), (std::vector<des::SimTime>{3.0}));
  EXPECT_TRUE(plan.crash_times(2).empty());
}

TEST(FaultPlan, BuildersValidate) {
  FaultPlan plan;
  EXPECT_THROW(plan.add_slowdown({-1, 0.0, 1.0, 0.5}), PreconditionError);
  EXPECT_THROW(plan.add_slowdown({0, 2.0, 1.0, 0.5}), PreconditionError);
  EXPECT_THROW(plan.add_slowdown({0, 0.0, 1.0, 0.0}), PreconditionError);
  EXPECT_THROW(plan.add_slowdown({0, 0.0, 1.0, 1.5}), PreconditionError);
  EXPECT_THROW(plan.add_link_fault({0.0, 0.0, 0.5, 0.0}), PreconditionError);
  EXPECT_THROW(plan.add_link_fault({0.0, 1.0, 0.0, 0.0}), PreconditionError);
  EXPECT_THROW(plan.add_link_fault({0.0, 1.0, 0.5, -1.0}), PreconditionError);
  EXPECT_THROW(plan.add_crash({0, 0.0}), PreconditionError);
  EXPECT_THROW(plan.set_restart_delay(-1.0), PreconditionError);

  LossModel certain_loss;
  certain_loss.drop_probability = 1.0;
  EXPECT_THROW(plan.set_loss(certain_loss), PreconditionError);
  LossModel no_retry;
  no_retry.drop_probability = 0.5;
  no_retry.max_attempts = 1;
  EXPECT_THROW(plan.set_loss(no_retry), PreconditionError);

  CheckpointPolicy free_writes;
  free_writes.interval_s = 1.0;
  free_writes.write_bandwidth_Bps = 0.0;
  EXPECT_THROW(plan.set_checkpoint(free_writes), PreconditionError);

  EXPECT_THROW(FaultPlan::generate(0, busy_spec(), 0), PreconditionError);
  PlanSpec no_horizon = busy_spec();
  no_horizon.horizon_s = 0.0;
  EXPECT_THROW(FaultPlan::generate(0, no_horizon, 2), PreconditionError);
}

TEST(FaultPlan, EmptyAndSummary) {
  FaultPlan plan(9);
  EXPECT_TRUE(plan.empty());
  plan.add_slowdown({0, 0.0, 1.0, 0.5});
  LossModel loss;
  loss.drop_probability = 0.05;
  plan.set_loss(loss);
  EXPECT_FALSE(plan.empty());
  const std::string summary = plan.summary();
  EXPECT_NE(summary.find("seed=9"), std::string::npos);
  EXPECT_NE(summary.find("1 slowdowns"), std::string::npos);
  EXPECT_NE(summary.find("loss p=0.05"), std::string::npos);
}

}  // namespace
}  // namespace hetscale::fault
