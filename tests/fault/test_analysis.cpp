// Effective marked speed — the time average is an exact integral over the
// plan's piecewise-constant factors, so hand-computed cases must match to
// rounding error.
#include "hetscale/fault/analysis.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hetscale/support/error.hpp"

namespace hetscale::fault {
namespace {

TEST(Analysis, HealthyPlanKeepsTheMarkedSpeed) {
  const FaultPlan plan;
  EXPECT_DOUBLE_EQ(effective_rank_speed(plan, 0, 100.0, 3.0), 100.0);
  EXPECT_DOUBLE_EQ(mean_effective_rank_speed(plan, 0, 100.0, 10.0), 100.0);
  const std::vector<double> speeds{100.0, 50.0};
  EXPECT_DOUBLE_EQ(mean_effective_marked_speed(plan, speeds, 10.0), 150.0);
}

TEST(Analysis, PointwiseSpeedFollowsTheActiveFactor) {
  FaultPlan plan;
  plan.add_slowdown({0, 2.0, 4.0, 0.5});
  EXPECT_DOUBLE_EQ(effective_rank_speed(plan, 0, 100.0, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(effective_rank_speed(plan, 0, 100.0, 3.0), 50.0);
  EXPECT_DOUBLE_EQ(effective_rank_speed(plan, 1, 100.0, 3.0), 100.0);
}

TEST(Analysis, MeanIsTheExactIntegral) {
  FaultPlan plan;
  plan.add_slowdown({0, 2.0, 4.0, 0.5});
  // Over [0, 10): 8 s at 100 + 2 s at 50 = 900 / 10.
  EXPECT_DOUBLE_EQ(mean_effective_rank_speed(plan, 0, 100.0, 10.0), 90.0);
  // A window extending past the horizon is clamped: over [0, 3),
  // 2 s at 100 + 1 s at 50 = 250 / 3.
  EXPECT_DOUBLE_EQ(mean_effective_rank_speed(plan, 0, 100.0, 3.0),
                   250.0 / 3.0);
}

TEST(Analysis, MarkedSpeedSumsOverRanks) {
  FaultPlan plan;
  plan.add_slowdown({0, 0.0, 5.0, 0.5});
  plan.add_slowdown({1, 5.0, 10.0, 0.2});
  const std::vector<double> speeds{100.0, 50.0};
  // Rank 0: (5*50 + 5*100)/10 = 75. Rank 1: (5*50 + 5*10)/10 = 30.
  EXPECT_DOUBLE_EQ(mean_effective_marked_speed(plan, speeds, 10.0), 105.0);
}

TEST(Analysis, SamplesTraceTheTimeline) {
  FaultPlan plan;
  plan.add_slowdown({0, 5.0, 10.0, 0.5});
  const std::vector<double> speeds{100.0};
  const auto samples = sample_effective_marked_speed(plan, speeds, 10.0, 4);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples[0], 100.0);  // t=0
  EXPECT_DOUBLE_EQ(samples[1], 100.0);  // t=2.5
  EXPECT_DOUBLE_EQ(samples[2], 50.0);   // t=5
  EXPECT_DOUBLE_EQ(samples[3], 50.0);   // t=7.5
}

TEST(Analysis, ValidatesItsInputs) {
  const FaultPlan plan;
  const std::vector<double> speeds{100.0};
  EXPECT_THROW(mean_effective_rank_speed(plan, 0, 100.0, 0.0),
               PreconditionError);
  EXPECT_THROW(mean_effective_rank_speed(plan, 0, -1.0, 1.0),
               PreconditionError);
  EXPECT_THROW(mean_effective_marked_speed(plan, speeds, 0.0),
               PreconditionError);
  EXPECT_THROW(sample_effective_marked_speed(plan, speeds, 1.0, 0),
               PreconditionError);
}

}  // namespace
}  // namespace hetscale::fault
