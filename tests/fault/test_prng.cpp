// CounterRng — the determinism bedrock of the fault layer: every draw is a
// pure function of (seed, stream, counter), so fault decisions cannot
// depend on scheduling order or the --jobs setting.
#include "hetscale/fault/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hetscale/support/error.hpp"

namespace hetscale::fault {
namespace {

TEST(CounterRng, DrawsArePureFunctionsOfTheKey) {
  const CounterRng a(42);
  const CounterRng b(42);
  for (std::uint64_t stream : {0ULL, 1ULL, 7ULL, 1ULL << 32}) {
    for (std::uint64_t counter = 0; counter < 16; ++counter) {
      EXPECT_EQ(a.bits(stream, counter), b.bits(stream, counter));
      EXPECT_EQ(a.uniform(stream, counter), b.uniform(stream, counter));
    }
  }
}

TEST(CounterRng, ConsumptionOrderIsIrrelevant) {
  // The same draws made in two different interleavings agree draw-for-draw
  // — the property that makes fault plans --jobs invariant.
  const CounterRng rng(7);
  std::vector<double> forward;
  std::vector<double> reverse;
  for (int c = 0; c < 32; ++c) {
    forward.push_back(rng.uniform(3, static_cast<std::uint64_t>(c)));
  }
  for (int c = 31; c >= 0; --c) {
    reverse.push_back(rng.uniform(3, static_cast<std::uint64_t>(c)));
  }
  std::reverse(reverse.begin(), reverse.end());
  EXPECT_EQ(forward, reverse);
}

TEST(CounterRng, SeedStreamAndCounterAllSeparateDraws) {
  const CounterRng rng(1);
  EXPECT_NE(rng.bits(0, 0), rng.bits(1, 0));
  EXPECT_NE(rng.bits(0, 0), rng.bits(0, 1));
  EXPECT_NE(CounterRng(1).bits(0, 0), CounterRng(2).bits(0, 0));
}

TEST(CounterRng, UniformStaysInUnitIntervalAndLooksUniform) {
  const CounterRng rng(2026);
  double sum = 0.0;
  constexpr int kDraws = 4096;
  for (int c = 0; c < kDraws; ++c) {
    const double u = rng.uniform(0, static_cast<std::uint64_t>(c));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(CounterRng, ExponentialHasTheRequestedMean) {
  const CounterRng rng(5);
  double sum = 0.0;
  constexpr int kDraws = 8192;
  for (int c = 0; c < kDraws; ++c) {
    const double x = rng.exponential(1, static_cast<std::uint64_t>(c), 2.0);
    ASSERT_GT(x, 0.0);  // never exactly zero: crash gaps must advance time
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 2.0, 0.15);
}

TEST(CounterRng, ExponentialRejectsNonPositiveMean) {
  const CounterRng rng(5);
  EXPECT_THROW(rng.exponential(0, 0, 0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(0, 0, -1.0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::fault
