// Injector — the charged time is exact, hand-computable arithmetic: rate
// scaling integrates the piecewise-constant factor, checkpoints are charged
// when crossed, and a crash pays the restart delay plus everything since
// the last checkpoint.
#include "hetscale/fault/injector.hpp"

#include <gtest/gtest.h>

#include "hetscale/support/error.hpp"

namespace hetscale::fault {
namespace {

TEST(Injector, HealthyPlanIsTheIdentity) {
  const FaultPlan plan;
  Injector injector(plan, {1e6, 1e6});
  EXPECT_DOUBLE_EQ(injector.compute_end(0, 3.0, 2.0), 5.0);
  const vmpi::SendFaultPlan send = injector.send_faults(0);
  EXPECT_EQ(send.attempts, 1);
  EXPECT_DOUBLE_EQ(injector.totals().total_s(), 0.0);
  EXPECT_DOUBLE_EQ(injector.critical_path_fault_s(), 0.0);
}

TEST(Injector, HalfSpeedDoublesComputeTime) {
  FaultPlan plan;
  plan.add_slowdown({0, 0.0, 100.0, 0.5});
  Injector injector(plan, {1e6});
  EXPECT_DOUBLE_EQ(injector.compute_end(0, 0.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(injector.rank_stats(0).slowdown_s, 10.0);
}

TEST(Injector, PartialWindowIntegratesTheFactor) {
  FaultPlan plan;
  plan.add_slowdown({0, 5.0, 10.0, 0.5});
  Injector injector(plan, {1e6});
  // 10 healthy seconds from t=0: 5 healthy + the [5,10) window yielding
  // 2.5 healthy-equivalents + 2.5 healthy after it = 12.5 elapsed.
  EXPECT_DOUBLE_EQ(injector.compute_end(0, 0.0, 10.0), 12.5);
  EXPECT_DOUBLE_EQ(injector.rank_stats(0).slowdown_s, 2.5);
}

TEST(Injector, SlowdownsOnlyAffectTheirRank) {
  FaultPlan plan;
  plan.add_slowdown({0, 0.0, 100.0, 0.5});
  Injector injector(plan, {1e6, 1e6});
  EXPECT_DOUBLE_EQ(injector.compute_end(1, 0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(injector.rank_stats(1).slowdown_s, 0.0);
}

TEST(Injector, CheckpointChargedWhenCrossed) {
  FaultPlan plan;
  CheckpointPolicy policy;
  policy.interval_s = 1.0;
  policy.bytes = 12.5e6;         // 1 s at the default 12.5 MB/s
  policy.flops = 1e6;            // 1 s at the 1 Mflop/s healthy rate
  plan.set_checkpoint(policy);
  Injector injector(plan, {1e6});
  // 1.5 healthy seconds cross the checkpoint due at t=1: pay the 2 s cost
  // there, then finish the remaining 0.5 s.
  EXPECT_DOUBLE_EQ(injector.compute_end(0, 0.0, 1.5), 3.5);
  EXPECT_EQ(injector.rank_stats(0).checkpoints, 1u);
  EXPECT_DOUBLE_EQ(injector.rank_stats(0).checkpoint_s, 2.0);
  EXPECT_DOUBLE_EQ(injector.rank_stats(0).slowdown_s, 0.0);
}

TEST(Injector, CrashPaysRestartPlusReworkSinceLastCheckpoint) {
  FaultPlan plan;
  plan.add_crash({0, 5.0});
  plan.set_restart_delay(1.0);
  CheckpointPolicy policy;
  policy.interval_s = 4.0;  // free checkpoints: isolate the rework term
  plan.set_checkpoint(policy);
  Injector injector(plan, {1e6});
  // Checkpoint at t=4 (cost 0), crash at t=5: rework = 1 s restart +
  // (5 - 4) s since the checkpoint; the remaining 1 healthy second then
  // runs to completion.
  EXPECT_DOUBLE_EQ(injector.compute_end(0, 0.0, 6.0), 8.0);
  EXPECT_EQ(injector.rank_stats(0).crashes, 1u);
  EXPECT_DOUBLE_EQ(injector.rank_stats(0).rework_s, 2.0);
}

TEST(Injector, UncheckpointedCrashRollsBackToTheStart) {
  FaultPlan plan;
  plan.add_crash({0, 5.0});
  plan.set_restart_delay(1.0);
  Injector injector(plan, {1e6});
  // rework = 1 s restart + all 5 s since t=0; then the remaining 5 s run.
  EXPECT_DOUBLE_EQ(injector.compute_end(0, 0.0, 10.0), 16.0);
  EXPECT_DOUBLE_EQ(injector.rank_stats(0).rework_s, 6.0);
}

TEST(Injector, CrashWhileBlockedManifestsAtTheNextCompute) {
  FaultPlan plan;
  plan.add_crash({0, 5.0});
  plan.set_restart_delay(1.0);
  Injector injector(plan, {1e6});
  // The rank was blocked in recv past the scheduled crash; the crash fires
  // at the compute's start, and the elapsed blocked time counts as rework.
  EXPECT_DOUBLE_EQ(injector.compute_end(0, 10.0, 1.0), 22.0);
  EXPECT_DOUBLE_EQ(injector.rank_stats(0).rework_s, 11.0);
}

TEST(Injector, LossDrawsAreDeterministicPerMessageCounter) {
  FaultPlan plan;
  LossModel loss;
  loss.drop_probability = 0.5;
  plan.set_loss(loss);
  Injector a(plan, {1e6, 1e6});
  Injector b(plan, {1e6, 1e6});
  std::uint64_t retries = 0;
  for (int message = 0; message < 64; ++message) {
    const vmpi::SendFaultPlan fa = a.send_faults(0);
    const vmpi::SendFaultPlan fb = b.send_faults(0);
    EXPECT_EQ(fa.attempts, fb.attempts) << message;
    ASSERT_GE(fa.attempts, 1);
    ASSERT_LE(fa.attempts, loss.max_attempts);
    EXPECT_DOUBLE_EQ(fa.retry_timeout_s, loss.retry_timeout_s);
    EXPECT_DOUBLE_EQ(fa.backoff, loss.backoff);
    retries += static_cast<std::uint64_t>(fa.attempts - 1);
  }
  EXPECT_GT(retries, 0u);  // at p=0.5 some of 64 sends certainly retried
  EXPECT_EQ(a.rank_stats(0).retries, retries);
  EXPECT_EQ(a.rank_stats(1).retries, 0u);  // streams are per-rank
}

TEST(Injector, RetryWaitsAccumulateIntoTheLedger) {
  const FaultPlan plan;
  Injector injector(plan, {1e6, 1e6});
  injector.record_retry_wait(1, 0.25);
  injector.record_retry_wait(1, 0.5);
  EXPECT_DOUBLE_EQ(injector.rank_stats(1).retry_s, 0.75);
  EXPECT_DOUBLE_EQ(injector.totals().retry_s, 0.75);
  EXPECT_DOUBLE_EQ(injector.critical_path_fault_s(), 0.75);
  EXPECT_THROW(injector.record_retry_wait(1, -1.0), PreconditionError);
}

TEST(Injector, ValidatesItsInputs) {
  const FaultPlan plan;
  EXPECT_THROW(Injector(plan, std::vector<double>{}), PreconditionError);
  Injector injector(plan, {1e6});
  EXPECT_THROW(injector.compute_end(1, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(injector.compute_end(0, 0.0, -1.0), PreconditionError);
  EXPECT_THROW(injector.rank_stats(-1), PreconditionError);
  EXPECT_THROW(injector.send_faults(5), PreconditionError);
}

}  // namespace
}  // namespace hetscale::fault
