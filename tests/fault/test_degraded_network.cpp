// DegradedNetwork — the decorator inflates on-wire size (so degradation
// occupies the medium and contention emerges from the inner model), adds
// latency to the arrival only, leaves intra-node traffic alone, and keeps
// nominal traffic statistics.
#include "hetscale/fault/degraded_network.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hetscale/net/switched.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::fault {
namespace {

FaultPlan window_plan() {
  FaultPlan plan;
  plan.add_link_fault({10.0, 20.0, 0.5, 1e-3});
  return plan;
}

// Network is move-suppressed (non-copyable base), so build on the heap.
std::unique_ptr<DegradedNetwork> wrap(const FaultPlan& plan) {
  return std::make_unique<DegradedNetwork>(
      std::make_unique<net::SwitchedNetwork>(), plan);
}

TEST(DegradedNetwork, HealthyWindowMatchesTheInnerModelExactly) {
  const FaultPlan plan = window_plan();
  auto degraded = wrap(plan);
  net::SwitchedNetwork healthy;
  const auto a = degraded->transfer(0, 1, 4096.0, 0.0);
  const auto b = healthy.transfer(0, 1, 4096.0, 0.0);
  EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
  EXPECT_DOUBLE_EQ(a.sender_free, b.sender_free);
}

TEST(DegradedNetwork, DegradedWindowInflatesBytesAndDelaysArrival) {
  const FaultPlan plan = window_plan();
  auto degraded = wrap(plan);
  net::SwitchedNetwork healthy;
  // Half bandwidth == the healthy model carrying twice the bytes, plus the
  // extra propagation latency on the arrival side only.
  const auto faulty = degraded->transfer(0, 1, 4096.0, 10.0);
  const auto reference = healthy.transfer(0, 1, 8192.0, 10.0);
  EXPECT_DOUBLE_EQ(faulty.arrival, reference.arrival + 1e-3);
  EXPECT_DOUBLE_EQ(faulty.sender_free, reference.sender_free);
}

TEST(DegradedNetwork, WindowIsChosenByDepartureTime) {
  const FaultPlan plan = window_plan();
  auto in_window = wrap(plan);
  auto past_window = wrap(plan);
  net::SwitchedNetwork healthy;
  // The window is half-open: a frame departing exactly at the end is
  // healthy again.
  const auto at_end = past_window->transfer(0, 1, 4096.0, 20.0);
  const auto reference = healthy.transfer(0, 1, 4096.0, 20.0);
  EXPECT_DOUBLE_EQ(at_end.arrival, reference.arrival);
  const auto inside = in_window->transfer(0, 1, 4096.0, 19.0);
  EXPECT_GT(inside.arrival - 19.0, at_end.arrival - 20.0);
}

TEST(DegradedNetwork, IntraNodeTransfersAreUntouched) {
  const FaultPlan plan = window_plan();
  auto degraded = wrap(plan);
  net::SwitchedNetwork healthy;
  const auto a = degraded->transfer(2, 2, 4096.0, 12.0);
  const auto b = healthy.transfer(2, 2, 4096.0, 12.0);
  EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
  EXPECT_DOUBLE_EQ(a.sender_free, b.sender_free);
}

TEST(DegradedNetwork, StatisticsCountNominalBytes) {
  const FaultPlan plan = window_plan();
  auto degraded = wrap(plan);
  degraded->transfer(0, 1, 1000.0, 12.0);  // degraded: on-wire 2000 bytes
  degraded->transfer(0, 1, 1000.0, 30.0);  // healthy
  EXPECT_EQ(degraded->stats().messages, 2u);
  EXPECT_DOUBLE_EQ(degraded->stats().bytes, 2000.0);
}

TEST(DegradedNetwork, ValidatesItsInputs) {
  const FaultPlan plan = window_plan();
  EXPECT_THROW(DegradedNetwork(nullptr, plan), PreconditionError);
  auto degraded = wrap(plan);
  EXPECT_THROW(degraded->transfer(0, 1, -1.0, 0.0), PreconditionError);
}

}  // namespace
}  // namespace hetscale::fault
