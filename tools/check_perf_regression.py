#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against the committed baseline.

Usage:
  check_perf_regression.py --baseline BENCH_PR4.json \
      --current perf-smoke.json [--max-ratio 2.0]

The baseline is one of the repo's committed BENCH_PR*.json files (the
hetscale.bench.pr*/v1 schemas share the layout; before_ns/speedup columns
are optional and ignored here): its
`benchmarks` map records `after_ns` — the post-optimization wall-clock
this tree is expected to sustain. The current file is raw google-benchmark
`--benchmark_format=json` output. A tracked benchmark regresses when
current / after_ns exceeds --max-ratio; benchmarks present on only one
side are reported but never fail the check (new benchmarks and renames
should not break CI).

A baseline may also carry `speedup_pairs`: assertions on the *ratio*
between two rows of the current run, `current[num] / current[den] >=
min_ratio`. Each pair can set `min_cpus`; on hosts with fewer cores the
pair is skipped with a notice instead of failing (the PR10 partitioned-DES
gate works this way — a single-core host serializes the simulation
threads, so an absolute speedup requirement would be meaningless there).
The host core count is taken from the scheduling affinity mask when the
OS exposes one (the honest number inside cgroup-confined CI containers),
or --host-cpus when given.

Exit status: 0 when no tracked benchmark exceeds the ratio, 1 otherwise.
"""

import argparse
import json
import os
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

_KNOWN_SCHEMAS = (
    "hetscale.bench.pr4/v1",
    "hetscale.bench.pr5/v1",
    "hetscale.bench.pr6/v1",
    "hetscale.bench.pr7/v1",
    "hetscale.bench.pr8/v1",
    "hetscale.bench.pr9/v1",
    "hetscale.bench.pr10/v1",
)


def host_cpus():
    """Usable core count: the affinity mask where available (cgroup-aware),
    os.cpu_count() otherwise."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def check_speedup_pairs(pairs, current, cpus):
    """Verify current[num] / current[den] >= min_ratio for each pair.

    Returns the list of failed pair labels. Pairs whose min_cpus exceeds
    `cpus`, or whose endpoints are missing from the current run, are
    reported and skipped — never failed.
    """
    failures = []
    for pair in pairs:
        num, den = pair["num"], pair["den"]
        label = f"{num} / {den}"
        min_cpus = int(pair.get("min_cpus", 1))
        if cpus < min_cpus:
            print(f"SKIP  speedup {label}: host has {cpus} cpu(s), "
                  f"pair needs >= {min_cpus}")
            continue
        if num not in current or den not in current:
            missing = num if num not in current else den
            print(f"SKIP  speedup {label}: {missing} not in current run")
            continue
        if current[den] <= 0.0:
            print(f"SKIP  speedup {label}: non-positive denominator")
            continue
        ratio = current[num] / current[den]
        min_ratio = float(pair["min_ratio"])
        verdict = "ok" if ratio >= min_ratio else "FAIL"
        print(f"{verdict:<5} speedup {label}: {ratio:.2f}x "
              f"(needs >= {min_ratio}x)")
        if ratio < min_ratio:
            failures.append(label)
    return failures


def load_current(path):
    """Map benchmark name -> real_time in nanoseconds."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = _UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
        out[bench["name"]] = bench["real_time"] * scale
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-ratio", type=float, default=2.0)
    parser.add_argument(
        "--host-cpus", type=int, default=None,
        help="override the detected core count for speedup_pairs gating")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    if baseline.get("schema") not in _KNOWN_SCHEMAS:
        print(f"unrecognized baseline schema in {args.baseline}",
              file=sys.stderr)
        return 1
    current = load_current(args.current)

    failures = []
    for name, entry in sorted(baseline["benchmarks"].items()):
        expected_ns = entry["after_ns"]
        actual_ns = current.get(name)
        if actual_ns is None:
            print(f"SKIP  {name}: not in current run")
            continue
        ratio = actual_ns / expected_ns
        verdict = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"{verdict:<5} {name}: baseline {expected_ns:.0f} ns, "
              f"current {actual_ns:.0f} ns ({ratio:.2f}x)")
        if ratio > args.max_ratio:
            failures.append(name)

    for name in sorted(set(current) - set(baseline["benchmarks"])):
        print(f"NEW   {name}: no baseline entry")

    pairs = baseline.get("speedup_pairs", [])
    if pairs:
        cpus = args.host_cpus if args.host_cpus is not None else host_cpus()
        failures += check_speedup_pairs(pairs, current, cpus)

    if failures:
        print(f"\n{len(failures)} check(s) failed: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("\nall tracked benchmarks within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
