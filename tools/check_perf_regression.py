#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against the committed baseline.

Usage:
  check_perf_regression.py --baseline BENCH_PR4.json \
      --current perf-smoke.json [--max-ratio 2.0]

The baseline is one of the repo's committed BENCH_PR*.json files (the
hetscale.bench.pr*/v1 schemas share the layout; before_ns/speedup columns
are optional and ignored here): its
`benchmarks` map records `after_ns` — the post-optimization wall-clock
this tree is expected to sustain. The current file is raw google-benchmark
`--benchmark_format=json` output. A tracked benchmark regresses when
current / after_ns exceeds --max-ratio; benchmarks present on only one
side are reported but never fail the check (new benchmarks and renames
should not break CI).

Exit status: 0 when no tracked benchmark exceeds the ratio, 1 otherwise.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

_KNOWN_SCHEMAS = (
    "hetscale.bench.pr4/v1",
    "hetscale.bench.pr5/v1",
    "hetscale.bench.pr6/v1",
    "hetscale.bench.pr7/v1",
    "hetscale.bench.pr8/v1",
    "hetscale.bench.pr9/v1",
)


def load_current(path):
    """Map benchmark name -> real_time in nanoseconds."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = _UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
        out[bench["name"]] = bench["real_time"] * scale
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-ratio", type=float, default=2.0)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    if baseline.get("schema") not in _KNOWN_SCHEMAS:
        print(f"unrecognized baseline schema in {args.baseline}",
              file=sys.stderr)
        return 1
    current = load_current(args.current)

    failures = []
    for name, entry in sorted(baseline["benchmarks"].items()):
        expected_ns = entry["after_ns"]
        actual_ns = current.get(name)
        if actual_ns is None:
            print(f"SKIP  {name}: not in current run")
            continue
        ratio = actual_ns / expected_ns
        verdict = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"{verdict:<5} {name}: baseline {expected_ns:.0f} ns, "
              f"current {actual_ns:.0f} ns ({ratio:.2f}x)")
        if ratio > args.max_ratio:
            failures.append(name)

    for name in sorted(set(current) - set(baseline["benchmarks"])):
        print(f"NEW   {name}: no baseline entry")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.max_ratio}x: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nall tracked benchmarks within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
