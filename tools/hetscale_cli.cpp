// hetscale_cli — the library's analyses from the command line.
//
//   hetscale_cli run     table3_ge_required_rank --format=json --jobs 8
//   hetscale_cli run     list
//   hetscale_cli scenarios spmv
//   hetscale_cli marked  --cluster "server:2,sunbladex3"
//   hetscale_cli solve   --algo ge --cluster "server:2,sunbladex3" --target 0.3
//   hetscale_cli curve   --algo mm --cluster "server:1,v210x3:1" --from 32 --to 512 --step 32
//   hetscale_cli series  --algo ge --ladder "2,4,8,16" --target 0.3
//   hetscale_cli predict --algo jacobi --ladder "2,4,8" --target 0.3
//   hetscale_cli fit     --algo ge --format json --jobs 8
//   hetscale_cli fit     spmv --format table
//   hetscale_cli analyze table4_ge_scalability --format json --top 5
//   hetscale_cli analyze --algo summa --cluster "sunbladex4" --n 128
//   hetscale_cli profile table2_ge_two_nodes --format json --out report.json
//   hetscale_cli profile --algo sort --cluster "sunbladex4" --n 4096
//                        --format table --trace-out sort.trace.json
//   hetscale_cli trace   --algo ge --cluster "sunbladex4" --n 64 --out ge.trace.json
//   hetscale_cli inject  --algo ge --cluster "sunbladex4" --n 256 --seed 7 \
//                        --slowdown 0.6 --loss 0.05 --crash-rate 0.5 \
//                        --checkpoint-interval 0.25
//
// Cluster grammar: comma-separated "<type>[xCOUNT][:CPUS]" with types
// server / sunblade / v210 (see machine/parse.hpp). Ladders name the
// paper's GE/MM ensembles by node count. `run` executes a registered
// scenario (the paper's tables and figures) on a --jobs-wide worker pool;
// solve / curve / series accept --jobs too. `profile` runs either a
// registered scenario or a single algorithm with instrumentation on and
// exports the hetscale.obs.report in --format json | prom | table; `trace`
// is the historical alias for the single-run form (utilization table plus
// --out chrome trace). `analyze` runs the same subjects but exports the
// hetscale.obs.analysis document instead: critical-path attribution, the
// ranked communication matrix, and event-queue telemetry, in --format
// json | csv | table. Its output is byte-stable across --jobs and kernel
// pins.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hetscale/algos/ge.hpp"
#include "hetscale/algos/mm.hpp"
#include "hetscale/machine/parse.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/obs/analysis.hpp"
#include "hetscale/obs/report.hpp"
#include "hetscale/predict/models.hpp"
#include "hetscale/predict/probe.hpp"
#include "hetscale/fault/plan.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/run/scenario.hpp"
#include "hetscale/scal/fault_study.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/measure_store.hpp"
#include "hetscale/scal/profile.hpp"
#include "hetscale/scal/series.hpp"
#include "hetscale/scenarios/dist2d.hpp"
#include "hetscale/scenarios/fault.hpp"
#include "hetscale/scenarios/large_p.hpp"
#include "hetscale/scenarios/paper.hpp"
#include "hetscale/scenarios/profile.hpp"
#include "hetscale/scenarios/zoo.hpp"
#include "hetscale/support/args.hpp"
#include "hetscale/support/csv.hpp"
#include "hetscale/support/table.hpp"

namespace {

using namespace hetscale;

std::unique_ptr<scal::ClusterCombination> make_combination(
    const std::string& algo, machine::Cluster cluster) {
  scal::ClusterCombination::Config config;
  config.cluster = std::move(cluster);
  config.with_data = false;
  const std::string name = algo + " on " + config.cluster.summary();
  if (algo == "ge") {
    return std::make_unique<scal::GeCombination>(name, std::move(config));
  }
  if (algo == "mm") {
    return std::make_unique<scal::MmCombination>(name, std::move(config));
  }
  if (algo == "sort") {
    return std::make_unique<scal::SortCombination>(name, std::move(config));
  }
  if (algo == "jacobi") {
    return std::make_unique<scal::JacobiCombination>(name, std::move(config),
                                                     /*sweeps=*/50);
  }
  if (algo == "summa") {
    return std::make_unique<scal::SummaCombination>(name, std::move(config));
  }
  if (algo == "ge_pivot") {
    return std::make_unique<scal::GePivotCombination>(name,
                                                      std::move(config));
  }
  if (algo == "spmv" || algo == "spmv-hom") {
    return std::make_unique<scal::SpmvCombination>(
        name, std::move(config), /*sweeps=*/50,
        algo == "spmv" ? algos::SpmvDistribution::kHeterogeneousBlock
                       : algos::SpmvDistribution::kHomogeneousBlock);
  }
  throw PreconditionError(
      "unknown --algo '" + algo +
      "' (expected ge, mm, sort, jacobi, summa, ge_pivot, spmv, or "
      "spmv-hom)");
}

/// All scenario registrations, shared by run / scenarios / profile.
void register_all_scenarios() {
  scenarios::register_paper_scenarios();
  scenarios::register_fault_scenarios();
  scenarios::register_profile_scenarios();
  scenarios::register_dist2d_scenarios();
  scenarios::register_zoo_scenarios();
  scenarios::register_large_p_scenarios();
}

/// `hetscale_cli scenarios [substring]` — the registry as a listing, with
/// an optional case-sensitive name/summary filter.
int cmd_scenarios(const ArgParser& args) {
  register_all_scenarios();
  const auto& positional = args.positional();
  const std::string filter = positional.size() > 1 ? positional[1] : "";
  Table table(filter.empty()
                  ? std::string("Registered scenarios")
                  : "Registered scenarios matching '" + filter + "'");
  table.set_header({"name", "summary"});
  int shown = 0;
  for (const run::Scenario* scenario : run::all_scenarios()) {
    if (!filter.empty() &&
        scenario->name.find(filter) == std::string::npos &&
        scenario->summary.find(filter) == std::string::npos) {
      continue;
    }
    table.add_row({scenario->name, scenario->summary});
    ++shown;
  }
  std::cout << table;
  if (shown == 0) {
    std::cout << "no scenario matches '" << filter << "'\n";
    return 2;
  }
  std::cout << shown << " scenario" << (shown == 1 ? "" : "s")
            << "; run one with: hetscale_cli run <name>\n";
  return 0;
}

int cmd_run(const ArgParser& args) {
  register_all_scenarios();
  const auto& positional = args.positional();
  const std::string name = positional.size() > 1 ? positional[1] : "list";
  if (name == "list") {
    Table table("Scenarios (paper artifacts)");
    table.set_header({"name", "summary"});
    for (const run::Scenario* scenario : run::all_scenarios()) {
      table.add_row({scenario->name, scenario->summary});
    }
    std::cout << table;
    return positional.size() > 1 ? 0 : 2;
  }
  const run::Scenario* scenario = run::find_scenario(name);
  if (scenario == nullptr) {
    std::cerr << "error: unknown scenario '" << name
              << "' (try: hetscale_cli run list)\n";
    return 2;
  }
  run::Runner runner(resolve_jobs(args));
  obs::Profiler profiler;
  const bool profile = args.has("profile");
  run::RunContext context{runner,
                          run::parse_format(args.get_or("format", "text")),
                          resolve_seed(args)};
  std::string storage;
  if (profile) {
    // The artifact keeps stdout; the instrumentation report rides along
    // on stderr as a time-budget table.
    context.profiler = &profiler;
    obs::ProfilerScope scope(profiler);
    const run::RunResult result = scenario->run(context);
    std::cout << run::render(result, context.format, storage);
    obs::ReportOptions options;
    options.subject = name;
    std::cerr << profiler.report(options).to_table();
  } else {
    const run::RunResult result = scenario->run(context);
    std::cout << run::render(result, context.format, storage);
  }
  return 0;
}

int cmd_marked(const ArgParser& args) {
  const auto cluster = machine::parse_cluster(args.get("cluster"));
  Table table("Marked speeds (Definitions 1-2)");
  table.set_header({"rank", "node", "marked speed (Mflops)"});
  const auto speeds = marked::rank_marked_speeds(cluster);
  const auto processors = cluster.processors();
  for (std::size_t r = 0; r < speeds.size(); ++r) {
    table.add_row({std::to_string(r),
                   cluster.nodes()[static_cast<std::size_t>(
                                       processors[r].node)].name,
                   Table::fixed(speeds[r] / 1e6, 1)});
  }
  std::cout << table << "system marked speed C = "
            << Table::fixed(marked::system_marked_speed(cluster) / 1e6, 1)
            << " Mflops\n";
  return 0;
}

int cmd_solve(const ArgParser& args) {
  auto combo = make_combination(args.get_or("algo", "ge"),
                                machine::parse_cluster(args.get("cluster")));
  const double target = args.get_double("target", 0.3);
  run::Runner runner(resolve_jobs(args));
  scal::IsoSolveOptions options;
  options.n_min = args.get_int("nmin", options.n_min);
  options.runner = &runner;
  const auto result = scal::required_problem_size(*combo, target, options);
  if (!result.found) {
    std::cout << "E_s = " << target << " is unreachable on " << combo->name()
              << " (within N <= " << options.n_max << ")\n";
    return 1;
  }
  std::cout << combo->name() << ": smallest N with E_s >= " << target
            << " is N = " << result.n << " (measured E_s = "
            << Table::fixed(result.achieved_es, 3) << ")\n";
  return 0;
}

int cmd_curve(const ArgParser& args) {
  auto combo = make_combination(args.get_or("algo", "ge"),
                                machine::parse_cluster(args.get("cluster")));
  const auto from = args.get_int("from", 32);
  const auto to = args.get_int("to", 512);
  const auto step = args.get_int("step", 32);
  HETSCALE_REQUIRE(from >= 1 && to >= from && step >= 1,
                   "need 1 <= from <= to and step >= 1");
  std::vector<std::int64_t> sizes;
  for (std::int64_t n = from; n <= to; n += step) sizes.push_back(n);
  run::Runner runner(resolve_jobs(args));
  const auto measured = combo->measure_many(sizes, runner);
  CsvWriter csv({"N", "seconds", "speed_mflops", "speed_efficiency"});
  for (const auto& m : measured) {
    csv.add_row({std::to_string(m.n), Table::fixed(m.seconds, 6),
                 Table::fixed(m.speed_flops / 1e6, 2),
                 Table::fixed(m.speed_efficiency, 4)});
  }
  std::cout << csv.str();
  return 0;
}

int cmd_series(const ArgParser& args) {
  const std::string algo = args.get_or("algo", "ge");
  const double target = args.get_double("target", algo == "mm" ? 0.2 : 0.3);
  std::vector<std::unique_ptr<scal::ClusterCombination>> owned;
  std::vector<scal::Combination*> ptrs;
  for (const auto& piece : split(args.get_or("ladder", "2,4,8"), ',')) {
    const int nodes = static_cast<int>(std::stol(piece));
    owned.push_back(make_combination(
        algo, algo == "mm" ? machine::sunwulf::mm_ensemble(nodes)
                           : machine::sunwulf::ge_ensemble(nodes)));
    ptrs.push_back(owned.back().get());
  }
  run::Runner runner(resolve_jobs(args));
  const auto report = scal::scalability_series(ptrs, target, {}, &runner);
  Table table("Isospeed-efficiency scalability series (E_s = " +
              Table::num(target, 2) + ")");
  table.set_header({"system", "C (Mflops)", "N", "psi step"});
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const auto& point = report.points[i];
    table.add_row({point.system, Table::fixed(point.marked_speed / 1e6, 1),
                   point.found ? std::to_string(point.n) : "unreachable",
                   i == 0 ? "-" : Table::fixed(report.steps[i - 1].psi, 3)});
  }
  std::cout << table << "cumulative psi = "
            << Table::fixed(report.cumulative_psi(), 4) << '\n';
  return 0;
}

int cmd_predict(const ArgParser& args) {
  const std::string algo = args.get_or("algo", "ge");
  // Throws a loud PreconditionError for algorithms without an analytic
  // model (sort, summa, ...) — predict never silently falls back to GE.
  const auto model = predict::overhead_model_for(algo);
  // Per-algorithm defaults: the paper's targets for ge/mm, ge's for the
  // compute-bound jacobi, and a low bar for spmv — its CSR streaming stall
  // caps E_s well below the dense targets.
  const double default_target =
      algo == "mm" ? 0.2 : (algo == "spmv" ? 0.05 : 0.3);
  const double target = args.get_double("target", default_target);
  const auto comm = predict::probe_comm_model(
      predict::ProbeConfig{.node = machine::sunwulf::sunblade_spec()});
  // ge/jacobi run on the paper's GE ensembles, mm/spmv on the MM ones —
  // the same pairing the fit study measures.
  const bool mm_ensembles = algo == "mm" || algo == "spmv";
  Table table("Predicted " + algo +
              " operating points (probed parameters, paper §4.5)");
  table.set_header({"nodes", "predicted N"});
  for (const auto& piece : split(args.get_or("ladder", "2,4,8"), ',')) {
    const int nodes = static_cast<int>(std::stol(piece));
    const auto system = predict::system_model_for(
        mm_ensembles ? machine::sunwulf::mm_ensemble(nodes)
                     : machine::sunwulf::ge_ensemble(nodes),
        comm);
    table.add_row({piece, std::to_string(predict::predicted_required_size(
                              *model, system, target))});
  }
  std::cout << table;
  return 0;
}

/// `hetscale_cli fit [algo]` — fit and cross-validate the model zoo on
/// measured efficiency points, ranked against the analytic prediction.
int cmd_fit(const ArgParser& args) {
  const auto& positional = args.positional();
  std::vector<std::string> algos;
  if (positional.size() > 1) {
    algos.push_back(positional[1]);
  } else if (args.has("algo")) {
    algos.push_back(args.get("algo"));
  } else {
    algos = scenarios::zoo_algos();
  }
  run::Runner runner(resolve_jobs(args));
  const auto report = scenarios::build_fit_report(algos, &runner);
  const std::string format = args.get_or("format", "table");
  if (format == "json") {
    report.to_json(std::cout);
  } else if (format == "csv") {
    std::cout << report.to_csv();
  } else if (format == "table") {
    std::cout << report.to_table();
  } else {
    throw PreconditionError("fit supports --format json, csv, or table");
  }
  return 0;
}

int cmd_inject(const ArgParser& args) {
  auto combo = make_combination(args.get_or("algo", "ge"),
                                machine::parse_cluster(args.get("cluster")));
  const auto n = args.get_int("n", 256);
  const auto seed = resolve_seed(args);
  const int ranks = combo->processor_count();
  const double t_healthy = combo->measure(n).seconds;

  // Assemble the plan spec from the flags; each knob is off by default.
  // Event generation and the restart delay scale with the healthy runtime:
  // crashes scheduled far beyond the run would otherwise chain (each
  // restart pushes the run past the next scheduled crash) into a rework
  // cascade that says nothing about the combination.
  fault::PlanSpec spec;
  spec.horizon_s = 20.0 * t_healthy;
  spec.restart_delay_s = 0.1 * t_healthy;
  const double slowdown = args.get_double("slowdown", 1.0);
  HETSCALE_REQUIRE(slowdown > 0.0 && slowdown <= 1.0,
                   "--slowdown must be in (0, 1]");
  if (slowdown < 1.0) {
    const fault::PlanSpec preset = scenarios::degraded_plan_spec();
    spec.slowdown_probability = 1.0;
    spec.slowdown_factor = slowdown;
    spec.slowdown_duty = preset.slowdown_duty;
    spec.slowdown_period_s = preset.slowdown_period_s;
  }
  spec.loss.drop_probability = args.get_double("loss", 0.0);
  spec.crash_rate_per_s = args.get_double("crash-rate", 0.0);
  const double interval = args.get_double("checkpoint-interval", 0.0);
  if (interval > 0.0) {
    spec.checkpoint.interval_s = interval;
    spec.checkpoint.bytes = 8.0 * static_cast<double>(n) *
                            static_cast<double>(n) /
                            static_cast<double>(ranks);
    spec.checkpoint.flops =
        static_cast<double>(n) * static_cast<double>(n);
  }
  const auto plan = fault::FaultPlan::generate(seed, spec, ranks);
  const auto d = scal::decompose_faults(*combo, n, plan);

  std::cout << "plan: " << plan.summary() << '\n';
  Table table("Fault overhead decomposition (" + combo->name() +
              ", N = " + std::to_string(n) + ")");
  table.set_header({"quantity", "healthy", "faulty"});
  table.add_row({"elapsed (s)", Table::fixed(d.healthy.seconds, 4),
                 Table::fixed(d.faulty.measurement.seconds, 4)});
  table.add_row({"speed efficiency E_s",
                 Table::fixed(d.healthy.speed_efficiency, 4),
                 Table::fixed(d.faulty.measurement.speed_efficiency, 4)});
  table.add_row({"critical-path overhead (s)",
                 Table::fixed(d.healthy.overhead_s, 4),
                 Table::fixed(d.faulty.measurement.overhead_s, 4)});
  std::cout << table;

  const auto& totals = d.faulty.fault_totals;
  Table faults("Injected fault time (summed over ranks)");
  faults.set_header({"cause", "seconds", "count"});
  faults.add_row({"slowdown stretch", Table::fixed(totals.slowdown_s, 4),
                  "-"});
  faults.add_row({"checkpoints", Table::fixed(totals.checkpoint_s, 4),
                  std::to_string(totals.checkpoints)});
  faults.add_row({"crash rework", Table::fixed(totals.rework_s, 4),
                  std::to_string(totals.crashes)});
  faults.add_row({"retry waits", Table::fixed(totals.retry_s, 4),
                  std::to_string(totals.retries)});
  std::cout << faults;
  std::cout << "fault overhead = " << Table::fixed(d.fault_overhead_s, 4)
            << " s (attributed " << Table::fixed(d.attributed_s, 4)
            << " s on the critical path, residual "
            << Table::fixed(d.residual_s, 4)
            << " s of blocking/contention)\n"
            << "effective marked speed = "
            << Table::fixed(d.faulty.effective_marked_speed / 1e6, 1)
            << " Mflops (healthy C = "
            << Table::fixed(combo->marked_speed() / 1e6, 1)
            << "), efficiency retention = "
            << Table::fixed(d.efficiency_retention, 4) << '\n';
  return 0;
}

// Emit `report` per --format json | prom | table to --out or stdout.
void write_report(const ArgParser& args, const obs::Report& report) {
  const std::string format = args.get_or("format", "table");
  std::ostringstream os;
  if (format == "json") {
    report.to_json(os);
  } else if (format == "prom") {
    report.to_prometheus(os);
  } else if (format == "table") {
    os << report.to_table();
  } else {
    throw PreconditionError("profile supports --format json, prom, or table");
  }
  if (args.has("out")) {
    std::ofstream out(args.get("out"));
    HETSCALE_REQUIRE(out.good(), "cannot open --out file for writing");
    out << os.str();
  } else {
    std::cout << os.str();
  }
}

/// One instrumented run of --algo (ge, mm, sort, jacobi) on --cluster at
/// --n. In profile mode the report goes to stdout (or --out) and the
/// per-rank utilization table to stderr; `trace` keeps its historical
/// contract — utilization on stdout, chrome trace via --out.
int profile_adhoc(const ArgParser& args, bool trace_alias) {
  auto combo = make_combination(args.get_or("algo", "ge"),
                                machine::parse_cluster(args.get("cluster")));
  const auto n = args.get_int("n", 64);
  const auto profiled = scal::profile_run(*combo, n);
  if (trace_alias) {
    std::cout << profiled.utilization;
    if (args.has("out")) {
      std::ofstream out(args.get("out"));
      HETSCALE_REQUIRE(out.good(), "cannot open --out file for writing");
      out << profiled.chrome_trace;
      std::cout << "chrome trace written to " << args.get("out")
                << " (open in chrome://tracing)\n";
    }
    return 0;
  }
  if (args.has("trace-out")) {
    std::ofstream out(args.get("trace-out"));
    HETSCALE_REQUIRE(out.good(), "cannot open --trace-out file for writing");
    out << profiled.chrome_trace;
    std::cerr << "chrome trace written to " << args.get("trace-out")
              << " (open in chrome://tracing)\n";
  }
  std::cerr << profiled.utilization;
  obs::Profiler profiler;
  profiler.add_run(profiled.profile);
  obs::ReportOptions options;
  options.subject = combo->name();
  write_report(args, profiler.report(options));
  return 0;
}

int cmd_profile(const ArgParser& args) {
  const auto& positional = args.positional();
  if (positional.size() > 1) {
    register_all_scenarios();
    const std::string& name = positional[1];
    const run::Scenario* scenario = run::find_scenario(name);
    if (scenario == nullptr) {
      std::cerr << "error: unknown scenario '" << name
                << "' (try: hetscale_cli run list)\n";
      return 2;
    }
    obs::Profiler profiler;
    {
      // Machines constructed while the scope is live publish their
      // RunProfile automatically; the scenario's own artifact output is
      // discarded — the product of `profile` is the report.
      obs::ProfilerScope scope(profiler);
      run::Runner runner(resolve_jobs(args));
      const run::RunContext context{runner, run::OutputFormat::kText,
                                    resolve_seed(args), &profiler};
      (void)scenario->run(context);
    }
    obs::ReportOptions options;
    options.subject = name;
    write_report(args, profiler.report(options));
    return 0;
  }
  HETSCALE_REQUIRE(args.has("cluster"),
                   "profile needs a scenario name or --cluster (see --help)");
  return profile_adhoc(args, /*trace_alias=*/false);
}

// Emit `analysis` per --format json | csv | table to --out or stdout.
void write_analysis(const ArgParser& args, const obs::Analysis& analysis) {
  const std::string format = args.get_or("format", "table");
  std::ostringstream os;
  if (format == "json") {
    analysis.to_json(os);
  } else if (format == "csv") {
    analysis.to_csv(os);
  } else if (format == "table" || format == "text") {
    os << analysis.to_text();
  } else {
    throw PreconditionError("analyze supports --format json, csv, or table");
  }
  if (args.has("out")) {
    std::ofstream out(args.get("out"));
    HETSCALE_REQUIRE(out.good(), "cannot open --out file for writing");
    out << os.str();
  } else {
    std::cout << os.str();
  }
}

/// `hetscale_cli analyze <scenario> | --algo ... --cluster ...` — the
/// communication observatory: critical-path attribution, comm-matrix
/// hotspots, and ladder-queue telemetry for an instrumented run.
int cmd_analyze(const ArgParser& args) {
  obs::AnalysisOptions options;
  options.top = static_cast<int>(args.get_int("top", options.top));
  HETSCALE_REQUIRE(options.top >= 0, "--top must be >= 0");
  const auto& positional = args.positional();
  obs::Profiler profiler;
  if (positional.size() > 1) {
    register_all_scenarios();
    const std::string& name = positional[1];
    const run::Scenario* scenario = run::find_scenario(name);
    if (scenario == nullptr) {
      std::cerr << "error: unknown scenario '" << name
                << "' (try: hetscale_cli run list)\n";
      return 2;
    }
    {
      // Same ambient-profiler contract as `profile`: machines built while
      // the scope is live publish their RunProfile (now including comm
      // cells, critical path, and queue telemetry) automatically.
      obs::ProfilerScope scope(profiler);
      run::Runner runner(resolve_jobs(args));
      const run::RunContext context{runner, run::OutputFormat::kText,
                                    resolve_seed(args), &profiler};
      (void)scenario->run(context);
    }
    options.subject = name;
  } else {
    HETSCALE_REQUIRE(
        args.has("cluster"),
        "analyze needs a scenario name or --cluster (see --help)");
    auto combo = make_combination(
        args.get_or("algo", "ge"),
        machine::parse_cluster(args.get("cluster")));
    const auto n = args.get_int("n", 64);
    const auto profiled = scal::profile_run(*combo, n);
    profiler.add_run(profiled.profile);
    options.subject = combo->name();
  }
  write_analysis(args, obs::Analysis(profiler, options));
  return 0;
}

int dispatch(const std::string& command, const ArgParser& args) {
  if (command == "run") return cmd_run(args);
  if (command == "scenarios") return cmd_scenarios(args);
  if (command == "marked") return cmd_marked(args);
  if (command == "solve") return cmd_solve(args);
  if (command == "curve") return cmd_curve(args);
  if (command == "series") return cmd_series(args);
  if (command == "predict") return cmd_predict(args);
  if (command == "fit") return cmd_fit(args);
  if (command == "profile") return cmd_profile(args);
  if (command == "analyze") return cmd_analyze(args);
  if (command == "trace") return profile_adhoc(args, /*trace_alias=*/true);
  if (command == "inject") return cmd_inject(args);
  std::cout << "hetscale_cli — isospeed-efficiency scalability analyses\n"
            << "commands: run | scenarios | marked | solve | curve | series "
               "| predict | fit | profile | analyze | trace | inject\n\n"
            << args.help("hetscale_cli <command>");
  return command.empty() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("cluster", "cluster description, e.g. \"server:2,sunbladex3\"")
      .add_flag("algo",
                "algorithm: ge, mm, sort, jacobi, summa, ge_pivot, spmv, "
                "spmv-hom",
                "ge")
      .add_flag("target", "target speed-efficiency", "0.3")
      .add_flag("ladder", "comma-separated ensemble node counts", "2,4,8")
      .add_flag("from", "curve: first N", "32")
      .add_flag("to", "curve: last N", "512")
      .add_flag("step", "curve: N increment", "32")
      .add_flag("n", "profile/trace: problem size", "64")
      .add_flag("nmin", "solve: search floor", "4")
      .add_flag("out", "profile: report file; trace: chrome-trace file")
      .add_flag("trace-out", "profile: chrome-trace output file")
      .add_flag("format",
                "run: text, csv, json; fit: json, csv, table; profile: "
                "json, prom, table; analyze: json, csv, table",
                "text")
      .add_flag("top", "analyze: hotspot edges per ranking", "10")
      .add_bool("profile", "run: also print the obs report to stderr")
      .add_flag("slowdown", "inject: straggler compute-rate factor", "1.0")
      .add_flag("loss", "inject: per-transmission drop probability", "0.0")
      .add_flag("crash-rate", "inject: crashes per second per rank", "0.0")
      .add_flag("checkpoint-interval", "inject: checkpoint period (s)",
                "0.0")
      .add_bool("no-measure-cache",
                "disable the cross-scenario measurement store")
      .add_flag("measure-cache",
                "measurement-store file: loaded before the command, "
                "saved after");
  add_jobs_flag(args);
  add_sim_threads_flag(args);
  add_seed_flag(args);
  try {
    args.parse(argc - 1, argv + 1);
    set_global_sim_threads(resolve_sim_threads(args));
    auto& store = scal::MeasurementStore::global();
    if (args.has("no-measure-cache")) store.set_enabled(false);
    const std::string cache_path = args.get_or("measure-cache", "");
    if (store.enabled() && !cache_path.empty()) {
      // A missing file is the first run; a version mismatch starts fresh.
      (void)store.load_file(cache_path);
    }
    const auto& positional = args.positional();
    const std::string command = positional.empty() ? "" : positional.front();
    const int code = dispatch(command, args);
    if (store.enabled() && !cache_path.empty()) {
      if (!store.save_file(cache_path)) {
        std::cerr << "warning: could not write measurement cache to '"
                  << cache_path << "'\n";
      }
    }
    return code;
  } catch (const hetscale::Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
