// Micro-benchmarks of the communication observatory's hot paths.
//
// BM_CommMatrixRecord times the per-message cost the vmpi send/recv hooks
// pay when tracing is ON — one map-backed cell update per record — over a
// realistic working set (an 8-rank all-pairs matrix across three phases).
// BM_CriticalPath times the full backward walk over a synthetic ping-pong
// span DAG of the shape the analyzer sees per run: two lanes, alternating
// compute and recv.wait, one message hop per round.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "hetscale/obs/comm_matrix.hpp"
#include "hetscale/obs/critical_path.hpp"
#include "hetscale/obs/span.hpp"

namespace {

using namespace hetscale;

void BM_CommMatrixRecord(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  obs::CommMatrix warm;
  for (auto _ : state) {
    // Cycle through all (src, dst) pairs and three phases, the mix a
    // collective-heavy run produces; the matrix stays warm across
    // iterations like it does across a run.
    int phase = 0;
    for (int src = 0; src < ranks; ++src) {
      for (int dst = 0; dst < ranks; ++dst) {
        if (src == dst) continue;
        warm.record_send(src, dst,
                         static_cast<obs::CommPhase>(phase % 3), 1024.0);
        ++phase;
      }
    }
    benchmark::DoNotOptimize(warm.total_messages());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ranks) * (ranks - 1));
}
BENCHMARK(BM_CommMatrixRecord)->Arg(8);

void BM_CriticalPath(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  obs::SpanStore store;
  const int compute = store.intern("compute");
  const int recv = store.intern("recv.wait");
  std::vector<obs::PathMessage> messages;
  double t = 0.0;
  for (int round = 0; round < rounds; ++round) {
    const int src = round % 2;
    const int dst = 1 - src;
    store.record(src, compute, t, t + 0.1);
    store.record(dst, recv, t, t + 0.2, /*peer=*/src, /*tag=*/1);
    messages.push_back(
        obs::PathMessage{src, dst, 1, 8.0, t + 0.1, t + 0.2});
    t += 0.2;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::critical_path(store, messages, t));
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_CriticalPath)->Arg(256)->Arg(2048);

}  // namespace
