// Table 1 — "Marked speed of Sunwulf nodes (Mflops)".
//
// Runs the NPB-flavoured marked-speed suite (marked/) on one CPU of each
// Sunwulf node type and prints the per-node sustained averages, plus the
// per-kernel breakdown the paper's methodology implies, plus the worked
// example from §4.3 (server 1 CPU + SunBlade + 2x V210 1 CPU).
#include <iostream>

#include "common.hpp"
#include "hetscale/marked/suite.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Table 1  Marked speed of Sunwulf nodes (Mflops)",
      "Suite: EP, LU, FT, BT, MG kernels on one CPU per node type; marked "
      "speed = mean sustained rate (Definitions 1-2).");

  const machine::NodeSpec specs[] = {machine::sunwulf::server_spec(),
                                     machine::sunwulf::sunblade_spec(),
                                     machine::sunwulf::v210_spec()};
  const char* labels[] = {"Server Node (1 CPU)", "SunBlade",
                          "SunFire V210 (1 CPU)"};

  Table per_kernel("Per-kernel sustained rate (Mflops)");
  {
    std::vector<std::string> header{"Node"};
    for (auto name : marked::kKernelNames) header.emplace_back(name);
    header.emplace_back("Marked Speed");
    per_kernel.set_header(std::move(header));
  }
  for (int i = 0; i < 3; ++i) {
    const auto results = marked::run_suite(specs[i]);
    std::vector<std::string> row{labels[i]};
    for (const auto& r : results) {
      row.push_back(bench::mflops_str(r.rate_flops));
    }
    row.push_back(bench::mflops_str(marked::node_marked_speed(specs[i])));
    per_kernel.add_row(std::move(row));
  }
  std::cout << per_kernel << '\n';

  // §4.3 worked example: C = server(1cpu) + SunBlade + 2 x V210(1cpu).
  machine::Cluster example;
  example.add_node("sunwulf", machine::sunwulf::server_spec(), 1);
  example.add_node("hpc-1", machine::sunwulf::sunblade_spec());
  example.add_node("hpc-65", machine::sunwulf::v210_spec(), 1);
  example.add_node("hpc-66", machine::sunwulf::v210_spec(), 1);
  std::cout << "Worked example (paper §4.3): C[" << example.summary()
            << "] = " << bench::mflops_str(marked::system_marked_speed(example))
            << " Mflops\n";
  return 0;
}
