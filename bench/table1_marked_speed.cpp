// Table 1 — "Marked speed of Sunwulf nodes (Mflops)".
//
// Thin launcher for the table1_marked_speed scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/paper.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_paper_scenarios();
  return hetscale::run::scenario_main("table1_marked_speed", argc, argv);
}
