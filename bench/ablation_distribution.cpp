// Ablation — heterogeneous vs homogeneous data distribution.
//
// The paper's algorithms distribute data proportionally to marked speeds.
// This ablation quantifies what that buys: MM run with heterogeneous vs
// equal row blocks on the mixed ensembles, and the load-balance quality of
// the distributions themselves.
#include <iostream>

#include "common.hpp"
#include "hetscale/algos/mm.hpp"
#include "hetscale/dist/distribution.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/scal/metrics.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Ablation  Heterogeneous vs homogeneous distribution",
      "MM on mixed ensembles, rows-by-marked-speed vs equal rows.");

  Table table;
  table.set_header({"Nodes", "N", "T het (s)", "T hom (s)", "speedup",
                    "imbalance het", "imbalance hom"});
  for (int nodes : {2, 4, 8, 16}) {
    const std::int64_t n = 64 * nodes;
    auto run = [&](algos::MmDistribution distribution) {
      auto machine =
          vmpi::Machine::switched(machine::sunwulf::mm_ensemble(nodes));
      algos::MmOptions options;
      options.n = n;
      options.with_data = false;
      options.distribution = distribution;
      return algos::run_parallel_mm(machine, options).run.elapsed;
    };
    const double t_het = run(algos::MmDistribution::kHeterogeneousBlock);
    const double t_hom = run(algos::MmDistribution::kHomogeneousBlock);

    const auto speeds =
        marked::rank_marked_speeds(machine::sunwulf::mm_ensemble(nodes));
    const auto het_counts = dist::het_block_counts(speeds, n);
    const auto hom_counts =
        dist::block_counts(static_cast<int>(speeds.size()), n);
    table.add_row({std::to_string(nodes), std::to_string(n),
                   Table::fixed(t_het, 4), Table::fixed(t_hom, 4),
                   Table::fixed(t_hom / t_het, 3),
                   Table::fixed(dist::imbalance(speeds, het_counts), 3),
                   Table::fixed(dist::imbalance(speeds, hom_counts), 3)});
  }
  std::cout << table;
  std::cout << "(proportional distribution keeps the imbalance near 1.0; "
               "equal blocks stall on the slowest CPUs)\n";
  return 0;
}
