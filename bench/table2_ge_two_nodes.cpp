// Table 2 — "Experimental results on two nodes" (GE).
//
// Thin launcher for the table2_ge_two_nodes scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/paper.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_paper_scenarios();
  return hetscale::run::scenario_main("table2_ge_two_nodes", argc, argv);
}
