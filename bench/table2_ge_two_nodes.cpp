// Table 2 — "Experimental results on two nodes" (GE).
//
// GE on the 2-node ensemble (server with 2 CPUs + 1 SunBlade): for a ladder
// of matrix ranks N, print workload W(N), execution time T, achieved speed
// S = W/T, and speed-efficiency E_s = S/C — the exact columns of Table 2.
#include <iostream>

#include "common.hpp"
#include "hetscale/scal/metrics.hpp"

int main() {
  using namespace hetscale;
  auto combo = bench::make_ge(2);
  bench::print_header(
      "Table 2  Experimental results on two nodes",
      "GE on " + combo->cluster().summary() +
          "; C = " + bench::mflops_str(combo->marked_speed()) + " Mflops");

  Table table;
  table.set_header({"Rank N", "Workload W (Mflop)", "Execution Time T (s)",
                    "Achieved Speed (Mflops)", "Speed-efficiency"});
  for (std::int64_t n : {50, 100, 150, 200, 250, 310, 400, 500, 640, 800}) {
    const auto& m = combo->measure(n);
    table.add_row({std::to_string(n), Table::fixed(m.work_flops / 1e6, 2),
                   Table::fixed(m.seconds, 3),
                   bench::mflops_str(m.speed_flops),
                   Table::fixed(m.speed_efficiency, 3)});
  }
  std::cout << table;
  return 0;
}
