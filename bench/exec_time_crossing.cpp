// Scalability versus execution time (paper ref [8]) — crossing-point
// analysis: from which problem size onward does the larger system beat the
// smaller one outright, and how does that relate to ψ?
#include <iostream>

#include "common.hpp"
#include "hetscale/scal/exec_time.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/metrics.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Execution-time crossing points  (scalability vs execution time)",
      "Smallest N where the bigger GE system becomes faster than the "
      "2-node one.");

  auto base = bench::make_ge(2);
  Table table;
  table.set_header({"vs system", "crossing N", "T small (s)", "T big (s)",
                    "psi(2 -> big)"});
  for (int nodes : {4, 8, 16}) {
    auto big = bench::make_ge(nodes);
    const auto crossing =
        scal::find_time_crossing(*base, *big, 16, 1 << 14);
    const auto base_point =
        scal::required_problem_size(*base, bench::kGeTargetEs);
    const auto big_point =
        scal::required_problem_size(*big, bench::kGeTargetEs);
    const double psi = scal::isospeed_efficiency_scalability(
        base->marked_speed(), base->work(base_point.n), big->marked_speed(),
        big->work(big_point.n));
    table.add_row({big->name(),
                   crossing.exists ? std::to_string(crossing.n) : "none",
                   crossing.exists ? Table::fixed(crossing.time_a, 3) : "-",
                   crossing.exists ? Table::fixed(crossing.time_b, 3) : "-",
                   Table::fixed(psi, 3)});
  }
  std::cout << table;
  std::cout << "(below the crossing the extra nodes only add communication; "
               "scalability tells you how fast the advantage grows past it "
               "— ref [8]'s two views of the same phenomenon)\n";
  return 0;
}
