// Table 6 — "Predicted required rank" (GE).
//
// The paper's §4.5 pipeline: measure the machine's communication parameters
// with micro-probes (T_send, T_bcast, T_barrier as functions of size and
// p), plug them into the analytic GE overhead model, and solve the
// isospeed-efficiency condition for the N that holds E_s = 0.3 on each
// system — no full application runs involved.
#include <iostream>

#include "common.hpp"
#include "hetscale/predict/models.hpp"
#include "hetscale/predict/probe.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Table 6  Predicted required rank (GE, E_s = 0.3)",
      "Micro-probed comm parameters + analytic overhead model (paper §4.5).");

  predict::ProbeConfig probe_config{
      .node = machine::sunwulf::sunblade_spec()};
  const auto comm = predict::probe_comm_model(probe_config);
  std::cout << "Measured machine parameters:\n"
            << "  T_send(m)      = " << Table::fixed(comm.send_alpha_s * 1e3, 4)
            << " ms + " << Table::fixed(comm.send_beta_s_per_byte * 1e6, 4)
            << " us/byte\n"
            << "  T_bcast(p,m)   = " << Table::fixed(comm.bcast_const_s * 1e3, 4)
            << " ms + (p-1) * (" << Table::fixed(comm.bcast_alpha_s * 1e3, 4)
            << " ms + " << Table::fixed(comm.bcast_beta_s_per_byte * 1e6, 4)
            << " us/byte)\n"
            << "  T_barrier(p)   = "
            << Table::fixed(comm.barrier_const_s * 1e3, 4) << " ms + (p-1) * "
            << Table::fixed(comm.barrier_unit_s * 1e3, 4) << " ms\n\n";

  predict::GeOverheadModel model;
  Table table;
  table.set_header({"Nodes", "N (prediction)"});
  for (int nodes : bench::kPaperNodeCounts) {
    const auto system = predict::system_model_for(
        machine::sunwulf::ge_ensemble(nodes), comm);
    const auto n =
        predict::predicted_required_size(model, system, bench::kGeTargetEs);
    table.add_row({std::to_string(nodes), std::to_string(n)});
  }
  std::cout << table;
  std::cout << "(compare against the measured Table 3 ranks)\n";
  return 0;
}
