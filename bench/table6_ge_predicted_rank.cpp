// Table 6 — "Predicted required rank" (GE).
//
// Thin launcher for the table6_ge_predicted_rank scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/paper.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_paper_scenarios();
  return hetscale::run::scenario_main("table6_ge_predicted_rank", argc,
                                      argv);
}
