// Table 7 — "Predicted scalability of GE on Sunwulf".
//
// Theorem 1 / Corollary 2 applied to the analytic overhead model with
// micro-probed machine parameters, side by side with the *measured* ψ from
// full simulated runs (Table 4) — the paper's headline check: "the
// predicted scalability is close to our measured scalability".
#include <iostream>

#include "common.hpp"
#include "hetscale/numeric/stats.hpp"
#include "hetscale/predict/models.hpp"
#include "hetscale/predict/probe.hpp"
#include "hetscale/scal/series.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Table 7  Predicted scalability of GE on Sunwulf",
      "Theorem 1 with probed parameters vs measured psi at E_s = 0.3.");

  const auto comm = predict::probe_comm_model(
      predict::ProbeConfig{.node = machine::sunwulf::sunblade_spec()});
  predict::GeOverheadModel model;

  // Measured ladder (as in Table 4).
  std::vector<std::unique_ptr<scal::GeCombination>> combos;
  std::vector<scal::Combination*> ptrs;
  for (int nodes : bench::kPaperNodeCounts) {
    combos.push_back(bench::make_ge(nodes));
    ptrs.push_back(combos.back().get());
  }
  const auto measured = scal::scalability_series(ptrs, bench::kGeTargetEs);

  Table table;
  table.set_header(
      {"Step", "psi (predicted)", "psi (measured)", "rel. error"});
  for (std::size_t i = 0; i + 1 < bench::kPaperNodeCounts.size(); ++i) {
    const auto from = predict::system_model_for(
        machine::sunwulf::ge_ensemble(bench::kPaperNodeCounts[i]), comm);
    const auto to = predict::system_model_for(
        machine::sunwulf::ge_ensemble(bench::kPaperNodeCounts[i + 1]), comm);
    const double predicted =
        predict::predicted_scalability(model, from, to, bench::kGeTargetEs);
    const double got = measured.steps[i].psi;
    table.add_row({"psi(C" + std::to_string(bench::kPaperNodeCounts[i]) +
                       ", C" + std::to_string(bench::kPaperNodeCounts[i + 1]) +
                       ")",
                   Table::fixed(predicted, 4), Table::fixed(got, 4),
                   Table::fixed(numeric::relative_error(predicted, got), 3)});
  }
  std::cout << table;
  std::cout << "(paper finding: prediction close to measurement, validating "
               "the isospeed-efficiency metric)\n";
  return 0;
}
