// Table 7 — "Predicted scalability of GE on Sunwulf".
//
// Thin launcher for the table7_ge_predicted_scalability scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/paper.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_paper_scenarios();
  return hetscale::run::scenario_main("table7_ge_predicted_scalability", argc,
                                      argv);
}
