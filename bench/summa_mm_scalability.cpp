// SUMMA on the speed-balanced 2D grid vs the 1D row algorithm.
//
// Thin launcher for the summa_mm_scalability scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/dist2d.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_dist2d_scenarios();
  return hetscale::run::scenario_main("summa_mm_scalability", argc, argv);
}
