// MM under crash/restart — the checkpoint interval trade.
//
// Thin launcher for the fault_mm_crash_restart scenario (src/scenarios);
// supports --format=text|csv|json, --jobs N, and --seed N like
// `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/fault.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_fault_scenarios();
  return hetscale::run::scenario_main("fault_mm_crash_restart", argc, argv);
}
