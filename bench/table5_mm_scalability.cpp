// Table 5 — "Scalability of MM on Sunwulf".
//
// ψ between consecutive MM systems at E_s = 0.2, and the §4.4.3 comparison
// against GE's Table 4 values (MM-Sunwulf should be the more scalable
// combination).
#include <iostream>

#include "common.hpp"
#include "hetscale/scal/series.hpp"

int main() {
  using namespace hetscale;
  bench::print_header("Table 5  Scalability of MM on Sunwulf",
                      "psi at E_s = 0.2 on the mixed ensembles.");

  std::vector<std::unique_ptr<scal::MmCombination>> mm_combos;
  std::vector<scal::Combination*> mm_ptrs;
  for (int nodes : bench::kPaperNodeCounts) {
    mm_combos.push_back(bench::make_mm(nodes));
    mm_ptrs.push_back(mm_combos.back().get());
  }
  const auto mm = scal::scalability_series(mm_ptrs, bench::kMmTargetEs);

  Table table;
  table.set_header({"Step", "Required N", "psi"});
  for (std::size_t i = 0; i < mm.steps.size(); ++i) {
    table.add_row({"psi(" + mm.steps[i].from + " -> " + mm.steps[i].to + ")",
                   std::to_string(mm.points[i + 1].n),
                   Table::fixed(mm.steps[i].psi, 4)});
  }
  table.add_row({"cumulative psi(C2' -> C32')", "",
                 Table::fixed(mm.cumulative_psi(), 4)});
  std::cout << table << '\n';

  // §4.4.3 comparison against the GE ladder.
  std::vector<std::unique_ptr<scal::GeCombination>> ge_combos;
  std::vector<scal::Combination*> ge_ptrs;
  for (int nodes : bench::kPaperNodeCounts) {
    ge_combos.push_back(bench::make_ge(nodes));
    ge_ptrs.push_back(ge_combos.back().get());
  }
  const auto ge = scal::scalability_series(ge_ptrs, bench::kGeTargetEs);
  std::cout << "GE cumulative psi = " << Table::fixed(ge.cumulative_psi(), 4)
            << " vs MM cumulative psi = "
            << Table::fixed(mm.cumulative_psi(), 4)
            << (mm.cumulative_psi() > ge.cumulative_psi()
                    ? "  -> MM-Sunwulf is the more scalable combination "
                      "(matches paper §4.4.3)"
                    : "  -> UNEXPECTED: GE came out ahead")
            << '\n';
  return 0;
}
