// Micro-benchmarks of the collective algorithm families at large p: the
// paper-era flat family (CollectiveTuning::legacy_flat()) against the
// logarithmic tree family (the defaults) for bcast, barrier, and reduce at
// 64 / 512 / 2048 ranks.
//
// Two numbers per run:
//   * wall-clock (google-benchmark real_time) — what the simulator pays to
//     execute the collective, the quantity BENCH_PR9.json holds CI to;
//   * sim_s counter — the *simulated* completion time of the collective,
//     where the algorithmic gap lives: flat is Θ(p) rounds, tree Θ(log p),
//     so the flat/tree sim_s ratio at p >= 1024 is the >=5x speedup the
//     large-p engine is built on.
//
// Receive-side software overhead is enabled (NetworkParams::recv_overhead_s,
// off everywhere else): without it, incast is free — the p-1 concurrent
// child->root sends of a flat gather/reduce all land in parallel and the
// flat reduce looks constant-time, which no real NIC + MPI stack delivers.
// With the root charged per matched message, flat reduce shows its true
// Θ(p) root-processing cost against the combining tree's Θ(log p).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "hetscale/machine/cluster.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/net/network.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace {

using namespace hetscale;
using des::Task;

machine::Cluster blades(int n) {
  machine::Cluster cluster;
  for (int i = 0; i < n; ++i) {
    cluster.add_node("n" + std::to_string(i),
                     machine::sunwulf::sunblade_spec());
  }
  return cluster;
}

constexpr int kRounds = 10;

/// One timed run's outputs: the simulated completion time plus the number
/// of host-side scheduler events it took to produce it.
struct CollectiveRun {
  double sim_s = 0.0;
  std::uint64_t events = 0;
};

/// One timed run: `rounds` back-to-back collectives on a fresh machine.
template <class Body>
CollectiveRun run_collective(const machine::Cluster& cluster,
                             const vmpi::CollectiveTuning& tuning, Body body) {
  net::NetworkParams params;  // paper calibration, plus receiver-side cost
  params.recv_overhead_s = params.per_message_overhead_s;
  auto machine = vmpi::Machine::switched(cluster, params, tuning);
  const double sim_s = machine.run(body).elapsed;
  return CollectiveRun{sim_s, machine.scheduler().events_processed()};
}

/// Publish per-run counters: the simulated completion time, and the host
/// event-processing rate (scheduler events per wall second) — the engine
/// throughput number that event-loop and payload-pooling work moves.
void set_counters(benchmark::State& state, const CollectiveRun& run,
                  std::uint64_t total_events) {
  state.counters["sim_s"] = benchmark::Counter(run.sim_s);
  state.counters["host_events_per_s"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
}

void bcast_rounds(benchmark::State& state,
                  const vmpi::CollectiveTuning& tuning) {
  const auto cluster = blades(static_cast<int>(state.range(0)));
  CollectiveRun run;
  std::uint64_t events = 0;
  for (auto _ : state) {
    run = run_collective(cluster, tuning, [](vmpi::Comm& comm) -> Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        vmpi::Payload payload;
        if (comm.rank() == 0) payload = vmpi::Payload(1.0);
        (void)co_await comm.bcast(0, 64.0, std::move(payload));
      }
    });
    events += run.events;
    benchmark::DoNotOptimize(run.sim_s);
  }
  state.SetItemsProcessed(state.iterations() * kRounds * state.range(0));
  set_counters(state, run, events);
}

void barrier_rounds(benchmark::State& state,
                    const vmpi::CollectiveTuning& tuning) {
  const auto cluster = blades(static_cast<int>(state.range(0)));
  CollectiveRun run;
  std::uint64_t events = 0;
  for (auto _ : state) {
    run = run_collective(cluster, tuning, [](vmpi::Comm& comm) -> Task<void> {
      for (int i = 0; i < kRounds; ++i) co_await comm.barrier();
    });
    events += run.events;
    benchmark::DoNotOptimize(run.sim_s);
  }
  state.SetItemsProcessed(state.iterations() * kRounds * state.range(0));
  set_counters(state, run, events);
}

void reduce_rounds(benchmark::State& state,
                   const vmpi::CollectiveTuning& tuning) {
  const auto cluster = blades(static_cast<int>(state.range(0)));
  CollectiveRun run;
  std::uint64_t events = 0;
  for (auto _ : state) {
    run = run_collective(cluster, tuning, [](vmpi::Comm& comm) -> Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        (void)co_await comm.reduce_sum(0, 1.0);
      }
    });
    events += run.events;
    benchmark::DoNotOptimize(run.sim_s);
  }
  state.SetItemsProcessed(state.iterations() * kRounds * state.range(0));
  set_counters(state, run, events);
}

void gather_rounds(benchmark::State& state,
                   const vmpi::CollectiveTuning& tuning) {
  // Exercises the pooled-bundle hot path: the binomial gather ships whole
  // subtrees as native bundle payloads (Payload::make_bundle), so a warm
  // tree edge moves parts without touching the heap.
  const auto cluster = blades(static_cast<int>(state.range(0)));
  CollectiveRun run;
  std::uint64_t events = 0;
  for (auto _ : state) {
    run = run_collective(cluster, tuning, [](vmpi::Comm& comm) -> Task<void> {
      for (int i = 0; i < kRounds; ++i) {
        (void)co_await comm.gather(0, 64.0, vmpi::Payload(1.0));
      }
    });
    events += run.events;
    benchmark::DoNotOptimize(run.sim_s);
  }
  state.SetItemsProcessed(state.iterations() * kRounds * state.range(0));
  set_counters(state, run, events);
}

void BM_BcastFlat(benchmark::State& state) {
  bcast_rounds(state, vmpi::CollectiveTuning::legacy_flat());
}
void BM_BcastTree(benchmark::State& state) {
  bcast_rounds(state, vmpi::CollectiveTuning::tree());
}
void BM_BarrierFlat(benchmark::State& state) {
  barrier_rounds(state, vmpi::CollectiveTuning::legacy_flat());
}
void BM_BarrierTree(benchmark::State& state) {
  barrier_rounds(state, vmpi::CollectiveTuning::tree());
}
void BM_ReduceFlat(benchmark::State& state) {
  reduce_rounds(state, vmpi::CollectiveTuning::legacy_flat());
}
void BM_ReduceTree(benchmark::State& state) {
  reduce_rounds(state, vmpi::CollectiveTuning::tree());
}
void BM_GatherFlat(benchmark::State& state) {
  gather_rounds(state, vmpi::CollectiveTuning::legacy_flat());
}
void BM_GatherTree(benchmark::State& state) {
  gather_rounds(state, vmpi::CollectiveTuning::tree());
}

BENCHMARK(BM_BcastFlat)->Arg(64)->Arg(512)->Arg(2048);
BENCHMARK(BM_BcastTree)->Arg(64)->Arg(512)->Arg(2048);
BENCHMARK(BM_BarrierFlat)->Arg(64)->Arg(512)->Arg(2048);
BENCHMARK(BM_BarrierTree)->Arg(64)->Arg(512)->Arg(2048);
BENCHMARK(BM_ReduceFlat)->Arg(64)->Arg(512)->Arg(2048);
BENCHMARK(BM_ReduceTree)->Arg(64)->Arg(512)->Arg(2048);
BENCHMARK(BM_GatherFlat)->Arg(64)->Arg(512)->Arg(2048);
BENCHMARK(BM_GatherTree)->Arg(64)->Arg(512)->Arg(2048);

}  // namespace
