// Multi-parameter marked performance — the paper's future-work section,
// implemented: per-node compute / memory / network sustained measures, and
// effective system speeds under different application profiles.
#include <iostream>

#include "common.hpp"
#include "hetscale/marked/performance.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Marked performance  (multi-parameter extension, paper §5)",
      "Per-node sustained compute/memory/network; effective marked speed "
      "under application profiles.");

  const machine::NodeSpec specs[] = {machine::sunwulf::server_spec(),
                                     machine::sunwulf::sunblade_spec(),
                                     machine::sunwulf::v210_spec()};

  Table table("Per-node marked performance vector");
  table.set_header({"Node", "compute (Mflops)", "memory (MB/s)",
                    "network (MB/s)", "net latency (us)"});
  for (const auto& spec : specs) {
    const auto perf = marked::node_marked_performance(spec);
    table.add_row({spec.model, bench::mflops_str(perf.compute_flops),
                   Table::fixed(perf.memory_Bps / 1e6, 0),
                   Table::fixed(perf.network_Bps / 1e6, 2),
                   Table::fixed(perf.network_latency_s * 1e6, 1)});
  }
  std::cout << table << '\n';

  Table eff("Effective marked speed (Mflops) by application profile");
  eff.set_header({"Node", "compute-bound", "stream-like (12 B/flop mem)",
                  "exchange-heavy (+0.5 B/flop net)"});
  marked::ApplicationProfile stream;
  stream.memory_bytes_per_flop = 12.0;
  marked::ApplicationProfile exchange = stream;
  exchange.network_bytes_per_flop = 0.5;
  for (const auto& spec : specs) {
    const auto perf = marked::node_marked_performance(spec);
    eff.add_row(
        {spec.model,
         bench::mflops_str(marked::effective_marked_speed(
             perf, marked::compute_bound_profile())),
         bench::mflops_str(marked::effective_marked_speed(perf, stream)),
         bench::mflops_str(marked::effective_marked_speed(perf, exchange))});
  }
  std::cout << eff;
  std::cout << "(the V210's memory system widens its lead on memory-bound "
               "profiles; network intensity flattens everyone — exactly why "
               "one number cannot describe a heterogeneous node)\n";
  return 0;
}
