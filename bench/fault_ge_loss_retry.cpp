// GE under transient message loss — drop-probability ladder.
//
// Thin launcher for the fault_ge_loss_retry scenario (src/scenarios);
// supports --format=text|csv|json, --jobs N, and --seed N like
// `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/fault.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_fault_scenarios();
  return hetscale::run::scenario_main("fault_ge_loss_retry", argc, argv);
}
