// Ablation — what if Sunwulf had a modern MPI?
//
// The paper measured flat, Θ(p) collectives (T_bcast ≈ 0.23·p ms). This
// ablation re-runs the GE ladder with binomial-tree short broadcasts
// (Θ(log p), what today's MPIs do) and compares required problem sizes and
// ψ: how much of GE's limited scalability was the collective algorithm?
#include <iostream>

#include "common.hpp"
#include "hetscale/algos/ge.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/metrics.hpp"

namespace {

using namespace hetscale;

/// GE combination with an overridden collective tuning.
class TunedGeCombination final : public scal::ClusterCombination {
 public:
  TunedGeCombination(std::string name, Config config,
                     vmpi::CollectiveTuning tuning)
      : ClusterCombination(std::move(name), std::move(config)),
        tuning_(tuning) {}

  double work(std::int64_t n) const override {
    return numeric::ge_workload(static_cast<double>(n));
  }

 private:
  // The tuning changes timing, so it must be part of the measurement-store
  // fingerprint — otherwise flat and binomial runs would alias.
  std::string algo_key() const override {
    return "ge:bcast=" + std::to_string(static_cast<int>(tuning_.small_bcast)) +
           ",large>=" + std::to_string(tuning_.large_bcast_threshold_bytes);
  }

  RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const override {
    machine.set_tuning(tuning_);
    algos::GeOptions options;
    options.n = n;
    options.with_data = false;
    options.speeds = rank_speeds();
    const auto result = algos::run_parallel_ge(machine, options);
    return RunOutcome{result.work_flops, result.run.elapsed,
                      result.run.overhead_s()};
  }

  vmpi::CollectiveTuning tuning_;
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation  Collective algorithms (flat vs binomial bcast)",
      "GE ladder at E_s = 0.3 under the paper's flat-tree MPI vs a "
      "binomial-tree one.");

  vmpi::CollectiveTuning flat;  // defaults: flat, matches the paper's MPICH
  vmpi::CollectiveTuning tree;
  tree.small_bcast = vmpi::BcastAlgorithm::kBinomialTree;

  Table table;
  table.set_header({"Nodes", "N (flat)", "N (binomial)", "psi step (flat)",
                    "psi step (binomial)"});
  double prev_flat_c = 0;
  double prev_flat_w = 0;
  double prev_tree_c = 0;
  double prev_tree_w = 0;
  for (int nodes : {2, 4, 8, 16}) {
    TunedGeCombination with_flat("flat", bench::ge_config(nodes), flat);
    TunedGeCombination with_tree("tree", bench::ge_config(nodes), tree);
    const auto flat_point =
        scal::required_problem_size(with_flat, bench::kGeTargetEs);
    const auto tree_point =
        scal::required_problem_size(with_tree, bench::kGeTargetEs);
    std::string flat_psi = "-";
    std::string tree_psi = "-";
    if (prev_flat_c > 0) {
      flat_psi = Table::fixed(
          scal::isospeed_efficiency_scalability(
              prev_flat_c, prev_flat_w, with_flat.marked_speed(),
              with_flat.work(flat_point.n)),
          3);
      tree_psi = Table::fixed(
          scal::isospeed_efficiency_scalability(
              prev_tree_c, prev_tree_w, with_tree.marked_speed(),
              with_tree.work(tree_point.n)),
          3);
    }
    table.add_row({std::to_string(nodes), std::to_string(flat_point.n),
                   std::to_string(tree_point.n), flat_psi, tree_psi});
    prev_flat_c = with_flat.marked_speed();
    prev_flat_w = with_flat.work(flat_point.n);
    prev_tree_c = with_tree.marked_speed();
    prev_tree_w = with_tree.work(tree_point.n);
  }
  std::cout << table;
  std::cout << "(binomial collectives shrink the required problem sizes and "
               "lift psi — a large share of GE's 2005 scalability ceiling "
               "was the flat MPI, not the algorithm)\n";
  return 0;
}
