// Sparse GEMV: heterogeneous vs homogeneous row split.
//
// Thin launcher for the spmv_imbalance scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/dist2d.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_dist2d_scenarios();
  return hetscale::run::scenario_main("spmv_imbalance", argc, argv);
}
