// Memory-bounded scalability — the Sun & Ni connection (paper ref [9]).
//
// Holding E_s constant needs growing problems; 128 MB SunBlades cannot grow
// forever. On all-SunBlade ensembles, GE's root rank must hold the full
// system, so past some ensemble size the E_s = 0.3 operating point stops
// fitting: the combination is memory-bound at that efficiency. The paper's
// mixed ensembles dodge this because the 4 GB server hosts rank 0 —
// heterogeneity as a capacity feature, not just a speed mix.
#include <iostream>

#include "common.hpp"
#include "hetscale/scal/capacity.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Memory-bounded scaling  GE at E_s = 0.3 on all-SunBlade systems",
      "Required N vs the largest N that fits (root holds the full matrix "
      "in 128 MB).");

  Table table;
  table.set_header({"SunBlades", "N required", "N that fits", "verdict"});
  for (int nodes : {2, 4, 8, 16, 32}) {
    scal::ClusterCombination::Config config;
    config.cluster = machine::sunwulf::homogeneous_ensemble(nodes);
    config.with_data = false;
    scal::GeCombination combo("blades-" + std::to_string(nodes),
                              std::move(config));
    const auto result = scal::memory_bounded_required_size(
        combo, bench::kGeTargetEs, scal::ge_footprint());
    table.add_row(
        {std::to_string(nodes),
         result.solve.found ? std::to_string(result.solve.n) : "> fits",
         std::to_string(result.n_limit),
         result.memory_bound ? "MEMORY-BOUND" : "ok"});
  }
  std::cout << table << '\n';

  // The paper's mixed ensembles for contrast.
  Table mixed("Same question on the paper's mixed ensembles (server root)");
  mixed.set_header({"Nodes", "N required", "N that fits", "verdict"});
  for (int nodes : {8, 32}) {
    scal::ClusterCombination::Config config;
    config.cluster = machine::sunwulf::ge_ensemble(nodes);
    config.with_data = false;
    scal::GeCombination combo("ge-" + std::to_string(nodes),
                              std::move(config));
    const auto result = scal::memory_bounded_required_size(
        combo, bench::kGeTargetEs, scal::ge_footprint());
    mixed.add_row(
        {std::to_string(nodes),
         result.solve.found ? std::to_string(result.solve.n) : "> fits",
         std::to_string(result.n_limit),
         result.memory_bound ? "MEMORY-BOUND" : "ok"});
  }
  std::cout << mixed;
  return 0;
}
