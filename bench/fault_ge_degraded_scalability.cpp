// GE scalability under a seeded degradation plan.
//
// Thin launcher for the fault_ge_degraded_scalability scenario
// (src/scenarios); supports --format=text|csv|json, --jobs N, and --seed N
// like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/fault.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_fault_scenarios();
  return hetscale::run::scenario_main("fault_ge_degraded_scalability", argc,
                                      argv);
}
