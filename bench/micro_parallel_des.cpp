// Macro-benchmark of the partitioned conservative DES core: the large-p
// GE rungs (the `large_p_scalability` workload this engine was built for)
// at --sim-threads 1 vs 2 vs 8.
//
// Each timed iteration simulates one full GE rung — the fixed
// communication-volume ladder point n = 2^20 / p on the synthetic Sunwulf
// ensemble with tree collectives and a switched fabric — on a fresh
// machine with the requested partition count. The simulated results are
// bit-identical at every thread count (the conservative window protocol
// guarantees it; tests/integration enforces it byte-for-byte), so the only
// thing that moves between the /1, /2, and /8 rows is host wall-clock.
//
// BENCH_PR10.json holds CI to these rows: absolute wall-clock through the
// usual after_ns budget, and the /1-over-/8 wall ratio through
// speedup_pairs — gated on hosts with enough cores (min_cpus), because a
// single-core container serializes the partition threads and the ratio
// inverts there.
//
// Two counters per row:
//   * sim_s — the simulated rung completion time (identical across thread
//     counts, a cheap cross-check that the partitioning changed nothing);
//   * host_events_per_s — scheduler events processed per wall second,
//     summed across partitions: the engine-throughput number.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "hetscale/algos/ge.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/scal/combination.hpp"
#include "hetscale/scenarios/large_p.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace {

using namespace hetscale;

/// Fixed GE communication volume shared by the rungs: n(p) = kGeVolume / p
/// (mirrors scenarios/large_p.cpp so the bench times the same ladder).
constexpr std::int64_t kGeVolume = std::int64_t{1} << 20;

void BM_LargePGeRung(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int sim_threads = static_cast<int>(state.range(1));
  const auto config = scenarios::large_p_config(ranks);
  const std::vector<double> speeds =
      marked::rank_marked_speeds(config.cluster);

  double sim_s = 0.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto machine =
        vmpi::Machine::switched(config.cluster, config.net_params,
                                config.tuning);
    machine.set_sim_threads(sim_threads);
    algos::GeOptions options;
    options.n = kGeVolume / ranks;
    options.with_data = config.with_data;
    options.speeds = speeds;
    const auto result = algos::run_parallel_ge(machine, options);
    sim_s = result.run.elapsed;
    events += machine.events_processed();
    benchmark::DoNotOptimize(sim_s);
  }
  state.counters["sim_s"] = benchmark::Counter(sim_s);
  state.counters["host_events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

// One iteration per row: a rung is seconds of wall-clock, and the
// simulator is deterministic, so repetition buys nothing but CI minutes.
BENCHMARK(BM_LargePGeRung)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 8})
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
