// Ablation — how much of each algorithm's (un)scalability is the network?
//
// (a) Switched vs shared-bus fabric at the paper's operating points.
// (b) Bandwidth and latency sweeps on the 4-node GE system: where does the
//     required problem size blow up?
#include <iostream>

#include "common.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/series.hpp"

namespace {

using namespace hetscale;

void fabric_comparison() {
  Table table("psi per scaling step, switched vs shared bus");
  table.set_header({"Algorithm", "Step", "psi (switched)", "psi (shared bus)"});
  for (bool ge : {true, false}) {
    const double target = ge ? bench::kGeTargetEs : bench::kMmTargetEs;
    std::vector<std::unique_ptr<scal::Combination>> sw_owned;
    std::vector<std::unique_ptr<scal::Combination>> bus_owned;
    std::vector<scal::Combination*> sw;
    std::vector<scal::Combination*> bus;
    for (int nodes : {2, 4, 8}) {
      if (ge) {
        sw_owned.push_back(bench::make_ge(nodes, scal::NetworkKind::kSwitched));
        bus_owned.push_back(
            bench::make_ge(nodes, scal::NetworkKind::kSharedBus));
      } else {
        sw_owned.push_back(bench::make_mm(nodes, scal::NetworkKind::kSwitched));
        bus_owned.push_back(
            bench::make_mm(nodes, scal::NetworkKind::kSharedBus));
      }
      sw.push_back(sw_owned.back().get());
      bus.push_back(bus_owned.back().get());
    }
    const auto sw_report = scal::scalability_series(sw, target);
    const auto bus_report = scal::scalability_series(bus, target);
    for (std::size_t i = 0; i < sw_report.steps.size(); ++i) {
      table.add_row({ge ? "GE (E_s=0.3)" : "MM (E_s=0.2)",
                     sw_report.steps[i].from + " -> " + sw_report.steps[i].to,
                     Table::fixed(sw_report.steps[i].psi, 4),
                     bus_report.points[i + 1].found
                         ? Table::fixed(bus_report.steps[i].psi, 4)
                         : "unreachable"});
    }
  }
  std::cout << table << '\n';
}

void parameter_sweeps() {
  Table table("Required N for GE E_s = 0.3 on 4 nodes vs network quality");
  table.set_header({"Bandwidth (MB/s)", "Latency (us)", "Required N"});
  for (double mbps : {1.25, 12.5, 125.0}) {
    for (double latency_us : {10.0, 50.0, 500.0}) {
      auto config = bench::ge_config(4);
      config.net_params.remote.bandwidth_Bps = mbps * 1e6;
      config.net_params.remote.latency_s = latency_us * 1e-6;
      scal::GeCombination combo("GE-4", std::move(config));
      const auto solved =
          scal::required_problem_size(combo, bench::kGeTargetEs);
      table.add_row({Table::num(mbps, 2), Table::num(latency_us, 1),
                     solved.found ? std::to_string(solved.n) : "unreachable"});
    }
  }
  std::cout << table;
  std::cout << "(slower networks demand larger problems to hold the same "
               "speed-efficiency)\n";
}

}  // namespace

int main() {
  bench::print_header("Ablation  Network fabric and parameters",
                      "Switched vs shared bus; bandwidth/latency sweeps.");
  fabric_comparison();
  parameter_sweeps();
  return 0;
}
