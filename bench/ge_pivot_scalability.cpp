// Panel-blocked pivoted GE vs the pivot-free baseline.
//
// Thin launcher for the ge_pivot_scalability scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/dist2d.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_dist2d_scenarios();
  return hetscale::run::scenario_main("ge_pivot_scalability", argc, argv);
}
