// Ablation — heterogeneity-aware splitters in parallel sample sort.
//
// Sample sort is a fourth algorithm-machine combination (sub-cubic work,
// alltoall communication). Its heterogeneity lever is the *splitter
// policy*: uniform splitters assign every rank ~N/p keys; speed-
// proportional splitters cut at cumulative marked-speed fractions. This
// bench quantifies the benefit and runs the metric pipeline over it.
#include <iostream>

#include "common.hpp"
#include "hetscale/algos/sort.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/metrics.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Ablation  Sample-sort splitter policy",
      "Uniform vs marked-speed-proportional splitters on mixed ensembles.");

  Table timing("Sort time for 200k keys (switched fabric)");
  timing.set_header(
      {"Nodes", "T uniform (s)", "T speed-aware (s)", "speedup"});
  for (int nodes : {4, 8, 16}) {
    auto run = [&](algos::SortSplitters splitters) {
      auto machine =
          vmpi::Machine::switched(machine::sunwulf::mm_ensemble(nodes));
      algos::SortOptions options;
      options.n = 200000;
      options.splitters = splitters;
      return algos::run_parallel_sort(machine, options).run.elapsed;
    };
    const double uniform = run(algos::SortSplitters::kUniform);
    const double aware = run(algos::SortSplitters::kSpeedProportional);
    timing.add_row({std::to_string(nodes), Table::fixed(uniform, 4),
                    Table::fixed(aware, 4),
                    Table::fixed(uniform / aware, 3)});
  }
  std::cout << timing << '\n';

  // The metric pipeline over the sort combination.
  Table psi_table("Isospeed-efficiency scalability of sort (E_s = 0.25)");
  psi_table.set_header({"Step", "N", "psi"});
  double prev_c = 0;
  double prev_w = 0;
  std::string prev_name;
  for (int nodes : {4, 8, 16}) {
    scal::SortCombination combo("sort-" + std::to_string(nodes),
                                bench::mm_config(nodes));
    scal::IsoSolveOptions options;
    options.n_min = static_cast<std::int64_t>(combo.processor_count()) *
                    combo.processor_count();
    const auto point = scal::required_problem_size(combo, 0.25, options);
    if (!point.found) {
      psi_table.add_row({combo.name(), "unreachable", "-"});
      continue;
    }
    std::string psi = "-";
    if (prev_c > 0) {
      psi = Table::fixed(
          scal::isospeed_efficiency_scalability(
              prev_c, prev_w, combo.marked_speed(), combo.work(point.n)),
          3);
    }
    psi_table.add_row({prev_name.empty() ? combo.name()
                                         : prev_name + " -> " + combo.name(),
                       std::to_string(point.n), psi});
    prev_c = combo.marked_speed();
    prev_w = combo.work(point.n);
    prev_name = combo.name();
  }
  std::cout << psi_table;
  std::cout << "(sort's W = 6N log N grows barely faster than its O(N) "
               "communication — required N rises steeply, a different "
               "scalability regime from GE/MM)\n";
  return 0;
}
