// Micro-benchmarks of the prediction layer's model-zoo fitter.
//
// Both benchmarks run on synthetic datasets built straight from the USL
// law — no simulation, no MeasurementStore — so they time exactly the
// code the `fit` subcommand spends its non-measurement budget in: the
// deterministic Levenberg-Marquardt fit and the full fit + leave-one-out
// ranking across the zoo.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "hetscale/predict/fit_report.hpp"
#include "hetscale/predict/zoo.hpp"
#include "hetscale/scal/fit_study.hpp"

namespace {

using namespace hetscale;

/// A ladder x sizes dataset synthesized from the USL law with the same
/// shape as the zoo scenario's measured datasets (3 rungs x 5 sizes).
scal::FitDataset synthetic_dataset(int rungs, int sizes) {
  scal::FitDataset data;
  data.algo = "synthetic";
  for (int r = 0; r < rungs; ++r) {
    const int p = 2 << r;  // 2, 4, 8, ...
    const double pd = static_cast<double>(p);
    const double es =
        0.9 / (1.0 + 0.05 * (pd - 1.0) + 0.002 * pd * (pd - 1.0));
    for (int s = 0; s < sizes; ++s) {
      scal::FitPoint point;
      point.system = "synthetic";
      point.p = p;
      point.n = 64 * (s + 1);
      point.work_flops = 1.0e8 * static_cast<double>(s + 1);
      point.speed_efficiency = es;
      point.seconds = point.work_flops / (es * 1.0e8);
      point.marked_speed = 1.0e8;
      point.root_speed = 1.0e8 / pd;
      point.het_score = 0.1;
      data.points.push_back(point);
    }
  }
  return data;
}

void BM_UslFit(benchmark::State& state) {
  const auto data = synthetic_dataset(static_cast<int>(state.range(0)), 5);
  const predict::ScalabilityModel* usl = predict::find_model("usl");
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict::fit_scalability_model(*usl, data));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UslFit)->Arg(3)->Arg(6);

void BM_ZooRanking(benchmark::State& state) {
  // The full per-algorithm study: 4 models x (full fit + LOO refits),
  // on the scenario's 3 x 5 dataset shape.
  const auto data = synthetic_dataset(3, 5);
  for (auto _ : state) {
    for (const predict::ScalabilityModel* model : predict::model_zoo()) {
      benchmark::DoNotOptimize(predict::fit_scalability_model(*model, data));
      benchmark::DoNotOptimize(predict::leave_one_out_cv(*model, data));
    }
  }
}
BENCHMARK(BM_ZooRanking);

}  // namespace
