// Table 3 — "Required rank to obtain 0.3 speed-efficiency" (GE).
//
// Thin launcher for the table3_ge_required_rank scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/paper.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_paper_scenarios();
  return hetscale::run::scenario_main("table3_ge_required_rank", argc,
                                      argv);
}
