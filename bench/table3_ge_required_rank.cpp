// Table 3 — "Required rank to obtain 0.3 speed-efficiency" (GE).
//
// For each system on the paper's ladder (2/4/8/16/32 nodes: server with two
// CPUs plus SunBlades), iso-solve the smallest N with E_s >= 0.3 and print
// system configuration, rank N, workload, and marked speed.
#include <iostream>

#include "common.hpp"
#include "hetscale/scal/series.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Table 3  Required rank to obtain 0.3 speed-efficiency",
      "GE on the Sunwulf ladder (server 2 CPUs + SunBlades).");

  std::vector<std::unique_ptr<scal::GeCombination>> combos;
  std::vector<scal::Combination*> ptrs;
  for (int nodes : bench::kPaperNodeCounts) {
    combos.push_back(bench::make_ge(nodes));
    ptrs.push_back(combos.back().get());
  }
  const auto report = scal::scalability_series(ptrs, bench::kGeTargetEs);

  Table table;
  table.set_header({"System Configuration", "Rank N", "Workload (Mflop)",
                    "Marked Speed (Mflops)", "Achieved E_s"});
  for (const auto& point : report.points) {
    table.add_row({point.system,
                   point.found ? std::to_string(point.n) : "unreachable",
                   point.found ? Table::fixed(point.work / 1e6, 2) : "-",
                   bench::mflops_str(point.marked_speed),
                   point.found ? Table::fixed(point.achieved_es, 3) : "-"});
  }
  std::cout << table;
  std::cout << "(paper: N = 310 / 480 / ... growing with system size)\n";
  return 0;
}
