// Model zoo: cross-validated ranking vs the analytic prediction.
//
// Thin launcher for the model_zoo_ranking scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/zoo.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_zoo_scenarios();
  return hetscale::run::scenario_main("model_zoo_ranking", argc, argv);
}
