// Beyond the paper: Corollary 2 applied to MM.
//
// The paper only predicts GE's scalability (§4.5). MM is the textbook case
// for Corollary 2 — perfectly parallel (α = 0), so ψ = To / To' exactly.
// This bench runs the same probe-and-model pipeline for MM and compares
// against the measured Table 5 values.
#include <iostream>

#include "common.hpp"
#include "hetscale/numeric/stats.hpp"
#include "hetscale/predict/models.hpp"
#include "hetscale/predict/probe.hpp"
#include "hetscale/scal/series.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Corollary 2 on MM  (beyond the paper)",
      "psi = To/To' with probed comm parameters vs measured MM psi at "
      "E_s = 0.2.");

  const auto comm = predict::probe_comm_model(
      predict::ProbeConfig{.node = machine::sunwulf::sunblade_spec()});
  predict::MmOverheadModel model;

  std::vector<std::unique_ptr<scal::MmCombination>> combos;
  std::vector<scal::Combination*> ptrs;
  for (int nodes : {2, 4, 8, 16}) {
    combos.push_back(bench::make_mm(nodes));
    ptrs.push_back(combos.back().get());
  }
  const auto measured = scal::scalability_series(ptrs, bench::kMmTargetEs);

  Table table;
  table.set_header(
      {"Step", "psi (Corollary 2)", "psi (measured)", "rel. error"});
  const int node_counts[] = {2, 4, 8, 16};
  for (std::size_t i = 0; i + 1 < std::size(node_counts); ++i) {
    const auto from = predict::system_model_for(
        machine::sunwulf::mm_ensemble(node_counts[i]), comm);
    const auto to = predict::system_model_for(
        machine::sunwulf::mm_ensemble(node_counts[i + 1]), comm);
    const double predicted =
        predict::predicted_scalability(model, from, to, bench::kMmTargetEs);
    const double got = measured.steps[i].psi;
    table.add_row({"psi(C" + std::to_string(node_counts[i]) + "', C" +
                       std::to_string(node_counts[i + 1]) + "')",
                   Table::fixed(predicted, 4), Table::fixed(got, 4),
                   Table::fixed(numeric::relative_error(predicted, got), 3)});
  }
  std::cout << table;
  std::cout << "(Corollary 2: a perfectly parallel algorithm's scalability "
               "is exactly the ratio of total overheads — the MM model has "
               "no sequential term at all)\n";
  return 0;
}
