// Ablation — pipelined GE (communication/computation overlap).
//
// The paper's GE broadcasts each pivot while every process waits, then
// synchronizes on a barrier. The pipelined (lookahead-1) variant fires the
// next pivot asynchronously while the current step's eliminations run.
// Same arithmetic, same W(N) — how much scalability was left on the table?
#include <iostream>

#include "common.hpp"
#include "hetscale/algos/ge.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/metrics.hpp"

namespace {

using namespace hetscale;

class PipelinedGeCombination final : public scal::ClusterCombination {
 public:
  PipelinedGeCombination(std::string name, Config config)
      : ClusterCombination(std::move(name), std::move(config)) {}

  double work(std::int64_t n) const override {
    return numeric::ge_workload(static_cast<double>(n));
  }

 private:
  // Distinct from plain "ge": pipelining changes the timing, so the two
  // must not share measurement-store entries.
  std::string algo_key() const override { return "ge:pipelined"; }

  RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const override {
    algos::GeOptions options;
    options.n = n;
    options.with_data = false;
    options.pipelined = true;
    options.speeds = rank_speeds();
    const auto result = algos::run_parallel_ge(machine, options);
    return RunOutcome{result.work_flops, result.run.elapsed,
                      result.run.overhead_s()};
  }
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation  Pipelined GE (overlapped pivot distribution)",
      "Paper's synchronous GE vs lookahead-1 pipelining, E_s = 0.3.");

  Table table;
  table.set_header({"Nodes", "N (paper)", "N (pipelined)",
                    "psi step (paper)", "psi step (pipelined)"});
  double prev_c[2] = {0, 0};
  double prev_w[2] = {0, 0};
  for (int nodes : {2, 4, 8, 16}) {
    scal::GeCombination paper("paper", bench::ge_config(nodes));
    PipelinedGeCombination pipelined("pipelined", bench::ge_config(nodes));
    const auto paper_point =
        scal::required_problem_size(paper, bench::kGeTargetEs);
    const auto pipe_point =
        scal::required_problem_size(pipelined, bench::kGeTargetEs);
    std::string psi[2] = {"-", "-"};
    const double c[2] = {paper.marked_speed(), pipelined.marked_speed()};
    const double w[2] = {paper.work(paper_point.n),
                         pipelined.work(pipe_point.n)};
    for (int v = 0; v < 2; ++v) {
      if (prev_c[v] > 0) {
        psi[v] = Table::fixed(scal::isospeed_efficiency_scalability(
                                  prev_c[v], prev_w[v], c[v], w[v]),
                              3);
      }
      prev_c[v] = c[v];
      prev_w[v] = w[v];
    }
    table.add_row({std::to_string(nodes), std::to_string(paper_point.n),
                   std::to_string(pipe_point.n), psi[0], psi[1]});
  }
  std::cout << table;
  std::cout << "(overlap + no barrier shrink the iso-efficiency problem "
               "sizes; combined with binomial collectives — see "
               "ablation_collectives — most of GE's scalability gap to MM "
               "was implementation, not algorithm)\n";
  return 0;
}
