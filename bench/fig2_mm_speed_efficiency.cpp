// Fig. 2 — "Speed-efficiency of Matrix Multiplication Algorithm".
//
// E_s(N) curves of MM on the 2/4/8/16/32-node mixed SunBlade + SunFire V210
// ensembles, with a cubic trend line per series — CSV, one column pair per
// system, as in the paper's figure.
#include <iostream>

#include "common.hpp"
#include "hetscale/numeric/polynomial.hpp"
#include "hetscale/scal/combination.hpp"
#include "hetscale/support/csv.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Fig. 2  Speed-efficiency of MM on Sunwulf",
      "MM on mixed ensembles (server 1 CPU + SunBlades + V210s, 1 CPU "
      "each); cubic trend per series.");

  std::vector<std::int64_t> sizes;
  for (std::int64_t n = 16; n <= 512; n += 16) sizes.push_back(n);

  std::vector<std::string> header{"N"};
  std::vector<scal::EfficiencyCurve> curves;
  std::vector<numeric::Polynomial> trends;
  for (int nodes : bench::kPaperNodeCounts) {
    auto combo = bench::make_mm(nodes);
    curves.push_back(scal::sample_efficiency_curve(*combo, sizes));
    trends.push_back(scal::fit_trend(curves.back(), 3));
    header.push_back("es_" + std::to_string(nodes) + "nodes");
    header.push_back("trend_" + std::to_string(nodes) + "nodes");
  }

  CsvWriter csv(std::move(header));
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    std::vector<std::string> row{std::to_string(sizes[s])};
    for (std::size_t c = 0; c < curves.size(); ++c) {
      row.push_back(
          Table::fixed(curves[c].samples[s].speed_efficiency, 4));
      row.push_back(
          Table::fixed(trends[c](static_cast<double>(sizes[s])), 4));
    }
    csv.add_row(std::move(row));
  }
  std::cout << csv.str();
  std::cout << "(expected shape: each curve rises with N; larger systems "
               "need larger N for the same E_s)\n";
  return 0;
}
