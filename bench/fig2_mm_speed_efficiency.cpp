// Fig. 2 — "Speed-efficiency of Matrix Multiplication Algorithm".
//
// Thin launcher for the fig2_mm_speed_efficiency scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/paper.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_paper_scenarios();
  return hetscale::run::scenario_main("fig2_mm_speed_efficiency", argc,
                                      argv);
}
