// Shared machinery for the bench harnesses.
//
// The paper catalogue (ladders, ensemble builders, headers) moved into the
// engine as src/scenarios (hetscale/scenarios/paper.hpp) so bench binaries
// and `hetscale_cli run` share one implementation. This header re-exports
// those symbols under hetscale::bench for the ablation binaries.
#pragma once

#include <iostream>
#include <string>

#include "hetscale/scenarios/paper.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::bench {

using scenarios::kGeTargetEs;
using scenarios::kMmTargetEs;
using scenarios::kPaperNodeCounts;

using scenarios::ge_config;
using scenarios::make_ge;
using scenarios::make_mm;
using scenarios::mflops_str;
using scenarios::mm_config;

inline void print_header(const std::string& artifact,
                         const std::string& description) {
  std::cout << scenarios::artifact_header(artifact, description);
}

}  // namespace hetscale::bench
