// Shared machinery for the table/figure reproduction harnesses.
//
// Every bench binary prints (a) the paper artifact it reproduces, (b) the
// machine configuration used, and (c) the regenerated rows/series, through
// the same helpers so outputs are uniform and diffable (EXPERIMENTS.md).
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/scal/combination.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::bench {

/// The paper's system-size ladder.
inline const std::vector<int> kPaperNodeCounts{2, 4, 8, 16, 32};

/// The paper's target speed-efficiencies.
inline constexpr double kGeTargetEs = 0.3;
inline constexpr double kMmTargetEs = 0.2;

inline scal::ClusterCombination::Config ge_config(
    int nodes,
    scal::NetworkKind network = scal::NetworkKind::kSwitched) {
  scal::ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(nodes);
  config.network = network;
  config.with_data = false;
  return config;
}

inline scal::ClusterCombination::Config mm_config(
    int nodes,
    scal::NetworkKind network = scal::NetworkKind::kSwitched) {
  scal::ClusterCombination::Config config;
  config.cluster = machine::sunwulf::mm_ensemble(nodes);
  config.network = network;
  config.with_data = false;
  return config;
}

inline std::unique_ptr<scal::GeCombination> make_ge(
    int nodes,
    scal::NetworkKind network = scal::NetworkKind::kSwitched) {
  return std::make_unique<scal::GeCombination>(
      std::to_string(nodes) + " Nodes, C" + std::to_string(nodes),
      ge_config(nodes, network));
}

inline std::unique_ptr<scal::MmCombination> make_mm(
    int nodes,
    scal::NetworkKind network = scal::NetworkKind::kSwitched) {
  return std::make_unique<scal::MmCombination>(
      std::to_string(nodes) + " Nodes, C" + std::to_string(nodes) + "'",
      mm_config(nodes, network));
}

inline void print_header(const std::string& artifact,
                         const std::string& description) {
  std::cout << "==================================================\n"
            << artifact << "\n"
            << description << "\n"
            << "==================================================\n";
}

/// Mflop/s with one decimal, as the paper prints marked speeds.
inline std::string mflops_str(double flops) {
  return Table::fixed(flops / 1e6, 1);
}

}  // namespace hetscale::bench
