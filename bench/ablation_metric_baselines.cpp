// Ablation — isospeed-efficiency vs the related-work metrics (paper §2).
//
// On identical GE runs:
//  * isospeed-efficiency ψ (this paper),
//  * Jogalekar–Woodside productivity scalability under a rental-cost model,
//  * Pastor–Bosque heterogeneous efficiency (needs a sequential reference
//    run — the practical weakness the paper calls out; here the simulator
//    provides it, a real cluster often cannot).
#include <iostream>

#include "common.hpp"
#include "hetscale/algos/ge.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/scal/baselines.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/series.hpp"

int main() {
  using namespace hetscale;
  bench::print_header(
      "Ablation  Metric baselines on identical GE runs",
      "isospeed-efficiency vs J-W productivity vs Pastor-Bosque.");

  std::vector<std::unique_ptr<scal::GeCombination>> combos;
  std::vector<scal::Combination*> ptrs;
  for (int nodes : {2, 4, 8, 16}) {
    combos.push_back(bench::make_ge(nodes));
    ptrs.push_back(combos.back().get());
  }
  const auto report = scal::scalability_series(ptrs, bench::kGeTargetEs);

  // Sequential reference for Pastor–Bosque: GE at the operating N on one
  // SunBlade (only feasible because this is a simulator!).
  auto sequential_time = [&](std::int64_t n) {
    machine::Cluster solo;
    solo.add_node("ref", machine::sunwulf::sunblade_spec());
    auto machine = vmpi::Machine::switched(std::move(solo));
    algos::GeOptions options;
    options.n = n;
    options.with_data = false;
    return algos::run_parallel_ge(machine, options).run.elapsed;
  };
  const double ref_speed =
      marked::node_marked_speed(machine::sunwulf::sunblade_spec());
  constexpr double kDollarsPerMflopsHour = 0.02;

  Table table;
  table.set_header({"System", "N", "E_s", "psi step", "J-W productivity",
                    "J-W step", "P-B efficiency"});
  double prev_productivity = 0.0;
  const int node_counts[] = {2, 4, 8, 16};
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const auto& point = report.points[i];
    const auto cluster = machine::sunwulf::ge_ensemble(node_counts[i]);
    const auto& m = ptrs[i]->measure(point.n);

    const double cost = scal::cluster_cost_per_s(cluster,
                                                 kDollarsPerMflopsHour);
    const double productivity = scal::productivity(m.speed_flops, cost);
    const double jw_step =
        i == 0 ? 1.0 : scal::jw_scalability(prev_productivity, productivity);

    const auto speeds = marked::rank_marked_speeds(cluster);
    const double t_seq = sequential_time(point.n);
    const double pb = scal::pastor_bosque_efficiency(t_seq, m.seconds,
                                                     speeds, ref_speed);

    table.add_row({point.system, std::to_string(point.n),
                   Table::fixed(m.speed_efficiency, 3),
                   i == 0 ? "-" : Table::fixed(report.steps[i - 1].psi, 3),
                   Table::fixed(productivity / 1e12, 3),
                   i == 0 ? "-" : Table::fixed(jw_step, 3),
                   Table::fixed(pb, 3)});
    prev_productivity = productivity;
  }
  std::cout << table;
  std::cout << "(J-W productivity is flat by construction when cost tracks "
               "marked speed — it measures price, not architecture; P-B "
               "needs the sequential run the paper argues is impractical)\n";
  return 0;
}
