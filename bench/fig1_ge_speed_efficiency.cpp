// Fig. 1 — "Speed-efficiency on two nodes" (GE).
//
// Samples E_s(N) for GE on the 2-node ensemble, fits the paper's polynomial
// trend line, reads the N achieving E_s = 0.3 off the trend, and verifies
// by measuring at that N (the paper's "light gray dot", which measured
// 0.312 against the 0.3 target). Emits the curve as CSV for plotting.
#include <iostream>

#include "common.hpp"
#include "hetscale/numeric/polynomial.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/support/csv.hpp"

int main() {
  using namespace hetscale;
  auto combo = bench::make_ge(2);
  bench::print_header(
      "Fig. 1  Speed-efficiency on two nodes",
      "GE on " + combo->cluster().summary() + "; polynomial trend line and "
      "trend-read verification at E_s = 0.3.");

  std::vector<std::int64_t> sizes;
  for (std::int64_t n = 50; n <= 1000; n += 50) sizes.push_back(n);
  const auto curve = scal::sample_efficiency_curve(*combo, sizes);
  const auto trend = scal::fit_trend(curve, 3);

  CsvWriter csv({"N", "speed_efficiency", "trend"});
  for (const auto& m : curve.samples) {
    csv.add_row({std::to_string(m.n), Table::fixed(m.speed_efficiency, 4),
                 Table::fixed(trend(static_cast<double>(m.n)), 4)});
  }
  std::cout << csv.str();
  std::cout << "trend R^2 = "
            << Table::fixed(
                   numeric::r_squared(trend, curve.sizes(),
                                      curve.efficiencies()),
                   4)
            << "\n\n";

  scal::IsoSolveOptions options;
  options.method = scal::IsoSolveOptions::Method::kTrendLine;
  options.trend_n_lo = 50;
  options.trend_n_hi = 1000;
  const auto solved =
      scal::required_problem_size(*combo, bench::kGeTargetEs, options);
  std::cout << "Trend-line read-off for E_s = " << bench::kGeTargetEs
            << ": N ~ " << solved.n
            << "; measured E_s at that N = "
            << Table::fixed(solved.achieved_es, 3)
            << "  (paper: N ~ 310 measured 0.312)\n";
  return 0;
}
