// Fig. 1 — "Speed-efficiency on two nodes" (GE).
//
// Thin launcher for the fig1_ge_speed_efficiency scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/paper.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_paper_scenarios();
  return hetscale::run::scenario_main("fig1_ge_speed_efficiency", argc,
                                      argv);
}
