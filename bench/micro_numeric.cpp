// Micro-benchmarks of the numeric substrate.
#include <benchmark/benchmark.h>

#include <vector>

#include "hetscale/kernels/blas1.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matmul.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/numeric/polynomial.hpp"
#include "hetscale/support/rng.hpp"

namespace {

using namespace hetscale;
using numeric::Matrix;

void BM_SolveDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::random_diagonally_dominant(n, rng);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::solve_dense(a, b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SolveDense)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_Multiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::multiply(a, b));
  }
}
BENCHMARK(BM_Multiply)->Arg(64)->Arg(128)->Arg(256);

void BM_EliminateRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> pivot(n, 1.0);
  std::vector<double> row(n, 2.0);
  double rhs = 1.0;
  for (auto _ : state) {
    std::vector<double> work = row;
    kernels::eliminate_row(pivot, 0.5, work, rhs, 0);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK(BM_EliminateRow)->Arg(256)->Arg(2048);

void BM_Polyfit(benchmark::State& state) {
  std::vector<double> xs;
  std::vector<double> ys;
  const numeric::Polynomial truth({0.1, 2e-4, -5e-8, 1e-12});
  for (double x = 50; x <= 2000; x += 50) {
    xs.push_back(x);
    ys.push_back(truth(x));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::polyfit(xs, ys, 3));
  }
}
BENCHMARK(BM_Polyfit);

}  // namespace
