// Micro-benchmarks of the numeric substrate.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <vector>

#include "hetscale/algos/spmv.hpp"
#include "hetscale/algos/summa.hpp"
#include "hetscale/kernels/blas1.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matmul.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/numeric/polynomial.hpp"
#include "hetscale/support/rng.hpp"

namespace {

using namespace hetscale;
using numeric::Matrix;

void BM_SolveDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::random_diagonally_dominant(n, rng);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::solve_dense(a, b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SolveDense)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_Multiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::multiply(a, b));
  }
}
BENCHMARK(BM_Multiply)->Arg(64)->Arg(128)->Arg(256);

void BM_EliminateRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> pivot(n, 1.0);
  std::vector<double> row(n, 2.0);
  double rhs = 1.0;
  for (auto _ : state) {
    std::vector<double> work = row;
    kernels::eliminate_row(pivot, 0.5, work, rhs, 0);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK(BM_EliminateRow)->Arg(256)->Arg(2048);

// The span-level blocked product the parallel MM actually calls — this is
// the PR 5 headline kernel (packed B panels + dispatched SIMD tile). Sized
// through the cache-blocking thresholds: 128 fits one panel, 512/1024 force
// multi-panel packing.
void BM_MultiplyRowsInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  std::vector<double> out(n * n);
  for (auto _ : state) {
    numeric::multiply_rows_into(a.data(), n, 0, n, b.data(), n, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MultiplyRowsInto)->Arg(128)->Arg(512)->Arg(1024);

// GE's hot elimination kernel: a blocked rank-1 update of 16 rows against
// a shared pivot, as eliminate_rows batches it.
void BM_Rank1Update(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRows = 16;
  Rng rng(6);
  const Matrix block = Matrix::random(kRows, n, rng);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> factors(kRows);
  for (auto& f : factors) f = rng.uniform(-1.0, 1.0);
  Matrix work = block;
  std::vector<double*> rows(kRows);
  for (std::size_t r = 0; r < kRows; ++r) rows[r] = work.row(r).data();
  // No per-iteration reset: repeated y -= f*x only drifts the values
  // linearly (no subnormals, no overflow at benchmark scales), and the
  // timed region stays pure kernel.
  for (auto _ : state) {
    kernels::rank1_update(x, std::span<double* const>(rows.data(), kRows),
                          factors);
    benchmark::DoNotOptimize(work.data().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRows * n) * 8);
}
BENCHMARK(BM_Rank1Update)->Arg(256)->Arg(2048);

// The CSR row kernel the SpMV workload charges for — irregular gathers
// through the column index, so it stresses a different path than the dense
// kernels above.
void BM_SpmvRows(benchmark::State& state) {
  const auto n = state.range(0);
  const algos::CsrMatrix csr = algos::make_synthetic_csr(n, /*seed=*/45);
  Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> y(static_cast<std::size_t>(n));
  for (auto _ : state) {
    algos::spmv_rows(csr, 0, n, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * csr.nnz()));
}
BENCHMARK(BM_SpmvRows)->Arg(256)->Arg(1024)->Arg(4096);

// SUMMA's local C += A_tile * B_tile update. The B tile is consumed as the
// packed panel directly, so this isolates the mm_tile4 dispatch without the
// packing cost measured in BM_MultiplyRowsInto.
void BM_SummaTileProduct(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const Matrix a = Matrix::random(t, t, rng);
  const Matrix b = Matrix::random(t, t, rng);
  std::vector<double> c(t * t);
  const auto tile = static_cast<std::int64_t>(t);
  for (auto _ : state) {
    algos::summa_tile_product(a.data().data(), tile, tile, b.data().data(),
                              tile, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * t * t * t));
}
BENCHMARK(BM_SummaTileProduct)->Arg(64)->Arg(128)->Arg(256);

void BM_Polyfit(benchmark::State& state) {
  std::vector<double> xs;
  std::vector<double> ys;
  const numeric::Polynomial truth({0.1, 2e-4, -5e-8, 1e-12});
  for (double x = 50; x <= 2000; x += 50) {
    xs.push_back(x);
    ys.push_back(truth(x));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::polyfit(xs, ys, 3));
  }
}
BENCHMARK(BM_Polyfit);

}  // namespace
