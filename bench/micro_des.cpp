// Micro-benchmarks of the simulation engine: event throughput, message
// passing, collectives, and a whole GE step — how much simulated work the
// harness can drive per wall-clock second.
#include <benchmark/benchmark.h>

#include <string>

#include "hetscale/algos/ge.hpp"
#include "hetscale/des/scheduler.hpp"
#include "hetscale/des/timeline.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace {

using namespace hetscale;
using des::Task;

void BM_SchedulerDelayEvents(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Scheduler sched;
    sched.spawn([](des::Scheduler& s, int n) -> Task<void> {
      for (int i = 0; i < n; ++i) co_await s.delay(1.0);
    }(sched, events));
    sched.run();
    benchmark::DoNotOptimize(sched.now());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SchedulerDelayEvents)->Arg(1000)->Arg(100000);

void BM_TimelineReserve(benchmark::State& state) {
  des::Timeline timeline;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(timeline.reserve(t, 1.0));
    t += 0.5;
  }
}
BENCHMARK(BM_TimelineReserve);

machine::Cluster blades(int n) {
  machine::Cluster cluster;
  for (int i = 0; i < n; ++i) {
    cluster.add_node("n" + std::to_string(i),
                     machine::sunwulf::sunblade_spec());
  }
  return cluster;
}

void BM_PingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto machine = vmpi::Machine::switched(blades(2));
    machine.run([rounds](vmpi::Comm& comm) -> Task<void> {
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(1, 1, 1024.0, {});
          co_await comm.recv(1, 2);
        } else {
          co_await comm.recv(0, 1);
          co_await comm.send(0, 2, 1024.0, {});
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_PingPong)->Arg(1000);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto machine = vmpi::Machine::switched(blades(ranks));
    machine.run([](vmpi::Comm& comm) -> Task<void> {
      for (int i = 0; i < 100; ++i) co_await comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 100 * ranks);
}
BENCHMARK(BM_Barrier)->Arg(4)->Arg(16)->Arg(64);

void BM_GeTimingOnlyRun(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    auto machine =
        vmpi::Machine::switched(machine::sunwulf::ge_ensemble(4));
    algos::GeOptions options;
    options.n = n;
    options.with_data = false;
    benchmark::DoNotOptimize(
        algos::run_parallel_ge(machine, options).run.elapsed);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GeTimingOnlyRun)->Arg(128)->Arg(512);

void BM_GeWithDataRun(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    auto machine =
        vmpi::Machine::switched(machine::sunwulf::ge_ensemble(4));
    algos::GeOptions options;
    options.n = n;
    options.with_data = true;
    benchmark::DoNotOptimize(
        algos::run_parallel_ge(machine, options).residual);
  }
}
BENCHMARK(BM_GeWithDataRun)->Arg(128);

}  // namespace
