// Micro-benchmarks of the simulation engine: event throughput, message
// passing, collectives, and a whole GE step — how much simulated work the
// harness can drive per wall-clock second.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "hetscale/algos/ge.hpp"
#include "hetscale/des/scheduler.hpp"
#include "hetscale/des/timeline.hpp"
#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/support/units.hpp"
#include "hetscale/vmpi/machine.hpp"
#if __has_include("hetscale/scal/measure_store.hpp")
#include "hetscale/scal/measure_store.hpp"
#define HETSCALE_HAS_MEASURE_STORE 1
#endif
#include "hetscale/run/runner.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scenarios/paper.hpp"

// ---- Counting allocator hook ------------------------------------------------
// Global operator new is replaced binary-wide so the benchmarks can report
// allocations per simulated event/message — the quantity the slab queue and
// payload arena exist to eliminate. The count is relaxed-atomic: workers
// allocate concurrently in the ladder benchmark, and ordering is irrelevant.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace hetscale;
using des::Task;

std::uint64_t allocations() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

// args: {total events, concurrent delay loops}. One loop is the ubiquitous
// schedule-one/pop-one rhythm (the scheduler's front-slot fast path); many
// loops keep that many events pending at once, which is where the queue
// structure itself — ladder buckets vs binary heap — dominates. Staggered
// delay periods stop the loops from degenerating into lock-step ties.
void BM_SchedulerDelayEvents(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  const int loops = static_cast<int>(state.range(1));
  const int per_loop = events / loops;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocations();
    des::Scheduler sched;
    for (int c = 0; c < loops; ++c) {
      sched.spawn([](des::Scheduler& s, int n, double dt) -> Task<void> {
        for (int i = 0; i < n; ++i) co_await s.delay(dt);
      }(sched, per_loop, 1.0 + 0.001 * c));
    }
    sched.run();
    benchmark::DoNotOptimize(sched.now());
    allocs += allocations() - before;
  }
  const auto total = state.iterations() *
                     static_cast<std::uint64_t>(per_loop) * loops;
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.counters["allocs_per_event"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(total));
}
BENCHMARK(BM_SchedulerDelayEvents)
    ->Args({1000, 1})
    ->Args({100000, 1})
    ->Args({100000, 64})
    ->Args({100000, 1024});

void BM_TimelineReserve(benchmark::State& state) {
  des::Timeline timeline;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(timeline.reserve(t, 1.0));
    t += 0.5;
  }
}
BENCHMARK(BM_TimelineReserve);

machine::Cluster blades(int n) {
  machine::Cluster cluster;
  for (int i = 0; i < n; ++i) {
    cluster.add_node("n" + std::to_string(i),
                     machine::sunwulf::sunblade_spec());
  }
  return cluster;
}

void BM_PingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    auto machine = vmpi::Machine::switched(blades(2));
    const std::uint64_t before = allocations();
    machine.run([rounds](vmpi::Comm& comm) -> Task<void> {
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(1, 1, 1024.0, {});
          co_await comm.recv(1, 2);
        } else {
          co_await comm.recv(0, 1);
          co_await comm.send(0, 2, 1024.0, {});
        }
      }
    });
    allocs += allocations() - before;
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
  state.counters["allocs_per_msg"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() * rounds * 2));
}
BENCHMARK(BM_PingPong)->Arg(1000);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto machine = vmpi::Machine::switched(blades(ranks));
    machine.run([](vmpi::Comm& comm) -> Task<void> {
      for (int i = 0; i < 100; ++i) co_await comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 100 * ranks);
}
BENCHMARK(BM_Barrier)->Arg(4)->Arg(16)->Arg(64);

void BM_GeTimingOnlyRun(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    auto machine =
        vmpi::Machine::switched(machine::sunwulf::ge_ensemble(4));
    algos::GeOptions options;
    options.n = n;
    options.with_data = false;
    benchmark::DoNotOptimize(
        algos::run_parallel_ge(machine, options).run.elapsed);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GeTimingOnlyRun)->Arg(128)->Arg(512);

// The GE iso-solver ladder from table3/table4: direct search for the size
// achieving the paper's target speed-efficiency, one solve per node count.
// Measures end-to-end solver wall-clock with the 8-worker speculative
// bisection; the measurement store is disabled so every iteration pays for
// its simulations instead of replaying the first iteration's memo.
void BM_GeLadderSolve(benchmark::State& state) {
#ifdef HETSCALE_HAS_MEASURE_STORE
  auto& store = scal::MeasurementStore::global();
  const bool was_enabled = store.enabled();
  store.set_enabled(false);
#endif
  run::Runner runner(8);
  scal::IsoSolveOptions options;
  options.method = scal::IsoSolveOptions::Method::kDirectSearch;
  options.runner = &runner;
  for (auto _ : state) {
    double achieved = 0.0;
    for (const int nodes : {2, 4, 8}) {
      auto combo = scenarios::make_ge(nodes);
      const auto solved =
          scal::required_problem_size(*combo, scenarios::kGeTargetEs, options);
      achieved += solved.achieved_es;
    }
    benchmark::DoNotOptimize(achieved);
  }
#ifdef HETSCALE_HAS_MEASURE_STORE
  store.set_enabled(was_enabled);
#endif
}
BENCHMARK(BM_GeLadderSolve)->Unit(benchmark::kMillisecond);

void BM_GeWithDataRun(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    auto machine =
        vmpi::Machine::switched(machine::sunwulf::ge_ensemble(4));
    algos::GeOptions options;
    options.n = n;
    options.with_data = true;
    benchmark::DoNotOptimize(
        algos::run_parallel_ge(machine, options).residual);
  }
}
BENCHMARK(BM_GeWithDataRun)->Arg(128);

}  // namespace
