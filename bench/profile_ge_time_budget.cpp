// Profile — GE time budget, measured vs modeled t0 and To.
//
// Thin launcher for the profile_ge_time_budget scenario (src/scenarios);
// supports --format=text|csv|json and --jobs N like `hetscale_cli run`.
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/profile.hpp"

int main(int argc, char** argv) {
  hetscale::scenarios::register_profile_scenarios();
  return hetscale::run::scenario_main("profile_ge_time_budget", argc, argv);
}
