// Table 4 — "Measured scalability of GE on Sunwulf".
//
// The isospeed-efficiency scalability ψ(C, C') between consecutive systems
// of the GE ladder, from the Table 3 operating points.
#include <iostream>

#include "common.hpp"
#include "hetscale/scal/series.hpp"

int main() {
  using namespace hetscale;
  bench::print_header("Table 4  Measured scalability of GE on Sunwulf",
                      "psi(C,C') = C'W / (C W') at E_s = 0.3.");

  std::vector<std::unique_ptr<scal::GeCombination>> combos;
  std::vector<scal::Combination*> ptrs;
  for (int nodes : bench::kPaperNodeCounts) {
    combos.push_back(bench::make_ge(nodes));
    ptrs.push_back(combos.back().get());
  }
  const auto report = scal::scalability_series(ptrs, bench::kGeTargetEs);

  Table table;
  table.set_header({"Step", "psi"});
  for (const auto& step : report.steps) {
    table.add_row({"psi(" + step.from + " -> " + step.to + ")",
                   Table::fixed(step.psi, 4)});
  }
  table.add_row({"cumulative psi(C2 -> C32)",
                 Table::fixed(report.cumulative_psi(), 4)});
  std::cout << table;
  std::cout << "(expected shape: 0 < psi < 1, slowly decaying — GE has a "
               "sequential portion and per-step communication)\n";
  return 0;
}
