#include "hetscale/scenarios/paper.hpp"

#include <sstream>
#include <utility>

#include "hetscale/marked/suite.hpp"
#include "hetscale/numeric/polynomial.hpp"
#include "hetscale/numeric/stats.hpp"
#include "hetscale/predict/models.hpp"
#include "hetscale/predict/probe.hpp"
#include "hetscale/run/scenario.hpp"
#include "hetscale/scal/iso_solver.hpp"
#include "hetscale/scal/metrics.hpp"
#include "hetscale/scal/series.hpp"
#include "hetscale/support/csv.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::scenarios {

namespace {

using run::RunContext;
using run::RunResult;
using run::Value;

/// An owning GE or MM ladder over kPaperNodeCounts.
struct Ladder {
  std::vector<std::unique_ptr<scal::ClusterCombination>> owned;
  std::vector<scal::Combination*> ptrs;
};

Ladder ge_ladder() {
  Ladder ladder;
  for (int nodes : kPaperNodeCounts) {
    ladder.owned.push_back(make_ge(nodes));
    ladder.ptrs.push_back(ladder.owned.back().get());
  }
  return ladder;
}

Ladder mm_ladder() {
  Ladder ladder;
  for (int nodes : kPaperNodeCounts) {
    ladder.owned.push_back(make_mm(nodes));
    ladder.ptrs.push_back(ladder.owned.back().get());
  }
  return ladder;
}

// ---- Table 1 — marked speed of the Sunwulf node types -------------------

RunResult table1(const RunContext&) {
  RunResult result;
  result.scenario = "table1_marked_speed";
  result.title = "Table 1  Marked speed of Sunwulf nodes (Mflops)";
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "Suite: EP, LU, FT, BT, MG kernels on one CPU per node type; marked "
      "speed = mean sustained rate (Definitions 1-2).");

  const machine::NodeSpec specs[] = {machine::sunwulf::server_spec(),
                                     machine::sunwulf::sunblade_spec(),
                                     machine::sunwulf::v210_spec()};
  const char* labels[] = {"Server Node (1 CPU)", "SunBlade",
                          "SunFire V210 (1 CPU)"};

  result.columns = {"node"};
  for (auto name : marked::kKernelNames) {
    result.columns.push_back("mflops_" + std::string(name));
  }
  result.columns.push_back("marked_speed_mflops");

  Table per_kernel("Per-kernel sustained rate (Mflops)");
  {
    std::vector<std::string> header{"Node"};
    for (auto name : marked::kKernelNames) header.emplace_back(name);
    header.emplace_back("Marked Speed");
    per_kernel.set_header(std::move(header));
  }
  for (int i = 0; i < 3; ++i) {
    const auto results = marked::run_suite(specs[i]);
    std::vector<std::string> row{labels[i]};
    std::vector<Value> cells{Value(labels[i])};
    for (const auto& r : results) {
      row.push_back(mflops_str(r.rate_flops));
      cells.push_back(Value::fixed(r.rate_flops / 1e6, 1));
    }
    const double node_speed = marked::node_marked_speed(specs[i]);
    row.push_back(mflops_str(node_speed));
    cells.push_back(Value::fixed(node_speed / 1e6, 1));
    per_kernel.add_row(std::move(row));
    result.add_row(std::move(cells));
  }
  os << per_kernel << '\n';

  // §4.3 worked example: C = server(1cpu) + SunBlade + 2 x V210(1cpu).
  machine::Cluster example;
  example.add_node("sunwulf", machine::sunwulf::server_spec(), 1);
  example.add_node("hpc-1", machine::sunwulf::sunblade_spec());
  example.add_node("hpc-65", machine::sunwulf::v210_spec(), 1);
  example.add_node("hpc-66", machine::sunwulf::v210_spec(), 1);
  const double example_speed = marked::system_marked_speed(example);
  os << "Worked example (paper §4.3): C[" << example.summary()
     << "] = " << mflops_str(example_speed) << " Mflops\n";
  result.add_scalar("worked_example_marked_speed_mflops",
                    Value::fixed(example_speed / 1e6, 1));

  result.text = os.str();
  return result;
}

// ---- Table 2 — GE on two nodes ------------------------------------------

RunResult table2(const RunContext& context) {
  RunResult result;
  result.scenario = "table2_ge_two_nodes";
  result.title = "Table 2  Experimental results on two nodes";
  auto combo = make_ge(2);
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "GE on " + combo->cluster().summary() +
          "; C = " + mflops_str(combo->marked_speed()) + " Mflops");

  const std::vector<std::int64_t> ranks{50,  100, 150, 200, 250,
                                        310, 400, 500, 640, 800};
  const auto measured = combo->measure_many(ranks, context.runner);

  result.columns = {"n", "work_mflop", "seconds", "speed_mflops",
                    "speed_efficiency"};
  result.add_scalar("marked_speed_mflops",
                    Value::fixed(combo->marked_speed() / 1e6, 1));

  Table table;
  table.set_header({"Rank N", "Workload W (Mflop)", "Execution Time T (s)",
                    "Achieved Speed (Mflops)", "Speed-efficiency"});
  for (const auto& m : measured) {
    table.add_row({std::to_string(m.n), Table::fixed(m.work_flops / 1e6, 2),
                   Table::fixed(m.seconds, 3), mflops_str(m.speed_flops),
                   Table::fixed(m.speed_efficiency, 3)});
    result.add_row({Value(m.n), Value::fixed(m.work_flops / 1e6, 2),
                    Value::fixed(m.seconds, 3),
                    Value::fixed(m.speed_flops / 1e6, 1),
                    Value::fixed(m.speed_efficiency, 3)});
  }
  os << table;
  result.text = os.str();
  return result;
}

// ---- Tables 3/4 — GE operating points and scalability -------------------

RunResult table3(const RunContext& context) {
  RunResult result;
  result.scenario = "table3_ge_required_rank";
  result.title = "Table 3  Required rank to obtain 0.3 speed-efficiency";
  std::ostringstream os;
  os << artifact_header(result.title,
                        "GE on the Sunwulf ladder (server 2 CPUs + "
                        "SunBlades).");

  auto ladder = ge_ladder();
  const auto report = scal::scalability_series(ladder.ptrs, kGeTargetEs, {},
                                               &context.runner);

  result.columns = {"system", "n", "work_mflop", "marked_speed_mflops",
                    "achieved_es"};
  result.add_scalar("target_es", Value::fixed(kGeTargetEs, 1));

  Table table;
  table.set_header({"System Configuration", "Rank N", "Workload (Mflop)",
                    "Marked Speed (Mflops)", "Achieved E_s"});
  for (const auto& point : report.points) {
    table.add_row({point.system,
                   point.found ? std::to_string(point.n) : "unreachable",
                   point.found ? Table::fixed(point.work / 1e6, 2) : "-",
                   mflops_str(point.marked_speed),
                   point.found ? Table::fixed(point.achieved_es, 3) : "-"});
    result.add_row({Value(point.system),
                    point.found ? Value(point.n) : Value(),
                    point.found ? Value::fixed(point.work / 1e6, 2) : Value(),
                    Value::fixed(point.marked_speed / 1e6, 1),
                    point.found ? Value::fixed(point.achieved_es, 3)
                                : Value()});
  }
  os << table;
  os << "(paper: N = 310 / 480 / ... growing with system size)\n";
  result.text = os.str();
  return result;
}

RunResult table4(const RunContext& context) {
  RunResult result;
  result.scenario = "table4_ge_scalability";
  result.title = "Table 4  Measured scalability of GE on Sunwulf";
  std::ostringstream os;
  os << artifact_header(result.title,
                        "psi(C,C') = C'W / (C W') at E_s = 0.3.");

  auto ladder = ge_ladder();
  const auto report = scal::scalability_series(ladder.ptrs, kGeTargetEs, {},
                                               &context.runner);

  result.columns = {"from", "to", "psi"};
  Table table;
  table.set_header({"Step", "psi"});
  for (const auto& step : report.steps) {
    table.add_row({"psi(" + step.from + " -> " + step.to + ")",
                   Table::fixed(step.psi, 4)});
    result.add_row(
        {Value(step.from), Value(step.to), Value::fixed(step.psi, 4)});
  }
  table.add_row({"cumulative psi(C2 -> C32)",
                 Table::fixed(report.cumulative_psi(), 4)});
  result.add_scalar("cumulative_psi",
                    Value::fixed(report.cumulative_psi(), 4));
  os << table;
  os << "(expected shape: 0 < psi < 1, slowly decaying — GE has a "
        "sequential portion and per-step communication)\n";
  result.text = os.str();
  return result;
}

// ---- Table 5 — MM scalability, compared against GE ----------------------

RunResult table5(const RunContext& context) {
  RunResult result;
  result.scenario = "table5_mm_scalability";
  result.title = "Table 5  Scalability of MM on Sunwulf";
  std::ostringstream os;
  os << artifact_header(result.title,
                        "psi at E_s = 0.2 on the mixed ensembles.");

  auto mm_systems = mm_ladder();
  const auto mm = scal::scalability_series(mm_systems.ptrs, kMmTargetEs, {},
                                           &context.runner);

  result.columns = {"from", "to", "required_n", "psi"};
  Table table;
  table.set_header({"Step", "Required N", "psi"});
  for (std::size_t i = 0; i < mm.steps.size(); ++i) {
    table.add_row({"psi(" + mm.steps[i].from + " -> " + mm.steps[i].to + ")",
                   std::to_string(mm.points[i + 1].n),
                   Table::fixed(mm.steps[i].psi, 4)});
    result.add_row({Value(mm.steps[i].from), Value(mm.steps[i].to),
                    Value(mm.points[i + 1].n),
                    Value::fixed(mm.steps[i].psi, 4)});
  }
  table.add_row({"cumulative psi(C2' -> C32')", "",
                 Table::fixed(mm.cumulative_psi(), 4)});
  os << table << '\n';

  // §4.4.3 comparison against the GE ladder.
  auto ge_systems = ge_ladder();
  const auto ge = scal::scalability_series(ge_systems.ptrs, kGeTargetEs, {},
                                           &context.runner);
  os << "GE cumulative psi = " << Table::fixed(ge.cumulative_psi(), 4)
     << " vs MM cumulative psi = " << Table::fixed(mm.cumulative_psi(), 4)
     << (mm.cumulative_psi() > ge.cumulative_psi()
             ? "  -> MM-Sunwulf is the more scalable combination "
               "(matches paper §4.4.3)"
             : "  -> UNEXPECTED: GE came out ahead")
     << '\n';
  result.add_scalar("mm_cumulative_psi",
                    Value::fixed(mm.cumulative_psi(), 4));
  result.add_scalar("ge_cumulative_psi",
                    Value::fixed(ge.cumulative_psi(), 4));
  result.add_scalar("mm_more_scalable",
                    Value(mm.cumulative_psi() > ge.cumulative_psi()));
  result.text = os.str();
  return result;
}

// ---- Tables 6/7 — the predicted counterparts ----------------------------

RunResult table6(const RunContext&) {
  RunResult result;
  result.scenario = "table6_ge_predicted_rank";
  result.title = "Table 6  Predicted required rank (GE, E_s = 0.3)";
  std::ostringstream os;
  os << artifact_header(result.title,
                        "Micro-probed comm parameters + analytic overhead "
                        "model (paper §4.5).");

  predict::ProbeConfig probe_config{.node = machine::sunwulf::sunblade_spec()};
  const auto comm = predict::probe_comm_model(probe_config);
  os << "Measured machine parameters:\n"
     << "  T_send(m)      = " << Table::fixed(comm.send_alpha_s * 1e3, 4)
     << " ms + " << Table::fixed(comm.send_beta_s_per_byte * 1e6, 4)
     << " us/byte\n"
     << "  T_bcast(p,m)   = " << Table::fixed(comm.bcast_const_s * 1e3, 4)
     << " ms + (p-1) * (" << Table::fixed(comm.bcast_alpha_s * 1e3, 4)
     << " ms + " << Table::fixed(comm.bcast_beta_s_per_byte * 1e6, 4)
     << " us/byte)\n"
     << "  T_barrier(p)   = " << Table::fixed(comm.barrier_const_s * 1e3, 4)
     << " ms + (p-1) * " << Table::fixed(comm.barrier_unit_s * 1e3, 4)
     << " ms\n\n";
  result.add_scalar("send_alpha_ms", Value::fixed(comm.send_alpha_s * 1e3, 4));
  result.add_scalar("send_beta_us_per_byte",
                    Value::fixed(comm.send_beta_s_per_byte * 1e6, 4));
  result.add_scalar("bcast_const_ms",
                    Value::fixed(comm.bcast_const_s * 1e3, 4));
  result.add_scalar("bcast_alpha_ms",
                    Value::fixed(comm.bcast_alpha_s * 1e3, 4));
  result.add_scalar("bcast_beta_us_per_byte",
                    Value::fixed(comm.bcast_beta_s_per_byte * 1e6, 4));
  result.add_scalar("barrier_const_ms",
                    Value::fixed(comm.barrier_const_s * 1e3, 4));
  result.add_scalar("barrier_unit_ms",
                    Value::fixed(comm.barrier_unit_s * 1e3, 4));

  predict::GeOverheadModel model;
  result.columns = {"nodes", "predicted_n"};
  Table table;
  table.set_header({"Nodes", "N (prediction)"});
  for (int nodes : kPaperNodeCounts) {
    const auto system = predict::system_model_for(
        machine::sunwulf::ge_ensemble(nodes), comm);
    const auto n =
        predict::predicted_required_size(model, system, kGeTargetEs);
    table.add_row({std::to_string(nodes), std::to_string(n)});
    result.add_row({Value(nodes), Value(n)});
  }
  os << table;
  os << "(compare against the measured Table 3 ranks)\n";
  result.text = os.str();
  return result;
}

RunResult table7(const RunContext& context) {
  RunResult result;
  result.scenario = "table7_ge_predicted_scalability";
  result.title = "Table 7  Predicted scalability of GE on Sunwulf";
  std::ostringstream os;
  os << artifact_header(result.title,
                        "Theorem 1 with probed parameters vs measured psi "
                        "at E_s = 0.3.");

  const auto comm = predict::probe_comm_model(
      predict::ProbeConfig{.node = machine::sunwulf::sunblade_spec()});
  predict::GeOverheadModel model;

  // Measured ladder (as in Table 4).
  auto ladder = ge_ladder();
  const auto measured = scal::scalability_series(ladder.ptrs, kGeTargetEs,
                                                 {}, &context.runner);

  result.columns = {"from_nodes", "to_nodes", "psi_predicted",
                    "psi_measured", "rel_error"};
  Table table;
  table.set_header(
      {"Step", "psi (predicted)", "psi (measured)", "rel. error"});
  for (std::size_t i = 0; i + 1 < kPaperNodeCounts.size(); ++i) {
    const auto from = predict::system_model_for(
        machine::sunwulf::ge_ensemble(kPaperNodeCounts[i]), comm);
    const auto to = predict::system_model_for(
        machine::sunwulf::ge_ensemble(kPaperNodeCounts[i + 1]), comm);
    const double predicted =
        predict::predicted_scalability(model, from, to, kGeTargetEs);
    const double got = measured.steps[i].psi;
    table.add_row({"psi(C" + std::to_string(kPaperNodeCounts[i]) + ", C" +
                       std::to_string(kPaperNodeCounts[i + 1]) + ")",
                   Table::fixed(predicted, 4), Table::fixed(got, 4),
                   Table::fixed(numeric::relative_error(predicted, got), 3)});
    result.add_row({Value(kPaperNodeCounts[i]),
                    Value(kPaperNodeCounts[i + 1]),
                    Value::fixed(predicted, 4), Value::fixed(got, 4),
                    Value::fixed(numeric::relative_error(predicted, got),
                                 3)});
  }
  os << table;
  os << "(paper finding: prediction close to measurement, validating "
        "the isospeed-efficiency metric)\n";
  result.text = os.str();
  return result;
}

// ---- Figures 1/2 — speed-efficiency curves ------------------------------

RunResult fig1(const RunContext& context) {
  RunResult result;
  result.scenario = "fig1_ge_speed_efficiency";
  result.title = "Fig. 1  Speed-efficiency on two nodes";
  auto combo = make_ge(2);
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "GE on " + combo->cluster().summary() + "; polynomial trend line and "
      "trend-read verification at E_s = 0.3.");

  std::vector<std::int64_t> sizes;
  for (std::int64_t n = 50; n <= 1000; n += 50) sizes.push_back(n);
  const auto curve =
      scal::sample_efficiency_curve(*combo, sizes, context.runner);
  const auto trend = scal::fit_trend(curve, 3);

  result.columns = {"n", "speed_efficiency", "trend"};
  CsvWriter csv({"N", "speed_efficiency", "trend"});
  for (const auto& m : curve.samples) {
    const double trend_at = trend(static_cast<double>(m.n));
    csv.add_row({std::to_string(m.n), Table::fixed(m.speed_efficiency, 4),
                 Table::fixed(trend_at, 4)});
    result.add_row({Value(m.n), Value::fixed(m.speed_efficiency, 4),
                    Value::fixed(trend_at, 4)});
  }
  os << csv.str();
  const double r2 =
      numeric::r_squared(trend, curve.sizes(), curve.efficiencies());
  os << "trend R^2 = " << Table::fixed(r2, 4) << "\n\n";
  result.add_scalar("trend_r_squared", Value::fixed(r2, 4));

  scal::IsoSolveOptions options;
  options.method = scal::IsoSolveOptions::Method::kTrendLine;
  options.trend_n_lo = 50;
  options.trend_n_hi = 1000;
  options.runner = &context.runner;
  const auto solved =
      scal::required_problem_size(*combo, kGeTargetEs, options);
  os << "Trend-line read-off for E_s = " << kGeTargetEs << ": N ~ "
     << solved.n << "; measured E_s at that N = "
     << Table::fixed(solved.achieved_es, 3)
     << "  (paper: N ~ 310 measured 0.312)\n";
  result.add_scalar("trend_read_n", Value(solved.n));
  result.add_scalar("measured_es_at_read",
                    Value::fixed(solved.achieved_es, 3));
  result.text = os.str();
  return result;
}

RunResult fig2(const RunContext& context) {
  RunResult result;
  result.scenario = "fig2_mm_speed_efficiency";
  result.title = "Fig. 2  Speed-efficiency of MM on Sunwulf";
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "MM on mixed ensembles (server 1 CPU + SunBlades + V210s, 1 CPU "
      "each); cubic trend per series.");

  std::vector<std::int64_t> sizes;
  for (std::int64_t n = 16; n <= 512; n += 16) sizes.push_back(n);

  std::vector<std::string> header{"N"};
  result.columns = {"n"};
  std::vector<scal::EfficiencyCurve> curves;
  std::vector<numeric::Polynomial> trends;
  for (int nodes : kPaperNodeCounts) {
    auto combo = make_mm(nodes);
    curves.push_back(
        scal::sample_efficiency_curve(*combo, sizes, context.runner));
    trends.push_back(scal::fit_trend(curves.back(), 3));
    header.push_back("es_" + std::to_string(nodes) + "nodes");
    header.push_back("trend_" + std::to_string(nodes) + "nodes");
    result.columns.push_back("es_" + std::to_string(nodes) + "nodes");
    result.columns.push_back("trend_" + std::to_string(nodes) + "nodes");
  }

  CsvWriter csv(std::move(header));
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    std::vector<std::string> row{std::to_string(sizes[s])};
    std::vector<Value> cells{Value(sizes[s])};
    for (std::size_t c = 0; c < curves.size(); ++c) {
      const double es = curves[c].samples[s].speed_efficiency;
      const double trend_at = trends[c](static_cast<double>(sizes[s]));
      row.push_back(Table::fixed(es, 4));
      row.push_back(Table::fixed(trend_at, 4));
      cells.push_back(Value::fixed(es, 4));
      cells.push_back(Value::fixed(trend_at, 4));
    }
    csv.add_row(std::move(row));
    result.add_row(std::move(cells));
  }
  os << csv.str();
  os << "(expected shape: each curve rises with N; larger systems "
        "need larger N for the same E_s)\n";
  result.text = os.str();
  return result;
}

}  // namespace

scal::ClusterCombination::Config ge_config(int nodes,
                                           scal::NetworkKind network) {
  scal::ClusterCombination::Config config;
  config.cluster = machine::sunwulf::ge_ensemble(nodes);
  config.network = network;
  config.with_data = false;
  return config;
}

scal::ClusterCombination::Config mm_config(int nodes,
                                           scal::NetworkKind network) {
  scal::ClusterCombination::Config config;
  config.cluster = machine::sunwulf::mm_ensemble(nodes);
  config.network = network;
  config.with_data = false;
  return config;
}

std::unique_ptr<scal::GeCombination> make_ge(int nodes,
                                             scal::NetworkKind network) {
  return std::make_unique<scal::GeCombination>(
      std::to_string(nodes) + " Nodes, C" + std::to_string(nodes),
      ge_config(nodes, network));
}

std::unique_ptr<scal::MmCombination> make_mm(int nodes,
                                             scal::NetworkKind network) {
  return std::make_unique<scal::MmCombination>(
      std::to_string(nodes) + " Nodes, C" + std::to_string(nodes) + "'",
      mm_config(nodes, network));
}

std::string artifact_header(const std::string& artifact,
                            const std::string& description) {
  return "==================================================\n" + artifact +
         "\n" + description +
         "\n==================================================\n";
}

std::string mflops_str(double flops) { return Table::fixed(flops / 1e6, 1); }

void register_paper_scenarios() {
  static const bool registered = [] {
    run::register_scenario(
        {"table1_marked_speed",
         "Table 1: marked speed of the Sunwulf node types", table1});
    run::register_scenario(
        {"table2_ge_two_nodes",
         "Table 2: GE measurements on the two-node ensemble", table2});
    run::register_scenario(
        {"table3_ge_required_rank",
         "Table 3: required rank for E_s = 0.3 on the GE ladder", table3});
    run::register_scenario(
        {"table4_ge_scalability",
         "Table 4: measured GE scalability psi between ladder steps",
         table4});
    run::register_scenario(
        {"table5_mm_scalability",
         "Table 5: measured MM scalability psi, compared against GE",
         table5});
    run::register_scenario(
        {"table6_ge_predicted_rank",
         "Table 6: predicted required rank from probed parameters", table6});
    run::register_scenario(
        {"table7_ge_predicted_scalability",
         "Table 7: predicted vs measured GE scalability", table7});
    run::register_scenario(
        {"fig1_ge_speed_efficiency",
         "Fig. 1: GE speed-efficiency curve on two nodes", fig1});
    run::register_scenario(
        {"fig2_mm_speed_efficiency",
         "Fig. 2: MM speed-efficiency curves on the ladder", fig2});
    return true;
  }();
  (void)registered;
}

}  // namespace hetscale::scenarios
