#include "hetscale/scenarios/fault.hpp"

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "hetscale/run/scenario.hpp"
#include "hetscale/scal/fault_study.hpp"
#include "hetscale/scal/series.hpp"
#include "hetscale/scenarios/paper.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::scenarios {

namespace {

using run::RunContext;
using run::RunResult;
using run::Value;

/// The degraded GE ladder: healthy combinations, their seeded plans, and
/// the faulted wrappers, with stable storage for all three.
struct FaultedLadder {
  std::vector<std::unique_ptr<scal::ClusterCombination>> healthy;
  std::vector<std::unique_ptr<fault::FaultPlan>> plans;
  std::vector<std::unique_ptr<scal::FaultedCombination>> faulted;
  std::vector<scal::Combination*> healthy_ptrs;
  std::vector<scal::Combination*> faulted_ptrs;
};

FaultedLadder ge_faulted_ladder(std::uint64_t seed,
                                const std::vector<int>& node_counts) {
  FaultedLadder ladder;
  for (int nodes : node_counts) {
    ladder.healthy.push_back(make_ge(nodes));
    auto& combo = *ladder.healthy.back();
    ladder.plans.push_back(std::make_unique<fault::FaultPlan>(
        fault::FaultPlan::generate(seed, degraded_plan_spec(),
                                   combo.processor_count())));
    ladder.faulted.push_back(std::make_unique<scal::FaultedCombination>(
        combo, *ladder.plans.back()));
    ladder.healthy_ptrs.push_back(&combo);
    ladder.faulted_ptrs.push_back(ladder.faulted.back().get());
  }
  return ladder;
}

// ---- fault_ge_degraded_scalability --------------------------------------

RunResult ge_degraded_scalability(const RunContext& context) {
  RunResult result;
  result.scenario = "fault_ge_degraded_scalability";
  result.title = "GE scalability under a seeded degradation plan";
  std::ostringstream os;

  const std::vector<int> node_counts{2, 4, 8};
  auto ladder = ge_faulted_ladder(context.seed, node_counts);
  os << artifact_header(
      result.title,
      "psi at E_s = 0.3 on the {2,4,8}-node GE ladder, healthy vs degraded "
      "(stragglers at 0.6x + periodic link faults; plan '" +
          ladder.plans.front()->summary() + "').");

  const auto healthy = scal::scalability_series(
      ladder.healthy_ptrs, kGeTargetEs, {}, &context.runner);
  const auto faulty = scal::scalability_series(
      ladder.faulted_ptrs, kGeTargetEs, {}, &context.runner);

  result.columns = {"nodes",   "marked_speed_mflops", "n_healthy",
                    "n_faulty", "effective_speed_mflops", "degraded_es"};
  Table points("Operating points at E_s = 0.3");
  points.set_header({"System", "C (Mflops)", "N healthy", "N degraded",
                     "C_eff (Mflops)", "degraded E_s"});
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const auto& h = healthy.points[i];
    const auto& f = faulty.points[i];
    std::string n_faulty = "-";
    std::string c_eff = "-";
    std::string degraded_es = "-";
    Value n_faulty_v, c_eff_v, degraded_es_v;  // null unless found
    if (f.found) {
      const auto& fm = ladder.faulted[i]->measure_faulty(f.n);
      n_faulty = std::to_string(f.n);
      c_eff = mflops_str(fm.effective_marked_speed);
      degraded_es = Table::fixed(fm.degraded_es, 4);
      n_faulty_v = Value(f.n);
      c_eff_v = Value::fixed(fm.effective_marked_speed / 1e6, 1);
      degraded_es_v = Value::fixed(fm.degraded_es, 4);
    }
    points.add_row({h.system, mflops_str(h.marked_speed),
                    h.found ? std::to_string(h.n) : "-", n_faulty, c_eff,
                    degraded_es});
    result.add_row({Value(node_counts[i]),
                    Value::fixed(h.marked_speed / 1e6, 1),
                    h.found ? Value(h.n) : Value(), n_faulty_v, c_eff_v,
                    degraded_es_v});
  }
  os << points << '\n';

  Table steps("psi between ladder steps");
  steps.set_header({"Step", "psi healthy", "psi degraded"});
  for (std::size_t i = 0; i < healthy.steps.size(); ++i) {
    const auto& h = healthy.steps[i];
    const double faulty_psi =
        i < faulty.steps.size() ? faulty.steps[i].psi : 0.0;
    steps.add_row({"psi(" + h.from + " -> " + h.to + ")",
                   Table::fixed(h.psi, 4), Table::fixed(faulty_psi, 4)});
  }
  os << steps;
  os << "(a scalable combination degrades gracefully: the degraded psi "
        "tracks the healthy one, paid for by a larger required N)\n";

  result.add_scalar("seed", Value(static_cast<std::int64_t>(context.seed)));
  result.add_scalar("cumulative_psi_healthy",
                    Value::fixed(healthy.cumulative_psi(), 4));
  result.add_scalar("cumulative_psi_degraded",
                    Value::fixed(faulty.cumulative_psi(), 4));
  result.text = os.str();
  return result;
}

// ---- fault_mm_crash_restart ---------------------------------------------

RunResult mm_crash_restart(const RunContext& context) {
  RunResult result;
  result.scenario = "fault_mm_crash_restart";
  result.title = "MM under crash/restart: the checkpoint interval trade";
  std::ostringstream os;

  constexpr int kNodes = 4;
  constexpr std::int64_t kN = 384;
  auto combo = make_mm(kNodes);
  const int ranks = combo->processor_count();
  const auto& healthy = combo->measure(kN);
  const double t_healthy = healthy.seconds;

  os << artifact_header(
      result.title,
      "MM (N=384, 4 nodes) under a seeded Poisson crash schedule; sweeping "
      "the checkpoint interval shows checkpoint cost vs crash rework "
      "(Theorem 1's T_o gains a fault term).");

  // The same seeded crash schedule for every row — only the checkpoint
  // cadence varies, so the sweep is a controlled experiment. Intervals and
  // crash rate scale with the healthy runtime, keeping the scenario
  // meaningful at any problem size.
  fault::PlanSpec base;
  base.crash_rate_per_s = 2.0 / t_healthy;
  base.restart_delay_s = 0.05 * t_healthy;
  base.horizon_s = 5.0 * t_healthy;
  base.checkpoint.bytes =
      8.0 * static_cast<double>(kN) * static_cast<double>(kN) /
      static_cast<double>(ranks);
  base.checkpoint.flops = static_cast<double>(kN) * static_cast<double>(kN);

  const std::vector<std::pair<std::string, double>> intervals{
      {"none", 0.0},
      {"T/2", t_healthy / 2.0},
      {"T/4", t_healthy / 4.0},
      {"T/8", t_healthy / 8.0},
  };

  result.columns = {"interval",      "checkpoints",  "crashes",
                    "checkpoint_s",  "rework_s",     "elapsed_s",
                    "fault_overhead_s", "efficiency_retention"};
  Table table("Checkpoint interval sweep (T_healthy = " +
              Table::fixed(t_healthy, 4) + " s)");
  table.set_header({"Interval", "Ckpts", "Crashes", "Ckpt s", "Rework s",
                    "T s", "Overhead s", "E_s retention"});
  for (const auto& [label, interval] : intervals) {
    fault::PlanSpec spec = base;
    spec.checkpoint.interval_s = interval;
    const auto plan =
        fault::FaultPlan::generate(context.seed, spec, ranks);
    const auto d = scal::decompose_faults(*combo, kN, plan);
    const auto& totals = d.faulty.fault_totals;
    table.add_row({label, std::to_string(totals.checkpoints),
                   std::to_string(totals.crashes),
                   Table::fixed(totals.checkpoint_s, 4),
                   Table::fixed(totals.rework_s, 4),
                   Table::fixed(d.faulty.measurement.seconds, 4),
                   Table::fixed(d.fault_overhead_s, 4),
                   Table::fixed(d.efficiency_retention, 4)});
    result.add_row({Value(label),
                    Value(static_cast<std::int64_t>(totals.checkpoints)),
                    Value(static_cast<std::int64_t>(totals.crashes)),
                    Value::fixed(totals.checkpoint_s, 4),
                    Value::fixed(totals.rework_s, 4),
                    Value::fixed(d.faulty.measurement.seconds, 4),
                    Value::fixed(d.fault_overhead_s, 4),
                    Value::fixed(d.efficiency_retention, 4)});
  }
  os << table;
  os << "(short intervals pay more checkpoint cost but bound the rework a "
        "crash can roll back; 'none' rolls back to the start of the run)\n";

  result.add_scalar("seed", Value(static_cast<std::int64_t>(context.seed)));
  result.add_scalar("healthy_elapsed_s", Value::fixed(t_healthy, 4));
  result.text = os.str();
  return result;
}

// ---- fault_ge_loss_retry ------------------------------------------------

RunResult ge_loss_retry(const RunContext& context) {
  RunResult result;
  result.scenario = "fault_ge_loss_retry";
  result.title = "GE under transient message loss";
  std::ostringstream os;

  constexpr std::int64_t kN = 512;
  auto combo = make_ge(2);
  os << artifact_header(
      result.title,
      "GE (N=512, 2 nodes) with per-transmission drop probability; lost "
      "frames occupy the wire, senders retry after timeout with "
      "exponential backoff.");

  const std::vector<double> drop_probabilities{0.0, 0.02, 0.05, 0.1, 0.2};

  result.columns = {"drop_probability", "retries",  "retry_s",
                    "elapsed_s",        "speed_efficiency",
                    "efficiency_retention"};
  Table table("Drop-probability ladder");
  table.set_header({"p(drop)", "Retries", "Retry s", "T s", "E_s",
                    "E_s retention"});
  for (const double p : drop_probabilities) {
    fault::FaultPlan plan(context.seed);
    fault::LossModel loss;
    loss.drop_probability = p;
    plan.set_loss(loss);
    const auto d = scal::decompose_faults(*combo, kN, plan);
    const auto& totals = d.faulty.fault_totals;
    table.add_row({Table::fixed(p, 2), std::to_string(totals.retries),
                   Table::fixed(totals.retry_s, 4),
                   Table::fixed(d.faulty.measurement.seconds, 4),
                   Table::fixed(d.faulty.measurement.speed_efficiency, 4),
                   Table::fixed(d.efficiency_retention, 4)});
    result.add_row({Value::fixed(p, 2),
                    Value(static_cast<std::int64_t>(totals.retries)),
                    Value::fixed(totals.retry_s, 4),
                    Value::fixed(d.faulty.measurement.seconds, 4),
                    Value::fixed(d.faulty.measurement.speed_efficiency, 4),
                    Value::fixed(d.efficiency_retention, 4)});
  }
  os << table;
  os << "(the p=0 row is the healthy baseline; retry waits compound on "
        "GE's per-step broadcasts, so efficiency falls faster than p)\n";

  result.add_scalar("seed", Value(static_cast<std::int64_t>(context.seed)));
  result.text = os.str();
  return result;
}

}  // namespace

fault::PlanSpec degraded_plan_spec() {
  fault::PlanSpec spec;
  spec.slowdown_probability = 1.0;
  spec.slowdown_factor = 0.6;
  spec.slowdown_duty = 0.4;
  spec.slowdown_period_s = 0.5;
  spec.link_duty = 0.25;
  spec.link_period_s = 0.5;
  spec.link_bandwidth_factor = 0.5;
  spec.link_extra_latency_s = 1e-4;
  // The GE/MM artifact runs finish well inside 200 virtual seconds; a
  // tighter horizon keeps the generated window list (and the per-compute
  // interval scans over it) small.
  spec.horizon_s = 200.0;
  return spec;
}

void register_fault_scenarios() {
  static const bool registered = [] {
    run::register_scenario(
        {"fault_ge_degraded_scalability",
         "GE ladder psi at E_s = 0.3, healthy vs seeded degradation plan",
         ge_degraded_scalability});
    run::register_scenario(
        {"fault_mm_crash_restart",
         "MM under seeded crashes: checkpoint-interval sweep with fault "
         "overhead decomposition",
         mm_crash_restart});
    run::register_scenario(
        {"fault_ge_loss_retry",
         "GE under transient message loss: drop-probability ladder with "
         "retry accounting",
         ge_loss_retry});
    return true;
  }();
  (void)registered;
}

}  // namespace hetscale::scenarios
