#include "hetscale/scenarios/large_p.hpp"

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "hetscale/machine/parse.hpp"
#include "hetscale/run/scenario.hpp"
#include "hetscale/scal/series.hpp"
#include "hetscale/scenarios/paper.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::scenarios {

namespace {

using run::RunContext;
using run::RunResult;
using run::Value;

/// MM's isospeed target, from the paper (Table 5).
constexpr double kLargePMmTargetEs = 0.2;

/// GE rungs share one simulated-communication budget: n(p) = kGeVolume / p,
/// so every rung costs roughly the same number of simulated messages
/// (n steps x Θ(p) collective messages each) and the ladder's wall-clock
/// stays bounded while p grows 16x.
constexpr std::int64_t kGeVolume = std::int64_t{1} << 20;

/// Jacobi scales weakly: four grid rows per rank, a fixed sweep count.
constexpr std::int64_t kJacobiRowsPerRank = 4;
constexpr std::int64_t kJacobiSweeps = 5;

std::string rung_name(const char* algo, int ranks) {
  return std::string(algo) + "@" + std::to_string(ranks);
}

RunResult large_p(const RunContext& context) {
  RunResult result;
  result.scenario = "large_p_scalability";
  result.title = "Large-p  GE/MM/Jacobi ladders at 256-4096 ranks";
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "Synthetic Sunwulf-catalog ensembles (1/2 SunBlade, 1/4 V210, 1/4 "
      "server, one CPU each) under the tree collective family. MM runs the "
      "paper's isospeed ladder (required N at E_s = 0.2, psi between "
      "rungs); its root-centric distribution amortizes, so the isospeed "
      "condition holds to 4096 ranks. GE (fixed communication volume "
      "n*p = 2^20) and Jacobi (four rows per rank, 5 sweeps) record the "
      "fixed/weak-scaling operating points instead: their per-step "
      "broadcast+barrier and one-shot distribution costs grow with p "
      "faster than the workload, so E_s decays — the retrograde region "
      "the USL/BSF models in the zoo predict from contention terms.");

  const std::vector<int> rungs(std::begin(kLargePRungs),
                               std::end(kLargePRungs));

  result.columns = {"workload", "p", "n", "work_flops", "t_sim_s", "es",
                    "psi"};

  // ---- GE: fixed-communication-volume ladder ----------------------------
  std::vector<std::unique_ptr<scal::GeCombination>> ge;
  for (int p : rungs) {
    ge.push_back(std::make_unique<scal::GeCombination>(rung_name("ge", p),
                                                       large_p_config(p)));
  }
  const auto ge_points = context.runner.map(rungs.size(), [&](std::size_t i) {
    return ge[i]->measure(kGeVolume / rungs[i]);
  });

  // ---- Jacobi: weak-scaling ladder --------------------------------------
  std::vector<std::unique_ptr<scal::JacobiCombination>> jacobi;
  for (int p : rungs) {
    jacobi.push_back(std::make_unique<scal::JacobiCombination>(
        rung_name("jacobi", p), large_p_config(p), kJacobiSweeps));
  }
  const auto jacobi_points =
      context.runner.map(rungs.size(), [&](std::size_t i) {
        return jacobi[i]->measure(kJacobiRowsPerRank * rungs[i] + 2);
      });

  // ---- MM: the paper's isospeed ladder, 16-4096x the testbed ------------
  std::vector<std::unique_ptr<scal::MmCombination>> mm;
  std::vector<scal::Combination*> mm_ptrs;
  for (int p : rungs) {
    mm.push_back(std::make_unique<scal::MmCombination>(rung_name("mm", p),
                                                       large_p_config(p)));
    mm_ptrs.push_back(mm.back().get());
  }
  scal::IsoSolveOptions solve;
  solve.runner = &context.runner;
  const auto mm_series = scal::scalability_series(
      mm_ptrs, kLargePMmTargetEs, solve, &context.runner);

  // ---- Render: one unified ladder table ---------------------------------
  Table table("Operating points (MM rows at the isospeed target)");
  table.set_header({"Workload", "p", "N", "W (flop)", "T_sim (s)", "E_s",
                    "psi"});
  const auto add_point = [&](const char* workload, int p,
                             const scal::Measurement& m, Value psi) {
    table.add_row({workload, std::to_string(p), std::to_string(m.n),
                   Table::num(m.work_flops, 0), Table::num(m.seconds, 4),
                   Table::fixed(m.speed_efficiency, 4),
                   psi.kind() == Value::Kind::kNull ? "-" : psi.text()});
    result.add_row({Value(workload), Value(p), Value(m.n),
                    Value::real(m.work_flops, 0), Value::real(m.seconds, 4),
                    Value::fixed(m.speed_efficiency, 4), std::move(psi)});
  };
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    add_point("ge", rungs[i], ge_points[i], Value());
  }
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    add_point("jacobi", rungs[i], jacobi_points[i], Value());
  }
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const auto& point = mm_series.points[i];
    HETSCALE_CHECK(point.found, "MM isospeed target unreachable at p=" +
                                    std::to_string(rungs[i]));
    const auto& m = mm[i]->measure(point.n);
    add_point("mm", rungs[i], m,
              i == 0 ? Value()
                     : Value::fixed(mm_series.steps[i - 1].psi, 4));
  }
  os << table;
  os << "MM cumulative psi (256 -> 4096 ranks): "
     << Table::fixed(mm_series.cumulative_psi(), 4) << '\n';

  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const std::string p = std::to_string(rungs[i]);
    result.add_scalar("ge_es_p" + p,
                      Value::fixed(ge_points[i].speed_efficiency, 4));
    result.add_scalar("mm_required_n_p" + p, Value(mm_series.points[i].n));
  }
  result.add_scalar("mm_cumulative_psi",
                    Value::fixed(mm_series.cumulative_psi(), 4));
  result.text = os.str();
  return result;
}

}  // namespace

std::string large_p_description(int ranks) {
  HETSCALE_REQUIRE(ranks >= 4 && ranks % 4 == 0,
                   "a large-p rung must be a positive multiple of 4 ranks");
  return "sunbladex" + std::to_string(ranks / 2) + ":1,v210x" +
         std::to_string(ranks / 4) + ":1,serverx" + std::to_string(ranks / 4) +
         ":1";
}

machine::Cluster large_p_cluster(int ranks) {
  return machine::parse_cluster(large_p_description(ranks));
}

scal::ClusterCombination::Config large_p_config(int ranks) {
  scal::ClusterCombination::Config config;
  config.cluster = large_p_cluster(ranks);
  config.network = scal::NetworkKind::kSwitched;
  config.with_data = false;
  config.tuning = vmpi::CollectiveTuning::tree();
  return config;
}

void register_large_p_scenarios() {
  static const bool registered = [] {
    run::register_scenario(
        {"large_p_scalability",
         "GE/MM/Jacobi ladders on 256-4096-rank synthetic ensembles "
         "(tree collectives)",
         large_p});
    return true;
  }();
  (void)registered;
}

}  // namespace hetscale::scenarios
