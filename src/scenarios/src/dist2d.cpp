#include "hetscale/scenarios/dist2d.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "hetscale/run/scenario.hpp"
#include "hetscale/scal/series.hpp"
#include "hetscale/scenarios/paper.hpp"
#include "hetscale/support/csv.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::scenarios {

namespace {

using run::RunContext;
using run::RunResult;
using run::Value;

/// The ladders stop at 16 nodes: the 2D scenarios add a baseline sweep on
/// top of the paper's, and the 32-node rung adds cost without changing any
/// of the comparisons these artifacts pin.
const std::vector<int> kDist2dNodeCounts{2, 4, 8, 16};

// ---- SUMMA: speed-efficiency curves + psi vs the 1D row algorithm -------

RunResult summa_mm(const RunContext& context) {
  RunResult result;
  result.scenario = "summa_mm_scalability";
  result.title = "SUMMA  Speed-efficiency on a 2D speed-balanced grid";
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "SUMMA over the MM ensembles; same workload and inputs as the row "
      "algorithm, 2D block-cyclic tiles and panel broadcasts instead of "
      "row blocks. Baseline column: row MM on the 8-node ensemble.");

  std::vector<std::int64_t> sizes;
  for (std::int64_t n = 32; n <= 512; n += 32) sizes.push_back(n);

  std::vector<std::string> header{"N"};
  result.columns = {"n"};
  std::vector<scal::EfficiencyCurve> curves;
  for (int nodes : kDist2dNodeCounts) {
    auto combo = make_summa(nodes);
    curves.push_back(
        scal::sample_efficiency_curve(*combo, sizes, context.runner));
    header.push_back("es_" + std::to_string(nodes) + "nodes");
    result.columns.push_back("es_" + std::to_string(nodes) + "nodes");
  }
  auto row_mm = make_mm(8);
  const auto mm_curve =
      scal::sample_efficiency_curve(*row_mm, sizes, context.runner);
  header.push_back("es_row_mm_8nodes");
  result.columns.push_back("es_row_mm_8nodes");

  CsvWriter csv(std::move(header));
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    std::vector<std::string> row{std::to_string(sizes[s])};
    std::vector<Value> cells{Value(sizes[s])};
    for (const auto& curve : curves) {
      row.push_back(Table::fixed(curve.samples[s].speed_efficiency, 4));
      cells.push_back(Value::fixed(curve.samples[s].speed_efficiency, 4));
    }
    row.push_back(Table::fixed(mm_curve.samples[s].speed_efficiency, 4));
    cells.push_back(Value::fixed(mm_curve.samples[s].speed_efficiency, 4));
    csv.add_row(std::move(row));
    result.add_row(std::move(cells));
  }
  os << csv.str() << '\n';

  // psi between ladder rungs at the paper's MM target, vs the row ladder.
  std::vector<std::unique_ptr<scal::ClusterCombination>> owned;
  std::vector<scal::Combination*> summa_ptrs;
  std::vector<scal::Combination*> mm_ptrs;
  for (int nodes : kDist2dNodeCounts) {
    owned.push_back(make_summa(nodes));
    summa_ptrs.push_back(owned.back().get());
  }
  for (int nodes : kDist2dNodeCounts) {
    owned.push_back(make_mm(nodes));
    mm_ptrs.push_back(owned.back().get());
  }
  const auto summa_series = scal::scalability_series(
      summa_ptrs, kMmTargetEs, {}, &context.runner);
  const auto mm_series =
      scal::scalability_series(mm_ptrs, kMmTargetEs, {}, &context.runner);

  Table table("Isospeed-efficiency scalability at E_s = " +
              Table::num(kMmTargetEs, 2));
  table.set_header({"Step", "psi (SUMMA)", "psi (row MM)"});
  for (std::size_t i = 0; i < summa_series.steps.size(); ++i) {
    const auto& step = summa_series.steps[i];
    table.add_row({"psi(" + step.from + " -> " + step.to + ")",
                   Table::fixed(step.psi, 4),
                   Table::fixed(mm_series.steps[i].psi, 4)});
    result.add_scalar("psi_summa_" + std::to_string(kDist2dNodeCounts[i]) +
                          "_to_" + std::to_string(kDist2dNodeCounts[i + 1]),
                      Value::fixed(step.psi, 4));
  }
  os << table;
  os << "cumulative psi: SUMMA = "
     << Table::fixed(summa_series.cumulative_psi(), 4)
     << ", row MM = " << Table::fixed(mm_series.cumulative_psi(), 4) << '\n';
  result.add_scalar("summa_cumulative_psi",
                    Value::fixed(summa_series.cumulative_psi(), 4));
  result.add_scalar("row_mm_cumulative_psi",
                    Value::fixed(mm_series.cumulative_psi(), 4));
  result.text = os.str();
  return result;
}

// ---- Pivoted GE: curves + psi vs the pivot-free variant -----------------

RunResult ge_pivot(const RunContext& context) {
  RunResult result;
  result.scenario = "ge_pivot_scalability";
  result.title = "Pivoted GE  Speed-efficiency with partial pivoting";
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "Panel-blocked GE with partial pivoting on the GE ensembles. The "
      "pivot search, row swaps, and redundant panel reconstruction are "
      "charged overhead on top of the GE workload, so each curve sits "
      "below its pivot-free counterpart (baseline column: 4 nodes).");

  const std::vector<int> ladder{2, 4, 8};
  std::vector<std::int64_t> sizes;
  for (std::int64_t n = 50; n <= 500; n += 50) sizes.push_back(n);

  std::vector<std::string> header{"N"};
  result.columns = {"n"};
  std::vector<scal::EfficiencyCurve> curves;
  for (int nodes : ladder) {
    auto combo = make_ge_pivot(nodes);
    curves.push_back(
        scal::sample_efficiency_curve(*combo, sizes, context.runner));
    header.push_back("es_" + std::to_string(nodes) + "nodes");
    result.columns.push_back("es_" + std::to_string(nodes) + "nodes");
  }
  auto plain = make_ge(4);
  const auto plain_curve =
      scal::sample_efficiency_curve(*plain, sizes, context.runner);
  header.push_back("es_pivot_free_4nodes");
  result.columns.push_back("es_pivot_free_4nodes");

  CsvWriter csv(std::move(header));
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    std::vector<std::string> row{std::to_string(sizes[s])};
    std::vector<Value> cells{Value(sizes[s])};
    for (const auto& curve : curves) {
      row.push_back(Table::fixed(curve.samples[s].speed_efficiency, 4));
      cells.push_back(Value::fixed(curve.samples[s].speed_efficiency, 4));
    }
    row.push_back(Table::fixed(plain_curve.samples[s].speed_efficiency, 4));
    cells.push_back(Value::fixed(plain_curve.samples[s].speed_efficiency, 4));
    csv.add_row(std::move(row));
    result.add_row(std::move(cells));
  }
  os << csv.str() << '\n';

  std::vector<std::unique_ptr<scal::ClusterCombination>> owned;
  std::vector<scal::Combination*> pivot_ptrs;
  std::vector<scal::Combination*> plain_ptrs;
  for (int nodes : ladder) {
    owned.push_back(make_ge_pivot(nodes));
    pivot_ptrs.push_back(owned.back().get());
  }
  for (int nodes : ladder) {
    owned.push_back(make_ge(nodes));
    plain_ptrs.push_back(owned.back().get());
  }
  const auto pivot_series = scal::scalability_series(
      pivot_ptrs, kGeTargetEs, {}, &context.runner);
  const auto plain_series = scal::scalability_series(
      plain_ptrs, kGeTargetEs, {}, &context.runner);

  Table table("Isospeed-efficiency scalability at E_s = " +
              Table::num(kGeTargetEs, 2));
  table.set_header({"Step", "psi (pivoted)", "psi (pivot-free)"});
  for (std::size_t i = 0; i < pivot_series.steps.size(); ++i) {
    const auto& step = pivot_series.steps[i];
    table.add_row({"psi(" + step.from + " -> " + step.to + ")",
                   Table::fixed(step.psi, 4),
                   Table::fixed(plain_series.steps[i].psi, 4)});
    result.add_scalar("psi_pivot_" + std::to_string(ladder[i]) + "_to_" +
                          std::to_string(ladder[i + 1]),
                      Value::fixed(step.psi, 4));
  }
  os << table;
  os << "cumulative psi: pivoted = "
     << Table::fixed(pivot_series.cumulative_psi(), 4) << ", pivot-free = "
     << Table::fixed(plain_series.cumulative_psi(), 4) << '\n';
  result.add_scalar("pivot_cumulative_psi",
                    Value::fixed(pivot_series.cumulative_psi(), 4));
  result.add_scalar("pivot_free_cumulative_psi",
                    Value::fixed(plain_series.cumulative_psi(), 4));
  result.text = os.str();
  return result;
}

// ---- SpMV: het vs homogeneous row split ---------------------------------

RunResult spmv(const RunContext& context) {
  RunResult result;
  result.scenario = "spmv_imbalance";
  result.title = "SpMV  Heterogeneous vs homogeneous row split";
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "Iterated CSR GEMV (memory-bound, nnz-imbalanced) on the MM "
      "ensembles. Imbalance is the nnz-weighted dist::imbalance of the row "
      "split (1.0 = proportional work); E_s from 50 timing-only sweeps. "
      "het_beats_hom pins the heterogeneity-aware split winning both.");

  const std::vector<int> ensembles{4, 8};
  const std::vector<std::int64_t> sizes{256, 512, 1024};

  result.columns = {"nodes",  "n",      "het_imbalance", "hom_imbalance",
                    "het_es", "hom_es", "het_beats_hom"};
  Table table;
  table.set_header({"Nodes", "N", "Imbalance (het)", "Imbalance (hom)",
                    "E_s (het)", "E_s (hom)", "het beats hom"});
  bool all_rows_win = true;
  for (int nodes : ensembles) {
    auto het = make_spmv(nodes, algos::SpmvDistribution::kHeterogeneousBlock);
    auto hom = make_spmv(nodes, algos::SpmvDistribution::kHomogeneousBlock);
    const auto het_measured = het->measure_many(sizes, context.runner);
    const auto hom_measured = hom->measure_many(sizes, context.runner);
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      const double het_imb = het->work_imbalance(sizes[s]);
      const double hom_imb = hom->work_imbalance(sizes[s]);
      const double het_es = het_measured[s].speed_efficiency;
      const double hom_es = hom_measured[s].speed_efficiency;
      const bool wins = het_imb < hom_imb && het_es > hom_es;
      all_rows_win = all_rows_win && wins;
      table.add_row({std::to_string(nodes), std::to_string(sizes[s]),
                     Table::fixed(het_imb, 4), Table::fixed(hom_imb, 4),
                     Table::fixed(het_es, 4), Table::fixed(hom_es, 4),
                     wins ? "yes" : "NO"});
      result.add_row({Value(nodes), Value(sizes[s]),
                      Value::fixed(het_imb, 4), Value::fixed(hom_imb, 4),
                      Value::fixed(het_es, 4), Value::fixed(hom_es, 4),
                      Value(wins)});
    }
  }
  os << table;
  os << (all_rows_win
             ? "speed-aware row blocks win on every combination\n"
             : "NOTE: homogeneous split won somewhere above\n");
  result.add_scalar("het_beats_homogeneous_everywhere", Value(all_rows_win));
  result.text = os.str();
  return result;
}

}  // namespace

std::unique_ptr<scal::SummaCombination> make_summa(int nodes) {
  return std::make_unique<scal::SummaCombination>(
      std::to_string(nodes) + " Nodes, C" + std::to_string(nodes) + "''",
      mm_config(nodes));
}

std::unique_ptr<scal::GePivotCombination> make_ge_pivot(int nodes) {
  return std::make_unique<scal::GePivotCombination>(
      std::to_string(nodes) + " Nodes, C" + std::to_string(nodes) + "p",
      ge_config(nodes));
}

std::unique_ptr<scal::SpmvCombination> make_spmv(
    int nodes, algos::SpmvDistribution distribution) {
  const char* tag =
      distribution == algos::SpmvDistribution::kHeterogeneousBlock ? "het"
                                                                   : "hom";
  return std::make_unique<scal::SpmvCombination>(
      std::to_string(nodes) + " Nodes, spmv-" + tag, mm_config(nodes),
      /*sweeps=*/50, distribution);
}

void register_dist2d_scenarios() {
  static const bool registered = [] {
    run::register_scenario(
        {"summa_mm_scalability",
         "SUMMA speed-efficiency curves and psi vs the 1D row algorithm",
         summa_mm});
    run::register_scenario(
        {"ge_pivot_scalability",
         "pivoted-GE speed-efficiency curves and psi vs pivot-free GE",
         ge_pivot});
    run::register_scenario(
        {"spmv_imbalance",
         "SpMV het vs homogeneous row split: imbalance and E_s", spmv});
    return true;
  }();
  (void)registered;
}

}  // namespace hetscale::scenarios
