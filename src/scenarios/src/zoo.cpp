#include "hetscale/scenarios/zoo.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/predict/probe.hpp"
#include "hetscale/run/scenario.hpp"
#include "hetscale/scenarios/dist2d.hpp"
#include "hetscale/scenarios/paper.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::scenarios {

namespace {

using run::RunContext;
using run::RunResult;
using run::Value;

/// The fit ladders stop at 8 nodes: three rungs x five sizes already
/// separate the models, and the 16/32-node rungs only add measurement
/// cost to a golden artifact.
const std::vector<int> kZooLadder{2, 4, 8};

/// Sweep count shared by the Jacobi and SpMV combinations and their
/// analytic overhead models (overhead_model_for defaults).
constexpr std::int64_t kZooSweeps = 50;

std::vector<std::int64_t> zoo_sizes(const std::string& algo) {
  if (algo == "ge") return {64, 128, 256, 384, 512};
  if (algo == "mm") return {32, 64, 128, 192, 256};
  if (algo == "jacobi") return {64, 128, 256, 384, 512};
  if (algo == "spmv") return {128, 256, 512, 768, 1024};
  HETSCALE_REQUIRE(false, "no zoo dataset for algorithm '" + algo +
                              "' (supported: ge, mm, jacobi, spmv)");
  return {};
}

std::unique_ptr<scal::ClusterCombination> make_zoo_combination(
    const std::string& algo, int nodes) {
  const std::string name =
      std::to_string(nodes) + " Nodes, zoo-" + algo;
  if (algo == "ge") return make_ge(nodes);
  if (algo == "mm") return make_mm(nodes);
  if (algo == "jacobi") {
    return std::make_unique<scal::JacobiCombination>(name, ge_config(nodes),
                                                     kZooSweeps);
  }
  if (algo == "spmv") return make_spmv(nodes);
  HETSCALE_REQUIRE(false, "no zoo combination for algorithm '" + algo +
                              "' (supported: ge, mm, jacobi, spmv)");
  return nullptr;
}

RunResult model_zoo_ranking(const RunContext& context) {
  RunResult result;
  result.scenario = "model_zoo_ranking";
  result.title = "Model zoo  Cross-validated ranking vs the analytic model";
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "Four fittable scalability models (USL, granularity, BSF, HEET) "
      "fitted to measured (p, N) -> E_s points per algorithm with the "
      "deterministic LM solver, scored leave-one-point-out, and ranked "
      "against the unfitted analytic Theorem-1 prediction.");

  const auto report = build_fit_report(zoo_algos(), &context.runner);

  result.columns = {"algo",     "model",         "rank",
                    "cv_rmse",  "fit_rmse",      "beats_analytic"};
  Table table("Ranking by held-out E_s RMSE (LOO cross-validation)");
  table.set_header({"Algo", "Model", "Rank", "CV RMSE", "Fit RMSE",
                    "Analytic RMSE", "Beats analytic"});
  for (const auto& study : report.algos) {
    for (const auto& row : study.models) {
      table.add_row({study.algo, row.model, std::to_string(row.rank),
                     Table::fixed(row.cv.rmse, 5),
                     Table::fixed(row.fit_rmse, 5),
                     Table::fixed(study.analytic_rmse, 5),
                     row.beats_analytic ? "yes" : "no"});
      result.add_row({Value(study.algo), Value(row.model), Value(row.rank),
                      Value::fixed(row.cv.rmse, 5),
                      Value::fixed(row.fit_rmse, 5),
                      Value(row.beats_analytic)});
    }
    result.add_scalar("best_model_" + study.algo,
                      Value(study.models.front().model));
    result.add_scalar("analytic_rmse_" + study.algo,
                      Value::fixed(study.analytic_rmse, 5));
  }
  os << table;
  for (const auto& study : report.algos) {
    os << study.algo << ": best fitted model is "
       << study.models.front().model << " (CV RMSE "
       << Table::fixed(study.models.front().cv.rmse, 5)
       << " vs analytic in-sample RMSE "
       << Table::fixed(study.analytic_rmse, 5) << ")\n";
  }
  result.text = os.str();
  return result;
}

}  // namespace

const std::vector<std::string>& zoo_algos() {
  static const std::vector<std::string> kAlgos{"ge", "mm", "jacobi", "spmv"};
  return kAlgos;
}

scal::FitDataset gather_zoo_dataset(const std::string& algo,
                                    run::Runner* runner) {
  const auto sizes = zoo_sizes(algo);
  std::vector<std::unique_ptr<scal::ClusterCombination>> owned;
  std::vector<scal::ClusterCombination*> ladder;
  for (int nodes : kZooLadder) {
    owned.push_back(make_zoo_combination(algo, nodes));
    ladder.push_back(owned.back().get());
  }
  return scal::gather_fit_points(algo, ladder, sizes, runner);
}

predict::FitStudyReport build_fit_report(
    const std::vector<std::string>& algos, run::Runner* runner) {
  const auto comm = predict::probe_comm_model(
      predict::ProbeConfig{.node = machine::sunwulf::sunblade_spec()});
  predict::FitStudyReport report;
  for (const auto& algo : algos) {
    report.algos.push_back(
        predict::build_algo_fit_study(gather_zoo_dataset(algo, runner), comm));
  }
  return report;
}

void register_zoo_scenarios() {
  static const bool registered = [] {
    run::register_scenario(
        {"model_zoo_ranking",
         "fitted USL/granularity/BSF/HEET models ranked by cross-validated "
         "E_s error vs the analytic prediction",
         model_zoo_ranking});
    return true;
  }();
  (void)registered;
}

}  // namespace hetscale::scenarios
