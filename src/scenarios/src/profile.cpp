#include "hetscale/scenarios/profile.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "hetscale/numeric/stats.hpp"
#include "hetscale/predict/models.hpp"
#include "hetscale/predict/probe.hpp"
#include "hetscale/run/scenario.hpp"
#include "hetscale/scal/profile.hpp"
#include "hetscale/scenarios/paper.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::scenarios {

namespace {

using run::RunContext;
using run::RunResult;
using run::Value;

/// One profiled operating point: a ladder system at the rank the paper
/// associates with it (Table 3's measured sizes for E_s = 0.3).
struct BudgetPoint {
  int nodes;
  std::int64_t n;
};

RunResult profile_ge(const RunContext&) {
  RunResult result;
  result.scenario = "profile_ge_time_budget";
  result.title = "Profile  GE time budget: measured vs modeled t0 and To";
  std::ostringstream os;
  os << artifact_header(
      result.title,
      "Elapsed virtual time split into compute/comm/sequential/fault/"
      "residual by the obs span sweep; measured t0 = sequential, To = comm "
      "+ fault + residual, against the probed analytic model (paper "
      "Sec. 4.5).");

  const auto comm = predict::probe_comm_model(
      predict::ProbeConfig{.node = machine::sunwulf::sunblade_spec()});
  predict::GeOverheadModel model;

  const std::vector<BudgetPoint> points{{2, 310}, {4, 480}, {8, 800}};

  result.columns = {"nodes",        "n",           "elapsed_s",
                    "compute_s",    "comm_s",      "sequential_s",
                    "fault_s",      "residual_s",  "t0_measured_s",
                    "t0_model_s",   "to_measured_s", "to_model_s",
                    "overhead_rel_error"};

  Table table;
  table.set_header({"Nodes", "N", "Elapsed (s)", "Compute", "Comm",
                    "Seq (t0)", "Residual", "t0 model", "To meas",
                    "To model", "t0+To err"});

  double worst_error = 0.0;
  for (const auto& point : points) {
    auto combo = make_ge(point.nodes);
    const auto profiled = scal::profile_run(*combo, point.n);
    const auto& budget = profiled.budget();

    const auto system = predict::system_model_for(
        machine::sunwulf::ge_ensemble(point.nodes), comm);
    const double n = static_cast<double>(point.n);
    const double t0_model = model.sequential_time(n, system);
    const double to_model = model.overhead(n, system);

    // The pivot row's normalize step is sequential in the model but can be
    // classified as compute or overhead by the sweep depending on overlap,
    // so the robust comparison is the total non-parallel time t0 + To.
    const double overhead_error =
        numeric::relative_error(budget.measured_t0() + budget.measured_to(),
                                t0_model + to_model);
    worst_error = std::max(worst_error, overhead_error);

    table.add_row({std::to_string(point.nodes), std::to_string(point.n),
                   Table::fixed(budget.elapsed_s, 3),
                   Table::fixed(budget.compute_s, 3),
                   Table::fixed(budget.comm_s, 3),
                   Table::fixed(budget.sequential_s, 3),
                   Table::fixed(budget.residual_s, 3),
                   Table::fixed(t0_model, 3),
                   Table::fixed(budget.measured_to(), 3),
                   Table::fixed(to_model, 3),
                   Table::fixed(overhead_error, 3)});
    result.add_row({Value(point.nodes), Value(point.n),
                    Value::fixed(budget.elapsed_s, 6),
                    Value::fixed(budget.compute_s, 6),
                    Value::fixed(budget.comm_s, 6),
                    Value::fixed(budget.sequential_s, 6),
                    Value::fixed(budget.fault_s, 6),
                    Value::fixed(budget.residual_s, 6),
                    Value::fixed(budget.measured_t0(), 6),
                    Value::fixed(t0_model, 6),
                    Value::fixed(budget.measured_to(), 6),
                    Value::fixed(to_model, 6),
                    Value::fixed(overhead_error, 3)});
  }
  os << table;
  os << "(partition is exact: compute + comm + sequential + fault + "
        "residual == elapsed in virtual time)\n";
  result.add_scalar("worst_overhead_rel_error", Value::fixed(worst_error, 3));
  result.text = os.str();
  return result;
}

}  // namespace

void register_profile_scenarios() {
  static const bool registered = [] {
    run::register_scenario(
        {"profile_ge_time_budget",
         "Profiled GE ladder: measured time budget vs the analytic model",
         profile_ge});
    return true;
  }();
  (void)registered;
}

}  // namespace hetscale::scenarios
