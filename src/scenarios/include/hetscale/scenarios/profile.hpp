// Profiled-run scenarios — the instrumentation layer's artifact surface.
//
// The obs module (docs/architecture.md) splits a run's elapsed virtual
// time into compute / comm / sequential / fault / residual and derives the
// *measured* sequential time t0 and total overhead To from the partition.
// The scenario here closes the loop against the paper: it profiles GE on
// the Sunwulf ladder and compares the measured t0/To with the analytic
// values the prediction pipeline (§4.5) computes from probed parameters.
#pragma once

namespace hetscale::scenarios {

/// Register the profiling scenarios (profile_ge_time_budget) with the
/// global scenario registry. Idempotent.
void register_profile_scenarios();

}  // namespace hetscale::scenarios
