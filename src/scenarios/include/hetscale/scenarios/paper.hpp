// The paper's experiment catalogue — shared wiring plus every table/figure
// harness as a registered scenario.
//
// This is where the machinery that used to be duplicated across the bench
// binaries lives: the Sunwulf ladder, the GE/MM ensemble builders, and the
// uniform harness header. Bench binaries and `hetscale_cli run` both
// resolve artifacts through the scenario registry (run/scenario.hpp), so
// each artifact has exactly one implementation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/scal/combination.hpp"

namespace hetscale::scenarios {

/// The paper's system-size ladder.
inline const std::vector<int> kPaperNodeCounts{2, 4, 8, 16, 32};

/// The paper's target speed-efficiencies.
inline constexpr double kGeTargetEs = 0.3;
inline constexpr double kMmTargetEs = 0.2;

scal::ClusterCombination::Config ge_config(
    int nodes, scal::NetworkKind network = scal::NetworkKind::kSwitched);

scal::ClusterCombination::Config mm_config(
    int nodes, scal::NetworkKind network = scal::NetworkKind::kSwitched);

std::unique_ptr<scal::GeCombination> make_ge(
    int nodes, scal::NetworkKind network = scal::NetworkKind::kSwitched);

std::unique_ptr<scal::MmCombination> make_mm(
    int nodes, scal::NetworkKind network = scal::NetworkKind::kSwitched);

/// The uniform harness header every artifact prints.
std::string artifact_header(const std::string& artifact,
                            const std::string& description);

/// Mflop/s with one decimal, as the paper prints marked speeds.
std::string mflops_str(double flops);

/// Register the paper's table/figure scenarios (table1..table7, fig1,
/// fig2) with the global scenario registry. Idempotent.
void register_paper_scenarios();

}  // namespace hetscale::scenarios
