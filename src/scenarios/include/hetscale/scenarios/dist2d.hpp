// Scenarios for the 2D-distribution layer and its new workloads:
//   * summa_mm_scalability  — SUMMA on a speed-balanced 2D grid vs row MM
//   * ge_pivot_scalability  — panel-blocked pivoted GE vs pivot-free GE
//   * spmv_imbalance        — het vs homogeneous row split on sparse GEMV
// Registered alongside the paper scenarios; every artifact is timing-only,
// jobs-invariant, and golden-pinned (tests/golden/).
#pragma once

#include <memory>

#include "hetscale/scal/combination.hpp"

namespace hetscale::scenarios {

/// SUMMA over the MM ensembles (speed-balanced 2D grid, switched network).
std::unique_ptr<scal::SummaCombination> make_summa(int nodes);

/// Panel-blocked pivoted GE over the GE ensembles.
std::unique_ptr<scal::GePivotCombination> make_ge_pivot(int nodes);

/// Iterated SpMV over the MM ensembles with either row split.
std::unique_ptr<scal::SpmvCombination> make_spmv(
    int nodes, algos::SpmvDistribution distribution =
                   algos::SpmvDistribution::kHeterogeneousBlock);

/// Register the 2D-distribution scenarios with the global registry.
/// Idempotent.
void register_dist2d_scenarios();

}  // namespace hetscale::scenarios
