// The large-p study — scaling the simulated testbed two orders of
// magnitude past the paper's 84 processors.
//
// The paper's Sunwulf measurements stop where the physical cluster does.
// With the logarithmic collective family (vmpi::CollectiveTuning::tree())
// and the lean per-rank runtime state, ensembles of 256-4096 ranks are
// affordable to simulate, which opens the regime where the model zoo's
// contention/coherency terms (USL, BSF) become measurable.
#pragma once

#include <string>

#include "hetscale/machine/cluster.hpp"
#include "hetscale/scal/combination.hpp"

namespace hetscale::scenarios {

/// The large-p rung sizes (total ranks per synthetic ensemble).
inline const int kLargePRungs[] = {256, 1024, 2048, 4096};

/// The textual description (machine/parse.hpp grammar) of the synthetic
/// heterogeneous ensemble with `ranks` single-CPU nodes: one half
/// SunBlades, one quarter V210s, one quarter servers — the Sunwulf node
/// catalog, scaled far past the physical machine. `ranks` must be a
/// multiple of 4.
std::string large_p_description(int ranks);

/// The parsed ensemble for one rung.
machine::Cluster large_p_cluster(int ranks);

/// Shared combination config for the large-p study: switched fabric,
/// timing-only runs, and the tree collective family (the whole point of
/// the study — the legacy flat family is quadratically expensive here).
scal::ClusterCombination::Config large_p_config(int ranks);

/// Register the `large_p_scalability` scenario. Idempotent.
void register_large_p_scenarios();

}  // namespace hetscale::scenarios
