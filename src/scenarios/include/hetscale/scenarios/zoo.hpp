// The model-zoo fit study as a scenario and a CLI building block.
//
// gather_zoo_dataset measures one algorithm's (combination, p, n) -> E_s
// points over the paper's ensembles (GE ensembles for ge/jacobi, MM
// ensembles for mm/spmv, ladder {2, 4, 8}); build_fit_report fits and
// cross-validates the predict/ model zoo on those points against the
// analytic Theorem-1 pipeline. The `model_zoo_ranking` scenario pins the
// resulting per-algorithm ranking as a golden artifact (timing-only,
// jobs-invariant, memoized through the MeasurementStore).
#pragma once

#include <string>
#include <vector>

#include "hetscale/predict/fit_report.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/scal/fit_study.hpp"

namespace hetscale::scenarios {

/// The algorithms the fit study covers, in report order.
const std::vector<std::string>& zoo_algos();

/// Measure the fit dataset for one of zoo_algos() (throws
/// PreconditionError for anything else). A null runner measures
/// sequentially — same points, same bytes.
scal::FitDataset gather_zoo_dataset(const std::string& algo,
                                    run::Runner* runner);

/// Gather + fit + rank for each requested algorithm, in the given order.
predict::FitStudyReport build_fit_report(
    const std::vector<std::string>& algos, run::Runner* runner);

/// Register the `model_zoo_ranking` scenario. Idempotent.
void register_zoo_scenarios();

}  // namespace hetscale::scenarios
