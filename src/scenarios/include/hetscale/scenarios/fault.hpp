// Fault-injection experiment catalogue — degraded-mode scalability
// artifacts over the paper's combinations.
//
// Three registered scenarios (run/scenario.hpp registry, `hetscale_cli run`
// and the bench launchers both resolve through it):
//   * fault_ge_degraded_scalability — the GE ladder solved for the target
//     E_s healthy and under a seeded degradation plan (stragglers + link
//     faults); ψ between ladder steps for both, plus the effective marked
//     speed at each degraded operating point.
//   * fault_mm_crash_restart — MM under a seeded crash schedule, sweeping
//     the checkpoint interval; the fault-overhead decomposition shows the
//     checkpoint-cost / rework-cost trade.
//   * fault_ge_loss_retry — GE under transient message loss, sweeping the
//     drop probability; retries and retry wait against the efficiency lost.
//
// Every plan derives from RunContext::seed (--seed / HETSCALE_SEED), so an
// artifact is reproduced bit-exactly by rerunning with the same seed, at
// any --jobs setting.
#pragma once

#include <cstdint>

#include "hetscale/fault/plan.hpp"

namespace hetscale::scenarios {

/// The degradation plan spec shared by the GE fault scenarios and the CLI
/// `inject` command's --degrade preset: every rank alternates healthy and
/// 0.6x phases, the network periodically loses half its bandwidth.
fault::PlanSpec degraded_plan_spec();

/// Register the fault scenarios with the global registry. Idempotent.
void register_fault_scenarios();

}  // namespace hetscale::scenarios
