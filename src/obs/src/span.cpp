#include "hetscale/obs/span.hpp"

#include <utility>

#include "hetscale/support/error.hpp"

namespace hetscale::obs {

namespace {

SpanCategory infer_category(const std::string& name) {
  if (name == "compute") return SpanCategory::kCompute;
  if (name == "send.wait" || name == "recv.wait" || name == "barrier") {
    return SpanCategory::kComm;
  }
  if (name == "checkpoint" || name.rfind("fault.", 0) == 0) {
    return SpanCategory::kFault;
  }
  return SpanCategory::kOther;
}

}  // namespace

int SpanStore::intern(const std::string& name) {
  return intern(name, infer_category(name));
}

int SpanStore::intern(const std::string& name, SpanCategory category) {
  HETSCALE_REQUIRE(!name.empty(), "span name must be non-empty");
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.push_back(name);
  categories_.push_back(category);
  ids_.emplace(name, id);
  return id;
}

const std::string& SpanStore::name(int id) const {
  HETSCALE_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
                   "span name id out of range");
  return names_[static_cast<std::size_t>(id)];
}

SpanCategory SpanStore::category(int id) const {
  HETSCALE_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
                   "span name id out of range");
  return categories_[static_cast<std::size_t>(id)];
}

int SpanStore::depth_of(int lane) const {
  const auto it = open_depth_.find(lane);
  return it != open_depth_.end() ? it->second : 0;
}

void SpanStore::record(int lane, int name_id, double begin, double end,
                       int peer, int tag, double bytes) {
  HETSCALE_REQUIRE(end >= begin, "span must not end before it begins");
  name(name_id);  // bounds check
  spans_.push_back(Span{lane, name_id, begin, end, depth_of(lane), peer, tag,
                        bytes});
}

std::size_t SpanStore::open(int lane, int name_id, double begin) {
  name(name_id);  // bounds check
  const std::size_t handle = spans_.size();
  // end < begin marks the span as open; close() fills the real end.
  spans_.push_back(Span{lane, name_id, begin, begin - 1.0, depth_of(lane),
                        -1, 0, 0.0});
  ++open_depth_[lane];
  ++open_count_;
  return handle;
}

void SpanStore::close(std::size_t handle, double end) {
  if (handle == kNoSpan) return;
  HETSCALE_REQUIRE(handle < spans_.size(), "span handle out of range");
  Span& span = spans_[handle];
  HETSCALE_REQUIRE(span.end < span.begin, "span is already closed");
  HETSCALE_REQUIRE(end >= span.begin, "span must not end before it begins");
  span.end = end;
  --open_depth_[span.lane];
  --open_count_;
}

double SpanStore::clock_now() const {
  HETSCALE_REQUIRE(clock_ != nullptr,
                   "no clock bound (SpanStore::bind_clock)");
  return clock_();
}

ScopedSpan::ScopedSpan(SpanStore& store, int lane, int name_id)
    : store_(&store), handle_(store.open(lane, name_id, store.clock_now())) {}

ScopedSpan::~ScopedSpan() { store_->close(handle_, store_->clock_now()); }

}  // namespace hetscale::obs
