#include "hetscale/obs/report.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "hetscale/obs/format.hpp"

namespace hetscale::obs {

namespace {

/// Bucket bounds for per-run elapsed virtual time, in seconds.
const std::vector<double> kElapsedBuckets = {1e-3, 1e-2, 0.1, 1.0,
                                             10.0,  100.0, 1000.0};

/// Fold one run into the registry. Called in sorted-run order only.
void fold_run(MetricsRegistry& m, const RunProfile& run) {
  m.counter("hetscale_runs_total").inc();
  m.counter("hetscale_elapsed_virtual_seconds_total").add(run.elapsed_s);
  m.histogram("hetscale_run_elapsed_seconds", kElapsedBuckets)
      .observe(run.elapsed_s);

  m.counter("hetscale_budget_seconds_total", {{"phase", "compute"}})
      .add(run.budget.compute_s);
  m.counter("hetscale_budget_seconds_total", {{"phase", "comm"}})
      .add(run.budget.comm_s);
  m.counter("hetscale_budget_seconds_total", {{"phase", "sequential"}})
      .add(run.budget.sequential_s);
  m.counter("hetscale_budget_seconds_total", {{"phase", "fault"}})
      .add(run.budget.fault_s);
  m.counter("hetscale_budget_seconds_total", {{"phase", "residual"}})
      .add(run.budget.residual_s);

  m.counter("hetscale_vmpi_compute_seconds_total").add(run.compute_s);
  m.counter("hetscale_vmpi_comm_seconds_total").add(run.comm_s);
  m.counter("hetscale_vmpi_messages_total")
      .add(static_cast<double>(run.messages));
  m.counter("hetscale_vmpi_bytes_total").add(run.bytes);
  m.counter("hetscale_vmpi_retries_total")
      .add(static_cast<double>(run.retries));
  m.counter("hetscale_vmpi_backoff_seconds_total").add(run.backoff_s);

  m.counter("hetscale_des_events_total")
      .add(static_cast<double>(run.des_events));
  m.gauge("hetscale_des_queue_depth_max")
      .set_max(static_cast<double>(run.des_queue_depth_max));
  if (run.frame_live_peak > 0) {
    m.gauge("hetscale_des_frame_live_peak")
        .set_max(static_cast<double>(run.frame_live_peak));
  }

  m.counter("hetscale_net_wire_seconds_total").add(run.wire_s);
  m.counter("hetscale_net_contention_seconds_total").add(run.contention_s);
  for (const LinkProfile& link : run.links) {
    const Labels by_node = {{"node", std::to_string(link.node)}};
    m.counter("hetscale_net_link_bytes_total", by_node).add(link.bytes);
    m.counter("hetscale_net_link_wire_seconds_total", by_node)
        .add(link.wire_s);
    m.counter("hetscale_net_link_stall_seconds_total", by_node)
        .add(link.stall_s);
  }

  if (!run.comm_cells.empty()) {
    // The report keeps the per-phase rollup; the full (src, dst, phase)
    // matrix stays with `hetscale_cli analyze`, which ranks its cells.
    struct PhaseTotals {
      double messages = 0.0;
      double bytes = 0.0;
      double wait_s = 0.0;
    };
    std::map<int, PhaseTotals> phases;
    for (const CommCell& cell : run.comm_cells) {
      PhaseTotals& t = phases[cell.phase];
      t.messages += static_cast<double>(cell.messages);
      t.bytes += cell.bytes;
      t.wait_s += cell.wait_s;
    }
    for (const auto& [phase, totals] : phases) {
      const Labels by_phase = {
          {"phase", comm_phase_name(static_cast<CommPhase>(phase))}};
      m.counter("hetscale_comm_messages_total", by_phase)
          .add(totals.messages);
      m.counter("hetscale_comm_bytes_total", by_phase).add(totals.bytes);
      m.counter("hetscale_comm_wait_seconds_total", by_phase)
          .add(totals.wait_s);
    }
  }

  if (run.critical_path != CriticalPathSummary{}) {
    m.counter("hetscale_critical_path_seconds_total",
              {{"segment", "compute"}})
        .add(run.critical_path.compute_s);
    m.counter("hetscale_critical_path_seconds_total", {{"segment", "comm"}})
        .add(run.critical_path.comm_s);
    m.counter("hetscale_critical_path_seconds_total", {{"segment", "wait"}})
        .add(run.critical_path.wait_s);
    m.counter("hetscale_critical_path_seconds_total", {{"segment", "fault"}})
        .add(run.critical_path.fault_s);
  }

  if (run.des_queue != DesQueueStats{}) {
    m.counter("hetscale_des_queue_pushes_total")
        .add(static_cast<double>(run.des_queue.pushes));
    m.counter("hetscale_des_queue_pops_total")
        .add(static_cast<double>(run.des_queue.pops));
    m.counter("hetscale_des_queue_far_inserts_total")
        .add(static_cast<double>(run.des_queue.far_inserts));
    m.counter("hetscale_des_queue_rebuilds_total")
        .add(static_cast<double>(run.des_queue.rebuilds));
    std::uint64_t peak = 0;
    for (const DesQueueStats::Sample& s : run.des_queue.occupancy) {
      peak = std::max(peak, s.depth);
    }
    m.gauge("hetscale_des_queue_occupancy_peak")
        .set_max(static_cast<double>(peak));
  }

  if (run.fault != FaultProfileTotals{}) {
    m.counter("hetscale_fault_seconds_total", {{"cause", "slowdown"}})
        .add(run.fault.slowdown_s);
    m.counter("hetscale_fault_seconds_total", {{"cause", "checkpoint"}})
        .add(run.fault.checkpoint_s);
    m.counter("hetscale_fault_seconds_total", {{"cause", "rework"}})
        .add(run.fault.rework_s);
    m.counter("hetscale_fault_seconds_total", {{"cause", "retry"}})
        .add(run.fault.retry_s);
    m.counter("hetscale_fault_events_total", {{"kind", "checkpoint"}})
        .add(static_cast<double>(run.fault.checkpoints));
    m.counter("hetscale_fault_events_total", {{"kind", "crash"}})
        .add(static_cast<double>(run.fault.crashes));
    m.counter("hetscale_fault_events_total", {{"kind", "retry"}})
        .add(static_cast<double>(run.fault.retries));
  }
}

}  // namespace

Report::Report(const Profiler& profiler, ReportOptions options)
    : subject_(std::move(options.subject)) {
  const std::vector<RunProfile> runs = profiler.sorted_runs();
  runs_ = runs.size();
  for (const RunProfile& run : runs) {
    elapsed_s_ += run.elapsed_s;
    budget_ += run.budget;
    fold_run(metrics_, run);
  }
  if (options.include_wall) {
    has_wall_ = true;
    wall_ = profiler.wall();
  }
}

Report Profiler::report(const ReportOptions& options) const {
  return Report(*this, options);
}

Report Profiler::report() const { return Report(*this, ReportOptions{}); }

void Report::to_json(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": \"hetscale.obs.report/v1\",\n";
  os << "  \"subject\": \"" << json_escape(subject_) << "\",\n";
  os << "  \"runs\": " << runs_ << ",\n";
  os << "  \"elapsed_virtual_s\": " << json_number_or_null(elapsed_s_)
     << ",\n";
  os << "  \"time_budget\": {";
  os << "\"compute_s\": " << json_number_or_null(budget_.compute_s) << ", ";
  os << "\"comm_s\": " << json_number_or_null(budget_.comm_s) << ", ";
  os << "\"sequential_s\": " << json_number_or_null(budget_.sequential_s)
     << ", ";
  os << "\"fault_s\": " << json_number_or_null(budget_.fault_s) << ", ";
  os << "\"residual_s\": " << json_number_or_null(budget_.residual_s);
  os << "},\n";
  os << "  \"measured\": {";
  os << "\"t0_s\": " << json_number_or_null(budget_.measured_t0()) << ", ";
  os << "\"to_s\": " << json_number_or_null(budget_.measured_to());
  os << "},\n";
  os << "  \"metrics\": ";
  metrics_.write_json(os);
  if (has_wall_) {
    os << ",\n  \"wall\": {";
    os << "\"wall_s\": " << json_number_or_null(wall_.wall_s) << ", ";
    os << "\"worker_busy_s\": " << json_number_or_null(wall_.worker_busy_s)
       << ", ";
    os << "\"batches\": " << wall_.batches << ", ";
    os << "\"tasks\": " << wall_.tasks << ", ";
    os << "\"steals\": " << wall_.steals << ", ";
    os << "\"jobs\": " << wall_.jobs;
    os << "}";
  }
  os << "\n}\n";
}

void Report::to_prometheus(std::ostream& os) const {
  metrics_.write_prometheus(os);
}

Table Report::to_table() const {
  Table table("Time budget  " + subject_ + "  (" + std::to_string(runs_) +
              " run" + (runs_ == 1 ? "" : "s") + ", virtual seconds)");
  table.set_header({"Phase", "Seconds", "Share"});
  const double elapsed = elapsed_s_;
  auto share = [&](double v) {
    return elapsed > 0.0 ? Table::fixed(100.0 * v / elapsed, 1) + "%" : "-";
  };
  table.add_row({"compute", Table::num(budget_.compute_s, 6),
                 share(budget_.compute_s)});
  table.add_row(
      {"comm", Table::num(budget_.comm_s, 6), share(budget_.comm_s)});
  table.add_row({"sequential (t0)", Table::num(budget_.sequential_s, 6),
                 share(budget_.sequential_s)});
  table.add_row(
      {"fault", Table::num(budget_.fault_s, 6), share(budget_.fault_s)});
  table.add_row({"residual", Table::num(budget_.residual_s, 6),
                 share(budget_.residual_s)});
  table.add_row({"elapsed", Table::num(elapsed, 6), share(elapsed)});
  table.add_row({"measured To", Table::num(budget_.measured_to(), 6),
                 share(budget_.measured_to())});
  return table;
}

}  // namespace hetscale::obs
