#include "hetscale/obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace hetscale::obs {

namespace {
std::atomic<Profiler*> g_current{nullptr};
}  // namespace

void Profiler::add_run(RunProfile run) {
  std::lock_guard<std::mutex> lock(mutex_);
  runs_.push_back(std::move(run));
}

void Profiler::record_batch(int jobs, std::uint64_t tasks, double wall_s,
                            double worker_busy_s, std::uint64_t steals) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++wall_.batches;
  wall_.tasks += tasks;
  wall_.wall_s += wall_s;
  wall_.worker_busy_s += worker_busy_s;
  wall_.steals += steals;
  wall_.jobs = std::max(wall_.jobs, jobs);
}

std::size_t Profiler::runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_.size();
}

std::vector<RunProfile> Profiler::sorted_runs() const {
  std::vector<RunProfile> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = runs_;
  }
  // Canonical fold order: completion order varies with --jobs, the sorted
  // order does not. RunProfile holds no NaNs, so the partial order is total.
  std::sort(copy.begin(), copy.end());
  return copy;
}

WallStats Profiler::wall() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wall_;
}

Profiler* current() { return g_current.load(std::memory_order_acquire); }

ProfilerScope::ProfilerScope(Profiler& profiler)
    : previous_(g_current.exchange(&profiler, std::memory_order_acq_rel)) {}

ProfilerScope::~ProfilerScope() {
  g_current.store(previous_, std::memory_order_release);
}

}  // namespace hetscale::obs
