#include "hetscale/obs/critical_path.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>

#include "hetscale/obs/span.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::obs {

const char* path_segment_kind_name(PathSegmentKind kind) {
  switch (kind) {
    case PathSegmentKind::kCompute: return "compute";
    case PathSegmentKind::kComm: return "comm";
    case PathSegmentKind::kWait: return "wait";
    case PathSegmentKind::kFault: return "fault";
  }
  throw ModelError("unknown path segment kind");
}

namespace {

/// How the walker treats a span name. Structural spans (barrier, custom
/// kOther names) cover their constituent leaf spans and are skipped.
enum class SpanClass { kCompute, kFault, kRecvWait, kCommLocal, kSkip };

SpanClass classify(const SpanStore& store, int name_id) {
  switch (store.category(name_id)) {
    case SpanCategory::kCompute: return SpanClass::kCompute;
    case SpanCategory::kFault: return SpanClass::kFault;
    case SpanCategory::kComm: {
      const std::string& name = store.name(name_id);
      if (name == "recv.wait") return SpanClass::kRecvWait;
      if (name == "barrier") return SpanClass::kSkip;
      return SpanClass::kCommLocal;  // send.wait and friends
    }
    case SpanCategory::kOther: return SpanClass::kSkip;
  }
  throw ModelError("unknown span category");
}

}  // namespace

CriticalPath critical_path(const SpanStore& store,
                           const std::vector<PathMessage>& messages,
                           double elapsed) {
  HETSCALE_REQUIRE(elapsed >= 0.0, "elapsed must be non-negative");
  CriticalPath path;
  path.elapsed_s = elapsed;
  if (elapsed <= 0.0) return path;

  // Closed leaf spans, grouped per lane and sorted by (begin, end): the
  // walk repeatedly needs "the last span on this lane beginning before the
  // cursor".
  std::map<int, SpanClass> classes;
  std::map<int, std::vector<const Span*>> lanes;
  for (const Span& span : store.spans()) {
    if (span.end < span.begin) continue;  // left open (deadlocked run)
    auto it = classes.find(span.name_id);
    if (it == classes.end()) {
      it = classes.emplace(span.name_id, classify(store, span.name_id)).first;
    }
    if (it->second == SpanClass::kSkip) continue;
    lanes[span.lane].push_back(&span);
  }
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(), [](const Span* a, const Span* b) {
      return std::tie(a->begin, a->end) < std::tie(b->begin, b->end);
    });
  }

  // Delivered messages indexed by (destination, source, tag), sorted by
  // arrival — how a recv.wait span finds the message that satisfied it.
  std::map<std::tuple<int, int, int>, std::vector<const PathMessage*>> inbox;
  for (const PathMessage& m : messages) {
    inbox[std::make_tuple(m.destination, m.source, m.tag)].push_back(&m);
  }
  for (auto& [key, box] : inbox) {
    std::sort(box.begin(), box.end(),
              [](const PathMessage* a, const PathMessage* b) {
                return std::tie(a->arrive, a->depart) <
                       std::tie(b->arrive, b->depart);
              });
  }

  // The run ends when its last leaf span does; walk backwards from there.
  int lane = -1;
  double latest_end = -1.0;
  for (const auto& [l, spans] : lanes) {
    for (const Span* s : spans) {
      if (s->end > latest_end) {
        latest_end = s->end;
        lane = l;
      }
    }
  }

  std::vector<PathSegment> reversed;
  auto emit = [&](int l, PathSegmentKind kind, int peer, double begin,
                  double end) {
    if (end <= begin) return;
    switch (kind) {
      case PathSegmentKind::kCompute: path.compute_s += end - begin; break;
      case PathSegmentKind::kComm: path.comm_s += end - begin; break;
      case PathSegmentKind::kWait: path.wait_s += end - begin; break;
      case PathSegmentKind::kFault: path.fault_s += end - begin; break;
    }
    reversed.push_back(
        PathSegment{l, static_cast<int>(kind), peer, begin, end});
  };

  double cursor = elapsed;
  // Every step strictly decreases the cursor past a span begin or a message
  // departure, so this bound is generous; it is a backstop, not a budget.
  const std::size_t max_steps = store.spans().size() + messages.size() + 64;
  std::size_t steps = 0;
  while (cursor > 0.0 && lane >= 0) {
    if (++steps > max_steps) break;
    const Span* span = nullptr;
    const auto it = lanes.find(lane);
    if (it != lanes.end()) {
      const auto& spans = it->second;
      const auto pos = std::lower_bound(
          spans.begin(), spans.end(), cursor,
          [](const Span* s, double c) { return s->begin < c; });
      if (pos != spans.begin()) span = *(pos - 1);
    }
    if (span == nullptr) break;  // nothing earlier on this lane
    if (span->end < cursor) {
      // Idle gap between the span and the cursor: the lane was blocked with
      // no recorded activity.
      emit(lane, PathSegmentKind::kWait, -1, span->end, cursor);
      cursor = span->end;
      if (cursor <= 0.0) break;
    }
    switch (classes.at(span->name_id)) {
      case SpanClass::kCompute:
        emit(lane, PathSegmentKind::kCompute, -1, span->begin, cursor);
        cursor = span->begin;
        break;
      case SpanClass::kFault:
        emit(lane, PathSegmentKind::kFault, -1, span->begin, cursor);
        cursor = span->begin;
        break;
      case SpanClass::kCommLocal:
        emit(lane, PathSegmentKind::kComm, span->peer, span->begin, cursor);
        cursor = span->begin;
        break;
      case SpanClass::kRecvWait: {
        // Find the message that satisfied this receive: same endpoints and
        // tag, arriving inside the blocked interval. The receive resumed at
        // the arrival instant, so when the wire gated it, arrive == end.
        const PathMessage* found = nullptr;
        const auto box =
            inbox.find(std::make_tuple(lane, span->peer, span->tag));
        if (box != inbox.end()) {
          const auto& msgs = box->second;
          auto at = std::upper_bound(
              msgs.begin(), msgs.end(), span->end,
              [](double c, const PathMessage* m) { return c < m->arrive; });
          while (at != msgs.begin()) {
            --at;
            if ((*at)->arrive <= span->begin) break;
            if ((*at)->depart < cursor) {
              found = *at;
              break;
            }
          }
        }
        if (found != nullptr) {
          // The wire held the path from the departure to the cursor; the
          // walk continues on the sending rank at the departure instant.
          emit(lane, PathSegmentKind::kComm, found->source,
               std::max(found->depart, 0.0), cursor);
          cursor = found->depart;
          lane = found->source;
        } else {
          // No in-flight message covered the blocking (e.g. the payload
          // arrived before the receive was even posted): pure wait.
          emit(lane, PathSegmentKind::kWait, span->peer, span->begin,
               cursor);
          cursor = span->begin;
        }
        break;
      }
      case SpanClass::kSkip:
        // Unreachable: skipped spans never enter the lane lists.
        cursor = span->begin;
        break;
    }
  }
  // Whatever is left of [0, cursor] precedes all recorded activity on the
  // path (start-up skew, or a run with no spans at all).
  emit(lane, PathSegmentKind::kWait, -1, 0.0, cursor);

  path.segments.reserve(reversed.size());
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    // Merge abutting segments of one kind on one lane (the walk fragments
    // them at message departures and span joins).
    if (!path.segments.empty()) {
      PathSegment& last = path.segments.back();
      if (last.lane == it->lane && last.kind == it->kind &&
          last.peer == it->peer && last.end == it->begin) {
        last.end = it->end;
        continue;
      }
    }
    path.segments.push_back(*it);
  }
  return path;
}

}  // namespace hetscale::obs
