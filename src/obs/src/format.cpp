#include "hetscale/obs/format.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "hetscale/support/error.hpp"

namespace hetscale::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double value) {
  HETSCALE_REQUIRE(std::isfinite(value),
                   "cannot format a non-finite value as a JSON number");
  std::ostringstream os;
  os.precision(15);
  os << value;
  return os.str();
}

std::string json_number_or_null(double value) {
  if (!std::isfinite(value)) return "null";
  return format_double(value);
}

std::string prom_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace hetscale::obs
