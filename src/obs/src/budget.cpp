#include "hetscale/obs/budget.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "hetscale/obs/span.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::obs {

TimeBudget& TimeBudget::operator+=(const TimeBudget& other) {
  compute_s += other.compute_s;
  comm_s += other.comm_s;
  sequential_s += other.sequential_s;
  fault_s += other.fault_s;
  residual_s += other.residual_s;
  elapsed_s += other.elapsed_s;
  return *this;
}

namespace {

struct Edge {
  double time;
  int lane;
  SpanCategory category;
  int delta;  ///< +1 open, -1 close
};

/// Per-lane open-span counts; the lane's effective state is the
/// highest-priority non-empty one (fault > compute > comm > idle).
struct LaneState {
  int fault = 0;
  int compute = 0;
  int comm = 0;

  int& slot(SpanCategory category) {
    switch (category) {
      case SpanCategory::kFault: return fault;
      case SpanCategory::kCompute: return compute;
      default: return comm;
    }
  }

  enum class Effective { kIdle, kComm, kCompute, kFault };
  Effective effective() const {
    if (fault > 0) return Effective::kFault;
    if (compute > 0) return Effective::kCompute;
    if (comm > 0) return Effective::kComm;
    return Effective::kIdle;
  }
};

}  // namespace

TimeBudget compute_time_budget(const SpanStore& store, double elapsed) {
  HETSCALE_REQUIRE(elapsed >= 0.0, "elapsed time must be non-negative");
  TimeBudget budget;
  budget.elapsed_s = elapsed;

  std::vector<Edge> edges;
  edges.reserve(store.spans().size() * 2);
  for (const Span& span : store.spans()) {
    if (span.end < span.begin) continue;  // never closed
    const SpanCategory category = store.category(span.name_id);
    if (category == SpanCategory::kOther) continue;
    const double begin = std::max(span.begin, 0.0);
    const double end = std::min(span.end, elapsed);
    if (end <= begin) continue;
    edges.push_back(Edge{begin, span.lane, category, +1});
    edges.push_back(Edge{end, span.lane, category, -1});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.time < b.time; });

  std::map<int, LaneState> lanes;
  int computing = 0;  // lanes whose effective state is compute
  int faulting = 0;
  int communicating = 0;

  auto account = [&](double from, double to) {
    const double duration = to - from;
    if (duration <= 0.0) return;
    if (computing >= 2) {
      budget.compute_s += duration;
    } else if (computing == 1) {
      budget.sequential_s += duration;
    } else if (faulting >= 1) {
      budget.fault_s += duration;
    } else if (communicating >= 1) {
      budget.comm_s += duration;
    } else {
      budget.residual_s += duration;
    }
  };

  double cursor = 0.0;
  for (const Edge& edge : edges) {
    account(cursor, edge.time);
    cursor = std::max(cursor, edge.time);
    LaneState& lane = lanes[edge.lane];
    const auto before = lane.effective();
    lane.slot(edge.category) += edge.delta;
    const auto after = lane.effective();
    if (before == after) continue;
    auto tally = [&](LaneState::Effective state, int delta) {
      switch (state) {
        case LaneState::Effective::kCompute: computing += delta; break;
        case LaneState::Effective::kFault: faulting += delta; break;
        case LaneState::Effective::kComm: communicating += delta; break;
        case LaneState::Effective::kIdle: break;
      }
    };
    tally(before, -1);
    tally(after, +1);
  }
  // Tail after the last edge (all lanes idle by then) is residual.
  account(cursor, elapsed);
  return budget;
}

}  // namespace hetscale::obs
