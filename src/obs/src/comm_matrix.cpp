#include "hetscale/obs/comm_matrix.hpp"

#include <iterator>

#include "hetscale/support/error.hpp"

namespace hetscale::obs {

const std::string& comm_phase_name(CommPhase phase) {
  static const std::string kNames[] = {
      "p2p",      "bcast",       "bcast.scatter", "bcast.ring",
      "barrier",  "gather",      "scatter",       "allgather",
      "alltoall", "group.bcast", "group.gather",  "reduce",
      "allreduce", "bcast.doubling",
  };
  const int index = static_cast<int>(phase);
  HETSCALE_REQUIRE(index >= 0 &&
                       index < static_cast<int>(std::size(kNames)),
                   "unknown comm phase");
  return kNames[index];
}

CommCell& CommMatrix::cell(int src, int dst, CommPhase phase) {
  const auto key = std::make_tuple(src, dst, static_cast<int>(phase));
  auto [it, inserted] = cells_.try_emplace(key);
  if (inserted) {
    it->second.src = src;
    it->second.dst = dst;
    it->second.phase = static_cast<int>(phase);
  }
  return it->second;
}

void CommMatrix::record_send(int src, int dst, CommPhase phase,
                             double bytes) {
  HETSCALE_DCHECK(bytes >= 0.0, "message bytes must be non-negative");
  CommCell& c = cell(src, dst, phase);
  ++c.messages;
  c.bytes += bytes;
}

void CommMatrix::record_wait(int src, int dst, CommPhase phase,
                             double wait_s) {
  HETSCALE_DCHECK(wait_s >= 0.0, "wait time must be non-negative");
  cell(src, dst, phase).wait_s += wait_s;
}

std::uint64_t CommMatrix::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : cells_) total += c.messages;
  return total;
}

double CommMatrix::total_bytes() const {
  double total = 0.0;
  for (const auto& [key, c] : cells_) total += c.bytes;
  return total;
}

double CommMatrix::total_wait_s() const {
  double total = 0.0;
  for (const auto& [key, c] : cells_) total += c.wait_s;
  return total;
}

std::vector<CommCell> CommMatrix::cells() const {
  std::vector<CommCell> out;
  out.reserve(cells_.size());
  for (const auto& [key, c] : cells_) out.push_back(c);
  return out;
}

CommMatrix& CommMatrix::operator+=(const CommMatrix& other) {
  for (const auto& [key, c] : other.cells_) {
    CommCell& mine = cell(c.src, c.dst, static_cast<CommPhase>(c.phase));
    mine.messages += c.messages;
    mine.bytes += c.bytes;
    mine.wait_s += c.wait_s;
  }
  return *this;
}

}  // namespace hetscale::obs
