#include "hetscale/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "hetscale/obs/format.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  if (name.front() >= '0' && name.front() <= '9') return false;
  return std::all_of(name.begin(), name.end(), word);
}

/// Sort labels by key; duplicate keys are a caller bug.
Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 1; i < labels.size(); ++i) {
    HETSCALE_REQUIRE(labels[i - 1].first != labels[i].first,
                     "duplicate label key '" + labels[i].first + "'");
  }
  return labels;
}

std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + prom_escape(value) + "\"";
  }
  out += "}";
  return out;
}

/// Prometheus renders +Inf bucket bounds and values as literal tokens; the
/// JSON exporter uses null instead.
std::string prom_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return format_double(value);
}

void write_json_labels(std::ostream& os, const Labels& labels) {
  os << "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) os << ",";
    first = false;
    os << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  os << "}";
}

}  // namespace

void Counter::add(double delta) {
  HETSCALE_REQUIRE(delta >= 0.0, "counters only go up");
  value += delta;
}

void Gauge::set_max(double v) { value = std::max(value, v); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  HETSCALE_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    HETSCALE_REQUIRE(std::isfinite(bounds_[i]),
                     "histogram bounds must be finite (the overflow bucket "
                     "is implicit)");
    HETSCALE_REQUIRE(i == 0 || bounds_[i - 1] < bounds_[i],
                     "histogram bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

MetricsRegistry::MetricsRegistry(MetricsRegistry&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  entries_ = std::move(other.entries_);
}

MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mutex_, other.mutex_);
    entries_ = std::move(other.entries_);
  }
  return *this;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(
    const std::string& name, Labels labels, Type type,
    const std::vector<double>* bounds) {
  HETSCALE_REQUIRE(valid_metric_name(name),
                   "invalid metric name '" + name +
                       "' (want [A-Za-z_][A-Za-z0-9_]*)");
  Labels key_labels = canonical(std::move(labels));
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(Key{name, key_labels});
  if (it != entries_.end()) {
    Entry& entry = it->second;
    HETSCALE_REQUIRE(entry.type() == type,
                     "metric '" + name +
                         "' is already registered with another type");
    if (type == Type::kHistogram) {
      const auto& histogram = *std::get<std::unique_ptr<Histogram>>(
          entry.value);
      HETSCALE_REQUIRE(bounds != nullptr &&
                           histogram.upper_bounds() == *bounds,
                       "histogram '" + name +
                           "' is already registered with other buckets");
    }
    return entry;
  }
  Entry entry;
  entry.name = name;
  entry.labels = key_labels;
  switch (type) {
    case Type::kCounter: entry.value = Counter{}; break;
    case Type::kGauge: entry.value = Gauge{}; break;
    case Type::kHistogram:
      entry.value = std::make_unique<Histogram>(*bounds);
      break;
  }
  return entries_.emplace(Key{name, std::move(key_labels)}, std::move(entry))
      .first->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return std::get<Counter>(
      entry_for(name, std::move(labels), Type::kCounter, nullptr).value);
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return std::get<Gauge>(
      entry_for(name, std::move(labels), Type::kGauge, nullptr).value);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      Labels labels) {
  return *std::get<std::unique_ptr<Histogram>>(
      entry_for(name, std::move(labels), Type::kHistogram, &bounds).value);
}

const MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name,
                                                    Labels labels,
                                                    Type type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(Key{name, canonical(std::move(labels))});
  if (it == entries_.end() || it->second.type() != type) return nullptr;
  return &it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             Labels labels) const {
  const Entry* entry = find(name, std::move(labels), Type::kCounter);
  return entry ? &std::get<Counter>(entry->value) : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         Labels labels) const {
  const Entry* entry = find(name, std::move(labels), Type::kGauge);
  return entry ? &std::get<Gauge>(entry->value) : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 Labels labels) const {
  const Entry* entry = find(name, std::move(labels), Type::kHistogram);
  return entry ? std::get<std::unique_ptr<Histogram>>(entry->value).get()
               : nullptr;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MetricsRegistry::for_each(
    const std::function<void(const Entry&)>& visit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) visit(entry);
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::string last_name;
  for_each([&](const Entry& entry) {
    if (entry.name != last_name) {
      const char* type = "untyped";
      switch (entry.type()) {
        case Type::kCounter: type = "counter"; break;
        case Type::kGauge: type = "gauge"; break;
        case Type::kHistogram: type = "histogram"; break;
      }
      os << "# TYPE " << entry.name << " " << type << "\n";
      last_name = entry.name;
    }
    const std::string labels = prom_labels(entry.labels);
    switch (entry.type()) {
      case Type::kCounter:
        os << entry.name << labels << " "
           << prom_number(std::get<Counter>(entry.value).value) << "\n";
        break;
      case Type::kGauge:
        os << entry.name << labels << " "
           << prom_number(std::get<Gauge>(entry.value).value) << "\n";
        break;
      case Type::kHistogram: {
        const auto& histogram =
            *std::get<std::unique_ptr<Histogram>>(entry.value);
        // Prometheus bucket counts are cumulative and end at le="+Inf".
        std::uint64_t cumulative = 0;
        Labels bucket_labels = entry.labels;
        bucket_labels.emplace_back("le", "");
        for (std::size_t i = 0; i <= histogram.upper_bounds().size(); ++i) {
          cumulative += histogram.bucket_counts()[i];
          bucket_labels.back().second =
              i < histogram.upper_bounds().size()
                  ? prom_number(histogram.upper_bounds()[i])
                  : "+Inf";
          os << entry.name << "_bucket" << prom_labels(bucket_labels) << " "
             << cumulative << "\n";
        }
        os << entry.name << "_sum" << labels << " "
           << prom_number(histogram.sum()) << "\n";
        os << entry.name << "_count" << labels << " " << histogram.count()
           << "\n";
        break;
      }
    }
  });
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for_each([&](const Entry& entry) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << json_escape(entry.name)
       << "\", \"labels\": ";
    write_json_labels(os, entry.labels);
    switch (entry.type()) {
      case Type::kCounter:
        os << ", \"type\": \"counter\", \"value\": "
           << json_number_or_null(std::get<Counter>(entry.value).value);
        break;
      case Type::kGauge:
        os << ", \"type\": \"gauge\", \"value\": "
           << json_number_or_null(std::get<Gauge>(entry.value).value);
        break;
      case Type::kHistogram: {
        const auto& histogram =
            *std::get<std::unique_ptr<Histogram>>(entry.value);
        os << ", \"type\": \"histogram\", \"buckets\": [";
        for (std::size_t i = 0; i <= histogram.upper_bounds().size(); ++i) {
          if (i > 0) os << ",";
          os << "{\"le\": "
             << (i < histogram.upper_bounds().size()
                     ? json_number_or_null(histogram.upper_bounds()[i])
                     : std::string("null"))
             << ", \"count\": " << histogram.bucket_counts()[i] << "}";
        }
        os << "], \"sum\": " << json_number_or_null(histogram.sum())
           << ", \"count\": " << histogram.count();
        break;
      }
    }
    os << "}";
  });
  os << (first ? "]" : "\n  ]");
}

}  // namespace hetscale::obs
