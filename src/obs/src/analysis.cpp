#include "hetscale/obs/analysis.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>
#include <utility>

#include "hetscale/obs/format.hpp"
#include "hetscale/support/csv.hpp"

namespace hetscale::obs {

namespace {

/// Rank merged cells by a metric, largest first; ties break on the cell key
/// so the ranking is a total order (required for byte-stable exports).
std::vector<CommHotspot> rank_cells(const std::vector<CommCell>& cells,
                                    double (*metric)(const CommCell&),
                                    int top) {
  double total = 0.0;
  for (const CommCell& cell : cells) total += metric(cell);
  std::vector<CommHotspot> ranked;
  ranked.reserve(cells.size());
  for (const CommCell& cell : cells) {
    const double value = metric(cell);
    ranked.push_back(
        CommHotspot{cell, total > 0.0 ? value / total : 0.0});
  }
  std::sort(ranked.begin(), ranked.end(),
            [&](const CommHotspot& a, const CommHotspot& b) {
              const double ma = metric(a.cell);
              const double mb = metric(b.cell);
              if (ma != mb) return ma > mb;
              return std::tie(a.cell.src, a.cell.dst, a.cell.phase) <
                     std::tie(b.cell.src, b.cell.dst, b.cell.phase);
            });
  if (top >= 0 && ranked.size() > static_cast<std::size_t>(top)) {
    ranked.resize(static_cast<std::size_t>(top));
  }
  return ranked;
}

void write_hotspots(std::ostream& os, const std::vector<CommHotspot>& edges) {
  os << "[";
  bool first = true;
  for (const CommHotspot& edge : edges) {
    if (!first) os << ",";
    first = false;
    os << "\n      {\"src\": " << edge.cell.src
       << ", \"dst\": " << edge.cell.dst << ", \"phase\": \""
       << json_escape(
              comm_phase_name(static_cast<CommPhase>(edge.cell.phase)))
       << "\", \"messages\": " << edge.cell.messages
       << ", \"bytes\": " << json_number_or_null(edge.cell.bytes)
       << ", \"wait_s\": " << json_number_or_null(edge.cell.wait_s)
       << ", \"share\": " << json_number_or_null(edge.share) << "}";
  }
  os << (first ? "]" : "\n    ]");
}

}  // namespace

Analysis::Analysis(const Profiler& profiler, AnalysisOptions options)
    : subject_(std::move(options.subject)), top_(options.top) {
  // sorted_runs() is the same canonical fold the report uses, so every
  // quantity below is independent of worker count and completion order.
  const std::vector<RunProfile> runs = profiler.sorted_runs();
  runs_ = runs.size();
  std::map<std::tuple<int, int, int>, CommCell> merged;
  for (const RunProfile& run : runs) {
    elapsed_s_ += run.elapsed_s;
    critical_path_.compute_s += run.critical_path.compute_s;
    critical_path_.comm_s += run.critical_path.comm_s;
    critical_path_.wait_s += run.critical_path.wait_s;
    critical_path_.fault_s += run.critical_path.fault_s;
    for (const CommCell& cell : run.comm_cells) {
      CommCell& into =
          merged
              .try_emplace(std::tuple<int, int, int>{cell.src, cell.dst,
                                                     cell.phase},
                           CommCell{cell.src, cell.dst, cell.phase})
              .first->second;
      into.messages += cell.messages;
      into.bytes += cell.bytes;
      into.wait_s += cell.wait_s;
    }
    des_queue_.pushes += run.des_queue.pushes;
    des_queue_.pops += run.des_queue.pops;
    des_queue_.far_inserts += run.des_queue.far_inserts;
    des_queue_.rebuilds += run.des_queue.rebuilds;
    des_queue_.samples_dropped += run.des_queue.samples_dropped;
    occupancy_samples_ += run.des_queue.occupancy.size();
    for (const DesQueueStats::Sample& sample : run.des_queue.occupancy) {
      occupancy_peak_ = std::max(occupancy_peak_, sample.depth);
    }
    population_peak_ = std::max(population_peak_, run.des_queue_depth_max);
    frame_live_peak_ = std::max(frame_live_peak_, run.frame_live_peak);
  }
  comm_cells_.reserve(merged.size());
  for (const auto& [key, cell] : merged) comm_cells_.push_back(cell);
  top_wait_ = rank_cells(
      comm_cells_, [](const CommCell& c) { return c.wait_s; }, top_);
  top_bytes_ = rank_cells(
      comm_cells_, [](const CommCell& c) { return c.bytes; }, top_);
}

void Analysis::to_json(std::ostream& os) const {
  double messages = 0.0;
  double bytes = 0.0;
  double wait_s = 0.0;
  struct PhaseTotals {
    double messages = 0.0;
    double bytes = 0.0;
    double wait_s = 0.0;
  };
  std::map<int, PhaseTotals> phases;
  for (const CommCell& cell : comm_cells_) {
    messages += static_cast<double>(cell.messages);
    bytes += cell.bytes;
    wait_s += cell.wait_s;
    PhaseTotals& t = phases[cell.phase];
    t.messages += static_cast<double>(cell.messages);
    t.bytes += cell.bytes;
    t.wait_s += cell.wait_s;
  }

  os << "{\n";
  os << "  \"schema\": \"hetscale.obs.analysis/v1\",\n";
  os << "  \"subject\": \"" << json_escape(subject_) << "\",\n";
  os << "  \"runs\": " << runs_ << ",\n";
  os << "  \"elapsed_virtual_s\": " << json_number_or_null(elapsed_s_)
     << ",\n";
  os << "  \"critical_path\": {";
  os << "\"compute_s\": " << json_number_or_null(critical_path_.compute_s)
     << ", ";
  os << "\"comm_s\": " << json_number_or_null(critical_path_.comm_s)
     << ", ";
  os << "\"wait_s\": " << json_number_or_null(critical_path_.wait_s)
     << ", ";
  os << "\"fault_s\": " << json_number_or_null(critical_path_.fault_s)
     << ", ";
  os << "\"total_s\": " << json_number_or_null(critical_path_.total_s());
  os << "},\n";
  os << "  \"comm_matrix\": {\n";
  os << "    \"cells\": " << comm_cells_.size() << ",\n";
  os << "    \"messages\": " << json_number_or_null(messages) << ",\n";
  os << "    \"bytes\": " << json_number_or_null(bytes) << ",\n";
  os << "    \"wait_s\": " << json_number_or_null(wait_s) << ",\n";
  os << "    \"phases\": [";
  bool first = true;
  for (const auto& [phase, totals] : phases) {
    if (!first) os << ",";
    first = false;
    os << "\n      {\"phase\": \""
       << json_escape(comm_phase_name(static_cast<CommPhase>(phase)))
       << "\", \"messages\": " << json_number_or_null(totals.messages)
       << ", \"bytes\": " << json_number_or_null(totals.bytes)
       << ", \"wait_s\": " << json_number_or_null(totals.wait_s) << "}";
  }
  os << (first ? "],\n" : "\n    ],\n");
  os << "    \"top_wait\": ";
  write_hotspots(os, top_wait_);
  os << ",\n";
  os << "    \"top_bytes\": ";
  write_hotspots(os, top_bytes_);
  os << "\n  },\n";
  os << "  \"des_queue\": {";
  os << "\"pushes\": " << des_queue_.pushes << ", ";
  os << "\"pops\": " << des_queue_.pops << ", ";
  os << "\"far_inserts\": " << des_queue_.far_inserts << ", ";
  os << "\"rebuilds\": " << des_queue_.rebuilds << ", ";
  os << "\"samples_dropped\": " << des_queue_.samples_dropped << ", ";
  os << "\"occupancy_peak\": " << occupancy_peak_ << ", ";
  os << "\"occupancy_samples\": " << occupancy_samples_ << ", ";
  os << "\"population_peak\": " << population_peak_ << ", ";
  os << "\"frame_live_peak\": " << frame_live_peak_;
  os << "}\n";
  os << "}\n";
}

void Analysis::to_csv(std::ostream& os) const {
  CsvWriter csv({"src", "dst", "phase", "messages", "bytes", "wait_s"});
  for (const CommCell& cell : comm_cells_) {
    csv.add_row({std::to_string(cell.src), std::to_string(cell.dst),
                 comm_phase_name(static_cast<CommPhase>(cell.phase)),
                 std::to_string(cell.messages), format_double(cell.bytes),
                 format_double(cell.wait_s)});
  }
  csv.write_to(os);
}

std::string Analysis::to_text() const {
  std::ostringstream out;
  Table path("Critical path  " + subject_ + "  (" + std::to_string(runs_) +
             " run" + (runs_ == 1 ? "" : "s") + ", virtual seconds)");
  path.set_header({"Segment", "Seconds", "Share"});
  const double total = critical_path_.total_s();
  auto share = [&](double v) {
    return total > 0.0 ? Table::fixed(100.0 * v / total, 1) + "%" : "-";
  };
  path.add_row({"compute", Table::num(critical_path_.compute_s, 6),
                share(critical_path_.compute_s)});
  path.add_row({"comm", Table::num(critical_path_.comm_s, 6),
                share(critical_path_.comm_s)});
  path.add_row({"wait", Table::num(critical_path_.wait_s, 6),
                share(critical_path_.wait_s)});
  path.add_row({"fault", Table::num(critical_path_.fault_s, 6),
                share(critical_path_.fault_s)});
  path.add_row({"total", Table::num(total, 6), share(total)});
  out << path;

  Table hot("Comm hotspots  top " + std::to_string(top_wait_.size()) +
            " by receiver wait");
  hot.set_header({"Src", "Dst", "Phase", "Msgs", "Bytes", "Wait s", "Share"});
  for (const CommHotspot& edge : top_wait_) {
    hot.add_row({std::to_string(edge.cell.src), std::to_string(edge.cell.dst),
                 comm_phase_name(static_cast<CommPhase>(edge.cell.phase)),
                 std::to_string(edge.cell.messages),
                 Table::num(edge.cell.bytes, 6),
                 Table::num(edge.cell.wait_s, 6),
                 Table::fixed(100.0 * edge.share, 1) + "%"});
  }
  out << "\n" << hot;

  Table queue("Event queue telemetry");
  queue.set_header({"Counter", "Value"});
  queue.add_row({"pushes", std::to_string(des_queue_.pushes)});
  queue.add_row({"pops", std::to_string(des_queue_.pops)});
  queue.add_row({"far inserts", std::to_string(des_queue_.far_inserts)});
  queue.add_row({"rebuilds", std::to_string(des_queue_.rebuilds)});
  queue.add_row({"occupancy peak", std::to_string(occupancy_peak_)});
  queue.add_row({"occupancy samples", std::to_string(occupancy_samples_)});
  queue.add_row({"samples dropped", std::to_string(des_queue_.samples_dropped)});
  queue.add_row({"population peak", std::to_string(population_peak_)});
  queue.add_row({"frame live peak", std::to_string(frame_live_peak_)});
  out << "\n" << queue;
  return out.str();
}

}  // namespace hetscale::obs
