// CommMatrix — per-rank x per-rank communication totals, split by
// collective phase.
//
// The virtual-MPI runtime records one entry per (src, dst, phase) cell:
// message count, nominal on-wire bytes, and the receiver-side wait time
// accumulated while blocked for a message from `src`. Phases name the
// collective a message belonged to (p2p, bcast, barrier, the van de Geijn
// scatter/ring legs, group collectives, ...) so a hotspot can be tied to
// the algorithm step that produced it, not just the rank pair.
//
// Determinism: cells live in a std::map keyed by (src, dst, phase), so
// cells() returns them in one canonical order regardless of the recording
// interleaving; all values are virtual-time or counts. The matrix has no
// locks — each vmpi::Machine owns one and records from its single
// simulation thread.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace hetscale::obs {

/// The collective phase a message belongs to. kP2p covers algorithm-level
/// point-to-point traffic; the rest name the vmpi collective (or Group
/// collective) whose implementation produced the message.
enum class CommPhase : int {
  kP2p = 0,
  kBcast,
  kBcastScatter,  ///< van de Geijn long-broadcast scatter leg
  kBcastRing,     ///< van de Geijn long-broadcast ring leg
  kBarrier,
  kGather,
  kScatter,
  kAllgather,
  kAlltoall,
  kGroupBcast,   ///< vmpi::Group row/column panel broadcast
  kGroupGather,  ///< vmpi::Group panel gather
  // Appended past the seed phases so recorded phase ints stay stable.
  kReduce,         ///< combining-tree reduce partials
  kAllreduce,      ///< recursive-doubling allreduce exchanges
  kBcastDoubling,  ///< long-broadcast doubling-allgather leg
};

/// Stable lowercase name of a phase ("p2p", "bcast", ...).
const std::string& comm_phase_name(CommPhase phase);

/// One (src, dst, phase) cell of the matrix. `phase` is the CommPhase as
/// int so the defaulted ordering (what deterministic folds sort by) stays
/// trivially total.
struct CommCell {
  int src = 0;
  int dst = 0;
  int phase = 0;
  std::uint64_t messages = 0;
  double bytes = 0.0;
  double wait_s = 0.0;

  auto operator<=>(const CommCell&) const = default;
};

class CommMatrix {
 public:
  /// Record one message sent src -> dst in `phase` (sender side).
  void record_send(int src, int dst, CommPhase phase, double bytes);

  /// Charge `wait_s` seconds of receiver blocking to the src -> dst cell
  /// (receiver side; dst is the waiting rank).
  void record_wait(int src, int dst, CommPhase phase, double wait_s);

  bool empty() const { return cells_.empty(); }
  std::size_t cell_count() const { return cells_.size(); }

  std::uint64_t total_messages() const;
  double total_bytes() const;
  double total_wait_s() const;

  /// All cells in canonical (src, dst, phase) order.
  std::vector<CommCell> cells() const;

  /// Merge another matrix cell-wise (used when folding runs).
  CommMatrix& operator+=(const CommMatrix& other);

 private:
  CommCell& cell(int src, int dst, CommPhase phase);

  std::map<std::tuple<int, int, int>, CommCell> cells_;
};

}  // namespace hetscale::obs
