// TimeBudget — an exact partition of a run's elapsed virtual time.
//
// compute_time_budget() sweeps the span store and classifies every instant
// of [0, elapsed] by what the lanes (ranks) were doing:
//
//   compute     >= 2 lanes executing compute spans in parallel
//   sequential  exactly 1 lane computing (everyone else blocked) — this is
//               the measured t0 of the paper's scalability model
//   fault       no lane computing, >= 1 lane charged to a fault span
//   comm        no lane computing or faulting, >= 1 lane in a comm span
//   residual    the remainder (start-up skew, uninstrumented time)
//
// A lane inside several spans at once takes the highest-priority one:
// fault > compute > comm > idle. Every bucket (residual included) is a
// sum of segment durations from the same sweep, so each is non-negative
// and the five buckets partition [0, elapsed]: they sum back to elapsed_s
// up to floating-point associativity — exactly, when span bounds are
// dyadic rationals.
#pragma once

#include <compare>

namespace hetscale::obs {

class SpanStore;

struct TimeBudget {
  double compute_s = 0.0;
  double comm_s = 0.0;
  double sequential_s = 0.0;
  double fault_s = 0.0;
  double residual_s = 0.0;
  double elapsed_s = 0.0;

  double total() const {
    return compute_s + comm_s + sequential_s + fault_s + residual_s;
  }

  /// Measured sequential time t0 of Theorem 1 (serialized computation).
  double measured_t0() const { return sequential_s; }
  /// Measured parallel overhead To (everything but computation).
  double measured_to() const { return comm_s + fault_s + residual_s; }

  TimeBudget& operator+=(const TimeBudget& other);

  auto operator<=>(const TimeBudget&) const = default;
};

/// Classify [0, elapsed] against the closed spans in `store`.
TimeBudget compute_time_budget(const SpanStore& store, double elapsed);

}  // namespace hetscale::obs
