// Report — the exportable product of a profiling session.
//
// Three formats over the same deterministic fold:
//   to_json()        `hetscale.obs.report/v1` (schema documented in
//                    docs/architecture.md)
//   to_prometheus()  text exposition format, deterministic metrics only
//   to_table()       the per-run time-budget table for humans
//
// The JSON and Prometheus outputs are byte-stable across --jobs because the
// fold consumes Profiler::sorted_runs(); wall-clock data appears only in
// JSON and only when ReportOptions::include_wall is set.
#pragma once

#include <ostream>
#include <string>

#include "hetscale/obs/budget.hpp"
#include "hetscale/obs/metrics.hpp"
#include "hetscale/obs/profiler.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::obs {

struct ReportOptions {
  /// Free-form name of what was profiled (scenario or algorithm).
  std::string subject = "run";
  /// Include host wall-clock stats (volatile across --jobs) in the JSON.
  bool include_wall = false;
};

class Report {
 public:
  Report(const Profiler& profiler, ReportOptions options);

  const std::string& subject() const { return subject_; }
  std::size_t runs() const { return runs_; }
  double elapsed_s() const { return elapsed_s_; }
  const TimeBudget& budget() const { return budget_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  bool has_wall() const { return has_wall_; }
  const WallStats& wall() const { return wall_; }

  void to_json(std::ostream& os) const;
  void to_prometheus(std::ostream& os) const;
  Table to_table() const;

 private:
  std::string subject_;
  std::size_t runs_ = 0;
  double elapsed_s_ = 0.0;
  TimeBudget budget_;
  MetricsRegistry metrics_;
  bool has_wall_ = false;
  WallStats wall_;
};

}  // namespace hetscale::obs
