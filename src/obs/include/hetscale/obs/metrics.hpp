// MetricsRegistry — counters, gauges, and fixed-bucket histograms keyed by
// name + label set.
//
// Determinism contract: instruments are stored in a map ordered by
// (name, canonical labels), so iteration — and therefore every export — is
// byte-stable regardless of registration or update order. Label sets are
// canonicalized (sorted by key) at registration, so the same logical
// instrument is reached whatever order the caller lists its labels in.
//
// Thread safety: instrument *registration* is serialized internally;
// instrument *updates* are not. The profiling pipeline only writes metrics
// from deterministic single-threaded folds (obs::Report construction), so
// updates never race; callers instrumenting multi-threaded code must
// provide their own serialization.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace hetscale::obs {

/// Label set of one instrument, e.g. {{"phase", "compute"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone accumulator (Prometheus counter semantics).
struct Counter {
  double value = 0.0;
  void add(double delta);
  void inc() { add(1.0); }
};

/// Last-written (or max-tracked) value.
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
  void set_max(double v);
};

/// Fixed-bucket histogram. Buckets use Prometheus `le` semantics: an
/// observation lands in the first bucket whose upper bound is >= it
/// (boundary values inclusive); one implicit overflow bucket catches the
/// rest, so bucket_counts().size() == upper_bounds().size() + 1.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  enum class Type { kCounter, kGauge, kHistogram };

  /// One registered instrument; `value` holds the live instance.
  struct Entry {
    std::string name;
    Labels labels;  ///< canonical (key-sorted)
    std::variant<Counter, Gauge, std::unique_ptr<Histogram>> value;
    Type type() const { return static_cast<Type>(value.index()); }
  };

  MetricsRegistry() = default;
  MetricsRegistry(MetricsRegistry&& other) noexcept;
  MetricsRegistry& operator=(MetricsRegistry&& other) noexcept;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Throws PreconditionError on an invalid name, a
  /// duplicate label key, or a type clash with an existing instrument
  /// (for histograms, also on differing bucket bounds).
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       Labels labels = {});

  /// Lookup without creation; nullptr when absent (labels in any order).
  const Counter* find_counter(const std::string& name,
                              Labels labels = {}) const;
  const Gauge* find_gauge(const std::string& name, Labels labels = {}) const;
  const Histogram* find_histogram(const std::string& name,
                                  Labels labels = {}) const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Visit every instrument in deterministic (name, labels) order.
  void for_each(const std::function<void(const Entry&)>& visit) const;

  /// Prometheus text exposition format (one # TYPE line per metric name).
  void write_prometheus(std::ostream& os) const;

  /// JSON array of instrument objects (non-finite values render as null).
  void write_json(std::ostream& os) const;

 private:
  Entry& entry_for(const std::string& name, Labels labels, Type type,
                   const std::vector<double>* bounds);
  const Entry* find(const std::string& name, Labels labels, Type type) const;

  using Key = std::pair<std::string, Labels>;
  mutable std::mutex mutex_;  ///< guards the map structure, not updates
  std::map<Key, Entry> entries_;
};

}  // namespace hetscale::obs
