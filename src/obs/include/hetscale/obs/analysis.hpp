// Cross-run analysis: the data model behind `hetscale_cli analyze`.
//
// An Analysis folds a Profiler's runs (in canonical sorted order, so the
// result is independent of completion order and therefore of --jobs) into
// one deterministic view: summed critical-path attribution, the merged
// per-rank communication matrix with ranked hotspots, and ladder-queue
// telemetry totals. Exports are byte-stable: equal profiles render to equal
// bytes in every format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hetscale/obs/comm_matrix.hpp"
#include "hetscale/obs/profiler.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::obs {

struct AnalysisOptions {
  /// Name of the analyzed workload, echoed in every export.
  std::string subject = "unnamed";
  /// How many hotspot edges to keep in each ranking (top wait, top bytes).
  int top = 10;
};

/// One ranked communication edge: a merged (src, dst, phase) cell plus its
/// share of the corresponding total (receiver wait or on-wire bytes).
struct CommHotspot {
  CommCell cell;
  /// Fraction of the ranking's total carried by this edge; 0 when the
  /// total is not positive.
  double share = 0.0;
};

class Analysis {
 public:
  Analysis(const Profiler& profiler, AnalysisOptions options);

  std::size_t runs() const { return runs_; }
  double elapsed_s() const { return elapsed_s_; }
  const CriticalPathSummary& critical_path() const { return critical_path_; }
  const std::vector<CommCell>& comm_cells() const { return comm_cells_; }
  const std::vector<CommHotspot>& top_wait() const { return top_wait_; }
  const std::vector<CommHotspot>& top_bytes() const { return top_bytes_; }
  const DesQueueStats& des_queue() const { return des_queue_; }
  std::uint64_t occupancy_peak() const { return occupancy_peak_; }
  /// Largest event-queue population any single run reached.
  std::uint64_t population_peak() const { return population_peak_; }
  /// Largest live-coroutine-frame count any single run reached.
  std::uint64_t frame_live_peak() const { return frame_live_peak_; }

  /// hetscale.obs.analysis/v1 — a self-contained JSON document.
  void to_json(std::ostream& os) const;

  /// The merged communication matrix as CSV (one row per (src, dst, phase)
  /// cell, sorted by key), for external plotting of heat maps.
  void to_csv(std::ostream& os) const;

  /// Human-readable summary: critical-path attribution plus the top-N
  /// hotspot edges ranked by receiver wait.
  std::string to_text() const;

 private:
  std::string subject_;
  int top_ = 10;
  std::size_t runs_ = 0;
  double elapsed_s_ = 0.0;
  CriticalPathSummary critical_path_;
  /// Merged across runs, sorted by (src, dst, phase).
  std::vector<CommCell> comm_cells_;
  std::vector<CommHotspot> top_wait_;
  std::vector<CommHotspot> top_bytes_;
  /// Counter totals only; raw occupancy timelines are summarized into
  /// `occupancy_peak_` / `occupancy_samples_` and not merged across runs.
  DesQueueStats des_queue_;
  std::uint64_t occupancy_peak_ = 0;
  std::uint64_t occupancy_samples_ = 0;
  /// Maxima across runs (not sums — peaks of different runs don't add).
  std::uint64_t population_peak_ = 0;
  std::uint64_t frame_live_peak_ = 0;
};

}  // namespace hetscale::obs
