// Critical-path analysis over the span store's virtual-time DAG.
//
// A simulated run ends when its slowest rank finishes; critical_path()
// walks backwards from that instant and attributes every moment of
// [0, elapsed] to what the blocking rank was doing: computing, holding a
// message on the wire (comm), blocked with nothing in flight (wait), or
// charged to an injected fault. The walk follows recv.wait spans across
// lanes via the message that satisfied them — when rank r's finish was
// gated on a message from rank s, the path hops to s at the message's
// departure time and keeps walking there.
//
// The produced segments telescope: each step extends the covered interval
// leftwards with no gaps or overlaps, so the four category totals are
// non-negative and sum to `elapsed` exactly (up to floating-point
// associativity). That invariant is what the `analyze` CLI asserts in CI.
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

namespace hetscale::obs {

class SpanStore;

/// One delivered message, as the path walker needs it (obs sits below
/// vmpi in the build, so vmpi::TraceRecorder converts its messages into
/// this shape).
struct PathMessage {
  int source = 0;
  int destination = 0;
  int tag = 0;
  double bytes = 0.0;
  double depart = 0.0;
  double arrive = 0.0;
};

enum class PathSegmentKind : int { kCompute = 0, kComm, kWait, kFault };

/// Stable lowercase name of a segment kind ("compute", "comm", ...).
const char* path_segment_kind_name(PathSegmentKind kind);

/// One interval of the critical path. Segments are reported in ascending
/// time order and partition [0, elapsed]. `kind` is the PathSegmentKind as
/// int so the defaulted ordering stays trivially total.
struct PathSegment {
  int lane = 0;   ///< rank charged with this interval
  int kind = 0;   ///< PathSegmentKind
  int peer = -1;  ///< sending rank for cross-lane comm hops, -1 otherwise
  double begin = 0.0;
  double end = 0.0;

  double seconds() const { return end - begin; }

  auto operator<=>(const PathSegment&) const = default;
};

struct CriticalPath {
  double elapsed_s = 0.0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double wait_s = 0.0;
  double fault_s = 0.0;
  std::vector<PathSegment> segments;

  double total_s() const {
    return compute_s + comm_s + wait_s + fault_s;
  }
};

/// Walk the longest dependency chain ending at `elapsed` and attribute it.
/// `messages` must hold the run's delivered messages (may be empty: the
/// walk then attributes blocking locally as wait time).
CriticalPath critical_path(const SpanStore& store,
                           const std::vector<PathMessage>& messages,
                           double elapsed);

}  // namespace hetscale::obs
