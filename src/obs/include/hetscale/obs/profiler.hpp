// Profiler — accumulates one RunProfile per simulated machine run and
// folds them into a deterministic report.
//
// Determinism contract: runs may be appended from any worker thread in any
// order (the experiment Runner schedules simulations concurrently), but
// report() sorts a copy of the runs before folding, so every exported
// total is bitwise identical at --jobs 1 and --jobs N. Wall-clock numbers
// cannot be made stable and are quarantined in WallStats, which exporters
// omit unless explicitly asked for.
//
// The ambient profiler (current()/ProfilerScope) is how instrumentation
// reaches the simulation layers without threading a pointer through every
// constructor: vmpi::Machine picks up obs::current() when it is built and
// publishes its RunProfile when run() finishes.
#pragma once

#include <compare>
#include <cstdint>
#include <mutex>
#include <vector>

#include "hetscale/obs/budget.hpp"
#include "hetscale/obs/comm_matrix.hpp"

namespace hetscale::obs {

/// Per-link on-wire totals, keyed by the sending node (its injection port
/// on a switched fabric; its share of the medium on a shared bus).
struct LinkProfile {
  int node = 0;
  double bytes = 0.0;
  double wire_s = 0.0;
  double stall_s = 0.0;

  auto operator<=>(const LinkProfile&) const = default;
};

/// Injected-fault time charged to a run, by cause.
struct FaultProfileTotals {
  double slowdown_s = 0.0;
  double checkpoint_s = 0.0;
  double rework_s = 0.0;
  double retry_s = 0.0;
  std::uint64_t checkpoints = 0;
  std::uint64_t crashes = 0;
  std::uint64_t retries = 0;

  double total_s() const {
    return slowdown_s + checkpoint_s + rework_s + retry_s;
  }

  auto operator<=>(const FaultProfileTotals&) const = default;
};

/// Category totals of one run's critical path (obs/critical_path.hpp
/// computes them; the per-segment detail stays with the analyzer — the
/// profile carries just the fold-friendly sums).
struct CriticalPathSummary {
  double compute_s = 0.0;
  double comm_s = 0.0;
  double wait_s = 0.0;
  double fault_s = 0.0;

  double total_s() const { return compute_s + comm_s + wait_s + fault_s; }

  auto operator<=>(const CriticalPathSummary&) const = default;
};

/// Ladder-queue telemetry totals (mirrors des::QueueTelemetry — the obs
/// layer sits below des in the build, so it keeps its own shape).
struct DesQueueStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t far_inserts = 0;
  std::uint64_t rebuilds = 0;
  /// Occupancy samples discarded once the telemetry cap was hit — nonzero
  /// means the occupancy timeline below is a truncated view.
  std::uint64_t samples_dropped = 0;

  /// Occupancy timeline: (virtual time, pending events) at every ladder
  /// epoch rebuild, capped at the producer side.
  struct Sample {
    double time = 0.0;
    std::uint64_t depth = 0;

    auto operator<=>(const Sample&) const = default;
  };
  std::vector<Sample> occupancy;

  auto operator<=>(const DesQueueStats&) const = default;
};

/// Everything one machine run contributes to the report. All values are
/// virtual-time or event counts — deterministic by construction. The
/// defaulted ordering is what report() sorts by; no field may be NaN.
struct RunProfile {
  double elapsed_s = 0.0;
  TimeBudget budget;

  // vmpi rank totals
  double compute_s = 0.0;
  double comm_s = 0.0;
  std::uint64_t messages = 0;
  double bytes = 0.0;
  std::uint64_t retries = 0;
  double backoff_s = 0.0;

  // des
  std::uint64_t des_events = 0;
  std::uint64_t des_queue_depth_max = 0;
  std::uint64_t frame_live_peak = 0;  ///< coroutine-frame high-water mark

  // net (on-wire truth, from the innermost network model)
  double wire_s = 0.0;
  double contention_s = 0.0;
  std::vector<LinkProfile> links;

  // fault injection
  FaultProfileTotals fault;

  // communication observatory: per-(src, dst, phase) traffic cells in
  // canonical order, the run's critical-path attribution, and the ladder
  // queue's telemetry (empty/zero when the machine ran unprofiled).
  std::vector<CommCell> comm_cells;
  CriticalPathSummary critical_path;
  DesQueueStats des_queue;

  auto operator<=>(const RunProfile&) const = default;
};

/// Host-side, non-deterministic observations (wall clock, worker
/// scheduling). Never part of byte-stable exports.
struct WallStats {
  double wall_s = 0.0;         ///< wall time spent inside instrumented work
  double worker_busy_s = 0.0;  ///< summed per-lane busy wall time
  std::uint64_t batches = 0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;  ///< Chase-Lev deque steals across batches
  int jobs = 0;

  bool empty() const { return batches == 0 && tasks == 0 && wall_s == 0.0; }
};

struct ReportOptions;
class Report;

class Profiler {
 public:
  /// Append one finished run. Thread-safe.
  void add_run(RunProfile run);

  /// Record host-side batch execution (volatile; Runner calls this).
  /// Thread-safe.
  void record_batch(int jobs, std::uint64_t tasks, double wall_s,
                    double worker_busy_s, std::uint64_t steals = 0);

  std::size_t runs() const;

  /// Copy of the runs, sorted into canonical order for deterministic folds.
  std::vector<RunProfile> sorted_runs() const;

  WallStats wall() const;

  /// Fold the runs into an exportable report (defined in report.cpp).
  Report report(const ReportOptions& options) const;
  Report report() const;

 private:
  mutable std::mutex mutex_;
  std::vector<RunProfile> runs_;
  WallStats wall_;
};

/// The ambient profiler instrumented layers publish to; nullptr when
/// profiling is off (the zero-overhead default).
Profiler* current();

/// Install `profiler` as the ambient profiler for this scope's lifetime.
class ProfilerScope {
 public:
  explicit ProfilerScope(Profiler& profiler);
  ProfilerScope(const ProfilerScope&) = delete;
  ProfilerScope& operator=(const ProfilerScope&) = delete;
  ~ProfilerScope();

 private:
  Profiler* previous_;
};

}  // namespace hetscale::obs
