// SpanStore — named, per-lane intervals of virtual time, with nesting.
//
// The span taxonomy the runtime emits (vmpi/fault record into a Machine's
// store): `compute`, `send.wait`, `recv.wait`, `barrier`, `checkpoint`,
// `fault.rework`. Names are interned; each carries a category (compute /
// comm / fault / other) that the time-budget sweep (obs/budget.hpp) and
// the exporters classify by. Lanes are ranks; depth records nesting (a
// send.wait inside a barrier has depth 1).
//
// Times are plain doubles: the obs layer sits below the DES in the build,
// so it cannot name des::SimTime — but a SimTime *is* a double, and every
// producer records scheduler time directly. ScopedSpan needs a clock for
// its RAII close; bind one with bind_clock().
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace hetscale::obs {

enum class SpanCategory { kCompute, kComm, kFault, kOther };

/// Returned by open() when tracing is off; close() ignores it.
inline constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

struct Span {
  int lane = 0;  ///< rank (or any stable integer lane id)
  int name_id = 0;
  double begin = 0.0;
  double end = 0.0;
  int depth = 0;       ///< how many spans were open on the lane at begin
  int peer = -1;       ///< other endpoint for comm spans, -1 otherwise
  int tag = 0;
  double bytes = 0.0;  ///< modeled payload size for comm spans
};

class SpanStore {
 public:
  /// Intern `name`, inferring its category from the taxonomy above
  /// ("compute" -> compute; "send.wait"/"recv.wait"/"barrier" -> comm;
  /// "checkpoint"/"fault.*" -> fault; anything else -> other).
  int intern(const std::string& name);
  int intern(const std::string& name, SpanCategory category);

  const std::string& name(int id) const;
  SpanCategory category(int id) const;

  /// Record a completed (leaf) span at the lane's current nesting depth.
  void record(int lane, int name_id, double begin, double end, int peer = -1,
              int tag = 0, double bytes = 0.0);

  /// Open a nesting span; record()s on the lane until the matching close()
  /// get depth + 1. Returns a handle for close(); kNoSpan is accepted and
  /// ignored there, so producers can thread "tracing off" through.
  std::size_t open(int lane, int name_id, double begin);
  void close(std::size_t handle, double end);

  /// All spans, in recording order. Spans opened but never closed keep
  /// end < begin and are skipped by consumers.
  const std::vector<Span>& spans() const { return spans_; }

  /// Spans currently open (for leak checks in tests).
  std::size_t open_count() const { return open_count_; }

  bool empty() const { return spans_.empty(); }

  /// Bind the virtual clock ScopedSpan reads at construction/destruction.
  void bind_clock(std::function<double()> clock) {
    clock_ = std::move(clock);
  }
  double clock_now() const;

 private:
  int depth_of(int lane) const;

  std::map<std::string, int> ids_;
  std::vector<std::string> names_;
  std::vector<SpanCategory> categories_;
  std::vector<Span> spans_;
  std::map<int, int> open_depth_;  ///< lane -> currently open span count
  std::size_t open_count_ = 0;
  std::function<double()> clock_;
};

/// RAII span over the store's bound clock: opens at construction, closes
/// at destruction. For straight-line (non-coroutine) code; coroutines use
/// explicit open()/close() because frame destruction may happen after the
/// virtual instant the span logically ends at.
class ScopedSpan {
 public:
  ScopedSpan(SpanStore& store, int lane, int name_id);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  SpanStore* store_;
  std::size_t handle_;
};

}  // namespace hetscale::obs
