// Small formatting helpers shared by the obs exporters.
//
// The obs layer sits below run/ in the build (run links against it), so it
// cannot reuse run::RunResult's JSON machinery; these helpers keep the two
// exporters' conventions aligned: strings are JSON-escaped, and non-finite
// reals never reach a JSON document (callers render them as null).
#pragma once

#include <string>

namespace hetscale::obs {

/// Escape `text` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& text);

/// Render a finite double with enough digits to be stable across exports of
/// bitwise-equal values (15 significant digits). Callers must handle
/// non-finite values themselves; this throws on NaN/Inf so no exporter can
/// leak an invalid JSON token by accident.
std::string format_double(double value);

/// `value` if finite rendered via format_double, else the JSON token
/// "null" — the same convention as hetscale.run.result/v1.
std::string json_number_or_null(double value);

/// Escape a label value for the Prometheus text exposition format:
/// backslash -> \\, double quote -> \", newline -> \n (the three escapes
/// the format defines; everything else passes through verbatim).
std::string prom_escape(const std::string& value);

}  // namespace hetscale::obs
