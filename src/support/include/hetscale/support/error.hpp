// Error handling primitives for hetscale.
//
// The library follows the C++ Core Guidelines' advice (E.2, I.6): report
// violations of preconditions and unrecoverable model errors via exceptions
// carrying enough context to diagnose the failing call.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace hetscale {

/// Base class of all exceptions thrown by hetscale libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// A simulation-model invariant was violated (indicates a bug or an
/// inconsistent model configuration, e.g. negative virtual time).
class ModelError : public Error {
 public:
  using Error::Error;
};

/// A numeric routine could not produce a meaningful result (singular matrix,
/// bracketing failure in a root finder, ill-conditioned fit, ...).
class NumericError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_precondition(std::string_view expr, std::string_view func,
                                     std::string_view msg);
[[noreturn]] void throw_model(std::string_view expr, std::string_view func,
                              std::string_view msg);
}  // namespace detail

}  // namespace hetscale

/// Check a documented precondition of a public function.
#define HETSCALE_REQUIRE(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hetscale::detail::throw_precondition(#expr, __func__, (msg));      \
    }                                                                      \
  } while (false)

/// Check an internal model invariant.
#define HETSCALE_CHECK(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hetscale::detail::throw_model(#expr, __func__, (msg));             \
    }                                                                      \
  } while (false)

/// Debug-only variant of HETSCALE_CHECK for per-event hot paths: full check
/// in debug and sanitizer builds, compiled out under NDEBUG (Release). Use
/// only where the invariant is re-established by construction and the check
/// merely guards against logic rot.
#ifdef NDEBUG
#define HETSCALE_DCHECK(expr, msg) \
  do {                             \
  } while (false)
#else
#define HETSCALE_DCHECK(expr, msg) HETSCALE_CHECK(expr, msg)
#endif
