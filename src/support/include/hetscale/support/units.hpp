// Physical units used throughout the simulator.
//
// All virtual time is kept in seconds (double), all computational work in
// floating-point operations (double, since counts exceed 2^32 routinely), all
// rates in flop/s, and all message sizes in bytes. The helpers here exist so
// that call sites can state their units explicitly instead of sprinkling
// magic factors of 1e6.
#pragma once

namespace hetscale::units {

/// Flop/s corresponding to `x` Mflop/s.
constexpr double mflops(double x) { return x * 1e6; }

/// Flop count corresponding to `x` Mflop.
constexpr double mflop(double x) { return x * 1e6; }

/// Convert a rate in flop/s to Mflop/s (for reporting).
constexpr double to_mflops(double flops_per_s) { return flops_per_s / 1e6; }

/// Seconds corresponding to `x` milliseconds.
constexpr double ms(double x) { return x * 1e-3; }

/// Seconds corresponding to `x` microseconds.
constexpr double us(double x) { return x * 1e-6; }

/// Convert seconds to milliseconds (for reporting).
constexpr double to_ms(double seconds) { return seconds * 1e3; }

/// Bytes/s corresponding to a link speed of `x` Mbit/s.
constexpr double mbit_per_s(double x) { return x * 1e6 / 8.0; }

/// Bytes/s corresponding to a link speed of `x` MByte/s.
constexpr double mbyte_per_s(double x) { return x * 1e6; }

/// Bytes occupied by `n` doubles.
constexpr double doubles(double n) { return n * 8.0; }

}  // namespace hetscale::units
