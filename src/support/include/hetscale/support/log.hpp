// Minimal leveled logging.
//
// The simulator is a library first; logging defaults to WARN so tests and
// benches stay quiet, and examples flip it to INFO to narrate their runs.
#pragma once

#include <sstream>
#include <string>

namespace hetscale {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

}  // namespace hetscale

#define HETSCALE_LOG(level, expr)                                           \
  do {                                                                      \
    if (static_cast<int>(level) >= static_cast<int>(::hetscale::log_level())) { \
      std::ostringstream hetscale_log_os;                                   \
      hetscale_log_os << expr;                                              \
      ::hetscale::detail::log_write(level, hetscale_log_os.str());          \
    }                                                                       \
  } while (false)

#define HETSCALE_DEBUG(expr) HETSCALE_LOG(::hetscale::LogLevel::kDebug, expr)
#define HETSCALE_INFO(expr) HETSCALE_LOG(::hetscale::LogLevel::kInfo, expr)
#define HETSCALE_WARN(expr) HETSCALE_LOG(::hetscale::LogLevel::kWarn, expr)
#define HETSCALE_ERROR(expr) HETSCALE_LOG(::hetscale::LogLevel::kError, expr)
