// CSV emission for benchmark data series (figures).
//
// Figure-reproducing benches print their (x, series...) samples as CSV so the
// curves can be plotted externally; the same writer is reused by tests to
// snapshot efficiency curves.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hetscale {

/// Accumulates rows and writes RFC-4180-ish CSV (quoting only when needed).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render the full document.
  std::string str() const;

  void write_to(std::ostream& os) const;

  /// Escape a single field, RFC-4180 style: quote when it contains a comma,
  /// quote, or line break (LF or CR), doubling any embedded quotes.
  static std::string escape(const std::string& field);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hetscale
