// Minimal command-line flag parsing for the CLI tool and examples.
//
// Supports `--flag value`, `--flag=value`, boolean `--flag`, and declared
// single-character aliases (`-j 8`, `-j8`); collects positional arguments
// in order. No external dependencies, strict by default (unknown flags are
// errors).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hetscale {

class ArgParser {
 public:
  /// Declare a flag. `def` is the rendered default for --help.
  ArgParser& add_flag(const std::string& name, const std::string& help,
                      std::optional<std::string> def = std::nullopt);

  /// Declare a boolean flag (present = true).
  ArgParser& add_bool(const std::string& name, const std::string& help);

  /// Declare a single-character alias for an already-declared flag, so
  /// `-j 8` and `-j8` both mean `--jobs 8`. A leading `-<other>` token
  /// without a declared alias stays positional (e.g. negative numbers).
  ArgParser& add_short(char alias, const std::string& name);

  /// Parse argv (excluding argv[0]). Throws PreconditionError on unknown
  /// flags or a missing value.
  void parse(int argc, const char* const* argv);
  void parse(const std::vector<std::string>& args);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;           ///< throws if absent
  std::string get_or(const std::string& name, const std::string& def) const;
  double get_double(const std::string& name, double def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Rendered usage text.
  std::string help(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    bool boolean = false;
    std::optional<std::string> def;
  };
  std::map<std::string, Spec> specs_;
  std::map<char, std::string> shorts_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Split "a,b,c" into trimmed pieces (empty pieces dropped).
std::vector<std::string> split(const std::string& text, char sep);

/// Map a requested worker count to an effective one: 0 means "use the
/// hardware concurrency" (at least 1), positive values pass through, and
/// negative values throw. This is the single definition of what `0` means —
/// --jobs, HETSCALE_JOBS, and Runner(0) all funnel through it, so the three
/// spellings can never drift apart.
int normalize_jobs(std::int64_t jobs);

/// The process-wide default worker count: the HETSCALE_JOBS environment
/// variable when set to a non-negative integer (0 = hardware concurrency),
/// otherwise the hardware concurrency (at least 1).
int default_jobs();

/// Declare the conventional `--jobs N` flag with its `-j` alias.
ArgParser& add_jobs_flag(ArgParser& args);

/// The parsed --jobs/-j value (must be >= 0; 0 picks the hardware
/// concurrency), or default_jobs() when the flag was not given.
int resolve_jobs(const ArgParser& args);

/// Map a requested simulation-thread count to an effective one: 0 means
/// "use the hardware concurrency" (at least 1), positive values pass
/// through, negative values throw. Mirrors normalize_jobs() so --sim-threads,
/// HETSCALE_SIM_THREADS, and set_global_sim_threads() agree on what 0 means.
int normalize_sim_threads(std::int64_t threads);

/// The process-wide default simulation-thread count per machine: the
/// HETSCALE_SIM_THREADS environment variable when set to a non-negative
/// integer (0 = hardware concurrency), otherwise 1 — the classic sequential
/// scheduler, which every golden artifact was recorded with.
int default_sim_threads();

/// Declare the conventional `--sim-threads N` flag.
ArgParser& add_sim_threads_flag(ArgParser& args);

/// The parsed --sim-threads value (must be >= 0; 0 picks the hardware
/// concurrency), or default_sim_threads() when the flag was not given.
int resolve_sim_threads(const ArgParser& args);

/// The effective process-wide sim-thread count new machines inherit:
/// set_global_sim_threads() when called, otherwise default_sim_threads().
/// A process global — exactly like the --jobs convention — so Machine
/// construction sites need no per-call plumbing; CLI entry points call
/// set_global_sim_threads(resolve_sim_threads(args)) once after parsing.
int global_sim_threads();
void set_global_sim_threads(int threads);

/// The process-wide default fault/experiment seed: the HETSCALE_SEED
/// environment variable when set to a non-negative integer, otherwise 0.
std::uint64_t default_seed();

/// Declare the conventional `--seed N` flag shared by the CLI and the
/// scenario launchers.
ArgParser& add_seed_flag(ArgParser& args);

/// The parsed --seed value (must be >= 0), or default_seed() when the flag
/// was not given.
std::uint64_t resolve_seed(const ArgParser& args);

}  // namespace hetscale
