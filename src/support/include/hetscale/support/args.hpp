// Minimal command-line flag parsing for the CLI tool and examples.
//
// Supports `--flag value`, `--flag=value`, and boolean `--flag`; collects
// positional arguments in order. No external dependencies, strict by
// default (unknown flags are errors).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hetscale {

class ArgParser {
 public:
  /// Declare a flag. `def` is the rendered default for --help.
  ArgParser& add_flag(const std::string& name, const std::string& help,
                      std::optional<std::string> def = std::nullopt);

  /// Declare a boolean flag (present = true).
  ArgParser& add_bool(const std::string& name, const std::string& help);

  /// Parse argv (excluding argv[0]). Throws PreconditionError on unknown
  /// flags or a missing value.
  void parse(int argc, const char* const* argv);
  void parse(const std::vector<std::string>& args);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;           ///< throws if absent
  std::string get_or(const std::string& name, const std::string& def) const;
  double get_double(const std::string& name, double def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Rendered usage text.
  std::string help(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    bool boolean = false;
    std::optional<std::string> def;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Split "a,b,c" into trimmed pieces (empty pieces dropped).
std::vector<std::string> split(const std::string& text, char sep);

}  // namespace hetscale
