// Deterministic random number generation.
//
// Simulation results must be bit-reproducible across runs and platforms, so
// we use our own small generators (SplitMix64 for seeding, xoshiro256** for
// streams) rather than std::mt19937 + std::uniform_real_distribution, whose
// outputs are not pinned down by the standard for floating point.
#pragma once

#include <array>
#include <cstdint>

namespace hetscale {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, reproducible PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedbeefULL);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic pairing).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Derive an independent child stream (for per-node perturbations).
  Rng split();

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hetscale
