// Cache-line-aligned storage for the numeric hot paths.
//
// The kernel engine (kernels/dispatch.hpp) promises bit-identical results on
// unaligned data — alignment is a throughput contract, not a correctness
// one — but 64-byte-aligned bases keep vector loads within one cache line
// and let panels start on line boundaries. Matrix storage and the matmul
// pack buffers allocate through this allocator.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace hetscale {

/// One x86 cache line; also the alignment of every AVX-512-era vector type,
/// so storage aligned this way is aligned for any lane width we dispatch to.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal std-compatible allocator handing out `Alignment`-byte-aligned
/// blocks via the aligned operator new (C++17).
template <class T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must not be weaker than the type's");

  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;  // stateless: any instance frees any other's blocks
  }
};

/// std::vector whose data() is 64-byte aligned.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace hetscale
