// Plain-text table formatting for benchmark harness output.
//
// The paper's evaluation section is a sequence of small tables; every bench
// binary prints its table through this formatter so the output is uniform and
// diffable against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hetscale {

/// A simple column-aligned text table.
///
/// Usage:
///   Table t("Table 1  Marked speed of Sunwulf nodes (Mflops)");
///   t.set_header({"Node", "Marked Speed"});
///   t.add_row({"SunBlade", "27.5"});
///   std::cout << t;
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_title(std::string title) { title_ = std::move(title); }
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Number of data rows (header excluded).
  std::size_t row_count() const { return rows_.size(); }

  /// Render with box-drawing-free ASCII alignment.
  std::string str() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& table);

  /// Format a double with `digits` significant decimal places, trimming
  /// trailing zeros ("3.1400" -> "3.14", "2.0" -> "2").
  static std::string num(double value, int digits = 4);

  /// Format a double in fixed notation with exactly `decimals` places.
  static std::string fixed(double value, int decimals);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hetscale
