#include "hetscale/support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "hetscale/support/error.hpp"

namespace hetscale {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  HETSCALE_REQUIRE(header_.empty() || row.size() == header_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::str() const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c + 1 < ncols ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.str();
}

std::string Table::num(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string Table::fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace hetscale
