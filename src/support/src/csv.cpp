#include "hetscale/support/csv.hpp"

#include <ostream>
#include <sstream>

#include "hetscale/support/error.hpp"

namespace hetscale {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  HETSCALE_REQUIRE(!header_.empty(), "CSV header must have at least one column");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  HETSCALE_REQUIRE(row.size() == header_.size(),
                   "CSV row width must match header width");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_to(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  write_to(os);
  return os.str();
}

}  // namespace hetscale
