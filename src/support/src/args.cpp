#include "hetscale/support/args.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "hetscale/support/error.hpp"

namespace hetscale {

ArgParser& ArgParser::add_flag(const std::string& name,
                               const std::string& help,
                               std::optional<std::string> def) {
  HETSCALE_REQUIRE(!name.empty() && name[0] != '-',
                   "flag name must be given without dashes");
  specs_[name] = Spec{help, false, std::move(def)};
  return *this;
}

ArgParser& ArgParser::add_bool(const std::string& name,
                               const std::string& help) {
  HETSCALE_REQUIRE(!name.empty() && name[0] != '-',
                   "flag name must be given without dashes");
  specs_[name] = Spec{help, true, std::nullopt};
  return *this;
}

ArgParser& ArgParser::add_short(char alias, const std::string& name) {
  HETSCALE_REQUIRE(specs_.count(name) > 0,
                   "short alias refers to undeclared flag --" + name);
  HETSCALE_REQUIRE(alias != '-', "short alias must not be '-'");
  shorts_[alias] = name;
  return *this;
}

void ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      // `-j ...` / `-j8` for a declared alias; anything else is positional.
      if (arg.size() >= 2 && arg[0] == '-' && shorts_.count(arg[1]) > 0) {
        const std::string& name = shorts_.at(arg[1]);
        const Spec& spec = specs_.at(name);
        if (spec.boolean) {
          HETSCALE_REQUIRE(arg.size() == 2, "boolean flag -" +
                                                std::string(1, arg[1]) +
                                                " takes no value");
          values_[name] = "true";
        } else if (arg.size() > 2) {
          values_[name] = arg.substr(arg[2] == '=' ? 3 : 2);
        } else {
          HETSCALE_REQUIRE(i + 1 < args.size(),
                           "flag -" + std::string(1, arg[1]) +
                               " needs a value");
          values_[name] = args[++i];
        }
        continue;
      }
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    const auto it = specs_.find(name);
    HETSCALE_REQUIRE(it != specs_.end(), "unknown flag: --" + name);
    if (it->second.boolean) {
      HETSCALE_REQUIRE(!has_inline_value,
                       "boolean flag --" + name + " takes no value");
      values_[name] = "true";
      continue;
    }
    if (!has_inline_value) {
      HETSCALE_REQUIRE(i + 1 < args.size(),
                       "flag --" + name + " needs a value");
      value = args[++i];
    }
    values_[name] = value;
  }
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  const auto spec = specs_.find(name);
  if (spec != specs_.end() && spec->second.def.has_value()) {
    return *spec->second.def;
  }
  throw PreconditionError("required flag --" + name + " was not provided");
}

std::string ArgParser::get_or(const std::string& name,
                              const std::string& def) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : def;
}

double ArgParser::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  HETSCALE_REQUIRE(end != nullptr && *end == '\0',
                   "flag --" + name + " is not a number: " + it->second);
  return value;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const auto value =
      static_cast<std::int64_t>(std::strtoll(it->second.c_str(), &end, 10));
  HETSCALE_REQUIRE(end != nullptr && *end == '\0',
                   "flag --" + name + " is not an integer: " + it->second);
  return value;
}

std::string ArgParser::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.boolean) os << " <value>";
    os << "  " << spec.help;
    if (spec.def) os << " (default: " << *spec.def << ")";
    os << '\n';
  }
  return os.str();
}

int normalize_jobs(std::int64_t jobs) {
  HETSCALE_REQUIRE(jobs >= 0,
                   "jobs must be >= 0 (0 means hardware concurrency)");
  if (jobs > 0) return static_cast<int>(jobs);
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware >= 1 ? static_cast<int>(hardware) : 1;
}

int default_jobs() {
  if (const char* env = std::getenv("HETSCALE_JOBS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 0) {
      return normalize_jobs(value);
    }
  }
  return normalize_jobs(0);
}

ArgParser& add_jobs_flag(ArgParser& args) {
  args.add_flag("jobs",
                "worker threads for batch runs; 0 = hardware concurrency "
                "(default: HETSCALE_JOBS or hardware concurrency)");
  args.add_short('j', "jobs");
  return args;
}

int resolve_jobs(const ArgParser& args) {
  if (!args.has("jobs")) return default_jobs();
  const auto jobs = args.get_int("jobs", 0);
  HETSCALE_REQUIRE(jobs >= 0,
                   "--jobs must be >= 0 (0 means hardware concurrency)");
  return normalize_jobs(jobs);
}

int normalize_sim_threads(std::int64_t threads) {
  HETSCALE_REQUIRE(threads >= 0,
                   "sim-threads must be >= 0 (0 means hardware concurrency)");
  if (threads > 0) return static_cast<int>(threads);
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware >= 1 ? static_cast<int>(hardware) : 1;
}

int default_sim_threads() {
  if (const char* env = std::getenv("HETSCALE_SIM_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 0) {
      return normalize_sim_threads(value);
    }
  }
  return 1;
}

ArgParser& add_sim_threads_flag(ArgParser& args) {
  args.add_flag("sim-threads",
                "OS threads per simulated machine; 0 = hardware concurrency, "
                "1 = sequential (default: HETSCALE_SIM_THREADS or 1)");
  return args;
}

int resolve_sim_threads(const ArgParser& args) {
  if (!args.has("sim-threads")) return default_sim_threads();
  const auto threads = args.get_int("sim-threads", 1);
  HETSCALE_REQUIRE(
      threads >= 0,
      "--sim-threads must be >= 0 (0 means hardware concurrency)");
  return normalize_sim_threads(threads);
}

namespace {
/// 0 = unset: fall through to the HETSCALE_SIM_THREADS/1 default. Relaxed
/// atomics suffice — this is a configuration knob read at Machine
/// construction, not a synchronization point.
std::atomic<int> g_sim_threads{0};
}  // namespace

int global_sim_threads() {
  const int value = g_sim_threads.load(std::memory_order_relaxed);
  return value > 0 ? value : default_sim_threads();
}

void set_global_sim_threads(int threads) {
  HETSCALE_REQUIRE(threads >= 1, "sim-threads must be >= 1");
  g_sim_threads.store(threads, std::memory_order_relaxed);
}

std::uint64_t default_seed() {
  if (const char* env = std::getenv("HETSCALE_SEED")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      return static_cast<std::uint64_t>(value);
    }
  }
  return 0;
}

ArgParser& add_seed_flag(ArgParser& args) {
  args.add_flag("seed",
                "fault/experiment seed (default: HETSCALE_SEED or 0)");
  return args;
}

std::uint64_t resolve_seed(const ArgParser& args) {
  if (!args.has("seed")) return default_seed();
  const auto seed = args.get_int("seed", 0);
  HETSCALE_REQUIRE(seed >= 0, "--seed must be >= 0");
  return static_cast<std::uint64_t>(seed);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream is(text);
  while (std::getline(is, piece, sep)) {
    // Trim spaces.
    const auto begin = piece.find_first_not_of(' ');
    const auto end = piece.find_last_not_of(' ');
    if (begin == std::string::npos) continue;
    out.push_back(piece.substr(begin, end - begin + 1));
  }
  return out;
}

}  // namespace hetscale
