#include "hetscale/support/error.hpp"

#include <sstream>

namespace hetscale::detail {

namespace {
std::string compose(std::string_view kind, std::string_view expr,
                    std::string_view func, std::string_view msg) {
  std::ostringstream os;
  os << kind << " in " << func << ": `" << expr << "` — " << msg;
  return os.str();
}
}  // namespace

void throw_precondition(std::string_view expr, std::string_view func,
                        std::string_view msg) {
  throw PreconditionError(compose("precondition violated", expr, func, msg));
}

void throw_model(std::string_view expr, std::string_view func,
                 std::string_view msg) {
  throw ModelError(compose("model invariant violated", expr, func, msg));
}

}  // namespace hetscale::detail
