#include "hetscale/support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace hetscale {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes writes: the experiment Runner logs from worker threads, and
// interleaved operator<< chains would shear lines mid-record.
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::clog << "[hetscale " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace hetscale
