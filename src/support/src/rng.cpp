#include "hetscale/support/rng.hpp"

#include <cmath>
#include <numbers>

#include "hetscale/support/error.hpp"

namespace hetscale {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HETSCALE_REQUIRE(lo <= hi, "uniform range must satisfy lo <= hi");
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HETSCALE_REQUIRE(lo <= hi, "uniform_int range must satisfy lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  HETSCALE_REQUIRE(stddev >= 0.0, "standard deviation must be non-negative");
  return mean + stddev * normal();
}

Rng Rng::split() {
  Rng child(0);
  child.s_ = {next_u64(), next_u64(), next_u64(), next_u64()};
  return child;
}

}  // namespace hetscale
