// Sequential matrix multiplication reference.
#pragma once

#include "hetscale/numeric/matrix.hpp"

namespace hetscale::numeric {

/// C = A * B, straightforward i-k-j loop order (cache friendly for row-major).
/// Requires a.cols() == b.rows().
Matrix multiply(const Matrix& a, const Matrix& b);

/// C = A * B restricted to a contiguous row slice [row_begin, row_end) of A.
/// Returns the (row_end - row_begin) x b.cols() block of C. This is exactly
/// the per-rank computation of the paper's row-distributed parallel MM.
Matrix multiply_rows(const Matrix& a, const Matrix& b, std::size_t row_begin,
                     std::size_t row_end);

}  // namespace hetscale::numeric
