// Sequential matrix multiplication reference.
#pragma once

#include <span>

#include "hetscale/numeric/matrix.hpp"

namespace hetscale::numeric {

/// C = A * B, straightforward i-k-j loop order (cache friendly for row-major).
/// Requires a.cols() == b.rows().
Matrix multiply(const Matrix& a, const Matrix& b);

/// C = A * B restricted to a contiguous row slice [row_begin, row_end) of A.
/// Returns the (row_end - row_begin) x b.cols() block of C. This is exactly
/// the per-rank computation of the paper's row-distributed parallel MM.
Matrix multiply_rows(const Matrix& a, const Matrix& b, std::size_t row_begin,
                     std::size_t row_end);

/// The same row-slice product over raw row-major storage: out is overwritten
/// with A[row_begin, row_end) * B. Operating on spans lets the parallel MM
/// multiply straight out of (and into) pooled message buffers without
/// materializing Matrix copies. `a` holds a_rows x a_cols doubles, `b` holds
/// a_cols x b_cols, `out` holds (row_end - row_begin) x b_cols.
void multiply_rows_into(std::span<const double> a, std::size_t a_cols,
                        std::size_t row_begin, std::size_t row_end,
                        std::span<const double> b, std::size_t b_cols,
                        std::span<double> out);

}  // namespace hetscale::numeric
