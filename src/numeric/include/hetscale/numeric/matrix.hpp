// Dense row-major matrix and vector helpers.
//
// The parallel algorithms in `algos/` operate on real data (a rank owns real
// rows of A); this type is the shared container. It is deliberately simple —
// contiguous storage, span-based row access, no expression templates.
//
// Storage is 64-byte aligned (one cache line, and the full width of an
// AVX-512 register). This is a throughput contract, not a correctness one:
// the SIMD kernels use unaligned loads everywhere — they must, since row
// pointers at arbitrary column offsets cannot stay aligned — but aligned
// base storage keeps whole cache lines of a row on one line and lets
// aligned-load codegen kick in where the compiler can prove it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hetscale/support/aligned.hpp"
#include "hetscale/support/rng.hpp"

namespace hetscale::numeric {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Matrix filled from `data` (row-major); data.size() must equal rows*cols.
  /// Copies into aligned storage — callers hand over plain vectors.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Mutable view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Random entries uniform in [lo, hi) from the given generator.
  static Matrix random(std::size_t rows, std::size_t cols, Rng& rng,
                       double lo = -1.0, double hi = 1.0);

  /// Random diagonally dominant n x n matrix — safe for pivot-free Gaussian
  /// elimination, which is what the paper's parallel GE performs.
  static Matrix random_diagonally_dominant(std::size_t n, Rng& rng);

  friend bool operator==(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  aligned_vector<double> data_;
};

/// Max-norm of (a - b); requires equal shapes.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Max-norm of elementwise difference of two vectors of equal length.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// y = A x (dense). Requires x.size() == A.cols().
std::vector<double> mat_vec(const Matrix& a, std::span<const double> x);

/// Infinity-norm of the residual b - A x.
double residual_inf_norm(const Matrix& a, std::span<const double> x,
                         std::span<const double> b);

}  // namespace hetscale::numeric
