// Small descriptive-statistics helpers used by the marked-speed suite and
// the experiment reports.
#pragma once

#include <span>

namespace hetscale::numeric {

double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// |a - b| / max(|a|, |b|, eps) — symmetric relative error used when
/// comparing predicted vs measured scalability.
double relative_error(double a, double b);

/// Geometric mean; requires all xs > 0.
double geometric_mean(std::span<const double> xs);

}  // namespace hetscale::numeric
