// Scalar root finding on monotone curves.
//
// The iso-solver needs "the problem size at which the speed-efficiency curve
// crosses a target" — i.e. the root of an increasing function of N, both in
// the continuous trend-line form and directly over integer problem sizes.
#pragma once

#include <cstdint>
#include <functional>

namespace hetscale::numeric {

struct BisectOptions {
  double x_tolerance = 1e-9;   ///< stop when the bracket is this narrow
  int max_iterations = 200;    ///< hard iteration cap
};

/// Find x in [lo, hi] with f(x) == 0 by bisection. Requires f(lo) and f(hi)
/// to have opposite signs (or one of them to be zero). Throws NumericError
/// if the root is not bracketed.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              const BisectOptions& options = {});

/// Smallest x in [lo, hi] with f(x) >= target, for a non-decreasing f over
/// integers. Returns -1 if even f(hi) < target. Evaluates f O(log(hi-lo))
/// times — important because here an evaluation is a whole simulated run.
std::int64_t first_at_least(const std::function<double(std::int64_t)>& f,
                            double target, std::int64_t lo, std::int64_t hi);

/// Expand [lo, hi] geometrically until f changes sign across it, then bisect.
/// `hi_limit` bounds the expansion. Throws NumericError on failure.
double bracket_and_bisect(const std::function<double(double)>& f, double lo,
                          double hi, double hi_limit,
                          const BisectOptions& options = {});

}  // namespace hetscale::numeric
