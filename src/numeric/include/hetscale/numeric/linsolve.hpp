// Sequential dense linear solvers — the single-node reference that parallel
// GE is validated against, and the building block for polynomial fitting.
#pragma once

#include <span>
#include <vector>

#include "hetscale/numeric/matrix.hpp"

namespace hetscale::numeric {

/// Pivoting strategy for Gaussian elimination.
enum class Pivoting {
  kNone,     ///< the paper's parallel GE eliminates in natural row order
  kPartial,  ///< row partial pivoting (reference solver)
};

/// Solve A x = b by Gaussian elimination + back substitution.
/// A and b are taken by value (the elimination is destructive).
/// Throws NumericError on a (near-)zero pivot.
std::vector<double> solve_dense(Matrix a, std::vector<double> b,
                                Pivoting pivoting = Pivoting::kPartial);

/// Reduce [A|b] in place to upper-triangular form (the paper's stage 1).
/// Rows are normalized so the diagonal becomes 1, matching the paper's
/// description ("the diagonal elements have the value 1").
void forward_eliminate(Matrix& a, std::span<double> b,
                       Pivoting pivoting = Pivoting::kNone);

/// Back substitution on an upper-triangular system with unit or non-unit
/// diagonal (stage 2). Requires a.rows() == a.cols() == b.size().
std::vector<double> back_substitute(const Matrix& a, std::span<const double> b);

/// Flop count of dense GE + back substitution on an n x n system, the
/// workload polynomial used throughout the paper's GE experiments:
///   W(N) = 2/3 N^3 + 5/2 N^2 - N/6.
/// Derivation: step i normalizes the pivot row ((N-i)+1 divides) and
/// eliminates the N-i-1 rows below it (2((N-i)+1) flops each); back
/// substitution adds N^2. Summing over i gives the polynomial above, and
/// the parallel GE in algos/ charges *exactly* this many flops (tested).
/// (The scanned paper's own polynomial is corrupted; this is the standard
/// count for the algorithm it describes — see DESIGN.md.)
double ge_workload(double n);

/// Flop count of the N x N matrix-multiplication workload, W(N) = 2 N^3.
double mm_workload(double n);

}  // namespace hetscale::numeric
