// Polynomials and least-squares polynomial fitting.
//
// The paper reads required problem sizes off a "polynomial trend line" fitted
// to sampled speed-efficiency points (Figs. 1 and 2). This module provides
// that trend line: Horner evaluation, differentiation, and a numerically
// sane least-squares fit (column-scaled normal equations with partial
// pivoting — plenty for degree <= 6 over a few dozen samples).
#pragma once

#include <span>
#include <vector>

namespace hetscale::numeric {

/// Polynomial with coefficients in ascending order: c[0] + c[1] x + ...
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> coefficients);

  /// Degree (0 for constant; the zero polynomial also reports degree 0).
  std::size_t degree() const;

  std::span<const double> coefficients() const { return coefficients_; }

  /// Evaluate at x (Horner's method).
  double operator()(double x) const;

  /// First derivative.
  Polynomial derivative() const;

 private:
  std::vector<double> coefficients_{0.0};
};

/// Least-squares fit of a degree-`degree` polynomial to (x, y) samples.
/// Requires xs.size() == ys.size() and xs.size() >= degree + 1.
/// Throws NumericError if the normal equations are singular (e.g. duplicated
/// x values making the fit underdetermined).
Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   std::size_t degree);

/// Coefficient of determination R^2 of a fitted model over the samples.
double r_squared(const Polynomial& p, std::span<const double> xs,
                 std::span<const double> ys);

}  // namespace hetscale::numeric
