#include "hetscale/numeric/linsolve.hpp"

#include <cmath>
#include <utility>

#include "hetscale/support/error.hpp"

namespace hetscale::numeric {

namespace {
constexpr double kPivotTolerance = 1e-12;

void swap_rows(Matrix& a, std::span<double> b, std::size_t i, std::size_t j) {
  if (i == j) return;
  auto ri = a.row(i);
  auto rj = a.row(j);
  for (std::size_t c = 0; c < ri.size(); ++c) std::swap(ri[c], rj[c]);
  std::swap(b[i], b[j]);
}
}  // namespace

void forward_eliminate(Matrix& a, std::span<double> b, Pivoting pivoting) {
  const std::size_t n = a.rows();
  HETSCALE_REQUIRE(a.cols() == n, "matrix must be square");
  HETSCALE_REQUIRE(b.size() == n, "rhs length must match matrix order");

  for (std::size_t i = 0; i < n; ++i) {
    if (pivoting == Pivoting::kPartial) {
      std::size_t best = i;
      for (std::size_t r = i + 1; r < n; ++r)
        if (std::abs(a(r, i)) > std::abs(a(best, i))) best = r;
      swap_rows(a, b, i, best);
    }
    const double pivot = a(i, i);
    if (std::abs(pivot) < kPivotTolerance) {
      throw NumericError("Gaussian elimination hit a (near-)zero pivot");
    }
    // Normalize the pivot row so the diagonal entry becomes 1 (as in the
    // paper's description of the reduced form Ux = y).
    auto prow = a.row(i);
    const double inv = 1.0 / pivot;
    for (std::size_t c = i; c < n; ++c) prow[c] *= inv;
    b[i] *= inv;
    for (std::size_t r = i + 1; r < n; ++r) {
      const double factor = a(r, i);
      if (factor == 0.0) continue;
      auto row = a.row(r);
      for (std::size_t c = i; c < n; ++c) row[c] -= factor * prow[c];
      b[r] -= factor * b[i];
    }
  }
}

std::vector<double> back_substitute(const Matrix& a,
                                    std::span<const double> b) {
  const std::size_t n = a.rows();
  HETSCALE_REQUIRE(a.cols() == n, "matrix must be square");
  HETSCALE_REQUIRE(b.size() == n, "rhs length must match matrix order");
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    auto row = a.row(ii);
    for (std::size_t c = ii + 1; c < n; ++c) acc -= row[c] * x[c];
    const double diag = row[ii];
    if (std::abs(diag) < kPivotTolerance) {
      throw NumericError("back substitution hit a (near-)zero diagonal");
    }
    x[ii] = acc / diag;
  }
  return x;
}

std::vector<double> solve_dense(Matrix a, std::vector<double> b,
                                Pivoting pivoting) {
  forward_eliminate(a, b, pivoting);
  return back_substitute(a, b);
}

double ge_workload(double n) {
  return (2.0 / 3.0) * n * n * n + 2.5 * n * n - n / 6.0;
}

double mm_workload(double n) { return 2.0 * n * n * n; }

}  // namespace hetscale::numeric
