#include "hetscale/numeric/roots.hpp"

#include <cmath>

#include "hetscale/support/error.hpp"

namespace hetscale::numeric {

double bisect(const std::function<double(double)>& f, double lo, double hi,
              const BisectOptions& options) {
  HETSCALE_REQUIRE(lo <= hi, "bisect requires lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (flo * fhi > 0.0) {
    throw NumericError("bisect: root is not bracketed by [lo, hi]");
  }
  for (int it = 0; it < options.max_iterations && (hi - lo) > options.x_tolerance;
       ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if (flo * fmid < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

std::int64_t first_at_least(const std::function<double(std::int64_t)>& f,
                            double target, std::int64_t lo, std::int64_t hi) {
  HETSCALE_REQUIRE(lo <= hi, "first_at_least requires lo <= hi");
  if (f(hi) < target) return -1;
  if (f(lo) >= target) return lo;
  // Invariant: f(lo) < target <= f(hi).
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (f(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double bracket_and_bisect(const std::function<double(double)>& f, double lo,
                          double hi, double hi_limit,
                          const BisectOptions& options) {
  HETSCALE_REQUIRE(lo < hi, "bracket_and_bisect requires lo < hi");
  HETSCALE_REQUIRE(hi <= hi_limit, "initial hi must not exceed hi_limit");
  double flo = f(lo);
  double fhi = f(hi);
  while (flo * fhi > 0.0 && hi < hi_limit) {
    const double width = hi - lo;
    lo = hi;
    flo = fhi;
    hi = std::min(hi + 2.0 * width, hi_limit);
    fhi = f(hi);
  }
  if (flo * fhi > 0.0) {
    throw NumericError("bracket_and_bisect: no sign change up to hi_limit");
  }
  return bisect(f, lo, hi, options);
}

}  // namespace hetscale::numeric
