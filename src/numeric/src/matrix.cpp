#include "hetscale/numeric/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "hetscale/support/error.hpp"

namespace hetscale::numeric {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
  HETSCALE_REQUIRE(data_.size() == rows_ * cols_,
                   "data size must equal rows * cols");
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  HETSCALE_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  HETSCALE_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  HETSCALE_REQUIRE(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  HETSCALE_REQUIRE(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                      double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.uniform(lo, hi);
  return m;
}

Matrix Matrix::random_diagonally_dominant(std::size_t n, Rng& rng) {
  Matrix m = random(n, n, rng, -1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) off += std::abs(m(i, j));
    m(i, i) = off + 1.0;  // strictly dominant
  }
  return m;
}

bool operator==(const Matrix& a, const Matrix& b) {
  return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  HETSCALE_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                   "shape mismatch");
  return max_abs_diff(a.data(), b.data());
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  HETSCALE_REQUIRE(a.size() == b.size(), "length mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

std::vector<double> mat_vec(const Matrix& a, std::span<const double> x) {
  HETSCALE_REQUIRE(x.size() == a.cols(), "dimension mismatch in mat_vec");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

double residual_inf_norm(const Matrix& a, std::span<const double> x,
                         std::span<const double> b) {
  HETSCALE_REQUIRE(b.size() == a.rows(), "dimension mismatch in residual");
  const auto ax = mat_vec(a, x);
  double worst = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    worst = std::max(worst, std::abs(ax[i] - b[i]));
  return worst;
}

}  // namespace hetscale::numeric
