#include "hetscale/numeric/matmul.hpp"

#include <algorithm>

#include "hetscale/support/error.hpp"

namespace hetscale::numeric {

Matrix multiply(const Matrix& a, const Matrix& b) {
  return multiply_rows(a, b, 0, a.rows());
}

Matrix multiply_rows(const Matrix& a, const Matrix& b, std::size_t row_begin,
                     std::size_t row_end) {
  HETSCALE_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  HETSCALE_REQUIRE(row_begin <= row_end && row_end <= a.rows(),
                   "row slice out of range");
  Matrix c(row_end - row_begin, b.cols());
  multiply_rows_into(a.data(), a.cols(), row_begin, row_end, b.data(),
                     b.cols(), c.data());
  return c;
}

void multiply_rows_into(std::span<const double> a, std::size_t a_cols,
                        std::size_t row_begin, std::size_t row_end,
                        std::span<const double> b, std::size_t b_cols,
                        std::span<double> out) {
  HETSCALE_REQUIRE(row_begin <= row_end && row_end * a_cols <= a.size(),
                   "row slice out of range");
  HETSCALE_REQUIRE(b.size() == a_cols * b_cols, "inner dimensions must agree");
  HETSCALE_REQUIRE(out.size() == (row_end - row_begin) * b_cols,
                   "output block size mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t n = b_cols;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* arow = a.data() + i * a_cols;
    double* crow = out.data() + (i - row_begin) * n;
    for (std::size_t k = 0; k < a_cols; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace hetscale::numeric
