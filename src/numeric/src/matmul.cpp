#include "hetscale/numeric/matmul.hpp"

#include "hetscale/support/error.hpp"

namespace hetscale::numeric {

Matrix multiply(const Matrix& a, const Matrix& b) {
  return multiply_rows(a, b, 0, a.rows());
}

Matrix multiply_rows(const Matrix& a, const Matrix& b, std::size_t row_begin,
                     std::size_t row_end) {
  HETSCALE_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  HETSCALE_REQUIRE(row_begin <= row_end && row_end <= a.rows(),
                   "row slice out of range");
  const std::size_t n = b.cols();
  Matrix c(row_end - row_begin, n);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    auto arow = a.row(i);
    auto crow = c.row(i - row_begin);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      auto brow = b.row(k);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

}  // namespace hetscale::numeric
