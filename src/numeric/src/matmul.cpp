#include "hetscale/numeric/matmul.hpp"

#include <algorithm>
#include <cstddef>

#include "hetscale/kernels/dispatch.hpp"
#include "hetscale/support/aligned.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::numeric {

namespace {

// Cache-block sizes for the packed-panel product. A B-panel is kKc x kNc
// doubles (256 KiB at the defaults) — sized to sit in L2 while it is swept
// once per four A rows. Both are multiples of the kernel's 8-column tile so
// only the matrix edge, not every panel, pays the tail path.
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 128;

}  // namespace

Matrix multiply(const Matrix& a, const Matrix& b) {
  return multiply_rows(a, b, 0, a.rows());
}

Matrix multiply_rows(const Matrix& a, const Matrix& b, std::size_t row_begin,
                     std::size_t row_end) {
  HETSCALE_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  HETSCALE_REQUIRE(row_begin <= row_end && row_end <= a.rows(),
                   "row slice out of range");
  Matrix c(row_end - row_begin, b.cols());
  multiply_rows_into(a.data(), a.cols(), row_begin, row_end, b.data(),
                     b.cols(), c.data());
  return c;
}

// Blocked, B-panel-packed product. For every output element C[i][j] the k
// sum still runs in globally ascending order — panels are visited k0
// ascending and each panel accumulates kk ascending — and intermediate
// stores to C between panels are exact, so the result is bit-identical to
// the classic i-k-j loop this replaced. The old loop also skipped k when
// A[i][k] == 0.0; the skip is gone: adding (+-0.0) * B[k][j] to a partial
// sum is an exact no-op for finite B (C starts at +0.0 and +0.0 + -0.0
// rounds to +0.0), and the branch cost plus its vectorization block were
// pure loss on the dense matrices this code feeds on.
void multiply_rows_into(std::span<const double> a, std::size_t a_cols,
                        std::size_t row_begin, std::size_t row_end,
                        std::span<const double> b, std::size_t b_cols,
                        std::span<double> out) {
  HETSCALE_REQUIRE(row_begin <= row_end && row_end * a_cols <= a.size(),
                   "row slice out of range");
  HETSCALE_REQUIRE(b.size() == a_cols * b_cols, "inner dimensions must agree");
  HETSCALE_REQUIRE(out.size() == (row_end - row_begin) * b_cols,
                   "output block size mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t m = row_end - row_begin;
  if (m == 0 || a_cols == 0 || b_cols == 0) return;

  const kernels::KernelOps& k = kernels::ops();
  // One pack buffer per thread: parallel MM runs one slice per worker and
  // the buffer is hot again on the next batch.
  thread_local aligned_vector<double> panel;
  panel.resize(kKc * kNc);

  const double* arows = a.data() + row_begin * a_cols;
  for (std::size_t j0 = 0; j0 < b_cols; j0 += kNc) {
    const std::size_t nc = std::min(kNc, b_cols - j0);
    for (std::size_t k0 = 0; k0 < a_cols; k0 += kKc) {
      const std::size_t kc = std::min(kKc, a_cols - k0);
      // Pack B[k0:k0+kc, j0:j0+nc] contiguously: the kernel then streams
      // the panel with unit stride instead of striding b_cols through B.
      for (std::size_t kk = 0; kk < kc; ++kk) {
        const double* src = b.data() + (k0 + kk) * b_cols + j0;
        std::copy(src, src + nc, panel.data() + kk * nc);
      }
      std::size_t i = 0;
      for (; i + 4 <= m; i += 4) {
        const double* apack[4] = {
            arows + i * a_cols + k0, arows + (i + 1) * a_cols + k0,
            arows + (i + 2) * a_cols + k0, arows + (i + 3) * a_cols + k0};
        double* cpack[4] = {out.data() + i * b_cols + j0,
                            out.data() + (i + 1) * b_cols + j0,
                            out.data() + (i + 2) * b_cols + j0,
                            out.data() + (i + 3) * b_cols + j0};
        k.mm_tile4(apack, panel.data(), kc, nc, cpack);
      }
      for (; i < m; ++i) {
        const double* arow = arows + i * a_cols + k0;
        double* crow = out.data() + i * b_cols + j0;
        for (std::size_t kk = 0; kk < kc; ++kk) {
          k.axpy(arow[kk], panel.data() + kk * nc, crow, nc);
        }
      }
    }
  }
}

}  // namespace hetscale::numeric
