#include "hetscale/numeric/stats.hpp"

#include <algorithm>
#include <cmath>

#include "hetscale/support/error.hpp"

namespace hetscale::numeric {

double mean(std::span<const double> xs) {
  HETSCALE_REQUIRE(!xs.empty(), "mean of empty sample");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_value(std::span<const double> xs) {
  HETSCALE_REQUIRE(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  HETSCALE_REQUIRE(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double relative_error(double a, double b) {
  constexpr double kEps = 1e-300;
  const double denom = std::max({std::abs(a), std::abs(b), kEps});
  return std::abs(a - b) / denom;
}

double geometric_mean(std::span<const double> xs) {
  HETSCALE_REQUIRE(!xs.empty(), "geometric mean of empty sample");
  double acc = 0.0;
  for (double x : xs) {
    HETSCALE_REQUIRE(x > 0.0, "geometric mean requires positive samples");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace hetscale::numeric
