#include "hetscale/numeric/polynomial.hpp"

#include <cmath>

#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::numeric {

Polynomial::Polynomial(std::vector<double> coefficients)
    : coefficients_(std::move(coefficients)) {
  if (coefficients_.empty()) coefficients_ = {0.0};
}

std::size_t Polynomial::degree() const {
  std::size_t d = coefficients_.size() - 1;
  while (d > 0 && coefficients_[d] == 0.0) --d;
  return d;
}

double Polynomial::operator()(double x) const {
  double acc = 0.0;
  for (std::size_t i = coefficients_.size(); i-- > 0;)
    acc = acc * x + coefficients_[i];
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coefficients_.size() <= 1) return Polynomial({0.0});
  std::vector<double> d(coefficients_.size() - 1);
  for (std::size_t i = 1; i < coefficients_.size(); ++i)
    d[i - 1] = coefficients_[i] * static_cast<double>(i);
  return Polynomial(std::move(d));
}

Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   std::size_t degree) {
  HETSCALE_REQUIRE(xs.size() == ys.size(), "xs and ys must have equal length");
  HETSCALE_REQUIRE(xs.size() >= degree + 1,
                   "need at least degree+1 samples to fit");
  const std::size_t m = degree + 1;

  // Scale x into [-1, 1]-ish to keep the Vandermonde columns comparable.
  double xmax = 1.0;
  for (double x : xs) xmax = std::max(xmax, std::abs(x));
  const double scale = 1.0 / xmax;

  // Normal equations in the scaled variable: (V^T V) c_s = V^T y.
  Matrix ata(m, m);
  std::vector<double> aty(m, 0.0);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    std::vector<double> pow(m, 1.0);
    const double x = xs[s] * scale;
    for (std::size_t i = 1; i < m; ++i) pow[i] = pow[i - 1] * x;
    for (std::size_t i = 0; i < m; ++i) {
      aty[i] += pow[i] * ys[s];
      for (std::size_t j = 0; j < m; ++j) ata(i, j) += pow[i] * pow[j];
    }
  }
  std::vector<double> scaled;
  try {
    scaled = solve_dense(std::move(ata), std::move(aty), Pivoting::kPartial);
  } catch (const NumericError&) {
    throw NumericError("polyfit: normal equations are singular");
  }
  // Undo the x scaling: c[i] = c_s[i] * scale^i.
  std::vector<double> coeff(m);
  double f = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    coeff[i] = scaled[i] * f;
    f *= scale;
  }
  return Polynomial(std::move(coeff));
}

double r_squared(const Polynomial& p, std::span<const double> xs,
                 std::span<const double> ys) {
  HETSCALE_REQUIRE(xs.size() == ys.size() && !xs.empty(),
                   "need matching, non-empty samples");
  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - p(xs[i]);
    ss_res += e * e;
    const double d = ys[i] - mean;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace hetscale::numeric
