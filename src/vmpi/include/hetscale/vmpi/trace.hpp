// Execution tracing — where did the virtual time go?
//
// When enabled on a Machine, every compute interval, blocking send/recv
// interval, barrier, and message is recorded into an obs::SpanStore (the
// instrumentation layer's span container; fault hooks add `checkpoint` and
// `fault.rework` spans to the same store). Consumers:
//   * chrome_trace_json(): the Chrome trace-event format (load in
//     chrome://tracing or Perfetto) — one lane per rank, with message flow
//     arrows from sender to receiver;
//   * utilization_table(): a per-rank compute/communication/idle breakdown;
//   * obs::compute_time_budget(): the measured t0/To decomposition the
//     profiler reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hetscale/des/scheduler.hpp"
#include "hetscale/obs/comm_matrix.hpp"
#include "hetscale/obs/critical_path.hpp"
#include "hetscale/obs/span.hpp"

namespace hetscale::vmpi {

struct TraceInterval {
  enum class Kind { kCompute, kSend, kRecv };
  int rank = 0;
  Kind kind = Kind::kCompute;
  des::SimTime begin = 0.0;
  des::SimTime end = 0.0;
  int peer = -1;       ///< other endpoint for kSend/kRecv
  int tag = 0;
  double bytes = 0.0;  ///< modeled size for kSend/kRecv
};

struct TraceMessage {
  int source = 0;
  int destination = 0;
  int tag = 0;
  double bytes = 0.0;
  des::SimTime depart = 0.0;
  des::SimTime arrive = 0.0;
};

class TraceRecorder {
 public:
  TraceRecorder();

  void record_interval(TraceInterval interval);
  void record_message(TraceMessage message);

  /// The point-to-point and compute intervals, materialized from the span
  /// store (structural spans — barriers, fault charges — are not leaf
  /// intervals and are excluded; their constituent sends/recvs are listed).
  std::vector<TraceInterval> intervals() const;
  const std::vector<TraceMessage>& messages() const { return messages_; }

  /// The underlying span store (all spans, including barrier/fault ones).
  obs::SpanStore& spans() { return spans_; }
  const obs::SpanStore& spans() const { return spans_; }

  /// Interned name id of the `barrier` span, for explicit open()/close()
  /// from coroutine code.
  int barrier_name_id() const { return barrier_id_; }

  /// The per-rank x per-rank communication matrix (obs/comm_matrix.hpp).
  /// Comm's send/recv hooks record into it whenever tracing is on.
  obs::CommMatrix& comm() { return comm_; }
  const obs::CommMatrix& comm() const { return comm_; }

  /// Group collectives run over plain tagged point-to-point sends, so the
  /// world tags cannot name them; a group marks its own lane for the span
  /// of the collective and every message the lane sends or receives is
  /// charged to that phase instead of the tag-derived one. Lanes are
  /// independent, so interleaved coroutines cannot clobber each other.
  void set_lane_phase(int lane, obs::CommPhase phase);
  void clear_lane_phase(int lane);
  obs::CommPhase lane_phase_or(int lane, obs::CommPhase fallback) const;

  /// The messages converted to the critical-path walker's shape.
  std::vector<obs::PathMessage> path_messages() const;

  /// Chrome trace-event JSON ("X" duration events per rank lane, "s"/"f"
  /// flow pairs per message, plus one "C" counter row per CommMatrix cell
  /// when the matrix is non-empty). Times in microseconds of virtual time.
  /// All span names are JSON-escaped; an empty trace renders as "[]".
  std::string chrome_trace_json() const;

  /// Per-rank utilization over [0, horizon]: compute, blocked-communicating
  /// and idle fractions, rendered as an aligned text table.
  std::string utilization_table(des::SimTime horizon) const;

 private:
  obs::SpanStore spans_;
  std::vector<TraceMessage> messages_;
  obs::CommMatrix comm_;
  std::map<int, obs::CommPhase> lane_phase_;
  int compute_id_;
  int send_id_;
  int recv_id_;
  int barrier_id_;
};

}  // namespace hetscale::vmpi
