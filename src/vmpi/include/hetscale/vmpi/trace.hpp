// Execution tracing — where did the virtual time go?
//
// When enabled on a Machine, every compute interval, blocking send/recv
// interval, and message is recorded. Two consumers:
//   * chrome_trace_json(): the Chrome trace-event format (load in
//     chrome://tracing or Perfetto) — one lane per rank, with message flow
//     arrows from sender to receiver;
//   * utilization_table(): a per-rank compute/communication/idle breakdown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetscale/des/scheduler.hpp"

namespace hetscale::vmpi {

struct TraceInterval {
  enum class Kind { kCompute, kSend, kRecv };
  int rank = 0;
  Kind kind = Kind::kCompute;
  des::SimTime begin = 0.0;
  des::SimTime end = 0.0;
  int peer = -1;       ///< other endpoint for kSend/kRecv
  int tag = 0;
  double bytes = 0.0;  ///< modeled size for kSend/kRecv
};

struct TraceMessage {
  int source = 0;
  int destination = 0;
  int tag = 0;
  double bytes = 0.0;
  des::SimTime depart = 0.0;
  des::SimTime arrive = 0.0;
};

class TraceRecorder {
 public:
  void record_interval(TraceInterval interval);
  void record_message(TraceMessage message);

  const std::vector<TraceInterval>& intervals() const { return intervals_; }
  const std::vector<TraceMessage>& messages() const { return messages_; }

  /// Chrome trace-event JSON ("X" duration events per rank lane, "s"/"f"
  /// flow pairs per message). Times in microseconds of virtual time.
  std::string chrome_trace_json() const;

  /// Per-rank utilization over [0, horizon]: compute, blocked-communicating
  /// and idle fractions, rendered as an aligned text table.
  std::string utilization_table(des::SimTime horizon) const;

 private:
  std::vector<TraceInterval> intervals_;
  std::vector<TraceMessage> messages_;
};

}  // namespace hetscale::vmpi
