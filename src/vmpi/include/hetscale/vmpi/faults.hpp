// The runtime's fault-injection seam.
//
// vmpi knows nothing about fault *plans*; it only consults this interface
// at the two places where degradation can act on a rank's virtual time:
// compute calls (slowdowns, checkpoint cost, crash rework) and message
// transmissions (transient loss with sender-side retry). The fault library
// implements the interface (fault::Injector); a Machine with no hooks
// attached behaves exactly as before — the healthy path stays hook-free.
//
// Determinism contract: an implementation may keep per-rank state (message
// counters, checkpoint schedules), because within one simulation each
// rank's coroutine runs single-threaded and issues its compute/send calls
// in a deterministic order. It must not share mutable state across
// Machine instances — concurrent simulations on a Runner each attach their
// own hooks.
#pragma once

#include <cstdint>

#include "hetscale/des/scheduler.hpp"

namespace hetscale::obs {
class SpanStore;
}  // namespace hetscale::obs

namespace hetscale::vmpi {

/// Retry schedule of one logical message (drawn per send).
struct SendFaultPlan {
  int attempts = 1;            ///< transmissions until one gets through
  double retry_timeout_s = 0;  ///< wait before the first retransmission
  double backoff = 1.0;        ///< timeout multiplier per further retry
};

/// Summed fault charges over a whole run, reported by the hooks for the
/// profiling layer (mirrors obs::FaultProfileTotals without the obs
/// dependency).
struct FaultProfile {
  double slowdown_s = 0.0;
  double checkpoint_s = 0.0;
  double rework_s = 0.0;
  double retry_s = 0.0;
  std::uint64_t checkpoints = 0;
  std::uint64_t crashes = 0;
  std::uint64_t retries = 0;
};

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// The virtual end time of a compute that starts at `start` and would
  /// take `healthy_seconds` on the healthy machine. Implementations charge
  /// slowdowns, checkpoint costs crossed by the interval, and crash
  /// rework here; the result must be >= start + healthy_seconds' degraded
  /// equivalent and monotone in `start`.
  virtual des::SimTime compute_end(int rank, des::SimTime start,
                                   double healthy_seconds) = 0;

  /// The retry schedule for `rank`'s next message. Called once per logical
  /// send (blocking or not), advancing the rank's message counter.
  virtual SendFaultPlan send_faults(int rank) = 0;

  /// Time `rank`'s message spent in timeouts/retransmissions beyond the
  /// first attempt (for the fault-overhead decomposition).
  virtual void record_retry_wait(int rank, double seconds) = 0;

  /// A profiling Machine offers its span store so the hooks can record
  /// `checkpoint` / `fault.rework` spans at the instants they charge time.
  /// Optional: the default keeps fault models span-free.
  virtual void bind_span_sink(obs::SpanStore* /*spans*/) {}

  /// Summed charges for the profiling report. Optional.
  virtual FaultProfile fault_profile() const { return {}; }
};

}  // namespace hetscale::vmpi
