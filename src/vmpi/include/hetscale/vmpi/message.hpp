// Messages and per-rank mailboxes.
//
// A Message carries both a *modeled* size in bytes (what the network model
// times) and a *real* payload (what the algorithm computes with) — virtual
// time and real data are deliberately decoupled (DESIGN.md §6.1). Payloads
// are pooled (payload.hpp), and the pending queue is a vector drained by
// index rather than a deque, so steady-state delivery performs no heap
// traffic at all.
#pragma once

#include <coroutine>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hetscale/des/scheduler.hpp"
#include "hetscale/vmpi/payload.hpp"

namespace hetscale::vmpi {

/// Wildcards for Comm::recv.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = 0;
  int tag = 0;
  double bytes = 0.0;           ///< modeled on-the-wire size
  Payload payload;              ///< real data (pooled buffer / scalar / boxed)
  des::SimTime arrival = 0.0;   ///< when the message is fully available

  /// Convenience accessor mirroring the old std::any convention (throws
  /// std::bad_any_cast on a type mismatch, which in practice means
  /// mismatched send/recv code). Buffer payloads are read via
  /// `payload.doubles()` instead.
  template <class T>
  T value() const {
    return payload.as<T>();
  }
};

/// The receive queue of one rank. Exactly one coroutine (the rank itself)
/// ever receives from a mailbox, so at most one waiter is registered.
class Mailbox {
 public:
  explicit Mailbox(des::Scheduler& scheduler) : scheduler_(&scheduler) {}

  /// Point wakes at a different scheduler. The partitioned Machine rebinds
  /// each mailbox to its owning rank's partition scheduler before the run;
  /// must not be called while a receiver is suspended on this mailbox.
  void rebind(des::Scheduler& scheduler) { scheduler_ = &scheduler; }

  /// Deposit a message (called from the sender's coroutine). If the rank is
  /// blocked in recv, its resumption is scheduled at the message's arrival.
  void post(Message message);

  /// Remove and return the first pending message matching (source, tag),
  /// honouring wildcards; messages are matched in post order (MPI's
  /// non-overtaking rule). Arrival times are NOT consulted here — the caller
  /// waits out a future arrival itself. Wildcard-free matches (every
  /// collective and algorithm in the tree) hit a per-(source, tag) FIFO
  /// index — O(1) regardless of how many unrelated messages are pending, so
  /// a flat-collective root at p=4096 no longer pays an O(p) scan per take.
  std::optional<Message> take_match(int source, int tag);

  /// Awaitable: suspend until the next post. Only one waiter may exist.
  /// The (source, tag) the receiver is matching is remembered while it is
  /// suspended, so a deadlocked run can name what every blocked rank was
  /// waiting for (Machine::run's diagnosis).
  auto wait_for_post(int source = kAnySource, int tag = kAnyTag) {
    return WaitAwaiter{*this, source, tag};
  }

  std::size_t pending_count() const { return live_count_; }

  /// The (source, tag) of a receiver currently suspended on this mailbox.
  struct WaitingRecv {
    int source = kAnySource;
    int tag = kAnyTag;
  };
  std::optional<WaitingRecv> waiting_recv() const { return waiting_; }

 private:
  struct WaitAwaiter {
    Mailbox& box;
    int source;
    int tag;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle);
    void await_resume() const noexcept { box.waiting_.reset(); }
  };

  /// Sentinel for a slot whose message was taken: slots tombstone in place
  /// (the index holds positions into pending_, so mid-erase would shift
  /// them) and the whole slab resets when it fully drains — the
  /// overwhelmingly common case between collective phases.
  static constexpr int kConsumedSource = -2;

  /// FIFO of slot positions for one (source, tag) key. `epoch` lazily
  /// invalidates the queue after a full drain without touching the map.
  struct SlotQueue {
    std::vector<std::size_t> slots;
    std::size_t head = 0;
    std::uint64_t epoch = 0;
  };

  static std::uint64_t index_key(int source, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  std::optional<Message> consume(std::size_t slot);
  void reset_slab();

  des::Scheduler* scheduler_;
  /// Pending messages live in [head_, pending_.size()); popping the front
  /// advances head_ past tombstones, and the vector (its capacity is the
  /// slab) resets to index 0 whenever it fully drains.
  std::vector<Message> pending_;
  std::size_t head_ = 0;
  std::size_t live_count_ = 0;
  std::unordered_map<std::uint64_t, SlotQueue> index_;
  std::uint64_t drain_epoch_ = 0;
  std::coroutine_handle<> waiter_;
  std::optional<WaitingRecv> waiting_;
};

}  // namespace hetscale::vmpi
