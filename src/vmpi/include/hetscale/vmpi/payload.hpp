// Payload — the message-plane value type of the virtual MPI runtime.
//
// The previous convention (std::any holding shared_ptr<vector<double>>)
// cost two heap allocations plus an atomic refcount per buffer hop. Payload
// replaces it with a small tagged value:
//
//   * empty        — timing-only traffic (the common case in sweeps);
//   * scalar       — one double, stored inline (reductions, rhs values);
//   * buffer       — a pooled, refcounted block of doubles with span views;
//   * bundle       — a pooled, refcounted vector of per-rank slices (what
//                    the binomial gather/scatter trees ship up and down);
//   * boxed        — a std::any fallback for arbitrary user types.
//
// Buffer and bundle blocks come from thread-local pools (the arena): a
// simulation partition runs entirely on one OS thread, so blocks recycle
// without locks or atomics, copies are a non-atomic refcount bump, and
// steady-state message traffic allocates nothing. Blocks must never be
// *shared* across threads; a partitioned run (Machine with --sim-threads
// > 1) calls detach_for_transfer() on every payload that crosses a
// partition boundary so the receiving thread gets sole ownership. Frees may
// then land on a different thread than the allocation — that is safe (the
// block simply parks on the freeing thread's freelist).
//
// Virtual time and real data stay decoupled (DESIGN.md §6.1): the modeled
// byte count of a message is independent of what its Payload holds.
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "hetscale/support/error.hpp"

namespace hetscale::vmpi {

namespace detail {

/// Header of one pooled buffer block; the doubles follow in the same
/// allocation. `size_class` indexes the arena freelist the block returns to.
struct BufferBlock {
  std::uint32_t refs = 0;
  std::uint32_t size_class = 0;
  std::size_t count = 0;  ///< doubles in use
  BufferBlock* next_free = nullptr;
  double* data() {
    return reinterpret_cast<double*>(reinterpret_cast<char*>(this) +
                                     sizeof(BufferBlock));
  }
  const double* data() const {
    return reinterpret_cast<const double*>(
        reinterpret_cast<const char*>(this) + sizeof(BufferBlock));
  }
};

BufferBlock* arena_acquire(std::size_t count);
void arena_release(BufferBlock* block) noexcept;

/// Header of one pooled bundle block (defined in payload.cpp; it embeds a
/// std::vector<BundlePart>, which needs the complete Payload type).
struct BundleBlock;

BundleBlock* bundle_acquire();
void bundle_add_ref(BundleBlock* block) noexcept;
void bundle_unref(BundleBlock* block) noexcept;

/// Statistics for benchmarks: blocks currently parked on this thread's
/// freelists.
std::size_t arena_parked();
std::size_t bundle_parked();

}  // namespace hetscale::vmpi::detail

struct BundlePart;

class Payload {
 public:
  Payload() noexcept = default;

  /// Scalars are stored inline — no allocation.
  Payload(double scalar) noexcept  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kScalar) {
    scalar_ = scalar;
  }

  /// Box an arbitrary value (compat fallback; allocates). The send/recv
  /// sites of the shipped algorithms all use buffers or scalars — boxing is
  /// for user programs and tests that move custom types.
  template <class T>
    requires(!std::is_same_v<std::decay_t<T>, Payload> &&
             !std::is_same_v<std::decay_t<T>, double>)
  Payload(T&& value)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kBoxed) {
    boxed_ = new std::any(std::forward<T>(value));
  }

  /// An uninitialized pooled buffer of `count` doubles.
  static Payload buffer(std::size_t count) {
    Payload p;
    p.kind_ = Kind::kBuffer;
    p.block_ = detail::arena_acquire(count);
    p.block_->refs = 1;
    return p;
  }

  /// A pooled buffer initialized from `values`.
  static Payload copy_of(std::span<const double> values);

  /// An empty pooled bundle — append BundleParts via bundle_parts(). This is
  /// the native carrier for tree collectives: a parent ships its whole
  /// subtree as one message without boxing (no std::any, no shared_ptr, no
  /// per-hop vector allocation once the pools are warm).
  static Payload make_bundle();

  Payload(const Payload& other) { copy_from(other); }
  Payload& operator=(const Payload& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }
  Payload(Payload&& other) noexcept { steal_from(other); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      reset();
      steal_from(other);
    }
    return *this;
  }
  ~Payload() { reset(); }

  bool empty() const noexcept { return kind_ == Kind::kEmpty; }
  bool is_scalar() const noexcept { return kind_ == Kind::kScalar; }
  bool is_buffer() const noexcept { return kind_ == Kind::kBuffer; }
  bool is_bundle() const noexcept { return kind_ == Kind::kBundle; }
  bool is_boxed() const noexcept { return kind_ == Kind::kBoxed; }

  /// The inline double (requires is_scalar()).
  double scalar() const {
    HETSCALE_REQUIRE(kind_ == Kind::kScalar, "payload holds no scalar");
    return scalar_;
  }

  /// Mutable view of the pooled buffer. An empty payload views as a
  /// zero-length buffer (zero-row blocks are ordinary traffic); scalars and
  /// boxed values refuse.
  std::span<double> doubles() {
    if (kind_ == Kind::kEmpty) return {};
    HETSCALE_REQUIRE(kind_ == Kind::kBuffer, "payload holds no buffer");
    return {block_->data(), block_->count};
  }

  /// Read-only view of the pooled buffer (empty payloads view as length 0).
  std::span<const double> doubles() const {
    if (kind_ == Kind::kEmpty) return {};
    HETSCALE_REQUIRE(kind_ == Kind::kBuffer, "payload holds no buffer");
    return {block_->data(), block_->count};
  }

  /// Buffer length (0 unless is_buffer()).
  std::size_t size() const noexcept {
    return kind_ == Kind::kBuffer ? block_->count : 0;
  }

  /// The bundle's parts (requires is_bundle()). Mutable access is how
  /// collectives build and unpack trees; the vector lives in the pooled
  /// block, so growth amortizes across reuses.
  std::vector<BundlePart>& bundle_parts();
  const std::vector<BundlePart>& bundle_parts() const;

  /// Make every block reachable from this payload uniquely owned by the
  /// caller, deep-copying any block whose refcount is shared (recursing into
  /// bundles). The partitioned Machine calls this on messages that cross a
  /// partition boundary: afterwards the receiving thread can copy/free the
  /// payload without ever touching a refcount another thread can see.
  void detach_for_transfer();

  /// The boxed std::any (requires is_boxed()).
  const std::any& boxed() const {
    HETSCALE_REQUIRE(kind_ == Kind::kBoxed, "payload holds no boxed value");
    return *boxed_;
  }

  /// Typed accessor mirroring the old `std::any_cast` convention:
  /// `as<double>()` reads a scalar (or a boxed double); any other T
  /// any_casts the boxed value and throws std::bad_any_cast on mismatch —
  /// which in practice means mismatched send/recv code.
  template <class T>
  T as() const {
    if constexpr (std::is_same_v<T, double>) {
      if (kind_ == Kind::kScalar) return scalar_;
    }
    if (kind_ != Kind::kBoxed) throw std::bad_any_cast();
    return std::any_cast<T>(*boxed_);
  }

 private:
  enum class Kind : std::uint8_t { kEmpty, kScalar, kBuffer, kBundle, kBoxed };

  void copy_from(const Payload& other) {
    kind_ = other.kind_;
    switch (kind_) {
      case Kind::kEmpty:
        break;
      case Kind::kScalar:
        scalar_ = other.scalar_;
        break;
      case Kind::kBuffer:
        block_ = other.block_;
        ++block_->refs;  // non-atomic: blocks never shared across threads
        break;
      case Kind::kBundle:
        bundle_ = other.bundle_;
        detail::bundle_add_ref(bundle_);
        break;
      case Kind::kBoxed:
        boxed_ = new std::any(*other.boxed_);
        break;
    }
  }

  void steal_from(Payload& other) noexcept {
    kind_ = other.kind_;
    switch (kind_) {
      case Kind::kEmpty:
        break;
      case Kind::kScalar:
        scalar_ = other.scalar_;
        break;
      case Kind::kBuffer:
        block_ = other.block_;
        break;
      case Kind::kBundle:
        bundle_ = other.bundle_;
        break;
      case Kind::kBoxed:
        boxed_ = other.boxed_;
        break;
    }
    other.kind_ = Kind::kEmpty;
  }

  void reset() noexcept {
    if (kind_ == Kind::kBuffer) {
      if (--block_->refs == 0) detail::arena_release(block_);
    } else if (kind_ == Kind::kBundle) {
      detail::bundle_unref(bundle_);
    } else if (kind_ == Kind::kBoxed) {
      delete boxed_;
    }
    kind_ = Kind::kEmpty;
  }

  Kind kind_ = Kind::kEmpty;
  union {
    double scalar_;
    detail::BufferBlock* block_;
    detail::BundleBlock* bundle_;
    std::any* boxed_;
  };
};

/// One rank's slice riding inside a bundle payload: the binomial gather
/// tree accumulates these on the way up, the scatter tree peels them off on
/// the way down. The modeled `bytes` travel with the slice so intermediate
/// hops can charge the network for exactly the data they forward.
struct BundlePart {
  int rank = 0;
  double bytes = 0.0;
  Payload payload;
};

}  // namespace hetscale::vmpi
