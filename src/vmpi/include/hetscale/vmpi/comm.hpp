// Comm — the per-rank communication handle of the virtual-time MPI runtime.
//
// Programming model (mirrors the MPI subset the paper's algorithms use):
//   * one rank per processor (HoHe: process count == processor count),
//   * blocking send / recv with tags and source wildcards,
//   * collectives (bcast, barrier, gather, scatter, reduce) built from
//     point-to-point messages, so their cost comes from the network model.
//
// Timing semantics:
//   * compute(flops) advances this rank's virtual time by flops / rate;
//   * send blocks until the network says the sender is free;
//   * recv completes at max(time recv was called, message arrival).
// With source-specific receives (all algorithms here) these semantics are
// exact. With kAnySource, matching is post-order and completion may be
// conservatively late if a later-posted message would have arrived earlier.
#pragma once

#include <vector>

#include "hetscale/des/task.hpp"
#include "hetscale/net/network.hpp"
#include "hetscale/obs/comm_matrix.hpp"
#include "hetscale/vmpi/message.hpp"

namespace hetscale::vmpi {

class Machine;
class TraceRecorder;

class Comm {
 public:
  Comm(Machine& machine, int rank, int size)
      : machine_(&machine), rank_(rank), size_(size) {}

  /// Rebind the scheduler this rank's time flows through. The Machine wires
  /// this: the shared scheduler at construction, the rank's partition
  /// scheduler for a partitioned (--sim-threads > 1) run.
  void bind_scheduler(des::Scheduler* scheduler) { sched_ = scheduler; }

  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Current virtual time.
  des::SimTime now() const;

  /// Delivered compute rate of this rank's processor (flop/s).
  double rate_flops() const;

  /// Advance virtual time by flops / (rate_flops() * efficiency). The *real*
  /// arithmetic, if any, is done inline by the caller; this charges its cost.
  /// `efficiency` models kernels that sustain more or less than the node's
  /// nominal dense-kernel rate (used by the marked-speed suite).
  des::Task<void> compute(double flops, double efficiency = 1.0);

  /// Blocking send of a message of modeled size `bytes` carrying `payload`.
  des::Task<void> send(int dst, int tag, double bytes, Payload payload);

  /// Handle of a nonblocking send.
  struct SendRequest {
    des::SimTime sender_free = 0.0;  ///< when the sending link is drained
  };

  /// Nonblocking send: the message is injected (the network reserves the
  /// link as usual, so later sends queue behind it) but the caller
  /// continues immediately — computation/communication overlap. Optionally
  /// await wait_send() to synchronize with the link drain (MPI_Wait-like);
  /// fire-and-forget is also valid.
  SendRequest isend(int dst, int tag, double bytes, Payload payload);

  /// Suspend until the nonblocking send's link time has passed.
  des::Task<void> wait_send(const SendRequest& request);

  /// Blocking receive matching (source, tag); wildcards kAnySource/kAnyTag.
  des::Task<Message> recv(int source, int tag);

  // ---- Collectives (see file comment) ----

  /// Root's payload of modeled size `bytes` is delivered to every rank.
  /// The algorithm is the machine's CollectiveTuning choice: short messages
  /// use a binomial tree by default (Θ(log p)) or the paper-era flat tree
  /// under the legacy pin (linear in p, like the measured T_bcast ≈
  /// const·p); messages at or above the machine's large_bcast_threshold use
  /// a scatter+allgather long-message algorithm (van de Geijn scatter+ring
  /// under the legacy pin, binomial scatter + doubling allgather by
  /// default), whose cost is ~2·bytes/B — essential to reproduce MM's
  /// behaviour (DESIGN.md §6).
  des::Task<Payload> bcast(int root, double bytes, Payload payload);

  /// All ranks synchronize. Tuning-selected: flat all-to-root tokens plus a
  /// root release (legacy), a binomial combining tree with binomial release
  /// (default), or a dissemination barrier.
  des::Task<void> barrier();

  /// Every rank contributes (`bytes`, `payload`); the root returns the
  /// vector indexed by rank, other ranks return an empty vector.
  /// Tuning-selected: direct sends to the root (legacy) or subtree bundles
  /// up a binomial tree (default, Θ(log p) rounds).
  des::Task<std::vector<Payload>> gather(int root, double bytes,
                                          Payload payload);

  /// The root distributes parts[r] (modeled size parts_bytes[r]) to rank r;
  /// every rank returns its own part. Tuning-selected: direct sends from
  /// the root (legacy) or subtree bundles down a binomial tree (default).
  des::Task<Payload> scatter(int root, const std::vector<double>& parts_bytes,
                              std::vector<Payload> parts);

  /// Every rank contributes (`bytes`, `payload`); every rank returns the
  /// full vector indexed by rank. Ring algorithm: p-1 rounds of concurrent
  /// neighbour exchanges.
  des::Task<std::vector<Payload>> allgather(double bytes, Payload payload);

  /// Personalized all-to-all: rank r contributes parts[d] for every
  /// destination d (modeled size parts_bytes[d]) and returns the vector of
  /// parts addressed to it, indexed by source. Shifted-pairwise schedule:
  /// p-1 rounds, in round k rank r sends to r+k and receives from r-k.
  des::Task<std::vector<Payload>> alltoall(
      const std::vector<double>& parts_bytes, std::vector<Payload> parts);

  /// Reduction operators over doubles.
  enum class ReduceOp { kSum, kMin, kMax, kProd };

  /// Reduction of a double to the root (others get 0.0). Tuning-selected:
  /// gather p scalars to the root and fold there (legacy — the root
  /// materializes a vector of p payloads), or fold partial results up a
  /// binomial combining tree (default — Θ(log p), O(1) state per rank).
  des::Task<double> reduce(int root, double value, ReduceOp op);

  /// Sum-reduction of a double to the root (others get 0.0).
  des::Task<double> reduce_sum(int root, double value);

  /// Reduction delivered to every rank. Tuning-selected: reduce to rank 0
  /// then broadcast (legacy — two full trips), or a recursive-doubling
  /// butterfly (default — the value lands everywhere in Θ(log p) rounds,
  /// bit-identical across ranks by fixed combine association).
  des::Task<double> allreduce(double value, ReduceOp op);

  /// Sum-reduction delivered to every rank.
  des::Task<double> allreduce_sum(double value);

  /// The machine's trace recorder (null when tracing is off). Group uses
  /// this to annotate its collectives' lanes on the CommMatrix.
  TraceRecorder* tracer() const;

  /// The CommMatrix phase a world-communicator tag implies: the fixed
  /// collective tags map to their phase, everything else is p2p. Group
  /// collectives ride on caller-chosen tags and override per lane instead.
  static obs::CommPhase phase_for_tag(int tag);

 private:
  static constexpr int kTagBcast = 1 << 28;
  static constexpr int kTagBarrierIn = (1 << 28) + 1;
  static constexpr int kTagBarrierOut = (1 << 28) + 2;
  static constexpr int kTagGather = (1 << 28) + 3;
  static constexpr int kTagScatter = (1 << 28) + 4;
  static constexpr int kTagBcastScatter = (1 << 28) + 5;
  static constexpr int kTagBcastRing = (1 << 28) + 6;
  static constexpr int kTagAllgather = (1 << 28) + 7;
  static constexpr int kTagAlltoall = (1 << 28) + 8;
  static constexpr int kTagBarrierDissem = (1 << 28) + 9;
  static constexpr int kTagReduce = (1 << 28) + 10;
  static constexpr int kTagAllreduce = (1 << 28) + 11;
  static constexpr int kTagBcastDoubling = (1 << 28) + 12;

  /// One logical transmission to `dst`, consulting the machine's fault
  /// hooks: under message loss this models the full retry schedule (every
  /// attempt occupies the wire; timeouts back off exponentially) and
  /// returns the *final* attempt's result. Hook-free, it is one transfer.
  net::TransferResult transmit(int dst, double bytes, des::SimTime start);

  des::Task<Payload> bcast_flat(int root, double bytes, Payload payload);
  des::Task<Payload> bcast_binomial(int root, double bytes,
                                     Payload payload);
  des::Task<Payload> bcast_large_ring(int root, double bytes,
                                       Payload payload);
  des::Task<Payload> bcast_large_doubling(int root, double bytes,
                                           Payload payload);
  des::Task<void> barrier_flat();
  des::Task<void> barrier_combining();
  des::Task<void> barrier_dissemination();
  des::Task<std::vector<Payload>> gather_flat(int root, double bytes,
                                               Payload payload);
  des::Task<std::vector<Payload>> gather_binomial(int root, double bytes,
                                                   Payload payload);
  des::Task<Payload> scatter_flat(int root,
                                   const std::vector<double>& parts_bytes,
                                   std::vector<Payload> parts);
  des::Task<Payload> scatter_binomial(int root,
                                       const std::vector<double>& parts_bytes,
                                       std::vector<Payload> parts);
  des::Task<double> reduce_flat(int root, double value, ReduceOp op);
  des::Task<double> reduce_combining(int root, double value, ReduceOp op);
  des::Task<double> allreduce_reduce_bcast(double value, ReduceOp op);
  des::Task<double> allreduce_doubling(double value, ReduceOp op);
  /// Modeled size of a zero-payload control token (MPI header-ish).
  static constexpr double kTokenBytes = 16.0;

  des::Scheduler& scheduler() const { return *sched_; }

  Machine* machine_;
  des::Scheduler* sched_ = nullptr;
  int rank_;
  int size_;
};

}  // namespace hetscale::vmpi
