// Group — a sub-communicator over a subset of a Comm's ranks.
//
// SUMMA broadcasts A-panels along process-grid rows and B-panels along
// columns; neither is a world collective. A Group wraps a Comm plus an
// ordered member list (world ranks) and runs collectives over just those
// members, addressing peers by *group index*.
//
// Tag discipline: group collectives are built from tagged point-to-point
// messages on the world Comm, so concurrent collectives over *overlapping*
// groups must use distinct tags. SUMMA's row groups are pairwise disjoint
// (as are its column groups), so one tag per step suffices for all rows,
// and a second for all columns. Callers own that choice — the tag is an
// explicit parameter, unlike Comm's fixed collective tags.
#pragma once

#include <vector>

#include "hetscale/des/task.hpp"
#include "hetscale/vmpi/comm.hpp"

namespace hetscale::vmpi {

class Group {
 public:
  /// `members` are world ranks, in group-index order; the calling rank must
  /// be one of them. Members must be distinct.
  Group(Comm& comm, std::vector<int> members);

  /// This rank's index within the group.
  int rank() const { return index_; }
  /// Number of members.
  int size() const { return static_cast<int>(members_.size()); }
  /// World rank of the member at a group index.
  int world_rank(int index) const;

  /// Flat-tree broadcast from the member at `root_index`: the root's
  /// payload of modeled size `bytes` is delivered to every member. All
  /// members must call with the same (root_index, tag, bytes).
  des::Task<Payload> bcast(int root_index, int tag, double bytes,
                           Payload payload);

  /// Every member contributes (`bytes`, `payload`); the member at
  /// `root_index` returns the vector indexed by group index, others return
  /// an empty vector.
  des::Task<std::vector<Payload>> gather(int root_index, int tag, double bytes,
                                         Payload payload);

 private:
  Comm* comm_;
  std::vector<int> members_;
  int index_;  ///< this rank's group index
};

}  // namespace hetscale::vmpi
