// Machine — binds a Cluster, a Network, and a Scheduler into a runnable
// virtual parallel computer, and launches SPMD programs on it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hetscale/des/scheduler.hpp"
#include "hetscale/des/task.hpp"
#include "hetscale/des/telemetry.hpp"
#include "hetscale/machine/cluster.hpp"
#include "hetscale/net/network.hpp"
#include "hetscale/obs/profiler.hpp"
#include "hetscale/vmpi/comm.hpp"
#include "hetscale/vmpi/faults.hpp"
#include "hetscale/vmpi/message.hpp"
#include "hetscale/vmpi/trace.hpp"

namespace hetscale::vmpi {

/// Per-rank accounting of where virtual time went.
struct RankStats {
  double compute_s = 0.0;   ///< time inside compute()
  double comm_s = 0.0;      ///< time blocked in send/recv (collectives incl.)
  std::uint64_t messages_sent = 0;
  double bytes_sent = 0.0;
  des::SimTime finish = 0.0;  ///< when this rank's program returned
};

/// Result of one SPMD run.
struct RunResult {
  des::SimTime elapsed = 0.0;  ///< max over ranks of finish time
  std::vector<RankStats> ranks;
  net::NetworkStats network;

  /// Communication overhead in the sense of the paper's T = T_c + T_o
  /// decomposition, taken on the critical path: elapsed minus the largest
  /// per-rank compute time.
  double overhead_s() const;

  /// Aggregate compute seconds across ranks.
  double total_compute_s() const;
};

/// Short-message broadcast algorithm.
enum class BcastAlgorithm {
  kFlatTree,  ///< root sends to each rank in turn — Θ(p), the behaviour the
              ///< paper measured on Sunwulf (T_bcast ≈ const·p)
  kBinomialTree,  ///< Θ(log p) rounds — what modern MPIs do
};

/// Long-message broadcast algorithm (at/above the size threshold).
enum class LargeBcastAlgorithm {
  kScatterRing,      ///< van de Geijn scatter + ring allgather — Θ(p) rounds
  kScatterDoubling,  ///< binomial scatter + Bruck allgather — Θ(log p) rounds
};

/// Barrier algorithm.
enum class BarrierAlgorithm {
  kFlatTree,       ///< all-to-root tokens, then a root release — Θ(p)
  kCombiningTree,  ///< binomial combine to rank 0, binomial release — Θ(log p)
  kDissemination,  ///< ceil(log2 p) rounds of shifted pairwise tokens
};

/// Gather/scatter algorithm (the two are mirror images).
enum class GatherAlgorithm {
  kFlatTree,      ///< every rank exchanges directly with the root — Θ(p)
  kBinomialTree,  ///< subtree bundles up/down a binomial tree — Θ(log p)
};

/// Rooted-reduction algorithm.
enum class ReduceAlgorithm {
  kFlatGather,     ///< gather p scalars to the root, fold there — Θ(p) time
                   ///< and a root-side vector of p payloads
  kCombiningTree,  ///< fold partial results up a binomial tree — Θ(log p),
                   ///< O(1) state per rank
};

/// Allreduce algorithm.
enum class AllreduceAlgorithm {
  kReduceBcast,        ///< reduce to rank 0, then broadcast (two full trips)
  kRecursiveDoubling,  ///< butterfly exchange — Θ(log p), value lands
                       ///< everywhere in one pass
};

/// Tuning knobs of the message-passing runtime itself (not the wire).
///
/// The defaults are the logarithmic tree family — what a modern MPI would
/// run, and what keeps 1k-4k-rank machines affordable. `legacy_flat()` is
/// the paper-era flat family that every golden scenario pins so its
/// artifacts stay byte-identical to the original Sunwulf-calibrated runs.
struct CollectiveTuning {
  BcastAlgorithm small_bcast = BcastAlgorithm::kBinomialTree;
  LargeBcastAlgorithm large_bcast = LargeBcastAlgorithm::kScatterDoubling;
  /// Broadcasts of at least this many bytes switch to the scatter+allgather
  /// long-message path regardless of `small_bcast`. 12288 bytes is MPICH's
  /// historical long-message broadcast threshold.
  double large_bcast_threshold_bytes = 12288.0;
  BarrierAlgorithm barrier = BarrierAlgorithm::kCombiningTree;
  GatherAlgorithm gather = GatherAlgorithm::kBinomialTree;
  GatherAlgorithm scatter = GatherAlgorithm::kBinomialTree;
  ReduceAlgorithm reduce = ReduceAlgorithm::kCombiningTree;
  AllreduceAlgorithm allreduce = AllreduceAlgorithm::kRecursiveDoubling;

  friend bool operator==(const CollectiveTuning&,
                         const CollectiveTuning&) = default;

  /// The paper's measured behaviour: every collective flat/linear.
  static constexpr CollectiveTuning legacy_flat() {
    return {BcastAlgorithm::kFlatTree,
            LargeBcastAlgorithm::kScatterRing,
            12288.0,
            BarrierAlgorithm::kFlatTree,
            GatherAlgorithm::kFlatTree,
            GatherAlgorithm::kFlatTree,
            ReduceAlgorithm::kFlatGather,
            AllreduceAlgorithm::kReduceBcast};
  }

  /// The logarithmic family (the defaults), spelled out for call sites that
  /// want to be explicit.
  static constexpr CollectiveTuning tree() { return {}; }
};

class Machine {
 public:
  /// Takes ownership of the network model. A Machine is pinned in memory
  /// once built (Comms and Mailboxes hold pointers back into it), so the
  /// factories below return through guaranteed copy elision only — which is
  /// why the collective tuning rides the constructor instead of a setter
  /// call on a named temporary.
  Machine(machine::Cluster cluster, std::unique_ptr<net::Network> network,
          const CollectiveTuning& tuning = {});

  /// Convenience: the paper's testbed shape (shared 100 Mb Ethernet).
  static Machine shared_bus(machine::Cluster cluster,
                            net::NetworkParams params = {},
                            const CollectiveTuning& tuning = {});

  /// Convenience: full-bisection switch (ablation).
  static Machine switched(machine::Cluster cluster,
                          net::NetworkParams params = {},
                          const CollectiveTuning& tuning = {});

  int world_size() const { return static_cast<int>(processors_.size()); }
  const machine::Cluster& cluster() const { return cluster_; }
  const machine::Processor& processor(int rank) const;
  net::Network& network() { return *network_; }
  des::Scheduler& scheduler() { return scheduler_; }

  /// Host events processed by the finished run: the sequential scheduler's
  /// count, plus every partition scheduler's when the run was partitioned.
  std::uint64_t events_processed() const;

  Mailbox& mailbox(int rank);
  RankStats& rank_stats(int rank);

  /// OS threads this machine's simulation may use (--sim-threads). New
  /// machines inherit global_sim_threads(); 1 runs the classic sequential
  /// scheduler. With more, run() partitions the ranks across threads and
  /// advances each partition in conservative windows bounded by the
  /// network's lookahead — results are bit-identical to sequential runs.
  /// Runs that are not eligible (zero-lookahead network, tracing/profiling/
  /// fault hooks attached, or several ranks sharing a node) silently fall
  /// back to the sequential path.
  int sim_threads() const { return sim_threads_; }
  void set_sim_threads(int threads);

  /// True while run() is inside the partitioned path (Comm consults this to
  /// reject wildcard receives, whose matching order would depend on how
  /// cross-partition deliveries batch).
  bool partitioned() const { return partitioned_; }

  /// The scheduler driving `rank`: the shared one, or the rank's partition
  /// scheduler inside a partitioned run.
  des::Scheduler& scheduler_for(int rank);

  /// Deliver a message from `src` into `dst`'s mailbox. Sequential runs
  /// post directly. A partitioned run posts same-partition messages
  /// directly too, but parks cross-partition ones in an outbox; they are
  /// drained into the destination at the next window boundary in a
  /// canonical (post-time, source, sequence) order, so delivery order —
  /// and hence every golden artifact — is independent of the thread count.
  void post_message(int src, int dst, Message message);

  const CollectiveTuning& tuning() const { return tuning_; }
  void set_tuning(const CollectiveTuning& tuning) { tuning_ = tuning; }

  /// Turn on execution tracing (before run()); the recorder lives as long
  /// as the machine. Null when tracing is off.
  TraceRecorder& enable_tracing();
  TraceRecorder* tracer() { return tracer_.get(); }

  /// The ambient profiler this machine publishes to, picked up from
  /// obs::current() at construction (null when profiling is off). A
  /// profiled machine traces automatically and appends one obs::RunProfile
  /// when run() completes.
  obs::Profiler* profiler() { return profiler_; }

  /// Attach fault hooks (before run()). Non-owning: the caller keeps the
  /// hooks alive for the run and reads their accounting afterwards. Null
  /// (the default) runs the machine healthy, hook-free.
  void attach_fault_hooks(FaultHooks* hooks);
  FaultHooks* fault_hooks() { return fault_hooks_; }

  /// An SPMD program: called once per rank to create that rank's coroutine.
  using Program = std::function<des::Task<void>(Comm&)>;

  /// Launch `program` on every rank and run the simulation to completion.
  /// A Machine is single-shot: construct a fresh one per run.
  RunResult run(const Program& program);

 private:
  /// One cross-partition message with its canonical delivery key.
  struct Handoff {
    des::SimTime post_time = 0.0;  ///< sender's virtual time at post
    int src = 0;
    int dst = 0;
    std::uint64_t seq = 0;  ///< per-source post counter (total order per src)
    Message message;
  };

  bool partition_eligible() const;
  RunResult run_partitioned(const Program& program, int partitions);
  void deliver_inboxes(int partition);
  [[noreturn]] void rethrow_with_deadlock_diagnosis(
      const des::DeadlockError& deadlock) const;

  machine::Cluster cluster_;
  std::unique_ptr<net::Network> network_;
  des::Scheduler scheduler_;
  std::vector<machine::Processor> processors_;
  std::vector<Mailbox> mailboxes_;
  std::vector<RankStats> stats_;
  std::vector<Comm> comms_;
  CollectiveTuning tuning_;
  std::unique_ptr<TraceRecorder> tracer_;
  FaultHooks* fault_hooks_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  des::QueueTelemetry queue_telemetry_;  ///< bound only when profiled
  bool ran_ = false;

  int sim_threads_ = 1;
  bool partitioned_ = false;
  int partition_count_ = 0;
  std::vector<int> partition_of_;  ///< rank -> partition (contiguous blocks)
  std::vector<std::unique_ptr<des::Scheduler>> partition_schedulers_;
  std::vector<des::Scheduler*> rank_scheduler_;  ///< rank -> its scheduler
  /// outboxes_[src_partition * partition_count_ + dst_partition]: messages
  /// parked between window boundaries. Only the source partition's thread
  /// appends; only the destination's drains — and never concurrently (the
  /// drain happens inside the barrier-fenced delivery phase).
  std::vector<std::vector<Handoff>> outboxes_;
  std::vector<std::uint64_t> handoff_seq_;      ///< per-source post counter
  std::vector<std::vector<Handoff>> inbox_scratch_;  ///< per-partition sort buffer
};

}  // namespace hetscale::vmpi
