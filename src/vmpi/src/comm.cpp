#include "hetscale/vmpi/comm.hpp"

#include <algorithm>
#include <utility>

#include "hetscale/support/error.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {

des::SimTime Comm::now() const { return machine_->scheduler().now(); }

double Comm::rate_flops() const {
  return machine_->processor(rank_).rate_flops;
}

TraceRecorder* Comm::tracer() const { return machine_->tracer(); }

obs::CommPhase Comm::phase_for_tag(int tag) {
  switch (tag) {
    case kTagBcast: return obs::CommPhase::kBcast;
    case kTagBarrierIn:
    case kTagBarrierOut: return obs::CommPhase::kBarrier;
    case kTagGather: return obs::CommPhase::kGather;
    case kTagScatter: return obs::CommPhase::kScatter;
    case kTagBcastScatter: return obs::CommPhase::kBcastScatter;
    case kTagBcastRing: return obs::CommPhase::kBcastRing;
    case kTagAllgather: return obs::CommPhase::kAllgather;
    case kTagAlltoall: return obs::CommPhase::kAlltoall;
    default: return obs::CommPhase::kP2p;
  }
}

des::Task<void> Comm::compute(double flops, double efficiency) {
  HETSCALE_REQUIRE(flops >= 0.0, "flop count must be non-negative");
  HETSCALE_REQUIRE(efficiency > 0.0, "efficiency must be positive");
  const double duration = flops / (rate_flops() * efficiency);
  // compute_s keeps the *healthy* duration even under faults: injected time
  // (slowdown stretch, checkpoints, crash rework) shows up in elapsed and is
  // attributed by the injector's own accounting, so overhead_s() cleanly
  // separates "useful work" from "everything the faults cost".
  machine_->rank_stats(rank_).compute_s += duration;
  const des::SimTime start = now();
  if (auto* hooks = machine_->fault_hooks()) {
    const des::SimTime end = hooks->compute_end(rank_, start, duration);
    HETSCALE_CHECK(end >= start, "fault hooks moved a compute into the past");
    co_await machine_->scheduler().resume_at(end);
  } else {
    co_await machine_->scheduler().delay(duration);
  }
  if (auto* tracer = machine_->tracer()) {
    tracer->record_interval({rank_, TraceInterval::Kind::kCompute, start,
                             now(), -1, 0, 0.0});
  }
}

net::TransferResult Comm::transmit(int dst, double bytes, des::SimTime start) {
  const int src_node = machine_->processor(rank_).node;
  const int dst_node = machine_->processor(dst).node;
  auto* hooks = machine_->fault_hooks();
  if (hooks == nullptr) {
    return machine_->network().transfer(src_node, dst_node, bytes, start);
  }
  const SendFaultPlan plan = hooks->send_faults(rank_);
  HETSCALE_CHECK(plan.attempts >= 1, "a send needs at least one attempt");
  // Each attempt really occupies the wire (lost frames still congest a
  // shared medium); between attempts the sender sits out an exponentially
  // backed-off timeout. Only the final attempt's arrival matters — the
  // earlier frames were dropped.
  des::SimTime depart = start;
  double timeout = plan.retry_timeout_s;
  net::TransferResult result{};
  for (int attempt = 1; attempt <= plan.attempts; ++attempt) {
    result = machine_->network().transfer(src_node, dst_node, bytes, depart);
    if (attempt < plan.attempts) {
      depart = result.sender_free + timeout;
      timeout *= plan.backoff;
    }
  }
  if (depart > start) hooks->record_retry_wait(rank_, depart - start);
  return result;
}

des::Task<void> Comm::send(int dst, int tag, double bytes, Payload payload) {
  HETSCALE_REQUIRE(dst >= 0 && dst < size_, "destination rank out of range");
  HETSCALE_REQUIRE(dst != rank_, "send-to-self is not supported");
  auto& stats = machine_->rank_stats(rank_);
  const des::SimTime start = now();
  const auto result = transmit(dst, bytes, start);
  machine_->mailbox(dst).post(
      Message{rank_, tag, bytes, std::move(payload), result.arrival});
  ++stats.messages_sent;
  stats.bytes_sent += bytes;
  if (result.sender_free > start) {
    co_await machine_->scheduler().resume_at(result.sender_free);
  }
  stats.comm_s += now() - start;
  if (auto* tracer = machine_->tracer()) {
    tracer->record_interval(
        {rank_, TraceInterval::Kind::kSend, start, now(), dst, tag, bytes});
    tracer->record_message({rank_, dst, tag, bytes, start, result.arrival});
    tracer->comm().record_send(
        rank_, dst, tracer->lane_phase_or(rank_, phase_for_tag(tag)), bytes);
  }
}

Comm::SendRequest Comm::isend(int dst, int tag, double bytes,
                              Payload payload) {
  HETSCALE_REQUIRE(dst >= 0 && dst < size_, "destination rank out of range");
  HETSCALE_REQUIRE(dst != rank_, "send-to-self is not supported");
  auto& stats = machine_->rank_stats(rank_);
  const des::SimTime start = now();
  const auto result = transmit(dst, bytes, start);
  machine_->mailbox(dst).post(
      Message{rank_, tag, bytes, std::move(payload), result.arrival});
  ++stats.messages_sent;
  stats.bytes_sent += bytes;
  if (auto* tracer = machine_->tracer()) {
    // The CPU-visible interval is instantaneous; the wire time shows up as
    // the message flow arrow.
    tracer->record_interval(
        {rank_, TraceInterval::Kind::kSend, start, start, dst, tag, bytes});
    tracer->record_message({rank_, dst, tag, bytes, start, result.arrival});
    tracer->comm().record_send(
        rank_, dst, tracer->lane_phase_or(rank_, phase_for_tag(tag)), bytes);
  }
  return SendRequest{result.sender_free};
}

des::Task<void> Comm::wait_send(const SendRequest& request) {
  if (request.sender_free > now()) {
    auto& stats = machine_->rank_stats(rank_);
    const des::SimTime start = now();
    co_await machine_->scheduler().resume_at(request.sender_free);
    stats.comm_s += now() - start;
  }
}

des::Task<Message> Comm::recv(int source, int tag) {
  HETSCALE_REQUIRE(source == kAnySource || (source >= 0 && source < size_),
                   "source rank out of range");
  auto& stats = machine_->rank_stats(rank_);
  const des::SimTime start = now();
  Mailbox& box = machine_->mailbox(rank_);
  for (;;) {
    if (auto message = box.take_match(source, tag)) {
      if (message->arrival > now()) {
        co_await machine_->scheduler().resume_at(message->arrival);
      }
      stats.comm_s += now() - start;
      if (auto* tracer = machine_->tracer()) {
        tracer->record_interval({rank_, TraceInterval::Kind::kRecv, start,
                                 now(), message->source, message->tag,
                                 message->bytes});
        // Receiver-side wait: the whole blocked interval, charged to the
        // cell of the message that released it.
        tracer->comm().record_wait(
            message->source, rank_,
            tracer->lane_phase_or(rank_, phase_for_tag(message->tag)),
            now() - start);
      }
      co_return std::move(*message);
    }
    co_await box.wait_for_post(source, tag);
  }
}

des::Task<Payload> Comm::bcast(int root, double bytes, Payload payload) {
  HETSCALE_REQUIRE(root >= 0 && root < size_, "root rank out of range");
  if (size_ > 1 &&
      bytes >= machine_->tuning().large_bcast_threshold_bytes) {
    return bcast_large(root, bytes, std::move(payload));
  }
  if (machine_->tuning().small_bcast == BcastAlgorithm::kBinomialTree) {
    return bcast_binomial(root, bytes, std::move(payload));
  }
  return bcast_flat(root, bytes, std::move(payload));
}

des::Task<Payload> Comm::bcast_binomial(int root, double bytes,
                                         Payload payload) {
  // Classic binomial tree on virtual ranks (vrank = rank - root mod p):
  // in round k, every rank that already holds the value and whose k-th bit
  // is free sends to vrank + 2^k. Θ(log p) rounds of concurrent sends.
  const int vrank = (rank_ - root + size_) % size_;
  int mask = 1;
  while (mask < size_) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % size_;
      Message message = co_await recv(src, kTagBcast);
      payload = std::move(message.payload);
      break;
    }
    mask <<= 1;
  }
  // After the receive loop, `mask` is the bit on which this rank received
  // (or the first power of two >= p at the root); every lower bit names a
  // subtree this rank is responsible for.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size_) {
      const int dst = ((vrank + mask) + root) % size_;
      co_await send(dst, kTagBcast, bytes, payload);
    }
    mask >>= 1;
  }
  co_return std::move(payload);
}

des::Task<Payload> Comm::bcast_flat(int root, double bytes,
                                     Payload payload) {
  if (rank_ == root) {
    // Flat tree: the root pushes a copy to every other rank in rank order.
    // Root-sourced traffic serializes on the root's link, so this costs
    // Θ(p), matching the paper's measured T_bcast ≈ const · p.
    for (int dst = 0; dst < size_; ++dst) {
      if (dst == root) continue;
      co_await send(dst, kTagBcast, bytes, payload);
    }
    co_return payload;
  }
  Message message = co_await recv(root, kTagBcast);
  co_return std::move(message.payload);
}

des::Task<Payload> Comm::bcast_large(int root, double bytes,
                                      Payload payload) {
  // Van de Geijn long-message broadcast: scatter 1/p-sized chunks from the
  // root, then a ring allgather. Wall time ~ 2·bytes·(p-1)/(p·B) plus Θ(p)
  // latency on a switched network. The *real* payload rides on the scatter
  // messages (each rank needs the whole value); the ring rounds move
  // timing-only chunks.
  const double chunk = bytes / static_cast<double>(size_);
  Payload out;
  if (rank_ == root) {
    for (int dst = 0; dst < size_; ++dst) {
      if (dst == root) continue;
      co_await send(dst, kTagBcastScatter, chunk, payload);
    }
    out = std::move(payload);
  } else {
    Message message = co_await recv(root, kTagBcastScatter);
    out = std::move(message.payload);
  }
  const int next = (rank_ + 1) % size_;
  const int prev = (rank_ - 1 + size_) % size_;
  for (int round = 0; round + 1 < size_; ++round) {
    co_await send(next, kTagBcastRing, chunk, {});
    co_await recv(prev, kTagBcastRing);
  }
  co_return out;
}

des::Task<void> Comm::barrier() {
  // All-to-root token gather, then a root-to-all release — 2(p-1) messages.
  constexpr int kRoot = 0;
  // Explicit open/close (not RAII): the coroutine frame may be destroyed at
  // an unrelated virtual time, so the span must close at the single exit
  // point below, while the rank is still running.
  auto* tracer = machine_->tracer();
  const std::size_t span =
      tracer ? tracer->spans().open(rank_, tracer->barrier_name_id(), now())
             : obs::kNoSpan;
  if (rank_ == kRoot) {
    for (int src = 0; src < size_; ++src) {
      if (src == kRoot) continue;
      co_await recv(src, kTagBarrierIn);
    }
    for (int dst = 0; dst < size_; ++dst) {
      if (dst == kRoot) continue;
      co_await send(dst, kTagBarrierOut, kTokenBytes, {});
    }
  } else {
    co_await send(kRoot, kTagBarrierIn, kTokenBytes, {});
    co_await recv(kRoot, kTagBarrierOut);
  }
  if (tracer) tracer->spans().close(span, now());
}

des::Task<std::vector<Payload>> Comm::gather(int root, double bytes,
                                              Payload payload) {
  HETSCALE_REQUIRE(root >= 0 && root < size_, "root rank out of range");
  if (rank_ != root) {
    co_await send(root, kTagGather, bytes, std::move(payload));
    co_return std::vector<Payload>{};
  }
  std::vector<Payload> parts(static_cast<std::size_t>(size_));
  parts[static_cast<std::size_t>(root)] = std::move(payload);
  for (int src = 0; src < size_; ++src) {
    if (src == root) continue;
    Message message = co_await recv(src, kTagGather);
    parts[static_cast<std::size_t>(src)] = std::move(message.payload);
  }
  co_return parts;
}

des::Task<Payload> Comm::scatter(int root,
                                  const std::vector<double>& parts_bytes,
                                  std::vector<Payload> parts) {
  HETSCALE_REQUIRE(root >= 0 && root < size_, "root rank out of range");
  if (rank_ == root) {
    HETSCALE_REQUIRE(parts.size() == static_cast<std::size_t>(size_) &&
                         parts_bytes.size() == parts.size(),
                     "scatter needs one part per rank at the root");
    for (int dst = 0; dst < size_; ++dst) {
      if (dst == root) continue;
      co_await send(dst, kTagScatter, parts_bytes[static_cast<std::size_t>(dst)],
                    std::move(parts[static_cast<std::size_t>(dst)]));
    }
    co_return std::move(parts[static_cast<std::size_t>(root)]);
  }
  Message message = co_await recv(root, kTagScatter);
  co_return std::move(message.payload);
}

des::Task<std::vector<Payload>> Comm::allgather(double bytes,
                                                 Payload payload) {
  std::vector<Payload> parts(static_cast<std::size_t>(size_));
  parts[static_cast<std::size_t>(rank_)] = std::move(payload);
  if (size_ == 1) co_return parts;
  const int next = (rank_ + 1) % size_;
  const int prev = (rank_ - 1 + size_) % size_;
  // Ring: in round r, pass along the part that originated r hops back.
  for (int round = 0; round < size_ - 1; ++round) {
    const int outgoing = (rank_ - round + size_) % size_;
    const int incoming = (prev - round + size_) % size_;
    co_await send(next, kTagAllgather, bytes,
                  parts[static_cast<std::size_t>(outgoing)]);
    Message message = co_await recv(prev, kTagAllgather);
    parts[static_cast<std::size_t>(incoming)] = std::move(message.payload);
  }
  co_return parts;
}

des::Task<std::vector<Payload>> Comm::alltoall(
    const std::vector<double>& parts_bytes, std::vector<Payload> parts) {
  HETSCALE_REQUIRE(parts.size() == static_cast<std::size_t>(size_) &&
                       parts_bytes.size() == parts.size(),
                   "alltoall needs one part per destination on every rank");
  std::vector<Payload> received(static_cast<std::size_t>(size_));
  received[static_cast<std::size_t>(rank_)] =
      std::move(parts[static_cast<std::size_t>(rank_)]);
  // Sends are buffered, so post them all first (shifted order spreads the
  // traffic) and only then drain the receives — this avoids coupling the
  // rounds, which would make the whole exchange pay for the largest part
  // in every round when part sizes are skewed.
  for (int k = 1; k < size_; ++k) {
    const int dst = (rank_ + k) % size_;
    co_await send(dst, kTagAlltoall,
                  parts_bytes[static_cast<std::size_t>(dst)],
                  std::move(parts[static_cast<std::size_t>(dst)]));
  }
  for (int k = 1; k < size_; ++k) {
    const int src = (rank_ - k + size_) % size_;
    Message message = co_await recv(src, kTagAlltoall);
    received[static_cast<std::size_t>(src)] = std::move(message.payload);
  }
  co_return received;
}

namespace {
double apply_reduce(Comm::ReduceOp op, double a, double b) {
  switch (op) {
    case Comm::ReduceOp::kSum: return a + b;
    case Comm::ReduceOp::kMin: return std::min(a, b);
    case Comm::ReduceOp::kMax: return std::max(a, b);
    case Comm::ReduceOp::kProd: return a * b;
  }
  throw ModelError("unknown reduce op");
}
}  // namespace

des::Task<double> Comm::reduce(int root, double value, ReduceOp op) {
  auto parts = co_await gather(root, /*bytes=*/8.0, value);
  if (rank_ != root) co_return 0.0;
  double accumulated = parts.front().scalar();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    accumulated = apply_reduce(op, accumulated, parts[i].scalar());
  }
  co_return accumulated;
}

des::Task<double> Comm::reduce_sum(int root, double value) {
  return reduce(root, value, ReduceOp::kSum);
}

des::Task<double> Comm::allreduce(double value, ReduceOp op) {
  constexpr int kRoot = 0;
  const double total = co_await reduce(kRoot, value, op);
  Payload payload;  // named local: see ge.cpp on coroutine temporaries
  if (rank_ == kRoot) payload = total;
  const Payload out = co_await bcast(kRoot, /*bytes=*/8.0, std::move(payload));
  co_return out.scalar();
}

des::Task<double> Comm::allreduce_sum(double value) {
  return allreduce(value, ReduceOp::kSum);
}

}  // namespace hetscale::vmpi
