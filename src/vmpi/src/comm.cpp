#include "hetscale/vmpi/comm.hpp"

#include <algorithm>
#include <utility>

#include "hetscale/support/error.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::vmpi {

des::SimTime Comm::now() const { return scheduler().now(); }

double Comm::rate_flops() const {
  return machine_->processor(rank_).rate_flops;
}

TraceRecorder* Comm::tracer() const { return machine_->tracer(); }

obs::CommPhase Comm::phase_for_tag(int tag) {
  switch (tag) {
    case kTagBcast: return obs::CommPhase::kBcast;
    case kTagBarrierIn:
    case kTagBarrierOut:
    case kTagBarrierDissem: return obs::CommPhase::kBarrier;
    case kTagGather: return obs::CommPhase::kGather;
    case kTagScatter: return obs::CommPhase::kScatter;
    case kTagBcastScatter: return obs::CommPhase::kBcastScatter;
    case kTagBcastRing: return obs::CommPhase::kBcastRing;
    case kTagBcastDoubling: return obs::CommPhase::kBcastDoubling;
    case kTagAllgather: return obs::CommPhase::kAllgather;
    case kTagAlltoall: return obs::CommPhase::kAlltoall;
    case kTagReduce: return obs::CommPhase::kReduce;
    case kTagAllreduce: return obs::CommPhase::kAllreduce;
    default: return obs::CommPhase::kP2p;
  }
}

des::Task<void> Comm::compute(double flops, double efficiency) {
  HETSCALE_REQUIRE(flops >= 0.0, "flop count must be non-negative");
  HETSCALE_REQUIRE(efficiency > 0.0, "efficiency must be positive");
  const double duration = flops / (rate_flops() * efficiency);
  // compute_s keeps the *healthy* duration even under faults: injected time
  // (slowdown stretch, checkpoints, crash rework) shows up in elapsed and is
  // attributed by the injector's own accounting, so overhead_s() cleanly
  // separates "useful work" from "everything the faults cost".
  machine_->rank_stats(rank_).compute_s += duration;
  const des::SimTime start = now();
  if (auto* hooks = machine_->fault_hooks()) {
    const des::SimTime end = hooks->compute_end(rank_, start, duration);
    HETSCALE_CHECK(end >= start, "fault hooks moved a compute into the past");
    co_await scheduler().resume_at(end);
  } else {
    co_await scheduler().delay(duration);
  }
  if (auto* tracer = machine_->tracer()) {
    tracer->record_interval({rank_, TraceInterval::Kind::kCompute, start,
                             now(), -1, 0, 0.0});
  }
}

net::TransferResult Comm::transmit(int dst, double bytes, des::SimTime start) {
  const int src_node = machine_->processor(rank_).node;
  const int dst_node = machine_->processor(dst).node;
  auto* hooks = machine_->fault_hooks();
  if (hooks == nullptr) {
    return machine_->network().transfer(src_node, dst_node, bytes, start);
  }
  const SendFaultPlan plan = hooks->send_faults(rank_);
  HETSCALE_CHECK(plan.attempts >= 1, "a send needs at least one attempt");
  // Each attempt really occupies the wire (lost frames still congest a
  // shared medium); between attempts the sender sits out an exponentially
  // backed-off timeout. Only the final attempt's arrival matters — the
  // earlier frames were dropped.
  des::SimTime depart = start;
  double timeout = plan.retry_timeout_s;
  net::TransferResult result{};
  for (int attempt = 1; attempt <= plan.attempts; ++attempt) {
    result = machine_->network().transfer(src_node, dst_node, bytes, depart);
    if (attempt < plan.attempts) {
      depart = result.sender_free + timeout;
      timeout *= plan.backoff;
    }
  }
  if (depart > start) hooks->record_retry_wait(rank_, depart - start);
  return result;
}

des::Task<void> Comm::send(int dst, int tag, double bytes, Payload payload) {
  HETSCALE_REQUIRE(dst >= 0 && dst < size_, "destination rank out of range");
  HETSCALE_REQUIRE(dst != rank_, "send-to-self is not supported");
  auto& stats = machine_->rank_stats(rank_);
  const des::SimTime start = now();
  const auto result = transmit(dst, bytes, start);
  machine_->post_message(
      rank_, dst, Message{rank_, tag, bytes, std::move(payload), result.arrival});
  ++stats.messages_sent;
  stats.bytes_sent += bytes;
  if (result.sender_free > start) {
    co_await scheduler().resume_at(result.sender_free);
  }
  stats.comm_s += now() - start;
  if (auto* tracer = machine_->tracer()) {
    tracer->record_interval(
        {rank_, TraceInterval::Kind::kSend, start, now(), dst, tag, bytes});
    tracer->record_message({rank_, dst, tag, bytes, start, result.arrival});
    tracer->comm().record_send(
        rank_, dst, tracer->lane_phase_or(rank_, phase_for_tag(tag)), bytes);
  }
}

Comm::SendRequest Comm::isend(int dst, int tag, double bytes,
                              Payload payload) {
  HETSCALE_REQUIRE(dst >= 0 && dst < size_, "destination rank out of range");
  HETSCALE_REQUIRE(dst != rank_, "send-to-self is not supported");
  auto& stats = machine_->rank_stats(rank_);
  const des::SimTime start = now();
  const auto result = transmit(dst, bytes, start);
  machine_->post_message(
      rank_, dst, Message{rank_, tag, bytes, std::move(payload), result.arrival});
  ++stats.messages_sent;
  stats.bytes_sent += bytes;
  if (auto* tracer = machine_->tracer()) {
    // The CPU-visible interval is instantaneous; the wire time shows up as
    // the message flow arrow.
    tracer->record_interval(
        {rank_, TraceInterval::Kind::kSend, start, start, dst, tag, bytes});
    tracer->record_message({rank_, dst, tag, bytes, start, result.arrival});
    tracer->comm().record_send(
        rank_, dst, tracer->lane_phase_or(rank_, phase_for_tag(tag)), bytes);
  }
  return SendRequest{result.sender_free};
}

des::Task<void> Comm::wait_send(const SendRequest& request) {
  if (request.sender_free > now()) {
    auto& stats = machine_->rank_stats(rank_);
    const des::SimTime start = now();
    co_await scheduler().resume_at(request.sender_free);
    stats.comm_s += now() - start;
  }
}

des::Task<Message> Comm::recv(int source, int tag) {
  HETSCALE_REQUIRE(source == kAnySource || (source >= 0 && source < size_),
                   "source rank out of range");
  // Partitioned runs batch cross-partition deliveries at window boundaries,
  // so a wildcard's post-order matching would depend on the thread count;
  // source- and tag-specific receives (every collective and algorithm in
  // the tree) match per-sender program order, which is mode-independent.
  HETSCALE_REQUIRE(!machine_->partitioned() ||
                       (source != kAnySource && tag != kAnyTag),
                   "wildcard receives are not supported when --sim-threads "
                   "> 1; receive from a specific (source, tag) instead");
  auto& stats = machine_->rank_stats(rank_);
  const des::SimTime start = now();
  Mailbox& box = machine_->mailbox(rank_);
  for (;;) {
    if (auto message = box.take_match(source, tag)) {
      if (message->arrival > now()) {
        co_await scheduler().resume_at(message->arrival);
      }
      // Receive processing occupies this rank's CPU, so back-to-back
      // receives (incast at a flat-gather root) serialize here. Guarded so
      // the default (0.0) leaves the event schedule untouched.
      const double recv_cost = machine_->network().params().recv_overhead_s;
      if (recv_cost > 0.0) {
        co_await scheduler().delay(recv_cost);
      }
      stats.comm_s += now() - start;
      if (auto* tracer = machine_->tracer()) {
        tracer->record_interval({rank_, TraceInterval::Kind::kRecv, start,
                                 now(), message->source, message->tag,
                                 message->bytes});
        // Receiver-side wait: the whole blocked interval, charged to the
        // cell of the message that released it.
        tracer->comm().record_wait(
            message->source, rank_,
            tracer->lane_phase_or(rank_, phase_for_tag(message->tag)),
            now() - start);
      }
      co_return std::move(*message);
    }
    co_await box.wait_for_post(source, tag);
  }
}

des::Task<Payload> Comm::bcast(int root, double bytes, Payload payload) {
  HETSCALE_REQUIRE(root >= 0 && root < size_, "root rank out of range");
  if (size_ > 1 &&
      bytes >= machine_->tuning().large_bcast_threshold_bytes) {
    if (machine_->tuning().large_bcast ==
        LargeBcastAlgorithm::kScatterDoubling) {
      return bcast_large_doubling(root, bytes, std::move(payload));
    }
    return bcast_large_ring(root, bytes, std::move(payload));
  }
  if (machine_->tuning().small_bcast == BcastAlgorithm::kBinomialTree) {
    return bcast_binomial(root, bytes, std::move(payload));
  }
  return bcast_flat(root, bytes, std::move(payload));
}

des::Task<Payload> Comm::bcast_binomial(int root, double bytes,
                                         Payload payload) {
  // Classic binomial tree on virtual ranks (vrank = rank - root mod p):
  // in round k, every rank that already holds the value and whose k-th bit
  // is free sends to vrank + 2^k. Θ(log p) rounds of concurrent sends.
  const int vrank = (rank_ - root + size_) % size_;
  int mask = 1;
  while (mask < size_) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % size_;
      Message message = co_await recv(src, kTagBcast);
      payload = std::move(message.payload);
      break;
    }
    mask <<= 1;
  }
  // After the receive loop, `mask` is the bit on which this rank received
  // (or the first power of two >= p at the root); every lower bit names a
  // subtree this rank is responsible for.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size_) {
      const int dst = ((vrank + mask) + root) % size_;
      co_await send(dst, kTagBcast, bytes, payload);
    }
    mask >>= 1;
  }
  co_return std::move(payload);
}

des::Task<Payload> Comm::bcast_flat(int root, double bytes,
                                     Payload payload) {
  if (rank_ == root) {
    // Flat tree: the root pushes a copy to every other rank in rank order.
    // Root-sourced traffic serializes on the root's link, so this costs
    // Θ(p), matching the paper's measured T_bcast ≈ const · p.
    for (int dst = 0; dst < size_; ++dst) {
      if (dst == root) continue;
      co_await send(dst, kTagBcast, bytes, payload);
    }
    co_return payload;
  }
  Message message = co_await recv(root, kTagBcast);
  co_return std::move(message.payload);
}

des::Task<Payload> Comm::bcast_large_ring(int root, double bytes,
                                           Payload payload) {
  // Van de Geijn long-message broadcast: scatter 1/p-sized chunks from the
  // root, then a ring allgather. Wall time ~ 2·bytes·(p-1)/(p·B) plus Θ(p)
  // latency on a switched network. The *real* payload rides on the scatter
  // messages (each rank needs the whole value); the ring rounds move
  // timing-only chunks.
  const double chunk = bytes / static_cast<double>(size_);
  Payload out;
  if (rank_ == root) {
    for (int dst = 0; dst < size_; ++dst) {
      if (dst == root) continue;
      co_await send(dst, kTagBcastScatter, chunk, payload);
    }
    out = std::move(payload);
  } else {
    Message message = co_await recv(root, kTagBcastScatter);
    out = std::move(message.payload);
  }
  const int next = (rank_ + 1) % size_;
  const int prev = (rank_ - 1 + size_) % size_;
  for (int round = 0; round + 1 < size_; ++round) {
    co_await send(next, kTagBcastRing, chunk, {});
    co_await recv(prev, kTagBcastRing);
  }
  co_return out;
}

des::Task<Payload> Comm::bcast_large_doubling(int root, double bytes,
                                               Payload payload) {
  // Logarithmic long-message broadcast: binomial scatter of 1/p-sized
  // chunks, then a Bruck-style doubling allgather — ~2·bytes/B total wire
  // time in Θ(log p) rounds, against the ring's Θ(p). As in the ring
  // variant, the *real* payload rides the scatter messages (each rank needs
  // the whole value); the allgather rounds move timing-only chunks.
  const double chunk = bytes / static_cast<double>(size_);
  const int vrank = (rank_ - root + size_) % size_;
  Payload out;
  int mask = 1;
  if (vrank == 0) {
    out = std::move(payload);
    while (mask < size_) mask <<= 1;
  } else {
    while (!(vrank & mask)) mask <<= 1;
    const int src = ((vrank - mask) + root) % size_;
    Message message = co_await recv(src, kTagBcastScatter);
    out = std::move(message.payload);
  }
  // Forward chunk bundles to each binomial subtree; the modeled size is the
  // subtree's share of the chunks.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size_) {
      const int len = std::min(mask, size_ - (vrank + mask));
      const int dst = ((vrank + mask) + root) % size_;
      co_await send(dst, kTagBcastScatter, chunk * len, out);
    }
    mask >>= 1;
  }
  // Doubling allgather: in round k every rank owns 2^k chunks and swaps
  // them with the rank 2^k away, so all p chunks land everywhere after
  // ceil(log2 p) rounds.
  for (int dist = 1; dist < size_; dist <<= 1) {
    const int blocks = std::min(dist, size_ - dist);
    const int dst = (rank_ - dist + size_) % size_;
    const int src = (rank_ + dist) % size_;
    co_await send(dst, kTagBcastDoubling, chunk * blocks, {});
    co_await recv(src, kTagBcastDoubling);
  }
  co_return out;
}

des::Task<void> Comm::barrier() {
  // Explicit open/close (not RAII): the coroutine frame may be destroyed at
  // an unrelated virtual time, so the span must close at the single exit
  // point below, while the rank is still running.
  auto* tracer = machine_->tracer();
  const std::size_t span =
      tracer ? tracer->spans().open(rank_, tracer->barrier_name_id(), now())
             : obs::kNoSpan;
  switch (machine_->tuning().barrier) {
    case BarrierAlgorithm::kFlatTree:
      co_await barrier_flat();
      break;
    case BarrierAlgorithm::kCombiningTree:
      co_await barrier_combining();
      break;
    case BarrierAlgorithm::kDissemination:
      co_await barrier_dissemination();
      break;
  }
  if (tracer) tracer->spans().close(span, now());
}

des::Task<void> Comm::barrier_flat() {
  // All-to-root token gather, then a root-to-all release — 2(p-1) messages,
  // both legs serialized on the root.
  constexpr int kRoot = 0;
  if (rank_ == kRoot) {
    for (int src = 0; src < size_; ++src) {
      if (src == kRoot) continue;
      co_await recv(src, kTagBarrierIn);
    }
    for (int dst = 0; dst < size_; ++dst) {
      if (dst == kRoot) continue;
      co_await send(dst, kTagBarrierOut, kTokenBytes, {});
    }
  } else {
    co_await send(kRoot, kTagBarrierIn, kTokenBytes, {});
    co_await recv(kRoot, kTagBarrierOut);
  }
}

des::Task<void> Comm::barrier_combining() {
  // Binomial combine of tokens to rank 0, then a binomial release — still
  // 2(p-1) messages, but Θ(log p) rounds on each leg.
  int mask = 1;
  while (mask < size_) {
    if (rank_ & mask) {
      co_await send(rank_ - mask, kTagBarrierIn, kTokenBytes, {});
      break;
    }
    if (rank_ + mask < size_) co_await recv(rank_ + mask, kTagBarrierIn);
    mask <<= 1;
  }
  // `mask` is the bit this rank combined up on (or the first power of two
  // >= p at rank 0); every lower bit names a subtree to release.
  if (rank_ != 0) co_await recv(rank_ - mask, kTagBarrierOut);
  mask >>= 1;
  while (mask > 0) {
    if (rank_ + mask < size_) {
      co_await send(rank_ + mask, kTagBarrierOut, kTokenBytes, {});
    }
    mask >>= 1;
  }
}

des::Task<void> Comm::barrier_dissemination() {
  // Dissemination barrier: in round k every rank sends a token to the rank
  // 2^k ahead and waits on the rank 2^k behind — ceil(log2 p) fully
  // concurrent rounds, no root at all. Distances are distinct powers of two
  // below p, so every (source, round) pair a rank waits on is unique and
  // source-specific receives cannot mismatch across rounds.
  for (int dist = 1; dist < size_; dist <<= 1) {
    const int dst = (rank_ + dist) % size_;
    const int src = (rank_ - dist + size_) % size_;
    co_await send(dst, kTagBarrierDissem, kTokenBytes, {});
    co_await recv(src, kTagBarrierDissem);
  }
}

des::Task<std::vector<Payload>> Comm::gather(int root, double bytes,
                                              Payload payload) {
  HETSCALE_REQUIRE(root >= 0 && root < size_, "root rank out of range");
  if (machine_->tuning().gather == GatherAlgorithm::kBinomialTree) {
    return gather_binomial(root, bytes, std::move(payload));
  }
  return gather_flat(root, bytes, std::move(payload));
}

des::Task<std::vector<Payload>> Comm::gather_flat(int root, double bytes,
                                                   Payload payload) {
  if (rank_ != root) {
    co_await send(root, kTagGather, bytes, std::move(payload));
    co_return std::vector<Payload>{};
  }
  std::vector<Payload> parts(static_cast<std::size_t>(size_));
  parts[static_cast<std::size_t>(root)] = std::move(payload);
  for (int src = 0; src < size_; ++src) {
    if (src == root) continue;
    Message message = co_await recv(src, kTagGather);
    parts[static_cast<std::size_t>(src)] = std::move(message.payload);
  }
  co_return parts;
}

des::Task<std::vector<Payload>> Comm::gather_binomial(int root, double bytes,
                                                       Payload payload) {
  // Mirror image of bcast_binomial on virtual ranks: in round k, every rank
  // whose k-th bit is set sends its accumulated subtree bundle to
  // vrank - 2^k and is done; the rest absorb the bundle arriving from
  // vrank + 2^k. p-1 messages in Θ(log p) rounds; the modeled size of a
  // bundle is the sum of its members' contributions.
  const int vrank = (rank_ - root + size_) % size_;
  Payload bundle = Payload::make_bundle();
  bundle.bundle_parts().push_back(BundlePart{rank_, bytes, std::move(payload)});
  double bundle_bytes = bytes;
  int mask = 1;
  while (mask < size_) {
    if (vrank & mask) {
      const int dst = ((vrank - mask) + root) % size_;
      co_await send(dst, kTagGather, bundle_bytes, std::move(bundle));
      co_return std::vector<Payload>{};
    }
    if (vrank + mask < size_) {
      const int src = ((vrank + mask) + root) % size_;
      Message message = co_await recv(src, kTagGather);
      std::vector<BundlePart>& sub = message.payload.bundle_parts();
      std::vector<BundlePart>& parts = bundle.bundle_parts();
      for (BundlePart& part : sub) parts.push_back(std::move(part));
      bundle_bytes += message.bytes;
    }
    mask <<= 1;
  }
  std::vector<Payload> parts(static_cast<std::size_t>(size_));
  for (BundlePart& part : bundle.bundle_parts()) {
    parts[static_cast<std::size_t>(part.rank)] = std::move(part.payload);
  }
  co_return parts;
}

des::Task<Payload> Comm::scatter(int root,
                                  const std::vector<double>& parts_bytes,
                                  std::vector<Payload> parts) {
  HETSCALE_REQUIRE(root >= 0 && root < size_, "root rank out of range");
  if (rank_ == root) {
    HETSCALE_REQUIRE(parts.size() == static_cast<std::size_t>(size_) &&
                         parts_bytes.size() == parts.size(),
                     "scatter needs one part per rank at the root");
  }
  if (machine_->tuning().scatter == GatherAlgorithm::kBinomialTree) {
    return scatter_binomial(root, parts_bytes, std::move(parts));
  }
  return scatter_flat(root, parts_bytes, std::move(parts));
}

des::Task<Payload> Comm::scatter_flat(int root,
                                       const std::vector<double>& parts_bytes,
                                       std::vector<Payload> parts) {
  if (rank_ == root) {
    for (int dst = 0; dst < size_; ++dst) {
      if (dst == root) continue;
      co_await send(dst, kTagScatter, parts_bytes[static_cast<std::size_t>(dst)],
                    std::move(parts[static_cast<std::size_t>(dst)]));
    }
    co_return std::move(parts[static_cast<std::size_t>(root)]);
  }
  Message message = co_await recv(root, kTagScatter);
  co_return std::move(message.payload);
}

des::Task<Payload> Comm::scatter_binomial(
    int root, const std::vector<double>& parts_bytes,
    std::vector<Payload> parts) {
  // Reverse of gather_binomial: each rank first receives the bundle for its
  // whole binomial subtree (on its lowest set vrank bit), keeps its own
  // part, then peels off and forwards the sub-bundles for each child
  // subtree. Bundles are ordered by vrank, so a subtree rooted at vrank v
  // with span m holds the parts for vranks [v, v+m) at indices [0, m).
  const int vrank = (rank_ - root + size_) % size_;
  Payload bundle;
  Payload mine;
  int mask = 1;
  if (vrank == 0) {
    bundle = Payload::make_bundle();
    std::vector<BundlePart>& all = bundle.bundle_parts();
    all.reserve(static_cast<std::size_t>(size_));
    for (int v = 0; v < size_; ++v) {
      const int r = (v + root) % size_;
      all.push_back(BundlePart{r, parts_bytes[static_cast<std::size_t>(r)],
                               std::move(parts[static_cast<std::size_t>(r)])});
    }
    while (mask < size_) mask <<= 1;
  } else {
    while (!(vrank & mask)) mask <<= 1;
    const int src = ((vrank - mask) + root) % size_;
    Message message = co_await recv(src, kTagScatter);
    bundle = std::move(message.payload);
  }
  mine = std::move(bundle.bundle_parts().front().payload);
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size_) {
      const int len = std::min(mask, size_ - (vrank + mask));
      Payload child = Payload::make_bundle();
      std::vector<BundlePart>& child_parts = child.bundle_parts();
      child_parts.reserve(static_cast<std::size_t>(len));
      double child_bytes = 0.0;
      for (int i = 0; i < len; ++i) {
        BundlePart& part = bundle.bundle_parts()[static_cast<std::size_t>(mask + i)];
        child_bytes += part.bytes;
        child_parts.push_back(std::move(part));
      }
      const int dst = ((vrank + mask) + root) % size_;
      co_await send(dst, kTagScatter, child_bytes, std::move(child));
    }
    mask >>= 1;
  }
  co_return std::move(mine);
}

des::Task<std::vector<Payload>> Comm::allgather(double bytes,
                                                 Payload payload) {
  std::vector<Payload> parts(static_cast<std::size_t>(size_));
  parts[static_cast<std::size_t>(rank_)] = std::move(payload);
  if (size_ == 1) co_return parts;
  const int next = (rank_ + 1) % size_;
  const int prev = (rank_ - 1 + size_) % size_;
  // Ring: in round r, pass along the part that originated r hops back.
  for (int round = 0; round < size_ - 1; ++round) {
    const int outgoing = (rank_ - round + size_) % size_;
    const int incoming = (prev - round + size_) % size_;
    co_await send(next, kTagAllgather, bytes,
                  parts[static_cast<std::size_t>(outgoing)]);
    Message message = co_await recv(prev, kTagAllgather);
    parts[static_cast<std::size_t>(incoming)] = std::move(message.payload);
  }
  co_return parts;
}

des::Task<std::vector<Payload>> Comm::alltoall(
    const std::vector<double>& parts_bytes, std::vector<Payload> parts) {
  HETSCALE_REQUIRE(parts.size() == static_cast<std::size_t>(size_) &&
                       parts_bytes.size() == parts.size(),
                   "alltoall needs one part per destination on every rank");
  std::vector<Payload> received(static_cast<std::size_t>(size_));
  received[static_cast<std::size_t>(rank_)] =
      std::move(parts[static_cast<std::size_t>(rank_)]);
  // Sends are buffered, so post them all first (shifted order spreads the
  // traffic) and only then drain the receives — this avoids coupling the
  // rounds, which would make the whole exchange pay for the largest part
  // in every round when part sizes are skewed.
  for (int k = 1; k < size_; ++k) {
    const int dst = (rank_ + k) % size_;
    co_await send(dst, kTagAlltoall,
                  parts_bytes[static_cast<std::size_t>(dst)],
                  std::move(parts[static_cast<std::size_t>(dst)]));
  }
  for (int k = 1; k < size_; ++k) {
    const int src = (rank_ - k + size_) % size_;
    Message message = co_await recv(src, kTagAlltoall);
    received[static_cast<std::size_t>(src)] = std::move(message.payload);
  }
  co_return received;
}

namespace {
double apply_reduce(Comm::ReduceOp op, double a, double b) {
  switch (op) {
    case Comm::ReduceOp::kSum: return a + b;
    case Comm::ReduceOp::kMin: return std::min(a, b);
    case Comm::ReduceOp::kMax: return std::max(a, b);
    case Comm::ReduceOp::kProd: return a * b;
  }
  throw ModelError("unknown reduce op");
}
}  // namespace

des::Task<double> Comm::reduce(int root, double value, ReduceOp op) {
  HETSCALE_REQUIRE(root >= 0 && root < size_, "root rank out of range");
  if (machine_->tuning().reduce == ReduceAlgorithm::kCombiningTree) {
    return reduce_combining(root, value, op);
  }
  return reduce_flat(root, value, op);
}

des::Task<double> Comm::reduce_flat(int root, double value, ReduceOp op) {
  // The paper-era shape: gather p scalars to the root (the root really
  // materializes a vector of p payloads) and fold them in rank order.
  auto parts = co_await gather(root, /*bytes=*/8.0, value);
  if (rank_ != root) co_return 0.0;
  double accumulated = parts.front().scalar();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    accumulated = apply_reduce(op, accumulated, parts[i].scalar());
  }
  co_return accumulated;
}

des::Task<double> Comm::reduce_combining(int root, double value,
                                          ReduceOp op) {
  // Binomial combining tree on virtual ranks: partial results fold upward,
  // so every rank holds O(1) state and the root sees ceil(log2 p) messages.
  // The combine is always op(lower subtree, higher subtree), a fixed
  // association — deterministic, though (for floats) a different one than
  // the flat rank-order fold.
  const int vrank = (rank_ - root + size_) % size_;
  double accumulated = value;
  int mask = 1;
  while (mask < size_) {
    if (vrank & mask) {
      const int dst = ((vrank - mask) + root) % size_;
      co_await send(dst, kTagReduce, /*bytes=*/8.0, Payload(accumulated));
      co_return 0.0;
    }
    if (vrank + mask < size_) {
      const int src = ((vrank + mask) + root) % size_;
      Message message = co_await recv(src, kTagReduce);
      accumulated = apply_reduce(op, accumulated, message.payload.scalar());
    }
    mask <<= 1;
  }
  co_return accumulated;
}

des::Task<double> Comm::reduce_sum(int root, double value) {
  return reduce(root, value, ReduceOp::kSum);
}

des::Task<double> Comm::allreduce(double value, ReduceOp op) {
  if (machine_->tuning().allreduce == AllreduceAlgorithm::kRecursiveDoubling) {
    return allreduce_doubling(value, op);
  }
  return allreduce_reduce_bcast(value, op);
}

des::Task<double> Comm::allreduce_reduce_bcast(double value, ReduceOp op) {
  constexpr int kRoot = 0;
  const double total = co_await reduce(kRoot, value, op);
  Payload payload;  // named local: see ge.cpp on coroutine temporaries
  if (rank_ == kRoot) payload = total;
  const Payload out = co_await bcast(kRoot, /*bytes=*/8.0, std::move(payload));
  co_return out.scalar();
}

des::Task<double> Comm::allreduce_doubling(double value, ReduceOp op) {
  // Recursive-doubling butterfly. Non-power-of-two p folds the ranks past
  // the largest power of two into mirrors first and unfolds at the end
  // (MPICH's scheme). In every exchange the combine is op(lower rank's
  // value, higher rank's value), so each block of ranks carries one fixed
  // association and the result is bit-identical on every rank.
  if (size_ == 1) co_return value;
  int pof2 = 1;
  while (pof2 * 2 <= size_) pof2 *= 2;
  const int rem = size_ - pof2;
  double accumulated = value;
  if (rank_ >= pof2) {
    co_await send(rank_ - pof2, kTagAllreduce, /*bytes=*/8.0,
                  Payload(accumulated));
  } else {
    if (rank_ < rem) {
      Message message = co_await recv(rank_ + pof2, kTagAllreduce);
      accumulated = apply_reduce(op, accumulated, message.payload.scalar());
    }
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner = rank_ ^ mask;
      co_await send(partner, kTagAllreduce, /*bytes=*/8.0,
                    Payload(accumulated));
      Message message = co_await recv(partner, kTagAllreduce);
      const double theirs = message.payload.scalar();
      accumulated = partner < rank_
                        ? apply_reduce(op, theirs, accumulated)
                        : apply_reduce(op, accumulated, theirs);
    }
  }
  if (rank_ >= pof2) {
    Message message = co_await recv(rank_ - pof2, kTagAllreduce);
    accumulated = message.payload.scalar();
  } else if (rank_ < rem) {
    co_await send(rank_ + pof2, kTagAllreduce, /*bytes=*/8.0,
                  Payload(accumulated));
  }
  co_return accumulated;
}

des::Task<double> Comm::allreduce_sum(double value) {
  return allreduce(value, ReduceOp::kSum);
}

}  // namespace hetscale::vmpi
