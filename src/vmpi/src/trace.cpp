#include "hetscale/vmpi/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "hetscale/support/error.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::vmpi {

namespace {

const char* kind_name(TraceInterval::Kind kind) {
  switch (kind) {
    case TraceInterval::Kind::kCompute: return "compute";
    case TraceInterval::Kind::kSend: return "send";
    case TraceInterval::Kind::kRecv: return "recv";
  }
  return "?";
}

double to_us(des::SimTime t) { return t * 1e6; }

}  // namespace

void TraceRecorder::record_interval(TraceInterval interval) {
  HETSCALE_REQUIRE(interval.end >= interval.begin,
                   "interval must not end before it begins");
  intervals_.push_back(interval);
}

void TraceRecorder::record_message(TraceMessage message) {
  HETSCALE_REQUIRE(message.arrive >= message.depart,
                   "message must not arrive before departing");
  messages_.push_back(message);
}

std::string TraceRecorder::chrome_trace_json() const {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const auto& interval : intervals_) {
    sep();
    os << R"({"name":")" << kind_name(interval.kind)
       << R"(","ph":"X","pid":0,"tid":)" << interval.rank
       << R"(,"ts":)" << to_us(interval.begin)
       << R"(,"dur":)" << to_us(interval.end - interval.begin);
    if (interval.kind != TraceInterval::Kind::kCompute) {
      os << R"(,"args":{"peer":)" << interval.peer << R"(,"tag":)"
         << interval.tag << R"(,"bytes":)" << interval.bytes << "}";
    }
    os << "}";
  }
  // Flow arrows: an "s" event at the sender's depart, an "f" event at the
  // receiver's arrival, joined by a unique id.
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    const auto& m = messages_[i];
    sep();
    os << R"({"name":"msg","ph":"s","id":)" << i
       << R"(,"pid":0,"tid":)" << m.source << R"(,"ts":)" << to_us(m.depart)
       << "}";
    sep();
    os << R"({"name":"msg","ph":"f","bp":"e","id":)" << i
       << R"(,"pid":0,"tid":)" << m.destination << R"(,"ts":)"
       << to_us(m.arrive) << "}";
  }
  os << "\n]\n";
  return os.str();
}

std::string TraceRecorder::utilization_table(des::SimTime horizon) const {
  HETSCALE_REQUIRE(horizon > 0.0, "horizon must be positive");
  struct Bucket {
    double compute = 0.0;
    double comm = 0.0;
  };
  std::map<int, Bucket> per_rank;
  for (const auto& interval : intervals_) {
    auto& bucket = per_rank[interval.rank];
    const double duration = interval.end - interval.begin;
    if (interval.kind == TraceInterval::Kind::kCompute) {
      bucket.compute += duration;
    } else {
      bucket.comm += duration;
    }
  }
  Table table("Per-rank virtual-time utilization");
  table.set_header({"rank", "compute %", "comm %", "idle %"});
  for (const auto& [rank, bucket] : per_rank) {
    const double compute = 100.0 * bucket.compute / horizon;
    const double comm = 100.0 * bucket.comm / horizon;
    table.add_row({std::to_string(rank), Table::fixed(compute, 1),
                   Table::fixed(comm, 1),
                   Table::fixed(std::max(0.0, 100.0 - compute - comm), 1)});
  }
  return table.str();
}

}  // namespace hetscale::vmpi
