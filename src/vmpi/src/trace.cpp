#include "hetscale/vmpi/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "hetscale/obs/format.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::vmpi {

namespace {

double to_us(des::SimTime t) { return t * 1e6; }

}  // namespace

TraceRecorder::TraceRecorder()
    : compute_id_(spans_.intern("compute")),
      send_id_(spans_.intern("send.wait")),
      recv_id_(spans_.intern("recv.wait")),
      barrier_id_(spans_.intern("barrier")) {}

void TraceRecorder::record_interval(TraceInterval interval) {
  HETSCALE_REQUIRE(interval.end >= interval.begin,
                   "interval must not end before it begins");
  int name_id = compute_id_;
  switch (interval.kind) {
    case TraceInterval::Kind::kCompute: name_id = compute_id_; break;
    case TraceInterval::Kind::kSend: name_id = send_id_; break;
    case TraceInterval::Kind::kRecv: name_id = recv_id_; break;
  }
  spans_.record(interval.rank, name_id, interval.begin, interval.end,
                interval.peer, interval.tag, interval.bytes);
}

void TraceRecorder::record_message(TraceMessage message) {
  HETSCALE_REQUIRE(message.arrive >= message.depart,
                   "message must not arrive before departing");
  messages_.push_back(message);
}

void TraceRecorder::set_lane_phase(int lane, obs::CommPhase phase) {
  lane_phase_[lane] = phase;
}

void TraceRecorder::clear_lane_phase(int lane) { lane_phase_.erase(lane); }

obs::CommPhase TraceRecorder::lane_phase_or(int lane,
                                            obs::CommPhase fallback) const {
  const auto it = lane_phase_.find(lane);
  return it == lane_phase_.end() ? fallback : it->second;
}

std::vector<obs::PathMessage> TraceRecorder::path_messages() const {
  std::vector<obs::PathMessage> out;
  out.reserve(messages_.size());
  for (const TraceMessage& m : messages_) {
    out.push_back(obs::PathMessage{m.source, m.destination, m.tag, m.bytes,
                                   m.depart, m.arrive});
  }
  return out;
}

std::vector<TraceInterval> TraceRecorder::intervals() const {
  std::vector<TraceInterval> out;
  out.reserve(spans_.spans().size());
  for (const obs::Span& span : spans_.spans()) {
    if (span.end < span.begin) continue;  // left open (deadlocked run)
    TraceInterval::Kind kind;
    if (span.name_id == compute_id_) {
      kind = TraceInterval::Kind::kCompute;
    } else if (span.name_id == send_id_) {
      kind = TraceInterval::Kind::kSend;
    } else if (span.name_id == recv_id_) {
      kind = TraceInterval::Kind::kRecv;
    } else {
      continue;  // structural span (barrier) or fault charge
    }
    out.push_back(TraceInterval{span.lane, kind, span.begin, span.end,
                                span.peer, span.tag, span.bytes});
  }
  return out;
}

std::string TraceRecorder::chrome_trace_json() const {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const obs::Span& span : spans_.spans()) {
    if (span.end < span.begin) continue;  // left open (deadlocked run)
    sep();
    os << R"({"name":")" << obs::json_escape(spans_.name(span.name_id))
       << R"(","ph":"X","pid":0,"tid":)" << span.lane
       << R"(,"ts":)" << to_us(span.begin)
       << R"(,"dur":)" << to_us(span.end - span.begin);
    if (span.peer >= 0) {
      os << R"(,"args":{"peer":)" << span.peer << R"(,"tag":)" << span.tag
         << R"(,"bytes":)" << span.bytes << "}";
    }
    os << "}";
  }
  // Flow arrows: an "s" event at the sender's depart, an "f" event at the
  // receiver's arrival, joined by a unique id.
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    const auto& m = messages_[i];
    sep();
    os << R"({"name":"msg","ph":"s","id":)" << i
       << R"(,"pid":0,"tid":)" << m.source << R"(,"ts":)" << to_us(m.depart)
       << "}";
    sep();
    os << R"({"name":"msg","ph":"f","bp":"e","id":)" << i
       << R"(,"pid":0,"tid":)" << m.destination << R"(,"ts":)"
       << to_us(m.arrive) << "}";
  }
  // CommMatrix heat rows: one counter track per sending rank, one series
  // per (dst, phase) cell, in canonical cell order. Only emitted when the
  // matrix has cells, so a bare recorder still renders "[]".
  if (!comm_.empty()) {
    for (const obs::CommCell& cell : comm_.cells()) {
      sep();
      os << R"({"name":"comm.bytes","ph":"C","pid":0,"tid":)" << cell.src
         << R"(,"ts":0,"args":{"to )" << cell.dst << ' '
         << obs::comm_phase_name(static_cast<obs::CommPhase>(cell.phase))
         << R"(":)" << cell.bytes << "}}";
    }
  }
  os << (first ? "]\n" : "\n]\n");
  return os.str();
}

std::string TraceRecorder::utilization_table(des::SimTime horizon) const {
  HETSCALE_REQUIRE(horizon > 0.0, "horizon must be positive");
  struct Bucket {
    double compute = 0.0;
    double comm = 0.0;
  };
  std::map<int, Bucket> per_rank;
  for (const auto& interval : intervals()) {
    auto& bucket = per_rank[interval.rank];
    const double duration = interval.end - interval.begin;
    if (interval.kind == TraceInterval::Kind::kCompute) {
      bucket.compute += duration;
    } else {
      bucket.comm += duration;
    }
  }
  Table table("Per-rank virtual-time utilization");
  table.set_header({"rank", "compute %", "comm %", "idle %"});
  for (const auto& [rank, bucket] : per_rank) {
    const double compute = 100.0 * bucket.compute / horizon;
    const double comm = 100.0 * bucket.comm / horizon;
    table.add_row({std::to_string(rank), Table::fixed(compute, 1),
                   Table::fixed(comm, 1),
                   Table::fixed(std::max(0.0, 100.0 - compute - comm), 1)});
  }
  return table.str();
}

}  // namespace hetscale::vmpi
