#include "hetscale/vmpi/machine.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>

#include "hetscale/des/frame_pool.hpp"
#include "hetscale/des/parallel.hpp"
#include "hetscale/net/shared_bus.hpp"
#include "hetscale/net/switched.hpp"
#include "hetscale/obs/budget.hpp"
#include "hetscale/obs/critical_path.hpp"
#include "hetscale/support/args.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::vmpi {

double RunResult::overhead_s() const {
  double max_compute = 0.0;
  for (const auto& r : ranks) max_compute = std::max(max_compute, r.compute_s);
  return std::max(0.0, elapsed - max_compute);
}

double RunResult::total_compute_s() const {
  double total = 0.0;
  for (const auto& r : ranks) total += r.compute_s;
  return total;
}

Machine::Machine(machine::Cluster cluster,
                 std::unique_ptr<net::Network> network,
                 const CollectiveTuning& tuning)
    : cluster_(std::move(cluster)),
      network_(std::move(network)),
      tuning_(tuning) {
  HETSCALE_REQUIRE(network_ != nullptr, "network must not be null");
  processors_ = cluster_.processors();
  HETSCALE_REQUIRE(!processors_.empty(),
                   "cluster has no participating processors");
  mailboxes_.reserve(processors_.size());
  comms_.reserve(processors_.size());
  stats_.resize(processors_.size());
  const int size = static_cast<int>(processors_.size());
  for (int r = 0; r < size; ++r) {
    mailboxes_.emplace_back(scheduler_);
    comms_.emplace_back(*this, r, size);
    comms_.back().bind_scheduler(&scheduler_);
  }
  sim_threads_ = global_sim_threads();
  // Profiling is ambient: a machine built inside a ProfilerScope traces
  // itself and publishes a RunProfile when run() completes, so every
  // scenario is profileable without plumbing.
  profiler_ = obs::current();
  if (profiler_ != nullptr) {
    enable_tracing().spans().bind_clock(
        [scheduler = &scheduler_] { return scheduler->now(); });
    scheduler_.bind_telemetry(&queue_telemetry_);
  }
}

Machine Machine::shared_bus(machine::Cluster cluster,
                            net::NetworkParams params,
                            const CollectiveTuning& tuning) {
  return Machine(std::move(cluster),
                 std::make_unique<net::SharedBusNetwork>(params), tuning);
}

Machine Machine::switched(machine::Cluster cluster, net::NetworkParams params,
                          const CollectiveTuning& tuning) {
  return Machine(std::move(cluster),
                 std::make_unique<net::SwitchedNetwork>(params), tuning);
}

const machine::Processor& Machine::processor(int rank) const {
  HETSCALE_REQUIRE(rank >= 0 && rank < world_size(), "rank out of range");
  return processors_[static_cast<std::size_t>(rank)];
}

Mailbox& Machine::mailbox(int rank) {
  HETSCALE_REQUIRE(rank >= 0 && rank < world_size(), "rank out of range");
  return mailboxes_[static_cast<std::size_t>(rank)];
}

RankStats& Machine::rank_stats(int rank) {
  HETSCALE_REQUIRE(rank >= 0 && rank < world_size(), "rank out of range");
  return stats_[static_cast<std::size_t>(rank)];
}

void Machine::set_sim_threads(int threads) {
  HETSCALE_REQUIRE(!ran_, "set sim-threads before running the machine");
  HETSCALE_REQUIRE(threads >= 1, "sim-threads must be >= 1");
  sim_threads_ = threads;
}

std::uint64_t Machine::events_processed() const {
  std::uint64_t events = scheduler_.events_processed();
  for (const auto& scheduler : partition_schedulers_) {
    events += scheduler->events_processed();
  }
  return events;
}

des::Scheduler& Machine::scheduler_for(int rank) {
  HETSCALE_REQUIRE(rank >= 0 && rank < world_size(), "rank out of range");
  if (!partitioned_) return scheduler_;
  return *rank_scheduler_[static_cast<std::size_t>(rank)];
}

void Machine::post_message(int src, int dst, Message message) {
  if (!partitioned_) {
    mailbox(dst).post(std::move(message));
    return;
  }
  const int src_part = partition_of_[static_cast<std::size_t>(src)];
  const int dst_part = partition_of_[static_cast<std::size_t>(dst)];
  if (src_part == dst_part) {
    mailboxes_[static_cast<std::size_t>(dst)].post(std::move(message));
    return;
  }
  // The payload is about to cross threads: make every block it references
  // uniquely owned first, so its non-atomic refcounts never straddle a
  // partition boundary.
  message.payload.detach_for_transfer();
  auto& outbox = outboxes_[static_cast<std::size_t>(
      src_part * partition_count_ + dst_part)];
  outbox.push_back(Handoff{
      rank_scheduler_[static_cast<std::size_t>(src)]->now(), src, dst,
      handoff_seq_[static_cast<std::size_t>(src)]++, std::move(message)});
}

bool Machine::partition_eligible() const {
  // A zero-lookahead network (the shared bus) serializes every sender
  // globally: no window can safely advance past the next global event.
  if (network_->lookahead_s() <= 0.0) return false;
  // Tracing, profiling, and fault hooks all funnel per-event records into
  // shared sinks; keep those runs on the sequential path rather than
  // locking the hot paths.
  if (tracer_ != nullptr || profiler_ != nullptr || fault_hooks_ != nullptr) {
    return false;
  }
  // The per-node network state (injection ports, intra-node fast path) is
  // only partition-exclusive when no two ranks share a node.
  std::unordered_set<int> nodes;
  nodes.reserve(processors_.size());
  for (const machine::Processor& proc : processors_) {
    if (!nodes.insert(proc.node).second) return false;
  }
  return true;
}

void Machine::deliver_inboxes(int partition) {
  auto& scratch = inbox_scratch_[static_cast<std::size_t>(partition)];
  scratch.clear();
  for (int src_part = 0; src_part < partition_count_; ++src_part) {
    auto& inbox = outboxes_[static_cast<std::size_t>(
        src_part * partition_count_ + partition)];
    for (Handoff& handoff : inbox) scratch.push_back(std::move(handoff));
    inbox.clear();
  }
  // Canonical order: post time, then source rank, then per-source sequence.
  // This is a total order on the handoffs (the per-source counter breaks
  // every remaining tie), so the mailbox post order — and with it every
  // downstream artifact — is independent of the partition count.
  std::sort(scratch.begin(), scratch.end(),
            [](const Handoff& a, const Handoff& b) {
              if (a.post_time != b.post_time) return a.post_time < b.post_time;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (Handoff& handoff : scratch) {
    mailboxes_[static_cast<std::size_t>(handoff.dst)].post(
        std::move(handoff.message));
  }
}

namespace {
des::Task<void> rank_main(Machine& machine, Comm& comm,
                          const Machine::Program& program) {
  co_await program(comm);
  machine.rank_stats(comm.rank()).finish = comm.now();
}
}  // namespace

TraceRecorder& Machine::enable_tracing() {
  HETSCALE_REQUIRE(!ran_, "enable tracing before running the machine");
  if (!tracer_) tracer_ = std::make_unique<TraceRecorder>();
  if (fault_hooks_ != nullptr) fault_hooks_->bind_span_sink(&tracer_->spans());
  return *tracer_;
}

void Machine::attach_fault_hooks(FaultHooks* hooks) {
  HETSCALE_REQUIRE(!ran_, "attach fault hooks before running the machine");
  fault_hooks_ = hooks;
  if (tracer_ && hooks != nullptr) hooks->bind_span_sink(&tracer_->spans());
}

namespace {
std::string describe_rank_wait(int rank, const Mailbox& box) {
  std::ostringstream out;
  const auto waiting = box.waiting_recv();
  out << "  rank " << rank << " blocked in recv(source=";
  if (waiting->source == kAnySource) {
    out << "ANY";
  } else {
    out << waiting->source;
  }
  out << ", tag=";
  if (waiting->tag == kAnyTag) {
    out << "ANY";
  } else {
    out << waiting->tag;
  }
  out << "); " << box.pending_count() << " pending unmatched message"
      << (box.pending_count() == 1 ? "" : "s");
  return out.str();
}
}  // namespace

void Machine::rethrow_with_deadlock_diagnosis(
    const des::DeadlockError& deadlock) const {
  // Quiescence with pending receivers: name what every blocked rank was
  // waiting for and what sat unmatched in its mailbox — the usual causes
  // are a tag mismatch or a rank that exited early (mailbox exhaustion).
  std::ostringstream out;
  out << deadlock.what() << "\n";
  for (int r = 0; r < world_size(); ++r) {
    const Mailbox& box = mailboxes_[static_cast<std::size_t>(r)];
    if (!box.waiting_recv()) continue;
    out << describe_rank_wait(r, box) << "\n";
  }
  out << "check that every posted tag has a matching receive and that no "
         "rank returned while peers still expected its messages";
  throw des::DeadlockError(out.str());
}

RunResult Machine::run(const Program& program) {
  HETSCALE_REQUIRE(!ran_, "a Machine is single-shot; construct a fresh one");
  const int partitions = std::min(sim_threads_, world_size());
  if (partitions > 1 && partition_eligible()) {
    return run_partitioned(program, partitions);
  }
  ran_ = true;
  // Start the coroutine-frame high-water mark at this run's baseline; the
  // whole simulation runs on this thread, so the peak read after the run is
  // this machine's own.
  des::detail::frame_pool_reset_live_peak();
  for (int r = 0; r < world_size(); ++r) {
    scheduler_.spawn(rank_main(*this, comms_[static_cast<std::size_t>(r)],
                               program));
  }
  try {
    scheduler_.run();
  } catch (const des::DeadlockError& deadlock) {
    rethrow_with_deadlock_diagnosis(deadlock);
  }

  RunResult result;
  result.ranks = stats_;
  result.network = network_->stats();
  for (const auto& r : stats_) result.elapsed = std::max(result.elapsed, r.finish);

  if (profiler_ != nullptr) {
    obs::RunProfile profile;
    profile.elapsed_s = result.elapsed;
    profile.budget =
        obs::compute_time_budget(tracer_->spans(), result.elapsed);
    for (const auto& r : stats_) {
      profile.compute_s += r.compute_s;
      profile.comm_s += r.comm_s;
    }
    // Traffic (messages, nominal bytes) comes from the outermost model;
    // link occupancy comes from the wire model, where degraded (inflated)
    // frames actually held the medium.
    profile.messages = result.network.messages;
    profile.bytes = result.network.bytes;
    const net::NetworkStats& wire = network_->wire_model().stats();
    profile.wire_s = wire.wire_seconds;
    profile.contention_s = wire.contention_seconds;
    for (const auto& [node, link] : wire.links) {
      profile.links.push_back(
          obs::LinkProfile{node, link.bytes, link.wire_s, link.stall_s});
    }
    profile.des_events = scheduler_.events_processed();
    profile.des_queue_depth_max = scheduler_.max_queue_depth();
    profile.frame_live_peak = des::detail::frame_pool_live_peak();
    profile.comm_cells = tracer_->comm().cells();
    const obs::CriticalPath path = obs::critical_path(
        tracer_->spans(), tracer_->path_messages(), result.elapsed);
    profile.critical_path = obs::CriticalPathSummary{
        path.compute_s, path.comm_s, path.wait_s, path.fault_s};
    profile.des_queue.pushes = queue_telemetry_.pushes;
    profile.des_queue.pops = queue_telemetry_.pops;
    profile.des_queue.far_inserts = queue_telemetry_.far_inserts;
    profile.des_queue.rebuilds = queue_telemetry_.rebuilds;
    profile.des_queue.samples_dropped = queue_telemetry_.samples_dropped;
    profile.des_queue.occupancy.reserve(queue_telemetry_.occupancy.size());
    for (const des::QueueTelemetry::Sample& s : queue_telemetry_.occupancy) {
      profile.des_queue.occupancy.push_back(
          obs::DesQueueStats::Sample{s.time, s.depth});
    }
    if (fault_hooks_ != nullptr) {
      const FaultProfile faults = fault_hooks_->fault_profile();
      profile.retries = faults.retries;
      profile.backoff_s = faults.retry_s;
      profile.fault = obs::FaultProfileTotals{
          faults.slowdown_s, faults.checkpoint_s, faults.rework_s,
          faults.retry_s,    faults.checkpoints,  faults.crashes,
          faults.retries};
    }
    profiler_->add_run(std::move(profile));
  }
  return result;
}

RunResult Machine::run_partitioned(const Program& program, int partitions) {
  ran_ = true;
  const int world = world_size();
  partition_count_ = partitions;
  partition_of_.resize(static_cast<std::size_t>(world));
  rank_scheduler_.assign(static_cast<std::size_t>(world), nullptr);
  partition_schedulers_.clear();
  partition_schedulers_.reserve(static_cast<std::size_t>(partitions));
  for (int p = 0; p < partitions; ++p) {
    partition_schedulers_.push_back(std::make_unique<des::Scheduler>());
  }
  for (int r = 0; r < world; ++r) {
    // Contiguous blocks, balanced to within one rank. Contiguity keeps the
    // tree collectives' heaviest edges (rank r <-> r +/- small powers of
    // two) mostly inside one partition.
    const int p = static_cast<int>(
        (static_cast<long long>(r) * partitions) / world);
    partition_of_[static_cast<std::size_t>(r)] = p;
    rank_scheduler_[static_cast<std::size_t>(r)] =
        partition_schedulers_[static_cast<std::size_t>(p)].get();
  }
  for (int r = 0; r < world; ++r) {
    mailboxes_[static_cast<std::size_t>(r)].rebind(
        *rank_scheduler_[static_cast<std::size_t>(r)]);
    comms_[static_cast<std::size_t>(r)].bind_scheduler(
        rank_scheduler_[static_cast<std::size_t>(r)]);
  }
  outboxes_.assign(static_cast<std::size_t>(partitions) *
                       static_cast<std::size_t>(partitions),
                   {});
  inbox_scratch_.assign(static_cast<std::size_t>(partitions), {});
  handoff_seq_.assign(static_cast<std::size_t>(world), 0);
  int max_node = 0;
  for (const machine::Processor& proc : processors_) {
    max_node = std::max(max_node, proc.node);
  }
  network_->begin_partitioned(partitions, max_node + 1);
  partitioned_ = true;

  des::PartitionHooks hooks;
  hooks.bootstrap = [&](int p) {
    // Bind this thread's network-stats shard, then spawn the partition's
    // ranks HERE so their coroutine frames come from (and return to) this
    // thread's frame pool.
    net::Network::set_thread_partition(p);
    for (int r = 0; r < world; ++r) {
      if (partition_of_[static_cast<std::size_t>(r)] != p) continue;
      rank_scheduler_[static_cast<std::size_t>(r)]->spawn(
          rank_main(*this, comms_[static_cast<std::size_t>(r)], program));
    }
  };
  hooks.deliver = [&](int p) { deliver_inboxes(p); };

  std::vector<des::Scheduler*> schedulers;
  schedulers.reserve(partition_schedulers_.size());
  for (const auto& scheduler : partition_schedulers_) {
    schedulers.push_back(scheduler.get());
  }
  const std::vector<std::exception_ptr> errors =
      des::run_conservative(schedulers, network_->lookahead_s(), hooks);
  partitioned_ = false;
  network_->end_partitioned();

  // Surface errors the way the sequential path would: a real exception from
  // a rank program wins (lowest partition first — partitions are rank-
  // ordered, so this matches sequential root order); otherwise any
  // partition-local deadlock gets the machine-wide diagnosis.
  std::exception_ptr first_error;
  bool deadlocked = false;
  std::string deadlock_what;
  for (const std::exception_ptr& error : errors) {
    if (!error) continue;
    try {
      std::rethrow_exception(error);
    } catch (const des::DeadlockError& deadlock) {
      if (!deadlocked) {
        deadlocked = true;
        deadlock_what = deadlock.what();
      }
    } catch (...) {
      if (!first_error) first_error = error;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  if (deadlocked) {
    rethrow_with_deadlock_diagnosis(des::DeadlockError(deadlock_what));
  }

  RunResult result;
  result.ranks = stats_;
  result.network = network_->stats();
  for (const auto& r : stats_) {
    result.elapsed = std::max(result.elapsed, r.finish);
  }
  return result;
}

}  // namespace hetscale::vmpi
