#include "hetscale/vmpi/machine.hpp"

#include <algorithm>
#include <sstream>

#include "hetscale/des/frame_pool.hpp"
#include "hetscale/net/shared_bus.hpp"
#include "hetscale/net/switched.hpp"
#include "hetscale/obs/budget.hpp"
#include "hetscale/obs/critical_path.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::vmpi {

double RunResult::overhead_s() const {
  double max_compute = 0.0;
  for (const auto& r : ranks) max_compute = std::max(max_compute, r.compute_s);
  return std::max(0.0, elapsed - max_compute);
}

double RunResult::total_compute_s() const {
  double total = 0.0;
  for (const auto& r : ranks) total += r.compute_s;
  return total;
}

Machine::Machine(machine::Cluster cluster,
                 std::unique_ptr<net::Network> network,
                 const CollectiveTuning& tuning)
    : cluster_(std::move(cluster)),
      network_(std::move(network)),
      tuning_(tuning) {
  HETSCALE_REQUIRE(network_ != nullptr, "network must not be null");
  processors_ = cluster_.processors();
  HETSCALE_REQUIRE(!processors_.empty(),
                   "cluster has no participating processors");
  mailboxes_.reserve(processors_.size());
  comms_.reserve(processors_.size());
  stats_.resize(processors_.size());
  const int size = static_cast<int>(processors_.size());
  for (int r = 0; r < size; ++r) {
    mailboxes_.emplace_back(scheduler_);
    comms_.emplace_back(*this, r, size);
  }
  // Profiling is ambient: a machine built inside a ProfilerScope traces
  // itself and publishes a RunProfile when run() completes, so every
  // scenario is profileable without plumbing.
  profiler_ = obs::current();
  if (profiler_ != nullptr) {
    enable_tracing().spans().bind_clock(
        [scheduler = &scheduler_] { return scheduler->now(); });
    scheduler_.bind_telemetry(&queue_telemetry_);
  }
}

Machine Machine::shared_bus(machine::Cluster cluster,
                            net::NetworkParams params,
                            const CollectiveTuning& tuning) {
  return Machine(std::move(cluster),
                 std::make_unique<net::SharedBusNetwork>(params), tuning);
}

Machine Machine::switched(machine::Cluster cluster, net::NetworkParams params,
                          const CollectiveTuning& tuning) {
  return Machine(std::move(cluster),
                 std::make_unique<net::SwitchedNetwork>(params), tuning);
}

const machine::Processor& Machine::processor(int rank) const {
  HETSCALE_REQUIRE(rank >= 0 && rank < world_size(), "rank out of range");
  return processors_[static_cast<std::size_t>(rank)];
}

Mailbox& Machine::mailbox(int rank) {
  HETSCALE_REQUIRE(rank >= 0 && rank < world_size(), "rank out of range");
  return mailboxes_[static_cast<std::size_t>(rank)];
}

RankStats& Machine::rank_stats(int rank) {
  HETSCALE_REQUIRE(rank >= 0 && rank < world_size(), "rank out of range");
  return stats_[static_cast<std::size_t>(rank)];
}

namespace {
des::Task<void> rank_main(Machine& machine, Comm& comm,
                          const Machine::Program& program) {
  co_await program(comm);
  machine.rank_stats(comm.rank()).finish = comm.now();
}
}  // namespace

TraceRecorder& Machine::enable_tracing() {
  HETSCALE_REQUIRE(!ran_, "enable tracing before running the machine");
  if (!tracer_) tracer_ = std::make_unique<TraceRecorder>();
  if (fault_hooks_ != nullptr) fault_hooks_->bind_span_sink(&tracer_->spans());
  return *tracer_;
}

void Machine::attach_fault_hooks(FaultHooks* hooks) {
  HETSCALE_REQUIRE(!ran_, "attach fault hooks before running the machine");
  fault_hooks_ = hooks;
  if (tracer_ && hooks != nullptr) hooks->bind_span_sink(&tracer_->spans());
}

namespace {
std::string describe_rank_wait(int rank, const Mailbox& box) {
  std::ostringstream out;
  const auto waiting = box.waiting_recv();
  out << "  rank " << rank << " blocked in recv(source=";
  if (waiting->source == kAnySource) {
    out << "ANY";
  } else {
    out << waiting->source;
  }
  out << ", tag=";
  if (waiting->tag == kAnyTag) {
    out << "ANY";
  } else {
    out << waiting->tag;
  }
  out << "); " << box.pending_count() << " pending unmatched message"
      << (box.pending_count() == 1 ? "" : "s");
  return out.str();
}
}  // namespace

RunResult Machine::run(const Program& program) {
  HETSCALE_REQUIRE(!ran_, "a Machine is single-shot; construct a fresh one");
  ran_ = true;
  // Start the coroutine-frame high-water mark at this run's baseline; the
  // whole simulation runs on this thread, so the peak read after the run is
  // this machine's own.
  des::detail::frame_pool_reset_live_peak();
  for (int r = 0; r < world_size(); ++r) {
    scheduler_.spawn(rank_main(*this, comms_[static_cast<std::size_t>(r)],
                               program));
  }
  try {
    scheduler_.run();
  } catch (const des::DeadlockError& deadlock) {
    // Quiescence with pending receivers: name what every blocked rank was
    // waiting for and what sat unmatched in its mailbox — the usual causes
    // are a tag mismatch or a rank that exited early (mailbox exhaustion).
    std::ostringstream out;
    out << deadlock.what() << "\n";
    for (int r = 0; r < world_size(); ++r) {
      const Mailbox& box = mailboxes_[static_cast<std::size_t>(r)];
      if (!box.waiting_recv()) continue;
      out << describe_rank_wait(r, box) << "\n";
    }
    out << "check that every posted tag has a matching receive and that no "
           "rank returned while peers still expected its messages";
    throw des::DeadlockError(out.str());
  }

  RunResult result;
  result.ranks = stats_;
  result.network = network_->stats();
  for (const auto& r : stats_) result.elapsed = std::max(result.elapsed, r.finish);

  if (profiler_ != nullptr) {
    obs::RunProfile profile;
    profile.elapsed_s = result.elapsed;
    profile.budget =
        obs::compute_time_budget(tracer_->spans(), result.elapsed);
    for (const auto& r : stats_) {
      profile.compute_s += r.compute_s;
      profile.comm_s += r.comm_s;
    }
    // Traffic (messages, nominal bytes) comes from the outermost model;
    // link occupancy comes from the wire model, where degraded (inflated)
    // frames actually held the medium.
    profile.messages = result.network.messages;
    profile.bytes = result.network.bytes;
    const net::NetworkStats& wire = network_->wire_model().stats();
    profile.wire_s = wire.wire_seconds;
    profile.contention_s = wire.contention_seconds;
    for (const auto& [node, link] : wire.links) {
      profile.links.push_back(
          obs::LinkProfile{node, link.bytes, link.wire_s, link.stall_s});
    }
    profile.des_events = scheduler_.events_processed();
    profile.des_queue_depth_max = scheduler_.max_queue_depth();
    profile.frame_live_peak = des::detail::frame_pool_live_peak();
    profile.comm_cells = tracer_->comm().cells();
    const obs::CriticalPath path = obs::critical_path(
        tracer_->spans(), tracer_->path_messages(), result.elapsed);
    profile.critical_path = obs::CriticalPathSummary{
        path.compute_s, path.comm_s, path.wait_s, path.fault_s};
    profile.des_queue.pushes = queue_telemetry_.pushes;
    profile.des_queue.pops = queue_telemetry_.pops;
    profile.des_queue.far_inserts = queue_telemetry_.far_inserts;
    profile.des_queue.rebuilds = queue_telemetry_.rebuilds;
    profile.des_queue.occupancy.reserve(queue_telemetry_.occupancy.size());
    for (const des::QueueTelemetry::Sample& s : queue_telemetry_.occupancy) {
      profile.des_queue.occupancy.push_back(
          obs::DesQueueStats::Sample{s.time, s.depth});
    }
    if (fault_hooks_ != nullptr) {
      const FaultProfile faults = fault_hooks_->fault_profile();
      profile.retries = faults.retries;
      profile.backoff_s = faults.retry_s;
      profile.fault = obs::FaultProfileTotals{
          faults.slowdown_s, faults.checkpoint_s, faults.rework_s,
          faults.retry_s,    faults.checkpoints,  faults.crashes,
          faults.retries};
    }
    profiler_->add_run(std::move(profile));
  }
  return result;
}

}  // namespace hetscale::vmpi
