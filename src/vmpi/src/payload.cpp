#include "hetscale/vmpi/payload.hpp"

#include <algorithm>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define HETSCALE_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HETSCALE_ARENA_ASAN 1
#endif
#endif

#ifdef HETSCALE_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define HETSCALE_POISON(p, s) ASAN_POISON_MEMORY_REGION((p), (s))
#define HETSCALE_UNPOISON(p, s) ASAN_UNPOISON_MEMORY_REGION((p), (s))
#else
#define HETSCALE_POISON(p, s) ((void)0)
#define HETSCALE_UNPOISON(p, s) ((void)0)
#endif

namespace hetscale::vmpi {

namespace detail {

namespace {

// Power-of-two size classes: class c holds blocks of 1 << c doubles. The
// largest pooled class is 1 << 21 doubles (16 MiB) — a bcast of a 1448x1448
// matrix still pools; anything bigger falls through to plain heap blocks
// tagged with the sentinel class.
constexpr std::uint32_t kClasses = 22;
constexpr std::uint32_t kHeapClass = 0xffffffffu;
constexpr std::size_t kMaxParkedPerClass = 64;

struct ClassList {
  BufferBlock* head = nullptr;
  std::size_t count = 0;
};

struct Arena {
  ClassList classes[kClasses];

  ~Arena() {
    for (ClassList& list : classes) {
      BufferBlock* block = list.head;
      while (block != nullptr) {
        HETSCALE_UNPOISON(block, sizeof(BufferBlock));
        BufferBlock* next = block->next_free;
        ::operator delete(block);
        block = next;
      }
      list.head = nullptr;
      list.count = 0;
    }
  }
};

thread_local Arena t_arena;

std::uint32_t class_for(std::size_t count) {
  std::uint32_t cls = 0;
  while ((std::size_t{1} << cls) < count) ++cls;
  return cls;
}

BufferBlock* raw_block(std::size_t capacity_doubles) {
  void* mem = ::operator new(sizeof(BufferBlock) +
                             capacity_doubles * sizeof(double));
  return new (mem) BufferBlock{};
}

}  // namespace

BufferBlock* arena_acquire(std::size_t count) {
  const std::uint32_t cls = count == 0 ? 0 : class_for(count);
  if (cls >= kClasses) {
    BufferBlock* block = raw_block(count);
    block->size_class = kHeapClass;
    block->count = count;
    return block;
  }
  ClassList& list = t_arena.classes[cls];
  if (list.head != nullptr) {
    BufferBlock* block = list.head;
    HETSCALE_UNPOISON(
        block, sizeof(BufferBlock) + (std::size_t{1} << cls) * sizeof(double));
    list.head = block->next_free;
    --list.count;
    block->next_free = nullptr;
    block->count = count;
    return block;
  }
  BufferBlock* block = raw_block(std::size_t{1} << cls);
  block->size_class = cls;
  block->count = count;
  return block;
}

void arena_release(BufferBlock* block) noexcept {
  if (block == nullptr) return;
  const std::uint32_t cls = block->size_class;
  if (cls == kHeapClass) {
    ::operator delete(block);
    return;
  }
  ClassList& list = t_arena.classes[cls];
  if (list.count >= kMaxParkedPerClass) {
    ::operator delete(block);
    return;
  }
  block->next_free = list.head;
  list.head = block;
  ++list.count;
  HETSCALE_POISON(block,
                  sizeof(BufferBlock) + (std::size_t{1} << cls) * sizeof(double));
}

std::size_t arena_parked() {
  std::size_t total = 0;
  for (const ClassList& list : t_arena.classes) total += list.count;
  return total;
}

/// One pooled bundle block. Reuse keeps the parts vector's capacity, so a
/// steady-state gather/scatter tree allocates nothing once warm.
struct BundleBlock {
  std::uint32_t refs = 0;
  BundleBlock* next_free = nullptr;
  std::vector<BundlePart> parts;
};

namespace {

constexpr std::size_t kMaxParkedBundles = 64;

struct BundlePool {
  BundleBlock* head = nullptr;
  std::size_t count = 0;

  ~BundlePool() {
    while (head != nullptr) {
      BundleBlock* next = head->next_free;
      delete head;
      head = next;
    }
    count = 0;
  }
};

thread_local BundlePool t_bundles;

}  // namespace

BundleBlock* bundle_acquire() {
  BundlePool& pool = t_bundles;
  if (pool.head != nullptr) {
    BundleBlock* block = pool.head;
    pool.head = block->next_free;
    --pool.count;
    block->next_free = nullptr;
    block->refs = 1;
    return block;
  }
  BundleBlock* block = new BundleBlock;
  block->refs = 1;
  return block;
}

void bundle_add_ref(BundleBlock* block) noexcept { ++block->refs; }

void bundle_unref(BundleBlock* block) noexcept {
  if (--block->refs != 0) return;
  block->parts.clear();  // releases nested payload blocks on this thread
  BundlePool& pool = t_bundles;
  if (pool.count >= kMaxParkedBundles) {
    delete block;
    return;
  }
  block->next_free = pool.head;
  pool.head = block;
  ++pool.count;
}

std::size_t bundle_parked() { return t_bundles.count; }

}  // namespace detail

Payload Payload::copy_of(std::span<const double> values) {
  Payload p = buffer(values.size());
  std::copy(values.begin(), values.end(), p.block_->data());
  return p;
}

Payload Payload::make_bundle() {
  Payload p;
  p.kind_ = Kind::kBundle;
  p.bundle_ = detail::bundle_acquire();
  return p;
}

std::vector<BundlePart>& Payload::bundle_parts() {
  HETSCALE_REQUIRE(kind_ == Kind::kBundle, "payload holds no bundle");
  return bundle_->parts;
}

const std::vector<BundlePart>& Payload::bundle_parts() const {
  HETSCALE_REQUIRE(kind_ == Kind::kBundle, "payload holds no bundle");
  return bundle_->parts;
}

void Payload::detach_for_transfer() {
  switch (kind_) {
    case Kind::kEmpty:
    case Kind::kScalar:
    case Kind::kBoxed:  // boxed copies are already deep (new std::any)
      return;
    case Kind::kBuffer: {
      if (block_->refs == 1) return;
      detail::BufferBlock* fresh = detail::arena_acquire(block_->count);
      fresh->refs = 1;
      std::copy_n(block_->data(), block_->count, fresh->data());
      --block_->refs;  // still on the owning thread: plain decrement is safe
      block_ = fresh;
      return;
    }
    case Kind::kBundle: {
      if (bundle_->refs > 1) {
        detail::BundleBlock* fresh = detail::bundle_acquire();
        fresh->parts = bundle_->parts;  // copies bump nested refs locally
        --bundle_->refs;
        bundle_ = fresh;
      }
      for (BundlePart& part : bundle_->parts) {
        part.payload.detach_for_transfer();
      }
      return;
    }
  }
}

}  // namespace hetscale::vmpi
