#include "hetscale/vmpi/message.hpp"

#include <algorithm>
#include <utility>

#include "hetscale/support/error.hpp"

namespace hetscale::vmpi {

namespace {
// A mailbox whose (source, tag) key set outgrows this after a full drain
// frees the map outright instead of epoch-recycling it: workloads that mint
// a fresh tag per step (pipelined GE) would otherwise grow the index without
// bound, p mailboxes deep.
constexpr std::size_t kIndexKeyCap = 64;
}  // namespace

void Mailbox::post(Message message) {
  const des::SimTime wake_at =
      std::max(scheduler_->now(), message.arrival);
  const int source = message.source;
  const int tag = message.tag;
  SlotQueue& queue = index_[index_key(source, tag)];
  if (queue.epoch != drain_epoch_) {
    queue.slots.clear();
    queue.head = 0;
    queue.epoch = drain_epoch_;
  }
  queue.slots.push_back(pending_.size());
  pending_.push_back(std::move(message));
  ++live_count_;
  if (waiter_) {
    // Wake the waiting recv only if THIS message matches what it asked for.
    // (A spurious wake would not be a correctness bug — the recv re-checks
    // the queue — but it could complete the recv at the non-matching
    // message's arrival time instead of the matching one's, making timing
    // depend on cross-source post order. Gating keeps recv completion a
    // function of the matching message alone, which is what lets the
    // partitioned scheduler batch cross-partition deliveries.)
    const bool matches =
        (waiting_->source == kAnySource || waiting_->source == source) &&
        (waiting_->tag == kAnyTag || waiting_->tag == tag);
    if (matches) {
      // Waking at the arrival time makes "recv completes at max(call time,
      // arrival)" emerge.
      scheduler_->schedule_at(wake_at, std::exchange(waiter_, nullptr));
    }
  }
}

std::optional<Message> Mailbox::take_match(int source, int tag) {
  if (source != kAnySource && tag != kAnyTag) {
    // Hot path: straight to this (source, tag)'s FIFO. Slots consumed by a
    // wildcard take in the meantime are skipped lazily.
    const auto it = index_.find(index_key(source, tag));
    if (it == index_.end()) return std::nullopt;
    SlotQueue& queue = it->second;
    if (queue.epoch != drain_epoch_) return std::nullopt;
    while (queue.head < queue.slots.size() &&
           pending_[queue.slots[queue.head]].source == kConsumedSource) {
      ++queue.head;
    }
    if (queue.head == queue.slots.size()) {
      queue.slots.clear();
      queue.head = 0;
      return std::nullopt;
    }
    const std::size_t slot = queue.slots[queue.head++];
    if (queue.head == queue.slots.size()) {
      queue.slots.clear();
      queue.head = 0;
    }
    return consume(slot);
  }
  for (std::size_t i = head_; i < pending_.size(); ++i) {
    const Message& candidate = pending_[i];
    if (candidate.source == kConsumedSource) continue;
    const bool source_ok = source == kAnySource || candidate.source == source;
    const bool tag_ok = tag == kAnyTag || candidate.tag == tag;
    if (source_ok && tag_ok) return consume(i);
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::consume(std::size_t slot) {
  Message found = std::move(pending_[slot]);
  pending_[slot].source = kConsumedSource;
  pending_[slot].payload = Payload{};
  --live_count_;
  if (slot == head_) {
    while (head_ < pending_.size() &&
           pending_[head_].source == kConsumedSource) {
      ++head_;
    }
  }
  if (head_ == pending_.size()) reset_slab();
  return found;
}

void Mailbox::reset_slab() {
  pending_.clear();  // keeps capacity — the slab is reused
  head_ = 0;
  ++drain_epoch_;  // lazily empties every slot queue
  if (index_.size() > kIndexKeyCap) index_.clear();
}

void Mailbox::WaitAwaiter::await_suspend(std::coroutine_handle<> handle) {
  HETSCALE_CHECK(box.waiter_ == nullptr,
                 "two concurrent receives on one rank's mailbox");
  box.waiter_ = handle;
  box.waiting_ = WaitingRecv{source, tag};
}

}  // namespace hetscale::vmpi
