#include "hetscale/vmpi/message.hpp"

#include <algorithm>
#include <utility>

#include "hetscale/support/error.hpp"

namespace hetscale::vmpi {

void Mailbox::post(Message message) {
  const des::SimTime wake_at =
      std::max(scheduler_->now(), message.arrival);
  pending_.push_back(std::move(message));
  if (waiter_) {
    // The waiting recv re-checks the queue when it resumes; waking it at the
    // arrival time makes "recv completes at max(call time, arrival)" emerge.
    scheduler_->schedule_at(wake_at, std::exchange(waiter_, nullptr));
  }
}

std::optional<Message> Mailbox::take_match(int source, int tag) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    const bool source_ok = source == kAnySource || it->source == source;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (source_ok && tag_ok) {
      Message found = std::move(*it);
      pending_.erase(it);
      return found;
    }
  }
  return std::nullopt;
}

void Mailbox::WaitAwaiter::await_suspend(std::coroutine_handle<> handle) {
  HETSCALE_CHECK(box.waiter_ == nullptr,
                 "two concurrent receives on one rank's mailbox");
  box.waiter_ = handle;
  box.waiting_ = WaitingRecv{source, tag};
}

}  // namespace hetscale::vmpi
