#include "hetscale/vmpi/message.hpp"

#include <algorithm>
#include <utility>

#include "hetscale/support/error.hpp"

namespace hetscale::vmpi {

void Mailbox::post(Message message) {
  const des::SimTime wake_at =
      std::max(scheduler_->now(), message.arrival);
  pending_.push_back(std::move(message));
  if (waiter_) {
    // The waiting recv re-checks the queue when it resumes; waking it at the
    // arrival time makes "recv completes at max(call time, arrival)" emerge.
    scheduler_->schedule_at(wake_at, std::exchange(waiter_, nullptr));
  }
}

std::optional<Message> Mailbox::take_match(int source, int tag) {
  for (std::size_t i = head_; i < pending_.size(); ++i) {
    Message& candidate = pending_[i];
    const bool source_ok = source == kAnySource || candidate.source == source;
    const bool tag_ok = tag == kAnyTag || candidate.tag == tag;
    if (!source_ok || !tag_ok) continue;
    Message found = std::move(candidate);
    if (i == head_) {
      ++head_;  // front pop: just advance the drain index
    } else {
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (head_ == pending_.size()) {
      pending_.clear();  // keeps capacity — the slab is reused
      head_ = 0;
    }
    return found;
  }
  return std::nullopt;
}

void Mailbox::WaitAwaiter::await_suspend(std::coroutine_handle<> handle) {
  HETSCALE_CHECK(box.waiter_ == nullptr,
                 "two concurrent receives on one rank's mailbox");
  box.waiter_ = handle;
  box.waiting_ = WaitingRecv{source, tag};
}

}  // namespace hetscale::vmpi
