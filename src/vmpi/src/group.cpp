#include "hetscale/vmpi/group.hpp"

#include <algorithm>
#include <utility>

#include "hetscale/support/error.hpp"
#include "hetscale/vmpi/trace.hpp"

namespace hetscale::vmpi {

Group::Group(Comm& comm, std::vector<int> members)
    : comm_(&comm), members_(std::move(members)), index_(-1) {
  HETSCALE_REQUIRE(!members_.empty(), "group needs at least one member");
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const int world = members_[i];
    HETSCALE_REQUIRE(world >= 0 && world < comm.size(),
                     "group member outside the world communicator");
    if (world == comm.rank()) index_ = static_cast<int>(i);
    for (std::size_t j = i + 1; j < members_.size(); ++j) {
      HETSCALE_REQUIRE(members_[j] != world, "duplicate group member");
    }
  }
  HETSCALE_REQUIRE(index_ >= 0, "calling rank is not a group member");
}

int Group::world_rank(int index) const {
  HETSCALE_REQUIRE(index >= 0 && index < size(), "group index out of range");
  return members_[static_cast<std::size_t>(index)];
}

des::Task<Payload> Group::bcast(int root_index, int tag, double bytes,
                                Payload payload) {
  HETSCALE_REQUIRE(root_index >= 0 && root_index < size(),
                   "group root out of range");
  if (size() == 1) co_return payload;
  // Mark this lane for the CommMatrix: group traffic rides on
  // caller-chosen tags, so the phase cannot be derived from the tag. The
  // mark must be cleared before every co_return — the coroutine frame may
  // be destroyed at an unrelated virtual time.
  TraceRecorder* tracer = comm_->tracer();
  const int lane = comm_->rank();
  if (tracer != nullptr) {
    tracer->set_lane_phase(lane, obs::CommPhase::kGroupBcast);
  }
  if (index_ == root_index) {
    // Flat tree in group-index order, skipping self — mirrors Comm's small
    // bcast (linear in the group size, the paper's measured shape).
    for (int i = 0; i < size(); ++i) {
      if (i == root_index) continue;
      Payload copy = payload;
      co_await comm_->send(world_rank(i), tag, bytes, std::move(copy));
    }
    if (tracer != nullptr) tracer->clear_lane_phase(lane);
    co_return payload;
  }
  Message message = co_await comm_->recv(world_rank(root_index), tag);
  if (tracer != nullptr) tracer->clear_lane_phase(lane);
  co_return message.payload;
}

des::Task<std::vector<Payload>> Group::gather(int root_index, int tag,
                                              double bytes, Payload payload) {
  HETSCALE_REQUIRE(root_index >= 0 && root_index < size(),
                   "group root out of range");
  TraceRecorder* tracer = comm_->tracer();
  const int lane = comm_->rank();
  if (tracer != nullptr) {
    tracer->set_lane_phase(lane, obs::CommPhase::kGroupGather);
  }
  std::vector<Payload> parts;
  if (index_ == root_index) {
    parts.resize(members_.size());
    parts[static_cast<std::size_t>(root_index)] = std::move(payload);
    for (int i = 0; i < size(); ++i) {
      if (i == root_index) continue;
      Message message = co_await comm_->recv(world_rank(i), tag);
      parts[static_cast<std::size_t>(i)] = std::move(message.payload);
    }
    if (tracer != nullptr) tracer->clear_lane_phase(lane);
    co_return parts;
  }
  co_await comm_->send(world_rank(root_index), tag, bytes, std::move(payload));
  if (tracer != nullptr) tracer->clear_lane_phase(lane);
  co_return parts;
}

}  // namespace hetscale::vmpi
