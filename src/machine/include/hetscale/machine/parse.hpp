// Textual cluster descriptions — so tools and scripts can name a
// heterogeneous system without writing C++.
//
// Grammar (comma-separated groups):
//     group  := type [ 'x' count ] [ ':' cpus ]
//     type   := "server" | "sunblade" | "v210"        (Sunwulf catalog)
//
// Examples:
//     "server:2,sunbladex3"      server using 2 CPUs + three SunBlades
//     "v210x4:1"                 four V210s, one CPU each
//     "sunblade"                 one SunBlade
#pragma once

#include <string>

#include "hetscale/machine/cluster.hpp"

namespace hetscale::machine {

/// Parse a cluster description. Throws PreconditionError with a pointed
/// message on malformed input or unknown node types.
Cluster parse_cluster(const std::string& description);

}  // namespace hetscale::machine
