// The Sunwulf catalog — a model of the paper's testbed.
//
// Sunwulf (SCS lab, Illinois Institute of Technology) was one SunFire server
// node (4 x 480 MHz CPUs, 4 GB), 64 SunBlade compute nodes (1 x 500 MHz,
// 128 MB), and 20 SunFire V210 nodes (2 x 1 GHz, 2 GB) on 100 Mb Ethernet.
// Delivered per-CPU rates are calibration constants (DESIGN.md §6.4): they
// are of the order real NPB kernels sustained on those CPUs and are chosen
// so the paper's operating points (e.g. E_s = 0.3 near N ≈ 300 on two nodes)
// fall inside the simulated range. Absolute agreement with the paper is not
// claimed — shape agreement is (EXPERIMENTS.md).
#pragma once

#include "hetscale/machine/cluster.hpp"

namespace hetscale::machine::sunwulf {

/// SunFire server node ("sunwulf"): 4 x 480 MHz, 4 GB.
NodeSpec server_spec();

/// SunBlade compute node (hpc-1..hpc-64): 1 x 500 MHz, 128 MB.
NodeSpec sunblade_spec();

/// SunFire V210 compute node (hpc-65..hpc-84): 2 x 1 GHz, 2 GB.
NodeSpec v210_spec();

/// The paper's GE ensembles (§4.4.1): the server node using two CPUs plus
/// (total_nodes - 1) SunBlades. total_nodes in {2, 4, 8, 16, 32}; any
/// total_nodes >= 2 is accepted.
Cluster ge_ensemble(int total_nodes);

/// The paper's MM ensembles (§4.4.2): one server node (one CPU), and of the
/// remaining nodes half SunBlades, half SunFire V210s (one CPU each);
/// e.g. 8 nodes = server + 3 SunBlades + 4 V210s.
Cluster mm_ensemble(int total_nodes);

/// A homogeneous ensemble of `total_nodes` SunBlades — used to demonstrate
/// that isospeed-efficiency collapses to classic isospeed (paper §3.3).
Cluster homogeneous_ensemble(int total_nodes);

}  // namespace hetscale::machine::sunwulf
