// Hardware model: nodes, processors, and clusters.
//
// The paper's HoHe strategy runs one process per *processor*; a Cluster
// therefore enumerates processors (node, cpu) in a stable order, and the
// vmpi runtime assigns rank r to the r-th processor. Heterogeneity lives in
// NodeSpec::cpu_rate_flops — every CPU of a node delivers that sustained
// compute rate on the dense kernels used here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hetscale::machine {

/// A node model (one row of the paper's hardware description).
struct NodeSpec {
  std::string model;           ///< e.g. "SunFire V210"
  int cpus = 1;                ///< CPUs physically present
  double cpu_rate_flops = 0;   ///< delivered flop/s per CPU on dense kernels
  double memory_bytes = 0;     ///< installed RAM
  double memory_bandwidth_Bps = 4e8;  ///< sustained copy bandwidth
  /// Per-benchmark efficiency of this node relative to cpu_rate_flops; the
  /// marked-speed suite multiplies these in so that "measured sustained
  /// speed" differs benchmark-to-benchmark, as with the real NPB suite.
  /// Order matches marked::kKernelNames.
  std::vector<double> benchmark_bias{1.0};
};

/// A node instance inside a cluster.
struct Node {
  std::string name;   ///< e.g. "hpc-40"
  NodeSpec spec;
  int cpus_used = 0;  ///< CPUs participating in the computation (<= spec.cpus)
};

/// One participating CPU — the unit the HoHe strategy maps a process onto.
struct Processor {
  int node = 0;             ///< index into Cluster::nodes()
  int cpu = 0;              ///< CPU index within the node
  double rate_flops = 0.0;  ///< delivered compute rate of this CPU
};

class Cluster {
 public:
  Cluster() = default;

  /// Append a node using `cpus_used` of its CPUs (all of them by default).
  /// Returns the node index.
  int add_node(std::string name, NodeSpec spec, int cpus_used = -1);

  const std::vector<Node>& nodes() const { return nodes_; }
  std::size_t node_count() const { return nodes_.size(); }

  /// All participating processors in deterministic order: nodes in insertion
  /// order, CPUs 0..cpus_used-1 within each node.
  std::vector<Processor> processors() const;

  /// Number of participating processors (== vmpi world size under HoHe).
  int processor_count() const;

  /// Sum of delivered compute rates over participating processors. This is
  /// the *true* aggregate rate; the metric's marked speed is the benchmarked
  /// estimate of it (marked::measure_system).
  double aggregate_rate_flops() const;

  /// Smallest per-node memory among participating nodes (capacity checks).
  double min_node_memory_bytes() const;

  /// Human-readable one-line summary ("1x SunFire server(2cpu) + 3x SunBlade").
  std::string summary() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace hetscale::machine
