#include "hetscale/machine/parse.hpp"

#include <cstdlib>
#include <sstream>

#include "hetscale/machine/sunwulf.hpp"
#include "hetscale/support/args.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::machine {

namespace {

NodeSpec spec_for(const std::string& type) {
  if (type == "server") return sunwulf::server_spec();
  if (type == "sunblade") return sunwulf::sunblade_spec();
  if (type == "v210") return sunwulf::v210_spec();
  throw PreconditionError("unknown node type '" + type +
                          "' (expected server, sunblade, or v210)");
}

int parse_positive_int(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  HETSCALE_REQUIRE(end != nullptr && *end == '\0' && value >= 1,
                   what + " must be a positive integer, got '" + text + "'");
  return static_cast<int>(value);
}

}  // namespace

Cluster parse_cluster(const std::string& description) {
  const auto groups = split(description, ',');
  HETSCALE_REQUIRE(!groups.empty(),
                   "cluster description must name at least one node");
  Cluster cluster;
  int node_index = 0;
  for (const auto& group : groups) {
    std::string body = group;
    int cpus = -1;  // all
    if (const auto colon = body.find(':'); colon != std::string::npos) {
      cpus = parse_positive_int(body.substr(colon + 1), "cpu count");
      body = body.substr(0, colon);
    }
    int count = 1;
    if (const auto x = body.find('x'); x != std::string::npos &&
                                       x + 1 < body.size() &&
                                       std::isdigit(body[x + 1])) {
      count = parse_positive_int(body.substr(x + 1), "node count");
      body = body.substr(0, x);
    }
    const NodeSpec spec = spec_for(body);
    for (int i = 0; i < count; ++i) {
      std::ostringstream name;
      name << body << '-' << node_index++;
      cluster.add_node(name.str(), spec, cpus);
    }
  }
  return cluster;
}

}  // namespace hetscale::machine
