#include "hetscale/machine/cluster.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "hetscale/support/error.hpp"

namespace hetscale::machine {

int Cluster::add_node(std::string name, NodeSpec spec, int cpus_used) {
  HETSCALE_REQUIRE(spec.cpus >= 1, "node must have at least one CPU");
  HETSCALE_REQUIRE(spec.cpu_rate_flops > 0.0, "CPU rate must be positive");
  if (cpus_used < 0) cpus_used = spec.cpus;
  HETSCALE_REQUIRE(cpus_used >= 1 && cpus_used <= spec.cpus,
                   "cpus_used must be in [1, spec.cpus]");
  nodes_.push_back(Node{std::move(name), std::move(spec), cpus_used});
  return static_cast<int>(nodes_.size()) - 1;
}

std::vector<Processor> Cluster::processors() const {
  std::vector<Processor> procs;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (int c = 0; c < nodes_[n].cpus_used; ++c) {
      procs.push_back(Processor{static_cast<int>(n), c,
                                nodes_[n].spec.cpu_rate_flops});
    }
  }
  return procs;
}

int Cluster::processor_count() const {
  int count = 0;
  for (const auto& node : nodes_) count += node.cpus_used;
  return count;
}

double Cluster::aggregate_rate_flops() const {
  double total = 0.0;
  for (const auto& node : nodes_) {
    total += node.cpus_used * node.spec.cpu_rate_flops;
  }
  return total;
}

double Cluster::min_node_memory_bytes() const {
  HETSCALE_REQUIRE(!nodes_.empty(), "cluster has no nodes");
  double smallest = nodes_.front().spec.memory_bytes;
  for (const auto& node : nodes_) {
    smallest = std::min(smallest, node.spec.memory_bytes);
  }
  return smallest;
}

std::string Cluster::summary() const {
  // Group by (model, cpus_used) preserving first-appearance order.
  std::vector<std::pair<std::string, int>> order;
  std::map<std::string, int> counts;
  for (const auto& node : nodes_) {
    std::ostringstream key;
    key << node.spec.model;
    if (node.cpus_used != node.spec.cpus || node.spec.cpus > 1) {
      key << '(' << node.cpus_used << "cpu)";
    }
    auto [it, inserted] = counts.emplace(key.str(), 0);
    if (inserted) order.emplace_back(key.str(), 0);
    ++it->second;
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i != 0) os << " + ";
    os << counts[order[i].first] << "x " << order[i].first;
  }
  return os.str();
}

}  // namespace hetscale::machine
