#include "hetscale/machine/sunwulf.hpp"

#include <string>

#include "hetscale/support/error.hpp"
#include "hetscale/support/units.hpp"

namespace hetscale::machine::sunwulf {

using units::mflops;

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
}  // namespace

NodeSpec server_spec() {
  return NodeSpec{
      .model = "SunFire server",
      .cpus = 4,
      .cpu_rate_flops = mflops(26.0),
      .memory_bytes = 4.0 * kGiB,
      .memory_bandwidth_Bps = 450e6,
      // Per-kernel sustained-rate bias, order marked::kKernelNames
      // (EP, LU, FT, BT, MG): EP is compute-bound (above average), FT is
      // memory-bound (below average) — as on the real machines.
      .benchmark_bias = {1.06, 0.97, 0.91, 1.02, 1.04},
  };
}

NodeSpec sunblade_spec() {
  return NodeSpec{
      .model = "SunBlade",
      .cpus = 1,
      .cpu_rate_flops = mflops(27.5),
      .memory_bytes = 128.0 * kMiB,
      .memory_bandwidth_Bps = 250e6,
      .benchmark_bias = {1.04, 0.98, 0.89, 1.03, 1.06},
  };
}

NodeSpec v210_spec() {
  return NodeSpec{
      .model = "SunFire V210",
      .cpus = 2,
      .cpu_rate_flops = mflops(55.0),
      .memory_bytes = 2.0 * kGiB,
      .memory_bandwidth_Bps = 900e6,
      .benchmark_bias = {1.05, 0.99, 0.93, 1.01, 1.02},
  };
}

Cluster ge_ensemble(int total_nodes) {
  HETSCALE_REQUIRE(total_nodes >= 2, "GE ensemble needs at least 2 nodes");
  Cluster cluster;
  cluster.add_node("sunwulf", server_spec(), /*cpus_used=*/2);
  for (int i = 1; i < total_nodes; ++i) {
    cluster.add_node("hpc-" + std::to_string(39 + i), sunblade_spec());
  }
  return cluster;
}

Cluster mm_ensemble(int total_nodes) {
  HETSCALE_REQUIRE(total_nodes >= 2, "MM ensemble needs at least 2 nodes");
  Cluster cluster;
  cluster.add_node("sunwulf", server_spec(), /*cpus_used=*/1);
  // Of the remaining nodes, the first half (rounded down) are SunBlades and
  // the rest SunFire V210s using one CPU each, per the paper's examples
  // (8 nodes = 1 server + 3 SunBlades + 4 V210s).
  const int rest = total_nodes - 1;
  const int blades = rest / 2;
  for (int i = 0; i < blades; ++i) {
    cluster.add_node("hpc-" + std::to_string(1 + i), sunblade_spec());
  }
  for (int i = 0; i < rest - blades; ++i) {
    cluster.add_node("hpc-" + std::to_string(65 + i), v210_spec(),
                     /*cpus_used=*/1);
  }
  return cluster;
}

Cluster homogeneous_ensemble(int total_nodes) {
  HETSCALE_REQUIRE(total_nodes >= 1, "ensemble needs at least 1 node");
  Cluster cluster;
  for (int i = 0; i < total_nodes; ++i) {
    cluster.add_node("hpc-" + std::to_string(1 + i), sunblade_spec());
  }
  return cluster;
}

}  // namespace hetscale::machine::sunwulf
