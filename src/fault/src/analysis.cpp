#include "hetscale/fault/analysis.hpp"

#include <algorithm>

#include "hetscale/support/error.hpp"

namespace hetscale::fault {
namespace {

// Integrate rank `rank`'s slowdown factor over [0, horizon) exactly: the
// factor is piecewise constant with breakpoints at the rank's event edges,
// so sum factor * piece_length over the pieces.
double integrate_factor(const FaultPlan& plan, int rank,
                        des::SimTime horizon) {
  std::vector<des::SimTime> edges;
  edges.push_back(0.0);
  edges.push_back(horizon);
  for (const SlowdownEvent& event : plan.slowdowns()) {
    if (event.rank != rank) continue;
    if (event.start < horizon) edges.push_back(std::max(event.start, 0.0));
    if (event.end < horizon) edges.push_back(std::max(event.end, 0.0));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  double integral = 0.0;
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    const des::SimTime lo = edges[i];
    const des::SimTime hi = edges[i + 1];
    if (hi <= lo) continue;
    integral += plan.slowdown_factor(rank, lo) * (hi - lo);
  }
  return integral;
}

}  // namespace

double effective_rank_speed(const FaultPlan& plan, int rank,
                            double healthy_speed, des::SimTime t) {
  HETSCALE_REQUIRE(healthy_speed >= 0.0, "healthy speed must be >= 0");
  return healthy_speed * plan.slowdown_factor(rank, t);
}

double mean_effective_rank_speed(const FaultPlan& plan, int rank,
                                 double healthy_speed, des::SimTime horizon) {
  HETSCALE_REQUIRE(healthy_speed >= 0.0, "healthy speed must be >= 0");
  HETSCALE_REQUIRE(horizon > 0.0, "horizon must be > 0");
  return healthy_speed * integrate_factor(plan, rank, horizon) / horizon;
}

double mean_effective_marked_speed(const FaultPlan& plan,
                                   std::span<const double> healthy_speeds,
                                   des::SimTime horizon) {
  double total = 0.0;
  for (std::size_t rank = 0; rank < healthy_speeds.size(); ++rank) {
    total += mean_effective_rank_speed(plan, static_cast<int>(rank),
                                       healthy_speeds[rank], horizon);
  }
  return total;
}

std::vector<double> sample_effective_marked_speed(
    const FaultPlan& plan, std::span<const double> healthy_speeds,
    des::SimTime horizon, std::size_t samples) {
  HETSCALE_REQUIRE(horizon > 0.0, "horizon must be > 0");
  HETSCALE_REQUIRE(samples > 0, "need at least one sample");
  std::vector<double> series;
  series.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const des::SimTime t =
        horizon * (static_cast<double>(i) / static_cast<double>(samples));
    double total = 0.0;
    for (std::size_t rank = 0; rank < healthy_speeds.size(); ++rank) {
      total += effective_rank_speed(plan, static_cast<int>(rank),
                                    healthy_speeds[rank], t);
    }
    series.push_back(total);
  }
  return series;
}

}  // namespace hetscale::fault
