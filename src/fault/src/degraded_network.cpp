#include "hetscale/fault/degraded_network.hpp"

#include <utility>

#include "hetscale/support/error.hpp"

namespace hetscale::fault {

namespace {
// Validated before the base is initialized from it — the constructor must
// not dereference a null inner model.
const net::Network& checked(const std::unique_ptr<net::Network>& inner) {
  HETSCALE_REQUIRE(inner != nullptr, "inner network must not be null");
  return *inner;
}
}  // namespace

DegradedNetwork::DegradedNetwork(std::unique_ptr<net::Network> inner,
                                 const FaultPlan& plan)
    : net::Network(checked(inner).params()),
      inner_(std::move(inner)),
      plan_(&plan) {}

net::TransferResult DegradedNetwork::transfer(int src_node, int dst_node,
                                              double bytes,
                                              des::SimTime depart) {
  HETSCALE_REQUIRE(bytes >= 0.0, "message size must be non-negative");
  record_traffic(bytes);
  if (src_node == dst_node) {
    // Intra-node copies never touch the degraded medium.
    return inner_->transfer(src_node, dst_node, bytes, depart);
  }
  const FaultPlan::LinkState state = plan_->link_state(depart);
  const double inflated = bytes / state.bandwidth_factor;
  net::TransferResult result =
      inner_->transfer(src_node, dst_node, inflated, depart);
  result.arrival += state.extra_latency_s;
  return result;
}

net::TransferResult DegradedNetwork::remote_transfer(int /*src_node*/,
                                                     int /*dst_node*/,
                                                     double /*bytes*/,
                                                     des::SimTime /*depart*/) {
  HETSCALE_CHECK(false, "DegradedNetwork overrides transfer() wholesale");
  return {};
}

}  // namespace hetscale::fault
