#include "hetscale/fault/injector.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "hetscale/obs/span.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::fault {

namespace {

constexpr des::SimTime kNever = std::numeric_limits<des::SimTime>::infinity();

// Loss draws live in streams disjoint from the plan generator's (which uses
// small ids; see plan.cpp): one stream per rank, counter = message * 64 +
// attempt, so adding attempts to one message never shifts another's draws.
constexpr std::uint64_t kStreamLossBase = 1ULL << 32;
constexpr std::uint64_t kAttemptSlots = 64;

}  // namespace

Injector::Injector(const FaultPlan& plan, std::vector<double> healthy_rates)
    : plan_(&plan), rng_(plan.rng()) {
  HETSCALE_REQUIRE(!healthy_rates.empty(), "injector needs at least one rank");
  states_.resize(healthy_rates.size());
  const auto& checkpoint = plan.checkpoint();
  for (std::size_t r = 0; r < states_.size(); ++r) {
    RankState& state = states_[r];
    for (const auto& event : plan.slowdowns()) {
      if (event.rank == static_cast<int>(r)) state.slowdowns.push_back(event);
    }
    std::sort(state.slowdowns.begin(), state.slowdowns.end(),
              [](const SlowdownEvent& a, const SlowdownEvent& b) {
                return a.start < b.start;
              });
    state.crashes = plan.crash_times(static_cast<int>(r));
    if (checkpoint.enabled()) {
      HETSCALE_REQUIRE(healthy_rates[r] > 0.0,
                       "healthy rate must be positive to price checkpoints");
      state.next_checkpoint = checkpoint.interval_s;
      state.checkpoint_cost_s =
          checkpoint.bytes / checkpoint.write_bandwidth_Bps +
          checkpoint.flops / healthy_rates[r];
    }
  }
}

double Injector::factor_at(const RankState& state, des::SimTime t,
                           des::SimTime* piece_end) const {
  // The events are sorted by start; scan for the ones covering t. Per-rank
  // event lists are small (generated plans emit non-overlapping periodic
  // windows), so a linear scan with early exit is fine.
  double factor = 1.0;
  des::SimTime end = kNever;
  for (const auto& event : state.slowdowns) {
    if (event.start > t) {
      // A healthy (or partially covered) piece ends where the next event
      // begins.
      end = std::min(end, event.start);
      break;
    }
    if (t < event.end) {
      factor *= event.factor;
      end = std::min(end, event.end);
    }
  }
  *piece_end = end;
  return factor;
}

des::SimTime Injector::compute_end(int rank, des::SimTime start,
                                   double healthy_seconds) {
  HETSCALE_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  HETSCALE_REQUIRE(healthy_seconds >= 0.0,
                   "compute duration must be non-negative");
  RankState& state = states_[static_cast<std::size_t>(rank)];
  const bool checkpoints = plan_->checkpoint().enabled();

  des::SimTime t = start;
  double remaining = healthy_seconds;  // in healthy-rate seconds
  double added_checkpoint = 0.0;
  double added_rework = 0.0;
  while (remaining > 0.0) {
    des::SimTime piece_end = kNever;
    const double factor = factor_at(state, t, &piece_end);

    // The next boundary where the walk must stop: a rate change, a due
    // checkpoint, or a crash. A checkpoint or crash whose scheduled time
    // passed while the rank was blocked in communication manifests *now*
    // (hence the clamp to t). Ties resolve checkpoint-before-crash, so a
    // crash coinciding with a checkpoint rolls back to that checkpoint.
    des::SimTime boundary = piece_end;
    enum class At { kRateChange, kCheckpoint, kCrash } at = At::kRateChange;
    if (checkpoints && std::max(state.next_checkpoint, t) <= boundary) {
      boundary = std::max(state.next_checkpoint, t);
      at = At::kCheckpoint;
    }
    if (state.next_crash < state.crashes.size() &&
        std::max(state.crashes[state.next_crash], t) < boundary) {
      boundary = std::max(state.crashes[state.next_crash], t);
      at = At::kCrash;
    }

    const des::SimTime finish = t + remaining / factor;
    if (finish <= boundary) {
      t = finish;
      break;
    }
    remaining -= (boundary - t) * factor;
    t = boundary;
    switch (at) {
      case At::kRateChange:
        break;
      case At::kCheckpoint:
        if (spans_ != nullptr) {
          spans_->record(rank, checkpoint_span_id_, t,
                         t + state.checkpoint_cost_s);
        }
        t += state.checkpoint_cost_s;
        added_checkpoint += state.checkpoint_cost_s;
        ++state.stats.checkpoints;
        state.last_checkpoint = t;
        // The cadence restarts from the checkpoint's completion, so a
        // costly checkpoint cannot schedule the next one in the past.
        state.next_checkpoint = t + plan_->checkpoint().interval_s;
        break;
      case At::kCrash: {
        // Restart, then re-execute everything since the last checkpoint.
        // Elapsed virtual time in the lost window is the (conservative)
        // rework measure: waiting inside it counts as lost work too.
        const double rework =
            plan_->restart_delay_s() + (t - state.last_checkpoint);
        if (spans_ != nullptr) {
          spans_->record(rank, rework_span_id_, t, t + rework);
        }
        t += rework;
        added_rework += rework;
        ++state.stats.crashes;
        ++state.next_crash;
        // Post-restart state is the recovered checkpoint, re-synced to now.
        state.last_checkpoint = t;
        if (checkpoints) {
          state.next_checkpoint = t + plan_->checkpoint().interval_s;
        }
        break;
      }
    }
  }

  state.stats.checkpoint_s += added_checkpoint;
  state.stats.rework_s += added_rework;
  // Remainder of the stretch; clamp away the subtraction's floating-point
  // dust (it can land a hair below zero when no slowdown is active).
  state.stats.slowdown_s += std::max(
      0.0, (t - start) - healthy_seconds - added_checkpoint - added_rework);
  return t;
}

vmpi::SendFaultPlan Injector::send_faults(int rank) {
  HETSCALE_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  RankState& state = states_[static_cast<std::size_t>(rank)];
  const std::uint64_t message = state.messages++;
  const LossModel& loss = plan_->loss();
  vmpi::SendFaultPlan out;
  if (!loss.enabled()) return out;
  const std::uint64_t stream =
      kStreamLossBase + static_cast<std::uint64_t>(rank);
  int attempts = 1;
  while (attempts < loss.max_attempts &&
         rng_.uniform(stream, message * kAttemptSlots +
                                  static_cast<std::uint64_t>(attempts - 1)) <
             loss.drop_probability) {
    ++attempts;
  }
  state.stats.retries += static_cast<std::uint64_t>(attempts - 1);
  out.attempts = attempts;
  out.retry_timeout_s = loss.retry_timeout_s;
  out.backoff = loss.backoff;
  return out;
}

void Injector::record_retry_wait(int rank, double seconds) {
  HETSCALE_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  HETSCALE_REQUIRE(seconds >= 0.0, "retry wait must be non-negative");
  states_[static_cast<std::size_t>(rank)].stats.retry_s += seconds;
}

void Injector::bind_span_sink(obs::SpanStore* spans) {
  spans_ = spans;
  if (spans_ != nullptr) {
    checkpoint_span_id_ = spans_->intern("checkpoint");
    rework_span_id_ = spans_->intern("fault.rework");
  }
}

vmpi::FaultProfile Injector::fault_profile() const {
  const RankFaultStats total = totals();
  return vmpi::FaultProfile{total.slowdown_s, total.checkpoint_s,
                            total.rework_s,   total.retry_s,
                            total.checkpoints, total.crashes, total.retries};
}

const RankFaultStats& Injector::rank_stats(int rank) const {
  HETSCALE_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  return states_[static_cast<std::size_t>(rank)].stats;
}

RankFaultStats Injector::totals() const {
  RankFaultStats total;
  for (const auto& state : states_) {
    total.slowdown_s += state.stats.slowdown_s;
    total.checkpoint_s += state.stats.checkpoint_s;
    total.rework_s += state.stats.rework_s;
    total.retry_s += state.stats.retry_s;
    total.checkpoints += state.stats.checkpoints;
    total.crashes += state.stats.crashes;
    total.retries += state.stats.retries;
  }
  return total;
}

double Injector::critical_path_fault_s() const {
  double worst = 0.0;
  for (const auto& state : states_) {
    worst = std::max(worst, state.stats.total_s());
  }
  return worst;
}

}  // namespace hetscale::fault
