#include "hetscale/fault/plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hetscale/support/error.hpp"

namespace hetscale::fault {

double CounterRng::exponential(std::uint64_t stream, std::uint64_t counter,
                               double mean) const {
  HETSCALE_REQUIRE(mean > 0.0, "exponential mean must be positive");
  // 1 - u is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform(stream, counter));
}

namespace {

// Stream ids for the plan generator: one namespace per event class so
// adding draws to one class never perturbs another.
constexpr std::uint64_t kStreamStraggler = 1;
constexpr std::uint64_t kStreamSlowdownPhase = 2;
constexpr std::uint64_t kStreamCrash = 3;
// Streams 16+ are reserved for the injector (see injector.cpp).

}  // namespace

FaultPlan FaultPlan::generate(std::uint64_t seed, const PlanSpec& spec,
                              int ranks) {
  HETSCALE_REQUIRE(ranks >= 1, "plan generation needs at least one rank");
  HETSCALE_REQUIRE(spec.horizon_s > 0.0, "plan horizon must be positive");
  FaultPlan plan(seed);
  const CounterRng rng(seed);

  if (spec.slowdown_probability > 0.0) {
    HETSCALE_REQUIRE(
        spec.slowdown_factor > 0.0 && spec.slowdown_factor <= 1.0,
        "slowdown factor must be in (0, 1]");
    HETSCALE_REQUIRE(spec.slowdown_period_s > 0.0 && spec.slowdown_duty > 0.0 &&
                         spec.slowdown_duty <= 1.0,
                     "slowdown period/duty out of range");
    for (int r = 0; r < ranks; ++r) {
      const auto rank = static_cast<std::uint64_t>(r);
      if (rng.uniform(kStreamStraggler, rank) >= spec.slowdown_probability) {
        continue;
      }
      // Jitter the phase per rank so stragglers don't throttle in lockstep.
      const double phase =
          rng.uniform(kStreamSlowdownPhase, rank) * spec.slowdown_period_s;
      const double degraded = spec.slowdown_duty * spec.slowdown_period_s;
      for (des::SimTime start = phase; start < spec.horizon_s;
           start += spec.slowdown_period_s) {
        plan.add_slowdown({r, start,
                           std::min(start + degraded, spec.horizon_s),
                           spec.slowdown_factor});
      }
    }
  }

  if (spec.link_duty > 0.0) {
    HETSCALE_REQUIRE(spec.link_duty <= 1.0 && spec.link_period_s > 0.0,
                     "link period/duty out of range");
    const double degraded = spec.link_duty * spec.link_period_s;
    for (des::SimTime start = 0.0; start < spec.horizon_s;
         start += spec.link_period_s) {
      plan.add_link_fault({start, std::min(start + degraded, spec.horizon_s),
                           spec.link_bandwidth_factor,
                           spec.link_extra_latency_s});
    }
  }

  if (spec.crash_rate_per_s > 0.0) {
    const double mean = 1.0 / spec.crash_rate_per_s;
    for (int r = 0; r < ranks; ++r) {
      // Counter-keyed Poisson arrivals: rank r's k-th inter-arrival gap is
      // draw (kStreamCrash, r * 2^32 + k) — independent of other ranks.
      const auto base = static_cast<std::uint64_t>(r) << 32;
      des::SimTime at = 0.0;
      for (std::uint64_t k = 0;; ++k) {
        at += rng.exponential(kStreamCrash, base + k, mean);
        if (at >= spec.horizon_s) break;
        plan.add_crash({r, at});
      }
    }
  }

  plan.set_loss(spec.loss);
  plan.set_checkpoint(spec.checkpoint);
  plan.set_restart_delay(spec.restart_delay_s);
  return plan;
}

FaultPlan& FaultPlan::add_slowdown(SlowdownEvent event) {
  HETSCALE_REQUIRE(event.rank >= 0, "slowdown rank must be >= 0");
  HETSCALE_REQUIRE(event.start >= 0.0 && event.end > event.start,
                   "slowdown interval must be non-empty and non-negative");
  HETSCALE_REQUIRE(event.factor > 0.0 && event.factor <= 1.0,
                   "slowdown factor must be in (0, 1]");
  slowdowns_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::add_link_fault(LinkFaultEvent event) {
  HETSCALE_REQUIRE(event.start >= 0.0 && event.end > event.start,
                   "link fault interval must be non-empty and non-negative");
  HETSCALE_REQUIRE(event.bandwidth_factor > 0.0 &&
                       event.bandwidth_factor <= 1.0,
                   "bandwidth factor must be in (0, 1]");
  HETSCALE_REQUIRE(event.extra_latency_s >= 0.0,
                   "extra latency must be non-negative");
  link_faults_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::add_crash(CrashEvent event) {
  HETSCALE_REQUIRE(event.rank >= 0 && event.at > 0.0,
                   "crash needs rank >= 0 and a positive time");
  crashes_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::set_loss(LossModel loss) {
  HETSCALE_REQUIRE(loss.drop_probability >= 0.0 && loss.drop_probability < 1.0,
                   "drop probability must be in [0, 1)");
  HETSCALE_REQUIRE(!loss.enabled() ||
                       (loss.retry_timeout_s > 0.0 && loss.backoff >= 1.0 &&
                        loss.max_attempts >= 2),
                   "loss model needs timeout > 0, backoff >= 1, attempts >= 2");
  loss_ = loss;
  return *this;
}

FaultPlan& FaultPlan::set_checkpoint(CheckpointPolicy policy) {
  HETSCALE_REQUIRE(!policy.enabled() ||
                       (policy.bytes >= 0.0 && policy.flops >= 0.0 &&
                        policy.write_bandwidth_Bps > 0.0),
                   "checkpoint policy has negative costs or zero bandwidth");
  checkpoint_ = policy;
  return *this;
}

FaultPlan& FaultPlan::set_restart_delay(des::SimTime delay_s) {
  HETSCALE_REQUIRE(delay_s >= 0.0, "restart delay must be non-negative");
  restart_delay_ = delay_s;
  return *this;
}

double FaultPlan::slowdown_factor(int rank, des::SimTime t) const {
  double factor = 1.0;
  for (const auto& event : slowdowns_) {
    if (event.rank == rank && t >= event.start && t < event.end) {
      factor *= event.factor;
    }
  }
  return factor;
}

FaultPlan::LinkState FaultPlan::link_state(des::SimTime t) const {
  LinkState state;
  for (const auto& event : link_faults_) {
    if (t >= event.start && t < event.end) {
      state.bandwidth_factor *= event.bandwidth_factor;
      state.extra_latency_s += event.extra_latency_s;
    }
  }
  return state;
}

std::vector<des::SimTime> FaultPlan::crash_times(int rank) const {
  std::vector<des::SimTime> times;
  for (const auto& event : crashes_) {
    if (event.rank == rank) times.push_back(event.at);
  }
  std::sort(times.begin(), times.end());
  return times;
}

std::string FaultPlan::summary() const {
  std::ostringstream os;
  os << "seed=" << seed_ << ": " << slowdowns_.size() << " slowdowns, "
     << link_faults_.size() << " link faults, " << crashes_.size()
     << " crashes";
  if (loss_.enabled()) os << ", loss p=" << loss_.drop_probability;
  if (checkpoint_.enabled()) {
    os << ", checkpoint every " << checkpoint_.interval_s << "s";
  }
  return os.str();
}

}  // namespace hetscale::fault
