// DegradedNetwork — a decorator that applies a FaultPlan's link faults to
// any wire model.
//
// Wiring: build the healthy network (shared bus, switched, ...) as usual,
// then wrap it; the Machine owns the decorator and the decorator owns the
// inner model. During a degraded window the inter-node path loses
// bandwidth — modeled by inflating the on-wire size by 1/bandwidth_factor,
// so a degraded frame genuinely occupies the medium longer and contention
// under degradation *emerges* from the inner model — and gains propagation
// latency, added to the arrival only (the sender's link drain is governed
// by the inflated occupancy). Intra-node transfers and the decorator's
// traffic statistics (nominal bytes) are unaffected, so healthy and
// degraded runs report comparable traffic.
//
// The window is chosen by the *departure* time of the message — one frame,
// one state; frames never straddle windows, which keeps the model
// analytic and the timeline deterministic.
#pragma once

#include <memory>

#include "hetscale/fault/plan.hpp"
#include "hetscale/net/network.hpp"

namespace hetscale::fault {

class DegradedNetwork final : public net::Network {
 public:
  /// Takes ownership of the healthy model. The plan must outlive this.
  DegradedNetwork(std::unique_ptr<net::Network> inner, const FaultPlan& plan);

  net::TransferResult transfer(int src_node, int dst_node, double bytes,
                               des::SimTime depart) override;

  const net::Network& inner() const { return *inner_; }

  /// The decorator records nominal traffic; the inner model carries the
  /// (inflated) frames, so on-wire truth lives there.
  const net::Network& wire_model() const override {
    return inner_->wire_model();
  }

 private:
  // Never reached: transfer() is overridden wholesale and delegates to the
  // inner model.
  net::TransferResult remote_transfer(int src_node, int dst_node,
                                      double bytes,
                                      des::SimTime depart) override;

  std::unique_ptr<net::Network> inner_;
  const FaultPlan* plan_;
};

}  // namespace hetscale::fault
