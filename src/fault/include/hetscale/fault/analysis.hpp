// Degraded-mode speed analysis over a FaultPlan.
//
// The paper's marked speed C_i (Definitions 1-2) is a constant of the
// hardware; under a fault plan the *delivered* rate drifts. The effective
// marked speed C_i(t) = C_i * slowdown_factor_i(t) is the plan's view of
// that drift, and its time average over an execution window is the
// degraded counterpart of C used by scal's fault study: a degraded
// speed-efficiency W / (T * C_eff) answers "how well did we use what the
// faulty machine actually offered", while the classic E_s = W / (T * C)
// answers "what did the faults cost against the healthy machine".
#pragma once

#include <span>
#include <vector>

#include "hetscale/fault/plan.hpp"

namespace hetscale::fault {

/// C_i(t): rank i's effective marked speed at virtual time t.
double effective_rank_speed(const FaultPlan& plan, int rank,
                            double healthy_speed, des::SimTime t);

/// Time average of C_i(t) over [0, horizon) — exact integral over the
/// plan's piecewise-constant factors, not a sampling.
double mean_effective_rank_speed(const FaultPlan& plan, int rank,
                                 double healthy_speed, des::SimTime horizon);

/// Time average of C(t) = sum_i C_i(t) over [0, horizon).
double mean_effective_marked_speed(const FaultPlan& plan,
                                   std::span<const double> healthy_speeds,
                                   des::SimTime horizon);

/// C(t) sampled at `samples` evenly spaced times in [0, horizon) — the
/// data behind a degradation timeline table.
std::vector<double> sample_effective_marked_speed(
    const FaultPlan& plan, std::span<const double> healthy_speeds,
    des::SimTime horizon, std::size_t samples);

}  // namespace hetscale::fault
