// Injector — executes a FaultPlan against one simulation.
//
// One Injector serves one Machine run (machines are single-shot, and so is
// the injector: per-rank checkpoint clocks, crash cursors, and message
// counters are consumed as the simulation advances). Attach with
// Machine::attach_fault_hooks(injector) before run(); the injector must
// outlive the run, and its accounting is read after the run completes.
//
// What it charges, and where (the determinism contract is that all of it
// is a pure function of the plan and the rank's own call sequence):
//   * slowdowns    — compute calls integrate the rank's piecewise-constant
//                    rate factor: a call needing w healthy seconds advances
//                    the clock until ∫ factor dt == w;
//   * checkpoints  — when a compute call crosses the rank's next scheduled
//                    checkpoint time, the checkpoint cost (state write +
//                    serialization flops at the rank's healthy rate) is
//                    inserted into the timeline at that point;
//   * crashes      — when a compute call crosses a crash time, the rank
//                    pays the restart delay plus re-execution of everything
//                    since its last checkpoint (virtual time elapsed since
//                    the checkpoint — a conservative rework model that
//                    counts waiting in the lost window as lost work). A
//                    crash scheduled while a rank is blocked in recv
//                    manifests at its next compute call.
//   * retries      — each logical send draws its transmission count from
//                    the counter-keyed PRNG (geometric in the drop
//                    probability, capped at max_attempts); lost attempts
//                    really occupy the network and the sender waits out the
//                    timeout-with-backoff schedule between attempts.
#pragma once

#include <cstdint>
#include <vector>

#include "hetscale/fault/plan.hpp"
#include "hetscale/vmpi/faults.hpp"

namespace hetscale::fault {

/// Per-rank accounting of injected fault time (seconds of virtual time
/// added relative to the healthy schedule of the same call sequence).
struct RankFaultStats {
  double slowdown_s = 0.0;    ///< extra compute time from rate scaling
  double checkpoint_s = 0.0;  ///< checkpoint costs charged
  double rework_s = 0.0;      ///< crash rollback + restart delays
  double retry_s = 0.0;       ///< timeout/backoff waits on lossy sends
  std::uint64_t checkpoints = 0;
  std::uint64_t crashes = 0;
  std::uint64_t retries = 0;  ///< retransmissions (attempts beyond first)

  double total_s() const {
    return slowdown_s + checkpoint_s + rework_s + retry_s;
  }
};

class Injector final : public vmpi::FaultHooks {
 public:
  /// `healthy_rates` are the ranks' healthy compute rates (flop/s), used to
  /// price checkpoint serialization work.
  Injector(const FaultPlan& plan, std::vector<double> healthy_rates);

  // vmpi::FaultHooks:
  des::SimTime compute_end(int rank, des::SimTime start,
                           double healthy_seconds) override;
  vmpi::SendFaultPlan send_faults(int rank) override;
  void record_retry_wait(int rank, double seconds) override;
  void bind_span_sink(obs::SpanStore* spans) override;
  vmpi::FaultProfile fault_profile() const override;

  const RankFaultStats& rank_stats(int rank) const;
  int ranks() const { return static_cast<int>(states_.size()); }

  /// Sum over ranks (the decomposition's aggregate view).
  RankFaultStats totals() const;

  /// Max over ranks of total_s() — a lower bound on the elapsed-time
  /// impact, in the same critical-path sense as RunResult::overhead_s.
  double critical_path_fault_s() const;

 private:
  struct RankState {
    std::vector<SlowdownEvent> slowdowns;  ///< this rank's, sorted by start
    std::vector<des::SimTime> crashes;     ///< sorted; consumed front to back
    std::size_t next_crash = 0;
    des::SimTime next_checkpoint = 0.0;
    des::SimTime last_checkpoint = 0.0;
    double checkpoint_cost_s = 0.0;
    std::uint64_t messages = 0;  ///< counter key for loss draws
    RankFaultStats stats;
  };

  /// The rank's rate factor at time t and the end of the piece it lies in.
  double factor_at(const RankState& state, des::SimTime t,
                   des::SimTime* piece_end) const;

  const FaultPlan* plan_;
  CounterRng rng_;
  std::vector<RankState> states_;
  obs::SpanStore* spans_ = nullptr;  ///< profiling sink; null when off
  int checkpoint_span_id_ = -1;
  int rework_span_id_ = -1;
};

}  // namespace hetscale::fault
