// Counter-based random numbers for fault injection.
//
// Fault decisions must be bit-reproducible at any --jobs setting and must
// not depend on the order in which ranks happen to consume randomness, so
// the fault layer never draws from a shared sequential stream. Every draw
// is a pure function of (seed, stream, counter): stream identifies *who* is
// drawing (a rank, the link, the plan generator) and counter *which* draw
// it is (that rank's n-th message, the k-th crash). Two simulations that
// make the same draws get the same numbers regardless of interleaving.
//
// The mixer is SplitMix64's finalizer applied to the combined key — the
// same primitive support/rng.hpp uses for seeding, shown to pass statistical
// tests as a counter-mode generator.
#pragma once

#include <cstdint>

namespace hetscale::fault {

/// A stateless counter-mode generator over a fixed seed.
class CounterRng {
 public:
  explicit constexpr CounterRng(std::uint64_t seed) : seed_(seed) {}

  constexpr std::uint64_t seed() const { return seed_; }

  /// The raw 64-bit value of draw (stream, counter).
  constexpr std::uint64_t bits(std::uint64_t stream,
                               std::uint64_t counter) const {
    return mix(mix(seed_ ^ kSeedSalt) ^ mix(stream ^ kStreamSalt) ^
               (counter * kCounterSalt));
  }

  /// Uniform double in [0, 1) for draw (stream, counter).
  constexpr double uniform(std::uint64_t stream, std::uint64_t counter) const {
    // 53 random mantissa bits, the standard u64 -> [0,1) construction.
    return static_cast<double>(bits(stream, counter) >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed value with the given mean (inter-arrival
  /// sampling for crash schedules). Never returns exactly zero.
  double exponential(std::uint64_t stream, std::uint64_t counter,
                     double mean) const;

 private:
  static constexpr std::uint64_t kSeedSalt = 0x9e3779b97f4a7c15ULL;
  static constexpr std::uint64_t kStreamSalt = 0xbf58476d1ce4e5b9ULL;
  static constexpr std::uint64_t kCounterSalt = 0x94d049bb133111ebULL;

  static constexpr std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_;
};

}  // namespace hetscale::fault
