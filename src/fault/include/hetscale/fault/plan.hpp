// FaultPlan — a deterministic schedule of degradation and failure events.
//
// A plan is fixed *before* the simulation starts: every event is pinned to
// the virtual timeline (or, for message loss, to a counter-keyed draw), so
// a run under a plan is as bit-reproducible as a healthy run — across
// repetitions, platforms, and --jobs settings. Plans are either assembled
// by hand (tests, the CLI `inject` command) or generated from a seed with
// FaultPlan::generate.
//
// Event classes, mirroring how real heterogeneous clusters degrade:
//   * SlowdownEvent   — a rank's compute rate is scaled over an interval
//                       (thermal throttling, a co-scheduled job, a straggler);
//   * LinkFaultEvent  — the inter-node network loses bandwidth and gains
//                       latency over an interval (applied by DegradedNetwork);
//   * CrashEvent      — a rank fails at a virtual time and restarts from its
//                       last checkpoint (see CheckpointPolicy);
//   * LossModel       — each transmission is independently dropped with a
//                       fixed probability; vmpi::Comm retries after a timeout
//                       with exponential backoff.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetscale/des/scheduler.hpp"
#include "hetscale/fault/prng.hpp"

namespace hetscale::fault {

/// A rank computes at `factor` times its healthy rate during [start, end).
struct SlowdownEvent {
  int rank = 0;
  des::SimTime start = 0.0;
  des::SimTime end = 0.0;
  double factor = 1.0;  ///< in (0, 1]: 0.5 means half speed
};

/// The inter-node network is degraded during [start, end). Local
/// (intra-node) transfers are unaffected.
struct LinkFaultEvent {
  des::SimTime start = 0.0;
  des::SimTime end = 0.0;
  double bandwidth_factor = 1.0;   ///< in (0, 1]: effective B = factor * B
  double extra_latency_s = 0.0;    ///< added end-to-end propagation delay
};

/// Rank `rank` crashes at virtual time `at` and re-executes everything
/// since its last checkpoint (plus a restart delay).
struct CrashEvent {
  int rank = 0;
  des::SimTime at = 0.0;
};

/// Transient message loss with sender-side retry.
struct LossModel {
  double drop_probability = 0.0;  ///< per-transmission, in [0, 1)
  double retry_timeout_s = 1e-3;  ///< wait before the first retransmission
  double backoff = 2.0;           ///< timeout multiplier per further retry
  int max_attempts = 16;          ///< hard cap (then the send goes through)

  bool enabled() const { return drop_probability > 0.0; }
};

/// Periodic checkpointing, the price of crash recovery. Every `interval_s`
/// of a rank's virtual time, the rank is charged a checkpoint: its state
/// (`bytes`) written at `write_bandwidth_Bps` plus `flops` of serialization
/// work at the rank's healthy rate — checkpoint cost is compute + comm, as
/// on a real machine. interval_s <= 0 disables checkpointing (a crash then
/// rolls back to the start of the run).
struct CheckpointPolicy {
  des::SimTime interval_s = 0.0;
  double bytes = 0.0;
  double write_bandwidth_Bps = 12.5e6;
  double flops = 0.0;

  bool enabled() const { return interval_s > 0.0; }
};

/// Knobs for FaultPlan::generate — how faulty a generated plan is.
struct PlanSpec {
  /// Each rank is independently a straggler with this probability; a
  /// straggler alternates healthy and degraded phases of `slowdown_period_s`
  /// (degraded for `slowdown_duty` of each period, at `slowdown_factor`).
  double slowdown_probability = 0.0;
  double slowdown_factor = 0.5;
  double slowdown_duty = 0.5;
  des::SimTime slowdown_period_s = 2.0;

  /// The network alternates healthy and degraded windows of
  /// `link_period_s` (degraded for `link_duty` of each period).
  double link_duty = 0.0;
  des::SimTime link_period_s = 2.0;
  double link_bandwidth_factor = 0.5;
  double link_extra_latency_s = 0.0;

  /// Per-rank crashes as a Poisson process with this rate (crashes per
  /// second of virtual time); 0 disables crashes.
  double crash_rate_per_s = 0.0;
  des::SimTime restart_delay_s = 1.0;

  LossModel loss{};
  CheckpointPolicy checkpoint{};

  /// Events are generated on [0, horizon_s); the system is healthy beyond.
  des::SimTime horizon_s = 1e4;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// Expand a seed into a concrete event schedule for `ranks` ranks.
  /// Deterministic: same (seed, spec, ranks) -> identical plan, and every
  /// draw is counter-keyed, so plans for different rank counts share the
  /// events of their common ranks.
  static FaultPlan generate(std::uint64_t seed, const PlanSpec& spec,
                            int ranks);

  std::uint64_t seed() const { return seed_; }
  CounterRng rng() const { return CounterRng(seed_); }

  /// Builders (validated; intervals may be appended in any order).
  FaultPlan& add_slowdown(SlowdownEvent event);
  FaultPlan& add_link_fault(LinkFaultEvent event);
  FaultPlan& add_crash(CrashEvent event);
  FaultPlan& set_loss(LossModel loss);
  FaultPlan& set_checkpoint(CheckpointPolicy policy);
  FaultPlan& set_restart_delay(des::SimTime delay_s);

  const std::vector<SlowdownEvent>& slowdowns() const { return slowdowns_; }
  const std::vector<LinkFaultEvent>& link_faults() const {
    return link_faults_;
  }
  const std::vector<CrashEvent>& crashes() const { return crashes_; }
  const LossModel& loss() const { return loss_; }
  const CheckpointPolicy& checkpoint() const { return checkpoint_; }
  des::SimTime restart_delay_s() const { return restart_delay_; }

  bool empty() const {
    return slowdowns_.empty() && link_faults_.empty() && crashes_.empty() &&
           !loss_.enabled() && !checkpoint_.enabled();
  }

  /// The compute-rate factor of `rank` at virtual time `t` (product of the
  /// active slowdown events; 1.0 when healthy).
  double slowdown_factor(int rank, des::SimTime t) const;

  /// The combined link state at virtual time `t`.
  struct LinkState {
    double bandwidth_factor = 1.0;
    double extra_latency_s = 0.0;
  };
  LinkState link_state(des::SimTime t) const;

  /// Sorted crash times of `rank`.
  std::vector<des::SimTime> crash_times(int rank) const;

  /// One line for harness headers, e.g.
  /// "seed=7: 3 slowdowns, 2 link faults, loss p=0.05, crashes=1".
  std::string summary() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<SlowdownEvent> slowdowns_;
  std::vector<LinkFaultEvent> link_faults_;
  std::vector<CrashEvent> crashes_;
  LossModel loss_{};
  CheckpointPolicy checkpoint_{};
  des::SimTime restart_delay_ = 1.0;
};

}  // namespace hetscale::fault
