// Marked speed (paper §3.1, Definitions 1–2) and the benchmark suite that
// measures it.
//
// "The marked speed of a computing node is a (benchmarked) sustained speed
//  of that node" — we model the paper's use of the NAS Parallel Benchmarks:
// a small suite of kernels (EP, LU, FT, BT, MG) is *run* on a single CPU of
// the node inside the simulator, each sustaining a kernel-specific fraction
// of the node's nominal rate (NodeSpec::benchmark_bias), and the node's
// marked speed is the average measured rate. Once measured, the marked speed
// is treated as a constant of the study.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "hetscale/machine/cluster.hpp"

namespace hetscale::marked {

/// The suite's kernel names, in NodeSpec::benchmark_bias order.
inline constexpr std::array<std::string_view, 5> kKernelNames{
    "EP", "LU", "FT", "BT", "MG"};

/// Nominal flop count of each kernel run (problem-class constant; scaled by
/// `scale`). Values are arbitrary but distinct so kernel runtimes differ.
std::array<double, 5> kernel_flops(double scale = 1.0);

/// Result of one benchmark kernel on one node.
struct BenchmarkResult {
  std::string kernel;
  double seconds = 0.0;
  double rate_flops = 0.0;  ///< measured sustained speed (flop/s)
};

/// Run the whole suite on a single CPU of a node of the given spec, through
/// the full vmpi/DES stack (a 1-rank machine). Deterministic.
std::vector<BenchmarkResult> run_suite(const machine::NodeSpec& spec,
                                       double scale = 1.0);

/// Definition 1: the node's marked speed — the average sustained rate over
/// the suite (flop/s, per CPU).
double node_marked_speed(const machine::NodeSpec& spec, double scale = 1.0);

/// Definition 2: the system's marked speed — the sum of the marked speeds of
/// every participating processor: C = Σ_i C_i (flop/s).
double system_marked_speed(const machine::Cluster& cluster,
                           double scale = 1.0);

/// Per-rank marked speeds in vmpi rank order (the HoHe processor order) —
/// this is what heterogeneous data distribution is proportional to.
std::vector<double> rank_marked_speeds(const machine::Cluster& cluster,
                                       double scale = 1.0);

}  // namespace hetscale::marked
