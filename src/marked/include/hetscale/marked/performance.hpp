// Multi-parameter marked performance — the paper's stated future work:
// "we plan to extend the single parameter marked speed to multi-parameter
//  marked performance that has several parameters to describe the full
//  capability of a computing system".
//
// Three sustained measures per node, each obtained by *running* a probe
// through the simulator stack (never read out of the specs directly):
//   * compute (flop/s)    — the classic marked speed (suite.hpp),
//   * memory (bytes/s)    — a STREAM-style triad sweep,
//   * network (bytes/s and s) — a point-to-point bandwidth/latency probe.
//
// An ApplicationProfile states how many memory and network bytes an
// application moves per flop; effective_marked_speed() combines the vector
// into the roofline-style effective rate
//     C_eff = 1 / (1/C_f + m_B/C_m + n_B/C_n),
// which degenerates to the classic marked speed for a compute-only profile.
#pragma once

#include "hetscale/machine/cluster.hpp"
#include "hetscale/net/network.hpp"

namespace hetscale::marked {

/// Sustained multi-parameter capability of one node (per CPU for compute).
struct MarkedPerformance {
  double compute_flops = 0.0;    ///< classic marked speed
  double memory_Bps = 0.0;       ///< sustained copy bandwidth
  double network_Bps = 0.0;      ///< sustained p2p bandwidth off-node
  double network_latency_s = 0.0;  ///< per-message one-way latency
};

/// How an application loads each resource, normalized per flop.
struct ApplicationProfile {
  double memory_bytes_per_flop = 0.0;
  double network_bytes_per_flop = 0.0;
};

/// A compute-only profile (effective speed == classic marked speed).
ApplicationProfile compute_bound_profile();

/// Measure the full vector for a node type. The network probe runs two of
/// these nodes on the given network parameters (switched fabric).
MarkedPerformance node_marked_performance(
    const machine::NodeSpec& spec,
    const net::NetworkParams& net_params = {});

/// Roofline-style effective rate of one node under a profile (flop/s).
double effective_marked_speed(const MarkedPerformance& performance,
                              const ApplicationProfile& profile);

/// System-level effective marked speed: the sum over participating
/// processors of their node's effective rate (Definition 2 generalized).
double system_effective_marked_speed(
    const machine::Cluster& cluster, const ApplicationProfile& profile,
    const net::NetworkParams& net_params = {});

}  // namespace hetscale::marked
