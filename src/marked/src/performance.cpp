#include "hetscale/marked/performance.hpp"

#include <memory>

#include "hetscale/marked/suite.hpp"
#include "hetscale/net/switched.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::marked {

namespace {

using des::Task;

/// STREAM-style probe: stream `bytes` through the node's memory system and
/// report sustained bandwidth. Memory traffic is charged through the same
/// compute primitive the rest of the simulator uses, at the node's copy
/// rate, so future timing-model changes flow into this measure too.
double measure_memory_bandwidth(const machine::NodeSpec& spec) {
  HETSCALE_REQUIRE(spec.memory_bandwidth_Bps > 0.0,
                   "node needs a positive memory bandwidth");
  machine::Cluster cluster;
  cluster.add_node("stream-node", spec, /*cpus_used=*/1);
  auto machine = vmpi::Machine::switched(std::move(cluster));
  const double bytes = 64e6;  // a triad sweep well beyond cache
  auto elapsed = std::make_shared<double>(0.0);
  machine.run([&spec, bytes, elapsed](vmpi::Comm& comm) -> Task<void> {
    const double efficiency = spec.memory_bandwidth_Bps / comm.rate_flops();
    const des::SimTime start = comm.now();
    co_await comm.compute(bytes, efficiency);  // time = bytes / mem_bw
    *elapsed = comm.now() - start;
  });
  return bytes / *elapsed;
}

/// Two-point p2p probe on a pair of these nodes: bandwidth from the slope,
/// latency (including software overhead) from the intercept.
void measure_network(const machine::NodeSpec& spec,
                     const net::NetworkParams& params,
                     MarkedPerformance& out) {
  auto one_way = [&](double bytes) {
    machine::Cluster cluster;
    cluster.add_node("a", spec, 1);
    cluster.add_node("b", spec, 1);
    auto machine = vmpi::Machine(
        std::move(cluster), std::make_unique<net::SwitchedNetwork>(params));
    auto arrival = std::make_shared<double>(0.0);
    machine.run([bytes, arrival](vmpi::Comm& comm) -> Task<void> {
      constexpr int kTag = 910;
      if (comm.rank() == 0) {
        co_await comm.send(1, kTag, bytes, {});
      } else {
        const auto message = co_await comm.recv(0, kTag);
        *arrival = message.arrival;
      }
    });
    return *arrival;
  };
  const double b1 = 1e4;
  const double b2 = 1e6;
  const double t1 = one_way(b1);
  const double t2 = one_way(b2);
  out.network_Bps = (b2 - b1) / (t2 - t1);
  out.network_latency_s = t1 - b1 / out.network_Bps;
}

}  // namespace

ApplicationProfile compute_bound_profile() { return {}; }

MarkedPerformance node_marked_performance(
    const machine::NodeSpec& spec, const net::NetworkParams& net_params) {
  MarkedPerformance performance;
  performance.compute_flops = node_marked_speed(spec);
  performance.memory_Bps = measure_memory_bandwidth(spec);
  measure_network(spec, net_params, performance);
  return performance;
}

double effective_marked_speed(const MarkedPerformance& performance,
                              const ApplicationProfile& profile) {
  HETSCALE_REQUIRE(performance.compute_flops > 0.0,
                   "compute rate must be positive");
  HETSCALE_REQUIRE(profile.memory_bytes_per_flop >= 0.0 &&
                       profile.network_bytes_per_flop >= 0.0,
                   "profile intensities must be non-negative");
  double seconds_per_flop = 1.0 / performance.compute_flops;
  if (profile.memory_bytes_per_flop > 0.0) {
    HETSCALE_REQUIRE(performance.memory_Bps > 0.0,
                     "memory-bound profile needs a memory measure");
    seconds_per_flop += profile.memory_bytes_per_flop / performance.memory_Bps;
  }
  if (profile.network_bytes_per_flop > 0.0) {
    HETSCALE_REQUIRE(performance.network_Bps > 0.0,
                     "network-bound profile needs a network measure");
    seconds_per_flop +=
        profile.network_bytes_per_flop / performance.network_Bps;
  }
  return 1.0 / seconds_per_flop;
}

double system_effective_marked_speed(const machine::Cluster& cluster,
                                     const ApplicationProfile& profile,
                                     const net::NetworkParams& net_params) {
  double total = 0.0;
  for (const auto& node : cluster.nodes()) {
    const auto performance = node_marked_performance(node.spec, net_params);
    total += node.cpus_used * effective_marked_speed(performance, profile);
  }
  return total;
}

}  // namespace hetscale::marked
