#include "hetscale/marked/suite.hpp"

#include <memory>

#include "hetscale/numeric/stats.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::marked {

std::array<double, 5> kernel_flops(double scale) {
  HETSCALE_REQUIRE(scale > 0.0, "scale must be positive");
  // Order: EP, LU, FT, BT, MG. Of the order of NPB class-W single-node
  // workloads (tens of Mflop) so suite runs take simulated seconds.
  return {scale * 40e6, scale * 75e6, scale * 55e6, scale * 90e6,
          scale * 30e6};
}

std::vector<BenchmarkResult> run_suite(const machine::NodeSpec& spec,
                                       double scale) {
  HETSCALE_REQUIRE(spec.benchmark_bias.size() == kKernelNames.size(),
                   "NodeSpec must carry one benchmark bias per suite kernel");
  const auto flops = kernel_flops(scale);

  // A single-CPU machine of just this node: the benchmark is *run*, not
  // computed on paper, so any future change to compute-time semantics is
  // automatically reflected in marked speeds.
  machine::Cluster cluster;
  cluster.add_node("bench-node", spec, /*cpus_used=*/1);
  auto machine = vmpi::Machine::shared_bus(std::move(cluster));

  auto results = std::make_shared<std::vector<BenchmarkResult>>();
  auto bias = spec.benchmark_bias;
  machine.run([&, results](vmpi::Comm& comm) -> des::Task<void> {
    for (std::size_t k = 0; k < kKernelNames.size(); ++k) {
      const des::SimTime start = comm.now();
      co_await comm.compute(flops[k], bias[k]);
      const double seconds = comm.now() - start;
      results->push_back(BenchmarkResult{std::string(kKernelNames[k]), seconds,
                                         flops[k] / seconds});
    }
  });
  return *results;
}

double node_marked_speed(const machine::NodeSpec& spec, double scale) {
  const auto results = run_suite(spec, scale);
  std::vector<double> rates;
  rates.reserve(results.size());
  for (const auto& r : results) rates.push_back(r.rate_flops);
  return numeric::mean(rates);
}

double system_marked_speed(const machine::Cluster& cluster, double scale) {
  double total = 0.0;
  for (const auto& node : cluster.nodes()) {
    total += node.cpus_used * node_marked_speed(node.spec, scale);
  }
  return total;
}

std::vector<double> rank_marked_speeds(const machine::Cluster& cluster,
                                       double scale) {
  std::vector<double> speeds;
  for (const auto& node : cluster.nodes()) {
    const double c = node_marked_speed(node.spec, scale);
    for (int cpu = 0; cpu < node.cpus_used; ++cpu) speeds.push_back(c);
  }
  return speeds;
}

}  // namespace hetscale::marked
